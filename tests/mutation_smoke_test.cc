// Mutation smoke suite: the harness must *detect* bugs, not just agree
// with itself. Each test seeds one realistic bug (a misconfigured lane)
// and proves the differential run catches it within 200 iterations and
// shrinks the witness to a small parseable repro.
#include <gtest/gtest.h>

#include "core/parser.h"
#include "testing/differential.h"

namespace gerel {
namespace {

using gerel::testing::DiffFailure;
using gerel::testing::DiffOptions;
using gerel::testing::DiffReport;
using gerel::testing::Fault;
using gerel::testing::RunDifferential;

// Runs the harness with `fault` seeded and returns the first failure.
// 200 iterations per class is the detection budget the harness promises.
DiffFailure MustCatch(Fault fault) {
  DiffOptions opts;
  opts.fault = fault;
  DiffReport report =
      RunDifferential(/*seed=*/1, /*iters=*/200, /*classes=*/{}, opts);
  EXPECT_FALSE(report.ok()) << "seeded bug " << FaultTag(fault)
                            << " survived " << report.iterations
                            << " cases (" << report.checked << " checked)";
  if (report.ok()) return DiffFailure();
  return report.failures.front();
}

void ExpectSmallParseableRepro(const DiffFailure& failure) {
  EXPECT_LE(failure.repro_rules, 6u) << failure.repro;
  EXPECT_FALSE(failure.repro.empty());
  // The repro must re-parse: rules and facts as statements, the query in
  // the trailing comment (stripped by the lexer).
  SymbolTable syms;
  Result<Program> prog = ParseProgram(failure.repro, &syms);
  EXPECT_TRUE(prog.ok()) << prog.status().message() << "\n" << failure.repro;
}

TEST(MutationSmokeTest, DroppedAcdomGuardIsCaught) {
  DiffFailure f = MustCatch(Fault::kDropAcdomGuard);
  ExpectSmallParseableRepro(f);
}

TEST(MutationSmokeTest, SkippedSaturationStepIsCaught) {
  DiffFailure f = MustCatch(Fault::kSkipSaturationStep);
  ExpectSmallParseableRepro(f);
}

TEST(MutationSmokeTest, StaleAnswerCacheIsCaught) {
  DiffFailure f = MustCatch(Fault::kStaleAnswerCache);
  ExpectSmallParseableRepro(f);
  // The stale-cache fault is only observable on the incremental lane.
  EXPECT_EQ(f.lane, "prepared-stale-cache");
}

}  // namespace
}  // namespace gerel
