// Tests for the magic-sets transformation.
#include <gtest/gtest.h>

#include "core/parser.h"
#include "core/printer.h"
#include "datalog/evaluator.h"
#include "datalog/magic.h"

namespace gerel {
namespace {

struct Fixture {
  SymbolTable syms;
  Theory theory;
  Database db;

  Fixture(const char* rules, const char* facts) {
    theory = ParseTheory(rules, &syms).value();
    db = ParseDatabase(facts, &syms).value();
  }
};

const char* kTransitiveClosure =
    "e(X, Y) -> t(X, Y).\ne(X, Y), t(Y, Z) -> t(X, Z).";

TEST(MagicTest, BoundSourceTransitiveClosure) {
  Fixture f(kTransitiveClosure,
            "e(a, b). e(b, c). e(x1, x2). e(x2, x3). e(x3, x4).");
  Atom query = ParseAtom("t(a, Z)", &f.syms).value();
  Result<std::set<std::vector<Term>>> magic =
      MagicAnswers(f.theory, f.db, query, &f.syms);
  ASSERT_TRUE(magic.ok()) << magic.status().message();
  // Oracle: full evaluation, filtered.
  Result<std::set<std::vector<Term>>> full =
      DatalogAnswers(f.theory, f.db, f.syms.Relation("t"), &f.syms);
  ASSERT_TRUE(full.ok());
  std::set<std::vector<Term>> expected;
  for (const auto& tuple : full.value()) {
    if (tuple[0] == f.syms.Constant("a")) expected.insert(tuple);
  }
  EXPECT_EQ(magic.value(), expected);
  EXPECT_EQ(magic.value().size(), 2u);  // t(a,b), t(a,c).
}

TEST(MagicTest, RelevanceAvoidsUnreachablePart) {
  // The x-chain is irrelevant to the query on a; the magic program must
  // not derive adorned t-facts for it.
  Fixture f(kTransitiveClosure,
            "e(a, b). e(x1, x2). e(x2, x3). e(x3, x4). e(x4, x5).");
  Atom query = ParseAtom("t(a, Z)", &f.syms).value();
  Result<MagicResult> magic = MagicSets(f.theory, query, &f.syms);
  ASSERT_TRUE(magic.ok());
  Result<DatalogResult> magic_eval =
      EvaluateDatalog(magic.value().program, f.db, &f.syms);
  ASSERT_TRUE(magic_eval.ok());
  Result<DatalogResult> full_eval = EvaluateDatalog(f.theory, f.db, &f.syms);
  ASSERT_TRUE(full_eval.ok());
  size_t magic_t =
      magic_eval.value().database.AtomsOf(magic.value().query_relation)
          .size();
  size_t full_t =
      full_eval.value().database.AtomsOf(f.syms.Relation("t")).size();
  EXPECT_EQ(magic_t, 1u);   // Only t(a, b).
  EXPECT_EQ(full_t, 11u);   // The whole closure (1 + C(5,2)).
}

TEST(MagicTest, SameGenerationClassic) {
  Fixture f(R"(
    flat(X, Y) -> sg(X, Y).
    up(X, U), sg(U, V), down(V, Y) -> sg(X, Y).
  )",
            R"(
    up(a, m1). up(b, m2).
    flat(m1, m2). flat(m2, m1).
    down(m1, a2). down(m2, b2).
  )");
  Atom query = ParseAtom("sg(a, Y)", &f.syms).value();
  Result<std::set<std::vector<Term>>> magic =
      MagicAnswers(f.theory, f.db, query, &f.syms);
  ASSERT_TRUE(magic.ok()) << magic.status().message();
  // sg(a, b2): up(a, m1), flat(m1, m2), down(m2, b2).
  std::set<std::vector<Term>> expected = {
      {f.syms.Constant("a"), f.syms.Constant("b2")}};
  EXPECT_EQ(magic.value(), expected);
}

TEST(MagicTest, AllFreeQueryMatchesFullEvaluation) {
  Fixture f(kTransitiveClosure, "e(a, b). e(b, c).");
  Atom query = ParseAtom("t(X, Y)", &f.syms).value();
  Result<std::set<std::vector<Term>>> magic =
      MagicAnswers(f.theory, f.db, query, &f.syms);
  ASSERT_TRUE(magic.ok());
  Result<std::set<std::vector<Term>>> full =
      DatalogAnswers(f.theory, f.db, f.syms.Relation("t"), &f.syms);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(magic.value(), full.value());
}

TEST(MagicTest, GroundQueryMembership) {
  Fixture f(kTransitiveClosure, "e(a, b). e(b, c). e(c, d).");
  Atom yes = ParseAtom("t(a, d)", &f.syms).value();
  Atom no = ParseAtom("t(d, a)", &f.syms).value();
  auto r1 = MagicAnswers(f.theory, f.db, yes, &f.syms);
  auto r2 = MagicAnswers(f.theory, f.db, no, &f.syms);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1.value().size(), 1u);
  EXPECT_TRUE(r2.value().empty());
}

TEST(MagicTest, RepeatedQueryVariables) {
  Fixture f(kTransitiveClosure, "e(a, b). e(b, a). e(c, d).");
  Atom query = ParseAtom("t(X, X)", &f.syms).value();
  auto r = MagicAnswers(f.theory, f.db, query, &f.syms);
  ASSERT_TRUE(r.ok());
  // a → b → a and b → a → b are cycles: t(a,a), t(b,b).
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(MagicTest, BoundSecondArgument) {
  Fixture f(kTransitiveClosure, "e(a, b). e(b, c). e(d, c).");
  Atom query = ParseAtom("t(X, c)", &f.syms).value();
  auto magic = MagicAnswers(f.theory, f.db, query, &f.syms);
  ASSERT_TRUE(magic.ok());
  EXPECT_EQ(magic.value().size(), 3u);  // a, b, d reach c.
}

TEST(MagicTest, RejectsNegationAndExistentials) {
  SymbolTable syms;
  Theory negated =
      ParseTheory("acdom(X), not e(X, X) -> loopfree(X).", &syms).value();
  Atom q1 = ParseAtom("loopfree(X)", &syms).value();
  EXPECT_FALSE(MagicSets(negated, q1, &syms).ok());
  Theory existential =
      ParseTheory("a(X) -> exists Y. e(X, Y).", &syms).value();
  Atom q2 = ParseAtom("e(X, Y)", &syms).value();
  EXPECT_FALSE(MagicSets(existential, q2, &syms).ok());
}

TEST(MagicTest, RejectsEdbQuery) {
  Fixture f(kTransitiveClosure, "e(a, b).");
  Atom query = ParseAtom("e(a, X)", &f.syms).value();
  EXPECT_FALSE(MagicSets(f.theory, query, &f.syms).ok());
}

TEST(MagicTest, AdornedPredicateCountIsReported) {
  Fixture f(kTransitiveClosure, "e(a, b).");
  Atom query = ParseAtom("t(a, Z)", &f.syms).value();
  Result<MagicResult> magic = MagicSets(f.theory, query, &f.syms);
  ASSERT_TRUE(magic.ok());
  // t^bf only (the recursion keeps the bound-free pattern).
  EXPECT_EQ(magic.value().adorned_predicates, 1u);
}

}  // namespace
}  // namespace gerel
