// Tests for resource governance (core/budget.h, core/fault.h): budget
// arming and tripping, fault-plan parsing, and the cap-soundness
// property — a budget-capped chase/saturation derives a subset of the
// uncapped run, at every worker-lane count.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "chase/chase.h"
#include "core/budget.h"
#include "core/fault.h"
#include "core/parser.h"
#include "core/printer.h"
#include "testing/random_theories.h"
#include "transform/canonical.h"
#include "transform/saturation.h"

namespace gerel {
namespace {

using gerel::testing::RandomParams;
using gerel::testing::RandomTheoryGen;

TEST(DegradationReasonTest, DefaultIsNotDegraded) {
  DegradationReason r;
  EXPECT_FALSE(r.degraded());
  EXPECT_EQ(r.ToString(), "none");
  EXPECT_EQ(r.ToJson(), "null");
}

TEST(DegradationReasonTest, RendersStageLimitAndRound) {
  DegradationReason r;
  r.stage = GovernedStage::kChase;
  r.limit = BudgetLimit::kDeadline;
  r.round = 7;
  EXPECT_TRUE(r.degraded());
  EXPECT_EQ(r.ToString(), "chase: deadline at round 7");
  EXPECT_EQ(r.ToJson(), "{\"stage\":\"chase\",\"limit\":\"deadline\",\"round\":7}");
}

TEST(BudgetLimitsTest, UnlimitedByDefault) {
  BudgetLimits limits;
  EXPECT_TRUE(limits.unlimited());
  limits.timeout_ms = 5;
  EXPECT_FALSE(limits.unlimited());
  limits.timeout_ms = 0;
  limits.max_atoms = 10;
  EXPECT_FALSE(limits.unlimited());
}

TEST(ExecutionBudgetTest, UnlimitedBudgetNeverTrips) {
  ExecutionBudget budget;
  for (uint64_t round = 1; round <= 100; ++round) {
    EXPECT_TRUE(budget.CheckRound(GovernedStage::kChase, round, round * 100));
  }
  EXPECT_FALSE(budget.exhausted());
  EXPECT_FALSE(budget.ExhaustedFast());
  EXPECT_FALSE(budget.reason().degraded());
}

TEST(ExecutionBudgetTest, AtomCeilingTripsAtRoundBoundary) {
  BudgetLimits limits;
  limits.max_atoms = 50;
  ExecutionBudget budget(limits);
  // The ceiling is an allowed maximum: exactly max_atoms may stand,
  // one more trips.
  EXPECT_TRUE(budget.CheckRound(GovernedStage::kChase, 1, 50));
  EXPECT_FALSE(budget.CheckRound(GovernedStage::kChase, 2, 51));
  EXPECT_TRUE(budget.exhausted());
  EXPECT_TRUE(budget.ExhaustedFast());
  DegradationReason r = budget.reason();
  EXPECT_EQ(r.stage, GovernedStage::kChase);
  EXPECT_EQ(r.limit, BudgetLimit::kAtoms);
  EXPECT_EQ(r.round, 2u);
}

TEST(ExecutionBudgetTest, ExpiredDeadlineTripsImmediately) {
  BudgetLimits limits;
  limits.timeout_ms = 0.000001;  // Effectively already expired.
  ExecutionBudget budget(limits);
  EXPECT_FALSE(budget.CheckRound(GovernedStage::kDatalog, 3));
  EXPECT_EQ(budget.reason().limit, BudgetLimit::kDeadline);
  EXPECT_EQ(budget.reason().stage, GovernedStage::kDatalog);
}

TEST(ExecutionBudgetTest, FirstTripWins) {
  BudgetLimits limits;
  limits.max_atoms = 10;
  ExecutionBudget budget(limits);
  EXPECT_FALSE(budget.CheckRound(GovernedStage::kSaturation, 4, 11));
  EXPECT_FALSE(budget.CheckRound(GovernedStage::kDatalog, 9, 999));
  EXPECT_EQ(budget.reason().stage, GovernedStage::kSaturation);
  EXPECT_EQ(budget.reason().round, 4u);
}

TEST(ExecutionBudgetTest, CancelReportsCancelled) {
  ExecutionBudget budget;
  budget.Cancel();
  EXPECT_TRUE(budget.ExhaustedFast());
  EXPECT_EQ(budget.reason().limit, BudgetLimit::kCancelled);
  EXPECT_FALSE(budget.CheckRound(GovernedStage::kQuery, 1));
}

TEST(ExecutionBudgetTest, ArmClearsPreviousExhaustion) {
  BudgetLimits limits;
  limits.max_atoms = 5;
  ExecutionBudget budget(limits);
  EXPECT_FALSE(budget.CheckRound(GovernedStage::kChase, 1, 6));
  EXPECT_TRUE(budget.exhausted());
  budget.Arm(BudgetLimits{});
  EXPECT_FALSE(budget.exhausted());
  EXPECT_FALSE(budget.reason().degraded());
  EXPECT_TRUE(budget.CheckRound(GovernedStage::kChase, 1, 1000));
}

TEST(ExecutionBudgetTest, CheckPointObservesExpiredDeadline) {
  BudgetLimits limits;
  limits.timeout_ms = 0.000001;
  ExecutionBudget budget(limits);
  // CheckPoint samples the clock once every 1024 ticks; within a few
  // thousand calls it must observe the expired deadline.
  bool tripped = false;
  for (int i = 0; i < 4096 && !tripped; ++i) {
    tripped = !budget.CheckPoint(GovernedStage::kQuery);
  }
  EXPECT_TRUE(tripped);
  EXPECT_EQ(budget.reason().limit, BudgetLimit::kDeadline);
}

TEST(ExecutionBudgetTest, FaultPlanForcesExhaustionAtSeededRound) {
  FaultPlan plan;
  plan.exhaust_stage = GovernedStage::kChase;
  plan.exhaust_round = 3;
  ExecutionBudget budget(BudgetLimits{}, &plan);
  EXPECT_TRUE(budget.CheckRound(GovernedStage::kChase, 1));
  EXPECT_TRUE(budget.CheckRound(GovernedStage::kChase, 2));
  // Other stages never trip on a chase fault.
  EXPECT_TRUE(budget.CheckRound(GovernedStage::kSaturation, 3));
  EXPECT_FALSE(budget.CheckRound(GovernedStage::kChase, 3));
  EXPECT_EQ(budget.reason().limit, BudgetLimit::kFault);
  EXPECT_EQ(budget.reason().round, 3u);
}

TEST(FaultPlanTest, ParsesFullSpecAndRoundTrips) {
  Result<FaultPlan> plan = FaultPlan::Parse(
      "exhaust=chase@3,delay-us=200,delay-every=2,snap-truncate=100,"
      "snap-flip=57");
  ASSERT_TRUE(plan.ok()) << plan.status().message();
  EXPECT_EQ(plan.value().exhaust_stage, GovernedStage::kChase);
  EXPECT_EQ(plan.value().exhaust_round, 3u);
  EXPECT_EQ(plan.value().worker_delay_us, 200u);
  EXPECT_EQ(plan.value().worker_delay_every, 2u);
  EXPECT_EQ(plan.value().snapshot_truncate_at, 100);
  EXPECT_EQ(plan.value().snapshot_flip_byte, 57);
  EXPECT_TRUE(plan.value().enabled());
  Result<FaultPlan> again = FaultPlan::Parse(plan.value().ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().ToString(), plan.value().ToString());
}

TEST(FaultPlanTest, ExhaustWithoutRoundDefaultsToRoundOne) {
  Result<FaultPlan> plan = FaultPlan::Parse("exhaust=saturation");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().exhaust_stage, GovernedStage::kSaturation);
  EXPECT_EQ(plan.value().exhaust_round, 1u);
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultPlan::Parse("exhaust=warp@3").ok());
  EXPECT_FALSE(FaultPlan::Parse("exhaust=chase@x").ok());
  EXPECT_FALSE(FaultPlan::Parse("delay-every=0").ok());
  EXPECT_FALSE(FaultPlan::Parse("snap-truncate=abc").ok());
  EXPECT_FALSE(FaultPlan::Parse("bogus=1").ok());
  EXPECT_FALSE(FaultPlan::Parse("no-equals").ok());
}

TEST(FaultPlanTest, EmptySpecIsDisabled) {
  Result<FaultPlan> plan = FaultPlan::Parse("");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan.value().enabled());
}

TEST(FaultPlanTest, WorkerDelayIsSafeWithNullPlanAndYieldMode) {
  MaybeInjectWorkerDelay(nullptr, 0);  // Must be a no-op.
  FaultPlan plan;
  plan.worker_delay_us = 0;  // Yield mode.
  plan.worker_delay_every = 2;
  for (uint64_t unit = 0; unit < 8; ++unit) {
    MaybeInjectWorkerDelay(&plan, unit);
  }
}

TEST(GovernedStageTest, NamesRoundTrip) {
  const GovernedStage stages[] = {
      GovernedStage::kNone,      GovernedStage::kChase,
      GovernedStage::kRewrite,   GovernedStage::kGrounding,
      GovernedStage::kSaturation, GovernedStage::kDatalog,
      GovernedStage::kQuery,     GovernedStage::kSnapshot,
  };
  for (GovernedStage s : stages) {
    GovernedStage parsed = GovernedStage::kNone;
    ASSERT_TRUE(ParseGovernedStage(GovernedStageName(s), &parsed));
    EXPECT_EQ(parsed, s);
  }
  GovernedStage parsed = GovernedStage::kNone;
  EXPECT_FALSE(ParseGovernedStage("warp", &parsed));
}

// --- Cap-soundness properties -------------------------------------------
//
// A budget-capped run never invents anything: every atom (or rule) it
// derives also appears in the uncapped run, at every worker-lane count.

class CapSoundnessTest : public ::testing::TestWithParam<unsigned> {};

std::set<std::string> AtomStrings(const Database& db, const SymbolTable& syms) {
  std::set<std::string> out;
  for (const Atom& a : db.atoms()) out.insert(ToString(a, syms));
  return out;
}

TEST_P(CapSoundnessTest, CappedChaseIsSubsetOfUncapped) {
  SymbolTable syms;
  RandomTheoryGen gen(GetParam(), &syms);
  RandomParams params;
  params.num_rules = 6;
  params.existential_prob = 0.4;
  Theory t = gen.Theory_(params);
  Database db = gen.Database_(8, 4);
  ChaseOptions uncapped;
  uncapped.max_steps = 20000;
  uncapped.max_atoms = 20000;
  SymbolTable clean_syms = syms;
  ChaseResult clean = Chase(t, db, &clean_syms, uncapped);
  if (!clean.saturated) GTEST_SKIP() << "uncapped chase did not saturate";
  std::set<std::string> clean_atoms = AtomStrings(clean.database, clean_syms);

  for (size_t threads : {size_t{2}, size_t{4}}) {
    BudgetLimits limits;
    limits.max_atoms = 1 + GetParam() % 16;
    ExecutionBudget budget(limits);
    SymbolTable capped_syms = syms;
    ChaseOptions capped = uncapped;
    capped.num_threads = threads;
    capped.budget = &budget;
    ChaseResult r = Chase(t, db, &capped_syms, capped);
    std::set<std::string> capped_atoms = AtomStrings(r.database, capped_syms);
    EXPECT_TRUE(std::includes(clean_atoms.begin(), clean_atoms.end(),
                              capped_atoms.begin(), capped_atoms.end()))
        << "capped chase derived atoms outside the uncapped chase at "
        << threads << " threads";
    if (!r.saturated) {
      EXPECT_TRUE(r.degradation.degraded())
          << "capped unsaturated chase reported no DegradationReason";
    }
  }
}

TEST_P(CapSoundnessTest, CappedSaturationIsSubsetOfUncapped) {
  SymbolTable syms;
  RandomTheoryGen gen(GetParam(), &syms);
  RandomParams params;
  params.num_rules = 5;
  params.existential_prob = 0.5;
  params.force_guarded = true;
  Theory t = gen.Theory_(params);
  SaturationOptions uncapped;
  uncapped.max_rules = 4000;
  SymbolTable clean_syms = syms;
  Result<SaturationResult> clean = Saturate(t, &clean_syms, uncapped);
  ASSERT_TRUE(clean.ok()) << clean.status().message();
  if (!clean.value().complete) GTEST_SKIP() << "uncapped closure incomplete";
  std::set<std::string> clean_rules;
  for (const Rule& r : clean.value().closure.rules()) {
    clean_rules.insert(CanonicalRuleString(r, clean_syms));
  }

  for (size_t threads : {size_t{2}, size_t{4}}) {
    SaturationOptions capped = uncapped;
    capped.num_threads = threads;
    capped.max_rules = 1 + GetParam() % 12;
    SymbolTable capped_syms = syms;
    Result<SaturationResult> r = Saturate(t, &capped_syms, capped);
    ASSERT_TRUE(r.ok()) << r.status().message();
    for (const Rule& rule : r.value().datalog.rules()) {
      EXPECT_TRUE(clean_rules.count(CanonicalRuleString(rule, capped_syms)))
          << "capped saturation derived a rule outside the uncapped "
          << "closure at " << threads << " threads: "
          << ToString(rule, capped_syms);
    }
    if (!r.value().complete) {
      EXPECT_TRUE(r.value().degradation.degraded())
          << "capped incomplete saturation reported no DegradationReason";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CapSoundnessTest,
                         ::testing::Range(1u, 13u));

}  // namespace
}  // namespace gerel
