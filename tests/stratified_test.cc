// Tests for stratified existential theories (paper §8, Defs 22–23).
#include <gtest/gtest.h>

#include "core/parser.h"
#include "core/printer.h"
#include "datalog/evaluator.h"
#include "stratified/stratified_chase.h"

namespace gerel {
namespace {

struct Fixture {
  SymbolTable syms;
  Theory theory;
  Database db;

  Fixture(const char* rules, const char* facts) {
    theory = ParseTheory(rules, &syms).value();
    db = ParseDatabase(facts, &syms).value();
  }
};

TEST(StratifiedChaseTest, AgreesWithDatalogOnStratifiedDatalog) {
  Fixture f(R"(
    e(X, Y) -> t(X, Y).
    e(X, Y), t(Y, Z) -> t(X, Z).
    acdom(X), acdom(Y), not t(X, Y) -> unreach(X, Y).
  )",
            "e(a, b). e(b, a). e(c, c).");
  Result<StratifiedChaseResult> chased =
      StratifiedChase(f.theory, f.db, &f.syms);
  ASSERT_TRUE(chased.ok()) << chased.status().message();
  EXPECT_TRUE(chased.value().saturated);
  Result<DatalogResult> eval = EvaluateDatalog(f.theory, f.db, &f.syms);
  ASSERT_TRUE(eval.ok());
  RelationId unreach = f.syms.Relation("unreach");
  EXPECT_EQ(chased.value().database.AtomsOf(unreach).size(),
            eval.value().database.AtomsOf(unreach).size());
}

TEST(StratifiedChaseTest, NegationOverExistentialConsequences) {
  // gen(X) → ∃Y e(X, Y); constants without outgoing *input* e-edge but
  // with an invented one still count as senders.
  Fixture f(R"(
    gen(X) -> exists Y. e(X, Y).
    e(X, Y) -> sender(X).
    acdom(X), not sender(X) -> silent(X).
  )",
            "gen(a). e(b, c). isolated(d).");
  Result<StratifiedChaseResult> r = StratifiedChase(f.theory, f.db, &f.syms);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_TRUE(r.value().saturated);
  RelationId silent = f.syms.Relation("silent");
  RelationId sender = f.syms.Relation("sender");
  EXPECT_TRUE(r.value().database.Contains(
      Atom(sender, {f.syms.Constant("a")})));
  // a and b send; c and d are silent.
  EXPECT_EQ(r.value().database.AtomsOf(silent).size(), 2u);
  EXPECT_TRUE(r.value().database.Contains(
      Atom(silent, {f.syms.Constant("d")})));
}

TEST(StratifiedChaseTest, ThreeStrataChain) {
  Fixture f(R"(
    base(X) -> a(X).
    acdom(X), not a(X) -> b(X).
    acdom(X), not b(X) -> c(X).
  )",
            "base(p). other(q).");
  Result<StratifiedChaseResult> r = StratifiedChase(f.theory, f.db, &f.syms);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().strata, 3u);
  // a = {p}; b = {q}; c = {p}.
  EXPECT_TRUE(r.value().database.Contains(
      Atom(f.syms.Relation("c"), {f.syms.Constant("p")})));
  EXPECT_FALSE(r.value().database.Contains(
      Atom(f.syms.Relation("c"), {f.syms.Constant("q")})));
}

TEST(StratifiedChaseTest, RejectsNonStratifiable) {
  Fixture f("move(X, Y), not win(Y) -> win(X).", "move(a, b).");
  EXPECT_FALSE(StratifiedChase(f.theory, f.db, &f.syms).ok());
}

TEST(StratifiedChaseTest, ComplementRelationsAreHidden) {
  Fixture f("acdom(X), not r(X) -> s(X).", "r(a). t(b).");
  Result<StratifiedChaseResult> result =
      StratifiedChase(f.theory, f.db, &f.syms);
  ASSERT_TRUE(result.ok());
  for (const Atom& a : result.value().database.atoms()) {
    EXPECT_EQ(f.syms.RelationName(a.pred).rfind("not#", 0),
              std::string::npos);
  }
  EXPECT_TRUE(result.value().database.Contains(
      Atom(f.syms.Relation("s"), {f.syms.Constant("b")})));
}

TEST(StratifiedChaseTest, ParityOfDomainIsExpressible) {
  // The motivating non-monotonic query (paper §8): is |dom| even? Using
  // an externally given order here (succ/min/max facts).
  Fixture f(R"(
    min(X) -> odd(X).
    odd(X), succ(X, Y) -> even(Y).
    even(X), succ(X, Y) -> odd(Y).
    even(X), max(X) -> evendomain.
  )",
            "succ(a, b). succ(b, c). succ(c, d). min(a). max(d).");
  Result<StratifiedChaseResult> r = StratifiedChase(f.theory, f.db, &f.syms);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(
      r.value().database.Contains(Atom(f.syms.Relation("evendomain"), {})));
}

TEST(WeakGuardednessTest, StratifiedCheckDropsNegation) {
  SymbolTable syms;
  Theory t = ParseTheory(R"(
    r(X) -> exists Y. e(X, Y).
    e(X, Y), not bad(Y) -> good(Y).
  )",
                         &syms)
                 .value();
  EXPECT_TRUE(IsStratifiedWeaklyGuarded(t));
}

}  // namespace
}  // namespace gerel
