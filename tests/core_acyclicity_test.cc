// Tests for weak and joint acyclicity, including their relationship to
// chase termination.
#include <gtest/gtest.h>

#include "chase/chase.h"
#include "core/acyclicity.h"
#include "core/parser.h"

namespace gerel {
namespace {

Theory Parse(const char* text, SymbolTable* syms) {
  Result<Theory> t = ParseTheory(text, syms);
  EXPECT_TRUE(t.ok()) << t.status().message();
  return std::move(t).value();
}

TEST(AcyclicityTest, DatalogIsTriviallyAcyclic) {
  SymbolTable syms;
  Theory t = Parse("e(X, Y) -> t(X, Y).\ne(X, Y), t(Y, Z) -> t(X, Z).",
                   &syms);
  EXPECT_TRUE(IsWeaklyAcyclic(t));
  EXPECT_TRUE(IsJointlyAcyclic(t));
}

TEST(AcyclicityTest, SelfFeedingExistentialIsNeither) {
  SymbolTable syms;
  Theory t = Parse("r(X, Y) -> exists Z. r(Y, Z).", &syms);
  EXPECT_FALSE(IsWeaklyAcyclic(t));
  EXPECT_FALSE(IsJointlyAcyclic(t));
  // And indeed the chase diverges.
  Database db = ParseDatabase("r(a, b).", &syms).value();
  ChaseOptions opts;
  opts.max_steps = 100;
  EXPECT_FALSE(Chase(t, db, &syms, opts).saturated);
}

TEST(AcyclicityTest, RunningExampleIsWeaklyAcyclic) {
  SymbolTable syms;
  Theory t = Parse(R"(
    publication(X) -> exists K1, K2. keywords(X, K1, K2).
    keywords(X, K1, K2) -> hastopic(X, K1).
    hastopic(X, Z), hasauthor(X, U), hasauthor(Y, U), hastopic(Y, Z2),
      scientific(Z2), citedin(Y, X) -> scientific(Z).
    hasauthor(X, Y), hastopic(X, Z), scientific(Z) -> q(Y).
  )",
                   &syms);
  EXPECT_TRUE(IsWeaklyAcyclic(t));
  EXPECT_TRUE(IsJointlyAcyclic(t));
}

TEST(AcyclicityTest, JointlyButNotWeaklyAcyclic) {
  // The invented null reaches P's position (special cycle in the
  // position graph), but it can never be joined with a Q fact, so the
  // existential never re-fires: jointly acyclic, terminating chase.
  SymbolTable syms;
  Theory t = Parse(R"(
    p(X), q0(X) -> exists Y. r(X, Y).
    r(X, Y) -> p(Y).
  )",
                   &syms);
  EXPECT_FALSE(IsWeaklyAcyclic(t));
  EXPECT_TRUE(IsJointlyAcyclic(t));
  Database db = ParseDatabase("p(a). q0(a).", &syms).value();
  ChaseResult r = Chase(t, db, &syms);
  EXPECT_TRUE(r.saturated);
}

TEST(AcyclicityTest, WeaklyAcyclicChaseTerminates) {
  SymbolTable syms;
  Theory t = Parse(R"(
    a(X) -> exists Y. r(X, Y).
    r(X, Y) -> s(Y, Y).
    s(X, Y) -> exists Z. t(X, Y, Z).
  )",
                   &syms);
  ASSERT_TRUE(IsWeaklyAcyclic(t));
  Database db = ParseDatabase("a(c). a(d).", &syms).value();
  EXPECT_TRUE(Chase(t, db, &syms).saturated);
}

TEST(AcyclicityTest, TwoRuleFeedbackLoop) {
  SymbolTable syms;
  Theory t = Parse(R"(
    r(X, Y) -> exists Z. s(Z, X).
    s(X, Y) -> r(X, Y).
  )",
                   &syms);
  EXPECT_FALSE(IsWeaklyAcyclic(t));
  EXPECT_FALSE(IsJointlyAcyclic(t));
}

TEST(AcyclicityTest, EmptyTheory) {
  Theory t;
  EXPECT_TRUE(IsWeaklyAcyclic(t));
  EXPECT_TRUE(IsJointlyAcyclic(t));
}

TEST(AcyclicityTest, FactRulesAreAcyclic) {
  SymbolTable syms;
  Theory t = Parse("-> r(c).", &syms);
  EXPECT_TRUE(IsWeaklyAcyclic(t));
  EXPECT_TRUE(IsJointlyAcyclic(t));
}

}  // namespace
}  // namespace gerel
