// Unit tests for the static analyzer (analyze/analyze.h): at least one
// positive and one negative case per GR code, the explain witnesses,
// renderer determinism, and parser/analyzer edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/analyze.h"
#include "analyze/render.h"
#include "core/parser.h"

namespace gerel {
namespace {

struct Analyzed {
  SymbolTable syms;
  SourceMap map;
  AnalysisResult result;
  std::string error;
};

// Parses `text` with spans and runs every analyzer over it.
Analyzed AnalyzeText(const std::string& text, bool explain = false) {
  Analyzed out;
  Result<Program> p = ParseProgram(text, &out.syms, &out.map);
  if (!p.ok()) {
    out.error = p.status().message();
    return out;
  }
  AnalyzeOptions options;
  options.explain = explain;
  options.source = &out.map;
  out.result = Analyze(p.value().theory, p.value().database, out.syms,
                       options);
  return out;
}

size_t CountCode(const AnalysisResult& r, const std::string& code) {
  size_t n = 0;
  for (const Diagnostic& d : r.diagnostics) {
    if (d.code == code) ++n;
  }
  return n;
}

const Diagnostic* FindCode(const AnalysisResult& r, const std::string& code) {
  for (const Diagnostic& d : r.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

// --- GR001 / GR010 -------------------------------------------------------

TEST(AnalyzeTest, Gr001UnsafeVariableWithoutGuardButFrontierGuarded) {
  Analyzed a = AnalyzeText(
      "t(X) -> exists Y. e(X, Y).\n"
      "e(X, Y) -> t(Y).\n"
      "e(X, Y), e(Y, Z) -> u(X).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_EQ(CountCode(a.result, "GR001"), 1u);
  const Diagnostic* d = FindCode(a.result, "GR001");
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("rule 2"), std::string::npos);
  EXPECT_NE(d->message.find("{X, Y, Z}"), std::string::npos);
  // The rule still serves: it is weakly frontier-guarded, so no GR010.
  EXPECT_EQ(CountCode(a.result, "GR010"), 0u);
  // The span covers the offending rule.
  EXPECT_EQ(a.map.Resolve(d->span).line, 3u);
}

TEST(AnalyzeTest, Gr001SilentWhenWeaklyGuarded) {
  Analyzed a = AnalyzeText(
      "t(X) -> exists Y. e(X, Y).\n"
      "e(X, Y) -> t(Y).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  EXPECT_EQ(CountCode(a.result, "GR001"), 0u);
  EXPECT_EQ(CountCode(a.result, "GR010"), 0u);
}

TEST(AnalyzeTest, Gr010UnsafeFrontierVariableUnguarded) {
  Analyzed a = AnalyzeText(
      "t(X) -> exists Y. e(X, Y).\n"
      "e(X, Y) -> t(Y).\n"
      "e(X, Y), e(Z, Y) -> t(X), t(Z).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_EQ(CountCode(a.result, "GR010"), 1u);
  const Diagnostic* d = FindCode(a.result, "GR010");
  EXPECT_NE(d->message.find("{X, Z}"), std::string::npos);
  // A note explains *why* the variables are unsafe (the Def 2 witness).
  ASSERT_FALSE(d->notes.empty());
  EXPECT_NE(d->notes[0].find("affected position"), std::string::npos);
  // GR001 must not double-fire on the same rule.
  EXPECT_EQ(CountCode(a.result, "GR001"), 0u);
}

TEST(AnalyzeTest, Gr010SilentOnSafeDatalog) {
  Analyzed a = AnalyzeText("e(X, Y), e(Z, Y) -> t(X), t(Z).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  // No existentials => nothing is unsafe, despite the missing guard.
  EXPECT_EQ(CountCode(a.result, "GR010"), 0u);
  EXPECT_EQ(CountCode(a.result, "GR001"), 0u);
}

// --- GR020 ---------------------------------------------------------------

TEST(AnalyzeTest, Gr020UnreachablePredicates) {
  Analyzed a = AnalyzeText(
      "p(a).\n"
      "p(X) -> q(X).\n"
      "dead(X) -> s(X).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_EQ(CountCode(a.result, "GR020"), 2u);  // dead and s; not p, q.
  const Diagnostic* d = FindCode(a.result, "GR020");
  EXPECT_NE(d->message.find("'dead'"), std::string::npos);
  EXPECT_EQ(a.map.Resolve(d->span).line, 3u);
}

TEST(AnalyzeTest, Gr020NegationNeverBlocksReachability) {
  Analyzed a = AnalyzeText(
      "node(a).\n"
      "node(X), not bad(X) -> good(X).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  // good is derivable (the negative literal holds vacuously); bad is a
  // body-only predicate with no facts.
  ASSERT_EQ(CountCode(a.result, "GR020"), 1u);
  EXPECT_NE(FindCode(a.result, "GR020")->message.find("'bad'"),
            std::string::npos);
}

TEST(AnalyzeTest, Gr020SilentOnBareTheory) {
  // No facts anywhere: there is no reachability structure to judge.
  Analyzed a = AnalyzeText("dead(X) -> s(X).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  EXPECT_EQ(CountCode(a.result, "GR020"), 0u);
}

TEST(AnalyzeTest, Gr020FactRulesPopulateTheirHeads) {
  Analyzed a = AnalyzeText(
      "-> seed(c).\n"
      "seed(X) -> grown(X).\n"
      "other(X) -> unused(X).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  // seed/grown reachable via the empty-body rule; other/unused are not.
  EXPECT_EQ(CountCode(a.result, "GR020"), 2u);
}

// --- GR021 ---------------------------------------------------------------

TEST(AnalyzeTest, Gr021AlphaVariantDuplicateReportedOnce) {
  Analyzed a = AnalyzeText(
      "e(X, Y) -> t(X).\n"
      "e(U, V) -> t(U).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_EQ(CountCode(a.result, "GR021"), 1u);
  const Diagnostic* d = FindCode(a.result, "GR021");
  // Mutual subsumption is reported on the later rule only.
  EXPECT_NE(d->message.find("rule 1 is subsumed by rule 0"),
            std::string::npos);
  ASSERT_FALSE(d->notes.empty());
  EXPECT_NE(d->notes[0].find("e(X, Y) -> t(X)"), std::string::npos);
}

TEST(AnalyzeTest, Gr021StrictSubsumptionReportsTheWeakerRule) {
  Analyzed a = AnalyzeText(
      "p(X), q(X) -> r(X).\n"
      "p(X) -> r(X).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_EQ(CountCode(a.result, "GR021"), 1u);
  // Rule 0 demands more and derives no more: it is the redundant one.
  EXPECT_NE(FindCode(a.result, "GR021")->message
                .find("rule 0 is subsumed by rule 1"),
            std::string::npos);
}

TEST(AnalyzeTest, Gr021NeedsMatchingNegationFlags) {
  Analyzed a = AnalyzeText(
      "p(X), not q(X) -> r(X).\n"
      "p(X), q(X) -> r(X).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  // Neither body embeds into the other with negation flags preserved.
  EXPECT_EQ(CountCode(a.result, "GR021"), 0u);
}

TEST(AnalyzeTest, Gr021HeadsMustMatchNotJustBodies) {
  // Identical bodies, different heads: neither rule subsumes the other.
  Analyzed a = AnalyzeText(
      "e(X, Y) -> p(X).\n"
      "e(X, Y) -> q(X).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  EXPECT_EQ(CountCode(a.result, "GR021"), 0u);
}

TEST(AnalyzeTest, Gr021CollapsingJoinVariablesCountsAsSubsumption) {
  // Rule 1's body embeds into rule 0's by collapsing Z onto X, and under
  // that match its head covers t(X) — rule 0 is genuinely redundant.
  Analyzed a = AnalyzeText(
      "e(X, Y) -> t(X).\n"
      "e(X, Y), e(Z, Y) -> t(X), t(Z).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_EQ(CountCode(a.result, "GR021"), 1u);
  EXPECT_NE(FindCode(a.result, "GR021")->message
                .find("rule 0 is subsumed by rule 1"),
            std::string::npos);
}

TEST(AnalyzeTest, Gr021DuplicateTwoHeadRulesAreFound) {
  // Regression: matching the duplicate needs backtracking past a body
  // assignment that collapses Z onto X (the head check then fails and
  // the search must resume, not give up).
  Analyzed a = AnalyzeText(
      "e(X, Y), e(Z, Y) -> t(X), t(Z).\n"
      "e(X, Y), e(Z, Y) -> t(X), t(Z).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_EQ(CountCode(a.result, "GR021"), 1u);
  EXPECT_NE(FindCode(a.result, "GR021")->message
                .find("rule 1 is subsumed by rule 0"),
            std::string::npos);
}

TEST(AnalyzeTest, Gr021SkipsExistentialRules) {
  Analyzed a = AnalyzeText(
      "p(X) -> exists Y. e(X, Y).\n"
      "p(U) -> exists V. e(U, V).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  // Fresh-null heads make set inclusion the wrong criterion; skipped.
  EXPECT_EQ(CountCode(a.result, "GR021"), 0u);
}

TEST(AnalyzeTest, Gr021RuleIsNeverItsOwnSubsumer) {
  // The body embeds into itself in two ways (the rule is symmetric),
  // but i == j is excluded.
  Analyzed a = AnalyzeText("e(X, Y), e(Y, X) -> t(X), t(Y).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  EXPECT_EQ(CountCode(a.result, "GR021"), 0u);
}

TEST(AnalyzeTest, Gr021CapEmitsANote) {
  std::string text;
  for (int i = 0; i < 4; ++i) {
    text += "p" + std::to_string(i) + "(X) -> q(X).\n";
  }
  SymbolTable syms;
  Result<Program> p = ParseProgram(text, &syms);
  ASSERT_TRUE(p.ok());
  AnalyzeOptions options;
  options.max_subsumption_rules = 2;
  AnalysisResult r = Analyze(p.value().theory, p.value().database, syms,
                             options);
  const Diagnostic* d = FindCode(r, "GR021");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_NE(d->message.find("skipped"), std::string::npos);
}

// --- GR030 ---------------------------------------------------------------

TEST(AnalyzeTest, Gr030AnnotationShapeMismatchIsAnError) {
  Analyzed a = AnalyzeText(
      "ann(X, Y) -> p(X).\n"
      "ann[c](d).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_EQ(CountCode(a.result, "GR030"), 1u);
  const Diagnostic* d = FindCode(a.result, "GR030");
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("'ann'"), std::string::npos);
  EXPECT_EQ(a.result.errors, 1u);
}

TEST(AnalyzeTest, Gr030SilentOnConsistentAnnotationUse) {
  Analyzed a = AnalyzeText(
      "ann[c](d).\n"
      "ann[U](X) -> p(X).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  EXPECT_EQ(CountCode(a.result, "GR030"), 0u);
}

// --- GR040 ---------------------------------------------------------------

TEST(AnalyzeTest, Gr040NegationCycleIsAnErrorWithTheCyclePrinted) {
  Analyzed a = AnalyzeText(
      "node(a).\n"
      "node(X), not odd(X) -> even(X).\n"
      "node(X), not even(X) -> odd(X).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_EQ(CountCode(a.result, "GR040"), 1u);
  const Diagnostic* d = FindCode(a.result, "GR040");
  EXPECT_EQ(d->severity, Severity::kError);
  ASSERT_FALSE(d->notes.empty());
  EXPECT_NE(d->notes[0].find("even -> odd -> even"), std::string::npos);
  // The span points at the negated literal, not the whole rule.
  EXPECT_EQ(a.map.Resolve(d->span).line, 2u);
  EXPECT_EQ(a.map.Resolve(d->span).col, 14u);
}

TEST(AnalyzeTest, Gr040SilentOnStratifiablePrograms) {
  Analyzed a = AnalyzeText(
      "node(a).\n"
      "node(X), not bad(X) -> good(X).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  EXPECT_EQ(CountCode(a.result, "GR040"), 0u);
}

TEST(AnalyzeTest, Gr040SelfNegationCycle) {
  Analyzed a = AnalyzeText("p(X), not q(X) -> q(X).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_EQ(CountCode(a.result, "GR040"), 1u);
  EXPECT_NE(FindCode(a.result, "GR040")->notes[0].find("q -> q"),
            std::string::npos);
}

// --- GR050 ---------------------------------------------------------------

TEST(AnalyzeTest, Gr050WarnsWhenNeitherWeaklyNorJointlyAcyclic) {
  Analyzed a = AnalyzeText("r(X, Y) -> exists Z. r(Y, Z).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_EQ(CountCode(a.result, "GR050"), 1u);
  const Diagnostic* d = FindCode(a.result, "GR050");
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("neither weakly nor jointly"),
            std::string::npos);
}

TEST(AnalyzeTest, Gr070NoteWhenJointlyButNotWeaklyAcyclic) {
  Analyzed a = AnalyzeText(
      "p(X), q0(X) -> exists Y. r(X, Y).\n"
      "r(X, Y) -> p(Y).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  // A certified theory gets the GR070 certificate note; the legacy
  // GR050 warning is reserved for refuted/inconclusive theories.
  EXPECT_EQ(CountCode(a.result, "GR050"), 0u);
  ASSERT_EQ(CountCode(a.result, "GR070"), 1u);
  const Diagnostic* d = FindCode(a.result, "GR070");
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_NE(d->message.find("jointly acyclic"), std::string::npos);
}

TEST(AnalyzeTest, Gr050SilentOnWeaklyAcyclicAndOnDatalog) {
  Analyzed wa = AnalyzeText("a(X) -> exists Y. r(X, Y).\nr(X, Y) -> s(Y, Y).\n");
  ASSERT_TRUE(wa.error.empty()) << wa.error;
  EXPECT_EQ(CountCode(wa.result, "GR050"), 0u);
  Analyzed dlg = AnalyzeText("e(X, Y), t(Y, Z) -> t(X, Z).\n");
  ASSERT_TRUE(dlg.error.empty()) << dlg.error;
  EXPECT_EQ(CountCode(dlg.result, "GR050"), 0u);
}

// --- GR070-GR072: the termination certificate ----------------------------

TEST(AnalyzeTest, Gr070WeaklyAcyclicCertificateCarriesTheOrder) {
  Analyzed a =
      AnalyzeText("a(X) -> exists Y. r(X, Y).\nr(X, Y) -> s(Y, Y).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_EQ(CountCode(a.result, "GR070"), 1u);
  const Diagnostic* d = FindCode(a.result, "GR070");
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_NE(d->message.find("weakly acyclic"), std::string::npos);
  ASSERT_FALSE(d->notes.empty());
  EXPECT_NE(d->notes[0].find("Skolem function order:"), std::string::npos);
  EXPECT_EQ(a.result.termination.kind, CertificateKind::kWeaklyAcyclic);
  EXPECT_TRUE(a.result.termination.terminating());
  // The pre-rendered order names match the certificate's length.
  EXPECT_EQ(a.result.termination_order.size(),
            a.result.termination.order.size());
}

TEST(AnalyzeTest, Gr070MfaCertificateWhenNeitherWeaklyNorJointlyAcyclic) {
  // The Ω-closure sees nulls in both u positions and p.1, so the
  // dependency graph is cyclic (not JA) — but no single atom ever holds
  // the same null twice, so u(Y, Y) never fires on a null and the
  // critical-instance chase saturates.
  Analyzed a = AnalyzeText(
      "a(X) -> exists Y. u(X, Y).\n"
      "u(X, Y) -> u(Y, X).\n"
      "u(Y, Y) -> p(Y).\n"
      "p(X) -> a(X).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  EXPECT_EQ(CountCode(a.result, "GR050"), 0u);
  ASSERT_EQ(CountCode(a.result, "GR070"), 1u);
  const Diagnostic* d = FindCode(a.result, "GR070");
  EXPECT_NE(d->message.find("model-faithful acyclicity"), std::string::npos);
  EXPECT_EQ(a.result.termination.kind, CertificateKind::kMfa);
  EXPECT_GT(a.result.termination.critical_steps, 0u);
}

TEST(AnalyzeTest, Gr071RefutationNamesTheCyclicSkolemPath) {
  Analyzed a = AnalyzeText("r(X, Y) -> exists Z. r(Y, Z).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  // Refuted theories keep the legacy GR050 warning and add the witness.
  EXPECT_EQ(CountCode(a.result, "GR050"), 1u);
  ASSERT_EQ(CountCode(a.result, "GR071"), 1u);
  const Diagnostic* d = FindCode(a.result, "GR071");
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("cyclic Skolem path"), std::string::npos);
  ASSERT_EQ(d->notes.size(), 2u);
  EXPECT_NE(d->notes[1].find("gerel check --dot"), std::string::npos);
  EXPECT_EQ(a.result.termination.kind, CertificateKind::kRefuted);
  EXPECT_FALSE(a.result.termination.cycle.empty());
  EXPECT_EQ(a.result.termination_cycle.size(),
            a.result.termination.cycle.size());
}

TEST(AnalyzeTest, Gr072InconclusiveWhenTheCriticalChaseIsCapped) {
  // The same refutable theory, but with a budget too small for the
  // critical-instance chase to reach the cyclic Skolem term.
  SymbolTable syms;
  SourceMap map;
  Result<Program> p =
      ParseProgram("r(X, Y) -> exists Z. r(Y, Z).\n", &syms, &map);
  ASSERT_TRUE(p.ok());
  AnalyzeOptions options;
  options.source = &map;
  // One chase step invents f(*) but never the nested f(f(*)) that
  // refutes MFA, so the ladder cannot reach a verdict.
  options.termination.max_steps = 1;
  AnalysisResult r =
      Analyze(p.value().theory, p.value().database, syms, options);
  EXPECT_EQ(CountCode(r, "GR050"), 1u);
  EXPECT_EQ(CountCode(r, "GR071"), 0u);
  ASSERT_EQ(CountCode(r, "GR072"), 1u);
  const Diagnostic* d = FindCode(r, "GR072");
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_NE(d->message.find("inconclusive"), std::string::npos);
  EXPECT_EQ(r.termination.kind, CertificateKind::kInconclusive);
  EXPECT_FALSE(r.termination.terminating());
}

// --- GR080-GR084: the extended lattice membership matrix -----------------
//
// One positive and one negative theory per class. Every theory keeps at
// least one existential rule (the notes stay silent on Datalog), and
// the explain witnesses (indices 7..11: linear, frontier-one, joinless,
// domain-restricted, shy) must agree with the emitted notes.

TEST(AnalyzeTest, Gr080LinearMembership) {
  Analyzed in = AnalyzeText(
      "p(X) -> exists Y. q(X, Y).\n"
      "q(X, Y) -> p(Y).\n",
      /*explain=*/true);
  ASSERT_TRUE(in.error.empty()) << in.error;
  EXPECT_EQ(CountCode(in.result, "GR080"), 1u);
  ASSERT_EQ(in.result.witnesses.size(), 12u);
  EXPECT_EQ(std::string(in.result.witnesses[7].class_name), "linear");
  EXPECT_TRUE(in.result.witnesses[7].member);

  Analyzed out = AnalyzeText(
      "p(X), r(X) -> exists Y. q(X, Y).\n", /*explain=*/true);
  ASSERT_TRUE(out.error.empty()) << out.error;
  EXPECT_EQ(CountCode(out.result, "GR080"), 0u);
  EXPECT_FALSE(out.result.witnesses[7].member);
  EXPECT_NE(out.result.witnesses[7].reason.find("2 positive body atoms"),
            std::string::npos);
}

TEST(AnalyzeTest, Gr081FrontierOneMembership) {
  Analyzed in = AnalyzeText("p(X, X) -> exists Y. q(X, Y).\n",
                            /*explain=*/true);
  ASSERT_TRUE(in.error.empty()) << in.error;
  EXPECT_EQ(CountCode(in.result, "GR081"), 1u);
  EXPECT_EQ(std::string(in.result.witnesses[8].class_name), "frontier-one");
  EXPECT_TRUE(in.result.witnesses[8].member);

  Analyzed out = AnalyzeText("p(X, Z) -> exists Y. q(X, Y, Z).\n",
                             /*explain=*/true);
  ASSERT_TRUE(out.error.empty()) << out.error;
  EXPECT_EQ(CountCode(out.result, "GR081"), 0u);
  EXPECT_FALSE(out.result.witnesses[8].member);
}

TEST(AnalyzeTest, Gr082JoinlessMembership) {
  // Two body atoms but no shared variable: joinless without being
  // linear.
  Analyzed in = AnalyzeText("p(X), r(Z) -> exists Y. q(X, Y, Z).\n",
                            /*explain=*/true);
  ASSERT_TRUE(in.error.empty()) << in.error;
  EXPECT_EQ(CountCode(in.result, "GR080"), 0u);
  EXPECT_EQ(CountCode(in.result, "GR082"), 1u);
  EXPECT_EQ(std::string(in.result.witnesses[9].class_name), "joinless");
  EXPECT_TRUE(in.result.witnesses[9].member);

  Analyzed out = AnalyzeText("p(X), r(X) -> exists Y. q(X, Y).\n",
                             /*explain=*/true);
  ASSERT_TRUE(out.error.empty()) << out.error;
  EXPECT_EQ(CountCode(out.result, "GR082"), 0u);
  EXPECT_FALSE(out.result.witnesses[9].member);
}

TEST(AnalyzeTest, Gr083DomainRestrictedMembership) {
  // Every head atom carries all of the rule's universal body variables.
  Analyzed in = AnalyzeText("p(X) -> exists Y. q(X, Y).\n",
                            /*explain=*/true);
  ASSERT_TRUE(in.error.empty()) << in.error;
  EXPECT_EQ(CountCode(in.result, "GR083"), 1u);
  EXPECT_EQ(std::string(in.result.witnesses[10].class_name),
            "domain-restricted");
  EXPECT_TRUE(in.result.witnesses[10].member);

  // Head q(X, Y) sees X but drops Z: neither all nor none.
  Analyzed out = AnalyzeText("p(X), r(Z) -> exists Y. q(X, Y).\n",
                             /*explain=*/true);
  ASSERT_TRUE(out.error.empty()) << out.error;
  EXPECT_EQ(CountCode(out.result, "GR083"), 0u);
  EXPECT_FALSE(out.result.witnesses[10].member);
}

TEST(AnalyzeTest, Gr084ShyMembership) {
  // Nulls flow from q.2 into p.1, but no attacked variable is ever
  // joined across body atoms or shared between frontier atoms.
  Analyzed in = AnalyzeText(
      "p(X) -> exists Y. q(X, Y).\n"
      "q(X, Y) -> p(Y).\n",
      /*explain=*/true);
  ASSERT_TRUE(in.error.empty()) << in.error;
  EXPECT_EQ(CountCode(in.result, "GR084"), 1u);
  EXPECT_EQ(std::string(in.result.witnesses[11].class_name), "shy");
  EXPECT_TRUE(in.result.witnesses[11].member);

  // X and Y are both attacked by the same Skolem function (its nulls
  // reach p.1) and share no body atom in the last rule: not shy.
  Analyzed out = AnalyzeText(
      "p(X) -> exists Y. q(X, Y).\n"
      "q(X, Y) -> p(Y).\n"
      "p(X), p(Y) -> r(X, Y).\n",
      /*explain=*/true);
  ASSERT_TRUE(out.error.empty()) << out.error;
  EXPECT_EQ(CountCode(out.result, "GR084"), 0u);
  EXPECT_FALSE(out.result.witnesses[11].member);
  EXPECT_FALSE(out.result.witnesses[11].reason.empty());
}

// --- Certificate-witness goldens -----------------------------------------
//
// Byte-exact text renders for one certificate of each flavor: these pin
// the exact diagnostic wording, note order, and source anchoring that
// `gerel check` ships.

TEST(AnalyzeTest, CertifiedTheoryTextRenderIsByteExact) {
  Analyzed a = AnalyzeText(
      "gen(X) -> exists Y. e(X, Y).\n"
      "e(X, Y), e(Y, Z) -> e(X, Z).\n"
      "gen(a).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  RenderOptions ro{"wg.gerel", &a.map};
  EXPECT_EQ(RenderText(a.result, ro),
            "wg.gerel:1:1: note[GR070]: chase termination certified: theory "
            "is weakly acyclic\n"
            "  gen(X) -> exists Y. e(X, Y).\n"
            "  ^~~~~~~~~~~~~~~~~~~~~~~~~~~\n"
            "  note: Skolem function order: r0.Y\n"
            "  note: the Skolem (semi-oblivious) chase terminates on every "
            "database in polynomially many steps\n"
            "wg.gerel:1:1: note[GR084]: theory is shy: attacked variables "
            "are never joined and never shared between frontier atoms\n"
            "  gen(X) -> exists Y. e(X, Y).\n"
            "  ^~~~~~~~~~~~~~~~~~~~~~~~~~~\n"
            "wg.gerel: classification: weakly-guarded, "
            "weakly-frontier-guarded\n"
            "wg.gerel: extended: shy\n"
            "wg.gerel: termination: weakly-acyclic\n"
            "wg.gerel: 0 error(s), 0 warning(s), 2 note(s)\n");
}

TEST(AnalyzeTest, RefutedTheoryTextRenderIsByteExact) {
  Analyzed a = AnalyzeText("r(X, Y) -> exists Z. r(Y, Z).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  RenderOptions ro{"cyc.gerel", &a.map};
  EXPECT_EQ(RenderText(a.result, ro),
            "cyc.gerel:1:1: warning[GR050]: theory is neither weakly nor "
            "jointly acyclic: the oblivious chase may diverge on some "
            "database\n"
            "  r(X, Y) -> exists Z. r(Y, Z).\n"
            "  ^~~~~~~~~~~~~~~~~~~~~~~~~~~~\n"
            "  note: guardedness guarantees decidable query answering, not "
            "chase termination; use the bounded chase (--max-steps) or the "
            "Datalog translations\n"
            "cyc.gerel:1:1: warning[GR071]: theory is not model-faithfully "
            "acyclic: the critical-instance chase built the cyclic Skolem "
            "path r0.Z -> r0.Z\n"
            "  r(X, Y) -> exists Z. r(Y, Z).\n"
            "  ^~~~~~~~~~~~~~~~~~~~~~~~~~~~\n"
            "  note: a null of r0.Z was derived on top of an earlier one; no "
            "acyclicity-based termination certificate exists\n"
            "  note: render the dependency graph with `gerel check --dot`\n"
            "cyc.gerel:1:1: note[GR080]: theory is linear: every rule has at "
            "most one positive body atom\n"
            "  r(X, Y) -> exists Z. r(Y, Z).\n"
            "  ^~~~~~~~~~~~~~~~~~~~~~~~~~~~\n"
            "cyc.gerel:1:1: note[GR081]: theory is frontier-one: every rule "
            "passes at most one variable to its head\n"
            "  r(X, Y) -> exists Z. r(Y, Z).\n"
            "  ^~~~~~~~~~~~~~~~~~~~~~~~~~~~\n"
            "cyc.gerel:1:1: note[GR082]: theory is joinless: no rule joins a "
            "variable across two body atoms\n"
            "  r(X, Y) -> exists Z. r(Y, Z).\n"
            "  ^~~~~~~~~~~~~~~~~~~~~~~~~~~~\n"
            "cyc.gerel:1:1: note[GR084]: theory is shy: attacked variables "
            "are never joined and never shared between frontier atoms\n"
            "  r(X, Y) -> exists Z. r(Y, Z).\n"
            "  ^~~~~~~~~~~~~~~~~~~~~~~~~~~~\n"
            "cyc.gerel: classification: guarded, frontier-guarded, "
            "weakly-guarded, weakly-frontier-guarded, nearly-guarded, "
            "nearly-frontier-guarded\n"
            "cyc.gerel: extended: linear, frontier-one, joinless, shy\n"
            "cyc.gerel: termination: refuted\n"
            "cyc.gerel: 0 error(s), 2 warning(s), 4 note(s)\n");
}

// --- GR060 ---------------------------------------------------------------

TEST(AnalyzeTest, Gr060DeclaredButUnusedExistential) {
  Analyzed a = AnalyzeText("p(X) -> exists W, U. q(X, W).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_EQ(CountCode(a.result, "GR060"), 1u);
  const Diagnostic* d = FindCode(a.result, "GR060");
  EXPECT_NE(d->message.find("U"), std::string::npos);
  EXPECT_NE(d->message.find("never used"), std::string::npos);
  // The span points at the declaration itself.
  EXPECT_EQ(a.map.text().substr(d->span.begin, d->span.end - d->span.begin),
            "U");
}

TEST(AnalyzeTest, Gr060DeclaredExistentialShadowedByBody) {
  Analyzed a = AnalyzeText("p(X) -> exists X. q(X).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_EQ(CountCode(a.result, "GR060"), 1u);
  EXPECT_NE(FindCode(a.result, "GR060")->message.find("no effect"),
            std::string::npos);
}

TEST(AnalyzeTest, Gr060SilentOnGenuineExistentialsAndWithoutSource) {
  Analyzed a = AnalyzeText("p(X) -> exists Y. q(X, Y).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  EXPECT_EQ(CountCode(a.result, "GR060"), 0u);
  // Without a SourceMap the declaration list is gone; no false GR060.
  SymbolTable syms;
  Result<Program> p = ParseProgram("p(X) -> exists W, U. q(X, W).\n", &syms);
  ASSERT_TRUE(p.ok());
  AnalysisResult r =
      Analyze(p.value().theory, p.value().database, syms, AnalyzeOptions());
  EXPECT_EQ(CountCode(r, "GR060"), 0u);
}

// --- Explain witnesses ---------------------------------------------------

TEST(AnalyzeTest, ExplainNamesAWitnessPerFailingClass) {
  Analyzed a = AnalyzeText(
      "t(X) -> exists Y. e(X, Y).\n"
      "e(X, Y) -> t(Y).\n"
      "e(X, Y), e(Z, Y) -> t(X), t(Z).\n",
      /*explain=*/true);
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_EQ(a.result.witnesses.size(), 12u);
  EXPECT_EQ(std::string(a.result.witnesses[0].class_name), "datalog");
  EXPECT_FALSE(a.result.witnesses[0].member);
  EXPECT_EQ(a.result.witnesses[0].rule_index, 0u);
  EXPECT_NE(a.result.witnesses[0].reason.find("existential variables {Y}"),
            std::string::npos);
  // The theory is in no class: every witness names a rule and reason.
  for (const ClassWitness& w : a.result.witnesses) {
    EXPECT_FALSE(w.member) << w.class_name;
    EXPECT_FALSE(w.reason.empty()) << w.class_name;
  }
}

TEST(AnalyzeTest, ExplainMarksMembersWithoutAWitness) {
  Analyzed a = AnalyzeText("e(X, Y), t(Y, Z) -> t(X, Z).\n", /*explain=*/true);
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_EQ(a.result.witnesses.size(), 12u);
  EXPECT_TRUE(a.result.witnesses[0].member);  // datalog
  EXPECT_TRUE(a.result.witnesses[0].reason.empty());
  // Not guarded (no atom holds X, Y, Z), but weakly guarded.
  EXPECT_FALSE(a.result.witnesses[1].member);
  EXPECT_TRUE(a.result.witnesses[3].member);
  EXPECT_EQ(CountCode(a.result, "GR001"), 0u);
}

TEST(AnalyzeTest, ExplainOffByDefault) {
  Analyzed a = AnalyzeText("e(X, Y) -> t(X).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  EXPECT_TRUE(a.result.witnesses.empty());
}

// --- Edge cases ----------------------------------------------------------

TEST(AnalyzeTest, EmptyTheoryAndEmptyDatabase) {
  Analyzed a = AnalyzeText("", /*explain=*/true);
  ASSERT_TRUE(a.error.empty()) << a.error;
  EXPECT_TRUE(a.result.diagnostics.empty());
  ASSERT_EQ(a.result.witnesses.size(), 12u);
  for (const ClassWitness& w : a.result.witnesses) {
    EXPECT_TRUE(w.member) << w.class_name;  // Vacuously in every class.
  }
  EXPECT_EQ(a.result.errors + a.result.warnings + a.result.notes, 0u);
}

TEST(AnalyzeTest, ZeroAryPredicates) {
  Analyzed a = AnalyzeText(
      "boot.\n"
      "boot -> ready.\n"
      "ready, not stop -> run.\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  // stop is a body-only 0-ary predicate with no facts.
  EXPECT_EQ(CountCode(a.result, "GR020"), 1u);
  EXPECT_NE(FindCode(a.result, "GR020")->message.find("'stop'"),
            std::string::npos);
  EXPECT_EQ(CountCode(a.result, "GR040"), 0u);
}

TEST(AnalyzeTest, AnnotatedPositionsAreAnalyzed) {
  Analyzed a = AnalyzeText(
      "r[a](b).\n"
      "s(b).\n"
      "r[U](X), s(X) -> out[U](X).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  // Shapes are consistent, everything reachable, safely annotated: clean.
  EXPECT_TRUE(a.result.diagnostics.empty());
}

TEST(AnalyzeTest, QuotedConstantSpansRenderIntact) {
  Analyzed a = AnalyzeText(
      "q('a b', c).\n"
      "q[U](X) -> p(X).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_EQ(CountCode(a.result, "GR030"), 1u);
  RenderOptions render;
  render.file = "test.gerel";
  render.source = &a.map;
  std::string text = RenderText(a.result, render);
  // The caret snippet reproduces the quoted source line verbatim.
  EXPECT_NE(text.find("q('a b', c)."), std::string::npos);
  EXPECT_NE(text.find("error[GR030]"), std::string::npos);
}

TEST(AnalyzeTest, DiagnosticsAreSortedBySpan) {
  Analyzed a = AnalyzeText(
      "node(a).\n"
      "p(X), not q(X) -> q(X).\n"
      "dead(X) -> s(X).\n");
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_GE(a.result.diagnostics.size(), 2u);
  for (size_t i = 1; i < a.result.diagnostics.size(); ++i) {
    EXPECT_LE(a.result.diagnostics[i - 1].span.begin,
              a.result.diagnostics[i].span.begin);
  }
}

// --- Renderers -----------------------------------------------------------

TEST(AnalyzeTest, RenderersAreDeterministic) {
  const std::string text =
      "t(X) -> exists Y. e(X, Y).\n"
      "e(X, Y) -> t(Y).\n"
      "e(X, Y), e(Z, Y) -> t(X), t(Z).\n"
      "t(a).\n";
  Analyzed a1 = AnalyzeText(text, /*explain=*/true);
  Analyzed a2 = AnalyzeText(text, /*explain=*/true);
  ASSERT_TRUE(a1.error.empty()) << a1.error;
  RenderOptions r1{"f.gerel", &a1.map};
  RenderOptions r2{"f.gerel", &a2.map};
  EXPECT_EQ(RenderText(a1.result, r1), RenderText(a2.result, r2));
  EXPECT_EQ(RenderJson(a1.result, r1), RenderJson(a2.result, r2));
}

TEST(AnalyzeTest, JsonEscapesQuotesAndControlCharacters) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(AnalyzeTest, RenderParseErrorReanchorsOnTheFile) {
  SymbolTable syms;
  Result<Program> p = ParseProgram("e(X, Y) -> t(Y.\n", &syms);
  ASSERT_FALSE(p.ok());
  std::string out = RenderParseError(p.status(), "bad.gerel");
  EXPECT_EQ(out,
            "bad.gerel:1:15: error[GR000]: expected closing bracket\n"
            "  e(X, Y) -> t(Y.\n"
            "                ^\n");
  // Unlocated errors fall back to a plain file prefix.
  Status plain = Status::Error("cannot open bad.gerel");
  EXPECT_EQ(RenderParseError(plain, "bad.gerel"),
            "bad.gerel: error[GR000]: cannot open bad.gerel\n");
}

}  // namespace
}  // namespace gerel
