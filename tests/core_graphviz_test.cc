// Tests for the DOT renderings.
#include <gtest/gtest.h>

#include "chase/chase_tree.h"
#include "core/graphviz.h"
#include "core/parser.h"

namespace gerel {
namespace {

TEST(GraphvizTest, PredicateGraphHasEdges) {
  SymbolTable syms;
  Theory t = ParseTheory(R"(
    a(X) -> exists Y. r(X, Y).
    r(X, Y) -> s(Y).
  )",
                         &syms)
                 .value();
  std::string dot = PredicateGraphDot(t, syms);
  EXPECT_NE(dot.find("\"a\" -> \"r\" [style=dashed]"), std::string::npos);
  EXPECT_NE(dot.find("\"r\" -> \"s\";"), std::string::npos);
  EXPECT_EQ(dot.find("\"s\" -> \"a\""), std::string::npos);
}

TEST(GraphvizTest, PositionGraphMarksSpecialEdges) {
  SymbolTable syms;
  Theory t = ParseTheory("a(X) -> exists Y. r(X, Y).", &syms).value();
  std::string dot = PositionGraphDot(t, syms);
  EXPECT_NE(dot.find("\"a.1\" -> \"r.1\";"), std::string::npos);
  EXPECT_NE(dot.find("\"a.1\" -> \"r.2\" [color=red"), std::string::npos);
}

TEST(GraphvizTest, ChaseTreeRendersAllNodes) {
  SymbolTable syms;
  Theory t = ParseTheory("a(X) -> exists Y. r(X, Y).", &syms).value();
  Database db = ParseDatabase("a(c).", &syms).value();
  ChaseTree tree = BuildChaseTree(t, db, &syms).value();
  std::string dot = ChaseTreeDot(tree, syms);
  EXPECT_NE(dot.find("n0"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("a(c)"), std::string::npos);
}

TEST(GraphvizTest, FactOnlyTheory) {
  SymbolTable syms;
  Theory t = ParseTheory("-> r(c).", &syms).value();
  std::string dot = PredicateGraphDot(t, syms);
  EXPECT_NE(dot.find("\"r\";"), std::string::npos);
}

}  // namespace
}  // namespace gerel
