// Tests for crash-safe PreparedKb persistence (service/snapshot.cc):
// round-trip fidelity, corruption/version/fingerprint detection at load,
// and the re-materialization fallback.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/fault.h"
#include "core/parser.h"
#include "service/prepared_kb.h"

namespace gerel {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* tmp = std::getenv("TMPDIR");
    path_ = std::string(tmp != nullptr && tmp[0] != '\0' ? tmp : "/tmp") +
            "/gerel-snapshot-test-" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".snap";
  }
  void TearDown() override {
    SetFaultPlanForTest(nullptr);
    std::remove(path_.c_str());
  }

  std::string path_;
};

const char* kWgTheory = R"(
  gen(X) -> exists Y. e(X, Y).
  e(X, Y), e(Y, Z) -> e(X, Z).
  e(X, Y) -> node(X).
)";

std::unique_ptr<PreparedKb> PrepareWg(SymbolTable* syms) {
  Theory t = ParseTheory(kWgTheory, syms).value();
  Database db = ParseDatabase("gen(a). e(a, b). e(b, c).", syms).value();
  Result<std::unique_ptr<PreparedKb>> kb = PreparedKb::Prepare(t, db, syms);
  EXPECT_TRUE(kb.ok()) << kb.status().message();
  return std::move(kb).value();
}

std::set<std::vector<Term>> QueryNodes(PreparedKb* kb, SymbolTable* syms) {
  Rule cq = ParseRule("node(U) -> q(U)", syms).value();
  Result<PreparedQueryResult> r = kb->Query(cq);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return r.value().answers;
}

TEST_F(SnapshotTest, RoundTripPreservesModelAndAnswers) {
  SymbolTable syms;
  auto kb = PrepareWg(&syms);
  std::set<std::vector<Term>> clean_answers = QueryNodes(kb.get(), &syms);
  ASSERT_FALSE(clean_answers.empty());
  ASSERT_TRUE(kb->SaveSnapshot(path_).ok());

  SymbolTable loaded_syms;
  Result<std::unique_ptr<PreparedKb>> loaded =
      PreparedKb::LoadSnapshot(path_, &loaded_syms);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value()->mode(), kb->mode());
  EXPECT_EQ(loaded.value()->model_size(), kb->model_size());
  EXPECT_EQ(QueryNodes(loaded.value().get(), &loaded_syms), clean_answers);
  EXPECT_EQ(loaded.value()->stats().snapshot_loads, 1u);
}

TEST_F(SnapshotTest, LoadedKbAcceptsAsserts) {
  SymbolTable syms;
  auto kb = PrepareWg(&syms);
  ASSERT_TRUE(kb->SaveSnapshot(path_).ok());
  SymbolTable loaded_syms;
  Result<std::unique_ptr<PreparedKb>> loaded =
      PreparedKb::LoadSnapshot(path_, &loaded_syms);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  Database extra = ParseDatabase("e(c, d).", &loaded_syms).value();
  Result<AssertResult> asserted =
      loaded.value()->Assert(extra.AtomsVector());
  ASSERT_TRUE(asserted.ok()) << asserted.status().message();
  EXPECT_EQ(asserted.value().new_atoms, 1u);
  Rule cq = ParseRule("node(U) -> q(U)", &loaded_syms).value();
  Result<PreparedQueryResult> r = loaded.value()->Query(cq);
  ASSERT_TRUE(r.ok());
  // d's predecessor chain makes c a node too.
  Term c = loaded_syms.Constant("c");
  EXPECT_TRUE(r.value().answers.count({c}));
}

TEST_F(SnapshotTest, LoadRequiresFreshSymbolTable) {
  SymbolTable syms;
  auto kb = PrepareWg(&syms);
  ASSERT_TRUE(kb->SaveSnapshot(path_).ok());
  // Reusing the populated table must be rejected, not silently mis-bound.
  Result<std::unique_ptr<PreparedKb>> loaded =
      PreparedKb::LoadSnapshot(path_, &syms);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(SnapshotTest, DetectsTruncation) {
  SymbolTable syms;
  auto kb = PrepareWg(&syms);
  ASSERT_TRUE(kb->SaveSnapshot(path_).ok());
  // Truncate at several depths: inside the header, inside the payload,
  // and just shy of the checksum trailer. Every cut must be detected.
  std::ifstream in(path_, std::ios::binary);
  std::string image((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(image.size(), 30u);
  for (size_t cut : {size_t{0}, size_t{10}, size_t{25}, image.size() - 1}) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(image.data(), cut);
    out.close();
    SymbolTable fresh;
    Result<std::unique_ptr<PreparedKb>> loaded =
        PreparedKb::LoadSnapshot(path_, &fresh);
    EXPECT_FALSE(loaded.ok()) << "undetected truncation at byte " << cut;
  }
}

TEST_F(SnapshotTest, DetectsBitFlipAnywhere) {
  SymbolTable syms;
  auto kb = PrepareWg(&syms);
  ASSERT_TRUE(kb->SaveSnapshot(path_).ok());
  std::ifstream in(path_, std::ios::binary);
  std::string image((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Flip one bit in the magic, the version, the size field, the payload,
  // and the checksum trailer.
  for (size_t at : {size_t{2}, size_t{9}, size_t{13}, size_t{24},
                    image.size() - 3}) {
    std::string bad = image;
    bad[at] ^= 0x01;
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bad.data(), bad.size());
    out.close();
    SymbolTable fresh;
    Result<std::unique_ptr<PreparedKb>> loaded =
        PreparedKb::LoadSnapshot(path_, &fresh);
    EXPECT_FALSE(loaded.ok()) << "undetected bit flip at byte " << at;
  }
}

TEST_F(SnapshotTest, DetectsFingerprintMismatch) {
  SymbolTable syms;
  auto kb = PrepareWg(&syms);
  kb->set_snapshot_fingerprint(42);
  ASSERT_TRUE(kb->SaveSnapshot(path_).ok());
  SymbolTable fresh;
  Result<std::unique_ptr<PreparedKb>> stale =
      PreparedKb::LoadSnapshot(path_, &fresh, PreparedKbOptions(), 43);
  EXPECT_FALSE(stale.ok());
  SymbolTable fresh2;
  Result<std::unique_ptr<PreparedKb>> match =
      PreparedKb::LoadSnapshot(path_, &fresh2, PreparedKbOptions(), 42);
  EXPECT_TRUE(match.ok()) << match.status().message();
}

TEST_F(SnapshotTest, FaultPlanCorruptionIsDetectedAndRecoverable) {
  SymbolTable syms;
  auto kb = PrepareWg(&syms);
  std::set<std::vector<Term>> clean_answers = QueryNodes(kb.get(), &syms);

  FaultPlan truncate;
  truncate.snapshot_truncate_at = 12;
  FaultPlan flip;
  flip.snapshot_flip_byte = 30;
  for (const FaultPlan* plan : {&truncate, &flip}) {
    SetFaultPlanForTest(plan);
    ASSERT_TRUE(kb->SaveSnapshot(path_).ok());
    SetFaultPlanForTest(nullptr);
    SymbolTable fresh;
    Result<std::unique_ptr<PreparedKb>> loaded =
        PreparedKb::LoadSnapshot(path_, &fresh);
    EXPECT_FALSE(loaded.ok()) << "undetected injected corruption";
    // Recovery: fall back to a fresh Prepare (what `gerel serve` does).
    SymbolTable recovered_syms;
    auto recovered = PrepareWg(&recovered_syms);
    EXPECT_EQ(QueryNodes(recovered.get(), &recovered_syms), clean_answers);
  }
}

TEST_F(SnapshotTest, MissingFileIsAnError) {
  SymbolTable fresh;
  Result<std::unique_ptr<PreparedKb>> loaded =
      PreparedKb::LoadSnapshot(path_ + ".does-not-exist", &fresh);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(SnapshotTest, SaveCountsInStats) {
  SymbolTable syms;
  auto kb = PrepareWg(&syms);
  ASSERT_TRUE(kb->SaveSnapshot(path_).ok());
  ASSERT_TRUE(kb->SaveSnapshot(path_).ok());
  EXPECT_EQ(kb->stats().snapshot_saves, 2u);
}

}  // namespace
}  // namespace gerel
