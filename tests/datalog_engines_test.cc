// Property test: naive, semi-naive, and multi-threaded semi-naive
// evaluation are the same function. Random Datalog theories (the
// property-test generator with existentials disabled) are evaluated by
// all engines; the resulting databases must be equal as sets and every
// relation's answer set identical, for num_threads in {1, 2, 4}.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/parser.h"
#include "core/printer.h"
#include "datalog/evaluator.h"
#include "testing/random_theories.h"

namespace gerel {
namespace {

using gerel::testing::RandomParams;
using gerel::testing::RandomTheoryGen;

class EngineEquivalenceTest : public ::testing::TestWithParam<unsigned> {};

DatalogOptions Engine(bool seminaive, size_t num_threads) {
  DatalogOptions o;
  o.seminaive = seminaive;
  o.num_threads = num_threads;
  return o;
}

void ExpectSameModel(const Theory& theory, const Database& input,
                     SymbolTable* syms) {
  Result<DatalogResult> reference =
      EvaluateDatalog(theory, input, syms, Engine(true, 1));
  ASSERT_TRUE(reference.ok()) << reference.status().message();
  const Database& expected = reference.value().database;

  struct Variant {
    const char* name;
    DatalogOptions options;
  };
  const Variant variants[] = {
      {"naive", Engine(false, 1)},
      {"seminaive-2-threads", Engine(true, 2)},
      {"seminaive-4-threads", Engine(true, 4)},
      {"naive-4-threads", Engine(false, 4)},
  };
  for (const Variant& v : variants) {
    Result<DatalogResult> r = EvaluateDatalog(theory, input, syms, v.options);
    ASSERT_TRUE(r.ok()) << v.name << ": " << r.status().message();
    EXPECT_TRUE(r.value().database == expected)
        << v.name << " disagrees with the sequential semi-naive model ("
        << r.value().database.size() << " vs " << expected.size()
        << " atoms)";
    EXPECT_EQ(r.value().derived_atoms, reference.value().derived_atoms)
        << v.name;
    // Per-rule derivation counters must account for every derived atom,
    // whatever the engine (the split across rules may differ: whichever
    // rule derives an atom first gets the credit).
    size_t credited = 0;
    for (const RuleStats& s : r.value().rule_stats) credited += s.derived;
    EXPECT_EQ(credited, r.value().derived_atoms) << v.name;
  }

  // Answer sets per relation, through the public query API.
  for (RelationId rel : theory.Relations()) {
    auto expected_answers =
        DatalogAnswers(theory, input, rel, syms, Engine(true, 1));
    ASSERT_TRUE(expected_answers.ok());
    for (const Variant& v : variants) {
      auto got = DatalogAnswers(theory, input, rel, syms, v.options);
      ASSERT_TRUE(got.ok()) << v.name;
      EXPECT_EQ(got.value(), expected_answers.value()) << v.name;
    }
  }
}

TEST_P(EngineEquivalenceTest, RandomDatalogTheories) {
  SymbolTable syms;
  RandomTheoryGen gen(GetParam(), &syms);
  RandomParams params;
  params.num_rules = 6;
  params.max_body_atoms = 3;
  params.existential_prob = 0.0;  // Datalog only.
  Theory theory = gen.Theory_(params);
  Database input = gen.Database_(/*num_atoms=*/14, /*num_constants=*/5);
  ExpectSameModel(theory, input, &syms);
}

TEST_P(EngineEquivalenceTest, RandomStratifiedTheories) {
  // Layer a stratified-negation tail over the random positive program:
  // the derived relations of the random stratum feed a negated check.
  SymbolTable syms;
  RandomTheoryGen gen(GetParam(), &syms);
  RandomParams params;
  params.num_rules = 5;
  params.existential_prob = 0.0;
  Theory theory = gen.Theory_(params);
  Database input = gen.Database_(/*num_atoms=*/12, /*num_constants=*/4);

  Term x = syms.Variable("X");
  RelationId p0 = syms.Relation("p0");
  RelationId lonely = syms.Relation("lonely", 1);
  RelationId seen = syms.Relation("seen", 1);
  std::vector<Term> p0_args(syms.RelationArity(p0), x);
  // seen(x) <- p0(x, ..., x);  lonely(x) <- acdom(x), not seen(x).
  theory.AddRule(Rule::Positive({Atom(p0, p0_args)}, {Atom(seen, {x})}));
  Rule negated({Literal(Atom(AcdomRelation(&syms), {x}), /*negated=*/false),
                Literal(Atom(seen, {x}), /*negated=*/true)},
               {Atom(lonely, {x})});
  theory.AddRule(negated);
  ExpectSameModel(theory, input, &syms);
}

TEST(EngineEquivalenceTest, TransitiveClosureAcrossThreadCounts) {
  SymbolTable syms;
  Theory theory = ParseTheory(R"(
    e(X, Y) -> t(X, Y).
    e(X, Y), t(Y, Z) -> t(X, Z).
    acdom(X), acdom(Y), not t(X, Y) -> unreach(X, Y).
  )",
                              &syms)
                      .value();
  Database input =
      ParseDatabase("e(a, b). e(b, c). e(c, d). e(e, e).", &syms).value();
  ExpectSameModel(theory, input, &syms);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalenceTest,
                         ::testing::Range(0u, 16u));

}  // namespace
}  // namespace gerel
