// Tests for the serving layer (DESIGN.md §7 "Serving layer"): PreparedKb
// prepare/query/assert semantics, the answer cache, and the session
// interpreter.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "analyze/termination.h"
#include "core/parser.h"
#include "service/answer_cache.h"
#include "service/prepared_kb.h"
#include "server/session.h"
#include "transform/pipeline.h"

namespace gerel {
namespace {

Theory MustParseTheory(const char* text, SymbolTable* syms) {
  Result<Theory> t = ParseTheory(text, syms);
  EXPECT_TRUE(t.ok()) << t.status().message();
  return std::move(t).value();
}

Rule MustParseRule(const char* text, SymbolTable* syms) {
  Result<Rule> r = ParseRule(text, syms);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

std::unique_ptr<PreparedKb> MustPrepare(
    const Theory& t, const Database& db, SymbolTable* syms,
    const PreparedKbOptions& options = PreparedKbOptions()) {
  Result<std::unique_ptr<PreparedKb>> kb =
      PreparedKb::Prepare(t, db, syms, options);
  EXPECT_TRUE(kb.ok()) << kb.status().message();
  return std::move(kb).value();
}

const char* kDatalogTc = R"(
  e(X, Y) -> t(X, Y).
  e(X, Y), t(Y, Z) -> t(X, Z).
)";

// Weakly guarded transitive closure over a null-generating relation.
const char* kWgTransitiveClosure = R"(
  gen(X) -> exists Y. e(X, Y).
  e(X, Y), e(Y, Z) -> e(X, Z).
)";

// Guarded (existential but not weakly-guarded-only): every a-node gets an
// r-successor, and r-sources are b.
const char* kGuardedTheory = R"(
  a(X) -> exists Y. r(X, Y).
  r(X, Y) -> b(X).
)";

TEST(PreparedKbTest, DatalogQueryMatchesOneShot) {
  SymbolTable syms;
  Theory t = MustParseTheory(kDatalogTc, &syms);
  Database db = ParseDatabase("e(a, b). e(b, c). e(c, d).", &syms).value();
  auto kb = MustPrepare(t, db, &syms);
  EXPECT_EQ(kb->mode(), PreparedKb::Mode::kDatalog);
  Rule cq = MustParseRule("t(U, V) -> q(U, V)", &syms);
  Result<PreparedQueryResult> got = kb->Query(cq);
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_TRUE(got.value().complete);
  Result<KbQueryResult> want = AnswerKbQuery(t, cq, db, &syms);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got.value().answers, want.value().answers);
  EXPECT_EQ(got.value().answers.size(), 6u);
}

TEST(PreparedKbTest, NullWitnessAnswersAreSoundButIncomplete) {
  SymbolTable syms;
  Theory t = MustParseTheory(kWgTransitiveClosure, &syms);
  Database db = ParseDatabase("gen(a).", &syms).value();
  // This test pins the translation pipeline's affected-position
  // incompleteness flag; the planner would certify the theory and serve
  // complete answers from the chase instead.
  PreparedKbOptions po;
  po.planner = false;
  auto kb = MustPrepare(t, db, &syms, po);
  // The one-shot pipeline sees a's invented successor: answer {a}. The
  // materialized model holds no ground e-atom, so the prepared route
  // answers {} — and must say so via complete=false.
  Rule cq = MustParseRule("e(U, V) -> q(U)", &syms);
  Result<PreparedQueryResult> got = kb->Query(cq);
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_FALSE(got.value().complete);
  Result<KbQueryResult> oneshot = AnswerKbQuery(t, cq, db, &syms);
  ASSERT_TRUE(oneshot.ok());
  for (const std::vector<Term>& tuple : got.value().answers) {
    EXPECT_TRUE(oneshot.value().answers.count(tuple));
  }
  EXPECT_EQ(oneshot.value().answers.size(), 1u);
}

TEST(PreparedKbTest, CompleteWhenQueryAvoidsAffectedPositions) {
  SymbolTable syms;
  // gen feeds existentials into e, but gen itself has no affected
  // position: queries over gen alone are certified complete.
  Theory t = MustParseTheory(kWgTransitiveClosure, &syms);
  Database db = ParseDatabase("gen(a). gen(b).", &syms).value();
  auto kb = MustPrepare(t, db, &syms);
  Rule cq = MustParseRule("gen(U) -> q(U)", &syms);
  Result<PreparedQueryResult> got = kb->Query(cq);
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_TRUE(got.value().complete);
  EXPECT_EQ(got.value().answers.size(), 2u);
}

TEST(PreparedKbTest, CacheHitsAndAssertInvalidation) {
  SymbolTable syms;
  Theory t = MustParseTheory(kDatalogTc, &syms);
  Database db = ParseDatabase("e(a, b).", &syms).value();
  auto kb = MustPrepare(t, db, &syms);
  Rule cq = MustParseRule("t(U, V) -> q(U, V)", &syms);
  EXPECT_FALSE(kb->Query(cq).value().cache_hit);
  EXPECT_TRUE(kb->Query(cq).value().cache_hit);
  // A renamed variant of the same query canonicalizes to the same key.
  Rule renamed = MustParseRule("t(A, B) -> q(A, B)", &syms);
  EXPECT_TRUE(kb->Query(renamed).value().cache_hit);
  Atom fact = ParseAtom("e(b, c)", &syms).value();
  ASSERT_TRUE(kb->Assert({fact}).ok());
  Result<PreparedQueryResult> after = kb->Query(cq);
  EXPECT_FALSE(after.value().cache_hit);
  EXPECT_EQ(after.value().answers.size(), 3u);
  ServiceStats stats = kb->stats();
  EXPECT_EQ(stats.queries, 4u);
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.cache_misses, 2u);
}

TEST(PreparedKbTest, CacheCanBeDisabled) {
  SymbolTable syms;
  Theory t = MustParseTheory(kDatalogTc, &syms);
  Database db = ParseDatabase("e(a, b).", &syms).value();
  PreparedKbOptions options;
  options.answer_cache_capacity = 0;
  auto kb = MustPrepare(t, db, &syms, options);
  Rule cq = MustParseRule("t(U, V) -> q(U, V)", &syms);
  EXPECT_FALSE(kb->Query(cq).value().cache_hit);
  EXPECT_FALSE(kb->Query(cq).value().cache_hit);
}

TEST(PreparedKbTest, AssertDeltaMatchesFreshPrepare) {
  SymbolTable syms;
  Theory t = MustParseTheory(kDatalogTc, &syms);
  Database initial = ParseDatabase("e(a, b). e(b, c).", &syms).value();
  Database full =
      ParseDatabase("e(a, b). e(b, c). e(c, d). e(d, a).", &syms).value();
  auto kb = MustPrepare(t, initial, &syms);
  std::vector<Atom> delta = {ParseAtom("e(c, d)", &syms).value(),
                             ParseAtom("e(d, a)", &syms).value()};
  Result<AssertResult> assert_result = kb->Assert(delta);
  ASSERT_TRUE(assert_result.ok()) << assert_result.status().message();
  EXPECT_TRUE(assert_result.value().delta);
  EXPECT_EQ(assert_result.value().new_atoms, 2u);
  EXPECT_GT(assert_result.value().derived_atoms, 0u);
  auto fresh = MustPrepare(t, full, &syms);
  Rule cq = MustParseRule("t(U, V) -> q(U, V)", &syms);
  EXPECT_EQ(kb->Query(cq).value().answers, fresh->Query(cq).value().answers);
  EXPECT_EQ(kb->model_size(), fresh->model_size());
  ServiceStats stats = kb->stats();
  EXPECT_EQ(stats.delta_asserts, 1u);
  EXPECT_EQ(stats.rematerializations, 0u);
}

TEST(PreparedKbTest, GuardedModeStaysIncrementalOnNewConstants) {
  SymbolTable syms;
  Theory t = MustParseTheory(kGuardedTheory, &syms);
  Database db = ParseDatabase("a(c1).", &syms).value();
  // Pipeline-mode behavior under test: bypass the planner, which would
  // otherwise certify this theory and materialize by chase.
  PreparedKbOptions po;
  po.planner = false;
  auto kb = MustPrepare(t, db, &syms, po);
  EXPECT_EQ(kb->mode(), PreparedKb::Mode::kGuarded);
  // dat(Σ) is database-independent: a brand-new constant still takes the
  // delta path.
  Atom fact = ParseAtom("a(c2)", &syms).value();
  Result<AssertResult> out = kb->Assert({fact});
  ASSERT_TRUE(out.ok()) << out.status().message();
  EXPECT_TRUE(out.value().delta);
  Rule cq = MustParseRule("b(U) -> q(U)", &syms);
  Result<PreparedQueryResult> got = kb->Query(cq);
  ASSERT_TRUE(got.ok());
  std::set<std::vector<Term>> want = {{syms.Constant("c1")},
                                      {syms.Constant("c2")}};
  EXPECT_EQ(got.value().answers, want);
}

TEST(PreparedKbTest, PlannerCertifiesAndChasesTerminatingTheory) {
  SymbolTable syms;
  Theory t = MustParseTheory(kWgTransitiveClosure, &syms);
  Database db = ParseDatabase("gen(a).", &syms).value();
  auto kb = MustPrepare(t, db, &syms);
  // MFA certifies the theory; the planner skips the dat(·) translation
  // and materializes the Skolem chase directly.
  EXPECT_EQ(kb->mode(), PreparedKb::Mode::kChaseMaterialized);
  EXPECT_TRUE(kb->certificate().terminating());
  ServiceStats stats = kb->stats();
  EXPECT_EQ(stats.materialization_strategy, "chase");
  EXPECT_EQ(stats.termination_certificate,
            CertificateKindName(kb->certificate().kind));
  EXPECT_EQ(stats.chase_materializations, 1u);
  EXPECT_EQ(stats.datalog_rules, 0u);
  // The chase model is universal, so the e-query the pipeline flags as
  // possibly incomplete is decided exactly here: q(a) is certain (its
  // witness V may be a null; the answer tuple itself is ground).
  Rule cq = MustParseRule("e(U, V) -> q(U)", &syms);
  Result<PreparedQueryResult> got = kb->Query(cq);
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_TRUE(got.value().complete);
  std::set<std::vector<Term>> want = {{syms.Constant("a")}};
  EXPECT_EQ(got.value().answers, want);
}

TEST(PreparedKbTest, ChaseModeAssertRechasesAndSkipsNoOps) {
  SymbolTable syms;
  Theory t = MustParseTheory(kWgTransitiveClosure, &syms);
  Database db = ParseDatabase("gen(a).", &syms).value();
  auto kb = MustPrepare(t, db, &syms);
  ASSERT_EQ(kb->mode(), PreparedKb::Mode::kChaseMaterialized);
  // A genuinely new fact has no delta path in chase mode: the model is
  // rebuilt by a fresh chase from the grown EDB.
  Result<AssertResult> grow = kb->Assert({ParseAtom("gen(b)", &syms).value()});
  ASSERT_TRUE(grow.ok()) << grow.status().message();
  EXPECT_FALSE(grow.value().delta);
  EXPECT_EQ(grow.value().new_atoms, 1u);
  // Re-asserting an EDB fact is a no-op: no re-chase, delta reply.
  Result<AssertResult> dup = kb->Assert({ParseAtom("gen(b)", &syms).value()});
  ASSERT_TRUE(dup.ok());
  EXPECT_TRUE(dup.value().delta);
  EXPECT_EQ(dup.value().new_atoms, 0u);
  Rule cq = MustParseRule("gen(X) -> q(X)", &syms);
  Result<PreparedQueryResult> got = kb->Query(cq);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().complete);
  EXPECT_EQ(got.value().answers.size(), 2u);
}

TEST(PreparedKbTest, WeaklyGuardedRecompilesOnNewConstant) {
  SymbolTable syms;
  Theory t = MustParseTheory(kWgTransitiveClosure, &syms);
  Database db = ParseDatabase("gen(b). e(a, b).", &syms).value();
  // Pipeline-mode behavior under test: bypass the planner, which would
  // otherwise certify this theory and materialize by chase.
  PreparedKbOptions po;
  po.planner = false;
  auto kb = MustPrepare(t, db, &syms, po);
  EXPECT_EQ(kb->mode(), PreparedKb::Mode::kWeaklyGuarded);
  // A known constant extends the model incrementally...
  Result<AssertResult> known =
      kb->Assert({ParseAtom("gen(a)", &syms).value()});
  ASSERT_TRUE(known.ok());
  EXPECT_TRUE(known.value().delta);
  // ...but a constant outside the grounded domain forces pg(Σ, D) to be
  // re-run and the model rebuilt.
  Result<AssertResult> fresh_const =
      kb->Assert({ParseAtom("e(b, z)", &syms).value()});
  ASSERT_TRUE(fresh_const.ok());
  EXPECT_FALSE(fresh_const.value().delta);
  ServiceStats stats = kb->stats();
  EXPECT_EQ(stats.delta_asserts, 1u);
  EXPECT_EQ(stats.rematerializations, 1u);
  // The rebuilt KB answers like a fresh prepare over the final database.
  Database full = ParseDatabase("gen(b). e(a, b). gen(a). e(b, z).", &syms)
                      .value();
  auto fresh = MustPrepare(t, full, &syms);
  Rule cq = MustParseRule("e(U, V) -> q(U, V)", &syms);
  EXPECT_EQ(kb->Query(cq).value().answers, fresh->Query(cq).value().answers);
}

TEST(PreparedKbTest, AnswerVarOutsideBodyRangesOverActiveDomain) {
  SymbolTable syms;
  Theory t = MustParseTheory(kDatalogTc, &syms);
  Database db = ParseDatabase("e(a, b).", &syms).value();
  auto kb = MustPrepare(t, db, &syms);
  Rule cq = MustParseRule("e(U, V) -> q(U, W)", &syms);
  Result<PreparedQueryResult> got = kb->Query(cq);
  ASSERT_TRUE(got.ok()) << got.status().message();
  Result<KbQueryResult> want = AnswerKbQuery(t, cq, db, &syms);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got.value().answers, want.value().answers);
  // W ranges over the active domain {a, b}.
  EXPECT_EQ(got.value().answers.size(), 2u);
}

TEST(PreparedKbTest, RejectsMalformedQueries) {
  SymbolTable syms;
  Theory t = MustParseTheory(kDatalogTc, &syms);
  Database db = ParseDatabase("e(a, b).", &syms).value();
  auto kb = MustPrepare(t, db, &syms);
  EXPECT_FALSE(kb->Query(MustParseRule("e(U, V) -> q(U), p(V)", &syms)).ok());
  EXPECT_FALSE(kb->Query(MustParseRule("-> q(a)", &syms)).ok());
  EXPECT_FALSE(kb->Query(MustParseRule("not e(U, V) -> q(U)", &syms)).ok());
  EXPECT_FALSE(kb->Assert({ParseAtom("e(X, b)", &syms).value()}).ok());
}

TEST(PreparedKbTest, RejectsNonWfgTheory) {
  SymbolTable syms;
  // Adding e(X, Y) -> gen(Y) makes every e-position affected; the
  // transitivity rule then has no weak frontier guard.
  Theory t = MustParseTheory(R"(
    gen(X) -> exists Y. e(X, Y).
    e(X, Y) -> gen(Y).
    e(X, Y), e(Y, Z) -> e(X, Z).
  )",
                             &syms);
  Database db = ParseDatabase("gen(a).", &syms).value();
  Result<std::unique_ptr<PreparedKb>> kb = PreparedKb::Prepare(t, db, &syms);
  EXPECT_FALSE(kb.ok());
}

TEST(AnswerCacheTest, LruEvictionAndPromotion) {
  AnswerCache cache(2);
  AnswerCache::Entry e;
  cache.Insert("q1", e);
  cache.Insert("q2", e);
  AnswerCache::Entry out;
  // Touch q1 so q2 becomes the eviction victim.
  EXPECT_TRUE(cache.Lookup("q1", &out));
  cache.Insert("q3", e);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup("q1", &out));
  EXPECT_FALSE(cache.Lookup("q2", &out));
  EXPECT_TRUE(cache.Lookup("q3", &out));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("q1", &out));
}

TEST(AnswerCacheTest, ZeroCapacityDisables) {
  AnswerCache cache(0);
  AnswerCache::Entry e;
  cache.Insert("q", e);
  AnswerCache::Entry out;
  EXPECT_FALSE(cache.Lookup("q", &out));
}

TEST(ServiceSessionTest, ScriptedSession) {
  SymbolTable syms;
  Theory t = MustParseTheory(kDatalogTc, &syms);
  Database db = ParseDatabase("e(a, b).", &syms).value();
  auto kb = MustPrepare(t, db, &syms);
  ServiceSession session(kb.get(), &syms);
  EXPECT_EQ(session.HandleLine("").text, "");
  EXPECT_EQ(session.HandleLine("% comment").text, "");
  ServiceSession::Response q = session.HandleLine("query t(X, Y) -> q(X, Y)");
  EXPECT_FALSE(q.error);
  EXPECT_NE(q.text.find("q(a, b)"), std::string::npos);
  EXPECT_NE(q.text.find("1 answers (complete)"), std::string::npos);
  ServiceSession::Response a = session.HandleLine("assert e(b, c). e(c, d)");
  EXPECT_FALSE(a.error);
  EXPECT_NE(a.text.find("asserted 2 new"), std::string::npos);
  ServiceSession::Response q2 = session.HandleLine("query t(X, Y) -> q(X, Y)");
  EXPECT_NE(q2.text.find("6 answers"), std::string::npos);
  ServiceSession::Response bad = session.HandleLine("frobnicate");
  EXPECT_TRUE(bad.error);
  EXPECT_TRUE(session.saw_error());
  EXPECT_FALSE(session.saw_incomplete());
  ServiceSession::Response stats = session.HandleLine("stats");
  EXPECT_NE(stats.text.find("queries:"), std::string::npos);
  EXPECT_TRUE(session.HandleLine("quit").quit);
}

TEST(ServiceSessionTest, IncompleteQueryIsFlagged) {
  SymbolTable syms;
  Theory t = MustParseTheory(kWgTransitiveClosure, &syms);
  Database db = ParseDatabase("gen(a).", &syms).value();
  // The incompleteness flag only fires on the translation pipeline;
  // the planner would certify this theory and answer completely.
  PreparedKbOptions po;
  po.planner = false;
  auto kb = MustPrepare(t, db, &syms, po);
  ServiceSession session(kb.get(), &syms);
  ServiceSession::Response q = session.HandleLine("query e(U, V) -> q(U)");
  EXPECT_FALSE(q.error);
  EXPECT_NE(q.text.find("possibly incomplete"), std::string::npos);
  EXPECT_TRUE(session.saw_incomplete());
}

TEST(ServiceStatsTest, JsonHasAllCounters) {
  ServiceStats stats;
  stats.queries = 7;
  std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"queries\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"prepare_wall_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"delta_asserts\""), std::string::npos);
}

}  // namespace
}  // namespace gerel
