// Property tests for incremental retraction (DESIGN.md §7): the DRed
// delete/re-derive path must be an exact inverse of Assert on the
// model, clean-error on non-EDB facts, degrade soundly under a tripped
// budget, and drive dependency-aware (not wholesale) answer-cache
// invalidation. The dispatcher-level tests pin the replication-cursor
// contract: DRed retracts advance seq, re-materializing retracts bump
// the epoch.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/fault.h"
#include "core/parser.h"
#include "core/printer.h"
#include "server/dispatch.h"
#include "server/registry.h"
#include "server/wire.h"
#include "service/prepared_kb.h"

namespace gerel {
namespace {

using server::Dispatcher;
using server::DispatchOutcome;
using server::Op;
using server::TenantRegistry;
using server::WireRequest;

Theory MustParseTheory(const char* text, SymbolTable* syms) {
  Result<Theory> t = ParseTheory(text, syms);
  EXPECT_TRUE(t.ok()) << t.status().message();
  return std::move(t).value();
}

Rule MustParseRule(const char* text, SymbolTable* syms) {
  Result<Rule> r = ParseRule(text, syms);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

std::unique_ptr<PreparedKb> MustPrepare(
    const Theory& t, const Database& db, SymbolTable* syms,
    const PreparedKbOptions& options = PreparedKbOptions()) {
  Result<std::unique_ptr<PreparedKb>> kb =
      PreparedKb::Prepare(t, db, syms, options);
  EXPECT_TRUE(kb.ok()) << kb.status().message();
  return std::move(kb).value();
}

std::set<std::string> ModelSet(const PreparedKb& kb, SymbolTable* syms) {
  std::set<std::string> out;
  for (const Atom& a : kb.ModelAtoms()) out.insert(ToString(a, *syms));
  return out;
}

const char* kDatalogTc = R"(
  e(X, Y) -> t(X, Y).
  e(X, Y), t(Y, Z) -> t(X, Z).
)";

// Two independent rule families over disjoint predicates: writes to one
// must not evict cached answers reading only the other.
const char* kTwoFamilies = R"(
  e(X, Y) -> t(X, Y).
  e(X, Y), t(Y, Z) -> t(X, Z).
  u(X) -> w(X).
)";

// --- Retract ∘ Assert identity ---

TEST(ServiceRetractTest, RetractUndoesAssertOnTheModel) {
  SymbolTable syms;
  Theory t = MustParseTheory(kDatalogTc, &syms);
  Database db = ParseDatabase("e(a, b). e(b, c).", &syms).value();
  auto kb = MustPrepare(t, db, &syms);
  std::set<std::string> before = ModelSet(*kb, &syms);

  std::vector<Atom> facts =
      ParseDatabase("e(c, d).", &syms).value().AtomsVector();
  Result<AssertResult> a = kb->Assert(facts);
  ASSERT_TRUE(a.ok()) << a.status().message();
  EXPECT_NE(ModelSet(*kb, &syms), before);

  Result<RetractResult> r = kb->Retract(facts);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().removed_atoms, 1u);
  EXPECT_TRUE(r.value().delta);  // DRed, not a rebuild.
  // t(a,d), t(b,d), t(c,d) lose their only support; nothing rederives.
  EXPECT_EQ(r.value().overdeleted_atoms, 3u);
  EXPECT_EQ(r.value().rederived_atoms, 0u);
  EXPECT_EQ(ModelSet(*kb, &syms), before);

  ServiceStats stats = kb->stats();
  EXPECT_EQ(stats.retracts, 1u);
  EXPECT_EQ(stats.retracts_dred, 1u);
  EXPECT_EQ(stats.retracts_rematerialized, 0u);
}

TEST(ServiceRetractTest, RetractedFactSurvivesWhenStillEntailed) {
  // t(a,b) is both an EDB fact and rule-derivable from e(a,b).
  // Retracting the EDB copy removes it from the base but rederivation
  // must keep it in the model — retraction is "remove from EDB and
  // recompute the least model", not "force the atom out".
  SymbolTable syms;
  Theory t = MustParseTheory(kDatalogTc, &syms);
  Database db = ParseDatabase("e(a, b). t(a, b).", &syms).value();
  auto kb = MustPrepare(t, db, &syms);

  std::vector<Atom> facts =
      ParseDatabase("t(a, b).", &syms).value().AtomsVector();
  Result<RetractResult> r = kb->Retract(facts);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().removed_atoms, 1u);

  // Still entailed by e(a,b) -> t(a,b): either it was never overdeleted
  // (it had a live rule support) or rederivation restored it.
  Rule cq = MustParseRule("t(U, V) -> q(U, V)", &syms);
  Result<PreparedQueryResult> got = kb->Query(cq);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().answers.size(), 1u);
}

// --- Non-EDB retract: clean no-op error ---

TEST(ServiceRetractTest, UnknownAndDerivedFactsAreCleanErrors) {
  SymbolTable syms;
  Theory t = MustParseTheory(kDatalogTc, &syms);
  Database db = ParseDatabase("e(a, b). e(b, c).", &syms).value();
  auto kb = MustPrepare(t, db, &syms);
  std::set<std::string> before = ModelSet(*kb, &syms);

  // Never asserted.
  std::vector<Atom> unknown =
      ParseDatabase("e(x1, x2).", &syms).value().AtomsVector();
  EXPECT_FALSE(kb->Retract(unknown).ok());

  // Derived-only: t(a,c) is in the model but not the EDB.
  std::vector<Atom> derived =
      ParseDatabase("t(a, c).", &syms).value().AtomsVector();
  EXPECT_FALSE(kb->Retract(derived).ok());

  // A batch mixing one valid and one invalid fact must not partially
  // apply.
  std::vector<Atom> mixed =
      ParseDatabase("e(a, b). e(x1, x2).", &syms).value().AtomsVector();
  EXPECT_FALSE(kb->Retract(mixed).ok());

  EXPECT_EQ(ModelSet(*kb, &syms), before);
  ServiceStats stats = kb->stats();
  EXPECT_EQ(stats.retracts, 0u);
  EXPECT_EQ(stats.retracted_atoms, 0u);
}

// --- Budget-tripped retract: degraded, never unsound ---

TEST(ServiceRetractTest, CappedRetractFallsBackAndStaysSound) {
  SymbolTable syms;
  Theory t = MustParseTheory(kDatalogTc, &syms);
  Database db = ParseDatabase("e(a, b). e(b, c). e(c, d). e(d, e5).",
                              &syms).value();
  auto kb = MustPrepare(t, db, &syms);

  // Trip the Datalog-stage budget on its first round: DRed's own round
  // check fails, forcing the re-materialization fallback to run under
  // the already-exhausted budget.
  FaultPlan plan;
  plan.exhaust_stage = GovernedStage::kDatalog;
  plan.exhaust_round = 1;
  SetFaultPlanForTest(&plan);
  std::vector<Atom> facts =
      ParseDatabase("e(d, e5).", &syms).value().AtomsVector();
  Result<RetractResult> r = kb->Retract(facts);
  SetFaultPlanForTest(nullptr);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_FALSE(r.value().delta);  // Fallback, not DRed.

  ServiceStats stats = kb->stats();
  EXPECT_EQ(stats.retracts, 1u);
  EXPECT_EQ(stats.retracts_dred, 0u);
  EXPECT_EQ(stats.retracts_rematerialized, 1u);

  // The degraded model must be a subset of a clean fresh Prepare over
  // the surviving EDB, and must still contain that EDB.
  SymbolTable fresh_syms;
  Theory ft = MustParseTheory(kDatalogTc, &fresh_syms);
  Database fdb =
      ParseDatabase("e(a, b). e(b, c). e(c, d).", &fresh_syms).value();
  auto fresh = MustPrepare(ft, fdb, &fresh_syms);
  std::set<std::string> clean = ModelSet(*fresh, &fresh_syms);
  for (const Atom& atom : kb->ModelAtoms()) {
    EXPECT_TRUE(clean.count(ToString(atom, syms)))
        << "unsound survivor: " << ToString(atom, syms);
  }
  for (const Atom& atom : kb->EdbAtoms()) {
    EXPECT_TRUE(std::count(facts.begin(), facts.end(), atom) == 0)
        << "retracted fact still in EDB";
  }

  // Queries still serve (sound answers; completeness may be forfeit).
  Rule cq = MustParseRule("t(U, V) -> q(U, V)", &syms);
  Result<PreparedQueryResult> got = kb->Query(cq);
  ASSERT_TRUE(got.ok());
  for (const std::vector<Term>& row : got.value().answers) {
    Atom witness(syms.Relation("t", 2), row);
    EXPECT_TRUE(clean.count(ToString(witness, syms)));
  }
}

// --- Dependency-aware cache invalidation ---

TEST(ServiceRetractTest, UnrelatedCachedAnswersSurviveRetract) {
  SymbolTable syms;
  Theory t = MustParseTheory(kTwoFamilies, &syms);
  Database db = ParseDatabase("e(a, b). e(b, c). u(m). u(n).",
                              &syms).value();
  auto kb = MustPrepare(t, db, &syms);

  Rule tq = MustParseRule("t(U, V) -> q(U, V)", &syms);
  Rule wq = MustParseRule("w(U) -> q2(U)", &syms);
  EXPECT_FALSE(kb->Query(tq).value().cache_hit);
  EXPECT_TRUE(kb->Query(tq).value().cache_hit);
  EXPECT_FALSE(kb->Query(wq).value().cache_hit);
  EXPECT_TRUE(kb->Query(wq).value().cache_hit);

  // Retracting u(n) touches the {u, w} family only: the cached t-answer
  // must survive, the cached w-answer must be evicted.
  std::vector<Atom> facts =
      ParseDatabase("u(n).", &syms).value().AtomsVector();
  ASSERT_TRUE(kb->Retract(facts).ok());

  ServiceStats stats = kb->stats();
  EXPECT_EQ(stats.cache_evicted_entries, 1u);
  EXPECT_EQ(stats.cache_retained_entries, 1u);

  Result<PreparedQueryResult> tr = kb->Query(tq);
  ASSERT_TRUE(tr.ok());
  EXPECT_TRUE(tr.value().cache_hit);  // Survived the unrelated write.
  Result<PreparedQueryResult> wr = kb->Query(wq);
  ASSERT_TRUE(wr.ok());
  EXPECT_FALSE(wr.value().cache_hit);  // Evicted by the covering write.
  EXPECT_EQ(wr.value().answers.size(), 1u);  // w(m) only now.
}

TEST(ServiceRetractTest, AssertEvictsByDependencyClosureToo) {
  SymbolTable syms;
  Theory t = MustParseTheory(kTwoFamilies, &syms);
  Database db = ParseDatabase("e(a, b). u(m).", &syms).value();
  auto kb = MustPrepare(t, db, &syms);

  Rule tq = MustParseRule("t(U, V) -> q(U, V)", &syms);
  Rule wq = MustParseRule("w(U) -> q2(U)", &syms);
  kb->Query(tq);
  kb->Query(wq);

  // Asserting an e-fact over existing constants writes {e, t}: the
  // cached w-answer is unrelated and survives.
  std::vector<Atom> facts =
      ParseDatabase("e(b, a).", &syms).value().AtomsVector();
  ASSERT_TRUE(kb->Assert(facts).ok());
  EXPECT_FALSE(kb->Query(tq).value().cache_hit);
  EXPECT_TRUE(kb->Query(wq).value().cache_hit);
}

// --- Replication cursor (dispatcher level) ---

struct Backend {
  TenantRegistry registry;
  Dispatcher dispatcher;

  explicit Backend() : registry({}), dispatcher(&registry) {}

  DispatchOutcome Prepare(const std::string& name, const std::string& text) {
    WireRequest req;
    req.op = Op::kPrepare;
    req.kb = name;
    req.program = text;
    return dispatcher.Dispatch(req);
  }
  DispatchOutcome Query(const std::string& kb, const std::string& cq) {
    WireRequest req;
    req.op = Op::kQuery;
    req.kb = kb;
    req.cq = cq;
    return dispatcher.Dispatch(req);
  }
  DispatchOutcome Assert(const std::string& kb, const std::string& facts) {
    WireRequest req;
    req.op = Op::kAssert;
    req.kb = kb;
    req.facts = facts;
    return dispatcher.Dispatch(req);
  }
  DispatchOutcome Retract(const std::string& kb, const std::string& facts) {
    WireRequest req;
    req.op = Op::kRetract;
    req.kb = kb;
    req.facts = facts;
    return dispatcher.Dispatch(req);
  }
};

constexpr char kTcProgram[] =
    "e(X, Y) -> t(X, Y).\n"
    "e(X, Y), t(Y, Z) -> t(X, Z).\n"
    "e(a, b). e(b, c). e(c, d).\n";

constexpr char kWgProgram[] =
    "gen(X) -> exists Y. e(X, Y).\n"
    "e(X, Y), e(Y, Z) -> e(X, Z).\n"
    "gen(a). gen(b).\n";

TEST(ServiceRetractTest, DredRetractAdvancesSeqWithinEpoch) {
  Backend b;
  ASSERT_TRUE(b.Prepare("tc", kTcProgram).ok);
  size_t baseline = b.Query("tc", "t(X, Y) -> q(X, Y)").query.answers.size();
  EXPECT_EQ(baseline, 6u);

  DispatchOutcome a = b.Assert("tc", "e(d, e5)");
  ASSERT_TRUE(a.ok) << a.error_message;
  EXPECT_EQ(a.epoch, 1u);
  EXPECT_EQ(a.seq, 1u);

  DispatchOutcome r = b.Retract("tc", "e(d, e5)");
  ASSERT_TRUE(r.ok) << r.error_message;
  EXPECT_TRUE(r.retract.delta);
  EXPECT_EQ(r.retract.removed, 1u);
  EXPECT_EQ(r.epoch, 1u);
  EXPECT_EQ(r.seq, 2u);  // DRed retract is a seq step, not an epoch bump.

  // Retract ∘ assert is the identity on answers.
  EXPECT_EQ(b.Query("tc", "t(X, Y) -> q(X, Y)").query.answers.size(),
            baseline);

  // A failed retract must not move the cursor: the next success is 3.
  EXPECT_EQ(b.Retract("tc", "e(d, e5)").error_code, server::kErrFailed);
  DispatchOutcome again = b.Retract("tc", "e(c, d)");
  ASSERT_TRUE(again.ok) << again.error_message;
  EXPECT_EQ(again.seq, 3u);
  EXPECT_EQ(again.epoch, 1u);
}

TEST(ServiceRetractTest, RematerializingRetractBumpsEpoch) {
  Backend b;
  DispatchOutcome prep = b.Prepare("wg", kWgProgram);
  ASSERT_TRUE(prep.ok) << prep.error_message;
  // The planner certifies kWgProgram (MFA) and serves it by chase.
  EXPECT_EQ(prep.prepare.mode, "chase");

  // Chase mode has no DRed path: retracting gen(b) re-chases from the
  // shrunk EDB, so the dispatcher must see delta=false and bump the
  // epoch (replicas resync).
  DispatchOutcome r = b.Retract("wg", "gen(b)");
  ASSERT_TRUE(r.ok) << r.error_message;
  EXPECT_FALSE(r.retract.delta);
  EXPECT_EQ(r.epoch, 2u);
  EXPECT_EQ(r.seq, 0u);

  DispatchOutcome q = b.Query("wg", "gen(X) -> q(X)");
  ASSERT_TRUE(q.ok);
  EXPECT_EQ(q.query.answers.size(), 1u);  // gen(a) only.
}

}  // namespace
}  // namespace gerel
