// Deterministic replay: the differential harness is a pure function of
// (seed, iters, classes, generator options). Same seed → byte-identical
// generated cases and verdicts, across thread counts and repeated runs.
#include <gtest/gtest.h>

#include "testing/differential.h"

namespace gerel {
namespace {

using gerel::testing::DiffOptions;
using gerel::testing::DiffReport;
using gerel::testing::GenClass;
using gerel::testing::RunCrud;
using gerel::testing::RunDifferential;

DiffReport RunHarness(unsigned seed, int threads) {
  DiffOptions opts;
  opts.num_threads = threads;
  opts.log_cases = true;  // Transcript embeds every case verbatim.
  opts.stop_on_failure = false;
  return RunDifferential(seed, /*iters=*/4, /*classes=*/{}, opts);
}

DiffReport RunCrudHarness(unsigned seed, int threads) {
  DiffOptions opts;
  opts.num_threads = threads;
  opts.log_cases = true;
  opts.stop_on_failure = false;
  return RunCrud(seed, /*iters=*/6, /*classes=*/{}, opts);
}

TEST(FuzzDeterminismTest, SameSeedSameTranscript) {
  DiffReport a = RunHarness(42, 2);
  DiffReport b = RunHarness(42, 2);
  EXPECT_FALSE(a.transcript.empty());
  EXPECT_EQ(a.transcript, b.transcript);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.checked, b.checked);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_TRUE(a.ok()) << a.failures[0].lane << ": " << a.failures[0].detail;
}

TEST(FuzzDeterminismTest, TranscriptIndependentOfThreadCount) {
  DiffReport one = RunHarness(7, 1);
  DiffReport four = RunHarness(7, 4);
  EXPECT_EQ(one.transcript, four.transcript);
  EXPECT_EQ(one.checked, four.checked);
  EXPECT_EQ(one.skipped, four.skipped);
}

TEST(FuzzDeterminismTest, CrudTranscriptIndependentOfThreadCount) {
  // The crud lane mutates a live PreparedKb between checks; its op
  // stream, verdicts, and transcript must still be a pure function of
  // the seed — materialization thread counts never leak into it.
  DiffReport one = RunCrudHarness(11, 1);
  DiffReport two = RunCrudHarness(11, 2);
  DiffReport four = RunCrudHarness(11, 4);
  EXPECT_FALSE(one.transcript.empty());
  EXPECT_EQ(one.transcript, two.transcript);
  EXPECT_EQ(one.transcript, four.transcript);
  EXPECT_EQ(one.checked, four.checked);
  EXPECT_EQ(one.skipped, four.skipped);
  EXPECT_TRUE(one.ok()) << one.failures[0].lane << ": "
                        << one.failures[0].detail;
}

TEST(FuzzDeterminismTest, DifferentSeedsDiffer) {
  // Not a semantics requirement, but a generator-health check: distinct
  // seeds must not collapse onto one case stream.
  EXPECT_NE(RunHarness(1, 2).transcript, RunHarness(2, 2).transcript);
}

}  // namespace
}  // namespace gerel
