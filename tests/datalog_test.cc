// Tests for the Datalog engine: stratification, semi-naive and naive
// evaluation, stratified negation, and the lexicographic order programs.
#include <gtest/gtest.h>

#include "core/parser.h"
#include "core/printer.h"
#include "datalog/evaluator.h"
#include "datalog/orderings.h"
#include "datalog/stratifier.h"

namespace gerel {
namespace {

struct Fixture {
  SymbolTable syms;
  Theory theory;
  Database db;

  Fixture(const char* rules, const char* facts) {
    theory = ParseTheory(rules, &syms).value();
    db = ParseDatabase(facts, &syms).value();
  }
};

TEST(StratifierTest, PositiveProgramIsOneStratum) {
  Fixture f("e(X, Y) -> t(X, Y).\ne(X, Y), t(Y, Z) -> t(X, Z).", "");
  Result<Stratification> s = Stratify(f.theory);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().NumStrata(), 1u);
  EXPECT_TRUE(s.value().IsSemipositive());
}

TEST(StratifierTest, NegationForcesNewStratum) {
  Fixture f(R"(
    e(X, Y) -> t(X, Y).
    e(X, Y), t(Y, Z) -> t(X, Z).
    acdom(X), acdom(Y), not t(X, Y) -> unreach(X, Y).
  )",
            "");
  Result<Stratification> s = Stratify(f.theory);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().NumStrata(), 2u);
  EXPECT_EQ(s.value().strata[0].size(), 2u);
  EXPECT_EQ(s.value().strata[1].size(), 1u);
}

TEST(StratifierTest, RejectsNegativeCycle) {
  // The classic win-move program is not stratifiable.
  Fixture f("move(X, Y), not win(Y) -> win(X).", "");
  EXPECT_FALSE(Stratify(f.theory).ok());
}

TEST(StratifierTest, ThreeStrata) {
  Fixture f(R"(
    base(X) -> a(X).
    acdom(X), not a(X) -> b(X).
    acdom(X), not b(X) -> c(X).
  )",
            "");
  Result<Stratification> s = Stratify(f.theory);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().NumStrata(), 3u);
}

TEST(EvaluatorTest, TransitiveClosure) {
  Fixture f("e(X, Y) -> t(X, Y).\ne(X, Y), t(Y, Z) -> t(X, Z).",
            "e(a, b). e(b, c). e(c, d). e(d, a).");
  Result<DatalogResult> r = EvaluateDatalog(f.theory, f.db, &f.syms);
  ASSERT_TRUE(r.ok()) << r.status().message();
  // 4-cycle: every pair is connected.
  EXPECT_EQ(r.value().database.AtomsOf(f.syms.Relation("t")).size(), 16u);
}

TEST(EvaluatorTest, NaiveAndSeminaiveAgree) {
  Fixture f("e(X, Y) -> t(X, Y).\ne(X, Y), t(Y, Z) -> t(X, Z).",
            "e(a, b). e(b, c). e(c, d). e(d, e1). e(e1, f).");
  DatalogOptions naive;
  naive.seminaive = false;
  Result<DatalogResult> r1 = EvaluateDatalog(f.theory, f.db, &f.syms);
  Result<DatalogResult> r2 = EvaluateDatalog(f.theory, f.db, &f.syms, naive);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_TRUE(r1.value().database == r2.value().database);
}

TEST(EvaluatorTest, StratifiedNegationComplement) {
  Fixture f(R"(
    e(X, Y) -> t(X, Y).
    e(X, Y), t(Y, Z) -> t(X, Z).
    acdom(X), acdom(Y), not t(X, Y) -> unreach(X, Y).
  )",
            "e(a, b). e(b, a). e(c, c).");
  Result<DatalogResult> r = EvaluateDatalog(f.theory, f.db, &f.syms);
  ASSERT_TRUE(r.ok()) << r.status().message();
  RelationId unreach = f.syms.Relation("unreach");
  // t = {a,b}² ∪ {(c,c)}; unreachable pairs: a→c, b→c, c→a, c→b.
  EXPECT_EQ(r.value().database.AtomsOf(unreach).size(), 4u);
  EXPECT_TRUE(r.value().database.Contains(
      Atom(unreach, {f.syms.Constant("a"), f.syms.Constant("c")})));
}

TEST(EvaluatorTest, SemipositiveInputNegation) {
  // Characteristic-function encoding of §8: one/zero per input tuple.
  Fixture f(R"(
    r(X) -> one(X).
    acdom(X), not r(X) -> zero(X).
  )",
            "r(a). s(b). s(c).");
  Result<DatalogResult> r = EvaluateDatalog(f.theory, f.db, &f.syms);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().database.AtomsOf(f.syms.Relation("one")).size(), 1u);
  EXPECT_EQ(r.value().database.AtomsOf(f.syms.Relation("zero")).size(), 2u);
}

TEST(EvaluatorTest, ZeroAryRelations) {
  Fixture f("e(X, Y) -> nonempty.\nnonempty -> alsotrue.", "e(a, b).");
  Result<DatalogResult> r = EvaluateDatalog(f.theory, f.db, &f.syms);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(
      r.value().database.Contains(Atom(f.syms.Relation("alsotrue"), {})));
}

TEST(EvaluatorTest, EmptyBodyNegationRule) {
  Fixture f("not flag -> deflt.", "");
  Result<DatalogResult> r = EvaluateDatalog(f.theory, f.db, &f.syms);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().database.Contains(Atom(f.syms.Relation("deflt"), {})));
}

TEST(EvaluatorTest, EmptyBodyNegationBlockedWhenFactPresent) {
  Fixture f("not flag -> deflt.", "flag.");
  Result<DatalogResult> r = EvaluateDatalog(f.theory, f.db, &f.syms);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(
      r.value().database.Contains(Atom(f.syms.Relation("deflt"), {})));
}

TEST(EvaluatorTest, RejectsExistentialRules) {
  Fixture f("a(X) -> exists Y. r(X, Y).", "a(c).");
  EXPECT_FALSE(EvaluateDatalog(f.theory, f.db, &f.syms).ok());
}

TEST(EvaluatorTest, RejectsUnsafeNegation) {
  Fixture f("e(X, Y), not bad(Z) -> g(X).", "e(a, b).");
  EXPECT_FALSE(EvaluateDatalog(f.theory, f.db, &f.syms).ok());
}

TEST(EvaluatorTest, DatalogAnswers) {
  Fixture f("e(X, Y) -> t(X, Y).\ne(X, Y), t(Y, Z) -> t(X, Z).",
            "e(a, b). e(b, c).");
  Result<std::set<std::vector<Term>>> ans =
      DatalogAnswers(f.theory, f.db, f.syms.Relation("t"), &f.syms);
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans.value().size(), 3u);
}

TEST(EvaluatorTest, FactRulesMaterialize) {
  Fixture f("-> r(c).\nr(X) -> s(X).", "");
  Result<DatalogResult> r = EvaluateDatalog(f.theory, f.db, &f.syms);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().database.Contains(
      Atom(f.syms.Relation("s"), {f.syms.Constant("c")})));
}

TEST(OrderingsTest, LinearOrderFacts) {
  SymbolTable syms;
  Database db;
  std::vector<Term> dom = {syms.Constant("a"), syms.Constant("b"),
                           syms.Constant("c")};
  AppendLinearOrderFacts(dom, &syms, &db);
  EXPECT_EQ(db.AtomsOf(syms.Relation("succ")).size(), 2u);
  EXPECT_TRUE(db.Contains(Atom(syms.Relation("min"), {dom[0]})));
  EXPECT_TRUE(db.Contains(Atom(syms.Relation("max"), {dom[2]})));
}

TEST(OrderingsTest, LexProgramMatchesDirectFactsDegree2) {
  SymbolTable syms;
  Database db;
  std::vector<Term> dom = {syms.Constant("a"), syms.Constant("b"),
                           syms.Constant("c")};
  AppendLinearOrderFacts(dom, &syms, &db);
  // A dummy relation so acdom covers the domain.
  RelationId d = syms.Relation("dom", 1);
  for (Term t : dom) db.Insert(Atom(d, {t}));

  Theory program = LexTupleOrderProgram(2, &syms);
  Result<DatalogResult> r = EvaluateDatalog(program, db, &syms);
  ASSERT_TRUE(r.ok()) << r.status().message();

  Database expected;
  AppendLexTupleOrderFacts(dom, 2, &syms, &expected);
  for (const Atom& a : expected.atoms()) {
    EXPECT_TRUE(r.value().database.Contains(a)) << "missing expected fact";
  }
  // Exactly n^2 - 1 successor pairs.
  EXPECT_EQ(r.value().database.AtomsOf(syms.Relation("next2")).size(), 8u);
  EXPECT_EQ(r.value().database.AtomsOf(syms.Relation("first2")).size(), 1u);
  EXPECT_EQ(r.value().database.AtomsOf(syms.Relation("last2")).size(), 1u);
}

TEST(OrderingsTest, LexProgramDegree3Counts) {
  SymbolTable syms;
  Database db;
  std::vector<Term> dom = {syms.Constant("a"), syms.Constant("b")};
  AppendLinearOrderFacts(dom, &syms, &db);
  RelationId d = syms.Relation("dom", 1);
  for (Term t : dom) db.Insert(Atom(d, {t}));
  Theory program = LexTupleOrderProgram(3, &syms);
  Result<DatalogResult> r = EvaluateDatalog(program, db, &syms);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().database.AtomsOf(syms.Relation("next3")).size(), 7u);
}

TEST(OrderingsTest, DirectLexFactsChainIsTotal) {
  SymbolTable syms;
  Database db;
  std::vector<Term> dom = {syms.Constant("a"), syms.Constant("b"),
                           syms.Constant("c")};
  AppendLexTupleOrderFacts(dom, 2, &syms, &db);
  RelationId next2 = syms.Relation("next2");
  EXPECT_EQ(db.AtomsOf(next2).size(), 8u);
  // Walk the chain from first2 to last2 and count 9 tuples.
  RelationId first2 = syms.Relation("first2");
  const Atom& first = db.atom(db.AtomsOf(first2)[0]);
  std::vector<Term> cur = first.args;
  size_t count = 1;
  bool advanced = true;
  while (advanced) {
    advanced = false;
    for (uint32_t i : db.AtomsOf(next2)) {
      const Atom& a = db.atom(i);
      if (std::vector<Term>(a.args.begin(), a.args.begin() + 2) == cur) {
        cur = std::vector<Term>(a.args.begin() + 2, a.args.end());
        ++count;
        advanced = true;
        break;
      }
    }
  }
  EXPECT_EQ(count, 9u);
  EXPECT_TRUE(db.Contains(Atom(syms.Relation("last2"), cur)));
}

}  // namespace
}  // namespace gerel
