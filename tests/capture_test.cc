// Tests for the §8 capturing machinery: string databases (Def 20), the
// alternating TM substrate, the Thm 4 compilation into weakly guarded
// rules, Σsucc (Thm 5), and Σcode.
#include <gtest/gtest.h>

#include "capture/capture_compiler.h"
#include "capture/code_program.h"
#include "capture/order_program.h"
#include "capture/string_database.h"
#include "capture/turing_machine.h"
#include "core/classify.h"
#include "core/parser.h"
#include "core/printer.h"
#include "datalog/evaluator.h"

namespace gerel {
namespace {

StringSignature BinarySignature(int degree = 1) {
  StringSignature sig;
  sig.degree = degree;
  sig.alphabet = {"sym0", "sym1"};
  return sig;
}

TEST(StringDatabaseTest, RoundTripDegree1) {
  SymbolTable syms;
  std::vector<int> word = {1, 0, 1};
  Result<StringDatabase> sdb =
      MakeStringDatabase(word, BinarySignature(), &syms);
  ASSERT_TRUE(sdb.ok()) << sdb.status().message();
  EXPECT_EQ(sdb.value().domain.size(), 3u);
  Result<std::vector<int>> extracted =
      ExtractWord(sdb.value().db, BinarySignature(), &syms);
  ASSERT_TRUE(extracted.ok()) << extracted.status().message();
  EXPECT_EQ(extracted.value(), word);
}

TEST(StringDatabaseTest, RoundTripDegree2) {
  SymbolTable syms;
  std::vector<int> word = {1, 0, 0, 1};  // 2² cells over 2 constants.
  Result<StringDatabase> sdb =
      MakeStringDatabase(word, BinarySignature(2), &syms);
  ASSERT_TRUE(sdb.ok()) << sdb.status().message();
  EXPECT_EQ(sdb.value().domain.size(), 2u);
  Result<std::vector<int>> extracted =
      ExtractWord(sdb.value().db, BinarySignature(2), &syms);
  ASSERT_TRUE(extracted.ok());
  EXPECT_EQ(extracted.value(), word);
}

TEST(StringDatabaseTest, RejectsNonPowerLengthsForDegree2) {
  SymbolTable syms;
  EXPECT_FALSE(MakeStringDatabase({1, 0, 1}, BinarySignature(2), &syms).ok());
}

TEST(StringDatabaseTest, DetectsMissingSymbols) {
  SymbolTable syms;
  StringDatabase sdb =
      MakeStringDatabase({1, 0, 1}, BinarySignature(), &syms).value();
  // Build a copy without one symbol fact.
  Database broken;
  RelationId sym1 = syms.Relation("sym1");
  bool skipped = false;
  for (const Atom& a : sdb.db.atoms()) {
    if (!skipped && a.pred == sym1) {
      skipped = true;
      continue;
    }
    broken.Insert(a);
  }
  EXPECT_FALSE(ExtractWord(broken, BinarySignature(), &syms).ok());
}

TEST(AtmSimulatorTest, CannedMachinesMatchTheirSpecifications) {
  struct Case {
    Atm machine;
    std::function<bool(const std::vector<int>&)> spec;
  };
  std::vector<Case> cases;
  cases.push_back({FirstSymbolIsOneMachine(),
                   [](const std::vector<int>& w) { return w[0] == 1; }});
  cases.push_back({EvenParityMachine(), [](const std::vector<int>& w) {
                     int ones = 0;
                     for (int s : w) ones += s;
                     return ones % 2 == 0;
                   }});
  cases.push_back({AllOnesUniversalMachine(),
                   [](const std::vector<int>& w) {
                     for (int s : w) {
                       if (s != 1) return false;
                     }
                     return true;
                   }});
  cases.push_back({SomeOneExistentialMachine(),
                   [](const std::vector<int>& w) {
                     for (int s : w) {
                       if (s == 1) return true;
                     }
                     return false;
                   }});
  cases.push_back({FirstEqualsLastMachine(), [](const std::vector<int>& w) {
                     return w.front() == w.back();
                   }});
  cases.push_back({OnesDivisibleByThreeMachine(),
                   [](const std::vector<int>& w) {
                     int ones = 0;
                     for (int s : w) ones += s;
                     return ones % 3 == 0;
                   }});
  for (const Case& c : cases) {
    for (int len = 1; len <= 5; ++len) {
      for (int bits = 0; bits < (1 << len); ++bits) {
        std::vector<int> word(len);
        for (int i = 0; i < len; ++i) word[i] = (bits >> i) & 1;
        Result<AtmSimResult> sim = SimulateAtm(c.machine, word);
        ASSERT_TRUE(sim.ok()) << c.machine.name;
        EXPECT_EQ(sim.value().accepted, c.spec(word))
            << c.machine.name << " on " << bits << " len " << len;
      }
    }
  }
}

TEST(AtmSimulatorTest, BinaryCounterRunsExponentiallyLong) {
  Atm m = BinaryCounterMachine();
  // Canonical input: marked zero followed by zeros.
  for (int n = 1; n <= 6; ++n) {
    std::vector<int> word(n, 0);
    word[0] = 2;
    Result<AtmSimResult> sim = SimulateAtm(m, word);
    ASSERT_TRUE(sim.ok());
    EXPECT_TRUE(sim.value().accepted) << n;
    // The configuration count grows like 2^n (the counter values).
    if (n >= 3) {
      std::vector<int> prev(n - 1, 0);
      prev[0] = 2;
      size_t prev_configs = SimulateAtm(m, prev).value().configurations;
      EXPECT_GT(sim.value().configurations, prev_configs * 3 / 2) << n;
    }
  }
}

TEST(AtmSimulatorTest, BinaryCounterSpec) {
  // Accepts iff the word uses only {0, m0} symbols and contains a mark.
  Atm m = BinaryCounterMachine();
  for (int len = 1; len <= 3; ++len) {
    int total = 1;
    for (int i = 0; i < len; ++i) total *= 4;
    for (int code = 0; code < total; ++code) {
      std::vector<int> word(len);
      int c = code;
      for (int i = 0; i < len; ++i) {
        word[i] = c % 4;
        c /= 4;
      }
      bool expected = true;
      bool has_mark = false;
      for (int s : word) {
        if (s == 1 || s == 3) expected = false;
        if (s == 2) has_mark = true;
      }
      expected = expected && has_mark;
      Result<AtmSimResult> sim = SimulateAtm(m, word);
      ASSERT_TRUE(sim.ok());
      EXPECT_EQ(sim.value().accepted, expected) << "word code " << code
                                                << " len " << len;
    }
  }
}

TEST(CaptureCompilerTest, BinaryCounterViaWeaklyGuardedRules) {
  SymbolTable syms;
  StringSignature sig;
  sig.degree = 1;
  sig.alphabet = {"c0", "c1", "cm0", "cm1"};
  Atm m = BinaryCounterMachine();
  auto compiled = CompileAtmToWeaklyGuarded(m, sig, &syms);
  ASSERT_TRUE(compiled.ok()) << compiled.status().message();
  EXPECT_TRUE(Classify(compiled.value().theory).weakly_guarded);
  for (int n = 2; n <= 3; ++n) {
    std::vector<int> word(n, 0);
    word[0] = 2;
    StringDatabase sdb = MakeStringDatabase(word, sig, &syms).value();
    uint32_t hint = static_cast<uint32_t>((1 << n) * (2 * n + 2) + 8);
    Result<bool> accepted = DecideAcceptanceViaChase(
        compiled.value(), sdb.db, &syms, hint);
    ASSERT_TRUE(accepted.ok()) << accepted.status().message();
    EXPECT_TRUE(accepted.value()) << n;
  }
}

TEST(AtmValidateTest, RejectsOverlappingTransitions) {
  Atm m = FirstSymbolIsOneMachine();
  m.transitions.push_back({0, 1, AtEnd::kOnlyAtEnd, {{1, Dir::kStay, 1}}});
  EXPECT_FALSE(m.Validate().ok());
}

TEST(AtmValidateTest, RejectsTransitionsFromHaltingStates) {
  Atm m = FirstSymbolIsOneMachine();
  m.transitions.push_back({1, 0, AtEnd::kAny, {{0, Dir::kStay, 1}}});
  EXPECT_FALSE(m.Validate().ok());
}

TEST(CaptureCompilerTest, CompiledTheoryIsWeaklyGuarded) {
  for (const Atm& m :
       {FirstSymbolIsOneMachine(), EvenParityMachine(),
        AllOnesUniversalMachine(), SomeOneExistentialMachine()}) {
    SymbolTable syms;
    Result<CaptureCompilation> compiled =
        CompileAtmToWeaklyGuarded(m, BinarySignature(), &syms);
    ASSERT_TRUE(compiled.ok()) << m.name;
    Classification c = Classify(compiled.value().theory);
    EXPECT_TRUE(c.weakly_guarded) << m.name;
    EXPECT_FALSE(c.guarded) << m.name;  // Copy rules join across atoms.
  }
}

TEST(CaptureCompilerTest, Theorem4AgreementWithSimulator) {
  for (const Atm& m :
       {FirstSymbolIsOneMachine(), EvenParityMachine(),
        AllOnesUniversalMachine(), SomeOneExistentialMachine(),
        FirstEqualsLastMachine(), OnesDivisibleByThreeMachine()}) {
    SymbolTable syms;
    Result<CaptureCompilation> compiled =
        CompileAtmToWeaklyGuarded(m, BinarySignature(), &syms);
    ASSERT_TRUE(compiled.ok());
    for (int len = 2; len <= 3; ++len) {
      for (int bits = 0; bits < (1 << len); ++bits) {
        std::vector<int> word(len);
        for (int i = 0; i < len; ++i) word[i] = (bits >> i) & 1;
        StringDatabase sdb =
            MakeStringDatabase(word, BinarySignature(), &syms).value();
        bool expected = SimulateAtm(m, word).value().accepted;
        Result<bool> via_rules = DecideAcceptanceViaChase(
            compiled.value(), sdb.db, &syms, /*max_steps_hint=*/2 * len + 4);
        ASSERT_TRUE(via_rules.ok())
            << m.name << ": " << via_rules.status().message();
        EXPECT_EQ(via_rules.value(), expected)
            << m.name << " on word bits " << bits << " len " << len;
      }
    }
  }
}

TEST(CaptureCompilerTest, Theorem4Degree2) {
  SymbolTable syms;
  Atm m = EvenParityMachine();
  Result<CaptureCompilation> compiled =
      CompileAtmToWeaklyGuarded(m, BinarySignature(2), &syms);
  ASSERT_TRUE(compiled.ok());
  std::vector<int> word = {1, 0, 1, 0};  // Two ones: even.
  StringDatabase sdb =
      MakeStringDatabase(word, BinarySignature(2), &syms).value();
  Result<bool> accepted = DecideAcceptanceViaChase(compiled.value(), sdb.db,
                                                   &syms, 12);
  ASSERT_TRUE(accepted.ok()) << accepted.status().message();
  EXPECT_TRUE(accepted.value());
}

TEST(OrderProgramTest, IsStratifiedWeaklyGuarded) {
  SymbolTable syms;
  OrderProgram prog = BuildOrderProgram(&syms);
  EXPECT_TRUE(IsStratifiedWeaklyGuarded(prog.theory));
}

TEST(OrderProgramTest, GoodOrderingsAreExactlyThePermutations) {
  SymbolTable syms;
  OrderProgram prog = BuildOrderProgram(&syms);
  Database db = ParseDatabase("r(a, b). r(b, c).", &syms).value();
  Result<StratifiedChaseResult> result =
      RunOrderProgram(prog, Theory(), db, &syms);
  ASSERT_TRUE(result.ok()) << result.status().message();
  // Domain {a, b, c}: 3! = 6 good orderings.
  EXPECT_EQ(result.value().database.AtomsOf(prog.good).size(), 6u);
}

TEST(OrderProgramTest, GoodOrderingsFormValidLinearOrders) {
  SymbolTable syms;
  OrderProgram prog = BuildOrderProgram(&syms);
  Database db = ParseDatabase("r(a, b).", &syms).value();
  Result<StratifiedChaseResult> result =
      RunOrderProgram(prog, Theory(), db, &syms);
  ASSERT_TRUE(result.ok());
  const Database& out = result.value().database;
  // Domain {a, b}: 2 good orderings, each with one succ fact, and the
  // min/max of a good ordering are distinct endpoints.
  ASSERT_EQ(out.AtomsOf(prog.good).size(), 2u);
  for (uint32_t gi : out.AtomsOf(prog.good)) {
    Term u = out.atom(gi).args[0];
    size_t succ_count = 0;
    for (uint32_t si : out.AtomsOf(prog.succ)) {
      if (out.atom(si).args[2] == u) ++succ_count;
    }
    EXPECT_EQ(succ_count, 1u);
    size_t max_count = 0;
    for (uint32_t mi : out.AtomsOf(prog.max)) {
      if (out.atom(mi).args[1] == u) ++max_count;
    }
    EXPECT_EQ(max_count, 1u);
  }
}

TEST(OrderProgramTest, Theorem5DomainParityQuery) {
  // The paper's flagship non-monotonic query: is |dom| even? Expressible
  // with Σsucc plus positive rules walking one good ordering.
  SymbolTable syms;
  OrderProgram prog = BuildOrderProgram(&syms);
  Result<Theory> parity = ParseTheory(R"(
    ord#min(X, U) -> oddp(X, U).
    oddp(X, U), ord#succ(X, Y, U) -> evenp(Y, U).
    evenp(X, U), ord#succ(X, Y, U) -> oddp(Y, U).
    evenp(X, U), ord#max(X, U), ord#good(U) -> domeven.
    oddp(X, U), ord#max(X, U), ord#good(U) -> domodd.
  )",
                                      &syms);
  ASSERT_TRUE(parity.ok()) << parity.status().message();
  for (int n = 2; n <= 3; ++n) {
    SCOPED_TRACE(n);
    Database db;
    RelationId d = syms.Relation("dom", 1);
    for (int i = 0; i < n; ++i) {
      db.Insert(Atom(d, {syms.Constant("c" + std::to_string(i))}));
    }
    Result<StratifiedChaseResult> result =
        RunOrderProgram(prog, parity.value(), db, &syms);
    ASSERT_TRUE(result.ok()) << result.status().message();
    bool even = result.value().database.Contains(
        Atom(syms.Relation("domeven", 0), {}));
    bool odd = result.value().database.Contains(
        Atom(syms.Relation("domodd", 0), {}));
    EXPECT_EQ(even, n % 2 == 0);
    EXPECT_EQ(odd, n % 2 == 1);
  }
}

TEST(CodeProgramTest, EncodesCharacteristicFunction) {
  SymbolTable syms;
  CodeProgram code = BuildCodeProgram("r", 1, &syms);
  Database db = ParseDatabase("r(b). dom(a). dom(b). dom(c).", &syms).value();
  std::vector<Term> order = {syms.Constant("a"), syms.Constant("b"),
                             syms.Constant("c")};
  AppendLinearOrderFacts(order, &syms, &db);
  Result<DatalogResult> eval = EvaluateDatalog(code.theory, db, &syms);
  ASSERT_TRUE(eval.ok()) << eval.status().message();
  Result<std::vector<int>> word =
      ExtractWord(eval.value().database, code.signature, &syms);
  ASSERT_TRUE(word.ok()) << word.status().message();
  std::vector<int> expected = {0, 1, 0};  // Only b is in r.
  EXPECT_EQ(word.value(), expected);
}

TEST(CodeProgramTest, EndToEndParityOfRelationSize) {
  // Theorem 4 + Σcode integration: "does r have an even number of
  // facts?" decided by the parity machine over the encoded database.
  SymbolTable syms;
  CodeProgram code = BuildCodeProgram("r", 1, &syms);
  Database db =
      ParseDatabase("r(a). r(c). dom(b). succ0(z, z).", &syms).value();
  std::vector<Term> order = {syms.Constant("a"), syms.Constant("b"),
                             syms.Constant("c")};
  AppendLinearOrderFacts(order, &syms, &db);
  Result<DatalogResult> eval = EvaluateDatalog(code.theory, db, &syms);
  ASSERT_TRUE(eval.ok());
  // The encoded word is 1,0,1 over alphabet {zero#r, one#r}: run the
  // parity machine on it (ones = 2 → accept).
  Atm machine = EvenParityMachine();
  StringSignature sig = code.signature;
  Result<CaptureCompilation> compiled =
      CompileAtmToWeaklyGuarded(machine, sig, &syms);
  ASSERT_TRUE(compiled.ok()) << compiled.status().message();
  Result<bool> accepted = DecideAcceptanceViaChase(
      compiled.value(), eval.value().database, &syms, 10);
  ASSERT_TRUE(accepted.ok()) << accepted.status().message();
  EXPECT_TRUE(accepted.value());
}

}  // namespace
}  // namespace gerel
