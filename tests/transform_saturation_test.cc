// Tests for the §6 saturation calculus: Ξ(Σ), dat(Σ) (Thm 3, Example 7)
// and the nearly guarded → Datalog translation (Prop 6).
#include <gtest/gtest.h>

#include "chase/chase.h"
#include "core/classify.h"
#include "core/parser.h"
#include "core/printer.h"
#include "datalog/evaluator.h"
#include "transform/canonical.h"
#include "transform/saturation.h"

namespace gerel {
namespace {

Theory MustParseTheory(const char* text, SymbolTable* syms) {
  Result<Theory> t = ParseTheory(text, syms);
  EXPECT_TRUE(t.ok()) << t.status().message();
  return std::move(t).value();
}

// Example 7 of the paper: σ1–σ5.
const char* kExample7 = R"(
  a(X) -> exists Y. r(X, Y).
  r(X, Y) -> s(Y, Y).
  s(X, Y) -> exists Z. t(X, Y, Z).
  t(X, X, Y) -> b(X).
  c0(X), r(X, Y), b(Y) -> d(X).
)";

TEST(SaturationTest, Example7DerivesSigma12) {
  SymbolTable syms;
  Theory theory = MustParseTheory(kExample7, &syms);
  Result<SaturationResult> sat = Saturate(theory, &syms);
  ASSERT_TRUE(sat.ok()) << sat.status().message();
  EXPECT_TRUE(sat.value().complete);
  // σ12 = a(x) ∧ c0(x) → d(x) must be in dat(Σ).
  Result<Rule> sigma12 = ParseRule("a(X), c0(X) -> d(X)", &syms);
  ASSERT_TRUE(sigma12.ok());
  std::string want = CanonicalRuleString(sigma12.value(), syms);
  bool found = false;
  for (const Rule& r : sat.value().datalog.rules()) {
    if (CanonicalRuleString(r, syms) == want) found = true;
  }
  EXPECT_TRUE(found) << "dat(Σ) lacks σ12; " << sat.value().datalog.size()
                     << " datalog rules";
}

TEST(SaturationTest, Example7DatalogAnswersTheQuery) {
  SymbolTable syms;
  Theory theory = MustParseTheory(kExample7, &syms);
  Result<SaturationResult> sat = Saturate(theory, &syms);
  ASSERT_TRUE(sat.ok());
  Database db = ParseDatabase("a(c). c0(c).", &syms).value();
  Result<DatalogResult> eval =
      EvaluateDatalog(sat.value().datalog, db, &syms);
  ASSERT_TRUE(eval.ok()) << eval.status().message();
  EXPECT_TRUE(eval.value().database.Contains(
      Atom(syms.Relation("d"), {syms.Constant("c")})));
}

TEST(SaturationTest, ClosureOfGuardedTheoryIsGuarded) {
  SymbolTable syms;
  Theory theory = MustParseTheory(kExample7, &syms);
  Result<SaturationResult> sat = Saturate(theory, &syms);
  ASSERT_TRUE(sat.ok());
  for (const Rule& r : sat.value().closure.rules()) {
    EXPECT_TRUE(IsGuardedRule(r)) << ToString(r, syms);
  }
}

TEST(SaturationTest, SimpleNullChain) {
  SymbolTable syms;
  // r(X) → ∃Y e(X,Y); e(X,Y) → p(X): dat must contain r(X) → p(X).
  Theory theory = MustParseTheory(R"(
    r(X) -> exists Y. e(X, Y).
    e(X, Y) -> p(X).
  )",
                                  &syms);
  Result<SaturationResult> sat = Saturate(theory, &syms);
  ASSERT_TRUE(sat.ok());
  Result<Rule> want = ParseRule("r(X) -> p(X)", &syms);
  std::string key = CanonicalRuleString(want.value(), syms);
  bool found = false;
  for (const Rule& r : sat.value().datalog.rules()) {
    if (CanonicalRuleString(r, syms) == key) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SaturationTest, Theorem3AnswerEquivalenceOnRandomishDatabases) {
  SymbolTable syms;
  Theory theory = MustParseTheory(kExample7, &syms);
  Result<SaturationResult> sat = Saturate(theory, &syms);
  ASSERT_TRUE(sat.ok());
  const char* kDatabases[] = {
      "a(c). c0(c).",
      "a(c).",
      "c0(c). r(c, u). b(u).",
      "a(u). a(v). c0(v). r(u, v).",
      "s(u, u). c0(u). r(w, u).",
      "t(u, u, v). c0(w). r(w, u).",
  };
  for (const char* dbtext : kDatabases) {
    SCOPED_TRACE(dbtext);
    Database db = ParseDatabase(dbtext, &syms).value();
    ChaseResult chase = Chase(theory, db, &syms);
    ASSERT_TRUE(chase.saturated);
    Result<DatalogResult> eval =
        EvaluateDatalog(sat.value().datalog, db, &syms);
    ASSERT_TRUE(eval.ok());
    // Ground atomic consequences over constants must coincide (Thm 3).
    for (RelationId rel : theory.Relations()) {
      for (uint32_t i : chase.database.AtomsOf(rel)) {
        const Atom& atom = chase.database.atom(i);
        if (atom.IsGroundOverConstants()) {
          EXPECT_TRUE(eval.value().database.Contains(atom))
              << "missing " << ToString(atom, syms);
        }
      }
      for (uint32_t i : eval.value().database.AtomsOf(rel)) {
        const Atom& atom = eval.value().database.atom(i);
        if (atom.IsGroundOverConstants()) {
          EXPECT_TRUE(chase.database.Contains(atom))
              << "extra " << ToString(atom, syms);
        }
      }
    }
  }
}

TEST(SaturationTest, RejectsUnguardedTheory) {
  SymbolTable syms;
  Theory theory = MustParseTheory("e(X, Y), e(Y, Z) -> t(X, Z).", &syms);
  EXPECT_FALSE(Saturate(theory, &syms).ok());
}

TEST(SaturationTest, RenamingRuleDerivesSigma6) {
  SymbolTable syms;
  // σ3 = s(X, Y) → ∃Z t(X, Y, Z) with g = {X→Y} gives
  // σ6 = s(Y, Y) → ∃Z t(Y, Y, Z).
  Theory theory = MustParseTheory("s(X, Y) -> exists Z. t(X, Y, Z).", &syms);
  Result<SaturationResult> sat = Saturate(theory, &syms);
  ASSERT_TRUE(sat.ok());
  Result<Rule> want = ParseRule("s(Y, Y) -> exists Z. t(Y, Y, Z)", &syms);
  std::string key = CanonicalRuleString(want.value(), syms);
  bool found = false;
  for (const Rule& r : sat.value().closure.rules()) {
    if (CanonicalRuleString(r, syms) == key) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Prop6Test, NearlyGuardedMixesDatalogAndGuardedParts) {
  SymbolTable syms;
  // Transitive closure (safe Datalog) plus a guarded existential part
  // feeding it.
  Theory theory = MustParseTheory(R"(
    start(X) -> exists Y. e(X, Y).
    e(X, Y) -> mark(X).
    mark(X), mark(Y) -> pair(X, Y).
  )",
                                  &syms);
  Classification c = Classify(theory);
  ASSERT_TRUE(c.nearly_guarded);
  ASSERT_FALSE(c.guarded);
  Result<DatalogTranslation> dat = NearlyGuardedToDatalog(theory, &syms);
  ASSERT_TRUE(dat.ok()) << dat.status().message();
  EXPECT_TRUE(dat.value().complete);
  Database db = ParseDatabase("start(a). e(b, c).", &syms).value();
  RelationId pair = syms.Relation("pair");
  std::set<std::vector<Term>> via_chase =
      ChaseAnswers(theory, db, pair, &syms);
  Result<std::set<std::vector<Term>>> via_datalog =
      DatalogAnswers(dat.value().datalog, db, pair, &syms);
  ASSERT_TRUE(via_datalog.ok());
  EXPECT_EQ(via_chase, via_datalog.value());
  EXPECT_EQ(via_chase.size(), 4u);  // {a, b}².
}

TEST(Prop6Test, RejectsNonNearlyGuarded) {
  SymbolTable syms;
  Theory theory = MustParseTheory(R"(
    r(X) -> exists Y. e(X, Y).
    e(X, Y), e(Y, Z) -> e(X, Z).
  )",
                                  &syms);
  ASSERT_FALSE(Classify(theory).nearly_guarded);
  EXPECT_FALSE(NearlyGuardedToDatalog(theory, &syms).ok());
}

TEST(SaturationTest, FactRulesSurvive) {
  SymbolTable syms;
  Theory theory = MustParseTheory("-> start(c).\nstart(X) -> done(X).",
                                  &syms);
  Result<SaturationResult> sat = Saturate(theory, &syms);
  ASSERT_TRUE(sat.ok());
  Database db;
  Result<DatalogResult> eval =
      EvaluateDatalog(sat.value().datalog, db, &syms);
  ASSERT_TRUE(eval.ok());
  EXPECT_TRUE(eval.value().database.Contains(
      Atom(syms.Relation("done"), {syms.Constant("c")})));
}

}  // namespace
}  // namespace gerel
