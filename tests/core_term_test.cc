// Unit tests for Term packing and SymbolTable interning.
#include <gtest/gtest.h>

#include "core/symbol_table.h"
#include "core/term.h"

namespace gerel {
namespace {

TEST(TermTest, KindsAndIds) {
  Term c = Term::Constant(7);
  Term v = Term::Variable(7);
  Term n = Term::Null(7);
  EXPECT_TRUE(c.IsConstant());
  EXPECT_TRUE(v.IsVariable());
  EXPECT_TRUE(n.IsNull());
  EXPECT_EQ(c.id(), 7u);
  EXPECT_EQ(v.id(), 7u);
  EXPECT_EQ(n.id(), 7u);
  EXPECT_NE(c, v);
  EXPECT_NE(v, n);
  EXPECT_NE(c, n);
}

TEST(TermTest, Groundness) {
  EXPECT_TRUE(Term::Constant(0).IsGround());
  EXPECT_TRUE(Term::Null(0).IsGround());
  EXPECT_FALSE(Term::Variable(0).IsGround());
}

TEST(TermTest, LargeIds) {
  Term t = Term::Variable((1u << 30) - 1);
  EXPECT_EQ(t.id(), (1u << 30) - 1);
  EXPECT_TRUE(t.IsVariable());
}

TEST(TermTest, HashDistinguishesKinds) {
  TermHash h;
  EXPECT_NE(h(Term::Constant(3)), h(Term::Variable(3)));
}

TEST(SymbolTableTest, InternsConstants) {
  SymbolTable syms;
  Term a = syms.Constant("a");
  Term b = syms.Constant("b");
  EXPECT_EQ(a, syms.Constant("a"));
  EXPECT_NE(a, b);
  EXPECT_EQ(syms.ConstantName(a), "a");
  EXPECT_EQ(syms.NumConstants(), 2u);
}

TEST(SymbolTableTest, InternsVariablesSeparatelyFromConstants) {
  SymbolTable syms;
  Term c = syms.Constant("x");
  Term v = syms.Variable("x");
  EXPECT_NE(c, v);
  EXPECT_TRUE(c.IsConstant());
  EXPECT_TRUE(v.IsVariable());
}

TEST(SymbolTableTest, RelationsRecordArity) {
  SymbolTable syms;
  RelationId r = syms.Relation("r", 2);
  EXPECT_EQ(syms.RelationArity(r), 2);
  EXPECT_EQ(syms.Relation("r", 2), r);
  EXPECT_EQ(syms.RelationName(r), "r");
}

TEST(SymbolTableTest, RelationArityLazilyRecorded) {
  SymbolTable syms;
  RelationId r = syms.Relation("r");
  EXPECT_EQ(syms.RelationArity(r), -1);
  syms.SetRelationArity(r, 3);
  EXPECT_EQ(syms.RelationArity(r), 3);
}

TEST(SymbolTableTest, FreshRelationsAreUnique) {
  SymbolTable syms;
  RelationId a = syms.FreshRelation("aux", 1);
  RelationId b = syms.FreshRelation("aux", 1);
  EXPECT_NE(a, b);
  EXPECT_NE(syms.RelationName(a), syms.RelationName(b));
}

TEST(SymbolTableTest, FreshVariablesAreUnique) {
  SymbolTable syms;
  Term a = syms.FreshVariable("X");
  Term b = syms.FreshVariable("X");
  EXPECT_NE(a, b);
}

TEST(SymbolTableTest, FreshNullsAreUnique) {
  SymbolTable syms;
  Term a = syms.FreshNull();
  Term b = syms.FreshNull();
  EXPECT_NE(a, b);
  EXPECT_TRUE(a.IsNull());
}

TEST(SymbolTableTest, NamedNullsMerge) {
  SymbolTable syms;
  Term a = syms.NamedNull("_n");
  Term b = syms.NamedNull("_n");
  Term c = syms.NamedNull("_m");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(SymbolTableTest, TermNameRendersAllKinds) {
  SymbolTable syms;
  EXPECT_EQ(syms.TermName(syms.Constant("c")), "c");
  EXPECT_EQ(syms.TermName(syms.Variable("X")), "X");
  Term n = syms.FreshNull();
  EXPECT_EQ(syms.TermName(n), "_n0");
}

}  // namespace
}  // namespace gerel
