// Unit tests for the text parser and printer.
#include <gtest/gtest.h>

#include "core/parser.h"
#include "core/printer.h"

namespace gerel {
namespace {

TEST(ParserTest, ParsesSimpleAtom) {
  SymbolTable syms;
  Result<Atom> a = ParseAtom("r(a, X, _n)", &syms);
  ASSERT_TRUE(a.ok()) << a.status().message();
  EXPECT_EQ(a.value().args.size(), 3u);
  EXPECT_TRUE(a.value().args[0].IsConstant());
  EXPECT_TRUE(a.value().args[1].IsVariable());
  EXPECT_TRUE(a.value().args[2].IsNull());
}

TEST(ParserTest, ParsesZeroAryAtom) {
  SymbolTable syms;
  Result<Atom> a = ParseAtom("q", &syms);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a.value().args.empty());
}

TEST(ParserTest, ParsesAnnotatedAtom) {
  SymbolTable syms;
  Result<Atom> a = ParseAtom("r[U, b](X)", &syms);
  ASSERT_TRUE(a.ok()) << a.status().message();
  EXPECT_EQ(a.value().annotation.size(), 2u);
  EXPECT_EQ(a.value().args.size(), 1u);
  EXPECT_EQ(a.value().arity(), 3u);
}

TEST(ParserTest, ParsesDatalogRule) {
  SymbolTable syms;
  Result<Rule> r = ParseRule("e(X, Y), t(Y, Z) -> t(X, Z)", &syms);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().body.size(), 2u);
  EXPECT_EQ(r.value().head.size(), 1u);
  EXPECT_TRUE(r.value().IsDatalog());
}

TEST(ParserTest, ParsesExistentialRule) {
  SymbolTable syms;
  Result<Rule> r =
      ParseRule("publication(X) -> exists K1, K2. keywords(X, K1, K2)", &syms);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().EVars().size(), 2u);
  EXPECT_EQ(r.value().FVars().size(), 1u);
  EXPECT_FALSE(r.value().IsDatalog());
}

TEST(ParserTest, ParsesEmptyBodyRule) {
  SymbolTable syms;
  Result<Rule> r = ParseRule("-> r(c)", &syms);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_TRUE(r.value().body.empty());
  EXPECT_TRUE(r.value().IsFact());
}

TEST(ParserTest, ParsesNegatedLiterals) {
  SymbolTable syms;
  Result<Rule> r = ParseRule("acdom(X), not r(X) -> zero(X)", &syms);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_TRUE(r.value().HasNegation());
  EXPECT_FALSE(r.value().body[0].negated);
  EXPECT_TRUE(r.value().body[1].negated);
}

TEST(ParserTest, BangIsNegation) {
  SymbolTable syms;
  Result<Rule> r = ParseRule("acdom(X), !r(X) -> zero(X)", &syms);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_TRUE(r.value().HasNegation());
}

TEST(ParserTest, ParsesProgramWithFactsAndRules) {
  SymbolTable syms;
  Result<Program> p = ParseProgram(R"(
    % the running example, trimmed
    publication(p1).
    citedin(p1, p2).
    publication(X) -> exists K1, K2. keywords(X, K1, K2).
  )",
                                   &syms);
  ASSERT_TRUE(p.ok()) << p.status().message();
  EXPECT_EQ(p.value().database.size(), 2u);
  EXPECT_EQ(p.value().theory.size(), 1u);
}

TEST(ParserTest, RejectsFactWithVariables) {
  SymbolTable syms;
  Result<Program> p = ParseProgram("r(X).", &syms);
  EXPECT_FALSE(p.ok());
}

TEST(ParserTest, RejectsGarbage) {
  SymbolTable syms;
  EXPECT_FALSE(ParseRule("r(X ->", &syms).ok());
  EXPECT_FALSE(ParseRule("-> ", &syms).ok());
  EXPECT_FALSE(ParseProgram("r(a)", &syms).ok());  // Missing period.
  EXPECT_FALSE(ParseProgram("r(a) @.", &syms).ok());
}

TEST(ParserTest, ParseTheoryRejectsFacts) {
  SymbolTable syms;
  EXPECT_FALSE(ParseTheory("r(a).", &syms).ok());
  EXPECT_TRUE(ParseTheory("r(X) -> s(X).", &syms).ok());
}

TEST(ParserTest, ParseDatabaseRejectsRules) {
  SymbolTable syms;
  EXPECT_FALSE(ParseDatabase("r(X) -> s(X).", &syms).ok());
  EXPECT_TRUE(ParseDatabase("r(a).", &syms).ok());
}

TEST(ParserTest, MultiAtomHeads) {
  SymbolTable syms;
  Result<Rule> r = ParseRule("a(X) -> exists Y. r(X, Y), s(Y, Y)", &syms);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().head.size(), 2u);
  EXPECT_EQ(r.value().EVars().size(), 1u);
}

TEST(PrinterTest, RoundTripsRules) {
  SymbolTable syms;
  const char* kRules[] = {
      "e(X, Y), t(Y, Z) -> t(X, Z)",
      "publication(X) -> exists K1, K2. keywords(X, K1, K2)",
      "acdom(X), not unary(X) -> zero(X)",
      "-> fact(c)",
      "ann[U](X), s(X, Y) -> out[U](Y)",
  };
  for (const char* text : kRules) {
    Result<Rule> r = ParseRule(text, &syms);
    ASSERT_TRUE(r.ok()) << text << ": " << r.status().message();
    std::string printed = ToString(r.value(), syms);
    Result<Rule> again = ParseRule(printed, &syms);
    ASSERT_TRUE(again.ok()) << printed << ": " << again.status().message();
    EXPECT_EQ(r.value(), again.value()) << printed;
  }
}

TEST(PrinterTest, DatabaseOutputIsSorted) {
  SymbolTable syms;
  Result<Database> db = ParseDatabase("s(b). r(a).", &syms);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(ToString(db.value(), syms), "r(a).\ns(b).\n");
}

TEST(ParserTest, CommentsAndWhitespace) {
  SymbolTable syms;
  Result<Program> p = ParseProgram(
      "# hash comment\n% percent comment\n  r(a).  % trailing\n", &syms);
  ASSERT_TRUE(p.ok()) << p.status().message();
  EXPECT_EQ(p.value().database.size(), 1u);
}

TEST(ParserTest, ArityMismatchIsACleanParseError) {
  SymbolTable syms;
  ASSERT_TRUE(ParseAtom("r(a, b)", &syms).ok());
  Result<Atom> bad = ParseAtom("r(a)", &syms);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("arity"), std::string::npos);
}

}  // namespace
}  // namespace gerel
