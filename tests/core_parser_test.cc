// Unit tests for the text parser and printer.
#include <gtest/gtest.h>

#include "core/parser.h"
#include "core/printer.h"

namespace gerel {
namespace {

TEST(ParserTest, ParsesSimpleAtom) {
  SymbolTable syms;
  Result<Atom> a = ParseAtom("r(a, X, _n)", &syms);
  ASSERT_TRUE(a.ok()) << a.status().message();
  EXPECT_EQ(a.value().args.size(), 3u);
  EXPECT_TRUE(a.value().args[0].IsConstant());
  EXPECT_TRUE(a.value().args[1].IsVariable());
  EXPECT_TRUE(a.value().args[2].IsNull());
}

TEST(ParserTest, ParsesZeroAryAtom) {
  SymbolTable syms;
  Result<Atom> a = ParseAtom("q", &syms);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a.value().args.empty());
}

TEST(ParserTest, ParsesAnnotatedAtom) {
  SymbolTable syms;
  Result<Atom> a = ParseAtom("r[U, b](X)", &syms);
  ASSERT_TRUE(a.ok()) << a.status().message();
  EXPECT_EQ(a.value().annotation.size(), 2u);
  EXPECT_EQ(a.value().args.size(), 1u);
  EXPECT_EQ(a.value().arity(), 3u);
}

TEST(ParserTest, ParsesDatalogRule) {
  SymbolTable syms;
  Result<Rule> r = ParseRule("e(X, Y), t(Y, Z) -> t(X, Z)", &syms);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().body.size(), 2u);
  EXPECT_EQ(r.value().head.size(), 1u);
  EXPECT_TRUE(r.value().IsDatalog());
}

TEST(ParserTest, ParsesExistentialRule) {
  SymbolTable syms;
  Result<Rule> r =
      ParseRule("publication(X) -> exists K1, K2. keywords(X, K1, K2)", &syms);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().EVars().size(), 2u);
  EXPECT_EQ(r.value().FVars().size(), 1u);
  EXPECT_FALSE(r.value().IsDatalog());
}

TEST(ParserTest, ParsesEmptyBodyRule) {
  SymbolTable syms;
  Result<Rule> r = ParseRule("-> r(c)", &syms);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_TRUE(r.value().body.empty());
  EXPECT_TRUE(r.value().IsFact());
}

TEST(ParserTest, ParsesNegatedLiterals) {
  SymbolTable syms;
  Result<Rule> r = ParseRule("acdom(X), not r(X) -> zero(X)", &syms);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_TRUE(r.value().HasNegation());
  EXPECT_FALSE(r.value().body[0].negated);
  EXPECT_TRUE(r.value().body[1].negated);
}

TEST(ParserTest, BangIsNegation) {
  SymbolTable syms;
  Result<Rule> r = ParseRule("acdom(X), !r(X) -> zero(X)", &syms);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_TRUE(r.value().HasNegation());
}

TEST(ParserTest, ParsesProgramWithFactsAndRules) {
  SymbolTable syms;
  Result<Program> p = ParseProgram(R"(
    % the running example, trimmed
    publication(p1).
    citedin(p1, p2).
    publication(X) -> exists K1, K2. keywords(X, K1, K2).
  )",
                                   &syms);
  ASSERT_TRUE(p.ok()) << p.status().message();
  EXPECT_EQ(p.value().database.size(), 2u);
  EXPECT_EQ(p.value().theory.size(), 1u);
}

TEST(ParserTest, RejectsFactWithVariables) {
  SymbolTable syms;
  Result<Program> p = ParseProgram("r(X).", &syms);
  EXPECT_FALSE(p.ok());
}

TEST(ParserTest, RejectsGarbage) {
  SymbolTable syms;
  EXPECT_FALSE(ParseRule("r(X ->", &syms).ok());
  EXPECT_FALSE(ParseRule("-> ", &syms).ok());
  EXPECT_FALSE(ParseProgram("r(a)", &syms).ok());  // Missing period.
  EXPECT_FALSE(ParseProgram("r(a) @.", &syms).ok());
}

TEST(ParserTest, ParseTheoryRejectsFacts) {
  SymbolTable syms;
  EXPECT_FALSE(ParseTheory("r(a).", &syms).ok());
  EXPECT_TRUE(ParseTheory("r(X) -> s(X).", &syms).ok());
}

TEST(ParserTest, ParseDatabaseRejectsRules) {
  SymbolTable syms;
  EXPECT_FALSE(ParseDatabase("r(X) -> s(X).", &syms).ok());
  EXPECT_TRUE(ParseDatabase("r(a).", &syms).ok());
}

TEST(ParserTest, MultiAtomHeads) {
  SymbolTable syms;
  Result<Rule> r = ParseRule("a(X) -> exists Y. r(X, Y), s(Y, Y)", &syms);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().head.size(), 2u);
  EXPECT_EQ(r.value().EVars().size(), 1u);
}

TEST(PrinterTest, RoundTripsRules) {
  SymbolTable syms;
  const char* kRules[] = {
      "e(X, Y), t(Y, Z) -> t(X, Z)",
      "publication(X) -> exists K1, K2. keywords(X, K1, K2)",
      "acdom(X), not unary(X) -> zero(X)",
      "-> fact(c)",
      "ann[U](X), s(X, Y) -> out[U](Y)",
  };
  for (const char* text : kRules) {
    Result<Rule> r = ParseRule(text, &syms);
    ASSERT_TRUE(r.ok()) << text << ": " << r.status().message();
    std::string printed = ToString(r.value(), syms);
    Result<Rule> again = ParseRule(printed, &syms);
    ASSERT_TRUE(again.ok()) << printed << ": " << again.status().message();
    EXPECT_EQ(r.value(), again.value()) << printed;
  }
}

TEST(PrinterTest, DatabaseOutputIsSorted) {
  SymbolTable syms;
  Result<Database> db = ParseDatabase("s(b). r(a).", &syms);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(ToString(db.value(), syms), "r(a).\ns(b).\n");
}

TEST(ParserTest, CommentsAndWhitespace) {
  SymbolTable syms;
  Result<Program> p = ParseProgram(
      "# hash comment\n% percent comment\n  r(a).  % trailing\n", &syms);
  ASSERT_TRUE(p.ok()) << p.status().message();
  EXPECT_EQ(p.value().database.size(), 1u);
}

TEST(ParserTest, ArityMismatchIsACleanParseError) {
  SymbolTable syms;
  ASSERT_TRUE(ParseAtom("r(a, b)", &syms).ok());
  Result<Atom> bad = ParseAtom("r(a)", &syms);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("arity"), std::string::npos);
}

TEST(ParserTest, ErrorsReportLineColWithCaretSnippet) {
  SymbolTable syms;
  Result<Program> p = ParseProgram("e(a, b).\ne(X, Y) -> t(Y.\n", &syms);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().message(),
            "line 2:15: expected closing bracket\n"
            "  e(X, Y) -> t(Y.\n"
            "                ^");
}

TEST(ParserTest, FactWithVariablesErrorSpansTheFact) {
  SymbolTable syms;
  Result<Program> p = ParseProgram("ok(c).\n  bad(X, c).\n", &syms);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().message(),
            "line 2:3: fact contains variables\n"
            "    bad(X, c).\n"
            "    ^~~~~~~~~");
}

TEST(ParserTest, UnexpectedCharacterReportsLineCol) {
  SymbolTable syms;
  Result<Program> p = ParseProgram("r(a) @.", &syms);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().message().rfind("line 1:6: ", 0), 0u)
      << p.status().message();
}

TEST(ParserTest, ArityMismatchErrorPointsAtTheAtom) {
  SymbolTable syms;
  ASSERT_TRUE(ParseProgram("r(a, b).", &syms).ok());
  Result<Program> bad = ParseProgram("ok(c).\nr(X) -> r(X, X).", &syms);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().message(),
            "line 2:1: relation 'r' used with arity 1 but declared with 2\n"
            "  r(X) -> r(X, X).\n"
            "  ^~~~");
}

TEST(ParserTest, SourceMapRecordsRuleFactAndTermSpans) {
  SymbolTable syms;
  SourceMap map;
  const std::string text =
      "e(a, b).\n"
      "e(X, Y), t(Y, Z) -> t(X, Z).\n";
  Result<Program> p = ParseProgram(text, &syms, &map);
  ASSERT_TRUE(p.ok()) << p.status().message();
  ASSERT_EQ(map.facts.size(), 1u);
  ASSERT_EQ(map.rules.size(), 1u);
  auto spanned = [&](Span s) {
    return std::string(map.text().substr(s.begin, s.end - s.begin));
  };
  EXPECT_EQ(spanned(map.facts[0].span), "e(a, b)");
  EXPECT_EQ(spanned(map.rules[0].span), "e(X, Y), t(Y, Z) -> t(X, Z)");
  ASSERT_EQ(map.rules[0].body.size(), 2u);
  EXPECT_EQ(spanned(map.rules[0].body[1].span), "t(Y, Z)");
  ASSERT_EQ(map.rules[0].body[1].args.size(), 2u);
  EXPECT_EQ(spanned(map.rules[0].body[1].args[0]), "Y");
  ASSERT_EQ(map.rules[0].head.size(), 1u);
  EXPECT_EQ(spanned(map.rules[0].head[0].span), "t(X, Z)");
  LineCol lc = map.Resolve(map.rules[0].span);
  EXPECT_EQ(lc.line, 2u);
  EXPECT_EQ(lc.col, 1u);
}

TEST(ParserTest, SourceMapRecordsDeclaredExistentials) {
  SymbolTable syms;
  SourceMap map;
  Result<Program> p =
      ParseProgram("p(X) -> exists Y, Z. q(X, Y).\n", &syms, &map);
  ASSERT_TRUE(p.ok()) << p.status().message();
  ASSERT_EQ(map.rules.size(), 1u);
  const RuleSpans& rs = map.rules[0];
  ASSERT_EQ(rs.declared_evars.size(), 2u);
  // Z is declared but unused: EVars() drops it, the map keeps it.
  EXPECT_EQ(p.value().theory.rules()[0].EVars().size(), 1u);
  EXPECT_EQ(rs.declared_evars[0].first, syms.Variable("Y"));
  EXPECT_EQ(rs.declared_evars[1].first, syms.Variable("Z"));
  auto spanned = [&](Span s) {
    return std::string(map.text().substr(s.begin, s.end - s.begin));
  };
  EXPECT_EQ(spanned(rs.declared_evars[1].second), "Z");
}

TEST(ParserTest, SourceMapQuotedConstantSpansIncludeQuotes) {
  SymbolTable syms;
  SourceMap map;
  Result<Program> p = ParseProgram("name('Ada L.').\n", &syms, &map);
  ASSERT_TRUE(p.ok()) << p.status().message();
  ASSERT_EQ(map.facts.size(), 1u);
  ASSERT_EQ(map.facts[0].args.size(), 1u);
  Span s = map.facts[0].args[0];
  EXPECT_EQ(std::string(map.text().substr(s.begin, s.end - s.begin)),
            "'Ada L.'");
}

TEST(ParserTest, SourceMapSkipsDuplicateFacts) {
  SymbolTable syms;
  SourceMap map;
  Result<Program> p = ParseProgram("r(a).\nr(a).\ns(b).\n", &syms, &map);
  ASSERT_TRUE(p.ok());
  // The database dedupes; the map stays parallel to insertion order.
  EXPECT_EQ(p.value().database.size(), 2u);
  ASSERT_EQ(map.facts.size(), 2u);
  EXPECT_EQ(map.Resolve(map.facts[0].span).line, 1u);
  EXPECT_EQ(map.Resolve(map.facts[1].span).line, 3u);
}

TEST(ParserTest, CaretSnippetHandlesSpanOnNewline) {
  // Regression: a span starting on the newline itself must not
  // underflow the caret column (found by the mutation fuzz tests).
  std::string text = "ab\n\ncd";
  EXPECT_EQ(CaretSnippet(text, Span{2, 3}), "  ab\n    ^\n");
  EXPECT_EQ(CaretSnippet(text, Span{3, 4}), "  \n  ^\n");
  EXPECT_EQ(CaretSnippet(text, Span{6, 7}), "");  // Past the end.
}

}  // namespace
}  // namespace gerel
