// Unit tests for Prop 1 normalization (Def 4 normal form).
#include <gtest/gtest.h>

#include "core/classify.h"
#include "core/normalize.h"
#include "core/parser.h"
#include "core/printer.h"

namespace gerel {
namespace {

Theory Parse(const char* text, SymbolTable* syms) {
  Result<Theory> t = ParseTheory(text, syms);
  EXPECT_TRUE(t.ok()) << t.status().message();
  return std::move(t).value();
}

TEST(NormalizeTest, AlreadyNormalTheoryIsUnchanged) {
  SymbolTable syms;
  Theory t = Parse(R"(
    a(X) -> exists Y. r(X, Y).
    r(X, Y) -> s(Y, Y).
  )",
                   &syms);
  EXPECT_TRUE(IsNormal(t));
  Theory n = Normalize(t, &syms);
  EXPECT_EQ(n.size(), t.size());
  EXPECT_TRUE(IsNormal(n));
}

TEST(NormalizeTest, SplitsMultiAtomHeads) {
  SymbolTable syms;
  Theory t = Parse("a(X) -> exists Y. r(X, Y), s(Y, Y).", &syms);
  EXPECT_FALSE(IsNormal(t));
  Theory n = Normalize(t, &syms);
  EXPECT_TRUE(IsNormal(n));
  // One collector rule plus two projections.
  EXPECT_EQ(n.size(), 3u);
  for (const Rule& r : n.rules()) EXPECT_EQ(r.head.size(), 1u);
}

TEST(NormalizeTest, SharedExistentialsStayCorrelated) {
  SymbolTable syms;
  Theory t = Parse("a(X) -> exists Y. r(X, Y), s(Y, Y).", &syms);
  Theory n = Normalize(t, &syms);
  // The collector head must contain both the frontier X and the
  // existential Y so the two projections agree on Y.
  const Rule& collector = n.rules()[0];
  EXPECT_EQ(collector.head.size(), 1u);
  EXPECT_EQ(collector.head[0].args.size(), 2u);
}

TEST(NormalizeTest, GuardsUnguardedExistentialRules) {
  SymbolTable syms;
  // Body has no single atom with X and Z, but the rule is
  // frontier-guarded (frontier {X}) and has an existential head.
  Theory t = Parse("e(X, Y), f(Y, Z) -> exists W. g(X, W).", &syms);
  EXPECT_FALSE(IsNormal(t));
  Theory n = Normalize(t, &syms);
  EXPECT_TRUE(IsNormal(n));
  for (const Rule& r : n.rules()) {
    if (!r.EVars().empty()) {
      EXPECT_TRUE(IsGuardedRule(r));
    }
  }
}

TEST(NormalizeTest, ExtractsConstants) {
  SymbolTable syms;
  Theory t = Parse("r(X, c) -> s(X).", &syms);
  EXPECT_FALSE(IsNormal(t));
  Theory n = Normalize(t, &syms);
  EXPECT_TRUE(IsNormal(n));
  // One fact rule → const#c(c) and one rewritten rule.
  EXPECT_EQ(n.size(), 2u);
  bool has_fact = false;
  for (const Rule& r : n.rules()) {
    if (r.IsFact()) has_fact = true;
  }
  EXPECT_TRUE(has_fact);
}

TEST(NormalizeTest, FactRulesAreKept) {
  SymbolTable syms;
  Theory t = Parse("-> r(c).", &syms);
  EXPECT_TRUE(IsNormal(t));
  Theory n = Normalize(t, &syms);
  EXPECT_EQ(n.size(), 1u);
  EXPECT_TRUE(n.rules()[0].IsFact());
}

TEST(NormalizeTest, PreservesWeakFrontierGuardedness) {
  SymbolTable syms;
  Theory t = Parse(R"(
    r(X) -> exists Y, Z. e(X, Y), e(Y, Z).
    e(X, Y), e(Y, Z) -> t(Y).
  )",
                   &syms);
  Classification before = Classify(t);
  EXPECT_TRUE(before.weakly_frontier_guarded);
  Theory n = Normalize(t, &syms);
  EXPECT_TRUE(IsNormal(n));
  Classification after = Classify(n);
  EXPECT_TRUE(after.weakly_frontier_guarded);
}

TEST(NormalizeTest, PreservesWeakGuardedness) {
  SymbolTable syms;
  Theory t = Parse(R"(
    r(X) -> exists Y. e(X, Y), d(Y).
    e(X, Y), d(Y) -> e(Y, X).
  )",
                   &syms);
  Classification before = Classify(t);
  ASSERT_TRUE(before.weakly_guarded);
  Theory n = Normalize(t, &syms);
  EXPECT_TRUE(IsNormal(n));
  EXPECT_TRUE(Classify(n).weakly_guarded);
}

TEST(NormalizeTest, PreservesFrontierGuardednessOnConstantFreeInput) {
  SymbolTable syms;
  Theory t = Parse(R"(
    hastopic(X, Z), hasauthor(X, U), hasauthor(Y, U), hastopic(Y, Z2),
      scientific(Z2), citedin(Y, X) -> scientific(Z).
  )",
                   &syms);
  ASSERT_TRUE(Classify(t).frontier_guarded);
  Theory n = Normalize(t, &syms);
  EXPECT_TRUE(IsNormal(n));
  EXPECT_TRUE(Classify(n).frontier_guarded);
}

TEST(NormalizeTest, MultiHeadDatalogRuleSplit) {
  SymbolTable syms;
  Theory t = Parse("e(X, Y) -> a(X), b(Y).", &syms);
  Theory n = Normalize(t, &syms);
  EXPECT_TRUE(IsNormal(n));
  EXPECT_EQ(n.size(), 3u);
}

TEST(NormalizeTest, OptionsDisableSteps) {
  SymbolTable syms;
  Theory t = Parse("e(X, Y) -> a(X), b(Y).", &syms);
  NormalizeOptions opts;
  opts.split_heads = false;
  Theory n = Normalize(t, &syms, opts);
  EXPECT_EQ(n.size(), 1u);
  EXPECT_FALSE(IsNormal(n));
}

}  // namespace
}  // namespace gerel
