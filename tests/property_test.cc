// Property-based tests: invariants of the paper's constructions swept
// over randomly generated theories and databases (parameterized gtest;
// one instantiation per seed).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "chase/chase.h"
#include "chase/chase_tree.h"
#include "core/acyclicity.h"
#include "core/classify.h"
#include "core/homomorphism.h"
#include "core/normalize.h"
#include "core/parser.h"
#include "core/printer.h"
#include "datalog/evaluator.h"
#include "datalog/magic.h"
#include "stratified/stratified_chase.h"
#include "testing/random_theories.h"
#include "transform/canonical.h"
#include "transform/fg_to_ng.h"
#include "transform/saturation.h"

namespace gerel {
namespace {

using gerel::testing::RandomParams;
using gerel::testing::RandomTheoryGen;

class PropertyTest : public ::testing::TestWithParam<unsigned> {};

// Collect the ground constant-only atoms over the relations of `theory`.
std::set<std::string> GroundFacts(const Database& db, const Theory& theory,
                                  const SymbolTable& syms) {
  std::set<std::string> out;
  for (RelationId rel : theory.Relations()) {
    for (uint32_t i : db.AtomsOf(rel)) {
      const Atom& a = db.atom(i);
      if (a.IsGroundOverConstants()) out.insert(ToString(a, syms));
    }
  }
  return out;
}

// P1: the Figure 1 syntactic inclusions hold for every random rule.
TEST_P(PropertyTest, ClassificationImplications) {
  SymbolTable syms;
  RandomTheoryGen gen(GetParam(), &syms);
  RandomParams params;
  params.num_rules = 8;
  params.existential_prob = 0.5;
  Theory t = gen.Theory_(params);
  PositionSet ap = AffectedPositions(t);
  for (const Rule& r : t.rules()) {
    if (IsGuardedRule(r)) {
      EXPECT_TRUE(IsFrontierGuardedRule(r)) << ToString(r, syms);
      EXPECT_TRUE(IsWeaklyGuardedRule(r, ap)) << ToString(r, syms);
      EXPECT_TRUE(IsNearlyGuardedRule(r, ap)) << ToString(r, syms);
    }
    if (IsFrontierGuardedRule(r)) {
      EXPECT_TRUE(IsWeaklyFrontierGuardedRule(r, ap)) << ToString(r, syms);
      EXPECT_TRUE(IsNearlyFrontierGuardedRule(r, ap)) << ToString(r, syms);
    }
    if (IsWeaklyGuardedRule(r, ap)) {
      EXPECT_TRUE(IsWeaklyFrontierGuardedRule(r, ap)) << ToString(r, syms);
    }
    if (IsNearlyGuardedRule(r, ap)) {
      EXPECT_TRUE(IsNearlyFrontierGuardedRule(r, ap)) << ToString(r, syms);
    }
  }
}

// P2: normalization preserves ground consequences over the original
// signature (Prop 1(b)).
TEST_P(PropertyTest, NormalizePreservesGroundConsequences) {
  SymbolTable syms;
  RandomTheoryGen gen(GetParam(), &syms);
  RandomParams params;
  params.force_frontier_guarded = true;
  params.existential_prob = 0.4;
  Theory t = gen.Theory_(params);
  Database db = gen.Database_(8, 4);
  ChaseOptions opts;
  opts.max_steps = 20000;
  opts.max_atoms = 20000;
  ChaseResult before = Chase(t, db, &syms, opts);
  if (!before.saturated) GTEST_SKIP() << "chase did not saturate";
  Theory normal = Normalize(t, &syms);
  SymbolTable syms2 = syms;
  ChaseResult after = Chase(normal, db, &syms2, opts);
  if (!after.saturated) GTEST_SKIP() << "normalized chase did not saturate";
  EXPECT_EQ(GroundFacts(before.database, t, syms),
            GroundFacts(after.database, t, syms));
}

// P3: the canonical string is invariant under variable renaming and body
// reordering.
TEST_P(PropertyTest, CanonicalStringInvariance) {
  SymbolTable syms;
  RandomTheoryGen gen(GetParam(), &syms);
  RandomParams params;
  params.num_rules = 6;
  Theory t = gen.Theory_(params);
  std::mt19937& rng = gen.rng();
  for (const Rule& rule : t.rules()) {
    std::string base = CanonicalRuleString(rule, syms);
    // Rename variables with a random injective map.
    std::vector<Term> vars = rule.Vars();
    std::vector<Term> fresh;
    for (size_t i = 0; i < vars.size(); ++i) {
      fresh.push_back(syms.Variable("Zp" + std::to_string(i + rng() % 7)));
    }
    // Ensure injectivity by index offsetting.
    for (size_t i = 0; i < fresh.size(); ++i) {
      fresh[i] = syms.Variable("Zq" + std::to_string(i));
    }
    Substitution rename;
    for (size_t i = 0; i < vars.size(); ++i) rename.Bind(vars[i], fresh[i]);
    Rule renamed = rename.Apply(rule);
    std::shuffle(renamed.body.begin(), renamed.body.end(), rng);
    EXPECT_EQ(base, CanonicalRuleString(renamed, syms))
        << ToString(rule, syms) << "  vs  " << ToString(renamed, syms);
  }
}

// P4: the homomorphism matcher agrees with brute-force enumeration.
TEST_P(PropertyTest, MatcherAgreesWithBruteForce) {
  SymbolTable syms;
  RandomTheoryGen gen(GetParam(), &syms);
  RandomParams params;
  params.num_rules = 3;
  params.max_body_atoms = 2;
  Theory t = gen.Theory_(params);
  Database db = gen.Database_(10, 3);
  std::vector<Term> domain = db.ActiveTerms();
  for (const Rule& rule : t.rules()) {
    std::vector<Atom> pattern = rule.PositiveBody();
    size_t fast = 0;
    ForEachHomomorphism(pattern, db, Substitution(),
                        [&fast](const Substitution&) {
                          ++fast;
                          return true;
                        });
    // Brute force: all assignments of the pattern variables into the
    // active domain.
    std::vector<Term> vars;
    for (const Atom& a : pattern) {
      for (Term v : a.AllVars()) {
        if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
          vars.push_back(v);
        }
      }
    }
    size_t slow = 0;
    std::vector<size_t> pick(vars.size(), 0);
    while (true) {
      Substitution s;
      for (size_t i = 0; i < vars.size(); ++i) s.Bind(vars[i], domain[pick[i]]);
      bool all = true;
      for (const Atom& a : pattern) {
        if (!db.Contains(s.Apply(a))) {
          all = false;
          break;
        }
      }
      if (all) ++slow;
      size_t i = 0;
      for (; i < pick.size(); ++i) {
        if (++pick[i] < domain.size()) break;
        pick[i] = 0;
      }
      if (i == pick.size()) break;
      if (pick.empty()) break;
    }
    EXPECT_EQ(fast, slow) << ToString(rule, syms);
  }
}

// P5: dat(Σ) of a random guarded theory has the chase's ground
// consequences (Thm 3).
TEST_P(PropertyTest, SaturationMatchesChaseOnGuardedTheories) {
  SymbolTable syms;
  RandomTheoryGen gen(GetParam(), &syms);
  RandomParams params;
  params.force_guarded = true;
  params.num_rules = 3;
  params.existential_prob = 0.5;
  Theory t = gen.Theory_(params);
  if (!Classify(t).guarded) GTEST_SKIP() << "generator failed to guard";
  Database db = gen.Database_(6, 3);
  ChaseOptions opts;
  opts.max_steps = 20000;
  opts.max_atoms = 20000;
  ChaseResult chase = Chase(t, db, &syms, opts);
  if (!chase.saturated) GTEST_SKIP() << "chase did not saturate";
  SaturationOptions sopts;
  sopts.max_rules = 20000;
  auto sat = Saturate(t, &syms, sopts);
  ASSERT_TRUE(sat.ok()) << sat.status().message();
  if (!sat.value().complete) GTEST_SKIP() << "saturation capped";
  auto eval = EvaluateDatalog(sat.value().datalog, db, &syms);
  ASSERT_TRUE(eval.ok()) << eval.status().message();
  EXPECT_EQ(GroundFacts(chase.database, t, syms),
            GroundFacts(eval.value().database, t, syms));
}

// P6: chase trees of random frontier-guarded theories satisfy Prop 2.
TEST_P(PropertyTest, ChaseTreePropertiesOnRandomFgTheories) {
  SymbolTable syms;
  RandomTheoryGen gen(GetParam(), &syms);
  RandomParams params;
  params.force_frontier_guarded = true;
  params.existential_prob = 0.4;
  Theory t = gen.Theory_(params);
  Theory normal = Normalize(t, &syms);
  if (!Classify(normal).frontier_guarded) {
    GTEST_SKIP() << "generator failed to frontier-guard";
  }
  Database db = gen.Database_(6, 3);
  ChaseOptions opts;
  opts.max_steps = 20000;
  opts.max_atoms = 20000;
  auto tree = BuildChaseTree(normal, db, &syms, opts);
  if (!tree.ok()) GTEST_SKIP() << tree.status().message();
  Status props = CheckChaseTreeProperties(tree.value(), normal, db);
  EXPECT_TRUE(props.ok()) << props.message();
}

// P7: Theorem 1 on random frontier-guarded theories — rew preserves the
// ground consequences over the original signature.
TEST_P(PropertyTest, RewriteFgPreservesGroundConsequences) {
  SymbolTable syms;
  RandomTheoryGen gen(GetParam(), &syms);
  RandomParams params;
  params.force_frontier_guarded = true;
  params.num_rules = 3;
  params.max_body_atoms = 2;
  params.num_vars = 3;
  params.existential_prob = 0.4;
  Theory t = gen.Theory_(params);
  Theory normal = Normalize(t, &syms);
  if (!Classify(normal).frontier_guarded) {
    GTEST_SKIP() << "generator failed to frontier-guard";
  }
  Database db = gen.Database_(5, 3);
  ChaseOptions opts;
  opts.max_steps = 50000;
  opts.max_atoms = 50000;
  ChaseResult oracle = Chase(t, db, &syms, opts);
  if (!oracle.saturated) GTEST_SKIP() << "chase did not saturate";
  ExpansionOptions eopts;
  eopts.max_rules = 100000;
  auto rew = RewriteFgToNearlyGuarded(normal, &syms, eopts);
  ASSERT_TRUE(rew.ok()) << rew.status().message();
  SymbolTable syms2 = syms;
  ChaseOptions big;
  big.max_steps = 2000000;
  big.max_atoms = 2000000;
  ChaseResult rewritten = Chase(rew.value().theory, db, &syms2, big);
  if (!rewritten.saturated) GTEST_SKIP() << "rewritten chase unsaturated";
  EXPECT_EQ(GroundFacts(oracle.database, t, syms),
            GroundFacts(rewritten.database, t, syms))
      << "theory:\n"
      << ToString(t, syms);
}

// P8: stratified chase agrees with the Datalog evaluator on semipositive
// Datalog programs.
TEST_P(PropertyTest, StratifiedChaseMatchesDatalogOnSemipositive) {
  SymbolTable syms;
  RandomTheoryGen gen(GetParam(), &syms);
  RandomParams params;
  params.existential_prob = 0.0;
  params.num_rules = 4;
  Theory t = gen.Theory_(params);
  // Add one semipositive rule over a fresh relation.
  RelationId r0 = t.Relations().front();
  int arity = 0;
  for (const Rule& rule : t.rules()) {
    for (const Literal& l : rule.body) {
      if (l.atom.pred == r0) arity = static_cast<int>(l.atom.args.size());
    }
    for (const Atom& a : rule.head) {
      if (a.pred == r0) arity = static_cast<int>(a.args.size());
    }
  }
  if (arity == 0) GTEST_SKIP() << "no usable relation";
  RelationId comp = syms.Relation("complement_out", arity);
  RelationId acdom = AcdomRelation(&syms);
  Rule neg;
  std::vector<Term> xs;
  for (int i = 0; i < arity; ++i) {
    xs.push_back(syms.Variable("Nx" + std::to_string(i)));
    neg.body.emplace_back(Atom(acdom, {xs.back()}), false);
  }
  neg.body.emplace_back(Atom(r0, xs), /*negated=*/true);
  neg.head.push_back(Atom(comp, xs));
  t.AddRule(std::move(neg));
  Database db = gen.Database_(8, 3);
  auto stratified = StratifiedChase(t, db, &syms);
  ASSERT_TRUE(stratified.ok()) << stratified.status().message();
  if (!stratified.value().saturated) GTEST_SKIP();
  auto datalog = EvaluateDatalog(t, db, &syms);
  ASSERT_TRUE(datalog.ok()) << datalog.status().message();
  EXPECT_EQ(GroundFacts(stratified.value().database, t, syms),
            GroundFacts(datalog.value().database, t, syms));
}

// P11: positive existential-rule queries are monotonic (§8: this is why
// weakly guarded rules cannot express parity without negation): adding
// facts never removes ground consequences.
TEST_P(PropertyTest, PositiveTheoriesAreMonotonic) {
  SymbolTable syms;
  RandomTheoryGen gen(GetParam(), &syms);
  RandomParams params;
  params.existential_prob = 0.3;
  Theory t = gen.Theory_(params);
  Database small = gen.Database_(5, 3);
  Database extra = gen.Database_(4, 3);
  Database large = small;
  for (const Atom& a : extra.atoms()) large.Insert(a);
  ChaseOptions opts;
  opts.max_steps = 20000;
  opts.max_atoms = 20000;
  ChaseResult r_small = Chase(t, small, &syms, opts);
  SymbolTable syms2 = syms;
  ChaseResult r_large = Chase(t, large, &syms2, opts);
  if (!r_small.saturated || !r_large.saturated) GTEST_SKIP();
  std::set<std::string> before = GroundFacts(r_small.database, t, syms);
  std::set<std::string> after = GroundFacts(r_large.database, t, syms);
  for (const std::string& fact : before) {
    EXPECT_TRUE(after.count(fact)) << "monotonicity violated: " << fact;
  }
}

// P12: the restricted chase has the same ground consequences as the
// oblivious chase and is homomorphically equivalent where both saturate.
TEST_P(PropertyTest, RestrictedChaseMatchesOblivious) {
  SymbolTable syms;
  RandomTheoryGen gen(GetParam(), &syms);
  RandomParams params;
  params.existential_prob = 0.4;
  Theory t = gen.Theory_(params);
  Database db = gen.Database_(6, 3);
  ChaseOptions opts;
  opts.max_steps = 20000;
  opts.max_atoms = 20000;
  ChaseResult oblivious = Chase(t, db, &syms, opts);
  ChaseOptions ropts = opts;
  ropts.restricted = true;
  SymbolTable syms2 = syms;
  ChaseResult restricted = Chase(t, db, &syms2, ropts);
  if (!oblivious.saturated || !restricted.saturated) GTEST_SKIP();
  EXPECT_EQ(GroundFacts(oblivious.database, t, syms),
            GroundFacts(restricted.database, t, syms));
  EXPECT_LE(restricted.database.size(), oblivious.database.size());
}

// P9: MakeProper round-trips databases.
TEST_P(PropertyTest, ProperReorderingRoundTrip) {
  SymbolTable syms;
  RandomTheoryGen gen(GetParam(), &syms);
  RandomParams params;
  params.existential_prob = 0.5;
  Theory t = gen.Theory_(params);
  Database db = gen.Database_(10, 4);
  ProperReordering pr = MakeProper(t);
  EXPECT_TRUE(IsProper(pr.theory));
  Database mapped = pr.Apply(db);
  Database back = pr.Invert(mapped);
  EXPECT_TRUE(back == db);
}

// P10: the chase result is a solution — it satisfies every rule (§2).
TEST_P(PropertyTest, ChaseResultSatisfiesTheTheory) {
  SymbolTable syms;
  RandomTheoryGen gen(GetParam(), &syms);
  RandomParams params;
  params.existential_prob = 0.3;
  Theory t = gen.Theory_(params);
  Database db = gen.Database_(6, 3);
  ChaseOptions opts;
  opts.max_steps = 20000;
  opts.max_atoms = 20000;
  ChaseResult r = Chase(t, db, &syms, opts);
  if (!r.saturated) GTEST_SKIP();
  for (const Rule& rule : t.rules()) {
    std::vector<Atom> body = rule.PositiveBody();
    bool satisfied = true;
    ForEachHomomorphism(
        body, r.database, Substitution(), [&](const Substitution& h) {
          // Some extension of h must place the whole head in the chase.
          bool found = !ForEachHomomorphism(
              rule.head, r.database, h,
              [](const Substitution&) { return false; });
          if (!found) satisfied = false;
          return satisfied;
        });
    EXPECT_TRUE(satisfied) << "unsatisfied rule: " << ToString(rule, syms);
  }
}

// P13: weak acyclicity implies joint acyclicity; weakly acyclic theories
// have terminating oblivious chases and jointly acyclic ones have
// terminating semi-oblivious (Skolem) chases.
TEST_P(PropertyTest, AcyclicityImplications) {
  SymbolTable syms;
  RandomTheoryGen gen(GetParam(), &syms);
  RandomParams params;
  params.existential_prob = 0.5;
  params.num_rules = 5;
  Theory t = gen.Theory_(params);
  bool wa = IsWeaklyAcyclic(t);
  bool ja = IsJointlyAcyclic(t);
  if (wa) EXPECT_TRUE(ja) << "weakly acyclic but not jointly acyclic";
  Database db = gen.Database_(5, 3);
  ChaseOptions opts;
  opts.max_steps = 200000;
  opts.max_atoms = 200000;
  // Both notions certify termination of the semi-oblivious (Skolem)
  // chase; the fully oblivious chase keys triggers on all body variables
  // and may diverge even on weakly acyclic theories (e.g.
  // p(x) → ∃y p(y), which has no frontier and hence no position edges).
  if (ja) {
    SymbolTable s2 = syms;
    ChaseOptions so = opts;
    so.semi_oblivious = true;
    ChaseResult r = Chase(t, db, &s2, so);
    EXPECT_TRUE(r.saturated)
        << "jointly acyclic theory with diverging semi-oblivious chase:\n"
        << ToString(t, syms);
  }
}

// P14: magic sets preserves the query's answers on random positive
// Datalog programs with a randomly bound query.
TEST_P(PropertyTest, MagicSetsPreservesAnswers) {
  SymbolTable syms;
  RandomTheoryGen gen(GetParam(), &syms);
  RandomParams params;
  params.existential_prob = 0.0;
  params.num_rules = 5;
  Theory t = gen.Theory_(params);
  Database db = gen.Database_(10, 3);
  // Query the first IDB relation, binding the first argument to a
  // random active constant.
  RelationId idb = 0;
  size_t arity = 0;
  for (const Rule& r : t.rules()) {
    if (!r.head[0].args.empty()) {
      idb = r.head[0].pred;
      arity = r.head[0].args.size();
      break;
    }
  }
  if (arity == 0) GTEST_SKIP() << "no usable IDB relation";
  std::vector<Term> constants = db.ActiveConstants();
  if (constants.empty()) GTEST_SKIP();
  Atom query;
  query.pred = idb;
  query.args.push_back(constants[gen.rng()() % constants.size()]);
  for (size_t i = 1; i < arity; ++i) {
    query.args.push_back(syms.Variable("Qf" + std::to_string(i)));
  }
  auto magic = MagicAnswers(t, db, query, &syms);
  ASSERT_TRUE(magic.ok()) << magic.status().message();
  auto full = DatalogAnswers(t, db, idb, &syms);
  ASSERT_TRUE(full.ok());
  std::set<std::vector<Term>> expected;
  for (const auto& tuple : full.value()) {
    if (tuple[0] == query.args[0]) expected.insert(tuple);
  }
  EXPECT_EQ(magic.value(), expected) << ToString(t, syms);
}

// P-par1: the piece-parallel chase is byte-identical to the sequential
// chase — same atoms in the same order, same labeled-null names, same
// step count — for any worker-lane count, in both oblivious and
// restricted modes. Each run gets its own copy of the symbol table so
// fresh-null interning cannot leak between runs.
TEST_P(PropertyTest, ParallelChaseIsByteIdenticalToSequential) {
  SymbolTable syms;
  RandomTheoryGen gen(GetParam(), &syms);
  RandomParams params;
  params.num_rules = 5;
  params.existential_prob = 0.5;
  Theory t = gen.Theory_(params);
  Database db = gen.Database_(8, 4);
  for (bool restricted : {false, true}) {
    ChaseOptions opts;
    opts.max_steps = 4000;
    opts.max_atoms = 4000;
    opts.restricted = restricted;
    SymbolTable seq_syms = syms;
    ChaseResult seq = Chase(t, db, &seq_syms, opts);
    std::string seq_text = ToString(seq.database, seq_syms);
    for (size_t threads : {size_t{2}, size_t{4}}) {
      SymbolTable par_syms = syms;
      ChaseOptions popts = opts;
      popts.num_threads = threads;
      ChaseResult par = Chase(t, db, &par_syms, popts);
      EXPECT_EQ(par.saturated, seq.saturated)
          << "restricted=" << restricted << " threads=" << threads;
      EXPECT_EQ(par.steps, seq.steps)
          << "restricted=" << restricted << " threads=" << threads;
      EXPECT_EQ(ToString(par.database, par_syms), seq_text)
          << "restricted=" << restricted << " threads=" << threads;
    }
  }
}

// P-par2: parallel saturation is byte-identical to sequential
// saturation — same closure rules in the same order, same inference
// count — for any worker-lane count.
TEST_P(PropertyTest, ParallelSaturationIsByteIdenticalToSequential) {
  SymbolTable syms;
  RandomTheoryGen gen(GetParam(), &syms);
  RandomParams params;
  params.force_guarded = true;
  params.num_rules = 4;
  params.existential_prob = 0.5;
  Theory t = gen.Theory_(params);
  if (!Classify(t).guarded) GTEST_SKIP() << "generator failed to guard";
  SaturationOptions sopts;
  sopts.max_rules = 4000;
  SymbolTable seq_syms = syms;
  auto seq = Saturate(t, &seq_syms, sopts);
  ASSERT_TRUE(seq.ok()) << seq.status().message();
  std::string seq_closure = ToString(seq.value().closure, seq_syms);
  std::string seq_datalog = ToString(seq.value().datalog, seq_syms);
  for (size_t threads : {size_t{2}, size_t{4}}) {
    SymbolTable par_syms = syms;
    SaturationOptions popts = sopts;
    popts.num_threads = threads;
    auto par = Saturate(t, &par_syms, popts);
    ASSERT_TRUE(par.ok()) << par.status().message();
    EXPECT_EQ(par.value().complete, seq.value().complete)
        << "threads=" << threads;
    EXPECT_EQ(par.value().inferences, seq.value().inferences)
        << "threads=" << threads;
    EXPECT_EQ(ToString(par.value().closure, par_syms), seq_closure)
        << "threads=" << threads;
    EXPECT_EQ(ToString(par.value().datalog, par_syms), seq_datalog)
        << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Range(0u, 24u));

}  // namespace
}  // namespace gerel
