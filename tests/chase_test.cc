// Tests for the oblivious chase, including the paper's running example
// (Example 1 / Figure 2) and Example 7.
#include <gtest/gtest.h>

#include "chase/chase.h"
#include "core/homomorphism.h"
#include "core/parser.h"
#include "core/printer.h"

namespace gerel {
namespace {

// Σp of Example 1 (σ1–σ4, with σ4 the query rule for Q).
const char* kRunningExample = R"(
  publication(X) -> exists K1, K2. keywords(X, K1, K2).
  keywords(X, K1, K2) -> hastopic(X, K1).
  hastopic(X, Z), hasauthor(X, U), hasauthor(Y, U), hastopic(Y, Z2),
    scientific(Z2), citedin(Y, X) -> scientific(Z).
  hasauthor(X, Y), hastopic(X, Z), scientific(Z) -> q(Y).
)";

// D of Example 1.
const char* kRunningDatabase = R"(
  publication(p1). publication(p2). citedin(p1, p2).
  hasauthor(p1, a1). hasauthor(p2, a1). hasauthor(p2, a2).
  hastopic(p1, t1). scientific(t1).
)";

struct Fixture {
  SymbolTable syms;
  Theory theory;
  Database db;

  Fixture(const char* rules, const char* facts) {
    theory = ParseTheory(rules, &syms).value();
    db = ParseDatabase(facts, &syms).value();
  }
};

TEST(ChaseTest, DatalogFixpoint) {
  Fixture f("e(X, Y) -> t(X, Y).\ne(X, Y), t(Y, Z) -> t(X, Z).",
            "e(a, b). e(b, c). e(c, d).");
  ChaseResult r = Chase(f.theory, f.db, &f.syms);
  EXPECT_TRUE(r.saturated);
  RelationId t = f.syms.Relation("t");
  EXPECT_EQ(r.database.AtomsOf(t).size(), 6u);  // All reachable pairs.
  EXPECT_TRUE(r.database.Contains(
      Atom(t, {f.syms.Constant("a"), f.syms.Constant("d")})));
}

TEST(ChaseTest, ExistentialRuleCreatesFreshNulls) {
  Fixture f("publication(X) -> exists K1, K2. keywords(X, K1, K2).",
            "publication(p1). publication(p2).");
  ChaseResult r = Chase(f.theory, f.db, &f.syms);
  EXPECT_TRUE(r.saturated);
  RelationId kw = f.syms.Relation("keywords");
  ASSERT_EQ(r.database.AtomsOf(kw).size(), 2u);
  // Each publication gets its own pair of distinct fresh nulls.
  const Atom& a0 = r.database.atom(r.database.AtomsOf(kw)[0]);
  const Atom& a1 = r.database.atom(r.database.AtomsOf(kw)[1]);
  EXPECT_TRUE(a0.args[1].IsNull());
  EXPECT_TRUE(a0.args[2].IsNull());
  EXPECT_NE(a0.args[1], a0.args[2]);
  EXPECT_NE(a0.args[1], a1.args[1]);
}

TEST(ChaseTest, ObliviousChaseFiresEachTriggerOnce) {
  // Even when the head is already satisfied, the oblivious chase fires
  // the trigger (creating a redundant null) — but only once per trigger.
  Fixture f("p(X) -> exists Y. e(X, Y).", "p(a). e(a, b).");
  ChaseResult r = Chase(f.theory, f.db, &f.syms);
  EXPECT_TRUE(r.saturated);
  EXPECT_EQ(r.steps, 1u);
  EXPECT_EQ(r.database.AtomsOf(f.syms.Relation("e")).size(), 2u);
}

TEST(RestrictedChaseTest, SkipsSatisfiedTriggers) {
  // The oblivious chase invents a redundant null; the restricted chase
  // does not.
  Fixture f("p(X) -> exists Y. e(X, Y).", "p(a). e(a, b).");
  ChaseOptions opts;
  opts.restricted = true;
  ChaseResult r = Chase(f.theory, f.db, &f.syms, opts);
  EXPECT_TRUE(r.saturated);
  EXPECT_EQ(r.database.AtomsOf(f.syms.Relation("e")).size(), 1u);
}

TEST(RestrictedChaseTest, HomomorphicallyEquivalentToOblivious) {
  Fixture f(kRunningExample, kRunningDatabase);
  ChaseOptions restricted;
  restricted.restricted = true;
  ChaseResult small = Chase(f.theory, f.db, &f.syms, restricted);
  ChaseResult big = Chase(f.theory, f.db, &f.syms);
  ASSERT_TRUE(small.saturated && big.saturated);
  EXPECT_LE(small.database.size(), big.database.size());
  EXPECT_TRUE(HomomorphicallyEquivalent(small.database, big.database));
  // Same ground answers.
  RelationId q = f.syms.Relation("q");
  EXPECT_EQ(small.database.AtomsOf(q).size(),
            big.database.AtomsOf(q).size());
}

TEST(RestrictedChaseTest, TerminatesWhereObliviousDiverges) {
  // p(X) → ∃Y e(X, Y); e(X, Y) → p(Y): the oblivious chase is infinite,
  // but the restricted chase reuses the satisfied head.
  Fixture f("p(X) -> exists Y. e(X, Y).\ne(X, Y) -> p(Y).", "p(c).");
  ChaseOptions opts;
  opts.restricted = true;
  opts.max_steps = 1000;
  ChaseResult r = Chase(f.theory, f.db, &f.syms, opts);
  // Still diverges here (each new null has no outgoing edge yet), but a
  // cyclic database closes it off immediately:
  Fixture g("p(X) -> exists Y. e(X, Y).\ne(X, Y) -> p(Y).",
            "p(c). e(c, c).");
  ChaseResult closed = Chase(g.theory, g.db, &g.syms, opts);
  EXPECT_TRUE(closed.saturated);
  EXPECT_EQ(closed.database.AtomsOf(g.syms.Relation("e")).size(), 1u);
  (void)r;
}

TEST(SemiObliviousChaseTest, FrontierlessRuleFiresOncePerRule) {
  // p(X) → ∃Y q(Y) has an empty frontier: the semi-oblivious (Skolem)
  // chase invents one witness total, the oblivious one per p-fact.
  Fixture f("p(X) -> exists Y. q(Y).", "p(a). p(b). p(c).");
  ChaseOptions so;
  so.semi_oblivious = true;
  ChaseResult semi = Chase(f.theory, f.db, &f.syms, so);
  EXPECT_TRUE(semi.saturated);
  EXPECT_EQ(semi.database.AtomsOf(f.syms.Relation("q")).size(), 1u);
  SymbolTable syms2 = f.syms;
  ChaseResult oblivious = Chase(f.theory, f.db, &syms2);
  EXPECT_EQ(oblivious.database.AtomsOf(syms2.Relation("q")).size(), 3u);
}

TEST(SemiObliviousChaseTest, TerminatesWhereObliviousDiverges) {
  // The weakly acyclic classic: p(X) → ∃Y p(Y). Skolem semantics makes
  // the witness a single constant-like null; the oblivious chase spins.
  Fixture f("p(X) -> exists Y. p(Y).", "p(a).");
  ChaseOptions so;
  so.semi_oblivious = true;
  ChaseResult semi = Chase(f.theory, f.db, &f.syms, so);
  EXPECT_TRUE(semi.saturated);
  EXPECT_EQ(semi.database.AtomsOf(f.syms.Relation("p")).size(), 2u);
  SymbolTable syms2 = f.syms;
  ChaseOptions bounded;
  bounded.max_steps = 50;
  EXPECT_FALSE(Chase(f.theory, f.db, &syms2, bounded).saturated);
}

TEST(SemiObliviousChaseTest, SameGroundAnswersAsOblivious) {
  Fixture f(kRunningExample, kRunningDatabase);
  ChaseOptions so;
  so.semi_oblivious = true;
  ChaseResult semi = Chase(f.theory, f.db, &f.syms, so);
  SymbolTable syms2 = f.syms;
  ChaseResult oblivious = Chase(f.theory, f.db, &syms2);
  ASSERT_TRUE(semi.saturated && oblivious.saturated);
  RelationId q = f.syms.Relation("q");
  EXPECT_EQ(semi.database.AtomsOf(q).size(),
            oblivious.database.AtomsOf(q).size());
}

TEST(ChaseTest, RunningExampleEntailsTheQueryAnswers) {
  Fixture f(kRunningExample, kRunningDatabase);
  ChaseResult r = Chase(f.theory, f.db, &f.syms);
  ASSERT_TRUE(r.saturated);
  RelationId q = f.syms.Relation("q");
  EXPECT_TRUE(r.database.Contains(Atom(q, {f.syms.Constant("a1")})));
  EXPECT_TRUE(r.database.Contains(Atom(q, {f.syms.Constant("a2")})));
  EXPECT_EQ(r.database.AtomsOf(q).size(), 2u);
}

TEST(ChaseTest, RunningExampleMatchesFigure2) {
  Fixture f(kRunningExample, kRunningDatabase);
  ChaseResult r = Chase(f.theory, f.db, &f.syms);
  ASSERT_TRUE(r.saturated);
  // Figure 2: two keywords atoms (nulls n11/n12 and n21/n22), three
  // hastopic atoms (t1 plus the two first keywords), and scientific holds
  // for t1 and the inferred topic n21 of p2.
  EXPECT_EQ(r.database.AtomsOf(f.syms.Relation("keywords")).size(), 2u);
  EXPECT_EQ(r.database.AtomsOf(f.syms.Relation("hastopic")).size(), 3u);
  RelationId sci = f.syms.Relation("scientific");
  EXPECT_EQ(r.database.AtomsOf(sci).size(), 2u);
  bool has_null_topic = false;
  for (uint32_t i : r.database.AtomsOf(sci)) {
    if (r.database.atom(i).args[0].IsNull()) has_null_topic = true;
  }
  EXPECT_TRUE(has_null_topic);
}

TEST(ChaseTest, ChaseAnswersCollectsConstantTuples) {
  Fixture f(kRunningExample, kRunningDatabase);
  std::set<std::vector<Term>> answers =
      ChaseAnswers(f.theory, f.db, f.syms.Relation("q"), &f.syms);
  std::set<std::vector<Term>> expected = {
      {f.syms.Constant("a1")}, {f.syms.Constant("a2")}};
  EXPECT_EQ(answers, expected);
}

TEST(ChaseTest, Example7Chase) {
  // Example 7: σ1–σ5 entail d(c) from {a(c), c0(c)}.
  Fixture f(R"(
    a(X) -> exists Y. r(X, Y).
    r(X, Y) -> s(Y, Y).
    s(X, Y) -> exists Z. t(X, Y, Z).
    t(X, X, Y) -> b(X).
    c0(X), r(X, Y), b(Y) -> d(X).
  )",
            "a(c). c0(c).");
  ChaseResult r = Chase(f.theory, f.db, &f.syms);
  ASSERT_TRUE(r.saturated);
  EXPECT_TRUE(
      r.database.Contains(Atom(f.syms.Relation("d"), {f.syms.Constant("c")})));
}

TEST(ChaseTest, FactRulesFire) {
  Fixture f("-> r(c).\nr(X) -> s(X).", "");
  ChaseResult r = Chase(f.theory, f.db, &f.syms);
  EXPECT_TRUE(r.saturated);
  EXPECT_TRUE(
      r.database.Contains(Atom(f.syms.Relation("s"), {f.syms.Constant("c")})));
}

TEST(ChaseTest, InfiniteChaseHitsStepLimit) {
  Fixture f("r(X) -> exists Y. e(X, Y).\ne(X, Y) -> r(Y).", "r(c).");
  ChaseOptions opts;
  opts.max_steps = 50;
  ChaseResult r = Chase(f.theory, f.db, &f.syms, opts);
  EXPECT_FALSE(r.saturated);
  EXPECT_EQ(r.steps, 50u);
}

TEST(ChaseTest, NullDepthBoundsInfiniteChase) {
  Fixture f("r(X) -> exists Y. e(X, Y).\ne(X, Y) -> r(Y).", "r(c).");
  ChaseOptions opts;
  opts.max_null_depth = 3;
  ChaseResult r = Chase(f.theory, f.db, &f.syms, opts);
  EXPECT_FALSE(r.saturated);  // Depth-skipped triggers remain.
  // Exactly three nulls: c → n1 → n2 → n3, then the depth bound stops it.
  EXPECT_EQ(r.database.AtomsOf(f.syms.Relation("e")).size(), 3u);
}

TEST(ChaseTest, AcdomIsPopulated) {
  Fixture f("acdom(X) -> touched(X).", "e(a, b).");
  ChaseResult r = Chase(f.theory, f.db, &f.syms);
  EXPECT_TRUE(r.saturated);
  RelationId touched = f.syms.Relation("touched");
  EXPECT_EQ(r.database.AtomsOf(touched).size(), 2u);
}

TEST(ChaseTest, AcdomPopulationCanBeDisabled) {
  Fixture f("acdom(X) -> touched(X).", "e(a, b).");
  ChaseOptions opts;
  opts.populate_acdom = false;
  ChaseResult r = Chase(f.theory, f.db, &f.syms, opts);
  EXPECT_TRUE(r.saturated);
  EXPECT_TRUE(r.database.AtomsOf(f.syms.Relation("touched")).empty());
}

TEST(ChaseTest, ChaseEntailsGroundAtom) {
  Fixture f("e(X, Y) -> t(X, Y).\ne(X, Y), t(Y, Z) -> t(X, Z).",
            "e(a, b). e(b, c).");
  RelationId t = f.syms.Relation("t");
  EXPECT_TRUE(ChaseEntails(f.theory, f.db,
                           Atom(t, {f.syms.Constant("a"), f.syms.Constant("c")}),
                           &f.syms));
  EXPECT_FALSE(ChaseEntails(
      f.theory, f.db,
      Atom(t, {f.syms.Constant("c"), f.syms.Constant("a")}), &f.syms));
}

TEST(ChaseTest, DerivationRecordsProvenance) {
  Fixture f("publication(X) -> exists K1, K2. keywords(X, K1, K2).",
            "publication(p1).");
  ChaseResult r = Chase(f.theory, f.db, &f.syms);
  ASSERT_EQ(r.derivation.size(), 1u);
  EXPECT_EQ(r.derivation[0].rule_index, 0u);
  ASSERT_EQ(r.derivation[0].frontier_image.size(), 1u);
  EXPECT_EQ(r.derivation[0].frontier_image[0], f.syms.Constant("p1"));
}

TEST(ChaseTest, MaxAtomsLimit) {
  Fixture f("r(X) -> exists Y. r(Y).", "r(c).");
  ChaseOptions opts;
  opts.max_atoms = 10;
  ChaseResult r = Chase(f.theory, f.db, &f.syms, opts);
  EXPECT_FALSE(r.saturated);
  EXPECT_LE(r.database.size(), 11u);
}

TEST(ChaseTest, EmptyTheoryIsAlreadySaturated) {
  Fixture f("", "e(a, b).");
  ChaseResult r = Chase(f.theory, f.db, &f.syms);
  EXPECT_TRUE(r.saturated);
  EXPECT_EQ(r.steps, 0u);
}

// The batched merge (Database::InsertBatchDeferIndex behind
// ChaseOptions::merge_batch_min) must leave no observable trace: for
// any (batch threshold, lane count) combination the chase produces a
// byte-identical database — null names, atom order, step count — and
// the same saturation/cap outcome as the per-trigger legacy path.
class MergeBatchDeterminism : public ::testing::Test {
 protected:
  // Runs the chase on a fresh parse of (rules, facts) and renders the
  // result with its own symbol table, so runs are byte-comparable.
  struct Run {
    std::string rendered;
    size_t steps;
    bool saturated;
  };
  static Run RunChase(const char* rules, const char* facts,
                      ChaseOptions opts) {
    SymbolTable syms;
    Theory theory = ParseTheory(rules, &syms).value();
    Database db = ParseDatabase(facts, &syms).value();
    ChaseResult r = Chase(theory, db, &syms, opts);
    return {ToString(r.database, syms), r.steps, r.saturated};
  }

  static void ExpectAllConfigsIdentical(const char* rules,
                                        const char* facts,
                                        ChaseOptions base) {
    base.merge_batch_min = 0;  // Per-trigger legacy path.
    base.num_threads = 1;
    Run reference = RunChase(rules, facts, base);
    for (size_t batch_min : {size_t{1}, size_t{2048}}) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        ChaseOptions opts = base;
        opts.merge_batch_min = batch_min;
        opts.num_threads = threads;
        Run got = RunChase(rules, facts, opts);
        EXPECT_EQ(got.rendered, reference.rendered)
            << "batch_min=" << batch_min << " threads=" << threads;
        EXPECT_EQ(got.steps, reference.steps);
        EXPECT_EQ(got.saturated, reference.saturated);
      }
    }
  }
};

TEST_F(MergeBatchDeterminism, DatalogSaturation) {
  ExpectAllConfigsIdentical(
      "e(X, Y) -> t(X, Y).\ne(X, Y), t(Y, Z) -> t(X, Z).",
      "e(a, b). e(b, c). e(c, d). e(d, a).", ChaseOptions());
}

TEST_F(MergeBatchDeterminism, ExistentialNullMinting) {
  // Null names depend on firing order, so identical rendering means the
  // batched path replays candidates in exactly the legacy order.
  ChaseOptions opts;
  opts.max_steps = 60;
  ExpectAllConfigsIdentical(
      "p(X) -> exists Y. e(X, Y).\ne(X, Y) -> p(Y).",
      "p(a). p(b).", opts);
}

TEST_F(MergeBatchDeterminism, AtomCapStopsAtSamePoint) {
  // The pessimistic-bound flush must preserve the exact stop decision:
  // the capped run ends with the same atoms regardless of batching.
  ChaseOptions opts;
  opts.max_atoms = 12;
  ExpectAllConfigsIdentical(
      "e(X, Y) -> t(X, Y).\ne(X, Y), t(Y, Z) -> t(X, Z).",
      "e(a, b). e(b, c). e(c, d). e(d, e). e(e, f).", opts);
}

TEST_F(MergeBatchDeterminism, RestrictedChaseIgnoresBatching) {
  // The restricted chase stays per-trigger (each firing's satisfaction
  // check must see earlier insertions); merge_batch_min is a no-op.
  ChaseOptions opts;
  opts.restricted = true;
  ExpectAllConfigsIdentical(
      "p(X) -> exists Y. e(X, Y).\ne(X, Y), e(Y, Z) -> e(X, Z).",
      "p(a). e(a, b). e(b, c).", opts);
}

}  // namespace
}  // namespace gerel
