// Unit tests for Rule variable sets, validation, and Theory accessors.
#include <gtest/gtest.h>

#include "core/parser.h"
#include "core/rule.h"
#include "core/substitution.h"
#include "core/theory.h"

namespace gerel {
namespace {

Rule MustParseRule(const char* text, SymbolTable* syms) {
  Result<Rule> r = ParseRule(text, syms);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

TEST(RuleTest, VariablePartition) {
  SymbolTable syms;
  Rule r = MustParseRule(
      "publication(X) -> exists K1, K2. keywords(X, K1, K2)", &syms);
  EXPECT_EQ(r.UVars(), std::vector<Term>{syms.Variable("X")});
  std::vector<Term> evars = {syms.Variable("K1"), syms.Variable("K2")};
  EXPECT_EQ(r.EVars(), evars);
  EXPECT_EQ(r.FVars(), std::vector<Term>{syms.Variable("X")});
}

TEST(RuleTest, FrontierExcludesBodyOnlyVars) {
  SymbolTable syms;
  Rule r = MustParseRule("e(X, Y), f(Y, Z) -> g(X)", &syms);
  EXPECT_EQ(r.UVars().size(), 3u);
  EXPECT_TRUE(r.EVars().empty());
  EXPECT_EQ(r.FVars(), std::vector<Term>{syms.Variable("X")});
}

TEST(RuleTest, ConstantsCollected) {
  SymbolTable syms;
  Rule r = MustParseRule("r(X, c) -> s(X, d)", &syms);
  std::vector<Term> cs = r.Constants();
  EXPECT_EQ(cs.size(), 2u);
}

TEST(RuleTest, IsFact) {
  SymbolTable syms;
  EXPECT_TRUE(MustParseRule("-> r(c)", &syms).IsFact());
  EXPECT_FALSE(MustParseRule("a(X) -> r(X)", &syms).IsFact());
  EXPECT_FALSE(MustParseRule("-> exists Y. r(Y)", &syms).IsFact());
}

TEST(RuleValidateTest, AcceptsSafeRules) {
  SymbolTable syms;
  Rule r = MustParseRule("e(X, Y), not bad(X) -> g(X)", &syms);
  EXPECT_TRUE(r.Validate(syms).ok());
}

TEST(RuleValidateTest, RejectsNegativeOnlyVariables) {
  SymbolTable syms;
  Rule r = MustParseRule("e(X, Y), not bad(Z) -> g(X)", &syms);
  Status s = r.Validate(syms);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("Z"), std::string::npos);
}

TEST(RuleValidateTest, RejectsEmptyHead) {
  SymbolTable syms;
  Rule r;
  r.body.emplace_back(Atom(syms.Relation("r", 0), {}));
  EXPECT_FALSE(r.Validate(syms).ok());
}

TEST(RuleValidateTest, RejectsNullsInRules) {
  SymbolTable syms;
  Rule r;
  r.head.push_back(Atom(syms.Relation("r", 1), {syms.FreshNull()}));
  EXPECT_FALSE(r.Validate(syms).ok());
}

TEST(TheoryTest, Accessors) {
  SymbolTable syms;
  Result<Theory> t = ParseTheory(R"(
    publication(X) -> exists K1, K2. keywords(X, K1, K2).
    keywords(X, K1, K2) -> hastopic(X, K1).
  )",
                                 &syms);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().size(), 2u);
  EXPECT_EQ(t.value().MaxArity(), 3u);
  EXPECT_EQ(t.value().MaxVarsPerRule(), 3u);
  EXPECT_EQ(t.value().Relations().size(), 3u);
  EXPECT_FALSE(t.value().HasNegation());
  EXPECT_TRUE(t.value().Validate(syms).ok());
}

TEST(TheoryTest, ConstantsAcrossRules) {
  SymbolTable syms;
  Result<Theory> t = ParseTheory("-> r(c).\n-> s(c, d).", &syms);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().Constants().size(), 2u);
}

TEST(SubstitutionTest, ApplyToRule) {
  SymbolTable syms;
  Rule r = MustParseRule("e(X, Y) -> g(X)", &syms);
  Substitution s;
  s.Bind(syms.Variable("X"), syms.Constant("a"));
  Rule mapped = s.Apply(r);
  EXPECT_EQ(mapped.body[0].atom.args[0], syms.Constant("a"));
  EXPECT_EQ(mapped.head[0].args[0], syms.Constant("a"));
  EXPECT_EQ(mapped.body[0].atom.args[1], syms.Variable("Y"));
}

TEST(RuleHashTest, EqualRulesHashEqual) {
  SymbolTable syms;
  Rule a = MustParseRule("e(X, Y) -> g(X)", &syms);
  Rule b = MustParseRule("e(X, Y) -> g(X)", &syms);
  EXPECT_EQ(a, b);
  EXPECT_EQ(RuleHash()(a), RuleHash()(b));
}

}  // namespace
}  // namespace gerel
