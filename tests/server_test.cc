// Serving-layer tests (ctest label `serving`): the JSON codec, wire
// decode/encode, the multi-tenant dispatcher, and loopback-socket
// integration against a live SocketServer — including the differential
// check that socket answers are byte-identical to an in-process
// PreparedKb over the same program, at 1 and 8 client threads, and a
// mixed query/assert hammer sized for TSan.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/check.h"
#include "core/parser.h"
#include "core/printer.h"
#include "server/dispatch.h"
#include "server/json.h"
#include "server/registry.h"
#include "server/server.h"
#include "server/session.h"
#include "server/wire.h"
#include "service/prepared_kb.h"

namespace gerel {
namespace server {
namespace {

constexpr char kTcProgram[] =
    "e(X, Y) -> t(X, Y).\n"
    "e(X, Y), t(Y, Z) -> t(X, Z).\n"
    "e(a, b). e(b, c). e(c, d).\n";

// Weakly guarded: invents a null successor, so e-queries come back
// sound but possibly incomplete — the degradation-shaped differential
// case.
constexpr char kWgProgram[] =
    "gen(X) -> exists Y. e(X, Y).\n"
    "e(X, Y), e(Y, Z) -> e(X, Z).\n"
    "gen(a). e(a, b). e(b, c).\n";

// --- JSON ---

TEST(JsonTest, ParseScalars) {
  auto v = JsonValue::Parse("{\"a\": 1, \"b\": true, \"c\": null, "
                            "\"d\": \"x\", \"e\": -2.5}");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().Get("a")->as_int(), 1);
  EXPECT_TRUE(v.value().Get("b")->as_bool());
  EXPECT_TRUE(v.value().Get("c")->is_null());
  EXPECT_EQ(v.value().Get("d")->as_string(), "x");
  EXPECT_DOUBLE_EQ(v.value().Get("e")->as_number(), -2.5);
  EXPECT_EQ(v.value().Get("missing"), nullptr);
}

TEST(JsonTest, ParseNestedAndDumpRoundTrip) {
  const std::string text =
      "{\"op\": \"query\", \"ids\": [1, 2, 3], "
      "\"inner\": {\"k\": [true, null]}}";
  auto v = JsonValue::Parse(text);
  ASSERT_TRUE(v.ok());
  // Dump preserves member order and the repo's one-line style, so a
  // parse→dump round trip reproduces the input exactly.
  EXPECT_EQ(v.value().Dump(), text);
}

TEST(JsonTest, ParseStringEscapes) {
  auto v = JsonValue::Parse("\"a\\n\\t\\\"\\\\b\\u00e9\\ud83d\\ude00\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().as_string(),
            "a\n\t\"\\b\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(JsonValue::Parse("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("{oops}").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("tru").ok());
  EXPECT_FALSE(JsonValue::Parse("\"ctrl\x01char\"").ok());
  EXPECT_FALSE(JsonValue::Parse("").ok());
  // Depth bound: the default admits nesting levels 0..32, so 34 nested
  // arrays are one too many.
  std::string deep(34, '[');
  deep += std::string(34, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
  EXPECT_TRUE(JsonValue::Parse(std::string(33, '[') +
                               std::string(33, ']')).ok());
}

TEST(JsonTest, DumpIntegralNumbersWithoutDecimalPoint) {
  EXPECT_EQ(JsonValue::Number(3).Dump(), "3");
  EXPECT_EQ(JsonValue::Number(3.5).Dump(), "3.5");
  EXPECT_EQ(JsonValue::Number(-7).Dump(), "-7");
}

// --- Wire decode/encode ---

TEST(WireTest, DecodeQuery) {
  auto frame = JsonValue::Parse(
      "{\"op\": \"query\", \"kb\": \"main\", "
      "\"cq\": \"e(X, Y) -> q(X)\", \"id\": 7}");
  ASSERT_TRUE(frame.ok());
  auto req = DecodeRequest(frame.value());
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req.value().op, Op::kQuery);
  EXPECT_EQ(req.value().kb, "main");
  EXPECT_EQ(req.value().cq, "e(X, Y) -> q(X)");
  EXPECT_TRUE(req.value().has_id);
  EXPECT_EQ(req.value().id, 7);
}

TEST(WireTest, DecodeAssertJoinsFactArrays) {
  auto frame = JsonValue::Parse(
      "{\"op\": \"assert\", \"facts\": [\"e(a, b)\", \"e(b, c).\"]}");
  ASSERT_TRUE(frame.ok());
  auto req = DecodeRequest(frame.value());
  ASSERT_TRUE(req.ok());
  // Array elements are joined into one batch; missing periods padded.
  EXPECT_EQ(req.value().facts, "e(a, b). e(b, c).");
}

TEST(WireTest, DecodeRejectsUnknownOp) {
  auto frame = JsonValue::Parse("{\"op\": \"teleport\"}");
  ASSERT_TRUE(frame.ok());
  auto req = DecodeRequest(frame.value());
  ASSERT_FALSE(req.ok());
  EXPECT_EQ(req.status().message().rfind("unknown_op: ", 0), 0u)
      << req.status().message();
}

TEST(WireTest, DecodeRejectsMissingOp) {
  auto frame = JsonValue::Parse("{\"kb\": \"main\"}");
  ASSERT_TRUE(frame.ok());
  auto req = DecodeRequest(frame.value());
  ASSERT_FALSE(req.ok());
  EXPECT_EQ(req.status().message().rfind("bad_request: ", 0), 0u);
}

TEST(WireTest, ProtocolErrorShape) {
  auto v = JsonValue::Parse(EncodeProtocolError(kErrOversized, "too big"));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().Get("status")->as_string(), "error");
  EXPECT_EQ(v.value().Get("error")->Get("code")->as_string(), "oversized");
  EXPECT_EQ(v.value().Get("error")->Get("message")->as_string(), "too big");
}

// --- Dispatcher (in-process) ---

struct Backend {
  TenantRegistry registry;
  Dispatcher dispatcher;

  explicit Backend(TenantRegistry::Config config = {})
      : registry(std::move(config)), dispatcher(&registry) {}

  DispatchOutcome Prepare(const std::string& name, const std::string& text) {
    WireRequest req;
    req.op = Op::kPrepare;
    req.kb = name;
    req.program = text;
    return dispatcher.Dispatch(req);
  }
  DispatchOutcome Query(const std::string& kb, const std::string& cq) {
    WireRequest req;
    req.op = Op::kQuery;
    req.kb = kb;
    req.cq = cq;
    return dispatcher.Dispatch(req);
  }
  DispatchOutcome Assert(const std::string& kb, const std::string& facts) {
    WireRequest req;
    req.op = Op::kAssert;
    req.kb = kb;
    req.facts = facts;
    return dispatcher.Dispatch(req);
  }
};

TEST(DispatcherTest, PrepareQueryAssertCursor) {
  Backend b;
  DispatchOutcome prep = b.Prepare("tc", kTcProgram);
  ASSERT_TRUE(prep.ok) << prep.error_message;
  EXPECT_EQ(prep.prepare.mode, "datalog");
  EXPECT_EQ(prep.epoch, 1u);
  EXPECT_EQ(prep.seq, 0u);

  DispatchOutcome q = b.Query("tc", "t(X, Y) -> q(X, Y)");
  ASSERT_TRUE(q.ok) << q.error_message;
  // e-chain a→b→c→d closes to 6 t-pairs.
  EXPECT_EQ(q.query.answers.size(), 6u);
  EXPECT_TRUE(q.query.complete);

  DispatchOutcome a = b.Assert("tc", "e(d, e5)");
  ASSERT_TRUE(a.ok) << a.error_message;
  EXPECT_TRUE(a.assert_reply.delta);
  EXPECT_EQ(a.epoch, 1u);
  EXPECT_EQ(a.seq, 1u);  // Delta assert advances seq within the epoch.

  q = b.Query("tc", "t(X, Y) -> q(X, Y)");
  ASSERT_TRUE(q.ok);
  EXPECT_EQ(q.query.answers.size(), 10u);  // Chain of 4 edges → 10 pairs.
}

TEST(DispatcherTest, ErrorsCarryStableCodes) {
  Backend b;
  EXPECT_EQ(b.Query("nope", "t(X, Y) -> q(X, Y)").error_code,
            kErrUnknownKb);
  ASSERT_TRUE(b.Prepare("tc", kTcProgram).ok);
  EXPECT_EQ(b.Prepare("tc", kTcProgram).error_code, kErrKbExists);
  EXPECT_EQ(b.Prepare("bad/name", kTcProgram).error_code, kErrBadName);
  EXPECT_EQ(b.Query("tc", "this is not a rule").error_code, kErrParse);
  EXPECT_EQ(b.Assert("tc", "e(X, b)").error_code, kErrParse);
  WireRequest save;
  save.op = Op::kSave;
  save.kb = "tc";
  // No snapshot dir and no explicit path.
  EXPECT_EQ(b.dispatcher.Dispatch(save).error_code, kErrBadRequest);
}

TEST(DispatcherTest, StatsAggregatesAcrossTenants) {
  Backend b;
  ASSERT_TRUE(b.Prepare("alpha", kTcProgram).ok);
  ASSERT_TRUE(b.Prepare("beta", kWgProgram).ok);
  ASSERT_TRUE(b.Query("alpha", "t(X, Y) -> q(X, Y)").ok);
  ASSERT_TRUE(b.Query("beta", "gen(X) -> q(X)").ok);
  WireRequest req;
  req.op = Op::kStats;  // Empty kb → aggregate.
  DispatchOutcome out = b.dispatcher.Dispatch(req);
  ASSERT_TRUE(out.ok);
  EXPECT_TRUE(out.stats.aggregated);
  ASSERT_EQ(out.stats.per_kb.size(), 2u);
  EXPECT_EQ(out.stats.per_kb[0].first, "alpha");  // Name-sorted.
  EXPECT_EQ(out.stats.per_kb[1].first, "beta");
  EXPECT_EQ(out.stats.total.queries,
            out.stats.per_kb[0].second.queries +
                out.stats.per_kb[1].second.queries);
  EXPECT_EQ(out.stats.total.prepares, 2u);
}

TEST(DispatcherTest, DropUnregistersTenant) {
  Backend b;
  ASSERT_TRUE(b.Prepare("tc", kTcProgram).ok);
  WireRequest req;
  req.op = Op::kDrop;
  req.kb = "tc";
  ASSERT_TRUE(b.dispatcher.Dispatch(req).ok);
  EXPECT_EQ(b.Query("tc", "t(X, Y) -> q(X, Y)").error_code, kErrUnknownKb);
}

// --- Loopback socket integration ---

class LineClient {
 public:
  explicit LineClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = fd_ >= 0 &&
                 ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~LineClient() { Close(); }

  bool connected() const { return connected_; }
  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool SendRaw(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }
  bool SendLine(const std::string& line) { return SendRaw(line + "\n"); }

  bool ReadLine(std::string* line) {
    while (true) {
      size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

  // Sends one request line and parses the one response line.
  Result<JsonValue> Call(const std::string& request) {
    if (!SendLine(request)) return Status::Error("send failed");
    std::string line;
    if (!ReadLine(&line)) return Status::Error("connection closed");
    return JsonValue::Parse(line);
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

std::string QueryFrame(const std::string& kb, const std::string& cq) {
  return "{\"op\": \"query\", \"kb\": \"" + kb + "\", \"cq\": \"" +
         JsonEscape(cq) + "\"}";
}

std::string AssertFrame(const std::string& kb, const std::string& facts) {
  return "{\"op\": \"assert\", \"kb\": \"" + kb + "\", \"facts\": \"" +
         JsonEscape(facts) + "\"}";
}

std::string RetractFrame(const std::string& kb, const std::string& facts) {
  return "{\"op\": \"retract\", \"kb\": \"" + kb + "\", \"facts\": \"" +
         JsonEscape(facts) + "\"}";
}

struct LiveServer {
  Backend backend;
  SocketServer server;

  explicit LiveServer(ServerOptions options = {},
                      TenantRegistry::Config config = {})
      : backend(std::move(config)),
        server(&backend.dispatcher, std::move(options)) {}

  void StartWithDefaultKbs() {
    ASSERT_TRUE(backend.Prepare("tc", kTcProgram).ok);
    ASSERT_TRUE(backend.Prepare("wg", kWgProgram).ok);
    Status started = server.Start();
    ASSERT_TRUE(started.ok()) << started.message();
  }
};

TEST(SocketServerTest, HappyPathQuery) {
  LiveServer live;
  live.StartWithDefaultKbs();
  LineClient client(live.server.port());
  ASSERT_TRUE(client.connected());
  auto resp = client.Call(QueryFrame("tc", "t(X, Y) -> q(X, Y)"));
  ASSERT_TRUE(resp.ok()) << resp.status().message();
  EXPECT_EQ(resp.value().Get("status")->as_string(), "ok");
  EXPECT_EQ(resp.value().Get("op")->as_string(), "query");
  EXPECT_EQ(resp.value().Get("kb")->as_string(), "tc");
  EXPECT_EQ(resp.value().Get("count")->as_int(), 6);
  EXPECT_TRUE(resp.value().Get("complete")->as_bool());
  EXPECT_EQ(resp.value().Get("epoch")->as_int(), 1);
  EXPECT_EQ(resp.value().Get("seq")->as_int(), 0);
}

TEST(SocketServerTest, EchoesCorrelationId) {
  LiveServer live;
  live.StartWithDefaultKbs();
  LineClient client(live.server.port());
  ASSERT_TRUE(client.connected());
  auto resp = client.Call(
      "{\"op\": \"query\", \"kb\": \"tc\", "
      "\"cq\": \"t(X, Y) -> q(X, Y)\", \"id\": 42}");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().Get("id")->as_int(), 42);
}

TEST(SocketServerTest, MalformedFrameKeepsConnectionAlive) {
  LiveServer live;
  live.StartWithDefaultKbs();
  LineClient client(live.server.port());
  ASSERT_TRUE(client.connected());
  auto bad = client.Call("{this is not json");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad.value().Get("status")->as_string(), "error");
  EXPECT_EQ(bad.value().Get("error")->Get("code")->as_string(),
            "bad_request");
  // Valid frames with unknown ops and bad payloads also keep the
  // session going.
  auto unknown = client.Call("{\"op\": \"teleport\"}");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown.value().Get("error")->Get("code")->as_string(),
            "unknown_op");
  auto good = client.Call(QueryFrame("tc", "t(X, Y) -> q(X, Y)"));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().Get("status")->as_string(), "ok");
  EXPECT_EQ(live.server.protocol_errors(), 2u);
}

TEST(SocketServerTest, OversizedFrameIsDrainedAndReported) {
  ServerOptions options;
  options.max_line_bytes = 1024;
  LiveServer live(options);
  live.StartWithDefaultKbs();
  LineClient client(live.server.port());
  ASSERT_TRUE(client.connected());
  // 8 KiB of junk in one frame, well past the 1 KiB cap.
  std::string big(8192, 'x');
  auto resp = client.Call(big);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().Get("error")->Get("code")->as_string(),
            "oversized");
  // The connection resynchronized at the newline.
  auto good = client.Call(QueryFrame("tc", "t(X, Y) -> q(X, Y)"));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().Get("status")->as_string(), "ok");
}

TEST(SocketServerTest, MidFrameDisconnectIsDiscarded) {
  LiveServer live;
  live.StartWithDefaultKbs();
  {
    LineClient client(live.server.port());
    ASSERT_TRUE(client.connected());
    // A partial frame with no newline, then a hard close.
    ASSERT_TRUE(client.SendRaw("{\"op\": \"qu"));
    client.Close();
  }
  // The server survives and keeps serving new connections.
  LineClient client(live.server.port());
  ASSERT_TRUE(client.connected());
  auto resp = client.Call(QueryFrame("tc", "t(X, Y) -> q(X, Y)"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().Get("status")->as_string(), "ok");
}

TEST(SocketServerTest, ConcurrentClientsOnDistinctTenants) {
  ServerOptions options;
  options.num_workers = 8;
  LiveServer live(options);
  live.StartWithDefaultKbs();
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&live, &failures, c] {
      const std::string kb = (c % 2 == 0) ? "tc" : "wg";
      const std::string cq = (c % 2 == 0) ? "t(X, Y) -> q(X, Y)"
                                          : "gen(X) -> q(X)";
      LineClient client(live.server.port());
      if (!client.connected()) {
        ++failures;
        return;
      }
      for (int i = 0; i < 20; ++i) {
        auto resp = client.Call(QueryFrame(kb, cq));
        if (!resp.ok() ||
            resp.value().Get("status")->as_string() != "ok") {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(live.server.requests_served(), 160u);
}

// In-process reference: prepare the same program with the default
// options and answer `cq`, rendering answers exactly as the dispatcher
// does.
struct Reference {
  SymbolTable syms;
  std::unique_ptr<PreparedKb> kb;

  explicit Reference(const std::string& program) {
    auto parsed = ParseProgram(program, &syms);
    GEREL_CHECK(parsed.ok());
    auto prepared = PreparedKb::Prepare(parsed.value().theory,
                                        parsed.value().database, &syms,
                                        PreparedKbOptions());
    GEREL_CHECK(prepared.ok());
    kb = std::move(prepared).value();
  }

  std::pair<std::vector<std::string>, bool> Answer(const std::string& cq) {
    auto rule = ParseRule(cq, &syms);
    if (!rule.ok()) {
      ADD_FAILURE() << "parse \"" << cq
                    << "\": " << rule.status().message();
      return {{}, true};
    }
    auto result = kb->Query(rule.value());
    if (!result.ok()) {
      ADD_FAILURE() << "query failed: " << result.status().message();
      return {{}, true};
    }
    std::vector<std::string> rendered;
    for (const std::vector<Term>& tuple : result.value().answers) {
      Atom a(rule.value().head[0].pred, tuple);
      rendered.push_back(ToString(a, syms));
    }
    return {std::move(rendered), result.value().complete};
  }
};

// The acceptance differential: answers served over the socket are
// byte-identical to the in-process PreparedKb — including the
// chase-materialized weakly guarded case with a null witness — at 1
// and 8 client threads.
TEST(SocketServerTest, DifferentialAgainstInProcessKb) {
  struct Case {
    const char* kb;
    const char* program;
    const char* cq;
  };
  const Case cases[] = {
      {"tc", kTcProgram, "t(X, Y) -> ans2(X, Y)"},
      {"tc", kTcProgram, "e(X, Y) -> ans2(X, Y)"},
      {"wg", kWgProgram, "gen(X) -> ans1(X)"},
      // Sound but possibly incomplete: e holds an invented null.
      {"wg", kWgProgram, "e(U, V) -> ans2(U, V)"},
  };
  // One reference KB per program.
  Reference tc_ref(kTcProgram);
  Reference wg_ref(kWgProgram);
  struct Expected {
    std::vector<std::string> answers;
    bool complete;
  };
  std::vector<Expected> expected;
  for (const Case& c : cases) {
    Reference& ref = std::string(c.kb) == "tc" ? tc_ref : wg_ref;
    auto [answers, complete] = ref.Answer(c.cq);
    expected.push_back({std::move(answers), complete});
  }
  EXPECT_TRUE(expected[3].answers.size() > 0);
  // The planner certifies kWgProgram (MFA) and serves it from the chase
  // model, so even the null-witness e-query is answered completely.
  EXPECT_TRUE(expected[3].complete);

  ServerOptions options;
  options.num_workers = 8;
  LiveServer live(options);
  live.StartWithDefaultKbs();
  for (size_t num_clients : {size_t{1}, size_t{8}}) {
    std::vector<std::thread> clients;
    std::atomic<int> mismatches{0};
    for (size_t c = 0; c < num_clients; ++c) {
      clients.emplace_back([&] {
        LineClient client(live.server.port());
        if (!client.connected()) {
          ++mismatches;
          return;
        }
        for (size_t i = 0; i < std::size(cases); ++i) {
          auto resp = client.Call(QueryFrame(cases[i].kb, cases[i].cq));
          if (!resp.ok()) {
            ++mismatches;
            return;
          }
          std::vector<std::string> got;
          for (const JsonValue& a : resp.value().Get("answers")->items()) {
            got.push_back(a.as_string());
          }
          if (got != expected[i].answers ||
              resp.value().Get("complete")->as_bool() !=
                  expected[i].complete) {
            ++mismatches;
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    EXPECT_EQ(mismatches.load(), 0) << num_clients << " clients";
  }
}

// TSan target: 8 clients hammer 2 tenants with mixed queries, asserts,
// and retracts. tc writers use per-client fresh constants (the delta
// assert path) and retract their previous round's edge (the DRed
// path); wg writers stick to the program's constants — a fresh
// constant on the weakly guarded tenant re-grounds the whole theory,
// which is exercised once, deterministically, after the storm.
TEST(SocketServerTest, MixedReadWriteHammer) {
  ServerOptions options;
  options.num_workers = 8;
  LiveServer live(options);
  live.StartWithDefaultKbs();
  constexpr int kClients = 8;
  constexpr int kRounds = 12;
  // Edges over the wg program's own constants: closing the a→b→c cycle
  // keeps every assert on the incremental path.
  const char* kWgEdges[] = {"e(c, a)", "e(b, a)", "e(c, b)"};
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&live, &failures, kWgEdges, c] {
      const bool on_tc = (c % 2 == 0);
      const std::string kb = on_tc ? "tc" : "wg";
      LineClient client(live.server.port());
      if (!client.connected()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kRounds; ++i) {
        std::string tag =
            "h" + std::to_string(c) + "_" + std::to_string(i);
        auto asserted = client.Call(AssertFrame(
            kb, on_tc ? "e(" + tag + "a, " + tag + "b)"
                      : kWgEdges[i % 3]));
        if (!asserted.ok() ||
            asserted.value().Get("status")->as_string() != "ok") {
          ++failures;
          return;
        }
        auto queried = client.Call(QueryFrame(
            kb, on_tc ? "t(X, Y) -> q(X, Y)" : "gen(X) -> q(X)"));
        if (!queried.ok() ||
            queried.value().Get("status")->as_string() != "ok") {
          ++failures;
          return;
        }
        // tc writers retract their previous edge: only each client's
        // final edge survives the storm, and every retract rides the
        // DRed delta path concurrently with other clients' writes.
        if (on_tc && i > 0) {
          std::string prev =
              "h" + std::to_string(c) + "_" + std::to_string(i - 1);
          auto retracted = client.Call(RetractFrame(
              kb, "e(" + prev + "a, " + prev + "b)"));
          if (!retracted.ok() ||
              retracted.value().Get("status")->as_string() != "ok" ||
              !retracted.value().Get("delta")->as_bool()) {
            ++failures;
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);
  LineClient client(live.server.port());
  ASSERT_TRUE(client.connected());
  // Each tc writer retracted all but its final edge: 4 writers × 1
  // surviving fresh edge on top of the program's 3.
  auto tc = client.Call(QueryFrame("tc", "e(X, Y) -> q(X, Y)"));
  ASSERT_TRUE(tc.ok());
  EXPECT_EQ(tc.value().Get("count")->as_int(), 3 + 4);
  // The planner serves wg from the chase model: each of the three
  // *distinct* new edges forced one re-chase (epoch bump), while every
  // duplicate assert was a no-op delta — regardless of interleaving.
  auto wg = client.Call(QueryFrame("wg", "gen(X) -> q(X)"));
  ASSERT_TRUE(wg.ok());
  EXPECT_EQ(wg.value().Get("count")->as_int(), 1);
  EXPECT_EQ(wg.value().Get("epoch")->as_int(), 4);
  // ...and one genuinely new fact re-chases again: the epoch bumps and
  // seq resets, the full-resync signal replicas key on.
  auto regrounded = client.Call(AssertFrame("wg", "gen(z9)"));
  ASSERT_TRUE(regrounded.ok());
  ASSERT_EQ(regrounded.value().Get("status")->as_string(), "ok");
  EXPECT_FALSE(regrounded.value().Get("delta")->as_bool());
  EXPECT_EQ(regrounded.value().Get("epoch")->as_int(), 5);
  EXPECT_EQ(regrounded.value().Get("seq")->as_int(), 0);
}

TEST(SocketServerTest, ShutdownSavesDirtyTenantsForWarmRestart) {
  std::string dir = ::testing::TempDir() + "serving_warm_restart";
  ASSERT_EQ(0, ::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str()));
  TenantRegistry::Config config;
  config.snapshot_dir = dir;
  uint64_t cold_epoch = 0;
  {
    LiveServer live(ServerOptions{}, config);
    ASSERT_TRUE(live.backend.Prepare("tc", kTcProgram).ok);
    Status started = live.server.Start();
    ASSERT_TRUE(started.ok());
    LineClient client(live.server.port());
    ASSERT_TRUE(client.connected());
    auto asserted = client.Call(AssertFrame("tc", "e(d, e9)"));
    ASSERT_TRUE(asserted.ok());
    ASSERT_EQ(asserted.value().Get("status")->as_string(), "ok");
    cold_epoch = asserted.value().Get("epoch")->as_int();
    client.Close();
    // Graceful shutdown: drain, then persist dirty tenants.
    live.server.Shutdown();
    ASSERT_TRUE(live.backend.registry.SaveDirty().ok());
  }
  // A fresh process warm-starts from the snapshot: the asserted edge is
  // already in the model and the epoch advances past the saved one.
  Backend restarted(config);
  DispatchOutcome prep = restarted.Prepare("tc", kTcProgram);
  ASSERT_TRUE(prep.ok) << prep.error_message;
  EXPECT_TRUE(prep.prepare.loaded_snapshot);
  DispatchOutcome q = restarted.Query("tc", "e(X, Y) -> q(X, Y)");
  ASSERT_TRUE(q.ok);
  EXPECT_EQ(q.query.answers.size(), 4u);
  EXPECT_GE(q.epoch, cold_epoch);
}

// The REPL session and the socket path share the dispatcher, so a
// session layered over a server-backed dispatcher must render the same
// results the socket reports.
TEST(SocketServerTest, ReplSessionSharesDispatchCore) {
  LiveServer live;
  live.StartWithDefaultKbs();
  ServiceSession session(&live.backend.dispatcher, "tc");
  auto r = session.HandleLine("query t(X, Y) -> q(X, Y)");
  EXPECT_NE(r.text.find("6 answers (complete)"), std::string::npos)
      << r.text;
  LineClient client(live.server.port());
  ASSERT_TRUE(client.connected());
  auto resp = client.Call(QueryFrame("tc", "t(X, Y) -> q(X, Y)"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().Get("count")->as_int(), 6);
}

}  // namespace
}  // namespace server
}  // namespace gerel
