// Unit tests for homomorphism enumeration and database mapping checks.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/homomorphism.h"
#include "core/parser.h"
#include "core/printer.h"

namespace gerel {
namespace {

std::vector<Atom> ParseAtoms(const std::string& text, SymbolTable* syms) {
  // Parse atoms via a dummy rule body.
  Result<Rule> r = ParseRule(text + " -> dummy", syms);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return r.value().PositiveBody();
}

size_t CountHomomorphisms(const std::vector<Atom>& pattern,
                          const Database& db) {
  size_t n = 0;
  ForEachHomomorphism(pattern, db, Substitution(), [&n](const Substitution&) {
    ++n;
    return true;
  });
  return n;
}

TEST(HomomorphismTest, SingleAtomAllMatches) {
  SymbolTable syms;
  Database db = ParseDatabase("e(a, b). e(b, c). e(c, a).", &syms).value();
  std::vector<Atom> pattern = ParseAtoms("e(X, Y)", &syms);
  EXPECT_EQ(CountHomomorphisms(pattern, db), 3u);
}

TEST(HomomorphismTest, JoinAcrossAtoms) {
  SymbolTable syms;
  Database db = ParseDatabase("e(a, b). e(b, c). e(c, a).", &syms).value();
  std::vector<Atom> pattern = ParseAtoms("e(X, Y), e(Y, Z)", &syms);
  EXPECT_EQ(CountHomomorphisms(pattern, db), 3u);
}

TEST(HomomorphismTest, RepeatedVariableConstrains) {
  SymbolTable syms;
  Database db = ParseDatabase("e(a, a). e(a, b).", &syms).value();
  std::vector<Atom> pattern = ParseAtoms("e(X, X)", &syms);
  EXPECT_EQ(CountHomomorphisms(pattern, db), 1u);
}

TEST(HomomorphismTest, ConstantsInPattern) {
  SymbolTable syms;
  Database db = ParseDatabase("e(a, b). e(b, c).", &syms).value();
  std::vector<Atom> pattern = ParseAtoms("e(a, Y)", &syms);
  EXPECT_EQ(CountHomomorphisms(pattern, db), 1u);
}

TEST(HomomorphismTest, InitialSubstitutionRestricts) {
  SymbolTable syms;
  Database db = ParseDatabase("e(a, b). e(b, c).", &syms).value();
  std::vector<Atom> pattern = ParseAtoms("e(X, Y)", &syms);
  Substitution init;
  init.Bind(syms.Variable("X"), syms.Constant("b"));
  size_t n = 0;
  ForEachHomomorphism(pattern, db, init, [&n](const Substitution&) {
    ++n;
    return true;
  });
  EXPECT_EQ(n, 1u);
}

TEST(HomomorphismTest, NoMatchMeansNoVisit) {
  SymbolTable syms;
  Database db = ParseDatabase("e(a, b).", &syms).value();
  std::vector<Atom> pattern = ParseAtoms("e(X, X)", &syms);
  EXPECT_EQ(CountHomomorphisms(pattern, db), 0u);
  EXPECT_FALSE(HasHomomorphism(pattern, db));
}

TEST(HomomorphismTest, EarlyStop) {
  SymbolTable syms;
  Database db = ParseDatabase("e(a, b). e(b, c). e(c, a).", &syms).value();
  std::vector<Atom> pattern = ParseAtoms("e(X, Y)", &syms);
  size_t n = 0;
  bool completed = ForEachHomomorphism(pattern, db, Substitution(),
                                       [&n](const Substitution&) {
                                         ++n;
                                         return n < 2;
                                       });
  EXPECT_FALSE(completed);
  EXPECT_EQ(n, 2u);
}

TEST(HomomorphismTest, EmptyPatternHasOneHomomorphism) {
  SymbolTable syms;
  Database db = ParseDatabase("e(a, b).", &syms).value();
  EXPECT_EQ(CountHomomorphisms({}, db), 1u);
}

TEST(HomomorphismTest, AnnotatedAtomsMatchBothParts) {
  SymbolTable syms;
  Database db;
  RelationId r = syms.Relation("r", 2);
  Term a = syms.Constant("a");
  Term b = syms.Constant("b");
  db.Insert(Atom(r, {a}, {b}));
  Result<Atom> pattern = ParseAtom("r[Y](X)", &syms);
  ASSERT_TRUE(pattern.ok());
  size_t n = 0;
  ForEachHomomorphism({pattern.value()}, db, Substitution(),
                      [&](const Substitution& h) {
                        EXPECT_EQ(h.Apply(syms.Variable("X")), a);
                        EXPECT_EQ(h.Apply(syms.Variable("Y")), b);
                        ++n;
                        return true;
                      });
  EXPECT_EQ(n, 1u);
}

TEST(EmbeddingTest, MatchesIntoAtomSetWithVariables) {
  SymbolTable syms;
  // Target: the head R(x, y) ∧ S(y, y); pattern: S(U, V).
  std::vector<Atom> target = ParseAtoms("r(X, Y), s(Y, Y)", &syms);
  std::vector<Atom> pattern = ParseAtoms("s(U, V)", &syms);
  size_t n = 0;
  ForEachEmbedding(pattern, target, Substitution(),
                   [&](const Substitution& h) {
                     EXPECT_EQ(h.Apply(syms.Variable("U")),
                               syms.Variable("Y"));
                     EXPECT_EQ(h.Apply(syms.Variable("V")),
                               syms.Variable("Y"));
                     ++n;
                     return true;
                   });
  EXPECT_EQ(n, 1u);
}

TEST(EmbeddingTest, TargetVariablesAreRigid) {
  SymbolTable syms;
  // Pattern s(a, V) cannot match target s(Y, Y): the target variable Y is
  // not remappable to the constant a.
  std::vector<Atom> target = ParseAtoms("s(Y, Y)", &syms);
  std::vector<Atom> pattern = ParseAtoms("s(a, V)", &syms);
  size_t n = 0;
  ForEachEmbedding(pattern, target, Substitution(), [&n](const Substitution&) {
    ++n;
    return true;
  });
  EXPECT_EQ(n, 0u);
}

TEST(EmbeddingTest, BoundTargetVariablesStayRigid) {
  SymbolTable syms;
  // Regression: pattern r(U, U) must NOT match target r(X, Y) by first
  // binding U→X and then rebinding the *target* variable X→Y.
  std::vector<Atom> target = ParseAtoms("r(X, Y)", &syms);
  std::vector<Atom> pattern = ParseAtoms("r(U, U)", &syms);
  size_t n = 0;
  ForEachEmbedding(pattern, target, Substitution(), [&n](const Substitution&) {
    ++n;
    return true;
  });
  EXPECT_EQ(n, 0u);
}

TEST(EmbeddingTest, RepeatedPatternVarMatchesRepeatedTargetVar) {
  SymbolTable syms;
  std::vector<Atom> target = ParseAtoms("r(X, X)", &syms);
  std::vector<Atom> pattern = ParseAtoms("r(U, U)", &syms);
  size_t n = 0;
  ForEachEmbedding(pattern, target, Substitution(), [&n](const Substitution&) {
    ++n;
    return true;
  });
  EXPECT_EQ(n, 1u);
}

TEST(DatabaseMappingTest, NullsActAsVariables) {
  SymbolTable syms;
  Database a = ParseDatabase("e(_x, _y).", &syms).value();
  Database b = ParseDatabase("e(c, d).", &syms).value();
  EXPECT_TRUE(DatabaseMapsInto(a, b));
  EXPECT_FALSE(DatabaseMapsInto(b, a));  // Constants are rigid.
}

TEST(DatabaseMappingTest, HomomorphicEquivalence) {
  SymbolTable syms;
  // A cycle of length 1 (self loop) and a homomorphically equivalent
  // structure with a redundant null edge.
  Database a = ParseDatabase("e(c, c).", &syms).value();
  Database b = ParseDatabase("e(c, c). e(_z, c).", &syms).value();
  EXPECT_TRUE(HomomorphicallyEquivalent(a, b));
  Database c = ParseDatabase("e(c, d).", &syms).value();
  EXPECT_FALSE(HomomorphicallyEquivalent(a, c));
}

}  // namespace
}  // namespace gerel
