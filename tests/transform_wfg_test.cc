// Tests for §5.2: annotation transforms a(Σ)/a⁻(Σ) and the weakly
// frontier-guarded → weakly guarded translation (Thm 2).
#include <gtest/gtest.h>

#include "chase/chase.h"
#include "core/classify.h"
#include "core/normalize.h"
#include "core/parser.h"
#include "core/printer.h"
#include "transform/annotation.h"

namespace gerel {
namespace {

Theory MustParseTheory(const char* text, SymbolTable* syms) {
  Result<Theory> t = ParseTheory(text, syms);
  EXPECT_TRUE(t.ok()) << t.status().message();
  return std::move(t).value();
}

TEST(AnnotateTest, MovesNonAffectedPositionsIntoAnnotations) {
  SymbolTable syms;
  // (e, 1) is affected (Y existential), (e, 2) is not: proper as-is.
  Theory t = MustParseTheory("r(X) -> exists Y. e(Y, X).", &syms);
  ASSERT_TRUE(IsProper(t));
  Result<Theory> a = AnnotateNonAffected(t);
  ASSERT_TRUE(a.ok()) << a.status().message();
  const Atom& head = a.value().rules()[0].head[0];
  EXPECT_EQ(head.args.size(), 1u);        // The affected position.
  EXPECT_EQ(head.annotation.size(), 1u);  // The non-affected one.
  EXPECT_EQ(head.args[0], syms.Variable("Y"));
  EXPECT_EQ(head.annotation[0], syms.Variable("X"));
}

TEST(AnnotateTest, RejectsNonProperTheories) {
  SymbolTable syms;
  // (e, 2) affected, (e, 1) not: affected positions are not a prefix.
  Theory t = MustParseTheory("r(X) -> exists Y. e(X, Y).", &syms);
  ASSERT_FALSE(IsProper(t));
  EXPECT_FALSE(AnnotateNonAffected(t).ok());
}

TEST(AnnotateTest, AnnotatedTheoryIsFrontierGuarded) {
  SymbolTable syms;
  // Weakly guarded but not frontier-guarded: transitive closure over a
  // null-generating relation.
  Theory t = MustParseTheory(R"(
    r(X) -> exists Y. e(X, Y).
    e(X, Y), e(Y, Z) -> e(X, Z).
  )",
                             &syms);
  Classification before = Classify(t);
  ASSERT_TRUE(before.weakly_guarded);
  ASSERT_FALSE(before.frontier_guarded);
  ProperReordering pr = MakeProper(t);
  Result<Theory> a = AnnotateNonAffected(pr.theory);
  ASSERT_TRUE(a.ok()) << a.status().message();
  EXPECT_TRUE(Classify(a.value()).frontier_guarded);
}

TEST(AnnotateTest, DeannotateIsInverse) {
  SymbolTable syms;
  Theory t = MustParseTheory("r(X) -> exists Y. e(Y, X).", &syms);
  Result<Theory> a = AnnotateNonAffected(t);
  ASSERT_TRUE(a.ok());
  Theory back = Deannotate(a.value());
  ASSERT_EQ(back.size(), t.size());
  EXPECT_EQ(back.rules()[0], t.rules()[0]);
}

TEST(WfgRewriteTest, TransitiveClosureOverNulls) {
  SymbolTable syms;
  Theory t = MustParseTheory(R"(
    r(X) -> exists Y. e(X, Y).
    e(X, Y), e(Y, Z) -> e(X, Z).
  )",
                             &syms);
  Result<WfgRewriteResult> rew = RewriteWfgToWeaklyGuarded(t, &syms);
  ASSERT_TRUE(rew.ok()) << rew.status().message();
  EXPECT_TRUE(rew.value().complete);
  Classification c = Classify(rew.value().theory);
  EXPECT_TRUE(c.weakly_guarded) << ToString(rew.value().theory, syms);
  // Answers on the original database layout.
  Database db = ParseDatabase("e(a, b). e(b, c). e(c, d). r(a).", &syms)
                    .value();
  RelationId e = syms.Relation("e");
  std::set<std::vector<Term>> original = ChaseAnswers(t, db, e, &syms);
  std::set<std::vector<Term>> rewritten =
      ChaseAnswers(rew.value().theory, db, e, &syms);
  EXPECT_EQ(original, rewritten);
  EXPECT_EQ(original.size(), 6u);  // TC of the 3-edge chain.
}

TEST(WfgRewriteTest, WfgButNotWgSmallTheory) {
  SymbolTable syms;
  // σ2's unsafe vars Y, Z share no atom (not weakly guarded), but its
  // frontier {X, W} is safe, so the theory is weakly frontier-guarded.
  Theory t = MustParseTheory(R"(
    r(X) -> exists Y. e(X, Y).
    e(X, Y), e(W, Z) -> both(X, W).
  )",
                             &syms);
  Classification before = Classify(t);
  ASSERT_TRUE(before.weakly_frontier_guarded);
  ASSERT_FALSE(before.weakly_guarded);
  Result<WfgRewriteResult> rew = RewriteWfgToWeaklyGuarded(t, &syms);
  ASSERT_TRUE(rew.ok()) << rew.status().message();
  EXPECT_TRUE(rew.value().complete);
  EXPECT_TRUE(Classify(rew.value().theory).weakly_guarded);
  Database db = ParseDatabase("r(a). e(b, c).", &syms).value();
  RelationId both = syms.Relation("both");
  std::set<std::vector<Term>> original = ChaseAnswers(t, db, both, &syms);
  std::set<std::vector<Term>> rewritten =
      ChaseAnswers(rew.value().theory, db, both, &syms);
  EXPECT_EQ(original, rewritten);
  EXPECT_EQ(original.size(), 4u);  // {a, b} × {a, b}.
}

// The full closure of the annotated running example is ~700k rules and is
// exercised (complete) by bench_thm2_wfg_to_wg; here we verify answer
// preservation under a capped BFS prefix of the expansion.
TEST(WfgRewriteTest, Theorem2RunningExample) {
  SymbolTable syms;
  Theory raw = MustParseTheory(R"(
    publication(X) -> exists K1, K2. keywords(X, K1, K2).
    keywords(X, K1, K2) -> hastopic(X, K1).
    hastopic(X, Z), hasauthor(X, U), hasauthor(Y, U), hastopic(Y, Z2),
      scientific(Z2), citedin(Y, X) -> scientific(Z).
    hasauthor(X, Y), hastopic(X, Z), scientific(Z) -> q(Y).
  )",
                               &syms);
  Classification before = Classify(raw);
  ASSERT_TRUE(before.weakly_frontier_guarded);
  ASSERT_FALSE(before.weakly_guarded);  // σ3's unsafe Z, Z2 share no atom.
  Theory normal = Normalize(raw, &syms);
  ExpansionOptions opts;
  opts.max_rules = 80000;
  Result<WfgRewriteResult> rew =
      RewriteWfgToWeaklyGuarded(normal, &syms, opts);
  ASSERT_TRUE(rew.ok()) << rew.status().message();
  EXPECT_TRUE(Classify(rew.value().theory).weakly_guarded);
  Database db = ParseDatabase(R"(
    publication(p1). publication(p2). citedin(p1, p2).
    hasauthor(p1, a1). hasauthor(p2, a1). hasauthor(p2, a2).
    hastopic(p1, t1). scientific(t1).
  )",
                              &syms)
                    .value();
  RelationId q = syms.Relation("q");
  std::set<std::vector<Term>> original = ChaseAnswers(raw, db, q, &syms);
  ChaseOptions big;
  big.max_steps = 10000000;
  big.max_atoms = 10000000;
  std::set<std::vector<Term>> rewritten =
      ChaseAnswers(rew.value().theory, db, q, &syms, big);
  EXPECT_EQ(original, rewritten);
  EXPECT_EQ(original.size(), 2u);
}

TEST(WfgRewriteTest, RejectsNonWfgInput) {
  SymbolTable syms;
  // Not weakly frontier-guarded: unsafe frontier vars share no atom.
  Theory t = MustParseTheory(R"(
    r(X) -> exists Y, Z. e(X, Y), e(X, Z).
    e(U, Y), e(U, Z) -> p(Y, Z).
  )",
                             &syms);
  Theory normal = Normalize(t, &syms);
  ASSERT_FALSE(Classify(normal).weakly_frontier_guarded);
  EXPECT_FALSE(RewriteWfgToWeaklyGuarded(normal, &syms).ok());
}

TEST(WfgRewriteTest, RejectsNonNormalInput) {
  SymbolTable syms;
  Theory t = MustParseTheory("a(X) -> b(X), c(X).", &syms);
  EXPECT_FALSE(RewriteWfgToWeaklyGuarded(t, &syms).ok());
}

TEST(WfgRewriteTest, AlreadyWeaklyGuardedInputStaysCorrect) {
  SymbolTable syms;
  Theory t = MustParseTheory(R"(
    a(X) -> exists Y. r(X, Y).
    r(X, Y) -> s(Y, Y).
  )",
                             &syms);
  Result<WfgRewriteResult> rew = RewriteWfgToWeaklyGuarded(t, &syms);
  ASSERT_TRUE(rew.ok()) << rew.status().message();
  Database db = ParseDatabase("a(c). r(c, d).", &syms).value();
  RelationId s = syms.Relation("s");
  EXPECT_EQ(ChaseAnswers(t, db, s, &syms),
            ChaseAnswers(rew.value().theory, db, s, &syms));
}

}  // namespace
}  // namespace gerel
