// Robustness: the parser must return an error Result (never crash or
// hang) on arbitrary byte soup, and must round-trip whatever it accepts.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "core/parser.h"
#include "core/printer.h"

namespace gerel {
namespace {

class ParserFuzzTest : public ::testing::TestWithParam<unsigned> {};

std::string RandomSoup(std::mt19937* rng, size_t length) {
  static const char kChars[] =
      "abcXYZ_019(),.->exists not %#![] \n\t->";
  std::string out;
  for (size_t i = 0; i < length; ++i) {
    out += kChars[(*rng)() % (sizeof(kChars) - 1)];
  }
  return out;
}

TEST_P(ParserFuzzTest, NeverCrashesOnRandomInput) {
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    SymbolTable syms;
    std::string soup = RandomSoup(&rng, 1 + rng() % 120);
    Result<Program> p = ParseProgram(soup, &syms);
    if (p.ok()) {
      // Whatever parsed must print and re-parse to the same structures.
      SymbolTable syms2 = syms;
      std::string printed = ToString(p.value().theory, syms) +
                            ToString(p.value().database, syms);
      Result<Program> again = ParseProgram(printed, &syms2);
      ASSERT_TRUE(again.ok()) << "round-trip broke on: " << printed;
      EXPECT_EQ(p.value().theory.size(), again.value().theory.size());
      EXPECT_EQ(p.value().database.size(), again.value().database.size());
    }
  }
}

TEST_P(ParserFuzzTest, StructuredMutationsOfValidProgram) {
  // Mutate a valid program by deleting/duplicating random chunks; the
  // parser must accept or cleanly reject.
  const std::string base = R"(
    publication(X) -> exists K1, K2. keywords(X, K1, K2).
    keywords(X, K1, K2) -> hastopic(X, K1).
    publication(p1). hasauthor(p1, a1).
  )";
  std::mt19937 rng(GetParam() + 1000);
  for (int i = 0; i < 100; ++i) {
    std::string mutated = base;
    size_t cut = rng() % mutated.size();
    size_t len = rng() % 20;
    if (rng() % 2 == 0) {
      mutated.erase(cut, len);
    } else {
      mutated.insert(cut, mutated.substr(cut, len));
    }
    SymbolTable syms;
    Result<Program> p = ParseProgram(mutated, &syms);
    (void)p;  // Either outcome is fine; it just must not crash.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(0u, 8u));

}  // namespace
}  // namespace gerel
