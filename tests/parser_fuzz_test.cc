// Robustness: the parser must return an error Result (never crash or
// hang) on arbitrary byte soup, and must round-trip whatever it accepts.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "core/parser.h"
#include "core/printer.h"
#include "testing/generator.h"

namespace gerel {
namespace {

class ParserFuzzTest : public ::testing::TestWithParam<unsigned> {};

std::string RandomSoup(std::mt19937* rng, size_t length) {
  static const char kChars[] =
      "abcXYZ_019(),.->exists not %#![] \n\t->";
  std::string out;
  for (size_t i = 0; i < length; ++i) {
    out += kChars[(*rng)() % (sizeof(kChars) - 1)];
  }
  return out;
}

TEST_P(ParserFuzzTest, NeverCrashesOnRandomInput) {
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    SymbolTable syms;
    std::string soup = RandomSoup(&rng, 1 + rng() % 120);
    Result<Program> p = ParseProgram(soup, &syms);
    if (p.ok()) {
      // Whatever parsed must print and re-parse to the same structures.
      SymbolTable syms2 = syms;
      std::string printed = ToString(p.value().theory, syms) +
                            ToString(p.value().database, syms);
      Result<Program> again = ParseProgram(printed, &syms2);
      ASSERT_TRUE(again.ok()) << "round-trip broke on: " << printed;
      EXPECT_EQ(p.value().theory.size(), again.value().theory.size());
      EXPECT_EQ(p.value().database.size(), again.value().database.size());
    }
  }
}

TEST_P(ParserFuzzTest, StructuredMutationsOfValidProgram) {
  // Mutate a valid program by deleting/duplicating random chunks; the
  // parser must accept or cleanly reject.
  const std::string base = R"(
    publication(X) -> exists K1, K2. keywords(X, K1, K2).
    keywords(X, K1, K2) -> hastopic(X, K1).
    publication(p1). hasauthor(p1, a1).
  )";
  std::mt19937 rng(GetParam() + 1000);
  for (int i = 0; i < 100; ++i) {
    std::string mutated = base;
    size_t cut = rng() % mutated.size();
    size_t len = rng() % 20;
    if (rng() % 2 == 0) {
      mutated.erase(cut, len);
    } else {
      mutated.insert(cut, mutated.substr(cut, len));
    }
    SymbolTable syms;
    Result<Program> p = ParseProgram(mutated, &syms);
    (void)p;  // Either outcome is fine; it just must not crash.
  }
}

// Every theory, database, and query the conformance generator emits must
// survive parse(print(·)) exactly — including quoted constants (spaces,
// upper-case starts) and annotation positions R[~t](~v). Faithfulness is
// checked by re-printing with the second symbol table: identical text
// means identical structure up to interning.
TEST_P(ParserFuzzTest, GeneratedCasesRoundTrip) {
  gerel::testing::GenOptions gopts;
  gopts.quoted_constant_prob = 0.4;
  gopts.annotation_prob = 0.4;
  for (gerel::testing::GenClass cls : gerel::testing::AllGenClasses()) {
    SymbolTable syms;
    gerel::testing::CaseGenerator gen(GetParam() * 977 + 13, &syms, gopts);
    for (int i = 0; i < 10; ++i) {
      gerel::testing::GeneratedCase c = gen.Next(cls);

      std::string theory_text = ToString(c.theory, syms);
      SymbolTable syms2;
      Result<Theory> theory2 = ParseTheory(theory_text, &syms2);
      ASSERT_TRUE(theory2.ok())
          << theory2.status().message() << "\n" << theory_text;
      EXPECT_EQ(theory_text, ToString(theory2.value(), syms2));

      std::string db_text = ToString(c.database, syms);
      SymbolTable syms3;
      Result<Database> db2 = ParseDatabase(db_text, &syms3);
      ASSERT_TRUE(db2.ok()) << db2.status().message() << "\n" << db_text;
      EXPECT_EQ(db_text, ToString(db2.value(), syms3));

      std::string query_text = ToString(c.query, syms);
      SymbolTable syms4;
      Result<Rule> query2 = ParseRule(query_text, &syms4);
      ASSERT_TRUE(query2.ok())
          << query2.status().message() << "\n" << query_text;
      EXPECT_EQ(query_text, ToString(query2.value(), syms4));

      // The repro rendering's statement part re-parses as a program.
      SymbolTable syms5;
      Result<Program> prog = ParseProgram(CaseToString(c, syms), &syms5);
      ASSERT_TRUE(prog.ok()) << prog.status().message();
      EXPECT_EQ(prog.value().theory.size(), c.theory.size());
      EXPECT_EQ(prog.value().database.size(), c.database.size());
    }
  }
}

// Quoted-constant specifics the generator cannot hit: escapes and error
// paths.
TEST(QuotedConstantTest, EscapesAndErrors) {
  SymbolTable syms;
  Result<Atom> a = ParseAtom(R"(p('it\'s a \\test'))", &syms);
  ASSERT_TRUE(a.ok()) << a.status().message();
  EXPECT_EQ(syms.TermName(a.value().args[0]), "it's a \\test");
  // Printing re-escapes, and the quoted form re-parses to the same term.
  std::string printed = ToString(a.value(), syms);
  Result<Atom> b = ParseAtom(printed, &syms);
  ASSERT_TRUE(b.ok()) << printed;
  EXPECT_EQ(a.value(), b.value());

  EXPECT_FALSE(ParseAtom("p('unterminated)", &syms).ok());
  EXPECT_FALSE(ParseAtom("p('')", &syms).ok());
  EXPECT_FALSE(ParseAtom("p('split\nline')", &syms).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(0u, 8u));

}  // namespace
}  // namespace gerel
