// Additional coverage: the full Example 7 derivation chain (σ6–σ12),
// saturation-rule ablation toggles, safe annotations, and canonicalizer
// stress cases.
#include <gtest/gtest.h>

#include "core/classify.h"
#include "core/normalize.h"
#include "core/parser.h"
#include "core/printer.h"
#include "transform/annotation.h"
#include "transform/canonical.h"
#include "transform/saturation.h"

namespace gerel {
namespace {

Theory MustParseTheory(const char* text, SymbolTable* syms) {
  Result<Theory> t = ParseTheory(text, syms);
  EXPECT_TRUE(t.ok()) << t.status().message();
  return std::move(t).value();
}

const char* kExample7 = R"(
  a(X) -> exists Y. r(X, Y).
  r(X, Y) -> s(Y, Y).
  s(X, Y) -> exists Z. t(X, Y, Z).
  t(X, X, Y) -> b(X).
  c0(X), r(X, Y), b(Y) -> d(X).
)";

bool ClosureContains(const SaturationResult& sat, const char* rule_text,
                     SymbolTable* syms) {
  Result<Rule> want = ParseRule(rule_text, syms);
  EXPECT_TRUE(want.ok()) << want.status().message();
  std::string key = CanonicalRuleString(want.value(), *syms);
  for (const Rule& r : sat.closure.rules()) {
    if (CanonicalRuleString(r, *syms) == key) return true;
  }
  return false;
}

// The paper's σ6–σ12 derivation chain, atom for atom.
TEST(Example7ChainTest, EveryIntermediateRuleIsDerived) {
  SymbolTable syms;
  Theory theory = MustParseTheory(kExample7, &syms);
  Result<SaturationResult> sat = Saturate(theory, &syms);
  ASSERT_TRUE(sat.ok()) << sat.status().message();
  ASSERT_TRUE(sat.value().complete);
  const char* kChain[] = {
      // σ6 (renaming of σ3 with x ↦ y):
      "s(Y, Y) -> exists Z. t(Y, Y, Z)",
      // σ7 (σ6 ∘ σ4):
      "s(Y, Y) -> exists Z. t(Y, Y, Z), b(Y)",
      // σ8 (projection):
      "s(Y, Y) -> b(Y)",
      // σ9 (σ1 ∘ σ2):
      "a(X) -> exists Y. r(X, Y), s(Y, Y)",
      // σ10 (σ9 ∘ σ8):
      "a(X) -> exists Y. r(X, Y), s(Y, Y), b(Y)",
      // σ11 (σ10 ∘ σ5, γ1 = C(x)):
      "a(X), c0(X) -> exists Y. r(X, Y), s(Y, Y), b(Y), d(X)",
      // σ12 (projection):
      "a(X), c0(X) -> d(X)",
  };
  for (const char* rule : kChain) {
    EXPECT_TRUE(ClosureContains(sat.value(), rule, &syms))
        << "missing: " << rule;
  }
}

TEST(SaturationToggleTest, WithoutCompositionSigma12IsMissing) {
  SymbolTable syms;
  Theory theory = MustParseTheory(kExample7, &syms);
  SaturationOptions opts;
  opts.enable_composition = false;
  Result<SaturationResult> sat = Saturate(theory, &syms, opts);
  ASSERT_TRUE(sat.ok());
  EXPECT_FALSE(ClosureContains(sat.value(), "a(X), c0(X) -> d(X)", &syms));
}

TEST(SaturationToggleTest, WithoutRenamingSigma12StillDerived) {
  SymbolTable syms;
  Theory theory = MustParseTheory(kExample7, &syms);
  SaturationOptions opts;
  opts.enable_renaming = false;
  Result<SaturationResult> sat = Saturate(theory, &syms, opts);
  ASSERT_TRUE(sat.ok());
  // The paper's chain reaches σ6 by renaming σ3 with x ↦ y, but the
  // unifying (composition) step merges universal variables on demand
  // (σ3 ∘ σ4 unifies t(X,Y,Z)'s frontier), so the chain completes even
  // with the standalone renaming pass disabled.
  EXPECT_TRUE(ClosureContains(sat.value(), "a(X), c0(X) -> d(X)", &syms));
}

TEST(SaturationToggleTest, WithoutProjectionDatShrinks) {
  SymbolTable syms;
  Theory theory = MustParseTheory(kExample7, &syms);
  SaturationOptions opts;
  opts.enable_projection = false;
  Result<SaturationResult> sat = Saturate(theory, &syms, opts);
  ASSERT_TRUE(sat.ok());
  EXPECT_FALSE(ClosureContains(sat.value(), "s(Y, Y) -> b(Y)", &syms));
}

TEST(SafeAnnotationTest, AnnotationTransformProducesSafeAnnotations) {
  SymbolTable syms;
  Theory t = MustParseTheory(R"(
    r(X) -> exists Y. e(X, Y).
    e(X, Y), e(W, Z) -> both(X, W).
  )",
                             &syms);
  ProperReordering pr = MakeProper(t);
  Result<Theory> annotated = AnnotateNonAffected(pr.theory);
  ASSERT_TRUE(annotated.ok());
  EXPECT_TRUE(IsSafelyAnnotated(annotated.value()));
}

TEST(SafeAnnotationTest, DetectsArgumentLeak) {
  SymbolTable syms;
  // Annotation variable U also occurs as an argument: violates (i).
  Result<Rule> r = ParseRule("e[U](X), f(U) -> g(X)", &syms);
  ASSERT_TRUE(r.ok());
  Theory t;
  t.AddRule(r.value());
  EXPECT_FALSE(IsSafelyAnnotated(t));
}

TEST(SafeAnnotationTest, DetectsUnboundHeadAnnotation) {
  SymbolTable syms;
  // W occurs in the head annotation but in no body annotation.
  Result<Rule> r = ParseRule("e[U](X), f(W) -> g[W](X)", &syms);
  ASSERT_TRUE(r.ok());
  Theory t;
  t.AddRule(r.value());
  EXPECT_FALSE(IsSafelyAnnotated(t));
}

TEST(SafeAnnotationTest, UnannotatedTheoriesAreVacuouslySafe) {
  SymbolTable syms;
  Theory t = MustParseTheory("e(X, Y) -> t(X, Y).", &syms);
  EXPECT_TRUE(IsSafelyAnnotated(t));
}

TEST(CanonicalStressTest, HeadUsageBreaksBodySymmetry) {
  // Regression for the WL canonicalizer: two body atoms identical up to
  // the variable, distinguished only by the head.
  SymbolTable syms;
  Result<Rule> a = ParseRule("p1(R0), p1(R3) -> p1(R0)", &syms);
  Result<Rule> b = ParseRule("p1(Zq1), p1(Zq0) -> p1(Zq0)", &syms);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(CanonicalRuleString(a.value(), syms),
            CanonicalRuleString(b.value(), syms));
}

TEST(CanonicalStressTest, AutomorphicVariablesStillCanonicalize) {
  SymbolTable syms;
  Result<Rule> a = ParseRule("p(X, Y), p(Y, X) -> q", &syms);
  Result<Rule> b = ParseRule("p(V, U), p(U, V) -> q", &syms);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(CanonicalRuleString(a.value(), syms),
            CanonicalRuleString(b.value(), syms));
}

TEST(CanonicalStressTest, ChainVsStarDiffer) {
  SymbolTable syms;
  Result<Rule> chain = ParseRule("p(X, Y), p(Y, Z) -> q", &syms);
  Result<Rule> star = ParseRule("p(X, Y), p(X, Z) -> q", &syms);
  ASSERT_TRUE(chain.ok() && star.ok());
  EXPECT_NE(CanonicalRuleString(chain.value(), syms),
            CanonicalRuleString(star.value(), syms));
}

TEST(CanonicalStressTest, LongCycleRotationsAgree) {
  SymbolTable syms;
  Result<Rule> a =
      ParseRule("r(X0, X1), r(X1, X2), r(X2, X0) -> p(X0)", &syms);
  Result<Rule> b =
      ParseRule("r(Y2, Y0), r(Y0, Y1), r(Y1, Y2) -> p(Y2)", &syms);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(CanonicalRuleString(a.value(), syms),
            CanonicalRuleString(b.value(), syms));
}

}  // namespace
}  // namespace gerel
