// Unit tests for Database storage, indexing, and the acdom built-in.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/parallel.h"
#include "core/parser.h"
#include "core/theory.h"

namespace gerel {
namespace {

TEST(DatabaseTest, InsertDeduplicates) {
  SymbolTable syms;
  RelationId r = syms.Relation("r", 2);
  Term a = syms.Constant("a");
  Term b = syms.Constant("b");
  Database db;
  EXPECT_TRUE(db.Insert(Atom(r, {a, b})));
  EXPECT_FALSE(db.Insert(Atom(r, {a, b})));
  EXPECT_TRUE(db.Insert(Atom(r, {b, a})));
  EXPECT_EQ(db.size(), 2u);
  EXPECT_TRUE(db.Contains(Atom(r, {a, b})));
  EXPECT_FALSE(db.Contains(Atom(r, {a, a})));
}

TEST(DatabaseTest, RelationIndex) {
  SymbolTable syms;
  Result<Database> db = ParseDatabase("r(a, b). r(b, c). s(a).", &syms);
  ASSERT_TRUE(db.ok());
  RelationId r = syms.Relation("r");
  RelationId s = syms.Relation("s");
  RelationId t = syms.Relation("t", 1);
  EXPECT_EQ(db.value().AtomsOf(r).size(), 2u);
  EXPECT_EQ(db.value().AtomsOf(s).size(), 1u);
  EXPECT_TRUE(db.value().AtomsOf(t).empty());
}

TEST(DatabaseTest, PositionIndex) {
  SymbolTable syms;
  Result<Database> db = ParseDatabase("r(a, b). r(b, c). r(a, c).", &syms);
  ASSERT_TRUE(db.ok());
  RelationId r = syms.Relation("r");
  Term a = syms.Constant("a");
  Term c = syms.Constant("c");
  EXPECT_EQ(db.value().AtomsAt(r, 0, a).size(), 2u);
  EXPECT_EQ(db.value().AtomsAt(r, 1, c).size(), 2u);
  EXPECT_TRUE(db.value().AtomsAt(r, 0, c).empty());
}

TEST(DatabaseTest, ActiveTermsAndConstants) {
  SymbolTable syms;
  Database db;
  RelationId r = syms.Relation("r", 2);
  Term a = syms.Constant("a");
  Term n = syms.FreshNull();
  db.Insert(Atom(r, {a, n}));
  std::vector<Term> terms = db.ActiveTerms();
  EXPECT_EQ(terms.size(), 2u);
  std::vector<Term> constants = db.ActiveConstants();
  ASSERT_EQ(constants.size(), 1u);
  EXPECT_EQ(constants[0], a);
}

TEST(DatabaseTest, RestrictKeepsOnlyGivenRelations) {
  SymbolTable syms;
  Result<Database> db = ParseDatabase("r(a). s(a). t(a).", &syms);
  ASSERT_TRUE(db.ok());
  Database out =
      db.value().Restrict({syms.Relation("r"), syms.Relation("t")});
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.Contains(Atom(syms.Relation("r"), {syms.Constant("a")})));
  EXPECT_FALSE(out.Contains(Atom(syms.Relation("s"), {syms.Constant("a")})));
}

TEST(DatabaseTest, EqualityIsSetEquality) {
  SymbolTable syms;
  Result<Database> d1 = ParseDatabase("r(a). s(b).", &syms);
  Result<Database> d2 = ParseDatabase("s(b). r(a).", &syms);
  Result<Database> d3 = ParseDatabase("r(a).", &syms);
  EXPECT_TRUE(d1.value() == d2.value());
  EXPECT_FALSE(d1.value() == d3.value());
}

TEST(AcdomTest, PopulatesActiveDomainAndTheoryConstants) {
  SymbolTable syms;
  Result<Database> db = ParseDatabase("r(a, b).", &syms);
  ASSERT_TRUE(db.ok());
  Result<Theory> theory = ParseTheory("-> s(c).", &syms);
  ASSERT_TRUE(theory.ok());
  Database d = std::move(db).value();
  PopulateAcdom(theory.value(), &syms, &d);
  RelationId acdom = AcdomRelation(&syms);
  EXPECT_TRUE(d.Contains(Atom(acdom, {syms.Constant("a")})));
  EXPECT_TRUE(d.Contains(Atom(acdom, {syms.Constant("b")})));
  EXPECT_TRUE(d.Contains(Atom(acdom, {syms.Constant("c")})));
  EXPECT_EQ(d.AtomsOf(acdom).size(), 3u);
}

TEST(AcdomTest, AcdomAtomsDoNotFeedTheDomain) {
  SymbolTable syms;
  Database d;
  RelationId acdom = AcdomRelation(&syms);
  d.Insert(Atom(acdom, {syms.Constant("z")}));
  PopulateAcdom(Theory(), &syms, &d);
  // z occurs only in an acdom atom, so no further acdom facts appear.
  EXPECT_EQ(d.AtomsOf(acdom).size(), 1u);
}

TEST(DatabaseTest, DisablingPositionIndex) {
  Database db;
  db.set_position_index_enabled(false);
  SymbolTable syms;
  RelationId r = syms.Relation("r", 1);
  db.Insert(Atom(r, {syms.Constant("a")}));
  EXPECT_EQ(db.AtomsOf(r).size(), 1u);
  EXPECT_FALSE(db.position_index_enabled());
}

// Regression: the position-index key used to pack (pred, pos, term) as
// (pred << 40) ^ (pos << 32) ^ term, so an atom with a term at position
// >= 256 aliased the postings of relation (pred ^ (pos >> 8)) at
// position (pos & 0xFF) — a wide atom could leak into another
// relation's per-position postings.
TEST(DatabaseTest, HighArityPositionIndexDoesNotAliasRelations) {
  SymbolTable syms;
  // Arrange a pair of relations whose ids differ exactly in bit 0: under
  // the old packing, (wide, pos=256, t) collided with (wide ^ 1, 0, t).
  RelationId wide = syms.Relation("wide0", 257);
  for (int i = 1; wide % 2 != 0; ++i) {
    wide = syms.Relation("wide" + std::to_string(i), 257);
  }
  RelationId unary = syms.Relation("unary", 1);
  ASSERT_EQ(unary, wide ^ 1u);

  Term filler = syms.Constant("filler");
  Term probe = syms.Constant("probe");
  std::vector<Term> args(257, filler);
  args[256] = probe;

  Database db;
  db.Insert(Atom(wide, args));
  EXPECT_EQ(db.AtomsAt(wide, 256, probe).size(), 1u);
  EXPECT_EQ(db.AtomsAt(wide, 0, filler).size(), 1u);
  // The other relation's postings must stay empty.
  EXPECT_TRUE(db.AtomsAt(unary, 0, probe).empty());

  db.Insert(Atom(unary, {probe}));
  ASSERT_EQ(db.AtomsAt(unary, 0, probe).size(), 1u);
  EXPECT_EQ(db.atom(db.AtomsAt(unary, 0, probe)[0]).pred, unary);
}

TEST(DatabaseTest, DeferredIndexingMatchesEagerIndexing) {
  SymbolTable syms;
  RelationId r = syms.Relation("r", 2);
  std::vector<Term> consts;
  for (int i = 0; i < 40; ++i) {
    consts.push_back(syms.Constant("c" + std::to_string(i)));
  }
  Database eager;
  Database deferred;
  for (int i = 0; i < 40; ++i) {
    for (int j = 0; j < 40; j += 3) {
      Atom a(r, {consts[i], consts[j]});
      eager.Insert(a);
      deferred.InsertDeferIndex(a);
    }
  }
  deferred.IndexNewAtoms();
  EXPECT_EQ(eager, deferred);
  EXPECT_EQ(eager.AtomsOf(r), deferred.AtomsOf(r));
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(eager.AtomsAt(r, 0, consts[i]), deferred.AtomsAt(r, 0, consts[i]));
    EXPECT_EQ(eager.AtomsAt(r, 1, consts[i]), deferred.AtomsAt(r, 1, consts[i]));
  }
}

TEST(DatabaseTest, ParallelIndexBuildMatchesSerial) {
  SymbolTable syms;
  // Enough atoms over enough relations to cross the parallel-index
  // threshold and populate every index shard.
  std::vector<RelationId> rels;
  for (int i = 0; i < 24; ++i) {
    rels.push_back(syms.Relation("rel" + std::to_string(i), 2));
  }
  std::vector<Term> consts;
  for (int i = 0; i < 30; ++i) {
    consts.push_back(syms.Constant("k" + std::to_string(i)));
  }
  Database serial;
  Database parallel;
  for (int i = 0; i < 30; ++i) {
    for (int j = 0; j < 30; ++j) {
      Atom a(rels[(i * 30 + j) % rels.size()], {consts[i], consts[j]});
      serial.Insert(a);
      parallel.InsertDeferIndex(a);
    }
  }
  WorkerPool pool(4);
  parallel.IndexNewAtoms(&pool);
  EXPECT_EQ(serial, parallel);
  for (RelationId rel : rels) {
    EXPECT_EQ(serial.AtomsOf(rel), parallel.AtomsOf(rel));
  }
  for (Term c : consts) {
    for (RelationId rel : rels) {
      EXPECT_EQ(serial.AtomsAt(rel, 0, c), parallel.AtomsAt(rel, 0, c));
      EXPECT_EQ(serial.AtomsAt(rel, 1, c), parallel.AtomsAt(rel, 1, c));
    }
  }
}

TEST(DatabaseTest, ConcurrentModeSingleThreadBasics) {
  SymbolTable syms;
  RelationId r = syms.Relation("r", 2);
  Term a = syms.Constant("a");
  Term b = syms.Constant("b");
  Database db;
  db.Insert(Atom(r, {a, a}));
  db.ReserveConcurrent(16);
  EXPECT_TRUE(db.InsertConcurrent(Atom(r, {a, b})));
  EXPECT_FALSE(db.InsertConcurrent(Atom(r, {a, b})));
  EXPECT_FALSE(db.InsertConcurrent(Atom(r, {a, a})));
  EXPECT_TRUE(db.ContainsConcurrent(Atom(r, {a, b})));
  EXPECT_FALSE(db.ContainsConcurrent(Atom(r, {b, b})));
  EXPECT_EQ(db.SnapshotSize(), 2u);
  EXPECT_EQ(db.CopyAtomsOf(r).size(), 2u);
  // Back in owner mode, the indexes reflect the concurrent inserts.
  EXPECT_EQ(db.AtomsOf(r).size(), 2u);
  EXPECT_EQ(db.AtomsAt(r, 1, b).size(), 1u);
}

// Hammer for the concurrent fact store: writers race InsertConcurrent
// (with heavy duplicate pressure across threads) while readers poll
// SnapshotSize / atom(i) / ContainsConcurrent / CopyAtomsOf. Run under
// -DGEREL_SANITIZE=thread this is the data-race certification for the
// segmented store; the assertions double as a linearizability smoke
// check (no lost, duplicated, or torn atoms).
TEST(DatabaseTest, ConcurrentInsertHammer) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr int kPerWriter = 2000;

  SymbolTable syms;
  RelationId r = syms.Relation("r", 2);
  // Intern every constant before the threads start: SymbolTable is not
  // thread-safe, and the store only accepts pre-interned terms.
  std::vector<Term> consts;
  for (int i = 0; i < kPerWriter; ++i) {
    consts.push_back(syms.Constant("c" + std::to_string(i)));
  }

  Database db;
  // Writers deliberately collide: writer w inserts (c_i, c_{(i+w) mod N}),
  // so every pair with offset < kWriters is attempted by several threads.
  db.ReserveConcurrent(static_cast<size_t>(kWriters) * kPerWriter);

  std::atomic<size_t> accepted{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      size_t mine = 0;
      for (int i = 0; i < kPerWriter; ++i) {
        Atom a(r, {consts[i], consts[(i + w) % kPerWriter]});
        if (db.InsertConcurrent(a)) ++mine;
        if (i % 64 == 0) {
          // Readback through the shared dedup set.
          EXPECT_TRUE(db.ContainsConcurrent(a));
        }
      }
      accepted.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  for (int q = 0; q < kReaders; ++q) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        size_t n = db.SnapshotSize();
        // Every published atom must be fully visible (no torn writes).
        for (size_t i = 0; i < n; i += 97) {
          const Atom& a = db.atom(i);
          EXPECT_EQ(a.pred, r);
          EXPECT_EQ(a.args.size(), 2u);
        }
        std::vector<uint32_t> ids = db.CopyAtomsOf(r);
        EXPECT_GE(ids.size(), n == 0 ? 0u : 1u);
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  // Exactly the distinct pairs survive: kPerWriter per distinct offset.
  EXPECT_EQ(accepted.load(), static_cast<size_t>(kWriters) * kPerWriter);
  EXPECT_EQ(db.size(), static_cast<size_t>(kWriters) * kPerWriter);
  EXPECT_EQ(db.CopyAtomsOf(r).size(), db.size());
  // Owner-mode spot checks after the threads are gone.
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_TRUE(db.Contains(Atom(r, {consts[17], consts[(17 + w) % kPerWriter]})));
  }
  EXPECT_FALSE(db.Contains(Atom(r, {consts[0], consts[kWriters]})));
}

// InsertBatchDeferIndex must be indistinguishable from the equivalent
// sequential InsertDeferIndex loop: same newness marks (first
// occurrence wins on in-batch duplicates), same atom order, same
// indexes — for any lane count.
TEST(DatabaseTest, InsertBatchDeferIndexMatchesSequential) {
  SymbolTable syms;
  RelationId r = syms.Relation("r", 2);
  std::vector<Term> consts;
  for (int i = 0; i < 50; ++i) {
    consts.push_back(syms.Constant("b" + std::to_string(i)));
  }
  // ~2500 candidates with planted duplicates (every 7th repeats an
  // earlier atom) so the batch crosses the parallel paths and exercises
  // first-occurrence-wins.
  std::vector<Atom> batch;
  for (int i = 0; i < 50; ++i) {
    for (int j = 0; j < 50; ++j) {
      batch.push_back(Atom(r, {consts[i], consts[j]}));
      if ((i * 50 + j) % 7 == 0 && !batch.empty()) {
        batch.push_back(batch[batch.size() / 2]);
      }
    }
  }
  Database sequential;
  std::vector<uint8_t> expected_new;
  for (const Atom& a : batch) {
    expected_new.push_back(sequential.InsertDeferIndex(a) ? 1 : 0);
  }
  sequential.IndexNewAtoms();

  WorkerPool pool(4);
  Database batched;
  std::vector<uint8_t> got_new;
  size_t inserted = batched.InsertBatchDeferIndex(batch, &pool, &got_new);
  batched.IndexNewAtoms(&pool);

  EXPECT_EQ(got_new, expected_new);
  EXPECT_EQ(inserted, sequential.size());
  EXPECT_EQ(sequential, batched);
  EXPECT_EQ(sequential.AtomsOf(r), batched.AtomsOf(r));
  for (Term c : consts) {
    EXPECT_EQ(sequential.AtomsAt(r, 0, c), batched.AtomsAt(r, 0, c));
    EXPECT_EQ(sequential.AtomsAt(r, 1, c), batched.AtomsAt(r, 1, c));
  }
}

TEST(DatabaseTest, InsertBatchDeferIndexAgainstExistingAtoms) {
  SymbolTable syms;
  RelationId r = syms.Relation("r", 2);
  Term a = syms.Constant("a");
  Term b = syms.Constant("b");
  Term c = syms.Constant("c");
  WorkerPool pool(4);
  Database db;
  ASSERT_TRUE(db.Insert(Atom(r, {a, b})));
  // Batch mixes an already-present atom, a fresh one, and an in-batch
  // duplicate of the fresh one.
  std::vector<Atom> batch = {Atom(r, {a, b}), Atom(r, {b, c}),
                             Atom(r, {b, c})};
  std::vector<uint8_t> is_new;
  EXPECT_EQ(db.InsertBatchDeferIndex(batch, &pool, &is_new), 1u);
  EXPECT_EQ(is_new, (std::vector<uint8_t>{0, 1, 0}));
  db.IndexNewAtoms();
  EXPECT_EQ(db.size(), 2u);

  std::vector<uint8_t> empty_new;
  EXPECT_EQ(db.InsertBatchDeferIndex({}, &pool, &empty_new), 0u);
  EXPECT_TRUE(empty_new.empty());
}

TEST(DatabaseTest, InsertBatchDeferIndexSequentialFallback) {
  SymbolTable syms;
  RelationId r = syms.Relation("r", 2);
  std::vector<Atom> batch;
  for (int i = 0; i < 600; ++i) {
    batch.push_back(Atom(r, {syms.Constant("x" + std::to_string(i)),
                             syms.Constant("y" + std::to_string(i % 13))}));
  }
  Database with_pool;
  Database without_pool;
  std::vector<uint8_t> new_a;
  std::vector<uint8_t> new_b;
  WorkerPool pool(4);
  with_pool.InsertBatchDeferIndex(batch, &pool, &new_a);
  without_pool.InsertBatchDeferIndex(batch, nullptr, &new_b);
  with_pool.IndexNewAtoms(&pool);
  without_pool.IndexNewAtoms();
  EXPECT_EQ(new_a, new_b);
  EXPECT_EQ(with_pool, without_pool);
}

}  // namespace
}  // namespace gerel
