// Unit tests for Database storage, indexing, and the acdom built-in.
#include <gtest/gtest.h>

#include "core/database.h"
#include "core/parser.h"
#include "core/theory.h"

namespace gerel {
namespace {

TEST(DatabaseTest, InsertDeduplicates) {
  SymbolTable syms;
  RelationId r = syms.Relation("r", 2);
  Term a = syms.Constant("a");
  Term b = syms.Constant("b");
  Database db;
  EXPECT_TRUE(db.Insert(Atom(r, {a, b})));
  EXPECT_FALSE(db.Insert(Atom(r, {a, b})));
  EXPECT_TRUE(db.Insert(Atom(r, {b, a})));
  EXPECT_EQ(db.size(), 2u);
  EXPECT_TRUE(db.Contains(Atom(r, {a, b})));
  EXPECT_FALSE(db.Contains(Atom(r, {a, a})));
}

TEST(DatabaseTest, RelationIndex) {
  SymbolTable syms;
  Result<Database> db = ParseDatabase("r(a, b). r(b, c). s(a).", &syms);
  ASSERT_TRUE(db.ok());
  RelationId r = syms.Relation("r");
  RelationId s = syms.Relation("s");
  RelationId t = syms.Relation("t", 1);
  EXPECT_EQ(db.value().AtomsOf(r).size(), 2u);
  EXPECT_EQ(db.value().AtomsOf(s).size(), 1u);
  EXPECT_TRUE(db.value().AtomsOf(t).empty());
}

TEST(DatabaseTest, PositionIndex) {
  SymbolTable syms;
  Result<Database> db = ParseDatabase("r(a, b). r(b, c). r(a, c).", &syms);
  ASSERT_TRUE(db.ok());
  RelationId r = syms.Relation("r");
  Term a = syms.Constant("a");
  Term c = syms.Constant("c");
  EXPECT_EQ(db.value().AtomsAt(r, 0, a).size(), 2u);
  EXPECT_EQ(db.value().AtomsAt(r, 1, c).size(), 2u);
  EXPECT_TRUE(db.value().AtomsAt(r, 0, c).empty());
}

TEST(DatabaseTest, ActiveTermsAndConstants) {
  SymbolTable syms;
  Database db;
  RelationId r = syms.Relation("r", 2);
  Term a = syms.Constant("a");
  Term n = syms.FreshNull();
  db.Insert(Atom(r, {a, n}));
  std::vector<Term> terms = db.ActiveTerms();
  EXPECT_EQ(terms.size(), 2u);
  std::vector<Term> constants = db.ActiveConstants();
  ASSERT_EQ(constants.size(), 1u);
  EXPECT_EQ(constants[0], a);
}

TEST(DatabaseTest, RestrictKeepsOnlyGivenRelations) {
  SymbolTable syms;
  Result<Database> db = ParseDatabase("r(a). s(a). t(a).", &syms);
  ASSERT_TRUE(db.ok());
  Database out =
      db.value().Restrict({syms.Relation("r"), syms.Relation("t")});
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.Contains(Atom(syms.Relation("r"), {syms.Constant("a")})));
  EXPECT_FALSE(out.Contains(Atom(syms.Relation("s"), {syms.Constant("a")})));
}

TEST(DatabaseTest, EqualityIsSetEquality) {
  SymbolTable syms;
  Result<Database> d1 = ParseDatabase("r(a). s(b).", &syms);
  Result<Database> d2 = ParseDatabase("s(b). r(a).", &syms);
  Result<Database> d3 = ParseDatabase("r(a).", &syms);
  EXPECT_TRUE(d1.value() == d2.value());
  EXPECT_FALSE(d1.value() == d3.value());
}

TEST(AcdomTest, PopulatesActiveDomainAndTheoryConstants) {
  SymbolTable syms;
  Result<Database> db = ParseDatabase("r(a, b).", &syms);
  ASSERT_TRUE(db.ok());
  Result<Theory> theory = ParseTheory("-> s(c).", &syms);
  ASSERT_TRUE(theory.ok());
  Database d = std::move(db).value();
  PopulateAcdom(theory.value(), &syms, &d);
  RelationId acdom = AcdomRelation(&syms);
  EXPECT_TRUE(d.Contains(Atom(acdom, {syms.Constant("a")})));
  EXPECT_TRUE(d.Contains(Atom(acdom, {syms.Constant("b")})));
  EXPECT_TRUE(d.Contains(Atom(acdom, {syms.Constant("c")})));
  EXPECT_EQ(d.AtomsOf(acdom).size(), 3u);
}

TEST(AcdomTest, AcdomAtomsDoNotFeedTheDomain) {
  SymbolTable syms;
  Database d;
  RelationId acdom = AcdomRelation(&syms);
  d.Insert(Atom(acdom, {syms.Constant("z")}));
  PopulateAcdom(Theory(), &syms, &d);
  // z occurs only in an acdom atom, so no further acdom facts appear.
  EXPECT_EQ(d.AtomsOf(acdom).size(), 1u);
}

TEST(DatabaseTest, DisablingPositionIndex) {
  Database db;
  db.set_position_index_enabled(false);
  SymbolTable syms;
  RelationId r = syms.Relation("r", 1);
  db.Insert(Atom(r, {syms.Constant("a")}));
  EXPECT_EQ(db.AtomsOf(r).size(), 1u);
  EXPECT_FALSE(db.position_index_enabled());
}

// Regression: the position-index key used to pack (pred, pos, term) as
// (pred << 40) ^ (pos << 32) ^ term, so an atom with a term at position
// >= 256 aliased the postings of relation (pred ^ (pos >> 8)) at
// position (pos & 0xFF) — a wide atom could leak into another
// relation's per-position postings.
TEST(DatabaseTest, HighArityPositionIndexDoesNotAliasRelations) {
  SymbolTable syms;
  // Arrange a pair of relations whose ids differ exactly in bit 0: under
  // the old packing, (wide, pos=256, t) collided with (wide ^ 1, 0, t).
  RelationId wide = syms.Relation("wide0", 257);
  for (int i = 1; wide % 2 != 0; ++i) {
    wide = syms.Relation("wide" + std::to_string(i), 257);
  }
  RelationId unary = syms.Relation("unary", 1);
  ASSERT_EQ(unary, wide ^ 1u);

  Term filler = syms.Constant("filler");
  Term probe = syms.Constant("probe");
  std::vector<Term> args(257, filler);
  args[256] = probe;

  Database db;
  db.Insert(Atom(wide, args));
  EXPECT_EQ(db.AtomsAt(wide, 256, probe).size(), 1u);
  EXPECT_EQ(db.AtomsAt(wide, 0, filler).size(), 1u);
  // The other relation's postings must stay empty.
  EXPECT_TRUE(db.AtomsAt(unary, 0, probe).empty());

  db.Insert(Atom(unary, {probe}));
  ASSERT_EQ(db.AtomsAt(unary, 0, probe).size(), 1u);
  EXPECT_EQ(db.atom(db.AtomsAt(unary, 0, probe)[0]).pred, unary);
}

}  // namespace
}  // namespace gerel
