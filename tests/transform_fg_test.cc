// Tests for the §5.1 translation machinery: canonicalization, selections,
// rc-/rnc-rewritings, expansion, and rew(Σ) (Thm 1, Prop 3, Prop 4,
// Prop 5).
#include <gtest/gtest.h>

#include "chase/chase.h"
#include "core/classify.h"
#include "core/normalize.h"
#include "core/parser.h"
#include "core/printer.h"
#include "transform/acdom.h"
#include "transform/canonical.h"
#include "transform/fg_to_ng.h"
#include "transform/rewriting.h"

namespace gerel {
namespace {

Rule MustParseRule(const char* text, SymbolTable* syms) {
  Result<Rule> r = ParseRule(text, syms);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

Theory MustParseTheory(const char* text, SymbolTable* syms) {
  Result<Theory> t = ParseTheory(text, syms);
  EXPECT_TRUE(t.ok()) << t.status().message();
  return std::move(t).value();
}

TEST(CanonicalTest, RenamedRulesShareCanonicalString) {
  SymbolTable syms;
  Rule a = MustParseRule("e(X, Y), e(Y, Z) -> t(X, Z)", &syms);
  Rule b = MustParseRule("e(U, V), e(V, W) -> t(U, W)", &syms);
  EXPECT_EQ(CanonicalRuleString(a, syms), CanonicalRuleString(b, syms));
}

TEST(CanonicalTest, BodyOrderDoesNotMatter) {
  SymbolTable syms;
  Rule a = MustParseRule("e(X, Y), f(Y) -> t(X)", &syms);
  Rule b = MustParseRule("f(Y), e(X, Y) -> t(X)", &syms);
  EXPECT_EQ(CanonicalRuleString(a, syms), CanonicalRuleString(b, syms));
}

TEST(CanonicalTest, DifferentRulesDiffer) {
  SymbolTable syms;
  Rule a = MustParseRule("e(X, Y) -> t(X, Y)", &syms);
  Rule b = MustParseRule("e(X, Y) -> t(Y, X)", &syms);
  Rule c = MustParseRule("e(X, X) -> t(X, X)", &syms);
  EXPECT_NE(CanonicalRuleString(a, syms), CanonicalRuleString(b, syms));
  EXPECT_NE(CanonicalRuleString(a, syms), CanonicalRuleString(c, syms));
}

TEST(CanonicalTest, RelationRenamesApply) {
  SymbolTable syms;
  Rule a = MustParseRule("h1(X) -> t(X)", &syms);
  Rule b = MustParseRule("h2(X) -> t(X)", &syms);
  RelationRenames ren;
  ren[syms.Relation("h1")] = "?H";
  RelationRenames ren2;
  ren2[syms.Relation("h2")] = "?H";
  EXPECT_EQ(CanonicalRuleString(a, syms, &ren),
            CanonicalRuleString(b, syms, &ren2));
}

TEST(CanonicalTest, CanonicalizeVariablesPreservesStructure) {
  SymbolTable syms;
  Rule a = MustParseRule("e(Q, W), e(W, Q) -> t(Q)", &syms);
  Rule c = CanonicalizeVariables(a, &syms);
  EXPECT_EQ(CanonicalRuleString(a, syms), CanonicalRuleString(c, syms));
  EXPECT_EQ(c.body.size(), 2u);
}

TEST(SelectionTest, CountsForSmallRule) {
  SymbolTable syms;
  Rule r = MustParseRule("e(X, Y) -> t(X)", &syms);
  size_t idem = 0, full = 0;
  ForEachSelection(r, 2, /*idempotent_only=*/true, 100000,
                   [&](const SelectionParts&) {
                     ++idem;
                     return true;
                   });
  ForEachSelection(r, 2, /*idempotent_only=*/false, 100000,
                   [&](const SelectionParts&) {
                     ++full;
                     return true;
                   });
  // Only selections whose domain variables occur in covered atoms
  // survive: the sole coverable atom is e(X, Y), so dom ∈ {∅, {X, Y}}.
  // Full: empty + the 4 maps {X, Y} → {X, Y}. Idempotent: empty, id,
  // Y→X, X→Y.
  EXPECT_EQ(full, 5u);
  EXPECT_EQ(idem, 4u);
  EXPECT_LT(idem, full);
}

TEST(SelectionTest, RangeBoundIsRespected) {
  SymbolTable syms;
  Rule r = MustParseRule("e(X, Y), e(Y, Z) -> t(X)", &syms);
  ForEachSelection(r, 1, false, 100000, [&](const SelectionParts& sel) {
    EXPECT_LE(sel.mu.Range().size(), 3u);  // Multiset; distinct ≤ 1.
    std::vector<Term> distinct;
    for (Term t : sel.mu.Range()) {
      if (std::find(distinct.begin(), distinct.end(), t) == distinct.end())
        distinct.push_back(t);
    }
    EXPECT_LE(distinct.size(), 1u);
    return true;
  });
}

TEST(SelectionTest, CoverageAndKeep) {
  SymbolTable syms;
  // Example 4: σ4 with µ = {x→x, z→z}.
  Rule r = MustParseRule(
      "hasauthor(X, Y), hastopic(X, Z), scientific(Z) -> q(Y)", &syms);
  bool found = false;
  ForEachSelection(r, 3, true, 1000000, [&](const SelectionParts& sel) {
    std::vector<Term> dom = sel.mu.Domain();
    if (dom.size() == 2 &&
        std::find(dom.begin(), dom.end(), syms.Variable("X")) != dom.end() &&
        std::find(dom.begin(), dom.end(), syms.Variable("Z")) != dom.end()) {
      found = true;
      // cov = {hastopic(x,z), scientific(z)}; keep = {x}.
      EXPECT_EQ(sel.covered.size(), 2u);
      EXPECT_EQ(sel.non_covered.size(), 1u);
      EXPECT_EQ(sel.keep_rc, std::vector<Term>{syms.Variable("X")});
      EXPECT_EQ(sel.keep_rnc, std::vector<Term>{syms.Variable("X")});
      return false;
    }
    return true;
  });
  EXPECT_TRUE(found);
}

TEST(RewritingTest, RcOnExample4) {
  SymbolTable syms;
  Theory sigma = MustParseTheory(R"(
    hasauthor(X, Y), hastopic(X, Z), scientific(Z) -> q(Y).
    publication(X) -> exists K1, K2. keywords(X, K1, K2).
  )",
                                 &syms);
  const Rule& r = sigma.rules()[0];
  SignatureInfo sig = SignatureInfo::FromTheory(sigma);
  // Find the selection µ = {X→X, Z→Z}.
  SelectionParts target;
  ForEachSelection(r, sig.max_arity, true, 1000000,
                   [&](const SelectionParts& sel) {
                     std::vector<Term> dom = sel.mu.Domain();
                     Term x = syms.Variable("X");
                     Term z = syms.Variable("Z");
                     if (dom.size() == 2 &&
                         std::find(dom.begin(), dom.end(), x) != dom.end() &&
                         std::find(dom.begin(), dom.end(), z) != dom.end() &&
                         sel.mu.Apply(x) == x && sel.mu.Apply(z) == z) {
                       target = sel;
                       return false;
                     }
                     return true;
                   });
  ASSERT_EQ(target.keep_rc.size(), 1u);
  ASSERT_TRUE(RcApplicable(r, target));
  RelationId h = syms.Relation("auxh", 1);
  Atom fresh = MakeFreshHead(h, target.keep_rc, target, r);
  RewriteSet set = RcRewritings(r, target, sig, fresh, &syms);
  ASSERT_FALSE(set.primes.empty());
  ASSERT_EQ(set.seconds.size(), 1u);
  // Every σ′ is guarded; σ″ = h(X) ∧ hasauthor(X, Y) → q(Y) is guarded.
  for (const Rule& p : set.primes) {
    EXPECT_TRUE(IsGuardedRule(p)) << ToString(p, syms);
    EXPECT_EQ(p.head[0].pred, h);
  }
  EXPECT_TRUE(IsGuardedRule(set.seconds[0]));
  EXPECT_EQ(set.seconds[0].body.size(), 2u);
}

TEST(RewritingTest, RncOnExample6) {
  SymbolTable syms;
  Theory sigma = MustParseTheory(R"(
    hastopic(X, Z), hasauthor(X, U), hasauthor(Y, U), hastopic(Y, Z2),
      scientific(Z2), citedin(Y, X) -> scientific(Z).
    publication(X) -> exists K1, K2. keywords(X, K1, K2).
  )",
                                 &syms);
  const Rule& r = sigma.rules()[0];
  SignatureInfo sig = SignatureInfo::FromTheory(sigma);
  SelectionParts target;
  bool found = false;
  ForEachSelection(r, sig.max_arity, true, 10000000,
                   [&](const SelectionParts& sel) {
                     std::vector<Term> dom = sel.mu.Domain();
                     if (dom.size() == 2 &&
                         std::find(dom.begin(), dom.end(),
                                   syms.Variable("X")) != dom.end() &&
                         std::find(dom.begin(), dom.end(),
                                   syms.Variable("Z")) != dom.end() &&
                         sel.mu.Apply(syms.Variable("X")) ==
                             syms.Variable("X") &&
                         sel.mu.Apply(syms.Variable("Z")) ==
                             syms.Variable("Z")) {
                       target = sel;
                       found = true;
                       return false;
                     }
                     return true;
                   });
  ASSERT_TRUE(found);
  ASSERT_TRUE(RncApplicable(r, target));
  ASSERT_EQ(target.keep_rnc.size(), 1u);  // Example 6: keep = {x}.
  RelationId h = syms.Relation("auxh2", 1);
  Atom fresh = MakeFreshHead(h, target.keep_rnc, target, r);
  RewriteSet set = RncRewritings(r, target, sig, fresh, &syms);
  ASSERT_FALSE(set.primes.empty());
  ASSERT_FALSE(set.seconds.empty());
  for (const Rule& p : set.primes) {
    EXPECT_TRUE(IsFrontierGuardedRule(p)) << ToString(p, syms);
  }
  for (const Rule& s : set.seconds) {
    EXPECT_TRUE(IsGuardedRule(s)) << ToString(s, syms);
  }
}

TEST(RewritingTest, RncRequiresHeadVarsInDomain) {
  SymbolTable syms;
  Rule r = MustParseRule("e(X, Y), f(Y, Z) -> t(X)", &syms);
  // µ = {Y→Y}: head var X not in dom → rnc must refuse (σ″ would derive
  // t(X) for arbitrary X).
  ForEachSelection(r, 2, true, 100000, [&](const SelectionParts& sel) {
    std::vector<Term> dom = sel.mu.Domain();
    if (dom.size() == 1 && dom[0] == syms.Variable("Y")) {
      EXPECT_FALSE(RncApplicable(r, sel));
      return false;
    }
    return true;
  });
}

// The three-cycle theory: frontier-guarded, with a cycle that only closes
// through labeled nulls, so answering requires the expansion rules (the
// acdom-guarded original rule cannot fire on nulls).
const char* kNullCycleTheory = R"(
  a(X) -> exists Y1, Y2. r(X, Y1), r(Y1, Y2), r(Y2, X).
  r(X0, X1), r(X1, X2), r(X2, X0) -> p(X0).
)";

TEST(ExpandTest, ClosesAndStaysFinite) {
  SymbolTable syms;
  Theory raw = MustParseTheory(kNullCycleTheory, &syms);
  Theory normal = Normalize(raw, &syms);
  Result<ExpansionResult> ex = Expand(normal, &syms);
  ASSERT_TRUE(ex.ok()) << ex.status().message();
  EXPECT_TRUE(ex.value().complete);
  EXPECT_GT(ex.value().theory.size(), normal.size());
  // Closure: every rule is either guarded or Datalog (no new existential
  // rules are created).
  size_t existential = 0;
  for (const Rule& r : ex.value().theory.rules()) {
    if (!r.EVars().empty()) {
      ++existential;
      EXPECT_TRUE(IsGuardedRule(r));
    }
  }
  EXPECT_EQ(existential, 1u);
}

TEST(ExpandTest, RejectsNonNormalInput) {
  SymbolTable syms;
  Theory raw = MustParseTheory(kNullCycleTheory, &syms);
  EXPECT_FALSE(Expand(raw, &syms).ok());  // Multi-atom head.
}

TEST(RewriteFgTest, OutputIsNearlyGuarded) {
  SymbolTable syms;
  Theory normal = Normalize(MustParseTheory(kNullCycleTheory, &syms), &syms);
  Result<RewriteResult> rew = RewriteFgToNearlyGuarded(normal, &syms);
  ASSERT_TRUE(rew.ok()) << rew.status().message();
  EXPECT_TRUE(rew.value().complete);
  EXPECT_TRUE(Classify(rew.value().theory).nearly_guarded);
}

TEST(RewriteFgTest, Theorem1NullCycleAnswersPreserved) {
  SymbolTable syms;
  Theory raw = MustParseTheory(kNullCycleTheory, &syms);
  Theory normal = Normalize(raw, &syms);
  Result<RewriteResult> rew = RewriteFgToNearlyGuarded(normal, &syms);
  ASSERT_TRUE(rew.ok()) << rew.status().message();
  Database db = ParseDatabase("a(c). a(d).", &syms).value();
  RelationId p = syms.Relation("p");
  std::set<std::vector<Term>> original = ChaseAnswers(raw, db, p, &syms);
  std::set<std::vector<Term>> normalized = ChaseAnswers(normal, db, p, &syms);
  std::set<std::vector<Term>> rewritten =
      ChaseAnswers(rew.value().theory, db, p, &syms);
  // The cycle closes only through nulls: p(c) and p(d) hold.
  std::set<std::vector<Term>> expected = {{syms.Constant("c")},
                                          {syms.Constant("d")}};
  EXPECT_EQ(original, expected);
  EXPECT_EQ(normalized, expected);
  EXPECT_EQ(rewritten, expected);
}

TEST(RewriteFgTest, Theorem1RunningExample) {
  SymbolTable syms;
  Theory raw = MustParseTheory(R"(
    publication(X) -> exists K1, K2. keywords(X, K1, K2).
    keywords(X, K1, K2) -> hastopic(X, K1).
    hastopic(X, Z), hasauthor(X, U), hasauthor(Y, U), hastopic(Y, Z2),
      scientific(Z2), citedin(Y, X) -> scientific(Z).
    hasauthor(X, Y), hastopic(X, Z), scientific(Z) -> q(Y).
  )",
                               &syms);
  Theory normal = Normalize(raw, &syms);
  ExpansionOptions opts;
  opts.max_rules = 200000;
  Result<RewriteResult> rew = RewriteFgToNearlyGuarded(normal, &syms, opts);
  ASSERT_TRUE(rew.ok()) << rew.status().message();
  EXPECT_TRUE(rew.value().complete);
  Database db = ParseDatabase(R"(
    publication(p1). publication(p2). citedin(p1, p2).
    hasauthor(p1, a1). hasauthor(p2, a1). hasauthor(p2, a2).
    hastopic(p1, t1). scientific(t1).
  )",
                              &syms)
                    .value();
  RelationId q = syms.Relation("q");
  std::set<std::vector<Term>> original = ChaseAnswers(raw, db, q, &syms);
  ChaseOptions big;
  big.max_steps = 5000000;
  big.max_atoms = 5000000;
  std::set<std::vector<Term>> rewritten =
      ChaseAnswers(rew.value().theory, db, q, &syms, big);
  EXPECT_EQ(original, rewritten);
  EXPECT_EQ(original.size(), 2u);
}

TEST(RewriteFgTest, NoFalsePositivesOnCycleFreeDatabase) {
  SymbolTable syms;
  Theory normal = Normalize(MustParseTheory(kNullCycleTheory, &syms), &syms);
  Result<RewriteResult> rew = RewriteFgToNearlyGuarded(normal, &syms);
  ASSERT_TRUE(rew.ok());
  // r-chain with no cycle, no a-facts: no p answers.
  Database db = ParseDatabase("r(u, v). r(v, w).", &syms).value();
  RelationId p = syms.Relation("p");
  EXPECT_TRUE(ChaseAnswers(rew.value().theory, db, p, &syms).empty());
}

TEST(RewriteFgTest, ConstantCyclesStillWork) {
  SymbolTable syms;
  Theory normal = Normalize(MustParseTheory(kNullCycleTheory, &syms), &syms);
  Result<RewriteResult> rew = RewriteFgToNearlyGuarded(normal, &syms);
  ASSERT_TRUE(rew.ok());
  // A cycle over constants: handled by the acdom-guarded original rule.
  Database db = ParseDatabase("r(u, v). r(v, w). r(w, u).", &syms).value();
  RelationId p = syms.Relation("p");
  std::set<std::vector<Term>> expected = {
      {syms.Constant("u")}, {syms.Constant("v")}, {syms.Constant("w")}};
  EXPECT_EQ(ChaseAnswers(rew.value().theory, db, p, &syms), expected);
}

TEST(RewriteNfgTest, Proposition4TransitiveClosureMix) {
  // Nearly frontier-guarded: a frontier-guarded existential part plus a
  // safe transitive-closure part (not frontier-guarded).
  SymbolTable syms2;
  Theory theory = MustParseTheory(R"(
    e(X, Y) -> t(X, Y).
    e(X, Y), t(Y, Z) -> t(X, Z).
    t(X, Y) -> exists W. w(Y, W).
  )",
                                  &syms2);
  Classification c = Classify(theory);
  ASSERT_TRUE(c.nearly_frontier_guarded);
  ASSERT_FALSE(c.frontier_guarded);
  Result<RewriteResult> rew = RewriteNfgToNearlyGuarded(theory, &syms2);
  ASSERT_TRUE(rew.ok()) << rew.status().message();
  EXPECT_TRUE(Classify(rew.value().theory).nearly_guarded);
  Database db = ParseDatabase("e(a, b). e(b, c).", &syms2).value();
  RelationId t = syms2.Relation("t");
  EXPECT_EQ(ChaseAnswers(theory, db, t, &syms2),
            ChaseAnswers(rew.value().theory, db, t, &syms2));
}

TEST(AcdomTest, Proposition5EliminatesBuiltin) {
  SymbolTable syms;
  // A nearly guarded theory using acdom.
  Theory theory = MustParseTheory(R"(
    e(X, Y), acdom(X), acdom(Y) -> t(X, Y).
    t(X, Y), t(Y, Z), acdom(X), acdom(Y), acdom(Z) -> t(X, Z).
  )",
                                  &syms);
  AcdomAxiomatization star = AxiomatizeAcdom(theory, &syms);
  // The starred theory mentions acdom only through acdom*.
  RelationId acdom = AcdomRelation(&syms);
  for (const Rule& r : star.theory.rules()) {
    for (const Literal& l : r.body) EXPECT_NE(l.atom.pred, acdom);
  }
  Database db = ParseDatabase("e(a, b). e(b, c).", &syms).value();
  RelationId t = syms.Relation("t");
  std::set<std::vector<Term>> with_builtin =
      ChaseAnswers(theory, db, t, &syms);
  ChaseOptions no_builtin;
  no_builtin.populate_acdom = false;
  std::set<std::vector<Term>> with_axioms = ChaseAnswers(
      star.theory, db, star.Starred(t), &syms, no_builtin);
  EXPECT_EQ(with_builtin, with_axioms);
  EXPECT_EQ(with_builtin.size(), 3u);
}

TEST(AcdomTest, TheoryConstantsGetAcdomStarFacts) {
  SymbolTable syms;
  Theory theory = MustParseTheory("-> r(c).\nacdom(X) -> s(X).", &syms);
  AcdomAxiomatization star = AxiomatizeAcdom(theory, &syms);
  bool has_const_fact = false;
  for (const Rule& r : star.theory.rules()) {
    if (r.IsFact() &&
        r.head[0].pred == syms.Relation(std::string(kAcdomName) + "*")) {
      has_const_fact = true;
    }
  }
  EXPECT_TRUE(has_const_fact);
}

}  // namespace
}  // namespace gerel
