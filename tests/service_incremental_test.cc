// Property tests for incremental assertion: a PreparedKb that has been
// extended by Asserts must agree with a PreparedKb prepared fresh on the
// final database, and (when complete) with the one-shot pipeline.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/parser.h"
#include "service/prepared_kb.h"
#include "testing/random_theories.h"
#include "transform/pipeline.h"

namespace gerel {
namespace {

using testing::RandomParams;
using testing::RandomTheoryGen;

// One atomic CQ per theory relation: p(X1..Xk) -> out_p(X1..Xk).
std::vector<Rule> RelationQueries(const Theory& theory, SymbolTable* syms) {
  std::vector<Rule> queries;
  std::vector<bool> seen;
  for (const Rule& r : theory.rules()) {
    for (const Atom& a : r.head) {
      if (a.pred >= seen.size()) seen.resize(a.pred + 1, false);
      if (seen[a.pred]) continue;
      seen[a.pred] = true;
      std::vector<Term> args;
      for (int i = 0; i < syms->RelationArity(a.pred); ++i) {
        args.push_back(syms->Variable("Q" + std::to_string(i)));
      }
      RelationId out =
          syms->Relation("out_" + syms->RelationName(a.pred),
                         static_cast<int>(args.size()));
      queries.push_back(
          Rule::Positive({Atom(a.pred, args)}, {Atom(out, args)}));
    }
  }
  return queries;
}

// Splits db into an initial prefix and the remaining atoms.
void Split(const Database& db, Database* initial, std::vector<Atom>* rest) {
  size_t half = db.size() / 2;
  for (size_t i = 0; i < db.size(); ++i) {
    if (i < half) {
      initial->Insert(db.atom(i));
    } else {
      rest->push_back(db.atom(i));
    }
  }
}

class ServiceIncrementalTest : public ::testing::TestWithParam<unsigned> {};

// Datalog theories (no existentials): the prepared route is complete, so
// the incrementally extended KB, a fresh KB over the final database, and
// the one-shot pipeline must agree exactly.
TEST_P(ServiceIncrementalTest, DatalogThreeWayEquivalence) {
  SymbolTable syms;
  RandomTheoryGen gen(GetParam(), &syms);
  RandomParams params;
  params.existential_prob = 0.0;
  Theory theory = gen.Theory_(params);
  Database db = gen.Database_(/*num_atoms=*/12, /*num_constants=*/4);
  Database initial;
  std::vector<Atom> rest;
  Split(db, &initial, &rest);

  Result<std::unique_ptr<PreparedKb>> kb =
      PreparedKb::Prepare(theory, initial, &syms);
  ASSERT_TRUE(kb.ok()) << kb.status().message();
  EXPECT_EQ(kb.value()->mode(), PreparedKb::Mode::kDatalog);
  // Assert the remainder one batch at a time (two batches).
  size_t mid = rest.size() / 2;
  std::vector<Atom> batch1(rest.begin(), rest.begin() + mid);
  std::vector<Atom> batch2(rest.begin() + mid, rest.end());
  if (!batch1.empty()) {
    ASSERT_TRUE(kb.value()->Assert(batch1).ok());
  }
  if (!batch2.empty()) {
    ASSERT_TRUE(kb.value()->Assert(batch2).ok());
  }

  Result<std::unique_ptr<PreparedKb>> fresh =
      PreparedKb::Prepare(theory, db, &syms);
  ASSERT_TRUE(fresh.ok()) << fresh.status().message();

  for (const Rule& cq : RelationQueries(theory, &syms)) {
    Result<PreparedQueryResult> incr = kb.value()->Query(cq);
    ASSERT_TRUE(incr.ok()) << incr.status().message();
    Result<PreparedQueryResult> full = fresh.value()->Query(cq);
    ASSERT_TRUE(full.ok()) << full.status().message();
    EXPECT_TRUE(incr.value().complete);
    EXPECT_EQ(incr.value().answers, full.value().answers);
    Result<KbQueryResult> oneshot = AnswerKbQuery(theory, cq, db, &syms);
    ASSERT_TRUE(oneshot.ok()) << oneshot.status().message();
    EXPECT_EQ(incr.value().answers, oneshot.value().answers);
  }
}

// Guarded existential theories: the incrementally extended KB must agree
// with a fresh prepare, and its answers must be a sound subset of the
// one-shot pipeline's (equal when certified complete).
TEST_P(ServiceIncrementalTest, GuardedIncrementalMatchesFresh) {
  SymbolTable syms;
  RandomTheoryGen gen(GetParam() + 1000, &syms);
  RandomParams params;
  params.num_relations = 3;
  params.num_rules = 3;
  params.max_body_atoms = 2;
  params.num_vars = 3;
  params.existential_prob = 0.4;
  params.force_guarded = true;
  Theory theory = gen.Theory_(params);
  Database db = gen.Database_(/*num_atoms=*/8, /*num_constants=*/3);
  Database initial;
  std::vector<Atom> rest;
  Split(db, &initial, &rest);

  // Keep the saturation tractable on adversarial seeds; completeness is
  // tracked per query, and the fresh KB runs under the same caps.
  PreparedKbOptions options;
  options.pipeline.saturation.max_rules = 20000;
  Result<std::unique_ptr<PreparedKb>> kb =
      PreparedKb::Prepare(theory, initial, &syms, options);
  ASSERT_TRUE(kb.ok()) << kb.status().message();
  for (const Atom& fact : rest) {
    ASSERT_TRUE(kb.value()->Assert({fact}).ok());
  }
  Result<std::unique_ptr<PreparedKb>> fresh =
      PreparedKb::Prepare(theory, db, &syms, options);
  ASSERT_TRUE(fresh.ok()) << fresh.status().message();

  for (const Rule& cq : RelationQueries(theory, &syms)) {
    Result<PreparedQueryResult> incr = kb.value()->Query(cq);
    ASSERT_TRUE(incr.ok()) << incr.status().message();
    Result<PreparedQueryResult> full = fresh.value()->Query(cq);
    ASSERT_TRUE(full.ok()) << full.status().message();
    EXPECT_EQ(incr.value().answers, full.value().answers);
    EXPECT_EQ(incr.value().complete, full.value().complete);
    Result<KbQueryResult> oneshot =
        AnswerKbQuery(theory, cq, db, &syms, options.pipeline);
    if (!oneshot.ok()) continue;  // e.g. ungroundable under caps
    for (const std::vector<Term>& tuple : incr.value().answers) {
      EXPECT_TRUE(oneshot.value().answers.count(tuple))
          << "unsound answer for seed " << GetParam();
    }
    if (incr.value().complete && oneshot.value().complete) {
      EXPECT_EQ(incr.value().answers, oneshot.value().answers);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServiceIncrementalTest,
                         ::testing::Range(0u, 12u));

}  // namespace
}  // namespace gerel
