// Tests for chase trees (paper §4, Defs 5–6, Prop 2).
#include <gtest/gtest.h>

#include "chase/chase_tree.h"
#include "core/normalize.h"
#include "core/parser.h"

namespace gerel {
namespace {

const char* kRunningExample = R"(
  publication(X) -> exists K1, K2. keywords(X, K1, K2).
  keywords(X, K1, K2) -> hastopic(X, K1).
  hastopic(X, Z), hasauthor(X, U), hasauthor(Y, U), hastopic(Y, Z2),
    scientific(Z2), citedin(Y, X) -> scientific(Z).
  hasauthor(X, Y), hastopic(X, Z), scientific(Z) -> q(Y).
)";

const char* kRunningDatabase = R"(
  publication(p1). publication(p2). citedin(p1, p2).
  hasauthor(p1, a1). hasauthor(p2, a1). hasauthor(p2, a2).
  hastopic(p1, t1). scientific(t1).
)";

TEST(ChaseTreeTest, RunningExampleTreeShape) {
  SymbolTable syms;
  Theory t = ParseTheory(kRunningExample, &syms).value();
  Database db = ParseDatabase(kRunningDatabase, &syms).value();
  Result<ChaseTree> tree = BuildChaseTree(t, db, &syms);
  ASSERT_TRUE(tree.ok()) << tree.status().message();
  // Root plus one child per keywords inference (p1 and p2).
  EXPECT_EQ(tree.value().nodes.size(), 3u);
  EXPECT_EQ(tree.value().nodes[0].children.size(), 2u);
  // The derived hastopic/scientific atoms land inside the null nodes; the
  // q answers land in the root.
  RelationId q = syms.Relation("q");
  size_t root_q = 0;
  for (const Atom& a : tree.value().nodes[0].atoms) {
    if (a.pred == q) ++root_q;
  }
  EXPECT_EQ(root_q, 2u);
}

TEST(ChaseTreeTest, Prop2PropertiesHold) {
  SymbolTable syms;
  Theory t = ParseTheory(kRunningExample, &syms).value();
  Database db = ParseDatabase(kRunningDatabase, &syms).value();
  Result<ChaseTree> tree = BuildChaseTree(t, db, &syms);
  ASSERT_TRUE(tree.ok());
  Status s = CheckChaseTreeProperties(tree.value(), t, db);
  EXPECT_TRUE(s.ok()) << s.message();
}

TEST(ChaseTreeTest, NonRootNodesHaveAtMostMaxArityTerms) {
  SymbolTable syms;
  Theory t = ParseTheory(kRunningExample, &syms).value();
  Database db = ParseDatabase(kRunningDatabase, &syms).value();
  ChaseTree tree = BuildChaseTree(t, db, &syms).value();
  for (size_t i = 1; i < tree.nodes.size(); ++i) {
    EXPECT_LE(tree.NodeTerms(i).size(), t.MaxArity()) << "node " << i;
  }
}

TEST(ChaseTreeTest, DeepTreeFromChainedExistentials) {
  SymbolTable syms;
  // Guarded chain: each null spawns the next; tree is a path.
  Theory t = ParseTheory(R"(
    a(X) -> exists Y. r1(X, Y).
    r1(X, Y) -> exists Z. r2(Y, Z).
    r2(X, Y) -> exists Z. r3(Y, Z).
  )",
                         &syms)
                 .value();
  Database db = ParseDatabase("a(c).", &syms).value();
  ChaseTree tree = BuildChaseTree(t, db, &syms).value();
  ASSERT_EQ(tree.nodes.size(), 4u);
  EXPECT_EQ(tree.Depth(3), 3u);
  Status s = CheckChaseTreeProperties(tree, t, db);
  EXPECT_TRUE(s.ok()) << s.message();
}

TEST(ChaseTreeTest, DatalogAtomsOverRootTermsStayInRoot) {
  SymbolTable syms;
  Theory t = ParseTheory("e(X, Y) -> f(Y, X).", &syms).value();
  Database db = ParseDatabase("e(a, b).", &syms).value();
  ChaseTree tree = BuildChaseTree(t, db, &syms).value();
  EXPECT_EQ(tree.nodes.size(), 1u);
  EXPECT_EQ(tree.TotalAtoms(), db.size() + /*acdom*/ 2 + /*derived*/ 1);
}

TEST(ChaseTreeTest, FactRuleHeadsGoToRoot) {
  SymbolTable syms;
  Theory raw = ParseTheory("-> start(c).\nstart(X) -> exists Y. e(X, Y).",
                           &syms)
                   .value();
  Database db = ParseDatabase("other(d).", &syms).value();
  ChaseTree tree = BuildChaseTree(raw, db, &syms).value();
  // Root holds other(d), start(c), acdom facts; one child for e(c, _).
  ASSERT_EQ(tree.nodes.size(), 2u);
  bool root_has_start = false;
  for (const Atom& a : tree.nodes[0].atoms) {
    if (a.pred == syms.Relation("start")) root_has_start = true;
  }
  EXPECT_TRUE(root_has_start);
  Status s = CheckChaseTreeProperties(tree, raw, db);
  EXPECT_TRUE(s.ok()) << s.message();
}

TEST(ChaseTreeTest, RejectsNonNormalTheory) {
  SymbolTable syms;
  Theory t = ParseTheory("a(X) -> b(X), c(X).", &syms).value();
  Database db = ParseDatabase("a(x1).", &syms).value();
  EXPECT_FALSE(BuildChaseTree(t, db, &syms).ok());
}

TEST(ChaseTreeTest, RejectsNonFrontierGuardedTheory) {
  SymbolTable syms;
  Theory t = ParseTheory("e(X, Y), e(Y, Z) -> t(X, Z).", &syms).value();
  Database db = ParseDatabase("e(a, b).", &syms).value();
  EXPECT_FALSE(BuildChaseTree(t, db, &syms).ok());
}

TEST(ChaseTreeTest, RejectsNonTerminatingChase) {
  SymbolTable syms;
  Theory t =
      ParseTheory("r(X) -> exists Y. e(X, Y).\ne(X, Y) -> r(Y).", &syms)
          .value();
  Database db = ParseDatabase("r(c).", &syms).value();
  ChaseOptions opts;
  opts.max_steps = 20;
  EXPECT_FALSE(BuildChaseTree(t, db, &syms, opts).ok());
}

TEST(ChaseTreeTest, NormalizedRunningExampleAlsoHasTreeChase) {
  SymbolTable syms;
  Theory t = ParseTheory(kRunningExample, &syms).value();
  Theory normal = Normalize(t, &syms);
  Database db = ParseDatabase(kRunningDatabase, &syms).value();
  Result<ChaseTree> tree = BuildChaseTree(normal, db, &syms);
  ASSERT_TRUE(tree.ok()) << tree.status().message();
  Status s = CheckChaseTreeProperties(tree.value(), normal, db);
  EXPECT_TRUE(s.ok()) << s.message();
}

}  // namespace
}  // namespace gerel
