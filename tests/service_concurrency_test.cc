// Concurrency hammer for the serving layer: many reader threads Query
// while a writer thread Asserts. Run under -DGEREL_SANITIZE=thread to
// verify the locking discipline (shared lock for Query, exclusive for
// Assert, internally locked cache and stats).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/parser.h"
#include "service/prepared_kb.h"
#include "transform/pipeline.h"

namespace gerel {
namespace {

constexpr int kReaders = 4;
constexpr int kQueriesPerReader = 200;
constexpr int kAsserts = 24;

TEST(ServiceConcurrencyTest, ConcurrentQueriesAndAsserts) {
  SymbolTable syms;
  Theory theory = ParseTheory(R"(
    e(X, Y) -> t(X, Y).
    e(X, Y), t(Y, Z) -> t(X, Z).
  )",
                              &syms)
                      .value();
  Database initial = ParseDatabase("e(n0, n1). e(n1, n2).", &syms).value();

  // Everything the threads touch is built up front: the symbol table is
  // not thread-safe, so no parsing or interning happens once they start.
  std::vector<Atom> facts;
  for (int i = 2; i < 2 + kAsserts; ++i) {
    Term from = syms.Constant("n" + std::to_string(i));
    Term to = syms.Constant("n" + std::to_string(i + 1));
    facts.push_back(Atom(syms.Relation("e", 2), {from, to}));
  }
  Rule cq = ParseRule("t(U, V) -> q(U, V)", &syms).value();
  Rule cq_edge = ParseRule("e(U, V) -> q2(U, V)", &syms).value();

  auto kb = PreparedKb::Prepare(theory, initial, &syms);
  ASSERT_TRUE(kb.ok()) << kb.status().message();
  PreparedKb* raw = kb.value().get();
  std::set<std::vector<Term>> at_start = raw->Query(cq).value().answers;

  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      size_t last_size = 0;
      for (int i = 0; i < kQueriesPerReader; ++i) {
        const Rule& query = (r + i) % 3 == 0 ? cq_edge : cq;
        Result<PreparedQueryResult> got = raw->Query(query);
        if (!got.ok()) {
          ++violations;
          continue;
        }
        if (&query == &cq) {
          // The KB only grows, so answer sets are monotone per query.
          if (got.value().answers.size() < last_size) ++violations;
          last_size = got.value().answers.size();
          for (const std::vector<Term>& tuple : at_start) {
            if (!got.value().answers.count(tuple)) ++violations;
          }
        }
      }
    });
  }
  std::thread writer([&] {
    for (const Atom& fact : facts) {
      Result<AssertResult> out = raw->Assert({fact});
      if (!out.ok()) ++violations;
      std::this_thread::yield();
    }
  });
  for (std::thread& t : readers) t.join();
  writer.join();
  EXPECT_EQ(violations.load(), 0);

  // Steady state: the hammered KB agrees with a fresh prepare over the
  // final database.
  Database full = initial;
  for (const Atom& fact : facts) full.Insert(fact);
  auto fresh = PreparedKb::Prepare(theory, full, &syms);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(raw->Query(cq).value().answers,
            fresh.value()->Query(cq).value().answers);
  ServiceStats stats = raw->stats();
  EXPECT_EQ(stats.asserts, static_cast<uint64_t>(kAsserts));
  EXPECT_GE(stats.queries,
            static_cast<uint64_t>(kReaders * kQueriesPerReader));
}

TEST(ServiceConcurrencyTest, ParallelEvaluationInsidePreparedKb) {
  SymbolTable syms;
  Theory theory = ParseTheory(R"(
    e(X, Y) -> t(X, Y).
    e(X, Y), t(Y, Z) -> t(X, Z).
  )",
                              &syms)
                      .value();
  Database db;
  RelationId e = syms.Relation("e", 2);
  std::vector<Term> nodes;
  for (int i = 0; i <= 60; ++i) {
    nodes.push_back(syms.Constant("m" + std::to_string(i)));
  }
  for (int i = 0; i < 60; ++i) {
    db.Insert(Atom(e, {nodes[i], nodes[i + 1]}));
  }
  PreparedKbOptions options;
  options.datalog.num_threads = 4;
  auto kb = PreparedKb::Prepare(theory, db, &syms, options);
  ASSERT_TRUE(kb.ok()) << kb.status().message();
  Rule cq = ParseRule("t(U, V) -> q(U, V)", &syms).value();
  EXPECT_EQ(kb.value()->Query(cq).value().answers.size(),
            60u * 61u / 2u);
  // Incremental extension reuses the same worker pool.
  Term extra = nodes[0];
  ASSERT_TRUE(
      kb.value()->Assert({Atom(e, {nodes[60], extra})}).ok());
  EXPECT_EQ(kb.value()->Query(cq).value().answers.size(), 61u * 61u);
}

}  // namespace
}  // namespace gerel
