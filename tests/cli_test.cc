// End-to-end tests of the `gerel` command-line tool against the sample
// programs in data/. The binary and data paths come from CMake.
#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cstdio>
#include <string>

#ifndef GEREL_CLI_PATH
#define GEREL_CLI_PATH "gerel"
#endif
#ifndef GEREL_DATA_DIR
#define GEREL_DATA_DIR "data"
#endif

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved.
};

CommandResult RunCli(const std::string& args) {
  std::string command =
      std::string(GEREL_CLI_PATH) + " " + args + " 2>&1";
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buffer;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string Data(const char* name) {
  return std::string(GEREL_DATA_DIR) + "/" + name;
}

// As RunCli, but feeds `input` to the CLI's stdin (for `serve`).
CommandResult RunCliWithInput(const std::string& input,
                              const std::string& args) {
  std::string command = "printf '%s' '" + input + "' | " +
                        std::string(GEREL_CLI_PATH) + " " + args + " 2>&1";
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buffer;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

TEST(CliTest, ClassifyPublications) {
  CommandResult r = RunCli("classify " + Data("publications.gerel"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("frontier-guarded:         yes"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("weakly guarded:           no"),
            std::string::npos)
      << r.output;
}

TEST(CliTest, AnswerPublicationsViaChase) {
  CommandResult r =
      RunCli("answer " + Data("publications.gerel") + " q --route=chase");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("q(a1)"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("q(a2)"), std::string::npos) << r.output;
}

TEST(CliTest, AnswerTransitiveClosureBothRoutes) {
  for (const char* route : {"--route=chase", "--route=datalog"}) {
    CommandResult r = RunCli("answer " + Data("transitive_closure.gerel") +
                             " t " + route);
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("t(a, d)"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("6 answers"), std::string::npos) << r.output;
  }
}

TEST(CliTest, ChasePrintsFigure2Atoms) {
  CommandResult r = RunCli("chase " + Data("publications.gerel"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("keywords(p1"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("saturated=1"), std::string::npos) << r.output;
}

TEST(CliTest, TranslateExample7ToDatalog) {
  CommandResult r = RunCli("translate g2dat " + Data("example7.gerel"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // σ12 must appear in the printed Datalog program (variable names are
  // canonical, so just look for the co-occurrence pattern).
  EXPECT_NE(r.output.find("-> d("), std::string::npos) << r.output;
}

TEST(CliTest, NormalizeTransitiveClosureIsIdentityShaped) {
  CommandResult r =
      RunCli("normalize " + Data("transitive_closure.gerel"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("t(X, Z)"), std::string::npos) << r.output;
}

TEST(CliTest, BoundedChaseExitsWithCode2) {
  CommandResult r = RunCli("chase " + Data("weakly_guarded_tc.gerel") +
                           " --max-steps=50");
  EXPECT_EQ(r.exit_code, 2) << r.output;  // Unsaturated.
  EXPECT_NE(r.output.find("saturated=0"), std::string::npos) << r.output;
}

TEST(CliTest, DotOutputsAreWellFormed) {
  for (const char* mode : {"preds", "positions", "tree"}) {
    CommandResult r = RunCli(std::string("dot ") + mode + " " +
                             Data("publications.gerel"));
    EXPECT_EQ(r.exit_code, 0) << mode << ": " << r.output;
    EXPECT_EQ(r.output.find("digraph"), 0u) << mode << ": " << r.output;
    EXPECT_NE(r.output.find("}"), std::string::npos);
  }
}

TEST(CliTest, TreeCommandVerifiesProp2) {
  CommandResult r = RunCli("tree " + Data("publications.gerel"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("Prop 2 (P1)-(P3): hold"), std::string::npos)
      << r.output;
}

TEST(CliTest, AnswerExitsWith3WhenTranslationHitsACap) {
  CommandResult r = RunCli("answer " + Data("transitive_closure.gerel") +
                           " t --max-rules=1");
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("may be incomplete"), std::string::npos)
      << r.output;
}

TEST(CliTest, ServeAnswersQueriesAndAsserts) {
  CommandResult r = RunCliWithInput(
      "query t(X, Y) -> q(X, Y)\n"
      "assert e(d, f)\n"
      "query t(X, Y) -> q(X, Y)\n"
      "stats\n"
      "quit\n",
      "serve " + Data("transitive_closure.gerel"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("prepared: mode=datalog"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("6 answers (complete)"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("asserted 1 new"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("10 answers (complete)"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("delta asserts:       1"), std::string::npos)
      << r.output;
}

TEST(CliTest, ServeExitsWith3OnIncompleteAnswers) {
  // MFA-refuted: the planner cannot certify the theory, so serve takes
  // the translation pipeline and succ-queries see the null witnesses.
  CommandResult r = RunCliWithInput(
      "query succ(U, V) -> q(U)\nquit\n",
      "serve " + Data("nonterminating.gerel"));
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("possibly incomplete"), std::string::npos)
      << r.output;
}

TEST(CliTest, ServeRejectsBadCommandsWithExit1) {
  CommandResult r = RunCliWithInput(
      "frobnicate\nquit\n", "serve " + Data("transitive_closure.gerel"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("unknown command"), std::string::npos) << r.output;
}

TEST(CliTest, ServeMalformedQueryIsACleanError) {
  // Parse errors and shape errors (negated CQ body) must come back as
  // error lines with exit 1 — never crash the session.
  CommandResult r = RunCliWithInput(
      "query t(((\n"
      "query e(X, Y), not t(X, Y) -> q(X, Y)\n"
      "query t(X, Y) -> q(X, Y)\n"
      "quit\n",
      "serve " + Data("transitive_closure.gerel"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("error:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("negation-free"), std::string::npos) << r.output;
  // The session keeps serving after errors.
  EXPECT_NE(r.output.find("6 answers (complete)"), std::string::npos)
      << r.output;
}

TEST(CliTest, ServeAssertIntoNegationRematerializes) {
  // Asserting into a stratified-negation program must rematerialize
  // (never delta-extend): the new edge *retracts* separated-pairs.
  CommandResult r = RunCliWithInput(
      "query separated(X, Y) -> q(X, Y)\n"
      "assert e(b, c)\n"
      "query separated(X, Y) -> q(X, Y)\n"
      "quit\n",
      "serve " + Data("stratified_sep.gerel"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("mode=datalog"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("8 answers (complete)"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("(rematerialized)"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("6 answers (complete)"), std::string::npos)
      << r.output;
  // q(a, c) holds before the assert and is retracted by it: it must
  // appear exactly once across the two answer blocks.
  size_t first = r.output.find("q(a, c)");
  ASSERT_NE(first, std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("q(a, c)", first + 1), std::string::npos)
      << r.output;
}

TEST(CliTest, ServeAssertRejectsNonGroundFacts) {
  CommandResult r = RunCliWithInput(
      "assert e(X, b)\nquit\n",
      "serve " + Data("transitive_closure.gerel"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("fact contains variables"), std::string::npos)
      << r.output;
}

TEST(CliTest, ServeCompletenessCertificateLines) {
  // Both certificate verdicts in one session on an MFA-refuted theory
  // (pipeline mode): edge's positions can never hold labeled nulls
  // (certificate holds → "(complete)"), while succ holds invented
  // successors, so its answers are sound but possibly incomplete —
  // which is exactly what exit code 3 certifies.
  CommandResult r = RunCliWithInput(
      "query edge(U, V) -> q(U)\n"
      "query succ(U, V) -> q(U)\n"
      "quit\n",
      "serve " + Data("nonterminating.gerel"));
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("3 answers (complete)"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("(sound, possibly incomplete)"), std::string::npos)
      << r.output;
}

// Substitutes every "{F}" in `expected` with `file` — byte-for-byte
// golden outputs stay readable while the data dir stays configurable.
std::string WithFile(std::string expected, const std::string& file) {
  size_t at = 0;
  while ((at = expected.find("{F}", at)) != std::string::npos) {
    expected.replace(at, 3, file);
    at += file.size();
  }
  return expected;
}

// Writes a deliberately malformed program and returns its path. The
// path is per-process: ctest runs these cases as separate parallel
// processes, and a shared fixed path races (truncate-while-read).
std::string MalformedFile() {
  std::string path = "/tmp/gerel_cli_malformed_" +
                     std::to_string(getpid()) + ".gerel";
  FILE* f = fopen(path.c_str(), "w");
  fputs("e(X, Y) -> t(Y.\n", f);
  fclose(f);
  return path;
}

TEST(CliTest, CheckJsonIsByteExact) {
  std::string file = Data("stratified_sep.gerel");
  CommandResult r = RunCli("check --json " + file);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output, WithFile(
      "{\n"
      "  \"file\": \"{F}\",\n"
      "  \"classification\": {\"datalog\": false, \"guarded\": false, "
      "\"frontier_guarded\": false, \"weakly_guarded\": true, "
      "\"weakly_frontier_guarded\": true, \"nearly_guarded\": true, "
      "\"nearly_frontier_guarded\": true},\n"
      "  \"extended_classification\": {\"linear\": false, "
      "\"frontier_one\": false, \"joinless\": false, "
      "\"domain_restricted\": false, \"shy\": true},\n"
      "  \"termination\": {\"certificate\": \"existential-free\", "
      "\"terminating\": true},\n"
      "  \"diagnostics\": [],\n"
      "  \"errors\": 0, \"warnings\": 0, \"notes\": 0\n"
      "}\n",
      file));
}

TEST(CliTest, CheckJsonIsDeterministicAcrossRunsAndThreads) {
  // The analyzer is single-threaded by construction (certificates must
  // be byte-deterministic), so --threads is accepted and ignored.
  std::string file = Data("diagnostics_demo.gerel");
  CommandResult a = RunCli("check --json " + file);
  CommandResult b = RunCli("check --json " + file);
  CommandResult c = RunCli("check --json --threads=8 " + file);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.output, c.output);
  EXPECT_EQ(a.exit_code, c.exit_code);
}

TEST(CliTest, CheckExplainOnDemoIsByteExact) {
  std::string file = Data("diagnostics_demo.gerel");
  CommandResult r = RunCli("check --explain " + file);
  EXPECT_EQ(r.exit_code, 1) << r.output;  // Two errors in the demo.
  // Spot-check the span-accurate pieces individually for a readable
  // failure, then pin the whole transcript byte-for-byte.
  EXPECT_NE(r.output.find(file + ":33:14: error[GR040]"), std::string::npos);
  std::string expected = WithFile(
      R"x({F}:6:1: warning[GR050]: theory is neither weakly nor jointly acyclic: the oblivious chase may diverge on some database
  t(X) -> exists Y. e(X, Y).
  ^~~~~~~~~~~~~~~~~~~~~~~~~
  note: guardedness guarantees decidable query answering, not chase termination; use the bounded chase (--max-steps) or the Datalog translations
{F}:6:1: warning[GR071]: theory is not model-faithfully acyclic: the critical-instance chase built the cyclic Skolem path r0.Y -> r0.Y
  t(X) -> exists Y. e(X, Y).
  ^~~~~~~~~~~~~~~~~~~~~~~~~
  note: a null of r0.Y was derived on top of an earlier one; no acyclicity-based termination certificate exists
  note: render the dependency graph with `gerel check --dot`
{F}:11:1: warning[GR010]: rule 2 is not weakly frontier-guarded: no positive body atom contains its unsafe frontier variables {X, Z}
  e(X, Y), e(Z, Y) -> t(X), t(Z).
  ^~~~~~~~~~~~~~~~~~~~~~~~~~~~~~
  note: X may be bound to a labeled null during the chase: every positive occurrence (e[0]) is an affected position (Def 2)
  note: Z may be bound to a labeled null during the chase: every positive occurrence (e[0]) is an affected position (Def 2)
  note: the serving pipeline (Thm 2 + §7) requires a weakly frontier-guarded theory
{F}:15:1: warning[GR001]: rule 3 is not weakly guarded: no positive body atom contains its unsafe variables {X, Y, Z}
  e(X, Y), e(Y, Z) -> u(X).
  ^~~~~~~~~~~~~~~~~~~~~~~~
  note: X may be bound to a labeled null during the chase: every positive occurrence (e[0]) is an affected position (Def 2)
  note: the rule is still weakly frontier-guarded, so query answering remains supported (Thm 2)
{F}:19:1: warning[GR020]: predicate 'dead' is unreachable: no fact or applicable rule ever derives it
  dead(X) -> s(X).
  ^~~~~~~
  note: 'dead' never occurs in a rule head and the database has no 'dead' facts
{F}:19:1: warning[GR020]: predicate 's' is unreachable: no fact or applicable rule ever derives it
  dead(X) -> s(X).
  ^~~~~~~~~~~~~~~
  note: every rule deriving 's' depends on an unreachable predicate
{F}:22:19: warning[GR060]: existential variable U is declared but never used in the head
  p(X) -> exists W, U. q(X, W).
                    ^
  note: evars(σ) is recomputed from occurrences (§2); this declaration is dropped silently
{F}:25:1: warning[GR010]: rule 6 is not weakly frontier-guarded: no positive body atom contains its unsafe frontier variables {X, Z}
  e(X, Y), e(Z, Y) -> t(X), t(Z).
  ^~~~~~~~~~~~~~~~~~~~~~~~~~~~~~
  note: X may be bound to a labeled null during the chase: every positive occurrence (e[0]) is an affected position (Def 2)
  note: Z may be bound to a labeled null during the chase: every positive occurrence (e[0]) is an affected position (Def 2)
  note: the serving pipeline (Thm 2 + §7) requires a weakly frontier-guarded theory
{F}:25:1: warning[GR021]: rule 6 is subsumed by rule 2: whenever it fires, rule 2 derives the same atoms
  e(X, Y), e(Z, Y) -> t(X), t(Z).
  ^~~~~~~~~~~~~~~~~~~~~~~~~~~~~~
  note: subsuming rule: e(X, Y), e(Z, Y) -> t(X), t(Z)
{F}:29:1: error[GR030]: relation 'ann' splits its positions as 1 annotation(s) + 1 argument(s) here, but as 0 annotation(s) + 2 argument(s) at its first use
  ann[c](d).
  ^~~~~~~~~
  note: the annotation transforms (Defs 17-18) require every use of a relation to partition its positions identically
{F}:33:14: error[GR040]: the program is not stratifiable: 'even' depends on its own negation
  node(X), not odd(X) -> even(X).
               ^~~~~~
  note: cycle: even -> odd -> even (the step odd -> even is through "not odd")
  note: stratified evaluation (Def 22) requires every negated dependency to point strictly downward
{F}: classification: none of the seven classes (Fig. 1)
{F}: extended: none of the extended classes
{F}: termination: refuted
{F}: explain:
  datalog: no: rule 0 (t(X) -> exists Y. e(X, Y)) has existential variables {Y}
  guarded: no: rule 2 (e(X, Y), e(Z, Y) -> t(X), t(Z)): no positive body atom contains all universal variables {X, Y, Z}
  frontier-guarded: no: rule 2 (e(X, Y), e(Z, Y) -> t(X), t(Z)): no positive body atom contains all frontier variables {X, Z}
  weakly-guarded: no: rule 2 (e(X, Y), e(Z, Y) -> t(X), t(Z)): no positive body atom contains all unsafe variables {X, Y, Z}; X may be bound to a labeled null during the chase: every positive occurrence (e[0]) is an affected position (Def 2)
  weakly-frontier-guarded: no: rule 2 (e(X, Y), e(Z, Y) -> t(X), t(Z)): no positive body atom contains all unsafe frontier variables {X, Z}; X may be bound to a labeled null during the chase: every positive occurrence (e[0]) is an affected position (Def 2)
  nearly-guarded: no: rule 2 (e(X, Y), e(Z, Y) -> t(X), t(Z)): not guarded, with unsafe variables {X, Y, Z} (Def 3 needs guarded, or safe and existential-free)
  nearly-frontier-guarded: no: rule 2 (e(X, Y), e(Z, Y) -> t(X), t(Z)): not frontier-guarded, with unsafe variables {X, Y, Z} (Def 3 needs frontier-guarded, or safe and existential-free)
  linear: no: rule 2 (e(X, Y), e(Z, Y) -> t(X), t(Z)) has 2 positive body atoms (linear allows one)
  frontier-one: no: rule 2 (e(X, Y), e(Z, Y) -> t(X), t(Z)) has frontier variables {X, Z} (frontier-one allows one)
  joinless: no: rule 2 (e(X, Y), e(Z, Y) -> t(X), t(Z)): variable Y joins two distinct positive body atoms
  domain-restricted: no: rule 1 (e(X, Y) -> t(Y)): some head atom uses part (not all, not none) of the body variables
  shy: no: rule 2 (e(X, Y), e(Z, Y) -> t(X), t(Z)): an attacked variable is joined across body atoms, or two attacked frontier variables share no body atom
{F}: 2 error(s), 9 warning(s), 0 note(s)
)x",
      file);
  EXPECT_EQ(r.output, expected);
}

TEST(CliTest, CheckDotIsByteExactAndHighlightsTheCycle) {
  // --dot replaces the report with the Skolem dependency graph; the
  // MFA-refuted demo gets its cyclic witness path highlighted.
  CommandResult r = RunCli("check --dot " + Data("diagnostics_demo.gerel"));
  EXPECT_EQ(r.exit_code, 1) << r.output;  // Diagnostics still gate exit.
  EXPECT_EQ(r.output,
            "digraph skolem {\n"
            "  rankdir=LR;\n"
            "  \"r0.Y\" [color=red, style=bold];\n"
            "  \"r5.W\";\n"
            "  \"r0.Y\" -> \"r0.Y\" [color=red, style=bold];\n"
            "}\n");
  // A certified theory renders the same graph with no highlight.
  CommandResult ok =
      RunCli("check --dot " + Data("weakly_guarded_gen.gerel"));
  EXPECT_EQ(ok.exit_code, 0) << ok.output;
  EXPECT_EQ(ok.output,
            "digraph skolem {\n"
            "  rankdir=LR;\n"
            "  \"r0.Y\";\n"
            "}\n");
}

TEST(CliTest, CheckDenyPromotesWarningsToErrors) {
  CommandResult clean = RunCli("check " + Data("stratified_sep.gerel") +
                               " --deny=GR020");
  EXPECT_EQ(clean.exit_code, 0) << clean.output;
  CommandResult r = RunCli("check " + Data("diagnostics_demo.gerel") +
                           " --deny=GR020");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("error[GR020]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("4 error(s), 7 warning(s)"), std::string::npos)
      << r.output;
}

TEST(CliTest, CheckParseErrorRendersGr000) {
  std::string file = MalformedFile();
  CommandResult r = RunCli("check " + file);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(r.output, WithFile(
      "{F}:1:15: error[GR000]: expected closing bracket\n"
      "  e(X, Y) -> t(Y.\n"
      "                ^\n",
      file));
}

TEST(CliTest, CheckMissingFileRendersGr000) {
  CommandResult r = RunCli("check /nonexistent/file.gerel");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("error[GR000]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("cannot open"), std::string::npos) << r.output;
}

TEST(CliTest, ClassifyParseErrorSharesTheDiagnosticRenderer) {
  std::string file = MalformedFile();
  CommandResult r = RunCli("classify " + file);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // Not the raw status string: the line:col + GR000 + caret form.
  EXPECT_EQ(r.output, WithFile(
      "{F}:1:15: error[GR000]: expected closing bracket\n"
      "  e(X, Y) -> t(Y.\n"
      "                ^\n",
      file));
}

// Runs a full shell command (no implicit redirection), capturing stdout.
CommandResult RunRaw(const std::string& command) {
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buffer;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

// --- Resource governance (--timeout-ms) and graceful degradation ---

TEST(CliTest, AnswerNonterminatingTheoryDegradesUnderTimeout) {
  // The chase of data/nonterminating.gerel never saturates; the budget
  // must stop it with sound partial answers (here: all of them — the
  // constant consequences converge in the first rounds), exit code 3,
  // and a populated degradation reason.
  CommandResult r = RunCli("answer " + Data("nonterminating.gerel") +
                           " reach --route=chase --timeout-ms=200");
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("may be incomplete"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("chase: deadline"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("6 answers"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("reach(a, d)"), std::string::npos) << r.output;
}

TEST(CliTest, TimedOutAnswersAreByteIdenticalAcrossThreads) {
  // Only stdout is compared: the stderr degradation line names the round
  // the deadline tripped at, which legitimately varies run to run.
  std::string base;
  for (const char* threads : {"1", "2", "4"}) {
    CommandResult r = RunRaw(
        std::string(GEREL_CLI_PATH) + " answer " +
        Data("nonterminating.gerel") +
        " reach --route=chase --timeout-ms=200 --threads=" + threads +
        " 2>/dev/null");
    EXPECT_EQ(r.exit_code, 3) << r.output;
    if (base.empty()) {
      base = r.output;
      EXPECT_NE(base.find("reach(a, d)"), std::string::npos) << base;
    } else {
      EXPECT_EQ(r.output, base) << "diverged at --threads=" << threads;
    }
  }
}

TEST(CliTest, ChaseDegradesOnTimeoutWithExit2) {
  CommandResult r = RunCli("chase " + Data("nonterminating.gerel") +
                           " --timeout-ms=100");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("saturated=0"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("degraded (chase: deadline"), std::string::npos)
      << r.output;
}

TEST(CliTest, GerelFaultEnvForcesDeterministicExhaustion) {
  CommandResult r = RunRaw("GEREL_FAULT=exhaust=chase@1 " +
                           std::string(GEREL_CLI_PATH) + " chase " +
                           Data("transitive_closure.gerel") +
                           " --timeout-ms=60000 2>&1");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("degraded (chase: fault"), std::string::npos)
      << r.output;
}

// --- Crash-safe snapshots (serve --snapshot, session `save`) ---

TEST(CliTest, ServeSnapshotRoundTripAndTruncationRecovery) {
  std::string snap = "/tmp/gerel_cli_snap_" + std::to_string(getpid()) +
                     ".snap";
  std::remove(snap.c_str());
  std::string serve_args = "serve " + Data("transitive_closure.gerel") +
                           " --snapshot=" + snap;
  std::string input = "query t(X, Y) -> q(X, Y)\nquit\n";

  // First session: no snapshot yet — prepare fresh and save one.
  CommandResult first = RunCliWithInput(input, serve_args);
  EXPECT_EQ(first.exit_code, 0) << first.output;
  EXPECT_EQ(first.output.find("loaded snapshot"), std::string::npos)
      << first.output;
  EXPECT_NE(first.output.find("6 answers (complete)"), std::string::npos)
      << first.output;

  // Second session: load the saved snapshot, same answers.
  CommandResult second = RunCliWithInput(input, serve_args);
  EXPECT_EQ(second.exit_code, 0) << second.output;
  EXPECT_NE(second.output.find("loaded snapshot"), std::string::npos)
      << second.output;
  EXPECT_NE(second.output.find("6 answers (complete)"), std::string::npos)
      << second.output;

  // Simulated crash mid-write: truncate the snapshot. The load must
  // detect it and fall back to re-materialization — same answers again.
  ASSERT_EQ(truncate(snap.c_str(), 16), 0);
  CommandResult third = RunCliWithInput(input, serve_args);
  EXPECT_EQ(third.exit_code, 0) << third.output;
  EXPECT_NE(third.output.find("re-materializing"), std::string::npos)
      << third.output;
  EXPECT_NE(third.output.find("6 answers (complete)"), std::string::npos)
      << third.output;
  std::remove(snap.c_str());
}

TEST(CliTest, ServeSaveCommandWritesSnapshot) {
  std::string snap = "/tmp/gerel_cli_save_" + std::to_string(getpid()) +
                     ".snap";
  std::remove(snap.c_str());
  CommandResult r = RunCliWithInput(
      "save " + snap + "\nsave\nquit\n",
      "serve " + Data("transitive_closure.gerel"));
  EXPECT_EQ(r.exit_code, 1) << r.output;  // The bare `save` is an error.
  EXPECT_NE(r.output.find("snapshot saved to " + snap), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("error: save requires a path"), std::string::npos)
      << r.output;
  FILE* f = fopen(snap.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "session save did not write " << snap;
  fclose(f);
  std::remove(snap.c_str());
}

// --- Serve input robustness ---

TEST(CliTest, ServeEofWithoutQuitExitsCleanly) {
  CommandResult r = RunCliWithInput("query t(X, Y) -> q(X, Y)\n",
                                    "serve " + Data("transitive_closure.gerel"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("6 answers (complete)"), std::string::npos)
      << r.output;
}

TEST(CliTest, ServeOversizedLineIsSkippedCleanly) {
  // A 1.1 MB line exceeds the 1 MiB serve cap: it must be diagnosed and
  // skipped (exit 1), never buffered whole or crash the session — and
  // the session keeps serving afterwards.
  CommandResult r = RunRaw(
      "{ head -c 1100000 /dev/zero | tr '\\0' 'a'; printf '\\nstats\\nquit\\n'; } | " +
      std::string(GEREL_CLI_PATH) + " serve " +
      Data("transitive_closure.gerel") + " 2>&1");
  EXPECT_EQ(r.exit_code, 1) << r.output.substr(0, 2000);
  EXPECT_NE(r.output.find("exceeds"), std::string::npos)
      << r.output.substr(0, 2000);
  EXPECT_NE(r.output.find("queries:"), std::string::npos)
      << r.output.substr(0, 2000);
}

TEST(CliTest, UsageOnBadInvocation) {
  EXPECT_EQ(RunCli("frobnicate nothing").exit_code, 64);
  EXPECT_EQ(RunCli("classify").exit_code, 64);
}

TEST(CliTest, MissingFileIsACleanError) {
  CommandResult r = RunCli("classify /nonexistent/file.gerel");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("cannot open"), std::string::npos);
}

}  // namespace
