// End-to-end tests of the `gerel` command-line tool against the sample
// programs in data/. The binary and data paths come from CMake.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

#ifndef GEREL_CLI_PATH
#define GEREL_CLI_PATH "gerel"
#endif
#ifndef GEREL_DATA_DIR
#define GEREL_DATA_DIR "data"
#endif

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved.
};

CommandResult RunCli(const std::string& args) {
  std::string command =
      std::string(GEREL_CLI_PATH) + " " + args + " 2>&1";
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buffer;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string Data(const char* name) {
  return std::string(GEREL_DATA_DIR) + "/" + name;
}

// As RunCli, but feeds `input` to the CLI's stdin (for `serve`).
CommandResult RunCliWithInput(const std::string& input,
                              const std::string& args) {
  std::string command = "printf '%s' '" + input + "' | " +
                        std::string(GEREL_CLI_PATH) + " " + args + " 2>&1";
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buffer;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

TEST(CliTest, ClassifyPublications) {
  CommandResult r = RunCli("classify " + Data("publications.gerel"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("frontier-guarded:         yes"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("weakly guarded:           no"),
            std::string::npos)
      << r.output;
}

TEST(CliTest, AnswerPublicationsViaChase) {
  CommandResult r =
      RunCli("answer " + Data("publications.gerel") + " q --route=chase");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("q(a1)"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("q(a2)"), std::string::npos) << r.output;
}

TEST(CliTest, AnswerTransitiveClosureBothRoutes) {
  for (const char* route : {"--route=chase", "--route=datalog"}) {
    CommandResult r = RunCli("answer " + Data("transitive_closure.gerel") +
                             " t " + route);
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("t(a, d)"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("6 answers"), std::string::npos) << r.output;
  }
}

TEST(CliTest, ChasePrintsFigure2Atoms) {
  CommandResult r = RunCli("chase " + Data("publications.gerel"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("keywords(p1"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("saturated=1"), std::string::npos) << r.output;
}

TEST(CliTest, TranslateExample7ToDatalog) {
  CommandResult r = RunCli("translate g2dat " + Data("example7.gerel"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // σ12 must appear in the printed Datalog program (variable names are
  // canonical, so just look for the co-occurrence pattern).
  EXPECT_NE(r.output.find("-> d("), std::string::npos) << r.output;
}

TEST(CliTest, NormalizeTransitiveClosureIsIdentityShaped) {
  CommandResult r =
      RunCli("normalize " + Data("transitive_closure.gerel"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("t(X, Z)"), std::string::npos) << r.output;
}

TEST(CliTest, BoundedChaseExitsWithCode2) {
  CommandResult r = RunCli("chase " + Data("weakly_guarded_tc.gerel") +
                           " --max-steps=50");
  EXPECT_EQ(r.exit_code, 2) << r.output;  // Unsaturated.
  EXPECT_NE(r.output.find("saturated=0"), std::string::npos) << r.output;
}

TEST(CliTest, DotOutputsAreWellFormed) {
  for (const char* mode : {"preds", "positions", "tree"}) {
    CommandResult r = RunCli(std::string("dot ") + mode + " " +
                             Data("publications.gerel"));
    EXPECT_EQ(r.exit_code, 0) << mode << ": " << r.output;
    EXPECT_EQ(r.output.find("digraph"), 0u) << mode << ": " << r.output;
    EXPECT_NE(r.output.find("}"), std::string::npos);
  }
}

TEST(CliTest, TreeCommandVerifiesProp2) {
  CommandResult r = RunCli("tree " + Data("publications.gerel"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("Prop 2 (P1)-(P3): hold"), std::string::npos)
      << r.output;
}

TEST(CliTest, AnswerExitsWith3WhenTranslationHitsACap) {
  CommandResult r = RunCli("answer " + Data("transitive_closure.gerel") +
                           " t --max-rules=1");
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("may be incomplete"), std::string::npos)
      << r.output;
}

TEST(CliTest, ServeAnswersQueriesAndAsserts) {
  CommandResult r = RunCliWithInput(
      "query t(X, Y) -> q(X, Y)\n"
      "assert e(d, f)\n"
      "query t(X, Y) -> q(X, Y)\n"
      "stats\n"
      "quit\n",
      "serve " + Data("transitive_closure.gerel"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("prepared: mode=datalog"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("6 answers (complete)"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("asserted 1 new"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("10 answers (complete)"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("delta asserts:       1"), std::string::npos)
      << r.output;
}

TEST(CliTest, ServeExitsWith3OnIncompleteAnswers) {
  CommandResult r = RunCliWithInput(
      "query e(U, V) -> q(U)\nquit\n",
      "serve " + Data("weakly_guarded_gen.gerel"));
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("possibly incomplete"), std::string::npos)
      << r.output;
}

TEST(CliTest, ServeRejectsBadCommandsWithExit1) {
  CommandResult r = RunCliWithInput(
      "frobnicate\nquit\n", "serve " + Data("transitive_closure.gerel"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("unknown command"), std::string::npos) << r.output;
}

TEST(CliTest, ServeMalformedQueryIsACleanError) {
  // Parse errors and shape errors (negated CQ body) must come back as
  // error lines with exit 1 — never crash the session.
  CommandResult r = RunCliWithInput(
      "query t(((\n"
      "query e(X, Y), not t(X, Y) -> q(X, Y)\n"
      "query t(X, Y) -> q(X, Y)\n"
      "quit\n",
      "serve " + Data("transitive_closure.gerel"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("error:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("negation-free"), std::string::npos) << r.output;
  // The session keeps serving after errors.
  EXPECT_NE(r.output.find("6 answers (complete)"), std::string::npos)
      << r.output;
}

TEST(CliTest, ServeAssertIntoNegationRematerializes) {
  // Asserting into a stratified-negation program must rematerialize
  // (never delta-extend): the new edge *retracts* separated-pairs.
  CommandResult r = RunCliWithInput(
      "query separated(X, Y) -> q(X, Y)\n"
      "assert e(b, c)\n"
      "query separated(X, Y) -> q(X, Y)\n"
      "quit\n",
      "serve " + Data("stratified_sep.gerel"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("mode=datalog"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("8 answers (complete)"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("(rematerialized)"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("6 answers (complete)"), std::string::npos)
      << r.output;
  // q(a, c) holds before the assert and is retracted by it: it must
  // appear exactly once across the two answer blocks.
  size_t first = r.output.find("q(a, c)");
  ASSERT_NE(first, std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("q(a, c)", first + 1), std::string::npos)
      << r.output;
}

TEST(CliTest, ServeAssertRejectsNonGroundFacts) {
  CommandResult r = RunCliWithInput(
      "assert e(X, b)\nquit\n",
      "serve " + Data("transitive_closure.gerel"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("fact contains variables"), std::string::npos)
      << r.output;
}

TEST(CliTest, ServeCompletenessCertificateLines) {
  // Both certificate verdicts in one session: gen's positions can never
  // hold labeled nulls (certificate holds → "(complete)"), while e holds
  // the invented successor, so its answers are sound but possibly
  // incomplete — which is exactly what exit code 3 certifies.
  CommandResult r = RunCliWithInput(
      "query gen(U) -> q(U)\n"
      "query e(U, V) -> q(U)\n"
      "quit\n",
      "serve " + Data("weakly_guarded_gen.gerel"));
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("1 answers (complete)"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("(sound, possibly incomplete)"), std::string::npos)
      << r.output;
}

TEST(CliTest, UsageOnBadInvocation) {
  EXPECT_EQ(RunCli("frobnicate nothing").exit_code, 64);
  EXPECT_EQ(RunCli("classify").exit_code, 64);
}

TEST(CliTest, MissingFileIsACleanError) {
  CommandResult r = RunCli("classify /nonexistent/file.gerel");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("cannot open"), std::string::npos);
}

}  // namespace
