// Unit tests for affected positions, unsafe variables, and the seven
// guardedness classes of paper §3 (Figure 1 syntactic memberships).
#include <gtest/gtest.h>

#include "core/classify.h"
#include "core/parser.h"

namespace gerel {
namespace {

// The running example Σp of paper Example 1 (σ1–σ4).
const char* kRunningExample = R"(
  publication(X) -> exists K1, K2. keywords(X, K1, K2).
  keywords(X, K1, K2) -> hastopic(X, K1).
  hastopic(X, Z), hasauthor(X, U), hasauthor(Y, U), hastopic(Y, Z2),
    scientific(Z2), citedin(Y, X) -> scientific(Z).
  hasauthor(X, Y), hastopic(X, Z), scientific(Z) -> q(Y).
)";

// Transitive closure: the paper's classic "not frontier-guarded" query.
const char* kTransitiveClosure = R"(
  e(X, Y) -> t(X, Y).
  e(X, Y), t(Y, Z) -> t(X, Z).
)";

Theory Parse(const char* text, SymbolTable* syms) {
  Result<Theory> t = ParseTheory(text, syms);
  EXPECT_TRUE(t.ok()) << t.status().message();
  return std::move(t).value();
}

TEST(AffectedPositionsTest, ExistentialHeadPositionsAreAffected) {
  SymbolTable syms;
  Theory t = Parse("publication(X) -> exists K1, K2. keywords(X, K1, K2).",
                   &syms);
  PositionSet ap = AffectedPositions(t);
  RelationId kw = syms.Relation("keywords");
  EXPECT_FALSE(ap.Contains(kw, 0));
  EXPECT_TRUE(ap.Contains(kw, 1));
  EXPECT_TRUE(ap.Contains(kw, 2));
  EXPECT_EQ(ap.size(), 2u);
}

TEST(AffectedPositionsTest, PropagationThroughRules) {
  SymbolTable syms;
  Theory t = Parse(kRunningExample, &syms);
  PositionSet ap = AffectedPositions(t);
  // keywords positions 2, 3 (indices 1, 2) are affected; σ2 propagates the
  // second keyword position into hastopic's 2nd position; σ3 propagates
  // hastopic's 2nd into scientific's 1st.
  EXPECT_TRUE(ap.Contains(syms.Relation("hastopic"), 1));
  EXPECT_FALSE(ap.Contains(syms.Relation("hastopic"), 0));
  EXPECT_TRUE(ap.Contains(syms.Relation("scientific"), 0));
  EXPECT_FALSE(ap.Contains(syms.Relation("hasauthor"), 0));
  EXPECT_FALSE(ap.Contains(syms.Relation("hasauthor"), 1));
}

TEST(AffectedPositionsTest, DatalogTheoryHasNoAffectedPositions) {
  SymbolTable syms;
  Theory t = Parse(kTransitiveClosure, &syms);
  EXPECT_EQ(AffectedPositions(t).size(), 0u);
}

TEST(UnsafeVarsTest, RunningExampleSigma3) {
  SymbolTable syms;
  Theory t = Parse(kRunningExample, &syms);
  PositionSet ap = AffectedPositions(t);
  const Rule& sigma3 = t.rules()[2];
  std::vector<Term> unsafe = UnsafeVars(sigma3, ap);
  // Z occurs only at hastopic[2] (affected); Z2 occurs at hastopic[2] and
  // scientific[1] (both affected). X, Y, U are safe.
  EXPECT_EQ(unsafe.size(), 2u);
  EXPECT_NE(std::find(unsafe.begin(), unsafe.end(), syms.Variable("Z")),
            unsafe.end());
  EXPECT_NE(std::find(unsafe.begin(), unsafe.end(), syms.Variable("Z2")),
            unsafe.end());
}

TEST(ClassifyTest, RunningExampleIsFrontierGuardedNotWeaklyGuarded) {
  SymbolTable syms;
  Theory t = Parse(kRunningExample, &syms);
  Classification c = Classify(t);
  EXPECT_FALSE(c.datalog);
  EXPECT_FALSE(c.guarded);
  EXPECT_TRUE(c.frontier_guarded);
  // σ3 has unsafe vars Z, Z2 in no single atom: not weakly guarded. This
  // witnesses that frontier-guarded ⊄ weakly guarded syntactically
  // (Figure 1 has no '*' edge between them).
  EXPECT_FALSE(c.weakly_guarded);
  EXPECT_TRUE(c.weakly_frontier_guarded);
  EXPECT_FALSE(c.nearly_guarded);
  EXPECT_TRUE(c.nearly_frontier_guarded);
}

TEST(ClassifyTest, TransitiveClosureIsDatalogAndNearlyGuarded) {
  SymbolTable syms;
  Theory t = Parse(kTransitiveClosure, &syms);
  Classification c = Classify(t);
  EXPECT_TRUE(c.datalog);
  EXPECT_FALSE(c.guarded);
  EXPECT_FALSE(c.frontier_guarded);  // fvars {X, Z} in no single atom.
  EXPECT_TRUE(c.weakly_guarded);
  EXPECT_TRUE(c.weakly_frontier_guarded);
  EXPECT_TRUE(c.nearly_guarded);
  EXPECT_TRUE(c.nearly_frontier_guarded);
}

TEST(ClassifyTest, WeaklyGuardedButNotGuarded) {
  SymbolTable syms;
  Theory t = Parse(R"(
    r(X) -> exists Y. e(X, Y).
    e(X, Y), e(Y, Z) -> e(X, Z).
  )",
                   &syms);
  Classification c = Classify(t);
  EXPECT_FALSE(c.guarded);
  EXPECT_FALSE(c.frontier_guarded);
  EXPECT_TRUE(c.weakly_guarded);
  EXPECT_TRUE(c.weakly_frontier_guarded);
  EXPECT_FALSE(c.nearly_guarded);
  EXPECT_FALSE(c.nearly_frontier_guarded);
}

TEST(ClassifyTest, GuardedTheory) {
  SymbolTable syms;
  Theory t = Parse(R"(
    a(X) -> exists Y. r(X, Y).
    r(X, Y) -> s(Y, Y).
    s(X, Y) -> exists Z. t(X, Y, Z).
    t(X, X, Y) -> b(X).
  )",
                   &syms);
  Classification c = Classify(t);
  EXPECT_TRUE(c.guarded);
  EXPECT_TRUE(c.frontier_guarded);
  EXPECT_TRUE(c.weakly_guarded);
  EXPECT_TRUE(c.weakly_frontier_guarded);
  EXPECT_TRUE(c.nearly_guarded);
  EXPECT_TRUE(c.nearly_frontier_guarded);
}

TEST(ClassifyTest, SyntacticInclusionsOfFigure1) {
  // Every guarded theory is frontier-guarded, weakly guarded, nearly
  // guarded; every frontier-guarded theory is weakly frontier-guarded and
  // nearly frontier-guarded; Datalog is nearly guarded iff safe vars only.
  SymbolTable syms;
  Theory guarded = Parse("r(X, Y), s(X, Y) -> t(X, Y).", &syms);
  // (r or s alone guards both variables... make the guard explicit)
  Classification c = Classify(guarded);
  EXPECT_TRUE(c.guarded);
  EXPECT_TRUE(c.frontier_guarded);
  EXPECT_TRUE(c.weakly_guarded);
  EXPECT_TRUE(c.weakly_frontier_guarded);
  EXPECT_TRUE(c.nearly_guarded);
  EXPECT_TRUE(c.nearly_frontier_guarded);
}

TEST(ClassifyTest, EmptyBodyRulesAreGuarded) {
  SymbolTable syms;
  Theory t = Parse("-> r(c).", &syms);
  Classification c = Classify(t);
  EXPECT_TRUE(c.guarded);
  EXPECT_TRUE(c.nearly_guarded);
}

TEST(ClassifyTest, NegationIsIgnoredForGuardChecks) {
  SymbolTable syms;
  // The negative literal's variables need no guard (weak guardedness is
  // defined on the negation-free part, paper §8).
  Theory t = Parse(R"(
    r(X) -> exists Y. e(X, Y).
    e(X, Y), not bad(Y) -> good(Y).
  )",
                   &syms);
  Classification c = Classify(t);
  EXPECT_TRUE(c.weakly_guarded);
  EXPECT_FALSE(c.datalog);
}

TEST(FrontierGuardTest, PicksFirstCoveringAtom) {
  SymbolTable syms;
  Result<Rule> r =
      ParseRule("hasauthor(X, Y), hastopic(X, Z), scientific(Z) -> q(Y)",
                &syms);
  ASSERT_TRUE(r.ok());
  const Atom& g = FrontierGuard(r.value());
  EXPECT_EQ(g.pred, syms.Relation("hasauthor"));
}

TEST(FrontierGuardTest, NullWhenNoGuardExists) {
  SymbolTable syms;
  Result<Rule> r = ParseRule("e(X, Y), t(Y, Z) -> t(X, Z)", &syms);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(FrontierGuardOrNull(r.value()), nullptr);
}

TEST(ProperTest, ReorderingMakesAffectedPositionsAPrefix) {
  SymbolTable syms;
  // keywords has affected positions 2, 3 and non-affected 1: not proper.
  Theory t = Parse(R"(
    publication(X) -> exists K1, K2. keywords(X, K1, K2).
    keywords(X, K1, K2) -> hastopic(X, K1).
  )",
                   &syms);
  EXPECT_FALSE(IsProper(t));
  ProperReordering pr = MakeProper(t);
  EXPECT_TRUE(IsProper(pr.theory));
  // The database transform must be consistent with the rule transform.
  Database db = ParseDatabase("keywords(p, k1, k2).", &syms).value();
  Database mapped = pr.Apply(db);
  EXPECT_EQ(mapped.size(), 1u);
  Database back = pr.Invert(mapped);
  EXPECT_TRUE(back == db);
}

TEST(ProperTest, ProperTheoryIsUnchangedUpToIdentityPermutation) {
  SymbolTable syms;
  Theory t = Parse("r(X) -> exists Y. e(Y, X).", &syms);
  // (e, 1) is affected, (e, 2) is not: prefix, already proper.
  EXPECT_TRUE(IsProper(t));
  ProperReordering pr = MakeProper(t);
  EXPECT_EQ(pr.theory.rules()[0], t.rules()[0]);
}

}  // namespace
}  // namespace gerel
