// Additional coverage for thinner corners: multi-rule canonicalization,
// capture-compiler rejection paths, order-program internals, stratified
// complements over nulls, and symbol-table copy semantics.
#include <gtest/gtest.h>

#include "capture/capture_compiler.h"
#include "capture/order_program.h"
#include "capture/string_database.h"
#include "core/classify.h"
#include "core/parser.h"
#include "core/printer.h"
#include "datalog/orderings.h"
#include "stratified/stratified_chase.h"
#include "transform/canonical.h"

namespace gerel {
namespace {

TEST(SymbolTableCopyTest, CopiesAreIndependent) {
  SymbolTable a;
  a.Relation("r", 2);
  SymbolTable b = a;
  RelationId in_b = b.Relation("only_in_b", 1);
  EXPECT_TRUE(b.HasRelation("only_in_b"));
  EXPECT_FALSE(a.HasRelation("only_in_b"));
  EXPECT_EQ(b.RelationName(in_b), "only_in_b");
}

TEST(CanonicalMultiRuleTest, SharedVariablesRenameConsistently) {
  SymbolTable syms;
  Rule r1 = ParseRule("cov(X, Y) -> h(X)", &syms).value();
  Rule r2 = ParseRule("h(X), rest(X, Z) -> out(Z)", &syms).value();
  Rule s1 = ParseRule("cov(A, B) -> h(A)", &syms).value();
  Rule s2 = ParseRule("h(A), rest(A, C) -> out(C)", &syms).value();
  EXPECT_EQ(CanonicalRulesString({r1, r2}, syms),
            CanonicalRulesString({s1, s2}, syms));
  // Breaking the sharing changes the pair's canonical form.
  Rule t2 = ParseRule("h(Q), rest(A, C) -> out(C)", &syms).value();
  EXPECT_NE(CanonicalRulesString({r1, r2}, syms),
            CanonicalRulesString({s1, t2}, syms));
}

TEST(CaptureCompilerRejectionTest, AlphabetMismatch) {
  SymbolTable syms;
  StringSignature sig;
  sig.degree = 1;
  sig.alphabet = {"only_one_symbol"};
  EXPECT_FALSE(
      CompileAtmToWeaklyGuarded(EvenParityMachine(), sig, &syms).ok());
}

TEST(CaptureCompilerRejectionTest, InvalidMachine) {
  SymbolTable syms;
  StringSignature sig;
  sig.degree = 1;
  sig.alphabet = {"sym0", "sym1"};
  Atm broken = EvenParityMachine();
  broken.modes.pop_back();  // Modes no longer cover every state.
  EXPECT_FALSE(CompileAtmToWeaklyGuarded(broken, sig, &syms).ok());
}

TEST(AtmSimulatorRejectionTest, BadInputs) {
  Atm m = EvenParityMachine();
  EXPECT_FALSE(SimulateAtm(m, {}).ok());        // Empty tape.
  EXPECT_FALSE(SimulateAtm(m, {0, 7}).ok());    // Symbol out of range.
}

TEST(OrderProgramInternalsTest, NoGoodOrderingWithoutConstants) {
  SymbolTable syms;
  OrderProgram prog = BuildOrderProgram(&syms);
  Database empty;
  auto result = RunOrderProgram(prog, Theory(), empty, &syms);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_TRUE(result.value().database.AtomsOf(prog.good).empty());
}

TEST(OrderProgramInternalsTest, SingleConstantHasOneTrivialOrder) {
  SymbolTable syms;
  OrderProgram prog = BuildOrderProgram(&syms);
  Database db = ParseDatabase("r(only, only).", &syms).value();
  auto result = RunOrderProgram(prog, Theory(), db, &syms);
  ASSERT_TRUE(result.ok());
  const Database& out = result.value().database;
  ASSERT_EQ(out.AtomsOf(prog.good).size(), 1u);
  // min = max = the single constant for that ordering.
  Term u = out.atom(out.AtomsOf(prog.good)[0]).args[0];
  bool min_ok = false, max_ok = false;
  for (uint32_t i : out.AtomsOf(prog.min)) {
    const Atom& a = out.atom(i);
    if (a.args[1] == u && a.args[0] == syms.Constant("only")) min_ok = true;
  }
  for (uint32_t i : out.AtomsOf(prog.max)) {
    const Atom& a = out.atom(i);
    if (a.args[1] == u && a.args[0] == syms.Constant("only")) max_ok = true;
  }
  EXPECT_TRUE(min_ok);
  EXPECT_TRUE(max_ok);
}

TEST(StratifiedNullTest, ComplementsRangeOverNulls) {
  // The negated relation is checked on ordering nulls: silentpair must
  // hold for the invented null (it has no loud fact).
  SymbolTable syms;
  Theory t = ParseTheory(R"(
    gen(X) -> exists Y. holds(Y).
    holds(Y), not loud(Y) -> quiet(Y).
  )",
                         &syms)
                 .value();
  Database db = ParseDatabase("gen(a).", &syms).value();
  auto result = StratifiedChase(t, db, &syms);
  ASSERT_TRUE(result.ok()) << result.status().message();
  RelationId quiet = syms.Relation("quiet");
  ASSERT_EQ(result.value().database.AtomsOf(quiet).size(), 1u);
  EXPECT_TRUE(result.value()
                  .database.atom(result.value().database.AtomsOf(quiet)[0])
                  .args[0]
                  .IsNull());
}

TEST(OrderingsEmitterTest, ProgramsAreSafeDatalog) {
  SymbolTable syms;
  for (int k = 1; k <= 3; ++k) {
    Theory program = LexTupleOrderProgram(k, &syms);
    for (const Rule& r : program.rules()) {
      EXPECT_TRUE(r.EVars().empty());
      EXPECT_TRUE(r.Validate(syms).ok()) << ToString(r, syms);
    }
  }
}

TEST(StringDatabaseDegree3Test, RoundTrip) {
  SymbolTable syms;
  StringSignature sig;
  sig.degree = 3;
  sig.alphabet = {"sym0", "sym1"};
  std::vector<int> word(8, 0);  // 2³ cells over 2 constants.
  word[3] = 1;
  word[7] = 1;
  auto sdb = MakeStringDatabase(word, sig, &syms);
  ASSERT_TRUE(sdb.ok()) << sdb.status().message();
  auto extracted = ExtractWord(sdb.value().db, sig, &syms);
  ASSERT_TRUE(extracted.ok()) << extracted.status().message();
  EXPECT_EQ(extracted.value(), word);
}

TEST(ClassifyDiagnosticsTest, AffectedPositionsRespectAnnotations) {
  // Annotation positions are flattened after the argument positions.
  SymbolTable syms;
  Theory t =
      ParseTheory("b(X) -> exists Y. r[X](Y).", &syms).value();
  PositionSet ap = AffectedPositions(t);
  RelationId r = syms.Relation("r");
  EXPECT_TRUE(ap.Contains(r, 0));   // Argument position of Y.
  EXPECT_FALSE(ap.Contains(r, 1));  // Annotation position of X.
}

}  // namespace
}  // namespace gerel
