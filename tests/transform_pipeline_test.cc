// Tests for §7: partial grounding pg(Σ, D) and the knowledge-base
// conjunctive-query answering pipeline.
#include <gtest/gtest.h>

#include "chase/chase.h"
#include "core/classify.h"
#include "core/parser.h"
#include "core/printer.h"
#include "transform/grounding.h"
#include "transform/pipeline.h"

namespace gerel {
namespace {

Theory MustParseTheory(const char* text, SymbolTable* syms) {
  Result<Theory> t = ParseTheory(text, syms);
  EXPECT_TRUE(t.ok()) << t.status().message();
  return std::move(t).value();
}

Rule MustParseRule(const char* text, SymbolTable* syms) {
  Result<Rule> r = ParseRule(text, syms);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

// Weakly guarded transitive closure over a null-generating relation.
const char* kWgTransitiveClosure = R"(
  gen(X) -> exists Y. e(X, Y).
  e(X, Y), e(Y, Z) -> e(X, Z).
)";

TEST(GroundingTest, GroundsSafeVariablesOnly) {
  SymbolTable syms;
  Theory t = MustParseTheory(kWgTransitiveClosure, &syms);
  Database db = ParseDatabase("gen(a). e(a, b).", &syms).value();
  Result<GroundingResult> pg = PartialGrounding(t, db);
  ASSERT_TRUE(pg.ok());
  EXPECT_TRUE(pg.value().complete);
  // Rule 1: X is safe (gen's position is non-affected) → |dom| copies.
  // Rule 2: X and Y are safe ((e,1) is non-affected), Z unsafe →
  // |dom|² copies. dom = {a, b}.
  EXPECT_EQ(pg.value().theory.size(), 2u + 4u);
  // The grounded theory is guarded (Σ1 of §7).
  EXPECT_TRUE(Classify(pg.value().theory).guarded);
}

TEST(GroundingTest, PreservesAnswers) {
  SymbolTable syms;
  Theory t = MustParseTheory(kWgTransitiveClosure, &syms);
  Database db = ParseDatabase("gen(a). e(a, b). e(b, c).", &syms).value();
  Result<GroundingResult> pg = PartialGrounding(t, db);
  ASSERT_TRUE(pg.ok());
  RelationId e = syms.Relation("e");
  EXPECT_EQ(ChaseAnswers(t, db, e, &syms),
            ChaseAnswers(pg.value().theory, db, e, &syms));
}

TEST(GroundingTest, CapMarksIncomplete) {
  SymbolTable syms;
  Theory t = MustParseTheory(kWgTransitiveClosure, &syms);
  Database db =
      ParseDatabase("gen(a). e(a, b). e(b, c). e(c, d).", &syms).value();
  GroundingOptions opts;
  opts.max_rules = 3;
  Result<GroundingResult> pg = PartialGrounding(t, db, opts);
  ASSERT_TRUE(pg.ok());
  EXPECT_FALSE(pg.value().complete);
}

TEST(PipelineTest, GuardConjunctiveQueryAddsAcdom) {
  SymbolTable syms;
  Rule cq = MustParseRule("e(U, V), e(V, W) -> q(U, W)", &syms);
  Rule guarded = GuardConjunctiveQuery(cq, &syms);
  EXPECT_EQ(guarded.body.size(), 4u);  // Two e-atoms plus two acdom atoms.
  RelationId acdom = AcdomRelation(&syms);
  size_t acdom_count = 0;
  for (const Literal& l : guarded.body) {
    if (l.atom.pred == acdom) ++acdom_count;
  }
  EXPECT_EQ(acdom_count, 2u);
}

TEST(PipelineTest, Section7ProcedureOnWeaklyGuardedTc) {
  SymbolTable syms;
  Theory t = MustParseTheory(kWgTransitiveClosure, &syms);
  // Which constants reach a node two e-steps away? The two-step witness
  // for a runs through b's *invented* successor, so the answer needs the
  // full null-aware pipeline. (The instance is kept at two constants:
  // the grounded saturation of step 3 is the paper's 2-EXPTIME
  // construction and blows up fast — see bench_sec7_pipeline.)
  Rule cq = MustParseRule("e(U, V), e(V, W) -> q(U)", &syms);
  Database db = ParseDatabase("gen(b). e(a, b).", &syms).value();
  Result<KbQueryResult> result = AnswerKbQuery(t, cq, db, &syms);
  ASSERT_TRUE(result.ok()) << result.status().message();
  // Oracle: chase of Σ ∪ {guarded cq}.
  Theory oracle = t;
  oracle.AddRule(GuardConjunctiveQuery(cq, &syms));
  std::set<std::vector<Term>> expected =
      ChaseAnswers(oracle, db, syms.Relation("q"), &syms);
  EXPECT_EQ(result.value().answers, expected);
  // a's two steps are e(a, b) then e(b, n) with n invented for gen(b).
  std::set<std::vector<Term>> want = {{syms.Constant("a")}};
  EXPECT_EQ(result.value().answers, want);
}

TEST(PipelineTest, AnswersIgnoreNullWitnesses) {
  SymbolTable syms;
  Theory t = MustParseTheory(kWgTransitiveClosure, &syms);
  // Every generator has a successor — including the invented one.
  Rule cq = MustParseRule("e(U, V) -> q(U)", &syms);
  Database db = ParseDatabase("gen(a).", &syms).value();
  Result<KbQueryResult> result = AnswerKbQuery(t, cq, db, &syms);
  ASSERT_TRUE(result.ok()) << result.status().message();
  std::set<std::vector<Term>> want = {{syms.Constant("a")}};
  EXPECT_EQ(result.value().answers, want);
}

TEST(PipelineTest, NearlyFrontierGuardedRoute) {
  SymbolTable syms;
  Theory t = MustParseTheory(R"(
    start(X) -> exists Y. e(X, Y).
    e(X, Y) -> mark(X).
    mark(X), mark(Y) -> pair(X, Y).
  )",
                             &syms);
  Rule cq = MustParseRule("pair(U, V) -> q(U, V)", &syms);
  Database db = ParseDatabase("start(a). e(b, c).", &syms).value();
  Result<KbQueryResult> result =
      AnswerKbQueryNearlyFrontierGuarded(t, cq, db, &syms);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_TRUE(result.value().complete);
  EXPECT_EQ(result.value().answers.size(), 4u);
}

TEST(PipelineTest, RejectsNonWfgKb) {
  SymbolTable syms;
  Theory t = MustParseTheory(R"(
    r(X) -> exists Y, Z. e(X, Y), e(X, Z).
    e(U, Y), e(U, Z) -> p(Y, Z).
  )",
                             &syms);
  Rule cq = MustParseRule("p(U, V) -> q(U)", &syms);
  Database db = ParseDatabase("r(a).", &syms).value();
  EXPECT_FALSE(AnswerKbQuery(t, cq, db, &syms).ok());
}

TEST(PipelineTest, EmptyDatabaseYieldsNoAnswers) {
  SymbolTable syms;
  Theory t = MustParseTheory(kWgTransitiveClosure, &syms);
  Rule cq = MustParseRule("e(U, V) -> q(U)", &syms);
  Database db;
  Result<KbQueryResult> result = AnswerKbQuery(t, cq, db, &syms);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_TRUE(result.value().answers.empty());
}

}  // namespace
}  // namespace gerel
