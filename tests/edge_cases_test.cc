// Cross-module edge cases: behaviours at the boundaries of each
// component that the main suites do not reach.
#include <gtest/gtest.h>

#include "capture/string_database.h"
#include "chase/chase.h"
#include "core/classify.h"
#include "core/normalize.h"
#include "core/parser.h"
#include "core/printer.h"
#include "datalog/evaluator.h"
#include "transform/saturation.h"

namespace gerel {
namespace {

// --- Chase ---------------------------------------------------------------

TEST(ChaseEdgeTest, AnnotatedAtomsFlowThroughTheChase) {
  SymbolTable syms;
  Theory t = ParseTheory("r[U](X) -> s[U](X).", &syms).value();
  Database db;
  RelationId r = syms.Relation("r");
  db.Insert(Atom(r, {syms.Constant("a")}, {syms.Constant("b")}));
  ChaseResult result = Chase(t, db, &syms);
  ASSERT_TRUE(result.saturated);
  RelationId s = syms.Relation("s");
  ASSERT_EQ(result.database.AtomsOf(s).size(), 1u);
  const Atom& derived = result.database.atom(result.database.AtomsOf(s)[0]);
  EXPECT_EQ(derived.annotation[0], syms.Constant("b"));
}

TEST(ChaseEdgeTest, TheoryConstantsEnterAcdom) {
  SymbolTable syms;
  Theory t = ParseTheory("-> start(c).\nacdom(X) -> seen(X).", &syms).value();
  Database db = ParseDatabase("other(d).", &syms).value();
  ChaseResult r = Chase(t, db, &syms);
  ASSERT_TRUE(r.saturated);
  RelationId seen = syms.Relation("seen");
  // Both the database constant d and the theory constant c are active.
  EXPECT_EQ(r.database.AtomsOf(seen).size(), 2u);
}

TEST(ChaseEdgeTest, MultiHeadProvenanceRecordsEveryAtom) {
  SymbolTable syms;
  Theory t =
      ParseTheory("a(X) -> exists Y. r(X, Y), s(Y, X).", &syms).value();
  Database db = ParseDatabase("a(c).", &syms).value();
  ChaseResult r = Chase(t, db, &syms);
  ASSERT_TRUE(r.saturated);
  EXPECT_EQ(r.derivation.size(), 2u);
  EXPECT_EQ(r.derivation[0].rule_index, 0u);
  EXPECT_EQ(r.derivation[1].rule_index, 0u);
}

TEST(ChaseEdgeTest, RestrictedAndDepthBoundCompose) {
  SymbolTable syms;
  Theory t =
      ParseTheory("r(X) -> exists Y. e(X, Y).\ne(X, Y) -> r(Y).", &syms)
          .value();
  Database db = ParseDatabase("r(c).", &syms).value();
  ChaseOptions opts;
  opts.restricted = true;
  opts.max_null_depth = 2;
  ChaseResult r = Chase(t, db, &syms, opts);
  EXPECT_FALSE(r.saturated);
  EXPECT_LE(r.database.AtomsOf(syms.Relation("e")).size(), 2u);
}

// --- Normalization --------------------------------------------------------

TEST(NormalizeEdgeTest, ConstantInHeadOnly) {
  SymbolTable syms;
  Theory t = ParseTheory("r(X) -> tagged(X, special).", &syms).value();
  Theory n = Normalize(t, &syms);
  EXPECT_TRUE(IsNormal(n));
  // Semantics preserved.
  Database db = ParseDatabase("r(a).", &syms).value();
  ChaseResult out = Chase(n, db, &syms);
  ASSERT_TRUE(out.saturated);
  EXPECT_TRUE(out.database.Contains(
      Atom(syms.Relation("tagged"),
           {syms.Constant("a"), syms.Constant("special")})));
}

TEST(NormalizeEdgeTest, SameConstantTwiceInOneRule) {
  SymbolTable syms;
  Theory t = ParseTheory("r(X, c) -> s(c, X).", &syms).value();
  Theory n = Normalize(t, &syms);
  EXPECT_TRUE(IsNormal(n));
  Database db = ParseDatabase("r(a, c).", &syms).value();
  ChaseResult out = Chase(n, db, &syms);
  ASSERT_TRUE(out.saturated);
  EXPECT_TRUE(out.database.Contains(
      Atom(syms.Relation("s"), {syms.Constant("c"), syms.Constant("a")})));
}

TEST(NormalizeEdgeTest, HeadWithOnlyExistentials) {
  SymbolTable syms;
  Theory t = ParseTheory("trigger -> exists Y, Z. pairn(Y, Z).", &syms)
                 .value();
  EXPECT_TRUE(IsNormal(t));  // 0-ary body atom guards trivially.
  Database db = ParseDatabase("trigger.", &syms).value();
  ChaseResult out = Chase(t, db, &syms);
  ASSERT_TRUE(out.saturated);
  EXPECT_EQ(out.database.AtomsOf(syms.Relation("pairn")).size(), 1u);
}

// --- Datalog engine --------------------------------------------------------

TEST(DatalogEdgeTest, NegationOnDerivedRelationAcrossStrata) {
  SymbolTable syms;
  Theory t = ParseTheory(R"(
    e(X, Y) -> reach(Y).
    reach(X), e(X, Y) -> reach(Y).
    acdom(X), not reach(X) -> root(X).
  )",
                         &syms)
                 .value();
  Database db = ParseDatabase("e(a, b). e(b, c).", &syms).value();
  auto r = EvaluateDatalog(t, db, &syms);
  ASSERT_TRUE(r.ok());
  RelationId root = syms.Relation("root");
  ASSERT_EQ(r.value().database.AtomsOf(root).size(), 1u);
  EXPECT_TRUE(r.value().database.Contains(
      Atom(root, {syms.Constant("a")})));
}

TEST(DatalogEdgeTest, MaxRoundsSafetyValve) {
  SymbolTable syms;
  Theory t = ParseTheory("e(X, Y) -> t(X, Y).\ne(X, Y), t(Y, Z) -> t(X, Z).",
                         &syms)
                 .value();
  Database db;
  RelationId e = syms.Relation("e");
  for (int i = 0; i < 30; ++i) {
    db.Insert(Atom(e, {syms.Constant("n" + std::to_string(i)),
                       syms.Constant("n" + std::to_string(i + 1))}));
  }
  DatalogOptions opts;
  opts.max_rounds = 2;
  EXPECT_FALSE(EvaluateDatalog(t, db, &syms, opts).ok());
}

TEST(DatalogEdgeTest, RulesWithConstantsEvaluate) {
  SymbolTable syms;
  Theory t = ParseTheory("e(a, X) -> froma(X).", &syms).value();
  Database db = ParseDatabase("e(a, b). e(c, d).", &syms).value();
  auto r = EvaluateDatalog(t, db, &syms);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().database.AtomsOf(syms.Relation("froma")).size(), 1u);
}

// --- Saturation ------------------------------------------------------------

TEST(SaturationEdgeTest, CapsMarkIncomplete) {
  SymbolTable syms;
  Theory t = ParseTheory(R"(
    a(X) -> exists Y. r(X, Y).
    r(X, Y) -> s(Y, Y).
    s(X, Y) -> exists Z. t(X, Y, Z).
    t(X, X, Y) -> b(X).
    c0(X), r(X, Y), b(Y) -> d(X).
  )",
                         &syms)
                 .value();
  SaturationOptions opts;
  opts.max_rules = 5;
  auto sat = Saturate(t, &syms, opts);
  ASSERT_TRUE(sat.ok());
  EXPECT_FALSE(sat.value().complete);
}

TEST(SaturationEdgeTest, GuardedRulesWithConstants) {
  SymbolTable syms;
  Theory t = ParseTheory(R"(
    a(X) -> exists Y. r(X, Y).
    r(c, Y) -> special(Y).
  )",
                         &syms)
                 .value();
  auto sat = Saturate(t, &syms);
  ASSERT_TRUE(sat.ok()) << sat.status().message();
  // From a(c): the composition must specialize to the constant c and let
  // dat derive special-ness for c's invented witness... which is a null,
  // so no *Datalog* consequence over constants exists; the chase check:
  Database db = ParseDatabase("a(c).", &syms).value();
  auto eval = EvaluateDatalog(sat.value().datalog, db, &syms);
  ASSERT_TRUE(eval.ok());
  ChaseResult chase = Chase(t, db, &syms);
  ASSERT_TRUE(chase.saturated);
  for (const Atom& atom : eval.value().database.atoms()) {
    if (atom.IsGroundOverConstants()) {
      EXPECT_TRUE(chase.database.Contains(atom)) << ToString(atom, syms);
    }
  }
}

// --- String databases -------------------------------------------------------

TEST(StringDbEdgeTest, CycleInNextChainIsRejected) {
  SymbolTable syms;
  StringSignature sig;
  sig.degree = 1;
  sig.alphabet = {"sym0", "sym1"};
  StringDatabase sdb =
      MakeStringDatabase({1, 0, 1}, sig, &syms).value();
  // Corrupt: make next1 loop back.
  Database broken = sdb.db;
  RelationId next1 = syms.Relation("next1");
  broken.Insert(Atom(next1, {syms.Constant("d2"), syms.Constant("d0")}));
  // d2 now has two successors... the duplicate-from check or the cycle
  // check must fire.
  EXPECT_FALSE(ExtractWord(broken, sig, &syms).ok());
}

TEST(StringDbEdgeTest, TupleWithTwoSymbolsIsRejected) {
  SymbolTable syms;
  StringSignature sig;
  sig.degree = 1;
  sig.alphabet = {"sym0", "sym1"};
  StringDatabase sdb = MakeStringDatabase({1, 0}, sig, &syms).value();
  Database broken = sdb.db;
  broken.Insert(Atom(syms.Relation("sym0"), {syms.Constant("d0")}));
  EXPECT_FALSE(ExtractWord(broken, sig, &syms).ok());
}

// --- Printer ----------------------------------------------------------------

TEST(PrinterEdgeTest, AnnotatedTheoryRoundTrip) {
  SymbolTable syms;
  Theory t = ParseTheory("e[U, V](X), f[U](Y) -> g[U, V](X).", &syms).value();
  std::string printed = ToString(t, syms);
  Result<Theory> again = ParseTheory(printed, &syms);
  ASSERT_TRUE(again.ok()) << printed;
  EXPECT_EQ(t.rules()[0], again.value().rules()[0]);
}

TEST(PrinterEdgeTest, NullsPrintStably) {
  SymbolTable syms;
  Database db;
  RelationId r = syms.Relation("r", 2);
  Term n = syms.FreshNull();
  db.Insert(Atom(r, {n, syms.Constant("a")}));
  EXPECT_EQ(ToString(db, syms), "r(_n0, a).\n");
}

}  // namespace
}  // namespace gerel
