// Governance overhead: the resource budget (DESIGN.md §9) is polled at
// every chase round boundary and, amortized, inside tight loops — this
// bench pins the cost of an armed-but-never-tripping budget against the
// ungoverned baseline, plus the raw price of the two poll primitives.
// The governed/ungoverned pair share a workload so BENCH_*.json rows are
// directly comparable in tools/bench_diff.py.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "chase/chase.h"
#include "core/budget.h"

namespace {

using namespace gerel;         // NOLINT
using namespace gerel::bench;  // NOLINT

void BM_ChaseUngoverned(benchmark::State& state) {
  int pubs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    Theory t = MustTheory(kRunningExample, &syms);
    Database db = PublicationDatabase(pubs, &syms);
    state.ResumeTiming();
    ChaseResult r = Chase(t, db, &syms);
    benchmark::DoNotOptimize(r.database.size());
    state.counters["atoms"] = static_cast<double>(r.database.size());
  }
}
BENCHMARK(BM_ChaseUngoverned)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Same workload under a budget generous enough to never trip: the delta
// against BM_ChaseUngoverned is the whole governance tax (clock samples
// at round boundaries, amortized CheckPoint ticks, ExhaustedFast polls
// in the worker lanes).
void BM_ChaseGoverned(benchmark::State& state) {
  int pubs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    Theory t = MustTheory(kRunningExample, &syms);
    Database db = PublicationDatabase(pubs, &syms);
    BudgetLimits limits;
    limits.timeout_ms = 3600 * 1000.0;
    limits.max_atoms = 1ull << 40;
    ExecutionBudget budget(limits);
    ChaseOptions opts;
    opts.budget = &budget;
    state.ResumeTiming();
    ChaseResult r = Chase(t, db, &syms, opts);
    benchmark::DoNotOptimize(r.database.size());
    state.counters["atoms"] = static_cast<double>(r.database.size());
  }
}
BENCHMARK(BM_ChaseGoverned)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// The poll primitives themselves, per call: ExhaustedFast is two relaxed
// loads, CheckPoint samples the clock once per 1024 ticks.
void BM_BudgetExhaustedFast(benchmark::State& state) {
  BudgetLimits limits;
  limits.timeout_ms = 3600 * 1000.0;
  ExecutionBudget budget(limits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(budget.ExhaustedFast());
  }
}
BENCHMARK(BM_BudgetExhaustedFast);

void BM_BudgetCheckPoint(benchmark::State& state) {
  BudgetLimits limits;
  limits.timeout_ms = 3600 * 1000.0;
  ExecutionBudget budget(limits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(budget.CheckPoint(GovernedStage::kChase));
  }
}
BENCHMARK(BM_BudgetCheckPoint);

}  // namespace

int main(int argc, char** argv) {
  return gerel::bench::RunBenchmarks(argc, argv, "bench_budget_overhead");
}
