// Experiment E2 (Figure 2): the chase and chase tree of the running
// example, scaled over growing publication databases, with the Prop 2
// chase-tree properties verified at every size.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "chase/chase.h"
#include "chase/chase_tree.h"
#include "core/classify.h"

namespace {

using namespace gerel;         // NOLINT
using namespace gerel::bench;  // NOLINT

void PrintFigure2Verification() {
  std::printf("=== E2: Figure 2 reproduction ===\n");
  SymbolTable syms;
  Theory t = MustTheory(kRunningExample, &syms);
  Database db = ParseDatabase(R"(
    publication(p1). publication(p2). citedin(p1, p2).
    hasauthor(p1, a1). hasauthor(p2, a1). hasauthor(p2, a2).
    hastopic(p1, t1). scientific(t1).
  )",
                              &syms)
                    .value();
  ChaseResult chase = Chase(t, db, &syms);
  RelationId q = syms.Relation("q");
  std::printf("chase atoms: %zu, saturated: %d, q-answers: %zu "
              "(paper: Q(a1), Q(a2))\n",
              chase.database.size(), chase.saturated,
              chase.database.AtomsOf(q).size());
  auto tree = BuildChaseTree(t, db, &syms);
  if (tree.ok()) {
    Status props = CheckChaseTreeProperties(tree.value(), t, db);
    std::printf("chase tree: %zu nodes; Prop 2 (P1)-(P3): %s\n\n",
                tree.value().nodes.size(),
                props.ok() ? "hold" : props.message().c_str());
  }
}

void BM_ChaseRunningExample(benchmark::State& state) {
  int pubs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    Theory t = MustTheory(kRunningExample, &syms);
    Database db = PublicationDatabase(pubs, &syms);
    state.ResumeTiming();
    ChaseResult r = Chase(t, db, &syms);
    benchmark::DoNotOptimize(r.database.size());
    state.counters["atoms"] = static_cast<double>(r.database.size());
  }
}
BENCHMARK(BM_ChaseRunningExample)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Thread sweep for the piece-parallel chase: same workload as
// BM_ChaseRunningExample at the largest size, swept over worker-lane
// counts {1, 2, 4, hardware_concurrency}. Results are byte-identical by
// construction; only the wall clock may differ. The `lanes` counter
// lands in BENCH_bench_figure2_chase.json for tools/bench_diff.py.
void BM_ChaseParallelSweep(benchmark::State& state) {
  int pubs = static_cast<int>(state.range(0));
  int lanes = static_cast<int>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    Theory t = MustTheory(kRunningExample, &syms);
    Database db = PublicationDatabase(pubs, &syms);
    state.ResumeTiming();
    ChaseOptions opts;
    opts.num_threads = static_cast<size_t>(lanes);
    ChaseResult r = Chase(t, db, &syms, opts);
    benchmark::DoNotOptimize(r.database.size());
    state.counters["atoms"] = static_cast<double>(r.database.size());
  }
  state.counters["lanes"] = lanes;
}

void ThreadSweepArgs(benchmark::internal::Benchmark* b) {
  std::vector<int> sweep = {1, 2, 4};
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 0 && std::find(sweep.begin(), sweep.end(), hw) == sweep.end()) {
    sweep.push_back(hw);
  }
  for (int lanes : sweep) b->Args({256, lanes});
}
BENCHMARK(BM_ChaseParallelSweep)->Apply(ThreadSweepArgs)
    ->Unit(benchmark::kMillisecond);

void BM_ChaseTreeRunningExample(benchmark::State& state) {
  int pubs = static_cast<int>(state.range(0));
  size_t nodes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    Theory t = MustTheory(kRunningExample, &syms);
    Database db = PublicationDatabase(pubs, &syms);
    state.ResumeTiming();
    auto tree = BuildChaseTree(t, db, &syms);
    if (!tree.ok()) {
      state.SkipWithError(tree.status().message().c_str());
      return;
    }
    nodes = tree.value().nodes.size();
    // Prop 2 must hold at every scale.
    state.PauseTiming();
    Status props = CheckChaseTreeProperties(tree.value(), t, db);
    if (!props.ok()) {
      state.SkipWithError(props.message().c_str());
      return;
    }
    state.ResumeTiming();
  }
  state.counters["tree_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_ChaseTreeRunningExample)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure2Verification();
  return gerel::bench::RunBenchmarks(argc, argv, "bench_figure2_chase");
}
