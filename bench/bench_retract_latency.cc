// Retract latency (DESIGN.md §7): the DRed delete/re-derive path
// against the full re-materialization fallback. The same steady-state
// workload — assert a fresh edge, retract it — runs once on a plain
// transitive-closure theory (every retract is a DRed delta) and once
// with a stratified negation rule added (negation invalidates recorded
// supports, so every retract rebuilds the model from the EDB). The gap
// between the two is what the support log buys.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/parser.h"
#include "service/prepared_kb.h"

namespace {

using namespace gerel;         // NOLINT
using namespace gerel::bench;  // NOLINT

const char* kTcTheory = R"(
  e(X, Y) -> t(X, Y).
  e(X, Y), t(Y, Z) -> t(X, Z).
)";

// The same closure plus one stratified negation rule: has_negation
// forces every retract (and assert) onto the re-materialization path.
const char* kNegTheory = R"(
  e(X, Y) -> t(X, Y).
  e(X, Y), t(Y, Z) -> t(X, Z).
  acdom(X), acdom(Y), not t(X, Y) -> sep(X, Y).
)";

constexpr int kChain = 24;

// Acceptance check printed before the benchmark table: a DRed retract
// on the closure chain must beat the re-materializing retract (same
// surviving EDB, same model) by a wide margin.
void PrintVerification() {
  std::printf("=== Retract latency: DRed vs re-materialization ===\n");
  auto now = [] { return std::chrono::steady_clock::now(); };
  auto ms = [](auto d) {
    return std::chrono::duration<double, std::milli>(d).count();
  };

  double timings[2] = {0, 0};
  const char* theories[2] = {kTcTheory, kNegTheory};
  constexpr int kOps = 50;
  for (int mode = 0; mode < 2; ++mode) {
    SymbolTable syms;
    Theory theory = MustTheory(theories[mode], &syms);
    Database db = ChainDatabase(kChain, "e", &syms);
    auto kb = PreparedKb::Prepare(theory, db, &syms);
    if (!kb.ok()) {
      std::printf("prepare failed: %s\n", kb.status().message().c_str());
      return;
    }
    RelationId e = syms.Relation("e", 2);
    Term head = syms.Constant("a0");
    double total = 0;
    for (int i = 0; i < kOps; ++i) {
      Atom extra(e, {syms.Constant("x" + std::to_string(i)), head});
      if (!kb.value()->Assert({extra}).ok()) return;
      auto t0 = now();
      auto r = kb.value()->Retract({extra});
      total += ms(now() - t0);
      if (!r.ok()) {
        std::printf("retract failed: %s\n", r.status().message().c_str());
        return;
      }
    }
    timings[mode] = total / kOps;
    ServiceStats stats = kb.value()->stats();
    std::printf("%s: %8.3f ms/retract (dred=%zu, remat=%zu)\n",
                mode == 0 ? "dred  " : "remat ", timings[mode],
                stats.retracts_dred, stats.retracts_rematerialized);
  }
  std::printf("remat/dred ratio: %.1fx (acceptance: > 1)\n\n",
              timings[0] > 0 ? timings[1] / timings[0] : 0);
}

// Steady-state retract: each iteration pre-asserts a fresh edge into
// the chain head (untimed) and times only the retract that removes it,
// so the model returns to the same fixpoint every iteration.
void BM_RetractLatency(benchmark::State& state) {
  bool dred = state.range(0) == 1;
  SymbolTable syms;
  Theory theory = MustTheory(dred ? kTcTheory : kNegTheory, &syms);
  Database db = ChainDatabase(kChain, "e", &syms);
  auto kb = PreparedKb::Prepare(theory, db, &syms);
  if (!kb.ok()) {
    state.SkipWithError(kb.status().message().c_str());
    return;
  }
  RelationId e = syms.Relation("e", 2);
  Term head = syms.Constant("a0");
  // Pre-intern the per-iteration constants: symbol interning is not
  // part of the measured retract.
  std::vector<Atom> facts;
  for (int i = 0; i < 1200; ++i) {
    facts.emplace_back(
        e, std::vector<Term>{syms.Constant("x" + std::to_string(i)), head});
  }
  size_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    if (i >= facts.size()) {
      state.SkipWithError("fact pool exhausted");
      return;
    }
    auto asserted = kb.value()->Assert({facts[i]});
    if (!asserted.ok()) {
      state.SkipWithError(asserted.status().message().c_str());
      return;
    }
    state.ResumeTiming();
    auto r = kb.value()->Retract({facts[i++]});
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value().removed_atoms);
  }
  ServiceStats stats = kb.value()->stats();
  state.counters["retracts_dred"] =
      static_cast<double>(stats.retracts_dred);
  state.counters["retracts_rematerialized"] =
      static_cast<double>(stats.retracts_rematerialized);
  state.counters["overdeleted"] =
      static_cast<double>(stats.overdeleted_atoms);
  state.counters["model_atoms"] = static_cast<double>(stats.model_atoms);
  state.SetLabel(dred ? "DRed delta" : "re-materialization fallback");
}
// Fixed iteration count: each iteration consumes one pooled fact
// (auto-scaling would exhaust the pool).
BENCHMARK(BM_RetractLatency)->Arg(1)->Arg(0)
    ->Iterations(1000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintVerification();
  return gerel::bench::RunBenchmarks(argc, argv, "bench_retract_latency");
}
