// Experiment E11: data-complexity shapes (paper §1/§3).
//
// For a fixed nearly guarded query, the Datalog route scales
// polynomially in the database; for a fixed weakly guarded theory, the
// chase-based procedure exhibits the null-driven growth that places the
// language at EXPTIME. Absolute numbers are machine-specific; the shape
// (polynomial vs explosive growth per added generator) is the claim.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "chase/chase.h"
#include "core/parser.h"
#include "datalog/evaluator.h"
#include "transform/saturation.h"

namespace {

using namespace gerel;         // NOLINT
using namespace gerel::bench;  // NOLINT

void BM_NearlyGuardedDatalogRoute(benchmark::State& state) {
  // Fixed query (translated once), growing random graph database.
  int n = static_cast<int>(state.range(0));
  SymbolTable syms;
  Theory t = MustTheory(R"(
    start(X) -> exists Y. e(X, Y).
    e(X, Y) -> mark(X).
    mark(X), mark(Y) -> pair(X, Y).
  )",
                        &syms);
  auto dat = NearlyGuardedToDatalog(t, &syms);
  size_t atoms = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable fresh = syms;
    Database db = RandomGraph(n, 2 * n, "e", &fresh);
    db.Insert(Atom(fresh.Relation("start", 1), {fresh.Constant("v0")}));
    state.ResumeTiming();
    auto eval = EvaluateDatalog(dat.value().datalog, db, &fresh);
    if (!eval.ok()) {
      state.SkipWithError(eval.status().message().c_str());
      return;
    }
    atoms = eval.value().database.size();
  }
  state.counters["db_nodes"] = n;
  state.counters["atoms"] = static_cast<double>(atoms);
}
BENCHMARK(BM_NearlyGuardedDatalogRoute)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_WeaklyGuardedChaseGrowth(benchmark::State& state) {
  // Fixed weakly guarded theory; each generator fact adds a null that
  // participates in the transitive closure — the null-involving work is
  // what separates weakly guarded rules from Datalog.
  int gens = static_cast<int>(state.range(0));
  SymbolTable syms;
  Theory t = MustTheory(
      "gen(X) -> exists Y. e(X, Y).\ne(X, Y), e(Y, Z) -> e(X, Z).", &syms);
  size_t atoms = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable fresh = syms;
    Database db = ChainDatabase(gens, "e", &fresh);
    RelationId gen = fresh.Relation("gen", 1);
    for (int i = 0; i < gens; ++i) {
      db.Insert(Atom(gen, {fresh.Constant("a" + std::to_string(i))}));
    }
    state.ResumeTiming();
    ChaseResult r = Chase(t, db, &fresh);
    atoms = r.database.size();
  }
  state.counters["generators"] = gens;
  state.counters["atoms"] = static_cast<double>(atoms);
}
BENCHMARK(BM_WeaklyGuardedChaseGrowth)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return gerel::bench::RunBenchmarks(argc, argv, "bench_data_complexity");
}
