// Experiment E12: ablations of the design choices called out in
// DESIGN.md: (i) semi-naive vs naive Datalog evaluation, (ii) idempotent
// vs exhaustive selection enumeration in the expansion, (iii) subsuming
// vs exhaustive guard generation, (iv) indexed vs scan matching in the
// chase.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "chase/chase.h"
#include "core/normalize.h"
#include "core/parser.h"
#include "datalog/evaluator.h"
#include "datalog/magic.h"
#include "transform/fg_to_ng.h"

namespace {

using namespace gerel;         // NOLINT
using namespace gerel::bench;  // NOLINT

void BM_SeminaiveVsNaive(benchmark::State& state) {
  bool seminaive = state.range(0) == 0;
  SymbolTable syms;
  Theory t = MustTheory(
      "e(X, Y) -> tc(X, Y).\ne(X, Y), tc(Y, Z) -> tc(X, Z).", &syms);
  Database db = ChainDatabase(64, "e", &syms);
  DatalogOptions opts;
  opts.seminaive = seminaive;
  for (auto _ : state) {
    SymbolTable fresh = syms;
    auto eval = EvaluateDatalog(t, db, &fresh, opts);
    benchmark::DoNotOptimize(eval.ok());
  }
  state.SetLabel(seminaive ? "seminaive" : "naive");
}
BENCHMARK(BM_SeminaiveVsNaive)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SelectionEnumeration(benchmark::State& state) {
  bool idempotent = state.range(0) == 0;
  size_t rules = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    Theory normal =
        Normalize(MustTheory(NullCycleTheoryText(3).c_str(), &syms), &syms);
    ExpansionOptions opts;
    opts.idempotent_selections_only = idempotent;
    opts.max_rules = 400000;
    state.ResumeTiming();
    auto ex = Expand(normal, &syms, opts);
    if (!ex.ok()) {
      state.SkipWithError(ex.status().message().c_str());
      return;
    }
    rules = ex.value().theory.size();
  }
  state.SetLabel(idempotent ? "idempotent-selections" : "all-selections");
  state.counters["rules"] = static_cast<double>(rules);
}
BENCHMARK(BM_SelectionEnumeration)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_GuardGeneration(benchmark::State& state) {
  bool subsuming = state.range(0) == 0;
  size_t rules = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    Theory normal =
        Normalize(MustTheory(NullCycleTheoryText(3).c_str(), &syms), &syms);
    ExpansionOptions opts;
    opts.exhaustive_guards = !subsuming;
    opts.max_rules = 400000;
    state.ResumeTiming();
    auto ex = Expand(normal, &syms, opts);
    if (!ex.ok()) {
      state.SkipWithError(ex.status().message().c_str());
      return;
    }
    rules = ex.value().theory.size();
  }
  state.SetLabel(subsuming ? "subsuming-guards" : "exhaustive-guards");
  state.counters["rules"] = static_cast<double>(rules);
  state.counters["complete"] = 1;
}
BENCHMARK(BM_GuardGeneration)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_MagicSetsVsFullEvaluation(benchmark::State& state) {
  // Goal-directed evaluation of the translated program: the query binds
  // the source node, and only a small part of the graph is relevant.
  bool magic = state.range(0) == 0;
  SymbolTable syms;
  Theory t = MustTheory(
      "e(X, Y) -> tc(X, Y).\ne(X, Y), tc(Y, Z) -> tc(X, Z).", &syms);
  // Star of 24 chains; the query touches only one.
  Database db;
  RelationId e = syms.Relation("e", 2);
  for (int chain = 0; chain < 24; ++chain) {
    for (int i = 0; i + 1 < 16; ++i) {
      db.Insert(Atom(e, {syms.Constant("c" + std::to_string(chain) + "_" +
                                       std::to_string(i)),
                         syms.Constant("c" + std::to_string(chain) + "_" +
                                       std::to_string(i + 1))}));
    }
  }
  Atom query = ParseAtom("tc(c0_0, Z)", &syms).value();
  for (auto _ : state) {
    SymbolTable fresh = syms;
    if (magic) {
      auto r = MagicAnswers(t, db, query, &fresh);
      if (!r.ok()) {
        state.SkipWithError(r.status().message().c_str());
        return;
      }
      benchmark::DoNotOptimize(r.value().size());
    } else {
      auto r = DatalogAnswers(t, db, fresh.Relation("tc"), &fresh);
      benchmark::DoNotOptimize(r.value().size());
    }
  }
  state.SetLabel(magic ? "magic-sets" : "full-evaluation");
}
BENCHMARK(BM_MagicSetsVsFullEvaluation)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_ChaseIndexing(benchmark::State& state) {
  bool indexed = state.range(0) == 0;
  SymbolTable syms;
  Theory t = MustTheory(kRunningExample, &syms);
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable fresh = syms;
    Database source = PublicationDatabase(64, &fresh);
    Database db;
    db.set_position_index_enabled(indexed);
    for (const Atom& a : source.atoms()) {
      db.Insert(a);
    }
    state.ResumeTiming();
    ChaseResult r = Chase(t, db, &fresh);
    benchmark::DoNotOptimize(r.database.size());
  }
  state.SetLabel(indexed ? "position-indexed" : "relation-scan");
}
BENCHMARK(BM_ChaseIndexing)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// The ablation equivalence check: restricted and exhaustive expansions
// derive the same answers (the restrictions drop only subsumed rules).
void PrintEquivalenceCheck() {
  std::printf("=== E12: restricted vs exhaustive expansion agree? ===\n");
  SymbolTable syms;
  Theory raw = MustTheory(NullCycleTheoryText(3).c_str(), &syms);
  Theory normal = Normalize(raw, &syms);
  Database db =
      ParseDatabase("a(c). r(u, v). r(v, w). r(w, u).", &syms).value();
  RelationId p = syms.Relation("p");
  auto oracle = ChaseAnswers(raw, db, p, &syms);
  struct Config {
    const char* name;
    bool idempotent;
    bool exhaustive;
  } configs[] = {
      {"idempotent+subsuming (default)", true, false},
      {"all-selections+subsuming", false, false},
      {"idempotent+exhaustive-guards", true, true},
  };
  for (const Config& cfg : configs) {
    SymbolTable s2 = syms;
    ExpansionOptions opts;
    opts.idempotent_selections_only = cfg.idempotent;
    opts.exhaustive_guards = cfg.exhaustive;
    opts.max_rules = 400000;
    auto rew = RewriteFgToNearlyGuarded(normal, &s2, opts);
    if (!rew.ok()) {
      std::printf("%-34s error\n", cfg.name);
      continue;
    }
    ChaseOptions big;
    big.max_steps = 20000000;
    big.max_atoms = 20000000;
    auto got = ChaseAnswers(rew.value().theory, db, p, &s2, big);
    std::printf("%-34s rules=%-7zu complete=%d answers %s\n", cfg.name,
                rew.value().theory.size(), rew.value().complete,
                got == oracle ? "match" : "MISMATCH");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintEquivalenceCheck();
  return gerel::bench::RunBenchmarks(argc, argv, "bench_ablations");
}
