// Experiment E8 (§7): the five-step conjunctive-query answering pipeline
// over weakly guarded knowledge bases, against the direct bounded-chase
// baseline, scaling the database.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "chase/chase.h"
#include "core/parser.h"
#include "transform/pipeline.h"

namespace {

using namespace gerel;         // NOLINT
using namespace gerel::bench;  // NOLINT

const char* kKb = R"(
  gen(X) -> exists Y. e(X, Y).
  e(X, Y), e(Y, Z) -> e(X, Z).
)";

Database MakeDb(int n, SymbolTable* syms) {
  Database db = ChainDatabase(n, "e", syms);
  db.Insert(Atom(syms->Relation("gen", 1),
                 {syms->Constant("a" + std::to_string(n - 1))}));
  return db;
}

void PrintVerification() {
  std::printf("=== E8: Section 7 pipeline vs chase oracle ===\n");
  SymbolTable syms;
  Theory kb = MustTheory(kKb, &syms);
  Rule cq = ParseRule("e(U, V), e(V, W) -> q(U)", &syms).value();
  Database db = MakeDb(2, &syms);
  auto result = AnswerKbQuery(kb, cq, db, &syms);
  if (!result.ok()) {
    std::printf("pipeline failed: %s\n", result.status().message().c_str());
    return;
  }
  Theory oracle = kb;
  oracle.AddRule(GuardConjunctiveQuery(cq, &syms));
  auto expected = ChaseAnswers(oracle, db, syms.Relation("q"), &syms);
  std::printf("pipeline stages: rewritten=%zu grounded=%zu datalog=%zu\n",
              result.value().rewritten_rules, result.value().grounded_rules,
              result.value().datalog_rules);
  std::printf("answers %zu, oracle %zu: %s\n\n",
              result.value().answers.size(), expected.size(),
              result.value().answers == expected ? "match" : "MISMATCH");
}

void BM_PipelineVsChase(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool use_pipeline = state.range(1) == 0;
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    Theory kb = MustTheory(kKb, &syms);
    Rule cq = ParseRule("e(U, V), e(V, W) -> q(U)", &syms).value();
    Database db = MakeDb(n, &syms);
    state.ResumeTiming();
    if (use_pipeline) {
      auto result = AnswerKbQuery(kb, cq, db, &syms);
      if (!result.ok()) {
        state.SkipWithError(result.status().message().c_str());
        return;
      }
      benchmark::DoNotOptimize(result.value().answers.size());
    } else {
      Theory oracle = kb;
      oracle.AddRule(GuardConjunctiveQuery(cq, &syms));
      auto ans = ChaseAnswers(oracle, db, syms.Relation("q"), &syms);
      benchmark::DoNotOptimize(ans.size());
    }
  }
  state.SetLabel(use_pipeline ? "sec7-pipeline" : "chase-baseline");
}
// The §7 procedure is the paper's 2-EXPTIME construction: the grounded
// saturation explodes between 2 and 3 constants (≈20 ms → ≈2 min on the
// reference machine), which is itself the measured result. The chase
// baseline stays cheap on these instances but is not a decision
// procedure (its termination here is a property of this theory).
BENCHMARK(BM_PipelineVsChase)
    ->Args({2, 0})->Args({2, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintVerification();
  return gerel::bench::RunBenchmarks(argc, argv, "bench_sec7_pipeline");
}
