// Experiment E3 (Figure 3 / Example 7): the saturation calculus.
//
// Verifies that dat(Σ) of Example 7 contains σ12 and answers the query,
// then measures closure growth on guarded existential chains (the §6
// size analysis: worst-case double-exponential; the chain family grows
// polynomially, the paper's bound is an upper envelope).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/parser.h"
#include "datalog/evaluator.h"
#include "transform/canonical.h"
#include "transform/saturation.h"

namespace {

using namespace gerel;         // NOLINT
using namespace gerel::bench;  // NOLINT

const char* kExample7 = R"(
  a(X) -> exists Y. r(X, Y).
  r(X, Y) -> s(Y, Y).
  s(X, Y) -> exists Z. t(X, Y, Z).
  t(X, X, Y) -> b(X).
  c0(X), r(X, Y), b(Y) -> d(X).
)";

void PrintExample7Verification() {
  std::printf("=== E3: Example 7 / Figure 3 reproduction ===\n");
  SymbolTable syms;
  Theory t = MustTheory(kExample7, &syms);
  auto sat = Saturate(t, &syms);
  if (!sat.ok()) {
    std::printf("saturation failed: %s\n", sat.status().message().c_str());
    return;
  }
  Result<Rule> sigma12 = ParseRule("a(X), c0(X) -> d(X)", &syms);
  std::string want = CanonicalRuleString(sigma12.value(), syms);
  bool found = false;
  for (const Rule& r : sat.value().datalog.rules()) {
    if (CanonicalRuleString(r, syms) == want) found = true;
  }
  std::printf("closure |Xi(Sigma)| = %zu, |dat(Sigma)| = %zu, complete=%d\n",
              sat.value().closure.size(), sat.value().datalog.size(),
              sat.value().complete);
  std::printf("sigma12 = a(x) ^ c0(x) -> d(x) in dat(Sigma): %s\n",
              found ? "yes (paper derivation reproduced)" : "NO");
  Database db = ParseDatabase("a(c). c0(c).", &syms).value();
  auto eval = EvaluateDatalog(sat.value().datalog, db, &syms);
  bool dc = eval.ok() && eval.value().database.Contains(
                             Atom(syms.Relation("d"), {syms.Constant("c")}));
  std::printf("dat(Sigma), {A(c), C(c)} |= D(c): %s\n\n",
              dc ? "yes" : "NO");
}

void BM_SaturateExample7(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    Theory t = MustTheory(kExample7, &syms);
    state.ResumeTiming();
    auto sat = Saturate(t, &syms);
    benchmark::DoNotOptimize(sat.ok());
    state.counters["closure"] =
        static_cast<double>(sat.value().closure.size());
    state.counters["datalog"] =
        static_cast<double>(sat.value().datalog.size());
  }
}
BENCHMARK(BM_SaturateExample7)->Unit(benchmark::kMillisecond);

void BM_SaturateGuardedChain(benchmark::State& state) {
  int len = static_cast<int>(state.range(0));
  size_t closure = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    Theory t = MustTheory(GuardedChainTheoryText(len).c_str(), &syms);
    state.ResumeTiming();
    auto sat = Saturate(t, &syms);
    if (!sat.ok()) {
      state.SkipWithError(sat.status().message().c_str());
      return;
    }
    closure = sat.value().closure.size();
  }
  state.counters["chain"] = len;
  state.counters["closure"] = static_cast<double>(closure);
}
BENCHMARK(BM_SaturateGuardedChain)->Arg(2)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Thread sweep for parallel saturation: the longest guarded chain swept
// over worker-lane counts {1, 2, 4, hardware_concurrency}. Closures are
// byte-identical by construction; only the wall clock may differ. The
// `lanes` counter lands in BENCH_bench_figure3_saturation.json for
// tools/bench_diff.py.
void BM_SaturateParallelSweep(benchmark::State& state) {
  int len = static_cast<int>(state.range(0));
  int lanes = static_cast<int>(state.range(1));
  size_t closure = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    Theory t = MustTheory(GuardedChainTheoryText(len).c_str(), &syms);
    state.ResumeTiming();
    SaturationOptions opts;
    opts.num_threads = static_cast<size_t>(lanes);
    auto sat = Saturate(t, &syms, opts);
    if (!sat.ok()) {
      state.SkipWithError(sat.status().message().c_str());
      return;
    }
    closure = sat.value().closure.size();
  }
  state.counters["closure"] = static_cast<double>(closure);
  state.counters["lanes"] = lanes;
}

void ThreadSweepArgs(benchmark::internal::Benchmark* b) {
  std::vector<int> sweep = {1, 2, 4};
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 0 && std::find(sweep.begin(), sweep.end(), hw) == sweep.end()) {
    sweep.push_back(hw);
  }
  for (int lanes : sweep) b->Args({8, lanes});
}
BENCHMARK(BM_SaturateParallelSweep)->Apply(ThreadSweepArgs)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintExample7Verification();
  return gerel::bench::RunBenchmarks(argc, argv, "bench_figure3_saturation");
}
