// Experiment E5 (Prop 4 + Prop 5): nearly frontier-guarded → nearly
// guarded, and elimination of the acdom built-in.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "chase/chase.h"
#include "core/classify.h"
#include "core/parser.h"
#include "transform/acdom.h"
#include "transform/fg_to_ng.h"

namespace {

using namespace gerel;         // NOLINT
using namespace gerel::bench;  // NOLINT

// Frontier-guarded existential part plus a safe transitive-closure part
// (the TC rule is not frontier-guarded, but its variables are safe).
const char* kMixedTheory = R"(
  e(X, Y) -> t(X, Y).
  e(X, Y), t(Y, Z) -> t(X, Z).
  t(X, Y) -> exists W. w(Y, W).
)";

void PrintVerification() {
  std::printf("=== E5: Prop 4 (nfg -> ng) and Prop 5 (acdom elimination) "
              "===\n");
  SymbolTable syms;
  Theory t = MustTheory(kMixedTheory, &syms);
  Classification before = Classify(t);
  std::printf("input: nearly-frontier-guarded=%d, frontier-guarded=%d\n",
              before.nearly_frontier_guarded, before.frontier_guarded);
  auto rew = RewriteNfgToNearlyGuarded(t, &syms);
  if (!rew.ok()) {
    std::printf("rewrite failed: %s\n", rew.status().message().c_str());
    return;
  }
  std::printf("rew(Sigma): %zu rules, nearly-guarded=%d\n",
              rew.value().theory.size(),
              Classify(rew.value().theory).nearly_guarded);
  Database db = ParseDatabase("e(a, b). e(b, c). e(c, d).", &syms).value();
  RelationId tc = syms.Relation("t");
  bool preserved = ChaseAnswers(t, db, tc, &syms) ==
                   ChaseAnswers(rew.value().theory, db, tc, &syms);
  std::printf("Prop 4 answers preserved: %s\n", preserved ? "yes" : "NO");

  AcdomAxiomatization star = AxiomatizeAcdom(rew.value().theory, &syms);
  ChaseOptions no_builtin;
  no_builtin.populate_acdom = false;
  bool star_ok =
      ChaseAnswers(rew.value().theory, db, tc, &syms) ==
      ChaseAnswers(star.theory, db, star.Starred(tc), &syms, no_builtin);
  std::printf("Prop 5 acdom-free theory agrees: %s (%zu rules, +%zu "
              "axioms)\n\n",
              star_ok ? "yes" : "NO", star.theory.size(),
              star.theory.size() - rew.value().theory.size());
}

void BM_RewriteNfg(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    Theory t = MustTheory(kMixedTheory, &syms);
    state.ResumeTiming();
    auto rew = RewriteNfgToNearlyGuarded(t, &syms);
    benchmark::DoNotOptimize(rew.ok());
  }
}
BENCHMARK(BM_RewriteNfg)->Unit(benchmark::kMillisecond);

void BM_AcdomAxiomatization(benchmark::State& state) {
  SymbolTable syms;
  Theory t = MustTheory(kMixedTheory, &syms);
  auto rew = RewriteNfgToNearlyGuarded(t, &syms);
  for (auto _ : state) {
    SymbolTable fresh = syms;
    benchmark::DoNotOptimize(AxiomatizeAcdom(rew.value().theory, &fresh));
  }
}
BENCHMARK(BM_AcdomAxiomatization)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintVerification();
  return gerel::bench::RunBenchmarks(argc, argv, "bench_prop4_nfg");
}
