// Experiment E9 (Theorem 4): compiling alternating Turing machines into
// weakly guarded theories over string databases. Verifies agreement with
// the direct simulator over all short words, reports compiled theory
// sizes, and measures decision time vs word length.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include <cstdio>

#include "capture/capture_compiler.h"
#include "capture/string_database.h"
#include "capture/turing_machine.h"
#include "core/classify.h"

namespace {

using namespace gerel;  // NOLINT

StringSignature Sig() {
  StringSignature sig;
  sig.degree = 1;
  sig.alphabet = {"sym0", "sym1"};
  return sig;
}

void PrintVerification() {
  std::printf("=== E9: Thm 4 — ATM -> weakly guarded rules ===\n");
  std::printf("%-26s %8s %8s %16s\n", "machine", "rules", "wg?",
              "agree (28 words)");
  for (const Atm& m :
       {FirstSymbolIsOneMachine(), EvenParityMachine(),
        AllOnesUniversalMachine(), SomeOneExistentialMachine(),
        FirstEqualsLastMachine(), OnesDivisibleByThreeMachine()}) {
    SymbolTable syms;
    auto compiled = CompileAtmToWeaklyGuarded(m, Sig(), &syms);
    if (!compiled.ok()) {
      std::printf("%-26s compile error\n", m.name.c_str());
      continue;
    }
    bool wg = Classify(compiled.value().theory).weakly_guarded;
    int checked = 0, agreed = 0;
    for (int len = 2; len <= 4; ++len) {
      for (int bits = 0; bits < (1 << len); ++bits) {
        std::vector<int> word(len);
        for (int i = 0; i < len; ++i) word[i] = (bits >> i) & 1;
        StringDatabase sdb =
            MakeStringDatabase(word, Sig(), &syms).value();
        bool expected = SimulateAtm(m, word).value().accepted;
        auto got = DecideAcceptanceViaChase(compiled.value(), sdb.db, &syms,
                                            2 * len + 4);
        ++checked;
        if (got.ok() && got.value() == expected) ++agreed;
      }
    }
    std::printf("%-26s %8zu %8s %11d/%d\n", m.name.c_str(),
                compiled.value().theory.size(), wg ? "yes" : "NO", agreed,
                checked);
  }
  std::printf("\n");
}

void BM_CompileMachine(benchmark::State& state) {
  Atm m = AllOnesUniversalMachine();
  for (auto _ : state) {
    SymbolTable syms;
    auto compiled = CompileAtmToWeaklyGuarded(m, Sig(), &syms);
    benchmark::DoNotOptimize(compiled.ok());
  }
}
BENCHMARK(BM_CompileMachine)->Unit(benchmark::kMicrosecond);

void BM_DecideParityViaRules(benchmark::State& state) {
  int len = static_cast<int>(state.range(0));
  Atm m = EvenParityMachine();
  std::vector<int> word(len);
  for (int i = 0; i < len; ++i) word[i] = i % 2;
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    auto compiled = CompileAtmToWeaklyGuarded(m, Sig(), &syms);
    StringDatabase sdb = MakeStringDatabase(word, Sig(), &syms).value();
    state.ResumeTiming();
    auto got = DecideAcceptanceViaChase(compiled.value(), sdb.db, &syms,
                                        2 * len + 4);
    benchmark::DoNotOptimize(got.ok());
  }
}
BENCHMARK(BM_DecideParityViaRules)->Arg(3)->Arg(5)->Arg(7)
    ->Unit(benchmark::kMillisecond);

void BM_DecideUniversalViaRules(benchmark::State& state) {
  // AND-branching: the configuration tree doubles per cell.
  int len = static_cast<int>(state.range(0));
  Atm m = AllOnesUniversalMachine();
  std::vector<int> word(len, 1);
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    auto compiled = CompileAtmToWeaklyGuarded(m, Sig(), &syms);
    StringDatabase sdb = MakeStringDatabase(word, Sig(), &syms).value();
    state.ResumeTiming();
    auto got = DecideAcceptanceViaChase(compiled.value(), sdb.db, &syms,
                                        2 * len + 4);
    benchmark::DoNotOptimize(got.ok());
  }
}
BENCHMARK(BM_DecideUniversalViaRules)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);

void BM_BinaryCounterExponentialTime(benchmark::State& state) {
  // The "exponential time" content of Thm 4: the counter machine runs
  // 2^n · Θ(n) steps on an n-cell tape, and the chase of its compiled
  // theory tracks that growth.
  int n = static_cast<int>(state.range(0));
  StringSignature sig;
  sig.degree = 1;
  sig.alphabet = {"c0", "c1", "cm0", "cm1"};
  Atm m = BinaryCounterMachine();
  std::vector<int> word(n, 0);
  word[0] = 2;
  size_t sim_configs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    auto compiled = CompileAtmToWeaklyGuarded(m, sig, &syms);
    StringDatabase sdb = MakeStringDatabase(word, sig, &syms).value();
    uint32_t hint = static_cast<uint32_t>((1 << n) * (2 * n + 2) + 8);
    state.ResumeTiming();
    auto got = DecideAcceptanceViaChase(compiled.value(), sdb.db, &syms,
                                        hint, /*max_atoms=*/5000000);
    if (!got.ok() || !got.value()) {
      state.SkipWithError("counter machine did not accept");
      return;
    }
    state.PauseTiming();
    sim_configs = SimulateAtm(m, word).value().configurations;
    state.ResumeTiming();
  }
  state.counters["tape_cells"] = n;
  state.counters["machine_configs"] = static_cast<double>(sim_configs);
}
BENCHMARK(BM_BinaryCounterExponentialTime)->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  PrintVerification();
  return gerel::bench::RunBenchmarks(argc, argv, "bench_thm4_capture");
}
