// Termination-certificate analysis cost and its payoff (ISSUE:
// certificate-driven materialization planning). Two questions:
//
//  1. What does running the acyclicity ladder (WA -> JA -> MFA via the
//     critical-instance chase) cost as the theory grows? BM_Analyze*
//     times AnalyzeTermination on scaled families that exercise each
//     rung: a weakly acyclic chain (graph tests only) and an MFA-
//     refuted theory padded with Datalog rules (full critical chase).
//
//  2. What does a certificate buy at Prepare time? On a certified
//     weakly guarded theory the planner skips the pg(Σ, D) + dat(·)
//     translations and materializes the chase model directly.
//     BM_Prepare compares the two strategies on the same (Σ, D); the
//     verification header prints the measured ratio (acceptance: the
//     certified route must win).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "analyze/termination.h"
#include "bench/bench_util.h"
#include "core/parser.h"
#include "service/prepared_kb.h"

namespace {

using namespace gerel;         // NOLINT
using namespace gerel::bench;  // NOLINT

// Certified workload: weakly guarded successor generation over a chain
// (data/weakly_guarded_gen.gerel at benchmark scale). The chase closes
// the chain in O(n^2) atoms; the translation pipeline additionally
// grounds the guarded fragment over the active domain.
const char* kWgGenTheory = R"(
  gen(X) -> exists Y. e(X, Y).
  e(X, Y), e(Y, Z) -> e(X, Z).
)";

Database WgGenDatabase(int chain, SymbolTable* syms) {
  Database db = ChainDatabase(chain, "e", syms);
  RelationId gen = syms->Relation("gen", 1);
  db.Insert(Atom(gen, {syms->Constant("a0")}));
  return db;
}

// A weakly acyclic chain of n generator stages: the ladder certifies
// it on the dependency graphs alone, no critical chase.
Theory WaChainTheory(int stages, SymbolTable* syms) {
  std::string text;
  for (int i = 0; i < stages; ++i) {
    std::string p = "p" + std::to_string(i);
    std::string r = "r" + std::to_string(i);
    std::string next = "p" + std::to_string(i + 1);
    text += p + "(X) -> exists Y. " + r + "(X, Y).\n";
    text += r + "(X, Y) -> " + next + "(Y).\n";
  }
  return MustTheory(text.c_str(), syms);
}

// MFA-refuted core plus n Datalog padding rules: WA and JA fail, so
// the ladder always pays for the critical-instance chase before it
// finds the cyclic Skolem term.
Theory RefutedTheory(int padding, SymbolTable* syms) {
  std::string text = "r(X, Y) -> exists Z. r(Y, Z).\n";
  for (int i = 0; i < padding; ++i) {
    std::string s = "s" + std::to_string(i);
    std::string next = "s" + std::to_string(i + 1);
    text += s + "(X, Y), " + next + "(Y, Z) -> " + next + "(X, Z).\n";
  }
  return MustTheory(text.c_str(), syms);
}

constexpr int kChain = 16;

// Acceptance check printed before the benchmark table: on the certified
// theory, a planner Prepare (direct chase materialization) must beat
// the translation-pipeline Prepare on the same knowledge base.
void PrintVerification() {
  std::printf("=== Certificate-driven prepare: chase vs pipeline ===\n");
  auto now = [] { return std::chrono::steady_clock::now(); };
  auto ms = [](auto d) {
    return std::chrono::duration<double, std::milli>(d).count();
  };

  {
    SymbolTable syms;
    Theory theory = MustTheory(kWgGenTheory, &syms);
    TerminationCertificate cert = AnalyzeTermination(theory, syms);
    std::printf("certificate: %s (terminating: %s)\n",
                CertificateKindName(cert.kind),
                cert.terminating() ? "yes" : "no");
  }

  double timings[2] = {0, 0};
  const char* names[2] = {"chase (planner on)  ", "pipeline (planner off)"};
  constexpr int kReps = 5;
  for (int mode = 0; mode < 2; ++mode) {
    double total = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      SymbolTable syms;
      Theory theory = MustTheory(kWgGenTheory, &syms);
      Database db = WgGenDatabase(kChain, &syms);
      PreparedKbOptions options;
      options.planner = mode == 0;
      auto t0 = now();
      auto kb = PreparedKb::Prepare(theory, db, &syms, options);
      total += ms(now() - t0);
      if (!kb.ok()) {
        std::printf("prepare failed: %s\n", kb.status().message().c_str());
        return;
      }
      if (rep == 0) {
        ServiceStats stats = kb.value()->stats();
        std::printf("%s: strategy=%s\n", names[mode],
                    stats.materialization_strategy.c_str());
      }
    }
    timings[mode] = total / kReps;
    std::printf("%s: %8.3f ms/prepare\n", names[mode], timings[mode]);
  }
  std::printf("pipeline/chase ratio: %.1fx (acceptance: > 1)\n\n",
              timings[0] > 0 ? timings[1] / timings[0] : 0);
}

// Ladder cost on a theory it certifies from the graphs alone.
void BM_AnalyzeWeaklyAcyclic(benchmark::State& state) {
  SymbolTable syms;
  Theory theory = WaChainTheory(static_cast<int>(state.range(0)), &syms);
  for (auto _ : state) {
    TerminationCertificate cert = AnalyzeTermination(theory, syms);
    if (cert.kind != CertificateKind::kWeaklyAcyclic) {
      state.SkipWithError("expected a weakly-acyclic certificate");
      return;
    }
    benchmark::DoNotOptimize(cert.order);
  }
  state.SetLabel("graph rungs only");
}
BENCHMARK(BM_AnalyzeWeaklyAcyclic)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Ladder cost when every rung runs, ending in an MFA refutation.
void BM_AnalyzeRefuted(benchmark::State& state) {
  SymbolTable syms;
  Theory theory = RefutedTheory(static_cast<int>(state.range(0)), &syms);
  for (auto _ : state) {
    TerminationCertificate cert = AnalyzeTermination(theory, syms);
    if (cert.kind != CertificateKind::kRefuted) {
      state.SkipWithError("expected a refuted certificate");
      return;
    }
    benchmark::DoNotOptimize(cert.cycle);
  }
  state.SetLabel("critical-instance chase");
}
BENCHMARK(BM_AnalyzeRefuted)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Prepare latency on the certified theory: range(0) == 1 lets the
// planner chase directly, 0 forces the translation pipeline.
void BM_Prepare(benchmark::State& state) {
  bool planner = state.range(0) == 1;
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    Theory theory = MustTheory(kWgGenTheory, &syms);
    Database db = WgGenDatabase(kChain, &syms);
    PreparedKbOptions options;
    options.planner = planner;
    state.ResumeTiming();
    auto kb = PreparedKb::Prepare(theory, db, &syms, options);
    if (!kb.ok()) {
      state.SkipWithError(kb.status().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(kb.value());
  }
  state.SetLabel(planner ? "chase-materialized" : "translation pipeline");
}
BENCHMARK(BM_Prepare)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintVerification();
  return gerel::bench::RunBenchmarks(argc, argv, "bench_termination_analysis");
}
