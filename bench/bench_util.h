// Shared workload generators for the experiment benches (DESIGN.md §3).
#ifndef GEREL_BENCH_BENCH_UTIL_H_
#define GEREL_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/parser.h"
#include "core/symbol_table.h"
#include "core/theory.h"

namespace gerel::bench {

// The running example Σp (paper Example 1).
inline const char* kRunningExample = R"(
  publication(X) -> exists K1, K2. keywords(X, K1, K2).
  keywords(X, K1, K2) -> hastopic(X, K1).
  hastopic(X, Z), hasauthor(X, U), hasauthor(Y, U), hastopic(Y, Z2),
    scientific(Z2), citedin(Y, X) -> scientific(Z).
  hasauthor(X, Y), hastopic(X, Z), scientific(Z) -> q(Y).
)";

inline Theory MustTheory(const char* text, SymbolTable* syms) {
  Result<Theory> t = ParseTheory(text, syms);
  if (!t.ok()) {
    std::fprintf(stderr, "bench theory parse error: %s\n",
                 t.status().message().c_str());
    std::abort();
  }
  return std::move(t).value();
}

// A publications database: `pubs` publications in a citation chain, each
// with two authors from a pool, the first one carrying a scientific
// topic.
inline Database PublicationDatabase(int pubs, SymbolTable* syms) {
  Database db;
  auto c = [&](const std::string& s) { return syms->Constant(s); };
  RelationId publication = syms->Relation("publication", 1);
  RelationId citedin = syms->Relation("citedin", 2);
  RelationId hasauthor = syms->Relation("hasauthor", 2);
  RelationId hastopic = syms->Relation("hastopic", 2);
  RelationId scientific = syms->Relation("scientific", 1);
  for (int i = 0; i < pubs; ++i) {
    Term p = c("p" + std::to_string(i));
    db.Insert(Atom(publication, {p}));
    db.Insert(Atom(hasauthor, {p, c("auth" + std::to_string(i / 2))}));
    db.Insert(Atom(hasauthor, {p, c("auth" + std::to_string(i / 2 + 1))}));
    if (i + 1 < pubs) {
      db.Insert(Atom(citedin, {p, c("p" + std::to_string(i + 1))}));
    }
  }
  db.Insert(Atom(hastopic, {c("p0"), c("t0")}));
  db.Insert(Atom(scientific, {c("t0")}));
  return db;
}

// A directed path a0 → a1 → ... → a_{n-1} in relation `rel`.
inline Database ChainDatabase(int n, const std::string& rel,
                              SymbolTable* syms) {
  Database db;
  RelationId e = syms->Relation(rel, 2);
  for (int i = 0; i + 1 < n; ++i) {
    db.Insert(Atom(e, {syms->Constant("a" + std::to_string(i)),
                       syms->Constant("a" + std::to_string(i + 1))}));
  }
  return db;
}

// A random sparse digraph with n nodes and m edges (seeded).
inline Database RandomGraph(int n, int m, const std::string& rel,
                            SymbolTable* syms, unsigned seed = 42) {
  Database db;
  RelationId e = syms->Relation(rel, 2);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> node(0, n - 1);
  for (int i = 0; i < m; ++i) {
    db.Insert(Atom(e, {syms->Constant("v" + std::to_string(node(rng))),
                       syms->Constant("v" + std::to_string(node(rng)))}));
  }
  return db;
}

// The frontier-guarded cycle-rule family of paper Examples 3/5: a cycle
// of r-atoms of the given length feeding p, plus a guarded generator
// whose nulls close cycles.
inline std::string NullCycleTheoryText(int cycle_len) {
  // a(X) -> exists Y0..Y_{k-2}. r(X,Y0), r(Y0,Y1), ..., r(Y_{k-2},X).
  std::string gen = "a(X) -> exists ";
  for (int i = 0; i + 1 < cycle_len; ++i) {
    if (i > 0) gen += ", ";
    gen += "Y" + std::to_string(i);
  }
  gen += ". r(X, Y0)";
  for (int i = 0; i + 2 < cycle_len; ++i) {
    gen += ", r(Y" + std::to_string(i) + ", Y" + std::to_string(i + 1) + ")";
  }
  gen += ", r(Y" + std::to_string(cycle_len - 2) + ", X).\n";
  std::string rule;
  for (int i = 0; i < cycle_len; ++i) {
    if (i > 0) rule += ", ";
    rule += "r(X" + std::to_string(i) + ", X" +
            std::to_string((i + 1) % cycle_len) + ")";
  }
  rule += " -> p(X0).\n";
  return gen + rule;
}

// A guarded existential chain of the given length (Thm 3 family):
//   s0(X) → ∃Y s1(X, Y); s_i(X, Y) → ∃Z s_{i+1}(Y, Z); s_last(X, Y) → goal(X).
inline std::string GuardedChainTheoryText(int length) {
  std::string out = "s0(X) -> exists Y. s1(X, Y).\n";
  for (int i = 1; i < length; ++i) {
    out += "s" + std::to_string(i) + "(X, Y) -> exists Z. s" +
           std::to_string(i + 1) + "(Y, Z).\n";
  }
  out += "s" + std::to_string(length) + "(X, Y) -> goal(X).\n";
  // Propagate goal back down the chain so saturation has work to do.
  for (int i = length; i >= 1; --i) {
    out += "s" + std::to_string(i) + "(X, Y), goal(Y) -> goal(X).\n";
  }
  return out;
}

// Console reporter that additionally accumulates every finished run, so
// the binary can drop a machine-readable BENCH_<name>.json next to the
// console table (regression tracking across commits; see EXPERIMENTS.md).
class JsonDumpReporter : public ::benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      runs_.push_back(run);
    }
  }

  // Writes BENCH_<binary_name>.json into the current directory.
  void Write(const std::string& binary_name) const {
    std::string path = "BENCH_" + binary_name + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    auto escape = [](const std::string& s) {
      std::string out;
      for (char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      return out;
    };
    std::fprintf(f, "{\n  \"binary\": \"%s\",\n  \"benchmarks\": [\n",
                 escape(binary_name).c_str());
    for (size_t i = 0; i < runs_.size(); ++i) {
      const Run& run = runs_[i];
      double iters = run.iterations > 0
                         ? static_cast<double>(run.iterations)
                         : 1.0;
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"wall_ms\": %.6f, "
                   "\"cpu_ms\": %.6f, \"iterations\": %lld, "
                   "\"threads\": %d",
                   escape(run.benchmark_name()).c_str(),
                   1e3 * run.real_accumulated_time / iters,
                   1e3 * run.cpu_accumulated_time / iters,
                   static_cast<long long>(run.iterations),
                   static_cast<int>(run.threads));
      // User counters carry workload facts (derived atoms, rounds,
      // closure sizes, evaluation threads) where the bench records them.
      for (const auto& [name, counter] : run.counters) {
        std::fprintf(f, ", \"%s\": %.6f", escape(name).c_str(),
                     static_cast<double>(counter.value));
      }
      std::fprintf(f, "}%s\n", i + 1 < runs_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }

 private:
  std::vector<Run> runs_;
};

// Shared driver for every bench main: run all registered benchmarks with
// the console output unchanged, then dump BENCH_<binary_name>.json.
inline int RunBenchmarks(int argc, char** argv,
                         const std::string& binary_name) {
  ::benchmark::Initialize(&argc, argv);
  JsonDumpReporter reporter;
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.Write(binary_name);
  return 0;
}

}  // namespace gerel::bench

#endif  // GEREL_BENCH_BENCH_UTIL_H_
