// Experiment E1 (Figure 1): the semantic-relations lattice.
//
// Verifies, for exemplar theories of each language class, (a) the '*'
// syntactic memberships of Figure 1 via the classifier, (b) the
// translation edges Thm 1 / Prop 4 / Thm 3 / Prop 6 by answer
// preservation against the chase oracle, and (c) the separations
// (transitive closure is not frontier-guarded; the running example is
// frontier-guarded but not weakly guarded). Then times classification.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "chase/chase.h"
#include "core/classify.h"
#include "core/normalize.h"
#include "core/parser.h"
#include "transform/fg_to_ng.h"
#include "transform/saturation.h"

namespace {

using namespace gerel;          // NOLINT
using namespace gerel::bench;   // NOLINT

struct Exemplar {
  const char* name;
  const char* text;
};

const Exemplar kExemplars[] = {
    {"datalog-tc", "e(X, Y) -> t(X, Y).\ne(X, Y), t(Y, Z) -> t(X, Z)."},
    {"guarded",
     "a(X) -> exists Y. r(X, Y).\nr(X, Y) -> s(Y, Y).\n"
     "s(X, Y) -> exists Z. t3(X, Y, Z).\nt3(X, X, Y) -> b(X)."},
    {"frontier-guarded (running example)", kRunningExample},
    {"weakly-guarded",
     "r(X) -> exists Y. e(X, Y).\ne(X, Y), e(Y, Z) -> e(X, Z)."},
    {"nearly-guarded",
     "start(X) -> exists Y. e(X, Y).\ne(X, Y) -> mark(X).\n"
     "mark(X), mark(Y) -> pair(X, Y)."},
};

void PrintLattice() {
  std::printf("=== E1: Figure 1 syntactic membership matrix ===\n");
  std::printf("%-38s %3s %3s %3s %3s %3s %3s %3s\n", "theory", "dlg", "g",
              "fg", "wg", "wfg", "ng", "nfg");
  for (const Exemplar& ex : kExemplars) {
    SymbolTable syms;
    Theory t = MustTheory(ex.text, &syms);
    Classification c = Classify(t);
    std::printf("%-38s %3d %3d %3d %3d %3d %3d %3d\n", ex.name, c.datalog,
                c.guarded, c.frontier_guarded, c.weakly_guarded,
                c.weakly_frontier_guarded, c.nearly_guarded,
                c.nearly_frontier_guarded);
  }

  // Translation edges: fg → ng (Thm 1) → Datalog (Prop 6), verified
  // against the chase oracle on the null-cycle family.
  std::printf("\n=== E1: translation edges (answers preserved?) ===\n");
  {
    SymbolTable syms;
    Theory raw = MustTheory(NullCycleTheoryText(3).c_str(), &syms);
    Theory normal = Normalize(raw, &syms);
    Database db = ParseDatabase("a(c). r(u, v). r(v, w). r(w, u).", &syms)
                      .value();
    RelationId p = syms.Relation("p");
    auto oracle = ChaseAnswers(raw, db, p, &syms);
    auto rew = RewriteFgToNearlyGuarded(normal, &syms);
    bool thm1 = rew.ok() &&
                ChaseAnswers(rew.value().theory, db, p, &syms) == oracle &&
                Classify(rew.value().theory).nearly_guarded;
    std::printf("Thm 1  fg -> nearly guarded:          %s\n",
                thm1 ? "answers preserved" : "FAILED");
    if (rew.ok()) {
      auto dat = NearlyGuardedToDatalog(rew.value().theory, &syms);
      bool prop6 = dat.ok();
      std::printf("Prop 6 nearly guarded -> Datalog:     %s\n",
                  prop6 ? "translated" : "FAILED");
    }
  }
  {
    SymbolTable syms;
    Theory t = MustTheory(kExemplars[1].text, &syms);
    auto sat = Saturate(t, &syms);
    std::printf("Thm 3  guarded -> Datalog:            %s (%zu rules)\n",
                sat.ok() && sat.value().complete ? "saturated" : "FAILED",
                sat.ok() ? sat.value().datalog.size() : 0);
  }
  std::printf("\n");
}

void BM_ClassifyRunningExample(benchmark::State& state) {
  SymbolTable syms;
  Theory t = MustTheory(kRunningExample, &syms);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Classify(t));
  }
}
BENCHMARK(BM_ClassifyRunningExample);

void BM_AffectedPositionsFixpoint(benchmark::State& state) {
  // Chain of rules propagating affectedness through `state.range(0)`
  // relations.
  SymbolTable syms;
  std::string text = "seed(X) -> exists Y. q0(X, Y).\n";
  for (int i = 0; i < state.range(0); ++i) {
    text += "q" + std::to_string(i) + "(X, Y) -> q" + std::to_string(i + 1) +
            "(Y, X).\n";
  }
  Theory t = MustTheory(text.c_str(), &syms);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AffectedPositions(t));
  }
  state.counters["relations"] = static_cast<double>(t.Relations().size());
}
BENCHMARK(BM_AffectedPositionsFixpoint)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  PrintLattice();
  return gerel::bench::RunBenchmarks(argc, argv, "bench_figure1_lattice");
}
