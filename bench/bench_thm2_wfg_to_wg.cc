// Experiment E6 (Theorem 2): weakly frontier-guarded → weakly guarded.
//
// Verifies the translation on a small wfg-not-wg theory and on the
// running example, and measures the annotated-expansion size. The full
// closure of the annotated running example is reported with a generous
// cap (it is the heavyweight data point of this reproduction: ~700k
// rules; pass --full to run it).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "chase/chase.h"
#include "core/classify.h"
#include "core/normalize.h"
#include "core/parser.h"
#include "transform/annotation.h"

namespace {

using namespace gerel;         // NOLINT
using namespace gerel::bench;  // NOLINT

const char* kSmallWfg = R"(
  r(X) -> exists Y. e(X, Y).
  e(X, Y), e(W, Z) -> both(X, W).
)";

void PrintVerification(bool full) {
  std::printf("=== E6: Thm 2 wfg -> wg ===\n");
  {
    SymbolTable syms;
    Theory t = MustTheory(kSmallWfg, &syms);
    Classification c = Classify(t);
    auto rew = RewriteWfgToWeaklyGuarded(t, &syms);
    if (!rew.ok()) {
      std::printf("small theory failed: %s\n",
                  rew.status().message().c_str());
      return;
    }
    Database db = ParseDatabase("r(a). e(b, c).", &syms).value();
    RelationId both = syms.Relation("both");
    bool preserved = ChaseAnswers(t, db, both, &syms) ==
                     ChaseAnswers(rew.value().theory, db, both, &syms);
    std::printf("small wfg (wg=%d) -> %zu rules, weakly-guarded=%d, "
                "complete=%d, answers preserved: %s\n",
                c.weakly_guarded, rew.value().theory.size(),
                Classify(rew.value().theory).weakly_guarded,
                rew.value().complete, preserved ? "yes" : "NO");
  }
  {
    SymbolTable syms;
    Theory normal = Normalize(MustTheory(kRunningExample, &syms), &syms);
    ExpansionOptions opts;
    opts.max_rules = full ? 2000000 : 80000;
    auto rew = RewriteWfgToWeaklyGuarded(normal, &syms, opts);
    if (!rew.ok()) {
      std::printf("running example failed: %s\n",
                  rew.status().message().c_str());
      return;
    }
    std::printf("running example (wfg, not wg) -> %zu rules, "
                "weakly-guarded=%d, complete=%d%s\n",
                rew.value().theory.size(),
                Classify(rew.value().theory).weakly_guarded,
                rew.value().complete,
                full ? "" : "  [capped BFS prefix; pass --full for the "
                            "complete ~700k-rule closure]");
    Database db = ParseDatabase(R"(
      publication(p1). publication(p2). citedin(p1, p2).
      hasauthor(p1, a1). hasauthor(p2, a1). hasauthor(p2, a2).
      hastopic(p1, t1). scientific(t1).
    )",
                                &syms)
                      .value();
    SymbolTable oracle_syms;
    Theory raw = MustTheory(kRunningExample, &oracle_syms);
    Database odb = ParseDatabase(R"(
      publication(p1). publication(p2). citedin(p1, p2).
      hasauthor(p1, a1). hasauthor(p2, a1). hasauthor(p2, a2).
      hastopic(p1, t1). scientific(t1).
    )",
                                 &oracle_syms)
                       .value();
    ChaseOptions big;
    big.max_steps = 20000000;
    big.max_atoms = 20000000;
    size_t expected =
        ChaseAnswers(raw, odb, oracle_syms.Relation("q"), &oracle_syms)
            .size();
    size_t got =
        ChaseAnswers(rew.value().theory, db, syms.Relation("q"), &syms, big)
            .size();
    std::printf("q-answers: rewritten %zu vs oracle %zu: %s\n\n", got,
                expected, got == expected ? "match" : "MISMATCH");
  }
}

void BM_RewriteSmallWfg(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    Theory t = MustTheory(kSmallWfg, &syms);
    state.ResumeTiming();
    auto rew = RewriteWfgToWeaklyGuarded(t, &syms);
    benchmark::DoNotOptimize(rew.ok());
  }
}
BENCHMARK(BM_RewriteSmallWfg)->Unit(benchmark::kMillisecond);

void BM_AnnotateRunningExample(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    Theory normal = Normalize(MustTheory(kRunningExample, &syms), &syms);
    ProperReordering pr = MakeProper(normal);
    state.ResumeTiming();
    auto a = AnnotateNonAffected(pr.theory);
    benchmark::DoNotOptimize(a.ok());
  }
}
BENCHMARK(BM_AnnotateRunningExample)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  // Strip --full before handing the args to google-benchmark.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  PrintVerification(full);
  return gerel::bench::RunBenchmarks(argc, argv, "bench_thm2_wfg_to_wg");
}
