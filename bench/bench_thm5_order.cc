// Experiment E10 (Theorem 5): the stratified weakly guarded Σsucc
// program. Verifies that Good orderings are exactly the n! permutations
// and that the non-monotonic domain-parity query comes out right, and
// measures the stratified chase cost as the domain grows.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include <cstdio>

#include "capture/order_program.h"
#include "core/parser.h"

namespace {

using namespace gerel;  // NOLINT

Database DomainDb(int n, SymbolTable* syms) {
  Database db;
  RelationId d = syms->Relation("dom", 1);
  for (int i = 0; i < n; ++i) {
    db.Insert(Atom(d, {syms->Constant("c" + std::to_string(i))}));
  }
  return db;
}

void PrintVerification() {
  std::printf("=== E10: Thm 5 — Sigma_succ rules (1)-(12) ===\n");
  std::printf("%4s %10s %10s %12s %10s\n", "n", "good", "n!", "domparity",
              "atoms");
  for (int n = 2; n <= 4; ++n) {
    SymbolTable syms;
    OrderProgram prog = BuildOrderProgram(&syms);
    Theory parity = ParseTheory(R"(
      ord#min(X, U) -> oddp(X, U).
      oddp(X, U), ord#succ(X, Y, U) -> evenp(Y, U).
      evenp(X, U), ord#succ(X, Y, U) -> oddp(Y, U).
      evenp(X, U), ord#max(X, U), ord#good(U) -> domeven.
      oddp(X, U), ord#max(X, U), ord#good(U) -> domodd.
    )",
                                &syms)
                        .value();
    Database db = DomainDb(n, &syms);
    auto result = RunOrderProgram(prog, parity, db, &syms);
    if (!result.ok()) {
      std::printf("%4d  error: %s\n", n, result.status().message().c_str());
      continue;
    }
    size_t goods = result.value().database.AtomsOf(prog.good).size();
    size_t fact = 1;
    for (int i = 2; i <= n; ++i) fact *= i;
    bool even = result.value().database.Contains(
        Atom(syms.Relation("domeven", 0), {}));
    bool odd = result.value().database.Contains(
        Atom(syms.Relation("domodd", 0), {}));
    const char* parity_str =
        even && !odd ? "even" : (odd && !even ? "odd" : "BROKEN");
    bool parity_ok = (n % 2 == 0) == even;
    std::printf("%4d %10zu %10zu %9s %s %9zu\n", n, goods, fact, parity_str,
                parity_ok ? "(ok)" : "(WRONG)",
                result.value().database.size());
  }
  std::printf("\n");
}

void BM_OrderProgram(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  size_t atoms = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    OrderProgram prog = BuildOrderProgram(&syms);
    Database db = DomainDb(n, &syms);
    state.ResumeTiming();
    auto result = RunOrderProgram(prog, Theory(), db, &syms);
    if (!result.ok()) {
      state.SkipWithError(result.status().message().c_str());
      return;
    }
    atoms = result.value().database.size();
  }
  state.counters["atoms"] = static_cast<double>(atoms);
}
BENCHMARK(BM_OrderProgram)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  PrintVerification();
  return gerel::bench::RunBenchmarks(argc, argv, "bench_thm5_order");
}
