// Serving-layer throughput (DESIGN.md §7 "Serving layer"): prepared
// queries against the one-shot AnswerKbQuery pipeline, incremental
// asserts against full re-materialization, and the prepare cost itself.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/parser.h"
#include "service/prepared_kb.h"
#include "transform/pipeline.h"

namespace {

using namespace gerel;         // NOLINT
using namespace gerel::bench;  // NOLINT

const char* kTheory = R"(
  e(X, Y) -> t(X, Y).
  e(X, Y), t(Y, Z) -> t(X, Z).
)";

// One one-shot AnswerKbQuery on this instance costs ~40 ms (the partial
// grounding is cubic in the domain and the saturation superlinear in the
// grounded rules); the prepared route answers the same query in
// microseconds. Keep the chain small enough that the 100-query one-shot
// baseline finishes in seconds.
constexpr int kChain = 12;

Rule MakeQuery(int i, SymbolTable* syms) {
  // Point queries t(a_i, V) -> q(V): a realistic served workload (cycling
  // through kChain distinct queries also exercises the answer cache).
  RelationId t = syms->Relation("t", 2);
  RelationId q = syms->Relation("q", 1);
  Term a = syms->Constant("a" + std::to_string(i % kChain));
  Term v = syms->Variable("V");
  return Rule::Positive({Atom(t, {a, v})}, {Atom(q, {v})});
}

// Acceptance check printed before the benchmark table: N prepared queries
// must beat N one-shot pipeline calls by >= 5x, and an Assert must be far
// cheaper than the initial materialization.
void PrintVerification() {
  std::printf("=== Service throughput: prepared vs one-shot ===\n");
  constexpr int kQueries = 100;
  SymbolTable syms;
  Theory theory = MustTheory(kTheory, &syms);
  Database db = ChainDatabase(kChain, "e", &syms);
  std::vector<Rule> queries;
  for (int i = 0; i < kQueries; ++i) queries.push_back(MakeQuery(i, &syms));

  auto now = [] { return std::chrono::steady_clock::now(); };
  auto ms = [](auto d) {
    return std::chrono::duration<double, std::milli>(d).count();
  };

  auto t0 = now();
  size_t oneshot_total = 0;
  for (const Rule& cq : queries) {
    auto r = AnswerKbQuery(theory, cq, db, &syms);
    if (!r.ok()) {
      std::printf("one-shot failed: %s\n", r.status().message().c_str());
      return;
    }
    oneshot_total += r.value().answers.size();
  }
  double oneshot_ms = ms(now() - t0);

  t0 = now();
  auto kb = PreparedKb::Prepare(theory, db, &syms);
  if (!kb.ok()) {
    std::printf("prepare failed: %s\n", kb.status().message().c_str());
    return;
  }
  double prepare_ms = ms(now() - t0);
  t0 = now();
  size_t prepared_total = 0;
  for (const Rule& cq : queries) {
    prepared_total += kb.value()->Query(cq).value().answers.size();
  }
  double prepared_ms = ms(now() - t0);

  RelationId e = syms.Relation("e", 2);
  Atom extra(e, {syms.Constant("a" + std::to_string(kChain - 1)),
                 syms.Constant("fresh")});
  t0 = now();
  auto assert_result = kb.value()->Assert({extra});
  double assert_ms = ms(now() - t0);

  std::printf("%d one-shot queries:  %8.2f ms (%zu answers)\n", kQueries,
              oneshot_ms, oneshot_total);
  std::printf("prepare:              %8.2f ms\n", prepare_ms);
  std::printf("%d prepared queries:  %8.2f ms (%zu answers)\n", kQueries,
              prepared_ms, prepared_total);
  std::printf("1 delta assert:       %8.2f ms (delta=%d, derived=%zu)\n",
              assert_ms, assert_result.ok() && assert_result.value().delta,
              assert_result.ok() ? assert_result.value().derived_atoms : 0u);
  double speedup = prepared_ms > 0 ? oneshot_ms / prepared_ms : 0;
  std::printf("speedup: %.1fx (acceptance: >= 5x), answers %s\n",
              speedup, prepared_total == oneshot_total ? "match" : "MISMATCH");
  std::printf("assert/prepare ratio: %.3f (acceptance: << 1)\n\n",
              prepare_ms > 0 ? assert_ms / prepare_ms : 0);
}

void BM_OneShotQuery(benchmark::State& state) {
  SymbolTable syms;
  Theory theory = MustTheory(kTheory, &syms);
  Database db = ChainDatabase(kChain, "e", &syms);
  int i = 0;
  for (auto _ : state) {
    Rule cq = MakeQuery(i++, &syms);
    auto r = AnswerKbQuery(theory, cq, db, &syms);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value().answers.size());
  }
  state.SetLabel("one-shot AnswerKbQuery");
}
BENCHMARK(BM_OneShotQuery)->Unit(benchmark::kMillisecond);

void BM_PreparedQuery(benchmark::State& state) {
  bool cached = state.range(0) == 1;
  SymbolTable syms;
  Theory theory = MustTheory(kTheory, &syms);
  Database db = ChainDatabase(kChain, "e", &syms);
  PreparedKbOptions options;
  options.answer_cache_capacity = cached ? 1024 : 0;
  auto kb = PreparedKb::Prepare(theory, db, &syms, options);
  if (!kb.ok()) {
    state.SkipWithError(kb.status().message().c_str());
    return;
  }
  std::vector<Rule> queries;
  for (int i = 0; i < kChain; ++i) queries.push_back(MakeQuery(i, &syms));
  int i = 0;
  for (auto _ : state) {
    auto r = kb.value()->Query(queries[i++ % queries.size()]);
    benchmark::DoNotOptimize(r.value().answers.size());
  }
  ServiceStats stats = kb.value()->stats();
  state.counters["cache_hits"] = static_cast<double>(stats.cache_hits);
  state.counters["model_atoms"] = static_cast<double>(stats.model_atoms);
  state.SetLabel(cached ? "prepared, cache on" : "prepared, cache off");
}
BENCHMARK(BM_PreparedQuery)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_PrepareOnly(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    Theory theory = MustTheory(kTheory, &syms);
    Database db = ChainDatabase(kChain, "e", &syms);
    state.ResumeTiming();
    auto kb = PreparedKb::Prepare(theory, db, &syms);
    if (!kb.ok()) {
      state.SkipWithError(kb.status().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(kb.value()->model_size());
  }
  state.SetLabel("prepare + materialize");
}
BENCHMARK(BM_PrepareOnly)->Unit(benchmark::kMillisecond);

void BM_PreparedAssertDelta(benchmark::State& state) {
  bool delta = state.range(0) == 1;
  SymbolTable syms;
  Theory theory = MustTheory(kTheory, &syms);
  Database db = ChainDatabase(kChain, "e", &syms);
  RelationId e = syms.Relation("e", 2);
  // Fresh edges hanging off the chain tail; pre-interned so the loop
  // body is pure Assert (or assert + rebuild when delta is off).
  std::vector<Atom> facts;
  for (int i = 0; i < 4096; ++i) {
    facts.push_back(Atom(e, {syms.Constant("x" + std::to_string(i)),
                             syms.Constant("x" + std::to_string(i + 1))}));
  }
  auto kb = PreparedKb::Prepare(theory, db, &syms);
  if (!kb.ok()) {
    state.SkipWithError(kb.status().message().c_str());
    return;
  }
  size_t i = 0;
  double prepare_ms = kb.value()->stats().prepare_wall_ms;
  for (auto _ : state) {
    if (i >= facts.size()) {
      state.SkipWithError("fact pool exhausted");
      return;
    }
    if (delta) {
      auto r = kb.value()->Assert({facts[i++]});
      benchmark::DoNotOptimize(r.value().derived_atoms);
    } else {
      // Baseline: what the assert would cost without the delta path —
      // re-prepare over the grown database.
      db.Insert(facts[i++]);
      auto fresh = PreparedKb::Prepare(theory, db, &syms);
      benchmark::DoNotOptimize(fresh.value()->model_size());
    }
  }
  ServiceStats stats = kb.value()->stats();
  state.counters["prepare_ms"] = prepare_ms;
  state.counters["assert_ms_total"] = stats.assert_wall_ms;
  state.counters["delta_derived"] =
      static_cast<double>(stats.delta_derived_atoms);
  state.SetLabel(delta ? "incremental assert" : "re-prepare baseline");
}
// Fixed iteration count: each iteration consumes one fact from the
// pre-interned pool (auto-scaling would exhaust it).
BENCHMARK(BM_PreparedAssertDelta)->Arg(1)->Arg(0)
    ->Iterations(1000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintVerification();
  return gerel::bench::RunBenchmarks(argc, argv, "bench_service_throughput");
}
