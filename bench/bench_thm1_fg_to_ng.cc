// Experiment E4 (Theorem 1): frontier-guarded → nearly guarded.
//
// Measures expansion size and time on the Example 3/5 cycle family
// (cycle length drives the exponential the paper proves unavoidable),
// verifying answer preservation against the chase oracle at each size.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "chase/chase.h"
#include "core/classify.h"
#include "core/normalize.h"
#include "core/parser.h"
#include "transform/fg_to_ng.h"

namespace {

using namespace gerel;         // NOLINT
using namespace gerel::bench;  // NOLINT

void PrintGrowthTable() {
  std::printf("=== E4: rew(Sigma) growth on the cycle family "
              "(Examples 3/5) ===\n");
  std::printf("%6s %10s %12s %10s %10s %10s\n", "cycle", "rules-in",
              "rules-out", "fresh-H", "complete", "answers-ok");
  for (int len = 3; len <= 4; ++len) {
    SymbolTable syms;
    Theory raw = MustTheory(NullCycleTheoryText(len).c_str(), &syms);
    Theory normal = Normalize(raw, &syms);
    ExpansionOptions opts;
    opts.max_rules = 400000;
    auto rew = RewriteFgToNearlyGuarded(normal, &syms, opts);
    if (!rew.ok()) {
      std::printf("%6d  error: %s\n", len, rew.status().message().c_str());
      continue;
    }
    // The oracle comparison chases the (large) rewritten theory; do it
    // for the small instance, report size-only beyond.
    const char* ok = "(skipped)";
    if (len <= 3) {
      Database db = ParseDatabase("a(c).", &syms).value();
      RelationId p = syms.Relation("p");
      ChaseOptions big;
      big.max_steps = 20000000;
      big.max_atoms = 20000000;
      ok = ChaseAnswers(raw, db, p, &syms) ==
                   ChaseAnswers(rew.value().theory, db, p, &syms, big)
               ? "yes"
               : "NO";
    }
    std::printf("%6d %10zu %12zu %10zu %10d %10s\n", len, normal.size(),
                rew.value().theory.size(),
                rew.value().expansion_stats.fresh_relations,
                rew.value().complete, ok);
  }
  std::printf("\n");
}

void BM_ExpandCycle(benchmark::State& state) {
  int len = static_cast<int>(state.range(0));
  size_t out_rules = 0;
  bool complete = false;
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    Theory normal =
        Normalize(MustTheory(NullCycleTheoryText(len).c_str(), &syms), &syms);
    ExpansionOptions opts;
    opts.max_rules = 400000;
    state.ResumeTiming();
    auto rew = RewriteFgToNearlyGuarded(normal, &syms, opts);
    if (!rew.ok()) {
      state.SkipWithError(rew.status().message().c_str());
      return;
    }
    out_rules = rew.value().theory.size();
    complete = rew.value().complete;
  }
  state.counters["rules"] = static_cast<double>(out_rules);
  state.counters["complete"] = complete ? 1 : 0;
}
BENCHMARK(BM_ExpandCycle)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_ExpandRunningExample(benchmark::State& state) {
  size_t out_rules = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    Theory normal = Normalize(MustTheory(kRunningExample, &syms), &syms);
    ExpansionOptions opts;
    opts.max_rules = 400000;
    state.ResumeTiming();
    auto rew = RewriteFgToNearlyGuarded(normal, &syms, opts);
    if (!rew.ok()) {
      state.SkipWithError(rew.status().message().c_str());
      return;
    }
    out_rules = rew.value().theory.size();
  }
  state.counters["rules"] = static_cast<double>(out_rules);
}
BENCHMARK(BM_ExpandRunningExample)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  PrintGrowthTable();
  return gerel::bench::RunBenchmarks(argc, argv, "bench_thm1_fg_to_ng");
}
