// Experiment E7 (Theorem 3 / Prop 6 and the §6 size analysis):
// guarded → Datalog translation sizes and answer equivalence, on guarded
// existential chains of growing length.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "chase/chase.h"
#include "core/parser.h"
#include "datalog/evaluator.h"
#include "transform/saturation.h"

namespace {

using namespace gerel;         // NOLINT
using namespace gerel::bench;  // NOLINT

void PrintSizeTable() {
  std::printf("=== E7: dat(Sigma) size vs guarded chain length ===\n");
  std::printf("%6s %8s %10s %10s %10s %12s\n", "chain", "rules", "closure",
              "datalog", "complete", "answers-ok");
  for (int len = 2; len <= 8; len += 2) {
    SymbolTable syms;
    Theory t = MustTheory(GuardedChainTheoryText(len).c_str(), &syms);
    auto sat = Saturate(t, &syms);
    if (!sat.ok()) {
      std::printf("%6d  error: %s\n", len, sat.status().message().c_str());
      continue;
    }
    // Oracle check: goal(a) must follow from s0(a) (the whole chain of
    // invented nulls reaches the end and goal propagates back).
    Database db = ParseDatabase("s0(a).", &syms).value();
    auto eval = EvaluateDatalog(sat.value().datalog, db, &syms);
    bool ok = eval.ok() && eval.value().database.Contains(Atom(
                               syms.Relation("goal"), {syms.Constant("a")}));
    std::printf("%6d %8zu %10zu %10zu %10d %12s\n", len, t.size(),
                sat.value().closure.size(), sat.value().datalog.size(),
                sat.value().complete, ok ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_SaturateChain(benchmark::State& state) {
  int len = static_cast<int>(state.range(0));
  size_t closure = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable syms;
    Theory t = MustTheory(GuardedChainTheoryText(len).c_str(), &syms);
    state.ResumeTiming();
    auto sat = Saturate(t, &syms);
    if (!sat.ok()) {
      state.SkipWithError(sat.status().message().c_str());
      return;
    }
    closure = sat.value().closure.size();
  }
  state.counters["closure"] = static_cast<double>(closure);
}
BENCHMARK(BM_SaturateChain)->Arg(2)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_EvaluateDatChainVsChase(benchmark::State& state) {
  // Compare the two decision procedures end-to-end: translate-once +
  // Datalog evaluation, vs direct chase (both terminate here).
  int len = 6;
  SymbolTable syms;
  Theory t = MustTheory(GuardedChainTheoryText(len).c_str(), &syms);
  auto sat = Saturate(t, &syms);
  Database db = ParseDatabase("s0(a). s0(b). s0(c).", &syms).value();
  if (state.range(0) == 0) {
    size_t derived = 0, rounds = 0;
    for (auto _ : state) {
      auto eval = EvaluateDatalog(sat.value().datalog, db, &syms);
      benchmark::DoNotOptimize(eval.ok());
      derived = eval.value().derived_atoms;
      rounds = eval.value().rounds;
    }
    state.counters["derived"] = static_cast<double>(derived);
    state.counters["rounds"] = static_cast<double>(rounds);
    state.counters["eval_threads"] = 1;
    state.SetLabel("datalog-after-translation");
  } else {
    size_t derived = 0;
    for (auto _ : state) {
      SymbolTable fresh = syms;
      ChaseResult r = Chase(t, db, &fresh);
      benchmark::DoNotOptimize(r.saturated);
      derived = r.database.size() - db.size();
    }
    state.counters["derived"] = static_cast<double>(derived);
    state.SetLabel("direct-chase");
  }
}
BENCHMARK(BM_EvaluateDatChainVsChase)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_EvaluateDatThreads(benchmark::State& state) {
  // The translated program evaluated with the parallel semi-naive engine:
  // rules of a round match concurrently against the round snapshot. The
  // final database is identical for every lane count (the engine merges
  // per-rule buffers in rule order); wall time depends on available cores.
  int len = 6;
  SymbolTable syms;
  Theory t = MustTheory(GuardedChainTheoryText(len).c_str(), &syms);
  auto sat = Saturate(t, &syms);
  std::string facts;
  for (int i = 0; i < 24; ++i) {
    facts += "s0(c" + std::to_string(i) + ").\n";
  }
  Database db = ParseDatabase(facts.c_str(), &syms).value();
  DatalogOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  size_t derived = 0, rounds = 0;
  for (auto _ : state) {
    auto eval = EvaluateDatalog(sat.value().datalog, db, &syms, options);
    benchmark::DoNotOptimize(eval.ok());
    derived = eval.value().derived_atoms;
    rounds = eval.value().rounds;
  }
  state.counters["derived"] = static_cast<double>(derived);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["eval_threads"] = static_cast<double>(options.num_threads);
}
BENCHMARK(BM_EvaluateDatThreads)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintSizeTable();
  return gerel::bench::RunBenchmarks(argc, argv, "bench_thm3_dat_size");
}
