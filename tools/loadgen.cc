// gerel-loadgen: companion load generator for gerel-server.
//
//   gerel-loadgen [--connect=HOST:PORT] [--program=FILE] [--kb=NAME]
//                 [--snapshot-dir=DIR] [--clients=N] [--requests=N]
//                 [--assert-every=N] [--retract-every=N] [--workers=N]
//                 [--query=CQ] [--assert-rel=REL] [--min-rps=N] [--quiet]
//
// Default (in-process) mode boots a registry + socket server on an
// ephemeral loopback port, measures cold start (fresh prepare) vs warm
// start (snapshot reload) of the benchmark tenant, then drives a mixed
// query/assert/retract workload from `--clients` real socket
// connections — each client periodically retracts the edge it asserted
// last (the DRed delta path), so the steady state exercises all three
// verbs. `--retract-every=0` disables retracts.
// `--connect` skips the start measurements and aims the same workload
// at an already-running server (the tenant is prepared on demand).
//
// Results land in BENCH_server_throughput.json in the current
// directory, in the same shape every bench binary dumps
// (bench/bench_util.h), so tools/bench_diff.py tracks server throughput
// alongside the paper experiments. The mixed-load entry's wall_ms is
// the mean per-request latency; requests_per_s, p50_ms, and p99_ms ride
// along as counters.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "server/dispatch.h"
#include "server/json.h"
#include "server/registry.h"
#include "server/server.h"
#include "server/wire.h"

namespace {

using namespace gerel;          // NOLINT
using namespace gerel::server;  // NOLINT

// The default workload program (data/transitive_closure.gerel).
constexpr char kDefaultProgram[] =
    "e(X, Y) -> t(X, Y).\n"
    "e(X, Y), t(Y, Z) -> t(X, Z).\n"
    "e(a, b). e(b, c). e(c, d).\n";

struct Args {
  std::string connect;  // HOST:PORT; empty = in-process server.
  std::string program_path;
  std::string kb = "bench";
  std::string snapshot_dir;
  std::string query = "t(X, Y) -> ans(X, Y)";
  std::string assert_rel = "e";
  size_t clients = 8;
  size_t requests = 250;    // Per client.
  size_t assert_every = 8;   // Every Nth request is an assert batch.
  size_t retract_every = 16;  // Every Nth request retracts the last assert.
  size_t workers = 8;       // In-process server worker threads.
  double min_rps = 0;       // Fail below this throughput (0 = report only).
  bool quiet = false;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: gerel-loadgen [--connect=HOST:PORT] [--program=FILE]\n"
      "                     [--kb=NAME] [--snapshot-dir=DIR]\n"
      "                     [--clients=N] [--requests=N]\n"
      "                     [--assert-every=N] [--retract-every=N]\n"
      "                     [--workers=N] [--query=CQ]\n"
      "                     [--assert-rel=REL] [--min-rps=N] [--quiet]\n");
  return 64;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// A minimal blocking JSON-lines client over one TCP connection.
class LineClient {
 public:
  bool Connect(const std::string& host, uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      return false;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  // Sends one request line, reads one response line; true iff the
  // response parses with "status": "ok".
  bool Call(const std::string& request, std::string* response) {
    std::string framed = request + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    while (true) {
      size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *response = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[8192];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

bool ResponseOk(const std::string& line) {
  Result<JsonValue> v = JsonValue::Parse(line);
  if (!v.ok()) return false;
  const JsonValue* status = v.value().Get("status");
  return status != nullptr && status->is_string() &&
         status->as_string() == "ok";
}

struct BenchEntry {
  std::string name;
  double wall_ms = 0;
  double cpu_ms = 0;
  long long iterations = 1;
  int threads = 1;
  std::vector<std::pair<std::string, double>> counters;
};

void WriteBenchJson(const std::vector<BenchEntry>& entries) {
  std::FILE* f = std::fopen("BENCH_server_throughput.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr,
                 "loadgen: cannot write BENCH_server_throughput.json\n");
    return;
  }
  std::fprintf(f,
               "{\n  \"binary\": \"server_throughput\",\n"
               "  \"benchmarks\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const BenchEntry& e = entries[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"wall_ms\": %.6f, "
                 "\"cpu_ms\": %.6f, \"iterations\": %lld, "
                 "\"threads\": %d",
                 e.name.c_str(), e.wall_ms, e.cpu_ms, e.iterations,
                 e.threads);
    for (const auto& [name, value] : e.counters) {
      std::fprintf(f, ", \"%s\": %.6f", name.c_str(), value);
    }
    std::fprintf(f, "}%s\n", i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

// One client's share of the mixed workload; latencies in ms appended to
// *latencies (pre-sized by the caller).
void RunClient(const Args& args, const std::string& host, uint16_t port,
               size_t client_index, std::vector<double>* latencies,
               std::atomic<size_t>* errors) {
  LineClient client;
  if (!client.Connect(host, port)) {
    errors->fetch_add(args.requests);
    return;
  }
  const std::string query_frame =
      "{\"op\": \"query\", \"kb\": \"" + args.kb + "\", \"cq\": \"" +
      JsonEscape(args.query) + "\"}";
  std::string response;
  // The fact this client asserted most recently and has not yet
  // retracted; retract slots fall back to a query while it is empty.
  std::string pending_retract;
  for (size_t i = 0; i < args.requests; ++i) {
    std::string frame;
    if (args.assert_every != 0 && i % args.assert_every == 1) {
      // Fresh constants per client keep every batch on the delta path.
      std::string tag = "lg" + std::to_string(client_index) + "_" +
                        std::to_string(i);
      std::string fact =
          args.assert_rel + "(" + tag + "a, " + tag + "b)";
      frame = "{\"op\": \"assert\", \"kb\": \"" + args.kb +
              "\", \"facts\": \"" + fact + "\"}";
      pending_retract = fact;
    } else if (args.retract_every != 0 &&
               i % args.retract_every == 3 && !pending_retract.empty()) {
      // Retract this client's own last assert: always a live EDB fact,
      // so the server takes the DRed delta path.
      frame = "{\"op\": \"retract\", \"kb\": \"" + args.kb +
              "\", \"facts\": \"" + pending_retract + "\"}";
      pending_retract.clear();
    } else {
      frame = query_frame;
    }
    double start = NowMs();
    bool ok = client.Call(frame, &response) && ResponseOk(response);
    (*latencies)[client_index * args.requests + i] = NowMs() - start;
    if (!ok) errors->fetch_add(1);
  }
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  size_t index = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[index];
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      if (arg.compare(0, n, prefix) == 0) return argv[i] + n;
      return nullptr;
    };
    if (const char* p = value("--connect=")) {
      args.connect = p;
    } else if (const char* p = value("--program=")) {
      args.program_path = p;
    } else if (const char* p = value("--kb=")) {
      args.kb = p;
    } else if (const char* p = value("--snapshot-dir=")) {
      args.snapshot_dir = p;
    } else if (const char* p = value("--query=")) {
      args.query = p;
    } else if (const char* p = value("--assert-rel=")) {
      args.assert_rel = p;
    } else if (const char* p = value("--clients=")) {
      args.clients = std::strtoul(p, nullptr, 10);
    } else if (const char* p = value("--requests=")) {
      args.requests = std::strtoul(p, nullptr, 10);
    } else if (const char* p = value("--assert-every=")) {
      args.assert_every = std::strtoul(p, nullptr, 10);
    } else if (const char* p = value("--retract-every=")) {
      args.retract_every = std::strtoul(p, nullptr, 10);
    } else if (const char* p = value("--workers=")) {
      args.workers = std::strtoul(p, nullptr, 10);
    } else if (const char* p = value("--min-rps=")) {
      args.min_rps = std::strtod(p, nullptr);
    } else if (arg == "--quiet") {
      args.quiet = true;
    } else {
      std::fprintf(stderr, "loadgen: unknown flag %s\n", argv[i]);
      return Usage();
    }
  }
  if (args.clients == 0 || args.requests == 0) return Usage();

  std::string program = kDefaultProgram;
  if (!args.program_path.empty()) {
    std::ifstream in(args.program_path);
    if (!in) {
      std::fprintf(stderr, "loadgen: cannot open %s\n",
                   args.program_path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    program = buf.str();
  }

  std::vector<BenchEntry> entries;
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  // In-process plumbing (unused in --connect mode).
  std::unique_ptr<TenantRegistry> registry;
  std::unique_ptr<Dispatcher> dispatcher;
  std::unique_ptr<SocketServer> server;
  std::string scratch_dir;

  if (args.connect.empty()) {
    // Cold vs warm start: prepare the tenant from source, snapshot it,
    // then reload the snapshot through a second registry.
    scratch_dir = args.snapshot_dir;
    if (scratch_dir.empty()) {
      char tmpl[] = "/tmp/gerel-loadgen-XXXXXX";
      const char* made = ::mkdtemp(tmpl);
      if (made == nullptr) {
        std::fprintf(stderr, "loadgen: mkdtemp failed\n");
        return 1;
      }
      scratch_dir = made;
    }
    TenantRegistry::Config config;
    config.snapshot_dir = scratch_dir;
    {
      // Cold: no snapshot on disk yet; Prepare materializes and saves.
      TenantRegistry cold_registry(config);
      TenantRegistry::PrepareInfo info;
      double start = NowMs();
      auto tenant =
          cold_registry.Prepare(args.kb, program, /*max_rules=*/0, &info);
      double cold_ms = NowMs() - start;
      if (!tenant.ok()) {
        std::fprintf(stderr, "loadgen: prepare: %s\n",
                     std::string(tenant.status().message()).c_str());
        return 1;
      }
      if (info.loaded_snapshot) {
        std::fprintf(stderr,
                     "loadgen: stale snapshot in %s skews cold start; "
                     "remove it first\n",
                     scratch_dir.c_str());
        return 1;
      }
      BenchEntry cold;
      cold.name = "server/cold_start";
      cold.wall_ms = cold_ms;
      cold.cpu_ms = cold_ms;
      cold.counters.emplace_back(
          "model_atoms",
          static_cast<double>(tenant.value()->kb->model_size()));
      entries.push_back(cold);
    }
    // Warm: a fresh registry finds the snapshot the cold pass saved.
    registry = std::make_unique<TenantRegistry>(config);
    {
      TenantRegistry::PrepareInfo info;
      double start = NowMs();
      auto tenant =
          registry->Prepare(args.kb, program, /*max_rules=*/0, &info);
      double warm_ms = NowMs() - start;
      if (!tenant.ok() || !info.loaded_snapshot) {
        std::fprintf(stderr, "loadgen: warm start did not load the "
                             "snapshot\n");
        return 1;
      }
      BenchEntry warm;
      warm.name = "server/warm_start";
      warm.wall_ms = warm_ms;
      warm.cpu_ms = warm_ms;
      warm.counters.emplace_back(
          "model_atoms",
          static_cast<double>(tenant.value()->kb->model_size()));
      entries.push_back(warm);
    }
    dispatcher = std::make_unique<Dispatcher>(registry.get());
    ServerOptions options;
    options.num_workers = args.workers;
    server = std::make_unique<SocketServer>(dispatcher.get(), options);
    Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "loadgen: %s\n",
                   std::string(started.message()).c_str());
      return 1;
    }
    port = server->port();
  } else {
    size_t colon = args.connect.rfind(':');
    if (colon == std::string::npos) return Usage();
    host = args.connect.substr(0, colon);
    port = static_cast<uint16_t>(
        std::strtoul(args.connect.c_str() + colon + 1, nullptr, 10));
    // Make sure the tenant exists; kb_exists answers are fine.
    LineClient bootstrap;
    if (!bootstrap.Connect(host, port)) {
      std::fprintf(stderr, "loadgen: cannot connect to %s\n",
                   args.connect.c_str());
      return 1;
    }
    std::string response;
    if (!bootstrap.Call("{\"op\": \"prepare\", \"kb\": \"" + args.kb +
                            "\", \"program\": \"" + JsonEscape(program) +
                            "\"}",
                        &response)) {
      std::fprintf(stderr, "loadgen: prepare request failed\n");
      return 1;
    }
  }

  // Mixed workload: `clients` connections, `requests` each.
  std::vector<double> latencies(args.clients * args.requests, 0);
  std::atomic<size_t> errors{0};
  std::clock_t cpu_start = std::clock();
  double wall_start = NowMs();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < args.clients; ++c) {
    threads.emplace_back(RunClient, std::cref(args), std::cref(host),
                         port, c, &latencies, &errors);
  }
  for (std::thread& t : threads) t.join();
  double total_wall_ms = NowMs() - wall_start;
  double total_cpu_ms = 1e3 * static_cast<double>(std::clock() - cpu_start) /
                        CLOCKS_PER_SEC;
  size_t total_requests = args.clients * args.requests;
  double rps = total_wall_ms > 0 ? 1e3 * total_requests / total_wall_ms : 0;

  std::sort(latencies.begin(), latencies.end());
  double p50 = Percentile(latencies, 0.50);
  double p99 = Percentile(latencies, 0.99);

  BenchEntry mixed;
  mixed.name = "server/mixed_load";
  mixed.wall_ms = total_wall_ms / total_requests;  // Mean per request.
  mixed.cpu_ms = total_cpu_ms / total_requests;
  mixed.iterations = static_cast<long long>(total_requests);
  mixed.threads = static_cast<int>(args.clients);
  mixed.counters.emplace_back("requests_per_s", rps);
  mixed.counters.emplace_back("p50_ms", p50);
  mixed.counters.emplace_back("p99_ms", p99);
  mixed.counters.emplace_back("errors", static_cast<double>(errors.load()));
  entries.push_back(mixed);

  if (server != nullptr) server->Shutdown();
  if (args.snapshot_dir.empty() && !scratch_dir.empty()) {
    // Best-effort scratch cleanup (snapshot file + directory).
    std::remove((scratch_dir + "/" + args.kb + ".snap").c_str());
    ::rmdir(scratch_dir.c_str());
  }

  WriteBenchJson(entries);
  if (!args.quiet) {
    for (const BenchEntry& e : entries) {
      std::printf("%-22s wall %10.3f ms", e.name.c_str(), e.wall_ms);
      for (const auto& [name, v] : e.counters) {
        std::printf("  %s=%.3f", name.c_str(), v);
      }
      std::printf("\n");
    }
  }
  if (errors.load() > 0) {
    std::fprintf(stderr, "loadgen: %zu request(s) failed\n", errors.load());
    return 1;
  }
  if (args.min_rps > 0 && rps < args.min_rps) {
    std::fprintf(stderr, "loadgen: throughput %.0f req/s below --min-rps=%.0f\n",
                 rps, args.min_rps);
    return 1;
  }
  return 0;
}
