#!/usr/bin/env bash
# Runs clang-tidy (config in .clang-tidy) over the first-party sources.
#
# Usage: tools/run_clang_tidy.sh [build-dir] [clang-tidy-args...]
#
# Environment:
#   CLANG_TIDY      clang-tidy binary (default: clang-tidy from PATH)
#   TIDY_PATHS      space-separated repo-relative globs to lint
#                   (default: "src/*/*.cc tools/*.cc")
#   TIDY_SKIP_EXIT  exit code when clang-tidy is unavailable
#                   (default: 0 so plain CI images skip silently; the
#                   ctest lane sets 77 to match its SKIP_RETURN_CODE)
#
# Needs a build directory with a compile_commands.json; configures one
# with CMAKE_EXPORT_COMPILE_COMMANDS if the default (build/) lacks it.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
shift || true

tidy="${CLANG_TIDY:-clang-tidy}"
skip_exit="${TIDY_SKIP_EXIT:-0}"
if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "run_clang_tidy: $tidy not found; skipping (install LLVM to enable)" >&2
  exit "$skip_exit"
fi

if [ ! -f "$build/compile_commands.json" ]; then
  cmake -B "$build" -S "$repo" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi
if [ ! -f "$build/compile_commands.json" ]; then
  echo "run_clang_tidy: no compile_commands.json in $build" >&2
  exit 2
fi

# First-party translation units only — gtest and generated files are
# not ours to lint. TIDY_PATHS narrows the sweep (the ctest lane lints
# src/analyze/ on every run; the full sweep stays a manual tool).
paths="${TIDY_PATHS:-src/*/*.cc tools/*.cc}"
# shellcheck disable=SC2086
mapfile -t files < <(cd "$repo" && ls $paths)

status=0
for f in "${files[@]}"; do
  echo "== $f"
  "$tidy" -p "$build" --quiet "$@" "$repo/$f" || status=1
done
exit $status
