#!/usr/bin/env bash
# Runs clang-tidy (config in .clang-tidy) over the first-party sources.
#
# Usage: tools/run_clang_tidy.sh [build-dir] [clang-tidy-args...]
#
# Needs a build directory with a compile_commands.json; configures one
# with CMAKE_EXPORT_COMPILE_COMMANDS if the default (build/) lacks it.
# Exits 0 when clang-tidy is unavailable so CI images without LLVM
# skip the lane instead of failing it.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
shift || true

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "run_clang_tidy: $tidy not found; skipping (install LLVM to enable)" >&2
  exit 0
fi

if [ ! -f "$build/compile_commands.json" ]; then
  cmake -B "$build" -S "$repo" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi
if [ ! -f "$build/compile_commands.json" ]; then
  echo "run_clang_tidy: no compile_commands.json in $build" >&2
  exit 2
fi

# First-party translation units only — gtest and generated files are
# not ours to lint.
mapfile -t files < <(cd "$repo" && ls src/*/*.cc tools/*.cc)

status=0
for f in "${files[@]}"; do
  echo "== $f"
  "$tidy" -p "$build" --quiet "$@" "$repo/$f" || status=1
done
exit $status
