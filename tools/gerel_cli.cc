// gerel — command-line front end for the library.
//
// Usage:
//   gerel check <program> [--json] [--explain] [--deny=CODE]
//                                         static analysis: GR-coded
//                                         diagnostics with line:col spans
//   gerel classify  <program>             classify the rules (§3)
//   gerel normalize <program>             print the Prop 1 normal form
//   gerel chase     <program> [opts]      run the bounded oblivious chase
//   gerel tree      <program>             print the chase tree (§4)
//   gerel translate <mode> <program>      print a translation:
//       fg2ng   frontier-guarded -> nearly guarded        (Thm 1)
//       nfg2ng  nearly frontier-guarded -> nearly guarded (Prop 4)
//       wfg2wg  weakly frontier-guarded -> weakly guarded (Thm 2)
//       g2dat   guarded -> Datalog                        (Thm 3)
//       ng2dat  nearly guarded -> Datalog                 (Prop 6)
//   gerel answer <program> <relation> [--route=chase|datalog]
//                                         answers of the output relation
//   gerel serve <program> [opts]          prepare the KB, then answer
//                                         query/assert commands from stdin
//   gerel dot preds|positions|tree <program>
//                                         Graphviz renderings
//
// A <program> file mixes rules and facts ("rule." / "fact." statements;
// see core/parser.h for the grammar). Chase options:
//   --max-steps=N --max-atoms=N --max-depth=N
// Translation/serving options:
//   --max-rules=N (cap the rewrite/grounding/saturation stages)
//   --threads=N   (worker lanes for the chase, saturation, and Datalog
//                  evaluation; results are byte-identical for any value)
//
// Resource governance (chase/answer/serve):
//   --timeout-ms=N (wall-clock budget; exhaustion degrades to sound
//                   partial results, never a hang or crash)
//   --max-atoms=N  (atom ceiling; for `chase` this is the existing chase
//                   cap, for answer/serve it bounds every pipeline stage)
//   --snapshot=PATH (serve: load a crash-safe snapshot if it matches the
//                   program, else prepare and save one; also saved at
//                   session end)
//
// Exit codes: 0 success, 1 error, 2 chase hit a cap before saturating,
// 3 answers are sound but possibly incomplete (a translation stage hit a
// size cap or a budget was exhausted), 64 usage.
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.h"
#include "analyze/render.h"
#include "chase/chase.h"
#include "chase/chase_tree.h"
#include "core/budget.h"
#include "core/classify.h"
#include "core/fault.h"
#include "core/normalize.h"
#include "core/parser.h"
#include "core/printer.h"
#include "datalog/evaluator.h"
#include "server/session.h"
#include "service/prepared_kb.h"
#include "transform/annotation.h"
#include "transform/fg_to_ng.h"
#include "core/graphviz.h"
#include "testing/differential.h"
#include "transform/saturation.h"

namespace {

using namespace gerel;  // NOLINT

int Fail(const std::string& message) {
  std::fprintf(stderr, "gerel: %s\n", message.c_str());
  return 1;
}

Result<std::string> ReadFile(const char* path) {
  std::ifstream in(path);
  if (!in) return Status::Error(std::string("cannot open ") + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct ParsedArgs {
  std::string command;
  std::string mode;  // For translate.
  std::string file;
  std::string relation;  // For answer.
  std::string route = "datalog";
  ChaseOptions chase;
  size_t max_rules = 0;  // 0 = library defaults.
  // Worker lanes for chase/tree/translate/answer/serve (chase
  // enumeration, saturation frontier, Datalog evaluation).
  size_t threads = 1;
  // Resource budget (0 = unlimited). --max-atoms doubles as the chase
  // cap (existing semantics) and the budget atom ceiling.
  double timeout_ms = 0;
  uint64_t budget_atoms = 0;
  // serve: crash-safe snapshot path (empty = no persistence).
  std::string snapshot;
};

// Budget limits from the command line; unlimited() when no flag was set.
BudgetLimits CliBudget(const ParsedArgs& args) {
  BudgetLimits limits;
  limits.timeout_ms = args.timeout_ms;
  limits.max_atoms = args.budget_atoms;
  return limits;
}

// FNV-1a over the program text: the snapshot fingerprint.
uint64_t FingerprintText(const std::string& text) {
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  // 0 means "unchecked"; avoid colliding with it.
  return h == 0 ? 1 : h;
}

bool ParseFlag(const char* arg, const char* name, long* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::strtol(arg + len + 1, nullptr, 10);
  return true;
}

int Usage();

// `gerel check [--json] [--explain] [--dot] [--deny=CODE] <program>`:
// run every analyzer and render the diagnostics. Exit 1 when any
// error-severity diagnostic remains (parse failures are GR000 errors;
// --deny promotes warning codes to errors). --dot replaces the report
// with the Skolem-dependency graph in Graphviz format, the termination
// certificate's cyclic witness path highlighted.
int Check(int argc, char** argv) {
  bool json = false;
  bool explain = false;
  bool dot = false;
  std::vector<std::string> deny;
  std::string file;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg.rfind("--deny=", 0) == 0) {
      deny.push_back(arg.substr(7));
    } else if (arg.rfind("--threads=", 0) == 0) {
      // Accepted for CLI uniformity. Analysis is single-threaded by
      // construction (certificates must be byte-deterministic), so the
      // value changes nothing — which the CLI tests pin down.
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else if (file.empty()) {
      file = arg;
    } else {
      return Usage();
    }
  }
  if (file.empty()) return Usage();
  auto text = ReadFile(file.c_str());
  if (!text.ok()) {
    std::fputs(RenderParseError(text.status(), file).c_str(), stderr);
    return 1;
  }
  SymbolTable syms;
  SourceMap map;
  auto program = ParseProgram(text.value(), &syms, &map);
  if (!program.ok()) {
    std::fputs(RenderParseError(program.status(), file).c_str(), stderr);
    return 1;
  }
  AnalyzeOptions options;
  options.explain = explain;
  options.source = &map;
  AnalysisResult result = Analyze(program.value().theory,
                                  program.value().database, syms, options);
  if (dot) {
    std::string out = ExistentialGraphDot(result.termination.graph, syms,
                                          result.termination.cycle);
    std::fputs(out.c_str(), stdout);
    return result.errors > 0 ? 1 : 0;
  }
  for (Diagnostic& d : result.diagnostics) {
    if (d.severity == Severity::kWarning &&
        std::find(deny.begin(), deny.end(), d.code) != deny.end()) {
      d.severity = Severity::kError;
      --result.warnings;
      ++result.errors;
    }
  }
  RenderOptions render;
  render.file = file;
  render.source = &map;
  std::string out =
      json ? RenderJson(result, render) : RenderText(result, render);
  std::fputs(out.c_str(), stdout);
  return result.errors > 0 ? 1 : 0;
}

int Classify(const ParsedArgs& args) {
  SymbolTable syms;
  auto text = ReadFile(args.file.c_str());
  if (!text.ok()) return Fail(text.status().message());
  auto program = ParseProgram(text.value(), &syms);
  if (!program.ok()) {
    // Parse failures share the GR000 renderer with `gerel check`.
    std::fputs(RenderParseError(program.status(), args.file).c_str(),
               stderr);
    return 1;
  }
  const Theory& t = program.value().theory;
  Classification c = gerel::Classify(t);
  std::printf("rules: %zu   max arity: %zu   max vars/rule: %zu\n",
              t.size(), t.MaxArity(), t.MaxVarsPerRule());
  std::printf("datalog:                  %s\n", c.datalog ? "yes" : "no");
  std::printf("guarded:                  %s\n", c.guarded ? "yes" : "no");
  std::printf("frontier-guarded:         %s\n",
              c.frontier_guarded ? "yes" : "no");
  std::printf("weakly guarded:           %s\n",
              c.weakly_guarded ? "yes" : "no");
  std::printf("weakly frontier-guarded:  %s\n",
              c.weakly_frontier_guarded ? "yes" : "no");
  std::printf("nearly guarded:           %s\n",
              c.nearly_guarded ? "yes" : "no");
  std::printf("nearly frontier-guarded:  %s\n",
              c.nearly_frontier_guarded ? "yes" : "no");
  ExtendedClassification ext = ClassifyExtended(t);
  std::printf("linear:                   %s\n", ext.linear ? "yes" : "no");
  std::printf("frontier-one:             %s\n",
              ext.frontier_one ? "yes" : "no");
  std::printf("joinless:                 %s\n", ext.joinless ? "yes" : "no");
  std::printf("domain-restricted:        %s\n",
              ext.domain_restricted ? "yes" : "no");
  std::printf("shy:                      %s\n", ext.shy ? "yes" : "no");
  TerminationCertificate cert = AnalyzeTermination(t, syms);
  std::printf("termination:              %s%s\n", CertificateKindName(cert.kind),
              cert.terminating() ? " (skolem chase terminates)" : "");
  // Per-rule diagnosis for the tightest failing class.
  PositionSet affected = AffectedPositions(t);
  for (size_t i = 0; i < t.rules().size(); ++i) {
    const Rule& r = t.rules()[i];
    if (!IsWeaklyFrontierGuardedRule(r, affected)) {
      std::printf("  rule %zu is not weakly frontier-guarded: %s\n", i,
                  ToString(r, syms).c_str());
    }
  }
  return 0;
}

int Normalize(const ParsedArgs& args) {
  SymbolTable syms;
  auto text = ReadFile(args.file.c_str());
  if (!text.ok()) return Fail(text.status().message());
  auto program = ParseProgram(text.value(), &syms);
  if (!program.ok()) return Fail(program.status().message());
  Theory normal = gerel::Normalize(program.value().theory, &syms);
  std::printf("%s", ToString(normal, syms).c_str());
  return 0;
}

int RunChase(const ParsedArgs& args) {
  SymbolTable syms;
  auto text = ReadFile(args.file.c_str());
  if (!text.ok()) return Fail(text.status().message());
  auto program = ParseProgram(text.value(), &syms);
  if (!program.ok()) return Fail(program.status().message());
  ChaseOptions chase_opts = args.chase;
  ExecutionBudget budget(CliBudget(args), GlobalFaultPlan());
  if (args.timeout_ms > 0) chase_opts.budget = &budget;
  ChaseResult r = Chase(program.value().theory, program.value().database,
                        &syms, chase_opts);
  std::fprintf(stderr, "chase: %zu atoms, %zu steps, saturated=%d\n",
               r.database.size(), r.steps, r.saturated);
  if (r.degradation.degraded()) {
    std::fprintf(stderr, "chase: degraded (%s); atoms are sound but "
                 "possibly incomplete\n",
                 r.degradation.ToString().c_str());
  }
  std::printf("%s", ToString(r.database, syms).c_str());
  return r.saturated ? 0 : 2;
}

int Tree(const ParsedArgs& args) {
  SymbolTable syms;
  auto text = ReadFile(args.file.c_str());
  if (!text.ok()) return Fail(text.status().message());
  auto program = ParseProgram(text.value(), &syms);
  if (!program.ok()) return Fail(program.status().message());
  auto tree = BuildChaseTree(program.value().theory,
                             program.value().database, &syms, args.chase);
  if (!tree.ok()) return Fail(tree.status().message());
  for (size_t i = 0; i < tree.value().nodes.size(); ++i) {
    const ChaseTreeNode& node = tree.value().nodes[i];
    std::printf("node %zu (parent %d, depth %zu):\n", i, node.parent,
                tree.value().Depth(i));
    for (const Atom& a : node.atoms) {
      std::printf("  %s\n", ToString(a, syms).c_str());
    }
  }
  Status props = CheckChaseTreeProperties(
      tree.value(), program.value().theory, program.value().database);
  std::fprintf(stderr, "Prop 2 (P1)-(P3): %s\n",
               props.ok() ? "hold" : props.message().c_str());
  return 0;
}

int Translate(const ParsedArgs& args) {
  SymbolTable syms;
  auto text = ReadFile(args.file.c_str());
  if (!text.ok()) return Fail(text.status().message());
  auto program = ParseProgram(text.value(), &syms);
  if (!program.ok()) return Fail(program.status().message());
  const Theory& t = program.value().theory;
  if (args.mode == "fg2ng" || args.mode == "nfg2ng") {
    Theory normal = gerel::Normalize(t, &syms);
    auto rew = args.mode == "fg2ng"
                   ? RewriteFgToNearlyGuarded(normal, &syms)
                   : RewriteNfgToNearlyGuarded(normal, &syms);
    if (!rew.ok()) return Fail(rew.status().message());
    std::fprintf(stderr, "%zu rules, complete=%d\n",
                 rew.value().theory.size(), rew.value().complete);
    std::printf("%s", ToString(rew.value().theory, syms).c_str());
    return 0;
  }
  if (args.mode == "wfg2wg") {
    Theory normal = gerel::Normalize(t, &syms);
    auto rew = RewriteWfgToWeaklyGuarded(normal, &syms);
    if (!rew.ok()) return Fail(rew.status().message());
    std::fprintf(stderr, "%zu rules, complete=%d\n",
                 rew.value().theory.size(), rew.value().complete);
    std::printf("%s", ToString(rew.value().theory, syms).c_str());
    return 0;
  }
  if (args.mode == "g2dat") {
    SaturationOptions sopts;
    if (args.max_rules > 0) sopts.max_rules = args.max_rules;
    sopts.num_threads = args.threads;
    auto sat = Saturate(t, &syms, sopts);
    if (!sat.ok()) return Fail(sat.status().message());
    std::fprintf(stderr, "closure %zu, datalog %zu, complete=%d\n",
                 sat.value().closure.size(), sat.value().datalog.size(),
                 sat.value().complete);
    std::printf("%s", ToString(sat.value().datalog, syms).c_str());
    return 0;
  }
  if (args.mode == "ng2dat") {
    SaturationOptions sopts;
    if (args.max_rules > 0) sopts.max_rules = args.max_rules;
    sopts.num_threads = args.threads;
    auto dat = NearlyGuardedToDatalog(t, &syms, sopts);
    if (!dat.ok()) return Fail(dat.status().message());
    std::fprintf(stderr, "%zu datalog rules, complete=%d\n",
                 dat.value().datalog.size(), dat.value().complete);
    std::printf("%s", ToString(dat.value().datalog, syms).c_str());
    return 0;
  }
  return Fail("unknown translation mode: " + args.mode);
}

int Answer(const ParsedArgs& args) {
  SymbolTable syms;
  auto text = ReadFile(args.file.c_str());
  if (!text.ok()) return Fail(text.status().message());
  auto program = ParseProgram(text.value(), &syms);
  if (!program.ok()) return Fail(program.status().message());
  if (!syms.HasRelation(args.relation)) {
    return Fail("relation not found: " + args.relation);
  }
  RelationId q = syms.Relation(args.relation);
  std::set<std::vector<Term>> answers;
  bool incomplete = false;
  BudgetLimits limits = CliBudget(args);
  ExecutionBudget budget(limits, GlobalFaultPlan());
  ExecutionBudget* budget_ptr = limits.unlimited() ? nullptr : &budget;
  DegradationReason degradation;
  if (args.route == "chase") {
    ChaseOptions chase_opts = args.chase;
    chase_opts.budget = budget_ptr;
    ChaseResult r = Chase(program.value().theory, program.value().database,
                          &syms, chase_opts);
    for (uint32_t ai : r.database.AtomsOf(q)) {
      const Atom& a = r.database.atom(ai);
      if (a.IsGroundOverConstants()) answers.insert(a.args);
    }
    if (!r.saturated) {
      incomplete = true;
      degradation = r.degradation;
    }
  } else if (args.route == "datalog") {
    // Translate (Prop 4 + Prop 6) then evaluate.
    ExpansionOptions expansion;
    SaturationOptions saturation;
    if (args.max_rules > 0) {
      expansion.max_rules = args.max_rules;
      saturation.max_rules = args.max_rules;
    }
    expansion.budget = budget_ptr;
    saturation.budget = budget_ptr;
    saturation.num_threads = args.threads;
    Theory normal = gerel::Normalize(program.value().theory, &syms);
    auto rew = RewriteNfgToNearlyGuarded(normal, &syms, expansion);
    if (!rew.ok()) return Fail(rew.status().message() +
                               " (try --route=chase)");
    auto dat = NearlyGuardedToDatalog(rew.value().theory, &syms, saturation);
    if (!dat.ok()) return Fail(dat.status().message());
    if (!rew.value().complete || !dat.value().complete) {
      incomplete = true;
      degradation = rew.value().complete ? dat.value().degradation
                                         : rew.value().degradation;
    }
    DatalogOptions dopts;
    dopts.num_threads = args.threads;
    dopts.budget = budget_ptr;
    auto eval = EvaluateDatalog(dat.value().datalog,
                                program.value().database, &syms, dopts);
    if (!eval.ok()) return Fail(eval.status().message());
    if (!eval.value().complete) {
      incomplete = true;
      if (!degradation.degraded()) degradation = eval.value().degradation;
    }
    for (uint32_t ai : eval.value().database.AtomsOf(q)) {
      const Atom& a = eval.value().database.atom(ai);
      if (a.IsGroundOverConstants()) answers.insert(a.args);
    }
  } else {
    return Fail("unknown route: " + args.route);
  }
  if (incomplete) {
    std::fprintf(stderr,
                 "warning: answers are sound but may be incomplete (%s)\n",
                 degradation.degraded() ? degradation.ToString().c_str()
                                        : "a stage hit a size cap");
  }
  for (const std::vector<Term>& tuple : answers) {
    std::printf("%s(", args.relation.c_str());
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) std::printf(", ");
      std::printf("%s", syms.TermName(tuple[i]).c_str());
    }
    std::printf(")\n");
  }
  std::fprintf(stderr, "%zu answers\n", answers.size());
  return incomplete ? 3 : 0;
}

const char* ModeName(PreparedKb::Mode mode) {
  switch (mode) {
    case PreparedKb::Mode::kDatalog: return "datalog";
    case PreparedKb::Mode::kGuarded: return "guarded";
    case PreparedKb::Mode::kWeaklyGuarded: return "weakly guarded";
    case PreparedKb::Mode::kChaseMaterialized: return "chase";
  }
  return "?";
}

// Longest serve input line accepted; longer lines are drained and
// reported instead of ballooning memory.
constexpr size_t kMaxServeLine = size_t{1} << 20;

// Reads one line (up to `cap` bytes) from `in`. Returns false at EOF
// with no pending content. Oversized lines are consumed to their
// newline, truncated, and flagged via *oversized.
bool ReadLineBounded(std::istream& in, std::string* line, size_t cap,
                     bool* oversized) {
  line->clear();
  *oversized = false;
  int ch;
  while ((ch = in.get()) != EOF) {
    if (ch == '\n') return true;
    if (line->size() < cap) {
      line->push_back(static_cast<char>(ch));
    } else {
      *oversized = true;
    }
  }
  return !line->empty();
}

int Serve(const ParsedArgs& args) {
  // A reader that goes away mid-session must surface as a write error,
  // not a SIGPIPE kill.
#ifdef SIGPIPE
  std::signal(SIGPIPE, SIG_IGN);
#endif
  auto text = ReadFile(args.file.c_str());
  if (!text.ok()) return Fail(text.status().message());
  uint64_t fingerprint = FingerprintText(text.value());
  PreparedKbOptions options;
  if (args.max_rules > 0) {
    options.pipeline.expansion.max_rules = args.max_rules;
    options.pipeline.saturation.max_rules = args.max_rules;
    options.pipeline.grounding.max_rules = args.max_rules;
  }
  options.datalog.num_threads = args.threads;
  options.pipeline.saturation.num_threads = args.threads;
  options.budget = CliBudget(args);
  SymbolTable syms;
  std::unique_ptr<PreparedKb> kb;
  if (!args.snapshot.empty()) {
    auto loaded =
        PreparedKb::LoadSnapshot(args.snapshot, &syms, options, fingerprint);
    if (loaded.ok()) {
      kb = std::move(loaded).value();
      std::fprintf(stderr, "loaded snapshot %s\n", args.snapshot.c_str());
    } else {
      std::fprintf(stderr, "gerel: %s; re-materializing\n",
                   loaded.status().message().c_str());
      // A failed load may have partially interned names; start over.
      syms = SymbolTable();
    }
  }
  if (kb == nullptr) {
    auto program = ParseProgram(text.value(), &syms);
    if (!program.ok()) return Fail(program.status().message());
    auto prepared = PreparedKb::Prepare(program.value().theory,
                                        program.value().database, &syms,
                                        options);
    if (!prepared.ok()) return Fail(prepared.status().message());
    kb = std::move(prepared).value();
    kb->set_snapshot_fingerprint(fingerprint);
    if (!args.snapshot.empty()) {
      Status s = kb->SaveSnapshot(args.snapshot);
      if (!s.ok()) std::fprintf(stderr, "gerel: %s\n", s.message().c_str());
    }
  }
  ServiceStats prepared_stats = kb->stats();
  std::fprintf(stderr,
               "prepared: mode=%s, %llu datalog rules, %llu model atoms, "
               "%.1f ms%s\n",
               ModeName(kb->mode()),
               static_cast<unsigned long long>(prepared_stats.datalog_rules),
               static_cast<unsigned long long>(prepared_stats.model_atoms),
               prepared_stats.prepare_wall_ms,
               kb->prepare_complete() ? "" : " (incomplete)");
  ServiceSession session(kb.get(), &syms);
  std::string line;
  bool oversized = false;
  bool io_error = false;
  while (ReadLineBounded(std::cin, &line, kMaxServeLine, &oversized)) {
    ServiceSession::Response r;
    if (oversized) {
      r.error = true;
      r.text = "error: input line exceeds " +
               std::to_string(kMaxServeLine) + " bytes; skipped\n";
      io_error = true;
    } else {
      r = session.HandleLine(line);
    }
    std::fputs(r.text.c_str(), stdout);
    if (std::fflush(stdout) != 0 || std::ferror(stdout)) {
      std::fprintf(stderr, "gerel: stdout write failed; exiting\n");
      io_error = true;
      break;
    }
    if (r.quit) break;
  }
  if (!args.snapshot.empty()) {
    Status s = kb->SaveSnapshot(args.snapshot);
    if (!s.ok()) std::fprintf(stderr, "gerel: %s\n", s.message().c_str());
  }
  std::fputs(kb->stats().ToString().c_str(), stderr);
  if (session.saw_incomplete()) return 3;
  return (session.saw_error() || io_error) ? 1 : 0;
}

int Dot(const ParsedArgs& args) {
  SymbolTable syms;
  auto text = ReadFile(args.file.c_str());
  if (!text.ok()) return Fail(text.status().message());
  auto program = ParseProgram(text.value(), &syms);
  if (!program.ok()) return Fail(program.status().message());
  if (args.mode == "preds") {
    std::printf("%s", PredicateGraphDot(program.value().theory, syms).c_str());
    return 0;
  }
  if (args.mode == "positions") {
    std::printf("%s", PositionGraphDot(program.value().theory, syms).c_str());
    return 0;
  }
  if (args.mode == "tree") {
    auto tree = BuildChaseTree(program.value().theory,
                               program.value().database, &syms, args.chase);
    if (!tree.ok()) return Fail(tree.status().message());
    std::printf("%s", ChaseTreeDot(tree.value(), syms).c_str());
    return 0;
  }
  return Fail("unknown dot mode: " + args.mode);
}

int Usage();

// Differential conformance fuzzing (src/testing/, DESIGN.md §8). Flags
// accept both "--seed=1" and "--seed 1".
int Fuzz(int argc, char** argv) {
  unsigned seed = 1;
  size_t iters = 100;
  std::string lane = "conformance";
  std::vector<testing::GenClass> classes;  // Empty = all seven.
  testing::DiffOptions opts;
  opts.shrink = false;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* name) -> const char* {
      std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.c_str() + prefix.size();
      if (arg == name && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    const char* v = nullptr;
    if ((v = value("--seed")) != nullptr) {
      seed = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if ((v = value("--iters")) != nullptr) {
      iters = static_cast<size_t>(std::strtoul(v, nullptr, 10));
    } else if ((v = value("--lane")) != nullptr) {
      lane = v;
      if (lane != "conformance" && lane != "fault-recovery" &&
          lane != "crud" && lane != "termination") {
        std::fprintf(stderr,
                     "gerel fuzz: unknown lane '%s' "
                     "(conformance|fault-recovery|crud|termination)\n",
                     v);
        return 64;
      }
    } else if ((v = value("--threads")) != nullptr) {
      opts.num_threads = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if ((v = value("--class")) != nullptr) {
      testing::GenClass cls;
      if (std::string(v) != "all") {
        if (!testing::ParseGenClass(v, &cls)) {
          std::fprintf(stderr,
                       "gerel fuzz: unknown class '%s' "
                       "(dlg|g|fg|wg|wfg|ng|nfg|all)\n",
                       v);
          return 64;
        }
        classes.push_back(cls);
      }
    } else if ((v = value("--fault")) != nullptr) {
      if (!testing::ParseFault(v, &opts.fault)) {
        std::fprintf(stderr,
                     "gerel fuzz: unknown fault '%s' (none|drop-acdom-guard|"
                     "skip-saturation-step|stale-answer-cache)\n",
                     v);
        return 64;
      }
    } else if (arg == "--shrink") {
      opts.shrink = true;
    } else if (arg == "--log-cases") {
      opts.log_cases = true;
    } else {
      return Usage();
    }
  }
  testing::DiffReport report =
      lane == "fault-recovery"
          ? testing::RunFaultRecovery(seed, iters, classes, opts)
          : lane == "crud"
              ? testing::RunCrud(seed, iters, classes, opts)
              : lane == "termination"
                  ? testing::RunTermination(seed, iters, classes, opts)
                  : testing::RunDifferential(seed, iters, classes, opts);
  if (opts.log_cases) std::printf("%s", report.transcript.c_str());
  std::printf("fuzz: %zu cases (%zu checked, %zu skipped), %zu failure%s\n",
              report.iterations, report.checked, report.skipped,
              report.failures.size(),
              report.failures.size() == 1 ? "" : "s");
  for (const testing::DiffFailure& f : report.failures) {
    std::printf("FAIL class=%s iteration=%zu seed=%u lane=%s\n  %s\n",
                testing::GenClassTag(f.cls), f.iteration, f.case_seed,
                f.lane.c_str(), f.detail.c_str());
    std::printf("repro (%zu rules):\n%s", f.repro_rules, f.repro.c_str());
  }
  return report.ok() ? 0 : 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: gerel classify|normalize|chase|tree <program>\n"
               "       gerel check <program> [--json] [--explain] [--dot] "
               "[--deny=CODE]\n"
               "       gerel translate fg2ng|nfg2ng|wfg2wg|g2dat|ng2dat "
               "<program>\n"
               "       gerel answer <program> <relation> "
               "[--route=chase|datalog]\n"
               "       gerel serve <program> [--threads=N] "
               "[--snapshot=PATH]\n"
               "       gerel fuzz [--seed N] [--iters N] [--class "
               "dlg|g|fg|wg|wfg|ng|nfg|\n"
               "                   lin|f1|jl|dr|shy|all]\n"
               "                  [--lane conformance|fault-recovery|crud|"
               "termination]\n"
               "                  [--shrink] [--threads N]\n"
               "                  [--fault F] [--log-cases]\n"
               "       gerel dot preds|positions|tree <program>\n"
               "flags: --max-steps=N --max-atoms=N --max-depth=N "
               "--max-rules=N --threads=N\n"
               "       --timeout-ms=N (degrade to sound partial results "
               "on budget exhaustion)\n");
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "fuzz") == 0) {
    return Fuzz(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "check") == 0) {
    return Check(argc, argv);
  }
  if (argc < 3) return Usage();
  ParsedArgs args;
  args.command = argv[1];
  int pos = 2;
  if (args.command == "translate" || args.command == "dot") {
    if (argc < 4) return Usage();
    args.mode = argv[pos++];
  }
  args.file = argv[pos++];
  if (args.command == "answer") {
    if (pos >= argc) return Usage();
    args.relation = argv[pos++];
  }
  for (int i = pos; i < argc; ++i) {
    long value = 0;
    if (ParseFlag(argv[i], "--max-steps", &value)) {
      args.chase.max_steps = static_cast<size_t>(value);
    } else if (ParseFlag(argv[i], "--max-atoms", &value)) {
      args.chase.max_atoms = static_cast<size_t>(value);
      args.budget_atoms = static_cast<uint64_t>(value);
    } else if (ParseFlag(argv[i], "--timeout-ms", &value)) {
      args.timeout_ms = static_cast<double>(value);
    } else if (std::strncmp(argv[i], "--snapshot=", 11) == 0) {
      args.snapshot = argv[i] + 11;
    } else if (ParseFlag(argv[i], "--max-depth", &value)) {
      args.chase.max_null_depth = static_cast<uint32_t>(value);
    } else if (ParseFlag(argv[i], "--max-rules", &value)) {
      args.max_rules = static_cast<size_t>(value);
    } else if (ParseFlag(argv[i], "--threads", &value)) {
      args.threads = static_cast<size_t>(value);
      args.chase.num_threads = args.threads;
    } else if (std::strncmp(argv[i], "--route=", 8) == 0) {
      args.route = argv[i] + 8;
    } else {
      return Usage();
    }
  }
  if (args.command == "classify") return Classify(args);
  if (args.command == "normalize") return Normalize(args);
  if (args.command == "chase") return RunChase(args);
  if (args.command == "tree") return Tree(args);
  if (args.command == "translate") return Translate(args);
  if (args.command == "answer") return Answer(args);
  if (args.command == "serve") return Serve(args);
  if (args.command == "dot") return Dot(args);
  return Usage();
}
