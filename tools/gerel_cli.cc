// gerel — command-line front end for the library.
//
// Usage:
//   gerel check <program> [--json] [--explain] [--deny=CODE]
//                                         static analysis: GR-coded
//                                         diagnostics with line:col spans
//   gerel classify  <program>             classify the rules (§3)
//   gerel normalize <program>             print the Prop 1 normal form
//   gerel chase     <program> [opts]      run the bounded oblivious chase
//   gerel tree      <program>             print the chase tree (§4)
//   gerel translate <mode> <program>      print a translation:
//       fg2ng   frontier-guarded -> nearly guarded        (Thm 1)
//       nfg2ng  nearly frontier-guarded -> nearly guarded (Prop 4)
//       wfg2wg  weakly frontier-guarded -> weakly guarded (Thm 2)
//       g2dat   guarded -> Datalog                        (Thm 3)
//       ng2dat  nearly guarded -> Datalog                 (Prop 6)
//   gerel answer <program> <relation> [--route=chase|datalog]
//                                         answers of the output relation
//   gerel serve <program> [opts]          prepare the KB, then answer
//                                         query/assert commands from stdin
//   gerel dot preds|positions|tree <program>
//                                         Graphviz renderings
//
// A <program> file mixes rules and facts ("rule." / "fact." statements;
// see core/parser.h for the grammar). Chase options:
//   --max-steps=N --max-atoms=N --max-depth=N
// Translation/serving options:
//   --max-rules=N (cap the rewrite/grounding/saturation stages)
//   --threads=N   (worker lanes for the chase, saturation, and Datalog
//                  evaluation; results are byte-identical for any value)
//
// Exit codes: 0 success, 1 error, 2 chase hit a cap before saturating,
// 3 answers are sound but possibly incomplete (a translation stage hit a
// size cap), 64 usage.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.h"
#include "analyze/render.h"
#include "chase/chase.h"
#include "chase/chase_tree.h"
#include "core/classify.h"
#include "core/normalize.h"
#include "core/parser.h"
#include "core/printer.h"
#include "datalog/evaluator.h"
#include "service/prepared_kb.h"
#include "service/session.h"
#include "transform/annotation.h"
#include "transform/fg_to_ng.h"
#include "core/graphviz.h"
#include "testing/differential.h"
#include "transform/saturation.h"

namespace {

using namespace gerel;  // NOLINT

int Fail(const std::string& message) {
  std::fprintf(stderr, "gerel: %s\n", message.c_str());
  return 1;
}

Result<std::string> ReadFile(const char* path) {
  std::ifstream in(path);
  if (!in) return Status::Error(std::string("cannot open ") + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct ParsedArgs {
  std::string command;
  std::string mode;  // For translate.
  std::string file;
  std::string relation;  // For answer.
  std::string route = "datalog";
  ChaseOptions chase;
  size_t max_rules = 0;  // 0 = library defaults.
  // Worker lanes for chase/tree/translate/answer/serve (chase
  // enumeration, saturation frontier, Datalog evaluation).
  size_t threads = 1;
};

bool ParseFlag(const char* arg, const char* name, long* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::strtol(arg + len + 1, nullptr, 10);
  return true;
}

int Usage();

// `gerel check [--json] [--explain] [--deny=CODE] <program>`: run every
// analyzer and render the diagnostics. Exit 1 when any error-severity
// diagnostic remains (parse failures are GR000 errors; --deny promotes
// warning codes to errors).
int Check(int argc, char** argv) {
  bool json = false;
  bool explain = false;
  std::vector<std::string> deny;
  std::string file;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg.rfind("--deny=", 0) == 0) {
      deny.push_back(arg.substr(7));
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else if (file.empty()) {
      file = arg;
    } else {
      return Usage();
    }
  }
  if (file.empty()) return Usage();
  auto text = ReadFile(file.c_str());
  if (!text.ok()) {
    std::fputs(RenderParseError(text.status(), file).c_str(), stderr);
    return 1;
  }
  SymbolTable syms;
  SourceMap map;
  auto program = ParseProgram(text.value(), &syms, &map);
  if (!program.ok()) {
    std::fputs(RenderParseError(program.status(), file).c_str(), stderr);
    return 1;
  }
  AnalyzeOptions options;
  options.explain = explain;
  options.source = &map;
  AnalysisResult result = Analyze(program.value().theory,
                                  program.value().database, syms, options);
  for (Diagnostic& d : result.diagnostics) {
    if (d.severity == Severity::kWarning &&
        std::find(deny.begin(), deny.end(), d.code) != deny.end()) {
      d.severity = Severity::kError;
      --result.warnings;
      ++result.errors;
    }
  }
  RenderOptions render;
  render.file = file;
  render.source = &map;
  std::string out =
      json ? RenderJson(result, render) : RenderText(result, render);
  std::fputs(out.c_str(), stdout);
  return result.errors > 0 ? 1 : 0;
}

int Classify(const ParsedArgs& args) {
  SymbolTable syms;
  auto text = ReadFile(args.file.c_str());
  if (!text.ok()) return Fail(text.status().message());
  auto program = ParseProgram(text.value(), &syms);
  if (!program.ok()) {
    // Parse failures share the GR000 renderer with `gerel check`.
    std::fputs(RenderParseError(program.status(), args.file).c_str(),
               stderr);
    return 1;
  }
  const Theory& t = program.value().theory;
  Classification c = gerel::Classify(t);
  std::printf("rules: %zu   max arity: %zu   max vars/rule: %zu\n",
              t.size(), t.MaxArity(), t.MaxVarsPerRule());
  std::printf("datalog:                  %s\n", c.datalog ? "yes" : "no");
  std::printf("guarded:                  %s\n", c.guarded ? "yes" : "no");
  std::printf("frontier-guarded:         %s\n",
              c.frontier_guarded ? "yes" : "no");
  std::printf("weakly guarded:           %s\n",
              c.weakly_guarded ? "yes" : "no");
  std::printf("weakly frontier-guarded:  %s\n",
              c.weakly_frontier_guarded ? "yes" : "no");
  std::printf("nearly guarded:           %s\n",
              c.nearly_guarded ? "yes" : "no");
  std::printf("nearly frontier-guarded:  %s\n",
              c.nearly_frontier_guarded ? "yes" : "no");
  // Per-rule diagnosis for the tightest failing class.
  PositionSet affected = AffectedPositions(t);
  for (size_t i = 0; i < t.rules().size(); ++i) {
    const Rule& r = t.rules()[i];
    if (!IsWeaklyFrontierGuardedRule(r, affected)) {
      std::printf("  rule %zu is not weakly frontier-guarded: %s\n", i,
                  ToString(r, syms).c_str());
    }
  }
  return 0;
}

int Normalize(const ParsedArgs& args) {
  SymbolTable syms;
  auto text = ReadFile(args.file.c_str());
  if (!text.ok()) return Fail(text.status().message());
  auto program = ParseProgram(text.value(), &syms);
  if (!program.ok()) return Fail(program.status().message());
  Theory normal = gerel::Normalize(program.value().theory, &syms);
  std::printf("%s", ToString(normal, syms).c_str());
  return 0;
}

int RunChase(const ParsedArgs& args) {
  SymbolTable syms;
  auto text = ReadFile(args.file.c_str());
  if (!text.ok()) return Fail(text.status().message());
  auto program = ParseProgram(text.value(), &syms);
  if (!program.ok()) return Fail(program.status().message());
  ChaseResult r = Chase(program.value().theory, program.value().database,
                        &syms, args.chase);
  std::fprintf(stderr, "chase: %zu atoms, %zu steps, saturated=%d\n",
               r.database.size(), r.steps, r.saturated);
  std::printf("%s", ToString(r.database, syms).c_str());
  return r.saturated ? 0 : 2;
}

int Tree(const ParsedArgs& args) {
  SymbolTable syms;
  auto text = ReadFile(args.file.c_str());
  if (!text.ok()) return Fail(text.status().message());
  auto program = ParseProgram(text.value(), &syms);
  if (!program.ok()) return Fail(program.status().message());
  auto tree = BuildChaseTree(program.value().theory,
                             program.value().database, &syms, args.chase);
  if (!tree.ok()) return Fail(tree.status().message());
  for (size_t i = 0; i < tree.value().nodes.size(); ++i) {
    const ChaseTreeNode& node = tree.value().nodes[i];
    std::printf("node %zu (parent %d, depth %zu):\n", i, node.parent,
                tree.value().Depth(i));
    for (const Atom& a : node.atoms) {
      std::printf("  %s\n", ToString(a, syms).c_str());
    }
  }
  Status props = CheckChaseTreeProperties(
      tree.value(), program.value().theory, program.value().database);
  std::fprintf(stderr, "Prop 2 (P1)-(P3): %s\n",
               props.ok() ? "hold" : props.message().c_str());
  return 0;
}

int Translate(const ParsedArgs& args) {
  SymbolTable syms;
  auto text = ReadFile(args.file.c_str());
  if (!text.ok()) return Fail(text.status().message());
  auto program = ParseProgram(text.value(), &syms);
  if (!program.ok()) return Fail(program.status().message());
  const Theory& t = program.value().theory;
  if (args.mode == "fg2ng" || args.mode == "nfg2ng") {
    Theory normal = gerel::Normalize(t, &syms);
    auto rew = args.mode == "fg2ng"
                   ? RewriteFgToNearlyGuarded(normal, &syms)
                   : RewriteNfgToNearlyGuarded(normal, &syms);
    if (!rew.ok()) return Fail(rew.status().message());
    std::fprintf(stderr, "%zu rules, complete=%d\n",
                 rew.value().theory.size(), rew.value().complete);
    std::printf("%s", ToString(rew.value().theory, syms).c_str());
    return 0;
  }
  if (args.mode == "wfg2wg") {
    Theory normal = gerel::Normalize(t, &syms);
    auto rew = RewriteWfgToWeaklyGuarded(normal, &syms);
    if (!rew.ok()) return Fail(rew.status().message());
    std::fprintf(stderr, "%zu rules, complete=%d\n",
                 rew.value().theory.size(), rew.value().complete);
    std::printf("%s", ToString(rew.value().theory, syms).c_str());
    return 0;
  }
  if (args.mode == "g2dat") {
    SaturationOptions sopts;
    if (args.max_rules > 0) sopts.max_rules = args.max_rules;
    sopts.num_threads = args.threads;
    auto sat = Saturate(t, &syms, sopts);
    if (!sat.ok()) return Fail(sat.status().message());
    std::fprintf(stderr, "closure %zu, datalog %zu, complete=%d\n",
                 sat.value().closure.size(), sat.value().datalog.size(),
                 sat.value().complete);
    std::printf("%s", ToString(sat.value().datalog, syms).c_str());
    return 0;
  }
  if (args.mode == "ng2dat") {
    SaturationOptions sopts;
    if (args.max_rules > 0) sopts.max_rules = args.max_rules;
    sopts.num_threads = args.threads;
    auto dat = NearlyGuardedToDatalog(t, &syms, sopts);
    if (!dat.ok()) return Fail(dat.status().message());
    std::fprintf(stderr, "%zu datalog rules, complete=%d\n",
                 dat.value().datalog.size(), dat.value().complete);
    std::printf("%s", ToString(dat.value().datalog, syms).c_str());
    return 0;
  }
  return Fail("unknown translation mode: " + args.mode);
}

int Answer(const ParsedArgs& args) {
  SymbolTable syms;
  auto text = ReadFile(args.file.c_str());
  if (!text.ok()) return Fail(text.status().message());
  auto program = ParseProgram(text.value(), &syms);
  if (!program.ok()) return Fail(program.status().message());
  if (!syms.HasRelation(args.relation)) {
    return Fail("relation not found: " + args.relation);
  }
  RelationId q = syms.Relation(args.relation);
  std::set<std::vector<Term>> answers;
  bool incomplete = false;
  if (args.route == "chase") {
    answers = ChaseAnswers(program.value().theory, program.value().database,
                           q, &syms, args.chase);
  } else if (args.route == "datalog") {
    // Translate (Prop 4 + Prop 6) then evaluate.
    ExpansionOptions expansion;
    SaturationOptions saturation;
    if (args.max_rules > 0) {
      expansion.max_rules = args.max_rules;
      saturation.max_rules = args.max_rules;
    }
    saturation.num_threads = args.threads;
    Theory normal = gerel::Normalize(program.value().theory, &syms);
    auto rew = RewriteNfgToNearlyGuarded(normal, &syms, expansion);
    if (!rew.ok()) return Fail(rew.status().message() +
                               " (try --route=chase)");
    auto dat = NearlyGuardedToDatalog(rew.value().theory, &syms, saturation);
    if (!dat.ok()) return Fail(dat.status().message());
    if (!rew.value().complete || !dat.value().complete) {
      incomplete = true;
      std::fprintf(stderr,
                   "warning: translation hit a size cap; answers are "
                   "sound but may be incomplete (try --route=chase)\n");
    }
    auto ans = DatalogAnswers(dat.value().datalog,
                              program.value().database, q, &syms);
    if (!ans.ok()) return Fail(ans.status().message());
    answers = std::move(ans).value();
  } else {
    return Fail("unknown route: " + args.route);
  }
  for (const std::vector<Term>& tuple : answers) {
    std::printf("%s(", args.relation.c_str());
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) std::printf(", ");
      std::printf("%s", syms.TermName(tuple[i]).c_str());
    }
    std::printf(")\n");
  }
  std::fprintf(stderr, "%zu answers\n", answers.size());
  return incomplete ? 3 : 0;
}

const char* ModeName(PreparedKb::Mode mode) {
  switch (mode) {
    case PreparedKb::Mode::kDatalog: return "datalog";
    case PreparedKb::Mode::kGuarded: return "guarded";
    case PreparedKb::Mode::kWeaklyGuarded: return "weakly guarded";
  }
  return "?";
}

int Serve(const ParsedArgs& args) {
  SymbolTable syms;
  auto text = ReadFile(args.file.c_str());
  if (!text.ok()) return Fail(text.status().message());
  auto program = ParseProgram(text.value(), &syms);
  if (!program.ok()) return Fail(program.status().message());
  PreparedKbOptions options;
  if (args.max_rules > 0) {
    options.pipeline.expansion.max_rules = args.max_rules;
    options.pipeline.saturation.max_rules = args.max_rules;
    options.pipeline.grounding.max_rules = args.max_rules;
  }
  options.datalog.num_threads = args.threads;
  options.pipeline.saturation.num_threads = args.threads;
  auto kb = PreparedKb::Prepare(program.value().theory,
                                program.value().database, &syms, options);
  if (!kb.ok()) return Fail(kb.status().message());
  ServiceStats prepared = kb.value()->stats();
  std::fprintf(stderr,
               "prepared: mode=%s, %llu datalog rules, %llu model atoms, "
               "%.1f ms%s\n",
               ModeName(kb.value()->mode()),
               static_cast<unsigned long long>(prepared.datalog_rules),
               static_cast<unsigned long long>(prepared.model_atoms),
               prepared.prepare_wall_ms,
               kb.value()->prepare_complete() ? "" : " (incomplete)");
  ServiceSession session(kb.value().get(), &syms);
  std::string line;
  while (std::getline(std::cin, line)) {
    ServiceSession::Response r = session.HandleLine(line);
    std::fputs(r.text.c_str(), stdout);
    std::fflush(stdout);
    if (r.quit) break;
  }
  std::fputs(kb.value()->stats().ToString().c_str(), stderr);
  if (session.saw_incomplete()) return 3;
  return session.saw_error() ? 1 : 0;
}

int Dot(const ParsedArgs& args) {
  SymbolTable syms;
  auto text = ReadFile(args.file.c_str());
  if (!text.ok()) return Fail(text.status().message());
  auto program = ParseProgram(text.value(), &syms);
  if (!program.ok()) return Fail(program.status().message());
  if (args.mode == "preds") {
    std::printf("%s", PredicateGraphDot(program.value().theory, syms).c_str());
    return 0;
  }
  if (args.mode == "positions") {
    std::printf("%s", PositionGraphDot(program.value().theory, syms).c_str());
    return 0;
  }
  if (args.mode == "tree") {
    auto tree = BuildChaseTree(program.value().theory,
                               program.value().database, &syms, args.chase);
    if (!tree.ok()) return Fail(tree.status().message());
    std::printf("%s", ChaseTreeDot(tree.value(), syms).c_str());
    return 0;
  }
  return Fail("unknown dot mode: " + args.mode);
}

int Usage();

// Differential conformance fuzzing (src/testing/, DESIGN.md §8). Flags
// accept both "--seed=1" and "--seed 1".
int Fuzz(int argc, char** argv) {
  unsigned seed = 1;
  size_t iters = 100;
  std::vector<testing::GenClass> classes;  // Empty = all seven.
  testing::DiffOptions opts;
  opts.shrink = false;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* name) -> const char* {
      std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.c_str() + prefix.size();
      if (arg == name && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    const char* v = nullptr;
    if ((v = value("--seed")) != nullptr) {
      seed = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if ((v = value("--iters")) != nullptr) {
      iters = static_cast<size_t>(std::strtoul(v, nullptr, 10));
    } else if ((v = value("--threads")) != nullptr) {
      opts.num_threads = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if ((v = value("--class")) != nullptr) {
      testing::GenClass cls;
      if (std::string(v) != "all") {
        if (!testing::ParseGenClass(v, &cls)) {
          std::fprintf(stderr,
                       "gerel fuzz: unknown class '%s' "
                       "(dlg|g|fg|wg|wfg|ng|nfg|all)\n",
                       v);
          return 64;
        }
        classes.push_back(cls);
      }
    } else if ((v = value("--fault")) != nullptr) {
      if (!testing::ParseFault(v, &opts.fault)) {
        std::fprintf(stderr,
                     "gerel fuzz: unknown fault '%s' (none|drop-acdom-guard|"
                     "skip-saturation-step|stale-answer-cache)\n",
                     v);
        return 64;
      }
    } else if (arg == "--shrink") {
      opts.shrink = true;
    } else if (arg == "--log-cases") {
      opts.log_cases = true;
    } else {
      return Usage();
    }
  }
  testing::DiffReport report =
      testing::RunDifferential(seed, iters, classes, opts);
  if (opts.log_cases) std::printf("%s", report.transcript.c_str());
  std::printf("fuzz: %zu cases (%zu checked, %zu skipped), %zu failure%s\n",
              report.iterations, report.checked, report.skipped,
              report.failures.size(),
              report.failures.size() == 1 ? "" : "s");
  for (const testing::DiffFailure& f : report.failures) {
    std::printf("FAIL class=%s iteration=%zu seed=%u lane=%s\n  %s\n",
                testing::GenClassTag(f.cls), f.iteration, f.case_seed,
                f.lane.c_str(), f.detail.c_str());
    std::printf("repro (%zu rules):\n%s", f.repro_rules, f.repro.c_str());
  }
  return report.ok() ? 0 : 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: gerel classify|normalize|chase|tree <program>\n"
               "       gerel check <program> [--json] [--explain] "
               "[--deny=CODE]\n"
               "       gerel translate fg2ng|nfg2ng|wfg2wg|g2dat|ng2dat "
               "<program>\n"
               "       gerel answer <program> <relation> "
               "[--route=chase|datalog]\n"
               "       gerel serve <program> [--threads=N]\n"
               "       gerel fuzz [--seed N] [--iters N] [--class "
               "dlg|g|fg|wg|wfg|ng|nfg|all]\n"
               "                  [--shrink] [--threads N] [--fault F] "
               "[--log-cases]\n"
               "       gerel dot preds|positions|tree <program>\n"
               "flags: --max-steps=N --max-atoms=N --max-depth=N "
               "--max-rules=N --threads=N\n");
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "fuzz") == 0) {
    return Fuzz(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "check") == 0) {
    return Check(argc, argv);
  }
  if (argc < 3) return Usage();
  ParsedArgs args;
  args.command = argv[1];
  int pos = 2;
  if (args.command == "translate" || args.command == "dot") {
    if (argc < 4) return Usage();
    args.mode = argv[pos++];
  }
  args.file = argv[pos++];
  if (args.command == "answer") {
    if (pos >= argc) return Usage();
    args.relation = argv[pos++];
  }
  for (int i = pos; i < argc; ++i) {
    long value = 0;
    if (ParseFlag(argv[i], "--max-steps", &value)) {
      args.chase.max_steps = static_cast<size_t>(value);
    } else if (ParseFlag(argv[i], "--max-atoms", &value)) {
      args.chase.max_atoms = static_cast<size_t>(value);
    } else if (ParseFlag(argv[i], "--max-depth", &value)) {
      args.chase.max_null_depth = static_cast<uint32_t>(value);
    } else if (ParseFlag(argv[i], "--max-rules", &value)) {
      args.max_rules = static_cast<size_t>(value);
    } else if (ParseFlag(argv[i], "--threads", &value)) {
      args.threads = static_cast<size_t>(value);
      args.chase.num_threads = args.threads;
    } else if (std::strncmp(argv[i], "--route=", 8) == 0) {
      args.route = argv[i] + 8;
    } else {
      return Usage();
    }
  }
  if (args.command == "classify") return Classify(args);
  if (args.command == "normalize") return Normalize(args);
  if (args.command == "chase") return RunChase(args);
  if (args.command == "tree") return Tree(args);
  if (args.command == "translate") return Translate(args);
  if (args.command == "answer") return Answer(args);
  if (args.command == "serve") return Serve(args);
  if (args.command == "dot") return Dot(args);
  return Usage();
}
