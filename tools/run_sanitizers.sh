#!/usr/bin/env bash
# Builds and runs the tier-1 suite under the sanitizers:
#   GEREL_SANITIZE=thread   (TSan — data races in the worker lanes)
#   GEREL_SANITIZE=address  (ASan+UBSan — memory and UB, incl. the
#                            snapshot reader's bounds checks)
#
# Usage: tools/run_sanitizers.sh [thread|address|all] [ctest-args...]
#
# Each configuration builds into its own directory (build-tsan/,
# build-asan/) so the sanitized trees never pollute the primary build/.
# By default the full ctest suite runs; pass extra ctest args to narrow,
# e.g. `tools/run_sanitizers.sh all -L robustness` for just the
# fault/budget/snapshot tests, or `thread -L serving` to put the
# socket server's worker pool and the mixed query/assert hammer under
# the race detector (the loadgen smoke drops its throughput floor in
# sanitized builds). Exits non-zero if any configuration fails to
# build or any selected test fails.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
which="${1:-all}"
shift || true

case "$which" in
  thread|address|all) ;;
  *)
    echo "run_sanitizers: unknown mode '$which' (thread|address|all)" >&2
    exit 64
    ;;
esac

run_one() {
  local mode="$1"; shift
  local build="$repo/build-${mode:0:1}san"
  echo "== GEREL_SANITIZE=$mode ($build)"
  cmake -B "$build" -S "$repo" -DGEREL_SANITIZE="$mode" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$build" -j "$(nproc)"
  # Second-guessing the sanitizer runtime helps nobody: abort on the
  # first finding so the failing test names the defect.
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "$build" --output-on-failure -j "$(nproc)" "$@"
}

status=0
if [ "$which" = "thread" ] || [ "$which" = "all" ]; then
  run_one thread "$@" || status=1
fi
if [ "$which" = "address" ] || [ "$which" = "all" ]; then
  run_one address "$@" || status=1
fi
exit $status
