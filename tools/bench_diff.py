#!/usr/bin/env python3
"""Compare two directories of BENCH_*.json dumps and fail on regressions.

Every bench binary writes a machine-readable BENCH_<binary>.json next to
its console table (see bench/bench_util.h). This tool compares a
committed baseline directory (bench/baseline/) against a directory of
fresh dumps and exits non-zero if any benchmark regressed by more than
the threshold (default 15% wall time), implementing the perf trend
tracking item from ROADMAP.md.

Usage:
  tools/bench_diff.py BASELINE_DIR CURRENT_DIR [--threshold 0.15]
                      [--min-ms 0.5]

Matching is by (binary, benchmark name). Benchmarks present only in the
baseline are reported as missing (a warning, not a failure: binaries and
cases come and go); benchmarks present only in the current run are new
and ignored. Runs faster than --min-ms in the baseline are skipped —
sub-noise-floor timings regress by 15% from scheduler jitter alone.
"""

import argparse
import json
import pathlib
import sys


def load_dir(path):
    """Returns {(binary, name): wall_ms} over every BENCH_*.json in path."""
    out = {}
    root = pathlib.Path(path)
    files = sorted(root.glob("BENCH_*.json"))
    if not files:
        sys.exit(f"bench_diff: no BENCH_*.json files in {path}")
    for f in files:
        try:
            doc = json.loads(f.read_text())
        except json.JSONDecodeError as e:
            sys.exit(f"bench_diff: {f}: {e}")
        binary = doc.get("binary", f.stem)
        for run in doc.get("benchmarks", []):
            out[(binary, run["name"])] = float(run["wall_ms"])
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="directory of committed BENCH_*.json")
    ap.add_argument("current", help="directory of freshly produced BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="relative wall-time regression that fails (0.15 = 15%%)")
    ap.add_argument("--min-ms", type=float, default=0.5,
                    help="skip benchmarks whose baseline is below this "
                         "noise floor in milliseconds")
    args = ap.parse_args()

    base = load_dir(args.baseline)
    cur = load_dir(args.current)

    regressions = []
    improved = 0
    compared = 0
    skipped = 0
    missing = []
    for key, base_ms in sorted(base.items()):
        if key not in cur:
            missing.append(key)
            continue
        if base_ms < args.min_ms:
            skipped += 1
            continue
        cur_ms = cur[key]
        compared += 1
        rel = (cur_ms - base_ms) / base_ms
        tag = ""
        if rel > args.threshold:
            regressions.append((key, base_ms, cur_ms, rel))
            tag = "  << REGRESSION"
        elif rel < -args.threshold:
            improved += 1
            tag = "  (improved)"
        print(f"{key[0]}:{key[1]}: {base_ms:.3f} ms -> {cur_ms:.3f} ms "
              f"({rel:+.1%}){tag}")

    for key in missing:
        print(f"warning: {key[0]}:{key[1]} missing from current run")
    print(f"\nbench_diff: {compared} compared, {improved} improved, "
          f"{skipped} below noise floor ({args.min_ms} ms), "
          f"{len(missing)} missing, {len(regressions)} regressed "
          f"(threshold {args.threshold:.0%})")
    if regressions:
        print("\nFAIL: wall-time regressions over threshold:")
        for (binary, name), base_ms, cur_ms, rel in regressions:
            print(f"  {binary}:{name}: {base_ms:.3f} ms -> {cur_ms:.3f} ms "
                  f"({rel:+.1%})")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
