#!/usr/bin/env python3
"""Compare two directories of BENCH_*.json dumps and fail on regressions.

Every bench binary writes a machine-readable BENCH_<binary>.json next to
its console table (see bench/bench_util.h). This tool compares a
committed baseline directory (bench/baseline/) against a directory of
fresh dumps and exits non-zero if any benchmark regressed by more than
the threshold (default 15% wall time), implementing the perf trend
tracking item from ROADMAP.md.

Usage:
  tools/bench_diff.py BASELINE_DIR CURRENT_DIR [--threshold 0.15]
                      [--min-ms 0.5]

Matching is by (binary, benchmark name). Benchmarks present only in the
baseline are reported as missing (a warning, not a failure: binaries and
cases come and go); benchmarks present only in the current run are new
and ignored. Runs faster than --min-ms in the baseline are skipped —
sub-noise-floor timings regress by 15% from scheduler jitter alone.

Exit codes: 0 no regressions, 1 regressions over threshold, 2 unusable
input (missing directory, no BENCH_*.json files, unparsable JSON, or a
dump without the expected fields) — so CI can tell "perf got worse"
from "the harness never produced comparable numbers".
"""

import argparse
import json
import pathlib
import sys

EXIT_REGRESSION = 1
EXIT_BAD_INPUT = 2


def fail_input(message):
    """Input errors are diagnosed on stderr and exit 2, never a traceback."""
    print(f"bench_diff: error: {message}", file=sys.stderr)
    sys.exit(EXIT_BAD_INPUT)


def load_dir(path):
    """Returns {(binary, name): wall_ms} over every BENCH_*.json in path."""
    out = {}
    root = pathlib.Path(path)
    if not root.exists():
        fail_input(f"directory {path} does not exist")
    if not root.is_dir():
        fail_input(f"{path} is not a directory")
    files = sorted(root.glob("BENCH_*.json"))
    if not files:
        fail_input(f"no BENCH_*.json files in {path}")
    for f in files:
        try:
            doc = json.loads(f.read_text())
        except OSError as e:
            fail_input(f"{f}: {e}")
        except json.JSONDecodeError as e:
            fail_input(f"{f}: not valid JSON: {e}")
        if not isinstance(doc, dict):
            fail_input(f"{f}: expected a JSON object at top level")
        binary = doc.get("binary", f.stem)
        benchmarks = doc.get("benchmarks", [])
        if not isinstance(benchmarks, list):
            fail_input(f"{f}: \"benchmarks\" must be a list")
        for i, run in enumerate(benchmarks):
            if not isinstance(run, dict) or "name" not in run:
                fail_input(f"{f}: benchmarks[{i}] has no \"name\"")
            if "wall_ms" not in run:
                fail_input(f"{f}: benchmark {run['name']!r} has no \"wall_ms\"")
            try:
                wall_ms = float(run["wall_ms"])
            except (TypeError, ValueError):
                fail_input(f"{f}: benchmark {run['name']!r} has non-numeric "
                           f"wall_ms {run['wall_ms']!r}")
            out[(binary, run["name"])] = wall_ms
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="directory of committed BENCH_*.json")
    ap.add_argument("current", help="directory of freshly produced BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="relative wall-time regression that fails (0.15 = 15%%)")
    ap.add_argument("--min-ms", type=float, default=0.5,
                    help="skip benchmarks whose baseline is below this "
                         "noise floor in milliseconds")
    args = ap.parse_args()

    base = load_dir(args.baseline)
    cur = load_dir(args.current)

    regressions = []
    improved = 0
    compared = 0
    skipped = 0
    missing = []
    for key, base_ms in sorted(base.items()):
        if key not in cur:
            missing.append(key)
            continue
        if base_ms < args.min_ms:
            skipped += 1
            continue
        cur_ms = cur[key]
        compared += 1
        rel = (cur_ms - base_ms) / base_ms
        tag = ""
        if rel > args.threshold:
            regressions.append((key, base_ms, cur_ms, rel))
            tag = "  << REGRESSION"
        elif rel < -args.threshold:
            improved += 1
            tag = "  (improved)"
        print(f"{key[0]}:{key[1]}: {base_ms:.3f} ms -> {cur_ms:.3f} ms "
              f"({rel:+.1%}){tag}")

    for key in missing:
        print(f"warning: {key[0]}:{key[1]} missing from current run")
    print(f"\nbench_diff: {compared} compared, {improved} improved, "
          f"{skipped} below noise floor ({args.min_ms} ms), "
          f"{len(missing)} missing, {len(regressions)} regressed "
          f"(threshold {args.threshold:.0%})")
    if regressions:
        print("\nFAIL: wall-time regressions over threshold:")
        for (binary, name), base_ms, cur_ms, rel in regressions:
            print(f"  {binary}:{name}: {base_ms:.3f} ms -> {cur_ms:.3f} ms "
                  f"({rel:+.1%})")
        return EXIT_REGRESSION
    return 0


if __name__ == "__main__":
    sys.exit(main())
