// TriQ-style RDF querying with stratified weakly guarded rules.
//
// The paper's introduction points at TriQ (Arenas, Gottlob, Pieris,
// PODS'14) — an RDF query language based on stratified weakly guarded
// rules — as a system whose expressive power Theorem 5 characterizes:
// stratified weakly guarded rules capture EXPTIME, so TriQ subsumes
// every query language with at most exponential data complexity.
//
// This example models an RDF graph as triple(S, P, O) facts, uses
// existential rules for ontological value invention (every employee has
// some department, known or not), recursion for transitive subclassing,
// and stratified negation for a non-monotonic "unassigned" query.
//
//   ./examples/triq_rdf
#include <cstdio>

#include "core/classify.h"
#include "core/parser.h"
#include "core/printer.h"
#include "stratified/stratified_chase.h"

int main() {
  gerel::SymbolTable syms;
  auto program = gerel::ParseProgram(R"(
    % --- ontology (stratified weakly guarded rules) --------------------
    % Every employee works in some (possibly unknown) department.
    triple(X, rdftype, employee) -> exists D. worksin(X, D).
    % Known assignments feed the same relation.
    triple(X, dept, D) -> worksin(X, D).
    % Transitive subclassing, and type inheritance along it.
    triple(C, subclassof, D) -> subclass(C, D).
    subclass(C, D), subclass(D, E) -> subclass(C, E).
    triple(X, rdftype, C), subclass(C, D) -> triple(X, rdftype, D).
    % Anyone working somewhere is staff.
    worksin(X, D) -> staff(X).
    % Non-monotonic layer: staff with no *known* department.
    staff(X), not known(X) -> unassigned(X).
    triple(X, dept, D) -> known(X).

    % --- data -----------------------------------------------------------
    triple(engineer, subclassof, employee).
    triple(manager, subclassof, employee).
    triple(ada, rdftype, engineer).
    triple(bob, rdftype, manager).
    triple(bob, dept, sales).
    triple(eve, rdftype, employee).
  )",
                                     &syms);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().message().c_str());
    return 1;
  }

  bool wg = gerel::IsStratifiedWeaklyGuarded(program.value().theory);
  std::printf("stratified weakly guarded (TriQ fragment): %s\n\n",
              wg ? "yes" : "no");

  auto result = gerel::StratifiedChase(program.value().theory,
                                       program.value().database, &syms);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().message().c_str());
    return 1;
  }
  std::printf("stratified chase: %zu atoms over %zu strata, saturated=%d\n",
              result.value().database.size(), result.value().strata,
              result.value().saturated);
  for (const char* rel : {"staff", "unassigned"}) {
    std::printf("\n%s:\n", rel);
    gerel::RelationId r = syms.Relation(rel);
    for (uint32_t i : result.value().database.AtomsOf(r)) {
      const gerel::Atom& a = result.value().database.atom(i);
      if (a.IsGroundOverConstants()) {
        std::printf("  %s\n", gerel::ToString(a, syms).c_str());
      }
    }
  }
  std::printf("\n(ada and eve are unassigned: their departments are "
              "invented nulls, not known facts; bob is assigned.)\n");
  return 0;
}
