// Ontology-mediated query answering over the publications knowledge base
// (paper §7): a conjunctive query is answered through the translation
// pipeline — classification, normalization (Prop 1), rewriting into
// nearly guarded rules (Thm 1/Prop 4), saturation into Datalog (Thm 3 /
// Prop 6), and bottom-up evaluation — instead of chasing.
//
//   ./examples/publication_ontology
#include <cstdio>

#include "chase/chase.h"
#include "core/classify.h"
#include "core/normalize.h"
#include "core/parser.h"
#include "core/printer.h"
#include "datalog/evaluator.h"
#include "transform/fg_to_ng.h"
#include "transform/saturation.h"

int main() {
  gerel::SymbolTable syms;
  // A publications ontology: topics of keyword lists, co-author
  // propagation of scientific status, and derived collaboration facts.
  auto theory = gerel::ParseTheory(R"(
    publication(X) -> exists K1, K2. keywords(X, K1, K2).
    keywords(X, K1, K2) -> hastopic(X, K1).
    hasauthor(X, Y), hastopic(X, Z), scientific(Z) -> sciauthor(Y).
    hasauthor(P, A), hasauthor(P, B) -> collab(A, B).
  )",
                                   &syms);
  if (!theory.ok()) {
    std::fprintf(stderr, "%s\n", theory.status().message().c_str());
    return 1;
  }
  auto db = gerel::ParseDatabase(R"(
    publication(p1). publication(p2).
    hasauthor(p1, ada). hasauthor(p1, bob). hasauthor(p2, bob).
    hastopic(p1, databases). scientific(databases).
  )",
                                 &syms);

  gerel::Classification c = gerel::Classify(theory.value());
  std::printf("ontology is nearly frontier-guarded: %d (frontier-guarded: "
              "%d)\n",
              c.nearly_frontier_guarded, c.frontier_guarded);

  // Step 1 (Prop 1): normal form.
  gerel::Theory normal = gerel::Normalize(theory.value(), &syms);
  std::printf("normalized: %zu rules\n", normal.size());

  // Step 2 (Thm 1 / Prop 4): nearly frontier-guarded -> nearly guarded.
  auto rewritten = gerel::RewriteNfgToNearlyGuarded(normal, &syms);
  if (!rewritten.ok()) {
    std::fprintf(stderr, "%s\n", rewritten.status().message().c_str());
    return 1;
  }
  std::printf("rew(Sigma): %zu nearly guarded rules (complete=%d)\n",
              rewritten.value().theory.size(), rewritten.value().complete);

  // Step 3 (Prop 6): nearly guarded -> Datalog.
  auto dat = gerel::NearlyGuardedToDatalog(rewritten.value().theory, &syms);
  if (!dat.ok()) {
    std::fprintf(stderr, "%s\n", dat.status().message().c_str());
    return 1;
  }
  std::printf("dat(Sigma): %zu Datalog rules\n", dat.value().datalog.size());

  // Step 4: one bottom-up evaluation answers every query.
  auto eval = gerel::EvaluateDatalog(dat.value().datalog, db.value(), &syms);
  if (!eval.ok()) {
    std::fprintf(stderr, "%s\n", eval.status().message().c_str());
    return 1;
  }
  for (const char* rel : {"sciauthor", "collab"}) {
    gerel::RelationId r = syms.Relation(rel);
    std::printf("\n%s:\n", rel);
    for (uint32_t i : eval.value().database.AtomsOf(r)) {
      const gerel::Atom& a = eval.value().database.atom(i);
      if (a.IsGroundOverConstants()) {
        std::printf("  %s\n", gerel::ToString(a, syms).c_str());
      }
    }
  }

  // Cross-check against the chase oracle.
  gerel::ChaseResult chase = gerel::Chase(theory.value(), db.value(), &syms);
  gerel::RelationId sci = syms.Relation("sciauthor");
  std::printf("\nchase agrees on sciauthor: %s\n",
              eval.value().database.AtomsOf(sci).size() ==
                      chase.database.AtomsOf(sci).size()
                  ? "yes"
                  : "NO");
  return 0;
}
