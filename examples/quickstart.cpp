// Quickstart: the paper's running example (Example 1 / Figure 2).
//
// Parses the publication ontology Σp, classifies it, chases a small
// database, and prints the inferred atoms and query answers.
//
//   ./examples/quickstart
#include <cstdio>

#include "chase/chase.h"
#include "chase/chase_tree.h"
#include "core/classify.h"
#include "core/parser.h"
#include "core/printer.h"

int main() {
  gerel::SymbolTable syms;

  // Σp of Example 1: σ1–σ3 describe the ontology, σ4 defines the query
  // "persons who authored a scientific publication".
  auto theory = gerel::ParseTheory(R"(
    publication(X) -> exists K1, K2. keywords(X, K1, K2).
    keywords(X, K1, K2) -> hastopic(X, K1).
    hastopic(X, Z), hasauthor(X, U), hasauthor(Y, U), hastopic(Y, Z2),
      scientific(Z2), citedin(Y, X) -> scientific(Z).
    hasauthor(X, Y), hastopic(X, Z), scientific(Z) -> q(Y).
  )",
                                   &syms);
  if (!theory.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 theory.status().message().c_str());
    return 1;
  }

  auto db = gerel::ParseDatabase(R"(
    publication(p1). publication(p2). citedin(p1, p2).
    hasauthor(p1, a1). hasauthor(p2, a1). hasauthor(p2, a2).
    hastopic(p1, t1). scientific(t1).
  )",
                                 &syms);

  std::printf("== The running example Sigma_p (Example 1) ==\n%s\n",
              gerel::ToString(theory.value(), syms).c_str());

  gerel::Classification c = gerel::Classify(theory.value());
  std::printf("classification: guarded=%d frontier-guarded=%d "
              "weakly-guarded=%d weakly-frontier-guarded=%d\n\n",
              c.guarded, c.frontier_guarded, c.weakly_guarded,
              c.weakly_frontier_guarded);

  gerel::ChaseResult chase =
      gerel::Chase(theory.value(), db.value(), &syms);
  std::printf("== chase(Sigma_p, D): %zu atoms, saturated=%d (Figure 2) ==\n",
              chase.database.size(), chase.saturated);
  std::printf("%s\n", gerel::ToString(chase.database, syms).c_str());

  gerel::RelationId q = syms.Relation("q");
  std::printf("answers to (Sigma_p, Q):\n");
  for (uint32_t i : chase.database.AtomsOf(q)) {
    std::printf("  %s\n",
                gerel::ToString(chase.database.atom(i), syms).c_str());
  }

  // The chase of a frontier-guarded theory is tree-shaped (§4).
  auto tree = gerel::BuildChaseTree(theory.value(), db.value(), &syms);
  if (tree.ok()) {
    std::printf("\nchase tree: %zu nodes (root + one per invented bag)\n",
                tree.value().nodes.size());
    gerel::Status props = gerel::CheckChaseTreeProperties(
        tree.value(), theory.value(), db.value());
    std::printf("Prop 2 properties (P1)-(P3): %s\n",
                props.ok() ? "hold" : props.message().c_str());
  }
  return 0;
}
