// Capturing EXPTIME (paper §8, Thms 4 and 5).
//
// Part 1 (Thm 4): an alternating Turing machine is compiled into a
// weakly guarded theory; entailment of the 0-ary `accept` atom over a
// string database coincides with acceptance of the encoded word.
//
// Part 2 (Thm 5): the stratified weakly guarded program Σsucc generates
// every linear order of the database constants as a labeled null, which
// makes order-dependent, non-monotonic queries (here: parity of the
// domain) expressible without any ordering assumption on the input.
//
//   ./examples/capture_exptime
#include <cstdio>

#include "capture/capture_compiler.h"
#include "capture/order_program.h"
#include "capture/string_database.h"
#include "capture/turing_machine.h"
#include "core/classify.h"
#include "core/parser.h"
#include "core/printer.h"

int main() {
  // --- Part 1: Theorem 4 -------------------------------------------------
  gerel::SymbolTable syms;
  gerel::StringSignature sig;
  sig.degree = 1;
  sig.alphabet = {"sym0", "sym1"};

  gerel::Atm machine = gerel::EvenParityMachine();
  auto compiled =
      gerel::CompileAtmToWeaklyGuarded(machine, sig, &syms);
  if (!compiled.ok()) {
    std::fprintf(stderr, "%s\n", compiled.status().message().c_str());
    return 1;
  }
  gerel::Classification c = gerel::Classify(compiled.value().theory);
  std::printf("Sigma_M for '%s': %zu rules, weakly guarded: %d\n\n",
              machine.name.c_str(), compiled.value().theory.size(),
              c.weakly_guarded);

  for (std::vector<int> word :
       {std::vector<int>{1, 0, 1}, std::vector<int>{1, 1, 1},
        std::vector<int>{0, 0, 0, 0}}) {
    auto sdb = gerel::MakeStringDatabase(word, sig, &syms);
    auto sim = gerel::SimulateAtm(machine, word);
    auto via_rules = gerel::DecideAcceptanceViaChase(
        compiled.value(), sdb.value().db, &syms,
        /*max_steps_hint=*/static_cast<uint32_t>(2 * word.size() + 4));
    std::printf("word ");
    for (int s : word) std::printf("%d", s);
    std::printf(": machine=%s  Sigma_M,D |= accept: %s\n",
                sim.value().accepted ? "accepts" : "rejects",
                via_rules.ok() && via_rules.value() ? "yes" : "no");
  }

  // --- Part 2: Theorem 5 --------------------------------------------------
  std::printf("\nSigma_succ (rules (1)-(12)): generating all linear "
              "orders of the constants\n");
  gerel::SymbolTable syms2;
  gerel::OrderProgram prog = gerel::BuildOrderProgram(&syms2);
  auto parity = gerel::ParseTheory(R"(
    ord#min(X, U) -> oddp(X, U).
    oddp(X, U), ord#succ(X, Y, U) -> evenp(Y, U).
    evenp(X, U), ord#succ(X, Y, U) -> oddp(Y, U).
    evenp(X, U), ord#max(X, U), ord#good(U) -> domeven.
  )",
                                   &syms2);
  for (int n = 2; n <= 4; ++n) {
    gerel::Database db;
    gerel::RelationId d = syms2.Relation("dom", 1);
    for (int i = 0; i < n; ++i) {
      db.Insert(gerel::Atom(d, {syms2.Constant("c" + std::to_string(i))}));
    }
    auto result =
        gerel::RunOrderProgram(prog, parity.value(), db, &syms2);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().message().c_str());
      return 1;
    }
    size_t goods = result.value().database.AtomsOf(prog.good).size();
    bool even = result.value().database.Contains(
        gerel::Atom(syms2.Relation("domeven", 0), {}));
    std::printf("  |dom| = %d: %zu good orderings (= %d!), domeven: %s\n",
                n, goods, n, even ? "derived" : "not derived");
  }
  return 0;
}
