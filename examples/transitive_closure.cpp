// Expressiveness boundaries (paper §3 and Figure 1): transitive closure
// is the classic query frontier-guarded rules cannot express — a
// frontier-guarded theory can never relate constants that are not already
// related in the input — while nearly guarded rules (and hence Datalog)
// express it directly.
//
//   ./examples/transitive_closure
#include <cstdio>

#include "chase/chase.h"
#include "core/classify.h"
#include "core/parser.h"
#include "core/printer.h"
#include "datalog/evaluator.h"
#include "transform/saturation.h"

int main() {
  gerel::SymbolTable syms;
  auto tc = gerel::ParseTheory(R"(
    e(X, Y) -> t(X, Y).
    e(X, Y), t(Y, Z) -> t(X, Z).
  )",
                               &syms);
  gerel::Classification c = gerel::Classify(tc.value());
  std::printf("transitive closure: datalog=%d guarded=%d "
              "frontier-guarded=%d nearly-guarded=%d\n",
              c.datalog, c.guarded, c.frontier_guarded, c.nearly_guarded);
  std::printf("-> the recursion rule has frontier {X, Z} in no single "
              "atom: not frontier-guarded (Figure 1 separation).\n\n");

  // The witness for the separation (paper §3): a frontier-guarded theory
  // without constants can only output tuples whose constants co-occur in
  // some input fact. t(a, c) below relates a and c, which co-occur in no
  // input atom — no frontier-guarded theory can produce it.
  auto db = gerel::ParseDatabase("e(a, b). e(b, c). e(c, d).", &syms);
  auto result = gerel::NearlyGuardedToDatalog(tc.value(), &syms);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().message().c_str());
    return 1;
  }
  auto eval =
      gerel::EvaluateDatalog(result.value().datalog, db.value(), &syms);
  gerel::RelationId t = syms.Relation("t");
  std::printf("t computed by dat(Sigma) over e = {ab, bc, cd}:\n");
  for (uint32_t i : eval.value().database.AtomsOf(t)) {
    std::printf("  %s\n",
                gerel::ToString(eval.value().database.atom(i), syms).c_str());
  }
  bool has_ac = eval.value().database.Contains(gerel::Atom(
      t, {syms.Constant("a"), syms.Constant("c")}));
  std::printf("\nt(a, c) derived (impossible for any frontier-guarded "
              "theory): %s\n",
              has_ac ? "yes" : "no");

  // Contrast: a frontier-guarded theory over the same database can only
  // relate co-occurring constants.
  auto fg = gerel::ParseTheory("e(X, Y) -> related(X, Y).", &syms);
  auto fg_eval = gerel::Chase(fg.value(), db.value(), &syms);
  gerel::RelationId rel = syms.Relation("related");
  std::printf("frontier-guarded 'related' pairs: %zu (only the %zu input "
              "edges)\n",
              fg_eval.database.AtomsOf(rel).size(),
              db.value().AtomsOf(syms.Relation("e")).size());
  return 0;
}
