file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core_acyclicity_test.cc.o"
  "CMakeFiles/core_test.dir/core_acyclicity_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_classify_test.cc.o"
  "CMakeFiles/core_test.dir/core_classify_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_database_test.cc.o"
  "CMakeFiles/core_test.dir/core_database_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_graphviz_test.cc.o"
  "CMakeFiles/core_test.dir/core_graphviz_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_homomorphism_test.cc.o"
  "CMakeFiles/core_test.dir/core_homomorphism_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_normalize_test.cc.o"
  "CMakeFiles/core_test.dir/core_normalize_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_parser_test.cc.o"
  "CMakeFiles/core_test.dir/core_parser_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_rule_test.cc.o"
  "CMakeFiles/core_test.dir/core_rule_test.cc.o.d"
  "CMakeFiles/core_test.dir/core_term_test.cc.o"
  "CMakeFiles/core_test.dir/core_term_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
