
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_acyclicity_test.cc" "tests/CMakeFiles/core_test.dir/core_acyclicity_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_acyclicity_test.cc.o.d"
  "/root/repo/tests/core_classify_test.cc" "tests/CMakeFiles/core_test.dir/core_classify_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_classify_test.cc.o.d"
  "/root/repo/tests/core_database_test.cc" "tests/CMakeFiles/core_test.dir/core_database_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_database_test.cc.o.d"
  "/root/repo/tests/core_graphviz_test.cc" "tests/CMakeFiles/core_test.dir/core_graphviz_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_graphviz_test.cc.o.d"
  "/root/repo/tests/core_homomorphism_test.cc" "tests/CMakeFiles/core_test.dir/core_homomorphism_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_homomorphism_test.cc.o.d"
  "/root/repo/tests/core_normalize_test.cc" "tests/CMakeFiles/core_test.dir/core_normalize_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_normalize_test.cc.o.d"
  "/root/repo/tests/core_parser_test.cc" "tests/CMakeFiles/core_test.dir/core_parser_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_parser_test.cc.o.d"
  "/root/repo/tests/core_rule_test.cc" "tests/CMakeFiles/core_test.dir/core_rule_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_rule_test.cc.o.d"
  "/root/repo/tests/core_term_test.cc" "tests/CMakeFiles/core_test.dir/core_term_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_term_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gerel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/chase/CMakeFiles/gerel_chase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
