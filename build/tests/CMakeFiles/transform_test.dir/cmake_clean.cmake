file(REMOVE_RECURSE
  "CMakeFiles/transform_test.dir/transform_extra_test.cc.o"
  "CMakeFiles/transform_test.dir/transform_extra_test.cc.o.d"
  "CMakeFiles/transform_test.dir/transform_fg_test.cc.o"
  "CMakeFiles/transform_test.dir/transform_fg_test.cc.o.d"
  "CMakeFiles/transform_test.dir/transform_pipeline_test.cc.o"
  "CMakeFiles/transform_test.dir/transform_pipeline_test.cc.o.d"
  "CMakeFiles/transform_test.dir/transform_saturation_test.cc.o"
  "CMakeFiles/transform_test.dir/transform_saturation_test.cc.o.d"
  "CMakeFiles/transform_test.dir/transform_wfg_test.cc.o"
  "CMakeFiles/transform_test.dir/transform_wfg_test.cc.o.d"
  "transform_test"
  "transform_test.pdb"
  "transform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
