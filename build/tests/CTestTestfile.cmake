# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/chase_test[1]_include.cmake")
include("/root/repo/build/tests/datalog_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/stratified_test[1]_include.cmake")
include("/root/repo/build/tests/capture_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
