file(REMOVE_RECURSE
  "CMakeFiles/gerel_datalog.dir/evaluator.cc.o"
  "CMakeFiles/gerel_datalog.dir/evaluator.cc.o.d"
  "CMakeFiles/gerel_datalog.dir/magic.cc.o"
  "CMakeFiles/gerel_datalog.dir/magic.cc.o.d"
  "CMakeFiles/gerel_datalog.dir/orderings.cc.o"
  "CMakeFiles/gerel_datalog.dir/orderings.cc.o.d"
  "CMakeFiles/gerel_datalog.dir/stratifier.cc.o"
  "CMakeFiles/gerel_datalog.dir/stratifier.cc.o.d"
  "libgerel_datalog.a"
  "libgerel_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gerel_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
