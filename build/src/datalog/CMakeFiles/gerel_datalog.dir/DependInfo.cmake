
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalog/evaluator.cc" "src/datalog/CMakeFiles/gerel_datalog.dir/evaluator.cc.o" "gcc" "src/datalog/CMakeFiles/gerel_datalog.dir/evaluator.cc.o.d"
  "/root/repo/src/datalog/magic.cc" "src/datalog/CMakeFiles/gerel_datalog.dir/magic.cc.o" "gcc" "src/datalog/CMakeFiles/gerel_datalog.dir/magic.cc.o.d"
  "/root/repo/src/datalog/orderings.cc" "src/datalog/CMakeFiles/gerel_datalog.dir/orderings.cc.o" "gcc" "src/datalog/CMakeFiles/gerel_datalog.dir/orderings.cc.o.d"
  "/root/repo/src/datalog/stratifier.cc" "src/datalog/CMakeFiles/gerel_datalog.dir/stratifier.cc.o" "gcc" "src/datalog/CMakeFiles/gerel_datalog.dir/stratifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gerel_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
