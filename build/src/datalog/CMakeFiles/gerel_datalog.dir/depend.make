# Empty dependencies file for gerel_datalog.
# This may be replaced when dependencies are built.
