file(REMOVE_RECURSE
  "libgerel_datalog.a"
)
