
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chase/chase.cc" "src/chase/CMakeFiles/gerel_chase.dir/chase.cc.o" "gcc" "src/chase/CMakeFiles/gerel_chase.dir/chase.cc.o.d"
  "/root/repo/src/chase/chase_tree.cc" "src/chase/CMakeFiles/gerel_chase.dir/chase_tree.cc.o" "gcc" "src/chase/CMakeFiles/gerel_chase.dir/chase_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gerel_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
