# Empty dependencies file for gerel_chase.
# This may be replaced when dependencies are built.
