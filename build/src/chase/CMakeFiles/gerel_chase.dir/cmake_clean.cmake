file(REMOVE_RECURSE
  "CMakeFiles/gerel_chase.dir/chase.cc.o"
  "CMakeFiles/gerel_chase.dir/chase.cc.o.d"
  "CMakeFiles/gerel_chase.dir/chase_tree.cc.o"
  "CMakeFiles/gerel_chase.dir/chase_tree.cc.o.d"
  "libgerel_chase.a"
  "libgerel_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gerel_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
