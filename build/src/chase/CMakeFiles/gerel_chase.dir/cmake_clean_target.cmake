file(REMOVE_RECURSE
  "libgerel_chase.a"
)
