# Empty compiler generated dependencies file for gerel_capture.
# This may be replaced when dependencies are built.
