
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/capture/capture_compiler.cc" "src/capture/CMakeFiles/gerel_capture.dir/capture_compiler.cc.o" "gcc" "src/capture/CMakeFiles/gerel_capture.dir/capture_compiler.cc.o.d"
  "/root/repo/src/capture/code_program.cc" "src/capture/CMakeFiles/gerel_capture.dir/code_program.cc.o" "gcc" "src/capture/CMakeFiles/gerel_capture.dir/code_program.cc.o.d"
  "/root/repo/src/capture/order_program.cc" "src/capture/CMakeFiles/gerel_capture.dir/order_program.cc.o" "gcc" "src/capture/CMakeFiles/gerel_capture.dir/order_program.cc.o.d"
  "/root/repo/src/capture/string_database.cc" "src/capture/CMakeFiles/gerel_capture.dir/string_database.cc.o" "gcc" "src/capture/CMakeFiles/gerel_capture.dir/string_database.cc.o.d"
  "/root/repo/src/capture/turing_machine.cc" "src/capture/CMakeFiles/gerel_capture.dir/turing_machine.cc.o" "gcc" "src/capture/CMakeFiles/gerel_capture.dir/turing_machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gerel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/chase/CMakeFiles/gerel_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/gerel_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/stratified/CMakeFiles/gerel_stratified.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/gerel_transform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
