file(REMOVE_RECURSE
  "libgerel_capture.a"
)
