file(REMOVE_RECURSE
  "CMakeFiles/gerel_capture.dir/capture_compiler.cc.o"
  "CMakeFiles/gerel_capture.dir/capture_compiler.cc.o.d"
  "CMakeFiles/gerel_capture.dir/code_program.cc.o"
  "CMakeFiles/gerel_capture.dir/code_program.cc.o.d"
  "CMakeFiles/gerel_capture.dir/order_program.cc.o"
  "CMakeFiles/gerel_capture.dir/order_program.cc.o.d"
  "CMakeFiles/gerel_capture.dir/string_database.cc.o"
  "CMakeFiles/gerel_capture.dir/string_database.cc.o.d"
  "CMakeFiles/gerel_capture.dir/turing_machine.cc.o"
  "CMakeFiles/gerel_capture.dir/turing_machine.cc.o.d"
  "libgerel_capture.a"
  "libgerel_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gerel_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
