file(REMOVE_RECURSE
  "libgerel_core.a"
)
