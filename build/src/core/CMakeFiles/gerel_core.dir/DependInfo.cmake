
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/acyclicity.cc" "src/core/CMakeFiles/gerel_core.dir/acyclicity.cc.o" "gcc" "src/core/CMakeFiles/gerel_core.dir/acyclicity.cc.o.d"
  "/root/repo/src/core/atom.cc" "src/core/CMakeFiles/gerel_core.dir/atom.cc.o" "gcc" "src/core/CMakeFiles/gerel_core.dir/atom.cc.o.d"
  "/root/repo/src/core/classify.cc" "src/core/CMakeFiles/gerel_core.dir/classify.cc.o" "gcc" "src/core/CMakeFiles/gerel_core.dir/classify.cc.o.d"
  "/root/repo/src/core/database.cc" "src/core/CMakeFiles/gerel_core.dir/database.cc.o" "gcc" "src/core/CMakeFiles/gerel_core.dir/database.cc.o.d"
  "/root/repo/src/core/graphviz.cc" "src/core/CMakeFiles/gerel_core.dir/graphviz.cc.o" "gcc" "src/core/CMakeFiles/gerel_core.dir/graphviz.cc.o.d"
  "/root/repo/src/core/homomorphism.cc" "src/core/CMakeFiles/gerel_core.dir/homomorphism.cc.o" "gcc" "src/core/CMakeFiles/gerel_core.dir/homomorphism.cc.o.d"
  "/root/repo/src/core/normalize.cc" "src/core/CMakeFiles/gerel_core.dir/normalize.cc.o" "gcc" "src/core/CMakeFiles/gerel_core.dir/normalize.cc.o.d"
  "/root/repo/src/core/parser.cc" "src/core/CMakeFiles/gerel_core.dir/parser.cc.o" "gcc" "src/core/CMakeFiles/gerel_core.dir/parser.cc.o.d"
  "/root/repo/src/core/printer.cc" "src/core/CMakeFiles/gerel_core.dir/printer.cc.o" "gcc" "src/core/CMakeFiles/gerel_core.dir/printer.cc.o.d"
  "/root/repo/src/core/rule.cc" "src/core/CMakeFiles/gerel_core.dir/rule.cc.o" "gcc" "src/core/CMakeFiles/gerel_core.dir/rule.cc.o.d"
  "/root/repo/src/core/substitution.cc" "src/core/CMakeFiles/gerel_core.dir/substitution.cc.o" "gcc" "src/core/CMakeFiles/gerel_core.dir/substitution.cc.o.d"
  "/root/repo/src/core/symbol_table.cc" "src/core/CMakeFiles/gerel_core.dir/symbol_table.cc.o" "gcc" "src/core/CMakeFiles/gerel_core.dir/symbol_table.cc.o.d"
  "/root/repo/src/core/theory.cc" "src/core/CMakeFiles/gerel_core.dir/theory.cc.o" "gcc" "src/core/CMakeFiles/gerel_core.dir/theory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
