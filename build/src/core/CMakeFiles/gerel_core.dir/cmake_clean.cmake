file(REMOVE_RECURSE
  "CMakeFiles/gerel_core.dir/acyclicity.cc.o"
  "CMakeFiles/gerel_core.dir/acyclicity.cc.o.d"
  "CMakeFiles/gerel_core.dir/atom.cc.o"
  "CMakeFiles/gerel_core.dir/atom.cc.o.d"
  "CMakeFiles/gerel_core.dir/classify.cc.o"
  "CMakeFiles/gerel_core.dir/classify.cc.o.d"
  "CMakeFiles/gerel_core.dir/database.cc.o"
  "CMakeFiles/gerel_core.dir/database.cc.o.d"
  "CMakeFiles/gerel_core.dir/graphviz.cc.o"
  "CMakeFiles/gerel_core.dir/graphviz.cc.o.d"
  "CMakeFiles/gerel_core.dir/homomorphism.cc.o"
  "CMakeFiles/gerel_core.dir/homomorphism.cc.o.d"
  "CMakeFiles/gerel_core.dir/normalize.cc.o"
  "CMakeFiles/gerel_core.dir/normalize.cc.o.d"
  "CMakeFiles/gerel_core.dir/parser.cc.o"
  "CMakeFiles/gerel_core.dir/parser.cc.o.d"
  "CMakeFiles/gerel_core.dir/printer.cc.o"
  "CMakeFiles/gerel_core.dir/printer.cc.o.d"
  "CMakeFiles/gerel_core.dir/rule.cc.o"
  "CMakeFiles/gerel_core.dir/rule.cc.o.d"
  "CMakeFiles/gerel_core.dir/substitution.cc.o"
  "CMakeFiles/gerel_core.dir/substitution.cc.o.d"
  "CMakeFiles/gerel_core.dir/symbol_table.cc.o"
  "CMakeFiles/gerel_core.dir/symbol_table.cc.o.d"
  "CMakeFiles/gerel_core.dir/theory.cc.o"
  "CMakeFiles/gerel_core.dir/theory.cc.o.d"
  "libgerel_core.a"
  "libgerel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gerel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
