# Empty dependencies file for gerel_core.
# This may be replaced when dependencies are built.
