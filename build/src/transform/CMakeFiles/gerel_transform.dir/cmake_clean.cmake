file(REMOVE_RECURSE
  "CMakeFiles/gerel_transform.dir/acdom.cc.o"
  "CMakeFiles/gerel_transform.dir/acdom.cc.o.d"
  "CMakeFiles/gerel_transform.dir/annotation.cc.o"
  "CMakeFiles/gerel_transform.dir/annotation.cc.o.d"
  "CMakeFiles/gerel_transform.dir/canonical.cc.o"
  "CMakeFiles/gerel_transform.dir/canonical.cc.o.d"
  "CMakeFiles/gerel_transform.dir/fg_to_ng.cc.o"
  "CMakeFiles/gerel_transform.dir/fg_to_ng.cc.o.d"
  "CMakeFiles/gerel_transform.dir/grounding.cc.o"
  "CMakeFiles/gerel_transform.dir/grounding.cc.o.d"
  "CMakeFiles/gerel_transform.dir/pipeline.cc.o"
  "CMakeFiles/gerel_transform.dir/pipeline.cc.o.d"
  "CMakeFiles/gerel_transform.dir/rewriting.cc.o"
  "CMakeFiles/gerel_transform.dir/rewriting.cc.o.d"
  "CMakeFiles/gerel_transform.dir/saturation.cc.o"
  "CMakeFiles/gerel_transform.dir/saturation.cc.o.d"
  "libgerel_transform.a"
  "libgerel_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gerel_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
