# Empty dependencies file for gerel_transform.
# This may be replaced when dependencies are built.
