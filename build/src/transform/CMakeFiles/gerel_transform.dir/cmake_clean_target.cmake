file(REMOVE_RECURSE
  "libgerel_transform.a"
)
