
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/acdom.cc" "src/transform/CMakeFiles/gerel_transform.dir/acdom.cc.o" "gcc" "src/transform/CMakeFiles/gerel_transform.dir/acdom.cc.o.d"
  "/root/repo/src/transform/annotation.cc" "src/transform/CMakeFiles/gerel_transform.dir/annotation.cc.o" "gcc" "src/transform/CMakeFiles/gerel_transform.dir/annotation.cc.o.d"
  "/root/repo/src/transform/canonical.cc" "src/transform/CMakeFiles/gerel_transform.dir/canonical.cc.o" "gcc" "src/transform/CMakeFiles/gerel_transform.dir/canonical.cc.o.d"
  "/root/repo/src/transform/fg_to_ng.cc" "src/transform/CMakeFiles/gerel_transform.dir/fg_to_ng.cc.o" "gcc" "src/transform/CMakeFiles/gerel_transform.dir/fg_to_ng.cc.o.d"
  "/root/repo/src/transform/grounding.cc" "src/transform/CMakeFiles/gerel_transform.dir/grounding.cc.o" "gcc" "src/transform/CMakeFiles/gerel_transform.dir/grounding.cc.o.d"
  "/root/repo/src/transform/pipeline.cc" "src/transform/CMakeFiles/gerel_transform.dir/pipeline.cc.o" "gcc" "src/transform/CMakeFiles/gerel_transform.dir/pipeline.cc.o.d"
  "/root/repo/src/transform/rewriting.cc" "src/transform/CMakeFiles/gerel_transform.dir/rewriting.cc.o" "gcc" "src/transform/CMakeFiles/gerel_transform.dir/rewriting.cc.o.d"
  "/root/repo/src/transform/saturation.cc" "src/transform/CMakeFiles/gerel_transform.dir/saturation.cc.o" "gcc" "src/transform/CMakeFiles/gerel_transform.dir/saturation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gerel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/chase/CMakeFiles/gerel_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/gerel_datalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
