
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stratified/stratified_chase.cc" "src/stratified/CMakeFiles/gerel_stratified.dir/stratified_chase.cc.o" "gcc" "src/stratified/CMakeFiles/gerel_stratified.dir/stratified_chase.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gerel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/chase/CMakeFiles/gerel_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/gerel_datalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
