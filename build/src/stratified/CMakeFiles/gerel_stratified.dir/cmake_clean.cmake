file(REMOVE_RECURSE
  "CMakeFiles/gerel_stratified.dir/stratified_chase.cc.o"
  "CMakeFiles/gerel_stratified.dir/stratified_chase.cc.o.d"
  "libgerel_stratified.a"
  "libgerel_stratified.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gerel_stratified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
