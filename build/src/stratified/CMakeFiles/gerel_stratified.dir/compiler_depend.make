# Empty compiler generated dependencies file for gerel_stratified.
# This may be replaced when dependencies are built.
