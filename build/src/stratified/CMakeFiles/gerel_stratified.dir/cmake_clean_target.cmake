file(REMOVE_RECURSE
  "libgerel_stratified.a"
)
