# Empty dependencies file for bench_figure3_saturation.
# This may be replaced when dependencies are built.
