file(REMOVE_RECURSE
  "CMakeFiles/bench_figure3_saturation.dir/bench_figure3_saturation.cc.o"
  "CMakeFiles/bench_figure3_saturation.dir/bench_figure3_saturation.cc.o.d"
  "bench_figure3_saturation"
  "bench_figure3_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure3_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
