file(REMOVE_RECURSE
  "CMakeFiles/bench_prop4_nfg.dir/bench_prop4_nfg.cc.o"
  "CMakeFiles/bench_prop4_nfg.dir/bench_prop4_nfg.cc.o.d"
  "bench_prop4_nfg"
  "bench_prop4_nfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop4_nfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
