# Empty dependencies file for bench_prop4_nfg.
# This may be replaced when dependencies are built.
