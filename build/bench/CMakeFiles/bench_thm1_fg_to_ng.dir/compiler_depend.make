# Empty compiler generated dependencies file for bench_thm1_fg_to_ng.
# This may be replaced when dependencies are built.
