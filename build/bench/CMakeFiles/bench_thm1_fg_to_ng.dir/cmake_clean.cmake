file(REMOVE_RECURSE
  "CMakeFiles/bench_thm1_fg_to_ng.dir/bench_thm1_fg_to_ng.cc.o"
  "CMakeFiles/bench_thm1_fg_to_ng.dir/bench_thm1_fg_to_ng.cc.o.d"
  "bench_thm1_fg_to_ng"
  "bench_thm1_fg_to_ng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm1_fg_to_ng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
