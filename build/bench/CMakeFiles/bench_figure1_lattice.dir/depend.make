# Empty dependencies file for bench_figure1_lattice.
# This may be replaced when dependencies are built.
