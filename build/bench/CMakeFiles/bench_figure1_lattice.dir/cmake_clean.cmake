file(REMOVE_RECURSE
  "CMakeFiles/bench_figure1_lattice.dir/bench_figure1_lattice.cc.o"
  "CMakeFiles/bench_figure1_lattice.dir/bench_figure1_lattice.cc.o.d"
  "bench_figure1_lattice"
  "bench_figure1_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure1_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
