# Empty dependencies file for bench_thm4_capture.
# This may be replaced when dependencies are built.
