file(REMOVE_RECURSE
  "CMakeFiles/bench_thm4_capture.dir/bench_thm4_capture.cc.o"
  "CMakeFiles/bench_thm4_capture.dir/bench_thm4_capture.cc.o.d"
  "bench_thm4_capture"
  "bench_thm4_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm4_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
