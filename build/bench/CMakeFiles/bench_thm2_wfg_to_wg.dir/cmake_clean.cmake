file(REMOVE_RECURSE
  "CMakeFiles/bench_thm2_wfg_to_wg.dir/bench_thm2_wfg_to_wg.cc.o"
  "CMakeFiles/bench_thm2_wfg_to_wg.dir/bench_thm2_wfg_to_wg.cc.o.d"
  "bench_thm2_wfg_to_wg"
  "bench_thm2_wfg_to_wg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm2_wfg_to_wg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
