# Empty compiler generated dependencies file for bench_thm2_wfg_to_wg.
# This may be replaced when dependencies are built.
