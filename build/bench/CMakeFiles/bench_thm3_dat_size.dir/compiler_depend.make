# Empty compiler generated dependencies file for bench_thm3_dat_size.
# This may be replaced when dependencies are built.
