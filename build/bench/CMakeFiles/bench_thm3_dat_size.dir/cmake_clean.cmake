file(REMOVE_RECURSE
  "CMakeFiles/bench_thm3_dat_size.dir/bench_thm3_dat_size.cc.o"
  "CMakeFiles/bench_thm3_dat_size.dir/bench_thm3_dat_size.cc.o.d"
  "bench_thm3_dat_size"
  "bench_thm3_dat_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm3_dat_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
