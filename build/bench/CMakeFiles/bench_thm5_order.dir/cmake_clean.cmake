file(REMOVE_RECURSE
  "CMakeFiles/bench_thm5_order.dir/bench_thm5_order.cc.o"
  "CMakeFiles/bench_thm5_order.dir/bench_thm5_order.cc.o.d"
  "bench_thm5_order"
  "bench_thm5_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm5_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
