# Empty dependencies file for bench_thm5_order.
# This may be replaced when dependencies are built.
