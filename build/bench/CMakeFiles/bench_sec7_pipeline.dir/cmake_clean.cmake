file(REMOVE_RECURSE
  "CMakeFiles/bench_sec7_pipeline.dir/bench_sec7_pipeline.cc.o"
  "CMakeFiles/bench_sec7_pipeline.dir/bench_sec7_pipeline.cc.o.d"
  "bench_sec7_pipeline"
  "bench_sec7_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec7_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
