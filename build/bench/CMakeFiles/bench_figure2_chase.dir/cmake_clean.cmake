file(REMOVE_RECURSE
  "CMakeFiles/bench_figure2_chase.dir/bench_figure2_chase.cc.o"
  "CMakeFiles/bench_figure2_chase.dir/bench_figure2_chase.cc.o.d"
  "bench_figure2_chase"
  "bench_figure2_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure2_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
