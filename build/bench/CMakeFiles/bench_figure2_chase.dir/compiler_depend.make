# Empty compiler generated dependencies file for bench_figure2_chase.
# This may be replaced when dependencies are built.
