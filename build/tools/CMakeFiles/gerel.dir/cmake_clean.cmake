file(REMOVE_RECURSE
  "CMakeFiles/gerel.dir/gerel_cli.cc.o"
  "CMakeFiles/gerel.dir/gerel_cli.cc.o.d"
  "gerel"
  "gerel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gerel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
