# Empty compiler generated dependencies file for gerel.
# This may be replaced when dependencies are built.
