# Empty dependencies file for gerel.
# This may be replaced when dependencies are built.
