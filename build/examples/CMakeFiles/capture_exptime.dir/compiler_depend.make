# Empty compiler generated dependencies file for capture_exptime.
# This may be replaced when dependencies are built.
