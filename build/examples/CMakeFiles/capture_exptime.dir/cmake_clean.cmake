file(REMOVE_RECURSE
  "CMakeFiles/capture_exptime.dir/capture_exptime.cpp.o"
  "CMakeFiles/capture_exptime.dir/capture_exptime.cpp.o.d"
  "capture_exptime"
  "capture_exptime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capture_exptime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
