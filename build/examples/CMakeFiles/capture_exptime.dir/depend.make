# Empty dependencies file for capture_exptime.
# This may be replaced when dependencies are built.
