# Empty compiler generated dependencies file for triq_rdf.
# This may be replaced when dependencies are built.
