file(REMOVE_RECURSE
  "CMakeFiles/triq_rdf.dir/triq_rdf.cpp.o"
  "CMakeFiles/triq_rdf.dir/triq_rdf.cpp.o.d"
  "triq_rdf"
  "triq_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triq_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
