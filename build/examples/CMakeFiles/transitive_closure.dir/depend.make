# Empty dependencies file for transitive_closure.
# This may be replaced when dependencies are built.
