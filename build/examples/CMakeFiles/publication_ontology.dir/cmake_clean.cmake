file(REMOVE_RECURSE
  "CMakeFiles/publication_ontology.dir/publication_ontology.cpp.o"
  "CMakeFiles/publication_ontology.dir/publication_ontology.cpp.o.d"
  "publication_ontology"
  "publication_ontology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/publication_ontology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
