# Empty dependencies file for publication_ontology.
# This may be replaced when dependencies are built.
