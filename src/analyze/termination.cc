#include "analyze/termination.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "chase/chase.h"
#include "core/database.h"

namespace gerel {

namespace {

// Σ*: positive part of the theory with every constant identified with
// the critical constant. Identifying constants is sound — the collapsing
// homomorphism maps any instance into the critical one, so termination
// on the collapsed theory implies termination on the original; dropping
// negative literals only adds triggers.
Theory CriticalTheory(const Theory& theory, Term critical) {
  auto collapse = [critical](Atom atom) {
    for (Term& t : atom.args) {
      if (t.IsConstant()) t = critical;
    }
    for (Term& t : atom.annotation) {
      if (t.IsConstant()) t = critical;
    }
    return atom;
  };
  Theory out;
  for (const Rule& rule : theory.rules()) {
    Rule nr;
    for (const Literal& l : rule.body) {
      if (l.negated) continue;
      nr.body.emplace_back(collapse(l.atom));
    }
    for (const Atom& h : rule.head) nr.head.push_back(collapse(h));
    out.AddRule(std::move(nr));
  }
  return out;
}

// D*: one all-critical atom per relation, shaped like the relation's
// first occurrence (args + annotation split).
Database CriticalInstance(const Theory& theory, Term critical) {
  Database db;
  std::unordered_set<RelationId> seen;
  auto note = [&](const Atom& a) {
    if (!seen.insert(a.pred).second) return;
    Atom fact;
    fact.pred = a.pred;
    fact.args.assign(a.args.size(), critical);
    fact.annotation.assign(a.annotation.size(), critical);
    db.Insert(fact);
  };
  for (const Rule& r : theory.rules()) {
    for (const Literal& l : r.body) note(l.atom);
    for (const Atom& h : r.head) note(h);
  }
  return db;
}

// Reconstructs the null-ancestry forest from the chase derivation and
// hunts for a cyclic Skolem term: a null of function f whose ancestor
// chain contains another f-null. Fills `cycle` with the closed function
// path realized by that chain and returns true if one exists.
bool FindCyclicTerm(const Theory& critical_theory,
                    const ExistentialDependencyGraph& graph,
                    const std::vector<ChaseStep>& derivation,
                    std::vector<size_t>* cycle) {
  // (rule, evar) → function index.
  std::unordered_map<uint64_t, size_t> function_index;
  for (size_t i = 0; i < graph.functions.size(); ++i) {
    function_index.emplace(
        (static_cast<uint64_t>(graph.functions[i].rule) << 32) |
            graph.functions[i].var.bits(),
        i);
  }
  struct NullInfo {
    size_t creator = 0;
    std::vector<Term> parents;          // Nulls in the frontier image.
    std::unordered_set<size_t> ancestry;  // Creator functions, transitively.
  };
  std::unordered_map<uint32_t, NullInfo> nulls;

  for (const ChaseStep& step : derivation) {
    const Rule& rule = critical_theory.rules()[step.rule_index];
    std::vector<Term> fvars = rule.FVars();
    std::vector<Term> parents;
    for (Term t : step.frontier_image) {
      if (t.IsNull()) parents.push_back(t);
    }
    // Which head atom produced this step's atom? Match pred/arity and
    // check consistency against the frontier image; existential
    // variables bind to the atom's terms.
    for (const Atom& h : rule.head) {
      if (h.pred != step.atom.pred || h.args.size() != step.atom.args.size() ||
          h.annotation.size() != step.atom.annotation.size()) {
        continue;
      }
      std::vector<Term> hterms = h.AllTerms();
      std::vector<Term> aterms = step.atom.AllTerms();
      std::unordered_map<uint32_t, Term> evar_image;
      bool match = true;
      for (size_t p = 0; p < hterms.size() && match; ++p) {
        Term ht = hterms[p];
        if (!ht.IsVariable()) {
          match = ht == aterms[p];
          continue;
        }
        auto fv = std::find(fvars.begin(), fvars.end(), ht);
        if (fv != fvars.end()) {
          match = step.frontier_image[fv - fvars.begin()] == aterms[p];
          continue;
        }
        auto [it, inserted] = evar_image.emplace(ht.bits(), aterms[p]);
        if (!inserted) match = it->second == aterms[p];
      }
      if (!match) continue;
      for (const auto& [evar_bits, image] : evar_image) {
        if (!image.IsNull() || nulls.count(image.bits()) > 0) continue;
        auto fit = function_index.find(
            (static_cast<uint64_t>(step.rule_index) << 32) | evar_bits);
        if (fit == function_index.end()) continue;
        NullInfo info;
        info.creator = fit->second;
        info.parents = parents;
        info.ancestry.insert(fit->second);
        for (Term parent : parents) {
          const NullInfo& pi = nulls.at(parent.bits());
          info.ancestry.insert(pi.ancestry.begin(), pi.ancestry.end());
        }
        bool cyclic = false;
        for (Term parent : parents) {
          if (nulls.at(parent.bits()).ancestry.count(info.creator) > 0) {
            cyclic = true;
          }
        }
        if (!cyclic) {
          nulls.emplace(image.bits(), std::move(info));
          continue;
        }
        // Walk the parent chain up to an ancestor created by the same
        // function; the creators along the chain, oldest first, form
        // the closed witness path f → ... → f.
        std::vector<Term> chain = {image};
        nulls.emplace(image.bits(), info);
        Term cur = image;
        while (nulls.at(cur.bits()).creator != info.creator ||
               chain.size() == 1) {
          for (Term parent : nulls.at(cur.bits()).parents) {
            const NullInfo& pi = nulls.at(parent.bits());
            if (pi.creator == info.creator ||
                pi.ancestry.count(info.creator) > 0) {
              cur = parent;
              break;
            }
          }
          chain.push_back(cur);
        }
        cycle->clear();
        for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
          cycle->push_back(nulls.at(it->bits()).creator);
        }
        return true;
      }
      break;  // First matching head atom wins.
    }
  }
  return false;
}

}  // namespace

const char* CertificateKindName(CertificateKind kind) {
  switch (kind) {
    case CertificateKind::kExistentialFree: return "existential-free";
    case CertificateKind::kWeaklyAcyclic: return "weakly-acyclic";
    case CertificateKind::kJointlyAcyclic: return "jointly-acyclic";
    case CertificateKind::kMfa: return "mfa";
    case CertificateKind::kRefuted: return "refuted";
    case CertificateKind::kInconclusive: return "inconclusive";
  }
  return "?";
}

std::string SkolemPathString(const ExistentialDependencyGraph& graph,
                             const std::vector<size_t>& path,
                             const SymbolTable& symbols) {
  std::string out;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += " -> ";
    out += SkolemFunctionName(graph.functions[path[i]], symbols);
  }
  return out;
}

TerminationCertificate AnalyzeTermination(const Theory& theory,
                                          const SymbolTable& symbols,
                                          const TerminationOptions& options) {
  TerminationCertificate cert;
  cert.graph = BuildExistentialDependencyGraph(theory);
  if (cert.graph.functions.empty()) {
    cert.kind = CertificateKind::kExistentialFree;
    return cert;
  }
  if (ExistentialTopoOrder(cert.graph, &cert.order, &cert.cycle)) {
    cert.kind = IsWeaklyAcyclic(theory) ? CertificateKind::kWeaklyAcyclic
                                        : CertificateKind::kJointlyAcyclic;
    return cert;
  }
  // The dependency graph is cyclic; fall through to the critical-
  // instance chase. Marnette: the semi-oblivious chase terminates on
  // every database iff it terminates on D*.
  SymbolTable scratch = symbols;
  Term critical = scratch.Constant("*");
  Theory critical_theory = CriticalTheory(theory, critical);
  Database critical_instance = CriticalInstance(critical_theory, critical);
  ChaseOptions copts;
  copts.max_steps = options.max_steps;
  copts.max_atoms = options.max_atoms;
  copts.semi_oblivious = true;
  copts.num_threads = 1;  // Certificates must be byte-deterministic.
  copts.budget = options.budget;
  ChaseResult run =
      Chase(critical_theory, critical_instance, &scratch, copts);
  cert.critical_steps = run.steps;
  cert.critical_atoms = run.database.size();
  if (run.saturated) {
    cert.kind = CertificateKind::kMfa;
    cert.cycle.clear();
    return cert;
  }
  std::vector<size_t> mfa_cycle;
  if (FindCyclicTerm(critical_theory, cert.graph, run.derivation,
                     &mfa_cycle)) {
    cert.kind = CertificateKind::kRefuted;
    cert.cycle = std::move(mfa_cycle);
    return cert;
  }
  // Caps or budget ran out before either verdict; keep the dependency-
  // graph cycle as the provisional witness.
  cert.kind = CertificateKind::kInconclusive;
  cert.degradation = run.degradation;
  return cert;
}

}  // namespace gerel
