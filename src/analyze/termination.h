// Chase-termination certificates (the acyclicity ladder).
//
// AnalyzeTermination climbs weak acyclicity → joint acyclicity → an
// MFA-style check (model-faithful acyclicity, Cuenca Grau et al.): run
// the semi-oblivious chase on the *critical instance* — one atom per
// relation over a single fresh constant, with every rule constant
// identified with it — and watch for cyclic Skolem terms. By Marnette's
// theorem the semi-oblivious chase terminates on every database iff it
// terminates on the critical instance, so saturation is an exact
// certificate; a cyclic term (an f-null built on top of an earlier
// f-null) is the standard MFA refutation witness.
//
// Every outcome carries a machine-checkable witness: a topological
// Skolem-function order (weakly/jointly acyclic), the critical-chase
// trace size (MFA), or a cyclic function path through the existential
// dependency graph (refuted). The analyzer (GR070–GR072), `gerel check
// --dot`, and the PreparedKb materialization planner all consume the
// same TerminationCertificate.
//
// Determinism: the critical chase runs single-threaded with fixed step
// and atom caps on a private copy of the symbol table, so the
// certificate — including the witness path — is a pure function of the
// theory. `gerel check --json` output is byte-identical across runs and
// thread counts.
#ifndef GEREL_ANALYZE_TERMINATION_H_
#define GEREL_ANALYZE_TERMINATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/acyclicity.h"
#include "core/budget.h"
#include "core/symbol_table.h"
#include "core/theory.h"

namespace gerel {

enum class CertificateKind {
  kExistentialFree,  // No existential rules: any chase trivially stops.
  kWeaklyAcyclic,    // Position graph has no special cycle.
  kJointlyAcyclic,   // Existential dependency graph is acyclic.
  kMfa,              // Critical-instance Skolem chase saturated.
  kRefuted,          // Cyclic Skolem term found: not MFA, may diverge.
  kInconclusive,     // Budget/caps exhausted before a verdict.
};

// Stable lower-case tag ("existential-free", "weakly-acyclic", ...).
const char* CertificateKindName(CertificateKind kind);

struct TerminationOptions {
  // Caps for the critical-instance chase. Fixed defaults keep the
  // certificate deterministic and the analyzer cheap; raise them to
  // chase larger theories to a verdict.
  size_t max_steps = 2000;
  size_t max_atoms = 4000;
  // Optional wall-clock/cancellation budget; not owned. A budget trip
  // downgrades the verdict to kInconclusive.
  ExecutionBudget* budget = nullptr;
};

struct TerminationCertificate {
  CertificateKind kind = CertificateKind::kExistentialFree;
  // The existential dependency graph (always built; empty for
  // existential-free theories). Rendered by ExistentialGraphDot.
  ExistentialDependencyGraph graph;
  // kWeaklyAcyclic/kJointlyAcyclic: indices into graph.functions in
  // dependency order (a function precedes everything built on its
  // nulls) — the acyclicity ordering witness.
  std::vector<size_t> order;
  // kRefuted: a closed cyclic walk f0 → ... → f0 of function indices
  // (first repeated at the end) realized by an actual null-ancestry
  // chain of the critical chase. kInconclusive: the (provisional) cycle
  // of the existential dependency graph that pushed the ladder past
  // joint acyclicity. Empty otherwise.
  std::vector<size_t> cycle;
  // kMfa: size of the saturated critical-chase trace.
  size_t critical_steps = 0;
  size_t critical_atoms = 0;
  // Why the critical chase stopped early (kInconclusive only).
  DegradationReason degradation;

  // Whether the semi-oblivious (Skolem) chase provably terminates on
  // every database.
  bool terminating() const {
    return kind != CertificateKind::kRefuted &&
           kind != CertificateKind::kInconclusive;
  }
};

// Runs the acyclicity ladder over `theory`. `symbols` is read-only (the
// critical chase works on a private copy).
TerminationCertificate AnalyzeTermination(
    const Theory& theory, const SymbolTable& symbols,
    const TerminationOptions& options = TerminationOptions());

// "r0.Y -> r1.Z -> r0.Y" for a walk of function indices.
std::string SkolemPathString(const ExistentialDependencyGraph& graph,
                             const std::vector<size_t>& path,
                             const SymbolTable& symbols);

}  // namespace gerel

#endif  // GEREL_ANALYZE_TERMINATION_H_
