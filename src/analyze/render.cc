#include "analyze/render.h"

#include <cctype>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace gerel {

namespace {

// "<file>" or "<file>:<line>:<col>" depending on what is known.
std::string Location(const RenderOptions& options, Span span) {
  if (options.source == nullptr || span.empty()) return options.file;
  LineCol lc = options.source->Resolve(span);
  return options.file + ":" + std::to_string(lc.line) + ":" +
         std::to_string(lc.col);
}

std::vector<std::pair<const char*, bool>> ClassList(
    const Classification& c) {
  return {{"datalog", c.datalog},
          {"guarded", c.guarded},
          {"frontier-guarded", c.frontier_guarded},
          {"weakly-guarded", c.weakly_guarded},
          {"weakly-frontier-guarded", c.weakly_frontier_guarded},
          {"nearly-guarded", c.nearly_guarded},
          {"nearly-frontier-guarded", c.nearly_frontier_guarded}};
}

std::vector<std::pair<const char*, bool>> ExtendedClassList(
    const ExtendedClassification& c) {
  return {{"linear", c.linear},
          {"frontier-one", c.frontier_one},
          {"joinless", c.joinless},
          {"domain-restricted", c.domain_restricted},
          {"shy", c.shy}};
}

// '["r0.Y", "r1.Z"]'.
std::string JsonStringArray(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(items[i]) + "\"";
  }
  return out + "]";
}

}  // namespace

std::string RenderText(const AnalysisResult& result,
                       const RenderOptions& options) {
  std::string out;
  for (const Diagnostic& d : result.diagnostics) {
    out += Location(options, d.span) + ": " + SeverityName(d.severity) +
           "[" + d.code + "]: " + d.message + "\n";
    if (options.source != nullptr && !d.span.empty()) {
      out += options.source->Snippet(d.span);
    }
    for (const std::string& note : d.notes) {
      out += "  note: " + note + "\n";
    }
  }

  std::string classes;
  for (const auto& [name, member] : ClassList(result.classification)) {
    if (!member) continue;
    if (!classes.empty()) classes += ", ";
    classes += name;
  }
  if (classes.empty()) classes = "none of the seven classes (Fig. 1)";
  out += options.file + ": classification: " + classes + "\n";

  std::string extended;
  for (const auto& [name, member] : ExtendedClassList(result.extended)) {
    if (!member) continue;
    if (!extended.empty()) extended += ", ";
    extended += name;
  }
  if (extended.empty()) extended = "none of the extended classes";
  out += options.file + ": extended: " + extended + "\n";
  out += options.file + ": termination: " +
         std::string(CertificateKindName(result.termination.kind)) + "\n";

  if (!result.witnesses.empty()) {
    out += options.file + ": explain:\n";
    for (const ClassWitness& w : result.witnesses) {
      out += std::string("  ") + w.class_name + ": ";
      out += w.member ? "yes" : "no: " + w.reason;
      out += "\n";
    }
  }

  out += options.file + ": " + std::to_string(result.errors) +
         " error(s), " + std::to_string(result.warnings) + " warning(s), " +
         std::to_string(result.notes) + " note(s)\n";
  return out;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderJson(const AnalysisResult& result,
                       const RenderOptions& options) {
  std::string out = "{\n";
  out += "  \"file\": \"" + JsonEscape(options.file) + "\",\n";

  out += "  \"classification\": {";
  bool first = true;
  for (const auto& [name, member] : ClassList(result.classification)) {
    if (!first) out += ", ";
    first = false;
    // JSON keys use underscores, matching ServiceStats::ToJson.
    std::string key = name;
    for (char& c : key) {
      if (c == '-') c = '_';
    }
    out += "\"" + key + "\": " + (member ? "true" : "false");
  }
  out += "},\n";

  out += "  \"extended_classification\": {";
  first = true;
  for (const auto& [name, member] : ExtendedClassList(result.extended)) {
    if (!first) out += ", ";
    first = false;
    std::string key = name;
    for (char& c : key) {
      if (c == '-') c = '_';
    }
    out += "\"" + key + "\": " + (member ? "true" : "false");
  }
  out += "},\n";

  const TerminationCertificate& cert = result.termination;
  out += "  \"termination\": {\"certificate\": \"" +
         std::string(CertificateKindName(cert.kind)) +
         "\", \"terminating\": " + (cert.terminating() ? "true" : "false");
  if (!result.termination_order.empty()) {
    out += ", \"order\": " + JsonStringArray(result.termination_order);
  }
  if (!result.termination_cycle.empty()) {
    out += ", \"cycle\": " + JsonStringArray(result.termination_cycle);
  }
  if (cert.kind == CertificateKind::kMfa ||
      cert.kind == CertificateKind::kRefuted ||
      cert.kind == CertificateKind::kInconclusive) {
    out += ", \"critical_steps\": " + std::to_string(cert.critical_steps) +
           ", \"critical_atoms\": " + std::to_string(cert.critical_atoms);
  }
  out += "},\n";

  out += "  \"diagnostics\": [";
  for (size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    LineCol lc;
    bool located = options.source != nullptr && !d.span.empty();
    if (located) lc = options.source->Resolve(d.span);
    out += (i == 0 ? "\n" : ",\n");
    out += "    {\"code\": \"" + d.code + "\", \"severity\": \"" +
           SeverityName(d.severity) + "\", \"line\": " +
           std::to_string(located ? lc.line : 0) + ", \"col\": " +
           std::to_string(located ? lc.col : 0) + ", \"message\": \"" +
           JsonEscape(d.message) + "\", \"notes\": [";
    for (size_t j = 0; j < d.notes.size(); ++j) {
      if (j > 0) out += ", ";
      out += '"';
      out += JsonEscape(d.notes[j]);
      out += '"';
    }
    out += "]}";
  }
  out += result.diagnostics.empty() ? "],\n" : "\n  ],\n";

  if (!result.witnesses.empty()) {
    out += "  \"witnesses\": [\n";
    for (size_t i = 0; i < result.witnesses.size(); ++i) {
      const ClassWitness& w = result.witnesses[i];
      out += "    {\"class\": \"" + std::string(w.class_name) +
             "\", \"member\": " + (w.member ? "true" : "false");
      if (!w.member) {
        out += ", \"rule\": " + std::to_string(w.rule_index) +
               ", \"reason\": \"" + JsonEscape(w.reason) + "\"";
      }
      out += i + 1 < result.witnesses.size() ? "},\n" : "}\n";
    }
    out += "  ],\n";
  }

  out += "  \"errors\": " + std::to_string(result.errors) +
         ", \"warnings\": " + std::to_string(result.warnings) +
         ", \"notes\": " + std::to_string(result.notes) + "\n";
  out += "}\n";
  return out;
}

std::string RenderParseError(const Status& status, std::string_view file) {
  const std::string& message = status.message();
  // Parser statuses start with "line L:C: "; re-anchor on the file name.
  if (message.rfind("line ", 0) == 0) {
    size_t i = 5;
    size_t digits_begin = i;
    while (i < message.size() &&
           std::isdigit(static_cast<unsigned char>(message[i]))) {
      ++i;
    }
    if (i > digits_begin && i < message.size() && message[i] == ':') {
      size_t col_begin = ++i;
      while (i < message.size() &&
             std::isdigit(static_cast<unsigned char>(message[i]))) {
        ++i;
      }
      if (i > col_begin && i + 1 < message.size() && message[i] == ':' &&
          message[i + 1] == ' ') {
        std::string out(file);
        out += ":";
        out += message.substr(digits_begin, i - digits_begin);
        out += ": error[GR000]: ";
        out += message.substr(i + 2);
        out += "\n";
        return out;
      }
    }
  }
  std::string out(file);
  out += ": error[GR000]: " + message + "\n";
  return out;
}

}  // namespace gerel
