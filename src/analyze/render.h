// Deterministic text and JSON renderers for analysis results.
//
// Both renderers are pure functions of (result, file name, source map):
// same inputs, byte-identical output. The text form mimics compiler
// diagnostics ("file:line:col: severity[CODE]: message" plus a caret
// snippet); the JSON form is a single pretty-printed object suitable
// for CI tooling.
#ifndef GEREL_ANALYZE_RENDER_H_
#define GEREL_ANALYZE_RENDER_H_

#include <string>
#include <string_view>

#include "analyze/analyze.h"
#include "core/status.h"

namespace gerel {

// Options shared by both renderers.
struct RenderOptions {
  // Reported as the file of every diagnostic ("<input>" by default).
  std::string file = "<input>";
  // Source for caret snippets; may be null (locations are then omitted).
  const SourceMap* source = nullptr;
};

std::string RenderText(const AnalysisResult& result,
                       const RenderOptions& options);
std::string RenderJson(const AnalysisResult& result,
                       const RenderOptions& options);

// Renders a parser failure as a GR000 diagnostic. Parser statuses carry
// their own "line L:C:" prefix and caret snippet; this re-anchors them
// on the file name so `gerel check` and `gerel classify` print
//   <file>:L:C: error[GR000]: <message>
//     <offending line>
//     ^~~~
// Falls back to "<file>: error[GR000]: <message>" for unlocated errors
// (e.g. "cannot open file").
std::string RenderParseError(const Status& status, std::string_view file);

// JSON string escaping (quotes, backslashes, control characters).
std::string JsonEscape(std::string_view text);

}  // namespace gerel

#endif  // GEREL_ANALYZE_RENDER_H_
