#include "analyze/analyze.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/acyclicity.h"
#include "core/printer.h"

namespace gerel {

namespace {

// --- Shared small helpers ------------------------------------------------

// Distinct argument variables over the positive body (mirrors the
// classifier's guard universe; annotation variables never need guards).
std::vector<Term> PositiveBodyArgVars(const Rule& rule) {
  std::vector<Term> out;
  for (const Literal& l : rule.body) {
    if (l.negated) continue;
    for (Term v : l.atom.ArgVars()) {
      if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
    }
  }
  return out;
}

// Head argument variables that occur in the body (the frontier, argument
// positions only).
std::vector<Term> FrontierArgVars(const Rule& rule) {
  std::vector<Term> body_vars = rule.UVars();
  std::vector<Term> out;
  for (const Atom& a : rule.head) {
    for (Term v : a.ArgVars()) {
      if (std::find(body_vars.begin(), body_vars.end(), v) !=
              body_vars.end() &&
          std::find(out.begin(), out.end(), v) == out.end()) {
        out.push_back(v);
      }
    }
  }
  return out;
}

std::vector<Term> Intersect(const std::vector<Term>& a,
                            const std::vector<Term>& b) {
  std::vector<Term> out;
  for (Term t : a) {
    if (std::find(b.begin(), b.end(), t) != b.end()) out.push_back(t);
  }
  return out;
}

std::string VarSetString(const std::vector<Term>& vars,
                         const SymbolTable& symbols) {
  std::string out = "{";
  for (size_t i = 0; i < vars.size(); ++i) {
    if (i > 0) out += ", ";
    out += symbols.TermName(vars[i]);
  }
  return out + "}";
}

std::string PositionName(RelationId pred, uint32_t pos,
                         const SymbolTable& symbols) {
  return symbols.RelationName(pred) + "[" + std::to_string(pos) + "]";
}

// Flattened positions of the positive body where `x` occurs, rendered as
// "pred[i]", deduplicated in occurrence order.
std::vector<std::string> PositiveOccurrences(const Rule& rule, Term x,
                                             const SymbolTable& symbols) {
  std::vector<std::string> out;
  auto note = [&](RelationId pred, uint32_t pos) {
    std::string name = PositionName(pred, pos, symbols);
    if (std::find(out.begin(), out.end(), name) == out.end()) {
      out.push_back(std::move(name));
    }
  };
  for (const Literal& l : rule.body) {
    if (l.negated) continue;
    uint32_t pos = 0;
    for (Term t : l.atom.args) {
      if (t == x) note(l.atom.pred, pos);
      ++pos;
    }
    for (Term t : l.atom.annotation) {
      if (t == x) note(l.atom.pred, pos);
      ++pos;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ", ";
    out += parts[i];
  }
  return out;
}

// "X may be bound to a labeled null during the chase: every positive
// occurrence (e[1]) is an affected position (Def 2)".
std::string UnsafeWhy(const Rule& rule, Term x, const SymbolTable& symbols) {
  return symbols.TermName(x) +
         " may be bound to a labeled null during the chase: every positive "
         "occurrence (" +
         JoinStrings(PositiveOccurrences(rule, x, symbols)) +
         ") is an affected position (Def 2)";
}

struct SpanLookup {
  const SourceMap* source = nullptr;

  Span Rule(size_t rule_index) const {
    if (source == nullptr || rule_index >= source->rules.size()) return {};
    return source->rules[rule_index].span;
  }
  Span BodyAtom(size_t rule_index, size_t literal_index) const {
    if (source == nullptr || rule_index >= source->rules.size()) return {};
    const RuleSpans& rs = source->rules[rule_index];
    if (literal_index >= rs.body.size()) return {};
    return rs.body[literal_index].span;
  }
  Span Fact(size_t fact_index) const {
    if (source == nullptr || fact_index >= source->facts.size()) return {};
    return source->facts[fact_index].span;
  }
};

// --- GR001 / GR010: guard diagnostics ------------------------------------

void CheckGuards(const Theory& theory, const PositionSet& affected,
                 const SymbolTable& symbols, const SpanLookup& spans,
                 std::vector<Diagnostic>* out) {
  for (size_t i = 0; i < theory.rules().size(); ++i) {
    const Rule& rule = theory.rules()[i];
    std::vector<Term> unsafe = UnsafeVars(rule, affected);
    if (unsafe.empty()) continue;
    if (!IsWeaklyFrontierGuardedRule(rule, affected)) {
      std::vector<Term> frontier =
          Intersect(FrontierArgVars(rule), unsafe);
      Diagnostic d;
      d.code = "GR010";
      d.severity = Severity::kWarning;
      d.span = spans.Rule(i);
      d.message = "rule " + std::to_string(i) +
                  " is not weakly frontier-guarded: no positive body atom "
                  "contains its unsafe frontier variables " +
                  VarSetString(frontier, symbols);
      for (Term x : frontier) d.notes.push_back(UnsafeWhy(rule, x, symbols));
      d.notes.push_back(
          "the serving pipeline (Thm 2 + §7) requires a weakly "
          "frontier-guarded theory");
      out->push_back(std::move(d));
    } else if (!IsWeaklyGuardedRule(rule, affected)) {
      std::vector<Term> uncovered =
          Intersect(PositiveBodyArgVars(rule), unsafe);
      Diagnostic d;
      d.code = "GR001";
      d.severity = Severity::kWarning;
      d.span = spans.Rule(i);
      d.message = "rule " + std::to_string(i) +
                  " is not weakly guarded: no positive body atom contains "
                  "its unsafe variables " +
                  VarSetString(uncovered, symbols);
      if (!uncovered.empty()) {
        d.notes.push_back(UnsafeWhy(rule, uncovered[0], symbols));
      }
      d.notes.push_back(
          "the rule is still weakly frontier-guarded, so query answering "
          "remains supported (Thm 2)");
      out->push_back(std::move(d));
    }
  }
}

// --- GR020: predicate reachability ---------------------------------------

void CheckReachability(const Theory& theory, const Database& db,
                       const SymbolTable& symbols, const SpanLookup& spans,
                       std::vector<Diagnostic>* out) {
  bool has_fact_rule = false;
  for (const Rule& r : theory.rules()) {
    bool positive_body = false;
    for (const Literal& l : r.body) {
      if (!l.negated) positive_body = true;
    }
    if (!positive_body) has_fact_rule = true;
  }
  // A bare theory (no facts anywhere) has no reachability structure to
  // check — staying silent beats declaring every predicate dead.
  if (db.empty() && !has_fact_rule) return;

  std::unordered_set<RelationId> populated;
  for (const Atom& a : db.atoms()) populated.insert(a.pred);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& r : theory.rules()) {
      bool fires = true;
      for (const Literal& l : r.body) {
        // Negative literals hold vacuously on empty relations; they
        // never block a rule from firing.
        if (!l.negated && populated.count(l.atom.pred) == 0) fires = false;
      }
      if (!fires) continue;
      for (const Atom& h : r.head) {
        if (populated.insert(h.pred).second) changed = true;
      }
    }
  }

  // Predicates occurring in rules, by first occurrence (body, then head).
  std::vector<RelationId> order;
  std::unordered_map<RelationId, Span> first_span;
  std::unordered_map<RelationId, bool> in_head;
  for (size_t i = 0; i < theory.rules().size(); ++i) {
    const Rule& r = theory.rules()[i];
    for (size_t j = 0; j < r.body.size(); ++j) {
      RelationId p = r.body[j].atom.pred;
      if (first_span.emplace(p, spans.BodyAtom(i, j)).second) {
        order.push_back(p);
      }
    }
    for (const Atom& h : r.head) {
      if (first_span.emplace(h.pred, spans.Rule(i)).second) {
        order.push_back(h.pred);
      }
      in_head[h.pred] = true;
    }
  }
  for (RelationId p : order) {
    if (populated.count(p) > 0) continue;
    Diagnostic d;
    d.code = "GR020";
    d.severity = Severity::kWarning;
    d.span = first_span[p];
    d.message = "predicate '" + symbols.RelationName(p) +
                "' is unreachable: no fact or applicable rule ever derives "
                "it";
    d.notes.push_back(
        in_head[p]
            ? "every rule deriving '" + symbols.RelationName(p) +
                  "' depends on an unreachable predicate"
            : "'" + symbols.RelationName(p) +
                  "' never occurs in a rule head and the database has no '" +
                  symbols.RelationName(p) + "' facts");
    out->push_back(std::move(d));
  }
}

// --- GR021: rule subsumption ---------------------------------------------

// Whether h extends to map `from` onto `onto` position-wise (variables of
// the subsumer bind consistently; constants and nulls must match).
bool UnifyAtom(const Atom& from, const Atom& onto,
               std::map<Term, Term>* binding) {
  if (from.pred != onto.pred || from.args.size() != onto.args.size() ||
      from.annotation.size() != onto.annotation.size()) {
    return false;
  }
  std::vector<std::pair<Term, Term>> added;
  auto match = [&](Term f, Term o) {
    if (!f.IsVariable()) return f == o;
    auto it = binding->find(f);
    if (it != binding->end()) return it->second == o;
    binding->emplace(f, o);
    added.emplace_back(f, o);
    return true;
  };
  for (size_t i = 0; i < from.args.size(); ++i) {
    if (!match(from.args[i], onto.args[i])) {
      for (const auto& kv : added) binding->erase(kv.first);
      return false;
    }
  }
  for (size_t i = 0; i < from.annotation.size(); ++i) {
    if (!match(from.annotation[i], onto.annotation[i])) {
      for (const auto& kv : added) binding->erase(kv.first);
      return false;
    }
  }
  return true;
}

// Whether `subsumer` subsumes `rule`: a substitution h with
// h(body(subsumer)) ⊆ body(rule) (negation flags preserved) and
// h(head(subsumer)) ⊇ head(rule). Then whenever `rule` fires, `subsumer`
// fires too and derives at least the same atoms — `rule` is redundant.
// Existential rules are skipped (fresh-null heads make set inclusion the
// wrong criterion).
// Every head atom of `rule` appears in h(head(subsumer)) under `binding`.
// Head variables of a Datalog rule are body variables, so they are all
// bound; UnifyAtom only needs to verify equality (the size check rejects
// matches that would extend the binding).
bool HeadCovered(const Rule& subsumer, const Rule& rule,
                 const std::map<Term, Term>& binding) {
  for (const Atom& need : rule.head) {
    bool found = false;
    for (const Atom& have : subsumer.head) {
      std::map<Term, Term> attempt = binding;
      if (UnifyAtom(have, need, &attempt) &&
          attempt.size() == binding.size()) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool Subsumes(const Rule& subsumer, const Rule& rule) {
  if (!subsumer.EVars().empty() || !rule.EVars().empty()) return false;

  // Backtracking assignment of subsumer body literals to rule body
  // literals; a complete body assignment only wins if the head check
  // also passes, so a failed head check resumes the search (bodies are
  // small; this is at worst |body|^|body|, bounded by the rule cap).
  std::vector<size_t> choice(subsumer.body.size(), 0);
  std::vector<std::map<Term, Term>> saved(subsumer.body.size() + 1);
  size_t k = 0;
  while (true) {
    if (k == subsumer.body.size()) {
      if (HeadCovered(subsumer, rule, saved[k])) return true;
      if (k == 0) return false;  // Empty body, head mismatch.
      --k;
      continue;
    }
    bool advanced = false;
    for (size_t j = choice[k]; j < rule.body.size(); ++j) {
      const Literal& from = subsumer.body[k];
      const Literal& onto = rule.body[j];
      if (from.negated != onto.negated) continue;
      std::map<Term, Term> attempt = saved[k];
      if (UnifyAtom(from.atom, onto.atom, &attempt)) {
        choice[k] = j + 1;
        saved[k + 1] = std::move(attempt);
        ++k;
        advanced = true;
        break;
      }
    }
    if (advanced) continue;
    choice[k] = 0;
    if (k == 0) return false;  // Exhausted all assignments.
    --k;
  }
}

void CheckSubsumption(const Theory& theory, const SymbolTable& symbols,
                      const SpanLookup& spans, size_t max_rules,
                      std::vector<Diagnostic>* out) {
  size_t n = theory.rules().size();
  if (n > max_rules) {
    Diagnostic d;
    d.code = "GR021";
    d.severity = Severity::kNote;
    d.message = "subsumption analysis skipped: theory has " +
                std::to_string(n) + " rules (limit " +
                std::to_string(max_rules) + ")";
    out->push_back(std::move(d));
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    const Rule& rule = theory.rules()[i];
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const Rule& subsumer = theory.rules()[j];
      if (!Subsumes(subsumer, rule)) continue;
      // Mutually subsuming pairs (alpha-variants, duplicates) are
      // reported once, on the later rule.
      if (i < j && Subsumes(rule, subsumer)) continue;
      Diagnostic d;
      d.code = "GR021";
      d.severity = Severity::kWarning;
      d.span = spans.Rule(i);
      d.message = "rule " + std::to_string(i) + " is subsumed by rule " +
                  std::to_string(j) + ": whenever it fires, rule " +
                  std::to_string(j) + " derives the same atoms";
      d.notes.push_back("subsuming rule: " + ToString(subsumer, symbols));
      out->push_back(std::move(d));
      break;  // One diagnostic per redundant rule.
    }
  }
}

// --- GR030: annotation-shape consistency ---------------------------------

void CheckShapes(const Theory& theory, const Database& db,
                 const SymbolTable& symbols, const SpanLookup& spans,
                 std::vector<Diagnostic>* out) {
  struct Shape {
    size_t args = 0;
    size_t annotation = 0;
    Span span;
  };
  std::unordered_map<RelationId, Shape> first;
  std::unordered_set<RelationId> reported;
  auto check = [&](const Atom& a, Span span) {
    auto [it, inserted] = first.emplace(
        a.pred, Shape{a.args.size(), a.annotation.size(), span});
    if (inserted) return;
    const Shape& s = it->second;
    if (s.args == a.args.size() && s.annotation == a.annotation.size()) {
      return;
    }
    if (!reported.insert(a.pred).second) return;
    Diagnostic d;
    d.code = "GR030";
    d.severity = Severity::kError;
    d.span = span;
    d.message = "relation '" + symbols.RelationName(a.pred) +
                "' splits its positions as " +
                std::to_string(a.annotation.size()) + " annotation(s) + " +
                std::to_string(a.args.size()) +
                " argument(s) here, but as " + std::to_string(s.annotation) +
                " annotation(s) + " + std::to_string(s.args) +
                " argument(s) at its first use";
    d.notes.push_back(
        "the annotation transforms (Defs 17-18) require every use of a "
        "relation to partition its positions identically");
    out->push_back(std::move(d));
  };
  for (size_t i = 0; i < theory.rules().size(); ++i) {
    const Rule& r = theory.rules()[i];
    for (size_t j = 0; j < r.body.size(); ++j) {
      check(r.body[j].atom, spans.BodyAtom(i, j));
    }
    for (const Atom& h : r.head) check(h, spans.Rule(i));
  }
  for (size_t i = 0; i < db.size(); ++i) check(db.atom(i), spans.Fact(i));
}

// --- GR040: stratifiability ----------------------------------------------

void CheckStratification(const Theory& theory, const SymbolTable& symbols,
                         const SpanLookup& spans,
                         std::vector<Diagnostic>* out) {
  if (!theory.HasNegation()) return;
  // Predicate dependency graph with negation flags.
  struct Edge {
    RelationId to;
    bool negated;
  };
  std::map<RelationId, std::vector<Edge>> graph;
  for (const Rule& r : theory.rules()) {
    for (const Literal& l : r.body) {
      for (const Atom& h : r.head) {
        graph[l.atom.pred].push_back({h.pred, l.negated});
      }
    }
  }
  // Reachability closure per node (graphs here are tiny): u and v are in
  // the same SCC iff u reaches v and v reaches u.
  auto reaches = [&graph](RelationId from, RelationId to) {
    std::unordered_set<RelationId> seen{from};
    std::deque<RelationId> queue{from};
    while (!queue.empty()) {
      RelationId u = queue.front();
      queue.pop_front();
      if (u == to) return true;
      auto it = graph.find(u);
      if (it == graph.end()) continue;
      for (const Edge& e : it->second) {
        if (seen.insert(e.to).second) queue.push_back(e.to);
      }
    }
    return false;
  };
  // Find the first negated edge inside a cycle, scanning rules in order
  // so the diagnostic is deterministic.
  for (size_t i = 0; i < theory.rules().size(); ++i) {
    const Rule& r = theory.rules()[i];
    for (size_t j = 0; j < r.body.size(); ++j) {
      const Literal& l = r.body[j];
      if (!l.negated) continue;
      for (const Atom& h : r.head) {
        if (!reaches(h.pred, l.atom.pred)) continue;
        // Cycle: h.pred ->* l.atom.pred -(not)-> h.pred. Recover a
        // shortest path for the note via BFS parents.
        std::unordered_map<RelationId, RelationId> parent;
        std::deque<RelationId> queue{h.pred};
        parent[h.pred] = h.pred;
        while (!queue.empty()) {
          RelationId u = queue.front();
          queue.pop_front();
          if (u == l.atom.pred) break;
          auto it = graph.find(u);
          if (it == graph.end()) continue;
          for (const Edge& e : it->second) {
            if (parent.emplace(e.to, u).second) queue.push_back(e.to);
          }
        }
        std::vector<RelationId> path{l.atom.pred};
        while (path.back() != h.pred) {
          path.push_back(parent[path.back()]);
        }
        std::string cycle;
        for (auto it = path.rbegin(); it != path.rend(); ++it) {
          cycle += symbols.RelationName(*it) + " -> ";
        }
        cycle += symbols.RelationName(h.pred) + " (the step " +
                 symbols.RelationName(l.atom.pred) + " -> " +
                 symbols.RelationName(h.pred) + " is through \"not " +
                 symbols.RelationName(l.atom.pred) + "\")";
        Diagnostic d;
        d.code = "GR040";
        d.severity = Severity::kError;
        d.span = spans.BodyAtom(i, j);
        d.message = "the program is not stratifiable: '" +
                    symbols.RelationName(h.pred) +
                    "' depends on its own negation";
        d.notes.push_back("cycle: " + cycle);
        d.notes.push_back(
            "stratified evaluation (Def 22) requires every negated "
            "dependency to point strictly downward");
        out->push_back(std::move(d));
        return;  // One witness cycle is enough.
      }
    }
  }
}

// --- GR050 / GR070-GR072: chase termination ------------------------------

// Index of the first existential rule, or rules().size() for Datalog.
size_t FirstExistentialRule(const Theory& theory) {
  for (size_t i = 0; i < theory.rules().size(); ++i) {
    if (!theory.rules()[i].EVars().empty()) return i;
  }
  return theory.rules().size();
}

void CheckTermination(const Theory& theory,
                      const TerminationCertificate& cert,
                      const SymbolTable& symbols, const SpanLookup& spans,
                      std::vector<Diagnostic>* out) {
  size_t first_existential = FirstExistentialRule(theory);
  if (first_existential == theory.rules().size()) return;  // Datalog.
  Span span = spans.Rule(first_existential);

  auto order_note = [&]() {
    std::vector<size_t> path = cert.order;
    std::string names;
    for (size_t i = 0; i < path.size(); ++i) {
      if (i > 0) names += ", ";
      names += SkolemFunctionName(cert.graph.functions[path[i]], symbols);
    }
    return "Skolem function order: " + names;
  };

  switch (cert.kind) {
    case CertificateKind::kExistentialFree:
      return;  // Unreachable past the Datalog check above.
    case CertificateKind::kWeaklyAcyclic: {
      Diagnostic d;
      d.code = "GR070";
      d.severity = Severity::kNote;
      d.span = span;
      d.message =
          "chase termination certified: theory is weakly acyclic";
      d.notes.push_back(order_note());
      d.notes.push_back(
          "the Skolem (semi-oblivious) chase terminates on every database "
          "in polynomially many steps");
      out->push_back(std::move(d));
      return;
    }
    case CertificateKind::kJointlyAcyclic: {
      Diagnostic d;
      d.code = "GR070";
      d.severity = Severity::kNote;
      d.span = span;
      d.message =
          "chase termination certified: theory is jointly acyclic (not "
          "weakly acyclic)";
      d.notes.push_back(order_note());
      d.notes.push_back(
          "the Skolem (semi-oblivious) chase terminates on every database; "
          "the fully oblivious chase may diverge");
      out->push_back(std::move(d));
      return;
    }
    case CertificateKind::kMfa: {
      Diagnostic d;
      d.code = "GR070";
      d.severity = Severity::kNote;
      d.span = span;
      d.message =
          "chase termination certified: model-faithful acyclicity (the "
          "critical-instance chase saturated)";
      d.notes.push_back("theory is neither weakly nor jointly acyclic");
      d.notes.push_back(
          "the critical-instance Skolem chase saturated after " +
          std::to_string(cert.critical_steps) + " step(s) with " +
          std::to_string(cert.critical_atoms) + " atom(s)");
      out->push_back(std::move(d));
      return;
    }
    case CertificateKind::kRefuted:
    case CertificateKind::kInconclusive:
      break;
  }

  // No certificate: keep the long-standing GR050 warning, then say why
  // the MFA rung failed too.
  Diagnostic d;
  d.code = "GR050";
  d.severity = Severity::kWarning;
  d.span = span;
  d.message =
      "theory is neither weakly nor jointly acyclic: the oblivious "
      "chase may diverge on some database";
  d.notes.push_back(
      "guardedness guarantees decidable query answering, not chase "
      "termination; use the bounded chase (--max-steps) or the Datalog "
      "translations");
  out->push_back(std::move(d));

  if (cert.kind == CertificateKind::kRefuted) {
    Diagnostic r;
    r.code = "GR071";
    r.severity = Severity::kWarning;
    r.span = span;
    r.message =
        "theory is not model-faithfully acyclic: the critical-instance "
        "chase built the cyclic Skolem path " +
        SkolemPathString(cert.graph, cert.cycle, symbols);
    r.notes.push_back(
        "a null of " +
        SkolemFunctionName(cert.graph.functions[cert.cycle.front()],
                           symbols) +
        " was derived on top of an earlier one; no acyclicity-based "
        "termination certificate exists");
    r.notes.push_back(
        "render the dependency graph with `gerel check --dot`");
    out->push_back(std::move(r));
  } else {
    Diagnostic r;
    r.code = "GR072";
    r.severity = Severity::kNote;
    r.span = span;
    r.message =
        "termination analysis inconclusive: the critical-instance chase "
        "stopped after " +
        std::to_string(cert.critical_steps) +
        " step(s) without saturating or finding a cyclic Skolem term";
    r.notes.push_back(
        "raise the termination caps to chase the critical instance to a "
        "verdict");
    out->push_back(std::move(r));
  }
}

// --- GR080-GR084: extended lattice membership ----------------------------

void CheckExtendedClasses(const Theory& theory,
                          const ExtendedClassification& ext,
                          const SpanLookup& spans,
                          std::vector<Diagnostic>* out) {
  size_t first_existential = FirstExistentialRule(theory);
  // Memberships only matter for termination/planning once existentials
  // are in play; staying silent on Datalog keeps `check` output lean.
  if (first_existential == theory.rules().size()) return;
  Span span = spans.Rule(first_existential);
  auto note = [&](const char* code, bool member, const std::string& text) {
    if (!member) return;
    Diagnostic d;
    d.code = code;
    d.severity = Severity::kNote;
    d.span = span;
    d.message = text;
    out->push_back(std::move(d));
  };
  note("GR080", ext.linear,
       "theory is linear: every rule has at most one positive body atom");
  note("GR081", ext.frontier_one,
       "theory is frontier-one: every rule passes at most one variable to "
       "its head");
  note("GR082", ext.joinless,
       "theory is joinless: no rule joins a variable across two body "
       "atoms");
  note("GR083", ext.domain_restricted,
       "theory is domain-restricted: every head atom uses all or none of "
       "its rule's body variables");
  note("GR084", ext.shy,
       "theory is shy: attacked variables are never joined and never "
       "shared between frontier atoms");
}

// --- GR060: declared existentials ----------------------------------------

void CheckDeclaredExistentials(const Theory& theory,
                               const SymbolTable& symbols,
                               const SourceMap* source,
                               std::vector<Diagnostic>* out) {
  if (source == nullptr) return;
  size_t n = std::min(theory.rules().size(), source->rules.size());
  for (size_t i = 0; i < n; ++i) {
    const Rule& rule = theory.rules()[i];
    for (const auto& [v, span] : source->rules[i].declared_evars) {
      bool in_head = false;
      for (const Atom& h : rule.head) {
        for (Term t : h.AllTerms()) {
          if (t == v) in_head = true;
        }
      }
      bool in_body = false;
      for (const Literal& l : rule.body) {
        for (Term t : l.atom.AllTerms()) {
          if (t == v) in_body = true;
        }
      }
      if (in_head && !in_body) continue;  // A genuine existential.
      Diagnostic d;
      d.code = "GR060";
      d.severity = Severity::kWarning;
      d.span = span;
      if (in_body) {
        d.message = "variable " + symbols.TermName(v) +
                    " is declared existential but occurs in the body; the "
                    "declaration has no effect (it is universal)";
      } else {
        d.message = "existential variable " + symbols.TermName(v) +
                    " is declared but never used in the head";
      }
      d.notes.push_back(
          "evars(σ) is recomputed from occurrences (§2); this declaration "
          "is dropped silently");
      out->push_back(std::move(d));
    }
  }
}

// --- Explain witnesses ---------------------------------------------------

std::string RuleRef(size_t i, const Rule& rule, const SymbolTable& symbols) {
  return "rule " + std::to_string(i) + " (" + ToString(rule, symbols) + ")";
}

void FillWitnesses(const Theory& theory, const Classification& c,
                   const ExtendedClassification& ext,
                   const ExistentialDependencyGraph& graph,
                   const PositionSet& affected, const SymbolTable& symbols,
                   std::vector<ClassWitness>* out) {
  const std::vector<Rule>& rules = theory.rules();
  auto witness = [&](const char* name, bool member,
                     auto fails) {
    ClassWitness w;
    w.class_name = name;
    w.member = member;
    if (!member) {
      for (size_t i = 0; i < rules.size(); ++i) {
        std::string reason = fails(i, rules[i]);
        if (!reason.empty()) {
          w.rule_index = i;
          w.reason = std::move(reason);
          break;
        }
      }
    }
    out->push_back(std::move(w));
  };

  witness("datalog", c.datalog, [&](size_t i, const Rule& r) -> std::string {
    if (!r.EVars().empty()) {
      return RuleRef(i, r, symbols) + " has existential variables " +
             VarSetString(r.EVars(), symbols);
    }
    if (r.HasNegation()) {
      return RuleRef(i, r, symbols) + " has a negated body literal";
    }
    return "";
  });
  witness("guarded", c.guarded, [&](size_t i, const Rule& r) -> std::string {
    if (IsGuardedRule(r)) return "";
    return RuleRef(i, r, symbols) +
           ": no positive body atom contains all universal variables " +
           VarSetString(PositiveBodyArgVars(r), symbols);
  });
  witness("frontier-guarded", c.frontier_guarded,
          [&](size_t i, const Rule& r) -> std::string {
            if (IsFrontierGuardedRule(r)) return "";
            return RuleRef(i, r, symbols) +
                   ": no positive body atom contains all frontier "
                   "variables " +
                   VarSetString(FrontierArgVars(r), symbols);
          });
  witness("weakly-guarded", c.weakly_guarded,
          [&](size_t i, const Rule& r) -> std::string {
            if (IsWeaklyGuardedRule(r, affected)) return "";
            std::vector<Term> unsafe =
                Intersect(PositiveBodyArgVars(r), UnsafeVars(r, affected));
            std::string reason =
                RuleRef(i, r, symbols) +
                ": no positive body atom contains all unsafe variables " +
                VarSetString(unsafe, symbols);
            if (!unsafe.empty()) {
              reason += "; " + UnsafeWhy(r, unsafe[0], symbols);
            }
            return reason;
          });
  witness("weakly-frontier-guarded", c.weakly_frontier_guarded,
          [&](size_t i, const Rule& r) -> std::string {
            if (IsWeaklyFrontierGuardedRule(r, affected)) return "";
            std::vector<Term> unsafe =
                Intersect(FrontierArgVars(r), UnsafeVars(r, affected));
            std::string reason =
                RuleRef(i, r, symbols) +
                ": no positive body atom contains all unsafe frontier "
                "variables " +
                VarSetString(unsafe, symbols);
            if (!unsafe.empty()) {
              reason += "; " + UnsafeWhy(r, unsafe[0], symbols);
            }
            return reason;
          });
  witness("nearly-guarded", c.nearly_guarded,
          [&](size_t i, const Rule& r) -> std::string {
            if (IsNearlyGuardedRule(r, affected)) return "";
            std::string reason = RuleRef(i, r, symbols) + ": not guarded";
            std::vector<Term> unsafe = UnsafeVars(r, affected);
            if (!unsafe.empty()) {
              reason += ", with unsafe variables " +
                        VarSetString(unsafe, symbols);
            }
            if (!r.EVars().empty()) {
              reason += ", with existential variables " +
                        VarSetString(r.EVars(), symbols);
            }
            return reason + " (Def 3 needs guarded, or safe and "
                            "existential-free)";
          });
  witness("nearly-frontier-guarded", c.nearly_frontier_guarded,
          [&](size_t i, const Rule& r) -> std::string {
            if (IsNearlyFrontierGuardedRule(r, affected)) return "";
            std::string reason =
                RuleRef(i, r, symbols) + ": not frontier-guarded";
            std::vector<Term> unsafe = UnsafeVars(r, affected);
            if (!unsafe.empty()) {
              reason += ", with unsafe variables " +
                        VarSetString(unsafe, symbols);
            }
            if (!r.EVars().empty()) {
              reason += ", with existential variables " +
                        VarSetString(r.EVars(), symbols);
            }
            return reason + " (Def 3 needs frontier-guarded, or safe and "
                            "existential-free)";
          });
  witness("linear", ext.linear, [&](size_t i, const Rule& r) -> std::string {
    if (IsLinearRule(r)) return "";
    size_t positive = 0;
    for (const Literal& l : r.body) {
      if (!l.negated) ++positive;
    }
    return RuleRef(i, r, symbols) + " has " + std::to_string(positive) +
           " positive body atoms (linear allows one)";
  });
  witness("frontier-one", ext.frontier_one,
          [&](size_t i, const Rule& r) -> std::string {
            if (IsFrontierOneRule(r)) return "";
            return RuleRef(i, r, symbols) + " has frontier variables " +
                   VarSetString(r.FVars(), symbols) +
                   " (frontier-one allows one)";
          });
  witness("joinless", ext.joinless,
          [&](size_t i, const Rule& r) -> std::string {
            if (IsJoinlessRule(r)) return "";
            for (Term x : r.UVars()) {
              size_t atoms = 0;
              for (const Literal& l : r.body) {
                if (l.negated) continue;
                std::vector<Term> all = l.atom.AllTerms();
                if (std::find(all.begin(), all.end(), x) != all.end()) {
                  ++atoms;
                }
              }
              if (atoms > 1) {
                return RuleRef(i, r, symbols) + ": variable " +
                       symbols.TermName(x) +
                       " joins two distinct positive body atoms";
              }
            }
            return "";
          });
  witness("domain-restricted", ext.domain_restricted,
          [&](size_t i, const Rule& r) -> std::string {
            if (IsDomainRestrictedRule(r)) return "";
            return RuleRef(i, r, symbols) +
                   ": some head atom uses part (not all, not none) of the "
                   "body variables";
          });
  witness("shy", ext.shy, [&](size_t i, const Rule& r) -> std::string {
    if (IsShyRule(r, graph)) return "";
    return RuleRef(i, r, symbols) +
           ": an attacked variable is joined across body atoms, or two "
           "attacked frontier variables share no body atom";
  });
}

}  // namespace

AnalysisResult Analyze(const Theory& theory, const Database& db,
                       const SymbolTable& symbols,
                       const AnalyzeOptions& options) {
  AnalysisResult result;
  result.classification = Classify(theory);
  result.extended = ClassifyExtended(theory);
  result.termination =
      AnalyzeTermination(theory, symbols, options.termination);
  for (size_t i : result.termination.order) {
    result.termination_order.push_back(
        SkolemFunctionName(result.termination.graph.functions[i], symbols));
  }
  for (size_t i : result.termination.cycle) {
    result.termination_cycle.push_back(
        SkolemFunctionName(result.termination.graph.functions[i], symbols));
  }
  PositionSet affected = AffectedPositions(theory);
  SpanLookup spans{options.source};

  CheckGuards(theory, affected, symbols, spans, &result.diagnostics);
  CheckReachability(theory, db, symbols, spans, &result.diagnostics);
  CheckSubsumption(theory, symbols, spans, options.max_subsumption_rules,
                   &result.diagnostics);
  CheckShapes(theory, db, symbols, spans, &result.diagnostics);
  CheckStratification(theory, symbols, spans, &result.diagnostics);
  CheckTermination(theory, result.termination, symbols, spans,
                   &result.diagnostics);
  CheckExtendedClasses(theory, result.extended, spans, &result.diagnostics);
  CheckDeclaredExistentials(theory, symbols, options.source,
                            &result.diagnostics);

  std::stable_sort(result.diagnostics.begin(), result.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.span.begin != b.span.begin) {
                       return a.span.begin < b.span.begin;
                     }
                     if (a.code != b.code) return a.code < b.code;
                     return a.message < b.message;
                   });
  for (const Diagnostic& d : result.diagnostics) {
    switch (d.severity) {
      case Severity::kError: ++result.errors; break;
      case Severity::kWarning: ++result.warnings; break;
      case Severity::kNote: ++result.notes; break;
    }
  }
  if (options.explain) {
    FillWitnesses(theory, result.classification, result.extended,
                  result.termination.graph, affected, symbols,
                  &result.witnesses);
  }
  return result;
}

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "?";
}

}  // namespace gerel
