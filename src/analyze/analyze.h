// Static analysis of theories: explainable classification plus the
// GR-coded diagnostics of diagnostic.h (`gerel check`).
//
// The analyzers are plain passes over the structures core/classify.h
// already computes — the affected-position set ap(Σ) (Def 2), the
// position dependency graph (core/acyclicity.h), and the predicate
// dependency graph — so analysis costs about as much as classification.
// Everything is deterministic: same theory, same database, same symbol
// table => byte-identical diagnostics (the fuzz lint lane pins this
// down), which makes the output CI-diffable.
#ifndef GEREL_ANALYZE_ANALYZE_H_
#define GEREL_ANALYZE_ANALYZE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analyze/diagnostic.h"
#include "analyze/termination.h"
#include "core/classify.h"
#include "core/database.h"
#include "core/source_map.h"
#include "core/symbol_table.h"
#include "core/theory.h"

namespace gerel {

struct AnalyzeOptions {
  // Fill AnalysisResult::witnesses with a per-class explanation.
  bool explain = false;
  // Spans for diagnostics and the GR060 analyzer (which needs the
  // declared existential lists only the parser sees). May be null.
  const SourceMap* source = nullptr;
  // Safety valve for the O(rules^2) subsumption pass; beyond this many
  // rules GR021 is skipped (a note-level diagnostic says so).
  size_t max_subsumption_rules = 512;
  // Caps/budget for the termination pass (GR070-GR072).
  TerminationOptions termination;
};

// Why the theory is (not) in one of the lattice classes. When `member`
// is false, `rule_index`/`reason` name a minimal witness: the rule plus
// the variable/position that violates the definition.
struct ClassWitness {
  const char* class_name = "";
  bool member = false;
  size_t rule_index = 0;  // Meaningful when !member.
  std::string reason;     // Empty when member.
};

struct AnalysisResult {
  Classification classification;
  ExtendedClassification extended;
  // The acyclicity-ladder verdict (GR070-GR072) — also the input to the
  // PreparedKb materialization planner.
  TerminationCertificate termination;
  // Display names ("r0.Y") for termination.order / termination.cycle,
  // pre-rendered here because the renderers carry no symbol table.
  std::vector<std::string> termination_order;
  std::vector<std::string> termination_cycle;
  std::vector<Diagnostic> diagnostics;  // Sorted by (span, code, message).
  // Twelve entries in lattice order (datalog .. nearly frontier-guarded,
  // then linear .. shy) when AnalyzeOptions::explain is set; empty
  // otherwise.
  std::vector<ClassWitness> witnesses;
  size_t errors = 0;
  size_t warnings = 0;
  size_t notes = 0;
};

// Runs every analyzer over (Σ, D). The database feeds the GR020
// reachability pass; pass an empty database for a bare theory (GR020
// then stays silent rather than declaring everything dead).
AnalysisResult Analyze(const Theory& theory, const Database& db,
                       const SymbolTable& symbols,
                       const AnalyzeOptions& options = AnalyzeOptions());

}  // namespace gerel

#endif  // GEREL_ANALYZE_ANALYZE_H_
