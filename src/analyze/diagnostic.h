// The diagnostic model of the static analyzer (`gerel check`).
//
// A Diagnostic is a stable machine-readable code, a severity, a source
// span (empty when the theory was built programmatically), a one-line
// message, and optional notes. Codes are append-only so CI configs can
// rely on them:
//
//   GR000  parse error (line:col + caret snippet)
//   GR001  unsafe variable unguarded: the rule is not weakly guarded
//          (but still weakly frontier-guarded; see GR010)
//   GR010  unsafe frontier variable unguarded: the rule is not weakly
//          frontier-guarded — the serving pipeline rejects the theory
//   GR020  predicate unreachable from any fact/EDB: no rule deriving it
//          can ever fire over the given database
//   GR021  rule subsumed by another rule (a homomorphic image of the
//          subsumer's body lands inside the subsumee's body)
//   GR030  annotation-shape mismatch: a relation partitions its
//          positions into args/annotation differently across uses
//   GR040  negation cycle: the program is not stratifiable (cycle
//          printed in a note)
//   GR050  neither weakly nor jointly acyclic: the oblivious chase may
//          diverge (a note names the class that still terminates, if any)
//   GR060  existential variable declared in "exists" but unused in the
//          head (or shadowed by a body occurrence)
//
// Severity: errors make `gerel check` exit non-zero; warnings can be
// promoted per-code with --deny=GRxxx; notes are informational.
#ifndef GEREL_ANALYZE_DIAGNOSTIC_H_
#define GEREL_ANALYZE_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "core/source_map.h"

namespace gerel {

enum class Severity {
  kNote,
  kWarning,
  kError,
};

// Stable lower-case tag ("error", "warning", "note").
const char* SeverityName(Severity severity);

struct Diagnostic {
  std::string code;  // "GR001" etc.; stable across releases.
  Severity severity = Severity::kWarning;
  Span span;  // Empty (0,0) when no source location is known.
  std::string message;
  std::vector<std::string> notes;
};

}  // namespace gerel

#endif  // GEREL_ANALYZE_DIAGNOSTIC_H_
