// The diagnostic model of the static analyzer (`gerel check`).
//
// A Diagnostic is a stable machine-readable code, a severity, a source
// span (empty when the theory was built programmatically), a one-line
// message, and optional notes. Codes are append-only so CI configs can
// rely on them:
//
//   GR000  parse error (line:col + caret snippet)
//   GR001  unsafe variable unguarded: the rule is not weakly guarded
//          (but still weakly frontier-guarded; see GR010)
//   GR010  unsafe frontier variable unguarded: the rule is not weakly
//          frontier-guarded — the serving pipeline rejects the theory
//   GR020  predicate unreachable from any fact/EDB: no rule deriving it
//          can ever fire over the given database
//   GR021  rule subsumed by another rule (a homomorphic image of the
//          subsumer's body lands inside the subsumee's body)
//   GR030  annotation-shape mismatch: a relation partitions its
//          positions into args/annotation differently across uses
//   GR040  negation cycle: the program is not stratifiable (cycle
//          printed in a note)
//   GR050  no acyclicity-based termination certificate: the chase may
//          diverge on some database
//   GR060  existential variable declared in "exists" but unused in the
//          head (or shadowed by a body occurrence)
//   GR070  chase termination certified (weak/joint acyclicity or a
//          saturated critical-instance chase); notes carry the witness
//          (Skolem-function order or the critical-chase trace size)
//   GR071  model-faithful acyclicity refuted: the critical-instance
//          chase built a cyclic Skolem term (the closed function path is
//          in the message; render it with `gerel check --dot`)
//   GR072  termination analysis inconclusive: the critical-instance
//          chase hit its step/atom caps or budget before a verdict
//   GR080  theory is linear (at most one positive body atom per rule)
//   GR081  theory is frontier-one (at most one frontier variable)
//   GR082  theory is joinless (no variable joins two body atoms)
//   GR083  theory is domain-restricted (each head atom uses all or none
//          of its rule's body variables)
//   GR084  theory is shy (no attacked variable is joined, no two
//          attacked frontier variables lack a common atom)
//
// Severity: errors make `gerel check` exit non-zero; warnings can be
// promoted per-code with --deny=GRxxx; notes are informational.
#ifndef GEREL_ANALYZE_DIAGNOSTIC_H_
#define GEREL_ANALYZE_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "core/source_map.h"

namespace gerel {

enum class Severity {
  kNote,
  kWarning,
  kError,
};

// Stable lower-case tag ("error", "warning", "note").
const char* SeverityName(Severity severity);

struct Diagnostic {
  std::string code;  // "GR001" etc.; stable across releases.
  Severity severity = Severity::kWarning;
  Span span;  // Empty (0,0) when no source location is known.
  std::string message;
  std::vector<std::string> notes;
};

}  // namespace gerel

#endif  // GEREL_ANALYZE_DIAGNOSTIC_H_
