#include "stratified/stratified_chase.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/check.h"
#include "core/classify.h"
#include "datalog/stratifier.h"

namespace gerel {

namespace {

// Complement relation for A, interned as "not#A".
RelationId ComplementRelation(RelationId pred, SymbolTable* symbols,
                              int arity) {
  return symbols->Relation("not#" + symbols->RelationName(pred), arity);
}

// Enumerates all tuples over `domain` of the given width and inserts
// not#A(~t) for those not in the A-extension of `db`.
void MaterializeComplement(RelationId pred, RelationId complement,
                           uint32_t arity, const std::vector<Term>& domain,
                           const Database& db, Database* out) {
  if (arity == 0) {
    if (!db.Contains(Atom(pred, {}))) out->Insert(Atom(complement, {}));
    return;
  }
  if (domain.empty()) return;
  std::vector<size_t> pick(arity, 0);
  while (true) {
    std::vector<Term> tuple(arity);
    for (uint32_t i = 0; i < arity; ++i) tuple[i] = domain[pick[i]];
    if (!db.Contains(Atom(pred, tuple))) {
      out->Insert(Atom(complement, tuple));
    }
    size_t i = 0;
    for (; i < arity; ++i) {
      if (++pick[i] < domain.size()) break;
      pick[i] = 0;
    }
    if (i == arity) break;
  }
}

}  // namespace

Result<StratifiedChaseResult> StratifiedChase(const Theory& theory,
                                              const Database& input,
                                              SymbolTable* symbols,
                                              const ChaseOptions& options) {
  for (const Rule& rule : theory.rules()) {
    Status s = rule.Validate(*symbols);
    if (!s.ok()) return s;
  }
  Result<Stratification> strat = Stratify(theory);
  if (!strat.ok()) return strat.status();

  StratifiedChaseResult result;
  result.strata = strat.value().NumStrata();
  Database stage = input;
  if (options.populate_acdom) {
    PopulateAcdom(theory, symbols, &stage);
  }
  ChaseOptions stage_options = options;
  stage_options.populate_acdom = false;  // Fixed from the input stage.
  result.saturated = true;

  std::vector<RelationId> original = theory.Relations();
  RelationId acdom = AcdomRelation(symbols);

  for (const std::vector<uint32_t>& stratum : strat.value().strata) {
    // p(Σi): replace negative literals by complement atoms; collect the
    // negated relations with their arities.
    Theory positive;
    std::unordered_map<RelationId, uint32_t> negated;
    for (uint32_t ri : stratum) {
      Rule rule = theory.rules()[ri];
      for (Literal& l : rule.body) {
        if (!l.negated) continue;
        uint32_t arity = static_cast<uint32_t>(l.atom.arity());
        negated.emplace(l.atom.pred, arity);
        l.atom.pred = ComplementRelation(l.atom.pred, symbols, arity);
        l.negated = false;
      }
      positive.AddRule(std::move(rule));
    }
    // S′: add the complement facts over the current active terms.
    Database stage_input = stage;
    std::vector<Term> domain = stage.ActiveTerms(acdom);
    for (const auto& [pred, arity] : negated) {
      MaterializeComplement(pred,
                            ComplementRelation(pred, symbols, arity), arity,
                            domain, stage, &stage_input);
    }
    ChaseResult chase = Chase(positive, stage_input, symbols, stage_options);
    result.saturated = result.saturated && chase.saturated;
    result.steps += chase.steps;
    // Restrict to the original symbols (drop complements).
    Database next;
    for (const Atom& a : chase.database.atoms()) {
      const std::string& name = symbols->RelationName(a.pred);
      if (name.rfind("not#", 0) == 0) continue;
      next.Insert(a);
    }
    stage = std::move(next);
  }
  result.database = std::move(stage);
  return result;
}

bool IsStratifiedWeaklyGuarded(const Theory& theory) {
  // Drop negative literals, then check weak guardedness (paper §8).
  Theory positive_part;
  for (const Rule& rule : theory.rules()) {
    Rule r;
    for (const Literal& l : rule.body) {
      if (!l.negated) r.body.push_back(l);
    }
    r.head = rule.head;
    positive_part.AddRule(std::move(r));
  }
  return Classify(positive_part).weakly_guarded;
}

}  // namespace gerel
