// Stratified existential theories (paper §8, Defs 22–23).
//
// The semantics is the iterative chase along a stratification: each
// stratum Σi is made positive by replacing ¬A(~t) with a complement
// relation Ā(~t); the complement is materialized over the active terms of
// the previous stage (safety guarantees negative atoms are only ever
// checked on such tuples), the positive stratum is chased, and the result
// is restricted to the original symbols.
//
// The stratum chases may be infinite (weakly guarded theories!); the
// options bound them exactly like chase.h. Σsucc (order_program.h) is the
// canonical client: its ground consequences over input constants are
// complete at null depth |dom| + 1 (any repetition-free ordering of n
// constants has length ≤ n), which the caller encodes via
// ChaseOptions::max_null_depth.
#ifndef GEREL_STRATIFIED_STRATIFIED_CHASE_H_
#define GEREL_STRATIFIED_STRATIFIED_CHASE_H_

#include "chase/chase.h"
#include "core/database.h"
#include "core/status.h"
#include "core/symbol_table.h"
#include "core/theory.h"

namespace gerel {

struct StratifiedChaseResult {
  Database database;
  // True iff every stratum chase reached a fixpoint within its limits.
  bool saturated = false;
  size_t strata = 0;
  size_t steps = 0;
};

// Runs the Def 23 iterative chase of `theory` over `input`.
Result<StratifiedChaseResult> StratifiedChase(
    const Theory& theory, const Database& input, SymbolTable* symbols,
    const ChaseOptions& options = ChaseOptions());

// Whether `theory` is weakly guarded in the stratified sense (paper §8:
// weak guardedness of the theory with negative atoms dropped).
bool IsStratifiedWeaklyGuarded(const Theory& theory);

}  // namespace gerel

#endif  // GEREL_STRATIFIED_STRATIFIED_CHASE_H_
