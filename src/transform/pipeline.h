// Conjunctive query answering over databases enriched with existential
// rules (paper §7).
//
// A knowledge-base query is (Σ ∪ {α → Q(~x)}, Q) for a weakly
// frontier-guarded Σ; the CQ rule is made weakly frontier-guarded by
// guarding its answer variables with acdom. Answering follows the paper's
// five-step procedure:
//   1. rew(Σ) — weakly frontier-guarded → weakly guarded (Thm 2),
//      skipped when Σ is already weakly guarded;
//   2. pg(rew(Σ), D) — partial grounding; the result is guarded;
//   3. dat(·) — saturation into Datalog (Thm 3);
//   4./5. bottom-up Datalog evaluation over D (our semi-naive engine
//      performs the paper's grounding implicitly).
//
// For nearly frontier-guarded theories the database-independent PTime
// route (Prop 4 + Prop 6) is provided as well.
#ifndef GEREL_TRANSFORM_PIPELINE_H_
#define GEREL_TRANSFORM_PIPELINE_H_

#include <set>
#include <vector>

#include "core/database.h"
#include "core/rule.h"
#include "core/status.h"
#include "core/symbol_table.h"
#include "core/theory.h"
#include "transform/fg_to_ng.h"
#include "transform/grounding.h"
#include "transform/saturation.h"

namespace gerel {

struct KbQueryOptions {
  ExpansionOptions expansion;
  SaturationOptions saturation;
  GroundingOptions grounding;
};

struct KbQueryResult {
  std::set<std::vector<Term>> answers;
  // False when some stage hit a cap; answers are then sound but possibly
  // incomplete.
  bool complete = true;
  size_t rewritten_rules = 0;
  size_t grounded_rules = 0;
  size_t datalog_rules = 0;
};

// Turns a conjunctive query α → Q(~x) into a weakly frontier-guarded rule
// by adding acdom(x) for each answer variable (paper §7).
Rule GuardConjunctiveQuery(const Rule& cq, SymbolTable* symbols);

// Answers (Σ ∪ {cq}, Q) over `db` via the five-step §7 procedure. Σ must
// be weakly frontier-guarded and normal (Prop 1); `cq` is the raw CQ rule
// (it is acdom-guarded internally). Returns the set of answer tuples.
Result<KbQueryResult> AnswerKbQuery(const Theory& theory, const Rule& cq,
                                    const Database& db, SymbolTable* symbols,
                                    const KbQueryOptions& options =
                                        KbQueryOptions());

// Database-independent PTime route for nearly frontier-guarded theories:
// rew (Prop 4) then dat (Prop 6) then Datalog evaluation.
Result<KbQueryResult> AnswerKbQueryNearlyFrontierGuarded(
    const Theory& theory, const Rule& cq, const Database& db,
    SymbolTable* symbols, const KbQueryOptions& options = KbQueryOptions());

}  // namespace gerel

#endif  // GEREL_TRANSFORM_PIPELINE_H_
