// Partial grounding pg(Σ, D) (paper §7, step 2 and Thm 2 proof).
//
// Instantiates the *safe* variables of each rule (those with at least one
// occurrence at a non-affected position) with constants of the database,
// in every possible way. For a weakly guarded theory the result is
// guarded: the remaining universal variables are unsafe and therefore
// covered by the weak guard.
#ifndef GEREL_TRANSFORM_GROUNDING_H_
#define GEREL_TRANSFORM_GROUNDING_H_

#include "core/budget.h"
#include "core/database.h"
#include "core/status.h"
#include "core/theory.h"

namespace gerel {

struct GroundingOptions {
  // Cap on the number of produced rules (the grounding is exponential in
  // the number of safe variables per rule).
  size_t max_rules = 500000;
  // Optional execution budget; checked (amortized) per produced rule.
  // Not owned.
  ExecutionBudget* budget = nullptr;
};

struct GroundingResult {
  Theory theory;
  bool complete = true;
  // Why the grounding stopped early (kNone when complete).
  DegradationReason degradation;
};

// pg(Σ, D): substitutes safe variables by the ground terms of D (and the
// constants of Σ) in all possible ways.
Result<GroundingResult> PartialGrounding(const Theory& theory,
                                         const Database& db,
                                         const GroundingOptions& options =
                                             GroundingOptions());

}  // namespace gerel

#endif  // GEREL_TRANSFORM_GROUNDING_H_
