// Axiomatization of the built-in acdom relation (paper Def 15, Prop 5).
//
// Given a nearly guarded theory Σ using the built-in acdom, Σ* replaces
// every relation R by a fresh R*, adds copy rules R(~x) → R*(~x), domain
// rules R(x1..xn) → acdom*(xi), and fact rules → acdom*(c) for theory
// constants. The result needs no built-in and has the same answers under
// the starred output relation.
#ifndef GEREL_TRANSFORM_ACDOM_H_
#define GEREL_TRANSFORM_ACDOM_H_

#include <unordered_map>

#include "core/symbol_table.h"
#include "core/theory.h"

namespace gerel {

struct AcdomAxiomatization {
  Theory theory;
  // Original relation → starred relation.
  std::unordered_map<RelationId, RelationId> starred;

  RelationId Starred(RelationId original) const {
    return starred.at(original);
  }
};

// Builds Σ* (Def 15). `input_relations` lists the relations R of Σ whose
// extensions come from the database (rules (a) and (b) range over them);
// pass Theory::Relations() output minus internal relations, or leave
// empty to use every non-acdom relation of Σ.
AcdomAxiomatization AxiomatizeAcdom(const Theory& theory,
                                    SymbolTable* symbols);

}  // namespace gerel

#endif  // GEREL_TRANSFORM_ACDOM_H_
