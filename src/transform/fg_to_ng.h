// Translation from (nearly) frontier-guarded to nearly guarded rules
// (paper §5.1): expansion ex(Σ) (Def 12), rewriting rew(Σ) (Def 13,
// Thm 1, Prop 3), and the extension to nearly frontier-guarded theories
// (Def 14, Prop 4).
#ifndef GEREL_TRANSFORM_FG_TO_NG_H_
#define GEREL_TRANSFORM_FG_TO_NG_H_

#include <cstddef>

#include "core/budget.h"
#include "core/status.h"
#include "core/symbol_table.h"
#include "core/theory.h"

namespace gerel {

struct ExpansionOptions {
  // Hard cap on rules in the expansion; exceeding it marks the result
  // incomplete (the paper's expansion is worst-case exponential; this is
  // the practical guard rail).
  size_t max_rules = 50000;
  // Cap on the selection enumeration per rule.
  size_t max_selections_per_rule = 2000000;
  // Restrict to idempotent selections (each range variable maps to
  // itself). These are exactly the representative-choosing selections the
  // Thm 1 proof uses; disable for the exhaustive Def 7 enumeration
  // (cross-checked in property tests).
  bool idempotent_selections_only = true;
  // Enumerate every guard-tuple variant of Defs 10/11 instead of only the
  // subsuming fresh-variable guards (ablation; see rewriting.cc).
  bool exhaustive_guards = false;
  // Optional execution budget; checked per worklist item and, amortized,
  // inside the selection enumeration. Not owned. Exhaustion stops the
  // closure cleanly with complete = false and a populated degradation.
  ExecutionBudget* budget = nullptr;
};

struct ExpansionResult {
  Theory theory;
  // True iff the closure finished without hitting a cap.
  bool complete = true;
  size_t selections_tried = 0;
  size_t rewritings_added = 0;
  size_t fresh_relations = 0;
  // Why the closure stopped early (kNone when complete).
  DegradationReason degradation;
};

// ex(Σ): closes the normal frontier-guarded theory Σ under rc- and
// rnc-rewritings (Def 12). Rules are deduplicated modulo variable
// renaming; the fresh head relation of a rewriting is shared across its
// guard variants and reused when the same (σ, µ) recurs.
Result<ExpansionResult> Expand(const Theory& theory, SymbolTable* symbols,
                               const ExpansionOptions& options =
                                   ExpansionOptions());

struct RewriteResult {
  Theory theory;
  bool complete = true;
  DegradationReason degradation;
  ExpansionResult expansion_stats;
};

// rew(Σ) for a normal frontier-guarded theory (Def 13): ex(Σ) with
// acdom(x) added for each universal variable of each non-guarded rule.
// The result is nearly guarded (Prop 3) and preserves ground atomic
// consequences (Thm 1).
Result<RewriteResult> RewriteFgToNearlyGuarded(
    const Theory& theory, SymbolTable* symbols,
    const ExpansionOptions& options = ExpansionOptions());

// rew(Σ) for a normal *nearly* frontier-guarded theory (Def 14, Prop 4):
// the frontier-guarded part Σf is rewritten; the safe Datalog part Σd is
// kept verbatim.
Result<RewriteResult> RewriteNfgToNearlyGuarded(
    const Theory& theory, SymbolTable* symbols,
    const ExpansionOptions& options = ExpansionOptions());

}  // namespace gerel

#endif  // GEREL_TRANSFORM_FG_TO_NG_H_
