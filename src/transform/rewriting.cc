#include "transform/rewriting.h"

#include <algorithm>

#include "core/check.h"
#include "core/classify.h"

namespace gerel {

namespace {

void AppendDistinct(const std::vector<Term>& in, std::vector<Term>* out) {
  for (Term t : in) {
    if (std::find(out->begin(), out->end(), t) == out->end())
      out->push_back(t);
  }
}

bool Contains(const std::vector<Term>& v, Term t) {
  return std::find(v.begin(), v.end(), t) != v.end();
}

// Distinct variables of a set of atoms (args and annotations).
std::vector<Term> AtomsVars(const std::vector<Atom>& atoms) {
  std::vector<Term> out;
  for (const Atom& a : atoms) AppendDistinct(a.AllVars(), &out);
  return out;
}

// Enumerates guard atoms over the relations of `sig` containing all of
// `required`.
//
// Default (subsuming) mode: required variables are placed injectively and
// every other position gets a fresh variable. A guard that instead joins
// an existing body variable (or repeats a required one) has a strictly
// stronger body and the same head, so it is subsumed by a fresh-variable
// guard; dropping those variants loses no consequences. Exhaustive mode
// (`pool` + `witness_any`) enumerates every Def 10/11 variant and is kept
// for the ablation cross-check.
void ForEachGuardAtom(const SignatureInfo& sig,
                      const std::vector<Term>& required,
                      const std::vector<Term>& pool,
                      const std::vector<Term>& witness_any, bool exhaustive,
                      bool null_capable_only, SymbolTable* symbols,
                      const std::function<void(const Atom&)>& emit) {
  if (!exhaustive) {
    for (RelationId pred : sig.relations) {
      if (null_capable_only && sig.null_capable.count(pred) == 0) continue;
      const SignatureInfo::Split& split = sig.splits.at(pred);
      uint32_t arity = split.total();
      if (required.size() > arity) continue;
      // Injective placements of `required` into the positions.
      std::vector<int> slot(arity, -1);
      std::function<void(size_t)> place = [&](size_t next_var) {
        if (next_var == required.size()) {
          Atom atom;
          atom.pred = pred;
          for (uint32_t i = 0; i < arity; ++i) {
            Term t = slot[i] >= 0 ? required[slot[i]]
                                  : symbols->FreshVariable("G");
            if (i < split.args) {
              atom.args.push_back(t);
            } else {
              atom.annotation.push_back(t);
            }
          }
          emit(atom);
          return;
        }
        for (uint32_t i = 0; i < arity; ++i) {
          if (slot[i] >= 0) continue;
          slot[i] = static_cast<int>(next_var);
          place(next_var + 1);
          slot[i] = -1;
        }
      };
      place(0);
    }
    return;
  }
  for (RelationId pred : sig.relations) {
    if (null_capable_only && sig.null_capable.count(pred) == 0) continue;
    const SignatureInfo::Split& split = sig.splits.at(pred);
    uint32_t arity = split.total();
    if (required.size() > arity) continue;
    // DFS over positions; -1 stands for a fresh variable.
    std::vector<int> choice(arity, -1);  // Index into pool, or -1 = fresh.
    std::function<void(uint32_t)> rec = [&](uint32_t pos) {
      if (pos == arity) {
        // Check coverage and witness.
        auto chosen_has = [&](Term t) {
          for (uint32_t i = 0; i < arity; ++i) {
            if (choice[i] >= 0 && pool[choice[i]] == t) return true;
          }
          return false;
        };
        for (Term t : required) {
          if (!chosen_has(t)) return;
        }
        if (!witness_any.empty()) {
          bool hit = false;
          for (Term t : witness_any) {
            if (chosen_has(t)) {
              hit = true;
              break;
            }
          }
          if (!hit) return;
        }
        Atom atom;
        atom.pred = pred;
        for (uint32_t i = 0; i < arity; ++i) {
          Term t = choice[i] >= 0 ? pool[choice[i]]
                                  : symbols->FreshVariable("G");
          if (i < split.args) {
            atom.args.push_back(t);
          } else {
            atom.annotation.push_back(t);
          }
        }
        emit(atom);
        return;
      }
      for (int c = -1; c < static_cast<int>(pool.size()); ++c) {
        choice[pos] = c;
        rec(pos + 1);
      }
    };
    rec(0);
  }
}

// All head variables (args and annotation) of the rule.
std::vector<Term> HeadVars(const Rule& rule) {
  std::vector<Term> out;
  for (const Atom& a : rule.head) AppendDistinct(a.AllVars(), &out);
  return out;
}

}  // namespace

SignatureInfo SignatureInfo::FromTheory(const Theory& theory) {
  SignatureInfo out;
  auto note = [&out](const Atom& a) {
    auto [it, inserted] = out.splits.emplace(
        a.pred, Split{static_cast<uint32_t>(a.args.size()),
                      static_cast<uint32_t>(a.annotation.size())});
    if (inserted) {
      out.relations.push_back(a.pred);
    } else {
      GEREL_CHECK(it->second.args == a.args.size() &&
                  it->second.annotation == a.annotation.size());
    }
    out.max_arity = std::max(out.max_arity, static_cast<uint32_t>(a.arity()));
  };
  for (const Rule& r : theory.rules()) {
    for (const Literal& l : r.body) note(l.atom);
    for (const Atom& a : r.head) note(a);
  }
  PositionSet affected = AffectedPositions(theory);
  for (const auto& [pred, split] : out.splits) {
    for (uint32_t i = 0; i < split.total(); ++i) {
      if (affected.Contains(pred, i)) {
        out.null_capable.insert(pred);
        break;
      }
    }
  }
  return out;
}

bool ForEachSelection(
    const Rule& rule, uint32_t max_range, bool idempotent_only,
    size_t max_selections,
    const std::function<bool(const SelectionParts&)>& visit) {
  std::vector<Term> vars = rule.UVars();
  size_t v = vars.size();
  size_t visited = 0;
  bool keep_going = true;
  bool capped = false;

  std::vector<Atom> body_atoms;
  for (const Literal& l : rule.body) body_atoms.push_back(l.atom);
  std::vector<Term> head_vars = HeadVars(rule);

  auto emit = [&](const Substitution& mu,
                  const std::vector<Term>& dom) -> bool {
    if (visited >= max_selections) {
      capped = true;
      return false;
    }
    ++visited;
    SelectionParts parts;
    parts.mu = mu;
    for (size_t i = 0; i < body_atoms.size(); ++i) {
      std::vector<Term> avars = body_atoms[i].AllVars();
      bool covered = std::all_of(avars.begin(), avars.end(), [&dom](Term t) {
        return Contains(dom, t);
      });
      (covered ? parts.covered : parts.non_covered).push_back(i);
    }
    // Structural filter: every selected variable must occur in a covered
    // atom. The Thm 1 proof picks µ as representatives for the variables
    // mapping into one chase-tree bag — exactly the variables of the
    // atoms placed in that bag — and all four paper examples (3–6)
    // satisfy this. Selections violating it only rename non-covered
    // variables, which adds subsumed rewritings.
    for (Term x : dom) {
      bool in_cov = false;
      for (size_t i : parts.covered) {
        if (Contains(body_atoms[i].AllVars(), x)) {
          in_cov = true;
          break;
        }
      }
      if (!in_cov) return true;  // Skip; keep enumerating.
    }
    // keep(σ, µ) (Def 9): µ(x) for x ∈ dom(µ) occurring in body \ cov
    // (both modes) or in head(σ) (rc only; see SelectionParts).
    std::vector<Term> keep_rc, keep_rnc;
    for (Term x : dom) {
      bool in_noncov = false;
      for (size_t i : parts.non_covered) {
        if (Contains(body_atoms[i].AllVars(), x)) {
          in_noncov = true;
          break;
        }
      }
      Term mx = mu.Apply(x);
      if (in_noncov && !Contains(keep_rnc, mx)) keep_rnc.push_back(mx);
      if ((in_noncov || Contains(head_vars, x)) && !Contains(keep_rc, mx)) {
        keep_rc.push_back(mx);
      }
    }
    std::sort(keep_rc.begin(), keep_rc.end());  // Fixed enumeration ~X.
    std::sort(keep_rnc.begin(), keep_rnc.end());
    parts.keep_rc = std::move(keep_rc);
    parts.keep_rnc = std::move(keep_rnc);
    return visit(parts);
  };

  if (idempotent_only) {
    // Choose a range set R (|R| ≤ max_range, each maps to itself), then
    // map every other variable to an element of R or leave it unmapped.
    std::vector<size_t> range_idx;
    std::function<void(size_t)> choose_range = [&](size_t start) {
      if (!keep_going) return;
      // Assign the non-range variables.
      {
        std::vector<int> assign(v, -2);  // -2 = unmapped, else index into
                                         // range_idx; range vars fixed.
        std::function<void(size_t)> assign_rest = [&](size_t i) {
          if (!keep_going) return;
          if (i == v) {
            Substitution mu;
            std::vector<Term> dom;
            for (size_t j = 0; j < v; ++j) {
              bool in_range = std::find(range_idx.begin(), range_idx.end(),
                                        j) != range_idx.end();
              if (in_range) {
                mu.Bind(vars[j], vars[j]);
                dom.push_back(vars[j]);
              } else if (assign[j] >= 0) {
                mu.Bind(vars[j], vars[range_idx[assign[j]]]);
                dom.push_back(vars[j]);
              }
            }
            keep_going = emit(mu, dom);
            return;
          }
          if (std::find(range_idx.begin(), range_idx.end(), i) !=
              range_idx.end()) {
            assign_rest(i + 1);
            return;
          }
          for (int c = -2; c < static_cast<int>(range_idx.size()); ++c) {
            if (c == -1) continue;
            assign[i] = c;
            assign_rest(i + 1);
            if (!keep_going) return;
          }
        };
        assign_rest(0);
      }
      if (!keep_going) return;
      if (range_idx.size() >= max_range) return;
      for (size_t j = start; j < v; ++j) {
        range_idx.push_back(j);
        choose_range(j + 1);
        range_idx.pop_back();
        if (!keep_going) return;
      }
    };
    choose_range(0);
    return keep_going && !capped;
  }

  // Full enumeration: each variable maps to any variable or stays
  // unmapped, with |range| ≤ max_range.
  std::vector<int> assign(v, -1);  // -1 = unmapped, else target var index.
  std::function<void(size_t, size_t)> rec = [&](size_t i, size_t ran_size) {
    if (!keep_going) return;
    if (i == v) {
      Substitution mu;
      std::vector<Term> dom;
      for (size_t j = 0; j < v; ++j) {
        if (assign[j] >= 0) {
          mu.Bind(vars[j], vars[assign[j]]);
          dom.push_back(vars[j]);
        }
      }
      keep_going = emit(mu, dom);
      return;
    }
    for (int c = -1; c < static_cast<int>(v); ++c) {
      size_t new_ran = ran_size;
      if (c >= 0) {
        bool already = false;
        for (size_t j = 0; j < i; ++j) {
          if (assign[j] == c) {
            already = true;
            break;
          }
        }
        if (!already) ++new_ran;
        if (new_ran > max_range) continue;
      }
      assign[i] = c;
      rec(i + 1, new_ran);
      assign[i] = -1;
      if (!keep_going) return;
    }
  };
  rec(0, 0);
  return keep_going && !capped;
}

Atom MakeFreshHead(RelationId pred, const std::vector<Term>& keep,
                   const SelectionParts& sel, const Rule& rule) {
  // H is a plain (unannotated) relation over the keep tuple. The paper
  // gives H "the annotation of head(σ)", but carrying the full head
  // annotation verbatim can reference variables that are unavailable on
  // the defining side (e.g. a head-annotation variable bound only by the
  // non-covered atoms in an rc-rewriting); instead, head-annotation
  // variables flow through keep exactly like head-argument variables, and
  // the use-side rule re-binds the remaining ones from its own atoms.
  GEREL_CHECK(rule.head.size() == 1);
  (void)sel;
  Atom h;
  h.pred = pred;
  h.args = keep;
  return h;
}

bool RcApplicable(const Rule& rule, const SelectionParts& sel) {
  // Condition 10(b): µ(cov) has a variable z ∉ keep.
  std::vector<Atom> body_atoms;
  for (const Literal& l : rule.body) body_atoms.push_back(l.atom);
  for (size_t i : sel.covered) {
    for (Term t : sel.mu.Apply(body_atoms[i]).AllVars()) {
      if (!Contains(sel.keep_rc, t)) return true;
    }
  }
  return false;
}

bool RncApplicable(const Rule& rule, const SelectionParts& sel) {
  // Condition 11(b): µ(body \ cov) has a variable z ∉ keep, and every
  // head variable must be in dom(µ) so σ″ is safe.
  std::vector<Term> dom = sel.mu.Domain();
  for (Term x : HeadVars(rule)) {
    if (!Contains(dom, x)) return false;
  }
  std::vector<Atom> body_atoms;
  for (const Literal& l : rule.body) body_atoms.push_back(l.atom);
  for (size_t i : sel.non_covered) {
    for (Term t : sel.mu.Apply(body_atoms[i]).AllVars()) {
      if (!Contains(sel.keep_rnc, t)) return true;
    }
  }
  return false;
}

RewriteSet RcRewritings(const Rule& rule, const SelectionParts& sel,
                        const SignatureInfo& sig, const Atom& fresh_head,
                        SymbolTable* symbols, bool exhaustive_guards) {
  RewriteSet out;
  if (!RcApplicable(rule, sel)) return out;
  std::vector<Atom> body_atoms;
  for (const Literal& l : rule.body) body_atoms.push_back(l.atom);
  std::vector<Atom> cov_mapped, noncov_mapped;
  for (size_t i : sel.covered) cov_mapped.push_back(sel.mu.Apply(body_atoms[i]));
  for (size_t i : sel.non_covered)
    noncov_mapped.push_back(sel.mu.Apply(body_atoms[i]));

  // σ′ = R(~x) ∧ µ(cov) → H; the guard must contain every variable of σ′.
  std::vector<Term> required = AtomsVars(cov_mapped);
  AppendDistinct(fresh_head.AllVars(), &required);
  ForEachGuardAtom(sig, required, required, {}, exhaustive_guards,
                   /*null_capable_only=*/true, symbols,
                   [&](const Atom& guard) {
                     std::vector<Atom> body = {guard};
                     body.insert(body.end(), cov_mapped.begin(),
                                 cov_mapped.end());
                     out.primes.push_back(Rule::Positive(body, {fresh_head}));
                   });
  if (out.primes.empty()) return RewriteSet();

  // σ″ = H ∧ µ(body \ cov) → µ(head).
  std::vector<Atom> body2 = {fresh_head};
  body2.insert(body2.end(), noncov_mapped.begin(), noncov_mapped.end());
  out.seconds.push_back(
      Rule::Positive(body2, {sel.mu.Apply(rule.head[0])}));
  return out;
}

RewriteSet RncRewritings(const Rule& rule, const SelectionParts& sel,
                         const SignatureInfo& sig, const Atom& fresh_head,
                         SymbolTable* symbols, bool exhaustive_guards) {
  RewriteSet out;
  if (!RncApplicable(rule, sel)) return out;
  std::vector<Atom> body_atoms;
  for (const Literal& l : rule.body) body_atoms.push_back(l.atom);
  std::vector<Atom> cov_mapped, noncov_mapped;
  for (size_t i : sel.covered) cov_mapped.push_back(sel.mu.Apply(body_atoms[i]));
  for (size_t i : sel.non_covered)
    noncov_mapped.push_back(sel.mu.Apply(body_atoms[i]));

  // σ′ = R(~x) ∧ µ(body \ cov) → H with ~x ⊇ keep (frontier-guarding) and
  // a projected variable z of µ(body \ cov) in ~x (condition (b)).
  std::vector<Term> required = sel.keep_rnc;
  AppendDistinct(fresh_head.AllVars(), &required);
  std::vector<Term> pool = required;
  AppendDistinct(AtomsVars(noncov_mapped), &pool);
  std::vector<Term> witness;
  for (Term t : AtomsVars(noncov_mapped)) {
    if (!Contains(sel.keep_rnc, t)) witness.push_back(t);
  }
  ForEachGuardAtom(sig, required, pool, witness, exhaustive_guards,
                   /*null_capable_only=*/false, symbols,
                   [&](const Atom& guard) {
                     std::vector<Atom> body = {guard};
                     body.insert(body.end(), noncov_mapped.begin(),
                                 noncov_mapped.end());
                     out.primes.push_back(Rule::Positive(body, {fresh_head}));
                   });
  if (out.primes.empty()) return RewriteSet();

  // σ″ = P(~z) ∧ H ∧ µ(cov) → µ(head) with ~z covering every variable.
  Atom mapped_head = sel.mu.Apply(rule.head[0]);
  std::vector<Term> required2 = fresh_head.AllVars();
  AppendDistinct(AtomsVars(cov_mapped), &required2);
  AppendDistinct(mapped_head.AllVars(), &required2);
  ForEachGuardAtom(sig, required2, required2, {}, exhaustive_guards,
                   /*null_capable_only=*/true, symbols,
                   [&](const Atom& guard) {
                     std::vector<Atom> body = {guard, fresh_head};
                     body.insert(body.end(), cov_mapped.begin(),
                                 cov_mapped.end());
                     out.seconds.push_back(
                         Rule::Positive(body, {mapped_head}));
                   });
  if (out.seconds.empty()) return RewriteSet();
  return out;
}

}  // namespace gerel
