// The saturation calculus Ξ(Σ) of paper §6 (Figure 3) and the guarded →
// Datalog translation dat(Σ) (Def 19, Thm 3), plus the nearly guarded →
// Datalog extension (Prop 6).
//
// Figure 3's inference rules:
//   (projection)  α → β ∧ A  ⟹  α → A      if A has no existential vars
//   (composition) from α → β and a Datalog rule γ1 ∧ γ2 → δ with a
//                 homomorphism h from γ2 into β and vars(h(γ1)) ⊆ vars(α):
//                 α ∧ h(γ1) → β ∧ h(δ)
//   (renaming)    α → β  ⟹  g(α) → g(β)    for g : vars(α) → vars(α)
//
// dat(Σ) drops every closure rule whose head still contains existential
// variables; the result is a Datalog program with the same ground atomic
// consequences as Σ over every database.
#ifndef GEREL_TRANSFORM_SATURATION_H_
#define GEREL_TRANSFORM_SATURATION_H_

#include <cstddef>

#include "core/budget.h"
#include "core/status.h"
#include "core/symbol_table.h"
#include "core/theory.h"

namespace gerel {

struct SaturationOptions {
  // Hard cap on closure size; exceeding it marks the result incomplete
  // (the paper's bound is 2^((v+c)^p · m) rules — double exponential in
  // the worst case, §6).
  size_t max_rules = 100000;
  // Skip derived rules whose body/head grow beyond these bounds. The
  // closure stays finite without them (atoms over a fixed variable set),
  // but they keep the saturation practical; exceeding marks incomplete.
  size_t max_body_atoms = 16;
  size_t max_head_atoms = 16;
  // Toggles for the individual Figure 3 rules (ablation/debugging; all
  // three are required for completeness).
  bool enable_projection = true;
  bool enable_composition = true;
  bool enable_renaming = true;
  // Lanes for the rule-pair frontier (including the calling thread); 1
  // is fully sequential. Any value produces byte-identical closures:
  // each round derives against an immutable snapshot of the closure and
  // merges in deterministic frontier order.
  size_t num_threads = 1;
  // Optional execution budget; checked at frontier-round boundaries and
  // amortized inside derivation. Not owned. Exhaustion stops the closure
  // cleanly with complete = false and a populated degradation.
  ExecutionBudget* budget = nullptr;
};

struct SaturationResult {
  // Ξ(Σ): the closure under the Figure 3 rules (modulo renaming).
  Theory closure;
  // dat(Σ): the Datalog rules of the closure.
  Theory datalog;
  bool complete = true;
  size_t inferences = 0;
  // Why the closure stopped early (kNone when complete). The partial
  // closure is still sound: every rule in it is a consequence of Σ.
  DegradationReason degradation;
};

// Saturates a guarded, negation-free theory. The closure of a guarded
// theory is guarded (paper §6).
Result<SaturationResult> Saturate(const Theory& guarded_theory,
                                  SymbolTable* symbols,
                                  const SaturationOptions& options =
                                      SaturationOptions());

struct DatalogTranslation {
  Theory datalog;
  bool complete = true;
  DegradationReason degradation;
};

// Prop 6: a nearly guarded theory Σ translates to dat(Σg) ∪ Σd, where Σg
// are the guarded rules and Σd the safe Datalog remainder.
Result<DatalogTranslation> NearlyGuardedToDatalog(
    const Theory& nearly_guarded, SymbolTable* symbols,
    const SaturationOptions& options = SaturationOptions());

}  // namespace gerel

#endif  // GEREL_TRANSFORM_SATURATION_H_
