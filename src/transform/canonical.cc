#include "transform/canonical.h"

#include <algorithm>
#include <map>
#include <vector>

#include "core/substitution.h"

namespace gerel {

namespace {

// Canonicalization by Weisfeiler–Leman-style refinement of variable
// signatures: each variable's signature is the multiset of its occurrence
// contexts (rule index, body/head, atom rendering under the current
// variable ranks, position); a few rounds of refinement distinguish
// variables that differ in any bounded-radius neighbourhood. Variables
// still tied afterwards are either automorphic (any order yields the same
// string) or pathological (order may depend on input order, costing a
// missed dedup but never a wrong merge: the output is always a consistent
// renaming of the input).
struct CanonicalForm {
  std::map<Term, int> naming;
  std::string text;
};

std::string RelName(RelationId pred, const SymbolTable& symbols,
                    const RelationRenames* renames) {
  if (renames != nullptr) {
    auto it = renames->find(pred);
    if (it != renames->end()) return it->second;
  }
  return symbols.RelationName(pred);
}

// Renders an atom with variables shown as "?<rank>"; unranked variables
// render as "?".
std::string RenderAtom(const Atom& atom, const SymbolTable& symbols,
                       const RelationRenames* renames,
                       const std::map<Term, int>& rank) {
  std::string out = RelName(atom.pred, symbols, renames);
  auto render_terms = [&](const std::vector<Term>& ts, char open,
                          char close) {
    out += open;
    for (size_t i = 0; i < ts.size(); ++i) {
      if (i > 0) out += ',';
      Term t = ts[i];
      if (!t.IsVariable()) {
        out += symbols.TermName(t);
        continue;
      }
      auto it = rank.find(t);
      out += it != rank.end() ? "?" + std::to_string(it->second) : "?";
    }
    out += close;
  };
  render_terms(atom.args, '(', ')');
  if (!atom.annotation.empty()) render_terms(atom.annotation, '[', ']');
  return out;
}

CanonicalForm Canonicalize(const std::vector<Rule>& rules,
                           const SymbolTable& symbols,
                           const RelationRenames* renames) {
  // Collect the variables.
  std::vector<Term> vars;
  auto note = [&vars](const Atom& a) {
    for (Term t : a.AllVars()) {
      if (std::find(vars.begin(), vars.end(), t) == vars.end()) {
        vars.push_back(t);
      }
    }
  };
  for (const Rule& r : rules) {
    for (const Literal& l : r.body) note(l.atom);
    for (const Atom& a : r.head) note(a);
  }

  // Refine variable signatures.
  std::map<Term, std::string> signature;
  for (Term v : vars) signature[v] = "";
  std::map<Term, int> rank;  // Rank shared by equal signatures.
  for (int round = 0; round < 4; ++round) {
    // Ranks from the current signatures.
    std::vector<std::string> keys;
    for (Term v : vars) keys.push_back(signature[v]);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    rank.clear();
    for (Term v : vars) {
      rank[v] = static_cast<int>(
          std::lower_bound(keys.begin(), keys.end(), signature[v]) -
          keys.begin());
    }
    if (keys.size() == vars.size()) break;  // Fully discriminated.
    // New signatures: sorted occurrence tokens.
    std::map<Term, std::vector<std::string>> tokens;
    for (size_t ri = 0; ri < rules.size(); ++ri) {
      auto scan = [&](const Atom& atom, const char* tag, bool negated) {
        std::string sig = std::to_string(ri) + "|" + tag +
                          (negated ? "!" : "") + "|" +
                          RenderAtom(atom, symbols, renames, rank) + "|";
        std::vector<Term> all = atom.AllTerms();
        for (size_t p = 0; p < all.size(); ++p) {
          if (all[p].IsVariable()) {
            tokens[all[p]].push_back(sig + std::to_string(p));
          }
        }
      };
      for (const Literal& l : rules[ri].body) scan(l.atom, "B", l.negated);
      for (const Atom& a : rules[ri].head) scan(a, "H", false);
    }
    for (Term v : vars) {
      std::vector<std::string>& ts = tokens[v];
      std::sort(ts.begin(), ts.end());
      std::string joined;
      for (const std::string& t : ts) {
        joined += t;
        joined += ';';
      }
      signature[v] = std::move(joined);
    }
  }

  // Final naming: order by (signature, occurrence order within signature
  // ties). Ties are automorphic or near-automorphic; any consistent
  // order is sound for dedup.
  std::vector<Term> ordered = vars;
  std::stable_sort(ordered.begin(), ordered.end(), [&](Term a, Term b) {
    if (signature[a] != signature[b]) return signature[a] < signature[b];
    return false;
  });
  CanonicalForm form;
  for (size_t i = 0; i < ordered.size(); ++i) {
    form.naming[ordered[i]] = static_cast<int>(i);
  }

  // Render with the final naming; bodies and heads are sets, so sort
  // their renderings.
  std::map<Term, int> final_rank = form.naming;
  for (const Rule& r : rules) {
    std::vector<std::string> body;
    for (const Literal& l : r.body) {
      body.push_back((l.negated ? std::string("!") : std::string()) +
                     RenderAtom(l.atom, symbols, renames, final_rank));
    }
    std::sort(body.begin(), body.end());
    std::vector<std::string> head;
    for (const Atom& a : r.head) {
      head.push_back(RenderAtom(a, symbols, renames, final_rank));
    }
    std::sort(head.begin(), head.end());
    for (const std::string& s : body) {
      form.text += s;
      form.text += ',';
    }
    form.text += "->";
    for (const std::string& s : head) {
      form.text += s;
      form.text += ',';
    }
    form.text += ';';
  }
  return form;
}

}  // namespace

std::string CanonicalRuleString(const Rule& rule, const SymbolTable& symbols,
                                const RelationRenames* renames) {
  return Canonicalize({rule}, symbols, renames).text;
}

std::string CanonicalRulesString(const std::vector<Rule>& rules,
                                 const SymbolTable& symbols,
                                 const RelationRenames* renames) {
  return Canonicalize(rules, symbols, renames).text;
}

Rule CanonicalizeVariables(const Rule& rule, SymbolTable* symbols) {
  CanonicalForm form = Canonicalize({rule}, *symbols, nullptr);
  Substitution rename;
  for (const auto& [var, index] : form.naming) {
    rename.Bind(var, symbols->Variable("V" + std::to_string(index)));
  }
  return rename.Apply(rule);
}

}  // namespace gerel
