#include "transform/acdom.h"

#include <string>

#include "core/check.h"
#include "core/database.h"

namespace gerel {

AcdomAxiomatization AxiomatizeAcdom(const Theory& theory,
                                    SymbolTable* symbols) {
  AcdomAxiomatization out;
  RelationId acdom = AcdomRelation(symbols);
  // Argument arities as used in Σ (annotation-free here: Def 15 applies
  // to nearly guarded theories, after any a⁻ step).
  std::unordered_map<RelationId, int> arity;
  auto note = [&arity](const Atom& a) {
    GEREL_CHECK(a.annotation.empty());
    arity.emplace(a.pred, static_cast<int>(a.args.size()));
  };
  for (const Rule& rule : theory.rules()) {
    for (const Literal& l : rule.body) note(l.atom);
    for (const Atom& h : rule.head) note(h);
  }
  // Star every relation of Σ (including acdom itself).
  for (RelationId r : theory.Relations()) {
    RelationId starred =
        symbols->Relation(symbols->RelationName(r) + "*", arity.at(r));
    out.starred.emplace(r, starred);
  }
  if (out.starred.count(acdom) == 0) {
    out.starred.emplace(acdom, symbols->Relation(
                                   std::string(kAcdomName) + "*", 1));
  }
  RelationId acdom_star = out.starred.at(acdom);

  auto star_atom = [&out](Atom a) {
    a.pred = out.starred.at(a.pred);
    return a;
  };
  for (const Rule& rule : theory.rules()) {
    Rule r;
    for (const Literal& l : rule.body) {
      r.body.emplace_back(star_atom(l.atom), l.negated);
    }
    for (const Atom& h : rule.head) r.head.push_back(star_atom(h));
    out.theory.AddRule(std::move(r));
  }
  // (a) copy rules and (b) domain rules for every non-acdom relation of Σ.
  for (RelationId r : theory.Relations()) {
    if (r == acdom) continue;
    int n = arity.at(r);
    std::vector<Term> xs;
    for (int i = 0; i < n; ++i) {
      xs.push_back(symbols->Variable("Xs" + std::to_string(i)));
    }
    Atom original(r, xs);
    out.theory.AddRule(
        Rule::Positive({original}, {Atom(out.starred.at(r), xs)}));
    for (int i = 0; i < n; ++i) {
      out.theory.AddRule(
          Rule::Positive({original}, {Atom(acdom_star, {xs[i]})}));
    }
  }
  // (c) fact rules for theory constants.
  for (Term c : theory.Constants()) {
    out.theory.AddRule(Rule({}, {Atom(acdom_star, {c})}));
  }
  return out;
}

}  // namespace gerel
