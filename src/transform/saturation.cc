#include "transform/saturation.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>

#include "core/check.h"
#include "core/classify.h"
#include "core/parallel.h"
#include "core/substitution.h"
#include "core/printer.h"
#include "transform/canonical.h"
#include <cstdlib>
#include <cstdio>

namespace gerel {

namespace {

void AppendDistinct(const std::vector<Term>& in, std::vector<Term>* out) {
  for (Term t : in) {
    if (std::find(out->begin(), out->end(), t) == out->end())
      out->push_back(t);
  }
}

bool Contains(const std::vector<Term>& v, Term t) {
  return std::find(v.begin(), v.end(), t) != v.end();
}

// Sorts and deduplicates body literals and head atoms (conjunctions are
// sets; keeping them canonical keeps the closure small).
Rule TidyRule(Rule r) {
  std::sort(r.body.begin(), r.body.end(),
            [](const Literal& a, const Literal& b) {
              if (a.negated != b.negated) return a.negated < b.negated;
              return a.atom < b.atom;
            });
  r.body.erase(std::unique(r.body.begin(), r.body.end()), r.body.end());
  std::sort(r.head.begin(), r.head.end());
  r.head.erase(std::unique(r.head.begin(), r.head.end()), r.head.end());
  return r;
}

// The parallel saturator processes the closure in rounds. Every round
// takes the rules added by the previous round (the frontier), derives
// their Figure 3 consequences against an immutable snapshot of the
// closure on the worker pool — one task per frontier rule, each emitting
// (derived rule, canonical key) pairs into a private buffer — and then
// merges the buffers single-threaded in frontier order. Workers never
// touch the symbol table (canonical keys only read it) or the shared
// closure state, and the merged stream is identical for every thread
// count, so the closure, datalog translation, and inference count are
// byte-identical to the sequential run.
class Saturator {
 public:
  Saturator(const Theory& theory, SymbolTable* symbols,
            const SaturationOptions& options)
      : symbols_(symbols), options_(options) {
    for (const Rule& r : theory.rules()) {
      Rule tidy = TidyRule(r);
      Add(tidy, CanonicalRuleString(tidy, *symbols_));
    }
    if (options_.num_threads > 1) {
      pool_ = std::make_unique<WorkerPool>(options_.num_threads);
    }
    scratch_.resize(pool_ ? pool_->num_threads() : 1);
  }

  SaturationResult Run() {
    std::vector<size_t> frontier(rules_.size());
    for (size_t i = 0; i < frontier.size(); ++i) frontier[i] = i;
    uint64_t round = 0;
    ExecutionBudget* budget = options_.budget;
    const FaultPlan* fault = budget != nullptr ? budget->fault_plan() : nullptr;
    while (!frontier.empty() && result_.complete) {
      ++round;
      if (budget != nullptr &&
          !budget->CheckRound(GovernedStage::kSaturation, round,
                              rules_.size())) {
        result_.complete = false;
        break;
      }
      size_t snapshot = rules_.size();
      buffers_.clear();
      buffers_.resize(frontier.size());
      auto work = [&](size_t task, size_t lane) {
        // Workers observe the shared exhaustion flag between units; a
        // skipped unit marks its buffer overflowed so the merge records
        // the closure as incomplete.
        if (budget != nullptr && budget->ExhaustedFast()) {
          buffers_[task].overflow = true;
          return;
        }
        MaybeInjectWorkerDelay(fault, task);
        Derive(frontier[task], snapshot, &scratch_[lane], &buffers_[task]);
      };
      if (pool_) {
        pool_->RunIndexed(frontier.size(), work);
      } else {
        for (size_t t = 0; t < frontier.size(); ++t) work(t, 0);
      }
      // Deterministic merge: buffers in frontier order, emissions in
      // derivation order. A buffer that hit the body/head caps marks the
      // result incomplete at the position the sequential run would.
      size_t first_new = rules_.size();
      for (EmitBuffer& buf : buffers_) {
        for (auto& [rule, key] : buf.rules) {
          ++result_.inferences;
          Add(rule, key);
          if (!result_.complete) break;
        }
        if (buf.overflow) result_.complete = false;
        if (!result_.complete) break;
      }
      frontier.clear();
      for (size_t i = first_new; i < rules_.size(); ++i)
        frontier.push_back(i);
    }
    if (!result_.complete) {
      if (budget != nullptr && budget->exhausted()) {
        result_.degradation = budget->reason();
      } else {
        result_.degradation.stage = GovernedStage::kSaturation;
        result_.degradation.limit = BudgetLimit::kRules;
        result_.degradation.round = round;
      }
    }
    for (const Rule& r : rules_) {
      result_.closure.AddRule(r);
      if (r.EVars().empty()) result_.datalog.AddRule(r);
    }
    return std::move(result_);
  }

 private:
  // Derived rules of one frontier item, with precomputed canonical keys.
  struct EmitBuffer {
    std::vector<std::pair<Rule, std::string>> rules;
    // A derived rule exceeded max_body_atoms/max_head_atoms (or the
    // emission bound): derivation for this item stopped early and the
    // closure must be marked incomplete.
    bool overflow = false;
  };
  // Per-lane unification scratch (the sequential saturator kept these as
  // members; one instance per pool lane keeps workers allocation-warm
  // and independent).
  struct Scratch {
    std::vector<Atom> gamma1, gamma2;
    std::vector<Term> gamma1_vars;
    std::vector<Term> unbound, alpha_dom;
    std::map<Term, Term> bindings;
    std::vector<Term> trail;
  };

  // Emits every Figure 3 consequence of rules_[idx] paired against the
  // closure prefix [0, snapshot). Pure reader of shared state.
  void Derive(size_t idx, size_t snapshot, Scratch* s,
              EmitBuffer* out) const {
    const Rule& current = rules_[idx];
    if (options_.enable_projection) Project(current, out);
    if (options_.enable_renaming) Rename(current, out);
    if (!options_.enable_composition || out->overflow) return;
    // Compositions. Only *existential* left premises are composed: a
    // composition whose left premise is Datalog is an ordinary resolution
    // step that bottom-up evaluation of dat(Σ) performs anyway, whereas
    // inference through labeled nulls must be compiled into the
    // existential heads here (the paper's own σ6–σ12 derivation in
    // Example 7 uses exclusively existential left premises).
    bool idx_existential = existential_[idx];
    for (size_t j = 0; j < snapshot && !out->overflow; ++j) {
      if (existential_[j] == idx_existential) continue;
      if (idx_existential) {
        Compose(idx, j, s, out);
      } else {
        Compose(j, idx, s, out);
      }
    }
  }

  void Emit(Rule rule, EmitBuffer* out) const {
    // Bound a single item's emissions: past max_rules the merge is
    // certain to mark the closure incomplete, so stop deriving.
    if (out->rules.size() > options_.max_rules) {
      out->overflow = true;
      return;
    }
    // Amortized deadline/cancel check inside (possibly explosive)
    // derivation; an exhausted unit stops and reports overflow.
    if (options_.budget != nullptr &&
        !options_.budget->CheckPoint(GovernedStage::kSaturation)) {
      out->overflow = true;
      return;
    }
    std::string key = CanonicalRuleString(rule, *symbols_);
    out->rules.emplace_back(std::move(rule), std::move(key));
  }

  // (projection): α → β ∧ A ⟹ α → A for universal A.
  void Project(const Rule& rule, EmitBuffer* out) const {
    if (rule.head.size() <= 1) return;
    std::vector<Term> evars = rule.EVars();
    for (const Atom& a : rule.head) {
      if (out->overflow) return;
      bool universal = true;
      for (Term v : a.AllVars()) {
        if (Contains(evars, v)) {
          universal = false;
          break;
        }
      }
      if (universal) Emit(TidyRule(Rule(rule.body, {a})), out);
    }
  }

  // (renaming): g(α) → g(β) for total g : vars(α) → vars(α). Idempotent
  // merges (restricted-growth partitions) are enumerated; every other g
  // is a variable renaming of one of them, which canonical dedup absorbs.
  void Rename(const Rule& rule, EmitBuffer* out) const {
    std::vector<Term> vars = rule.UVars();
    if (vars.size() <= 1) return;
    std::vector<int> rep(vars.size(), -1);
    std::function<void(size_t)> rec = [&](size_t i) {
      if (out->overflow) return;
      if (i == vars.size()) {
        Substitution g;
        bool nontrivial = false;
        for (size_t j = 0; j < vars.size(); ++j) {
          if (rep[j] != static_cast<int>(j)) nontrivial = true;
          g.Bind(vars[j], vars[rep[j]]);
        }
        if (nontrivial) Emit(TidyRule(g.Apply(rule)), out);
        return;
      }
      for (size_t r = 0; r <= i; ++r) {
        if (r < i && rep[r] != static_cast<int>(r)) continue;  // Reps only.
        rep[i] = static_cast<int>(r == i ? i : r);
        rec(i + 1);
      }
    };
    rec(0);
  }

  // (composition): left = α → ∃ȳ.β, right = Datalog γ → δ. For every
  // split γ = γ1 ⊎ γ2 with γ2 ≠ ∅ and every unifier θ of γ2 with atoms
  // of β: derive θ(α) ∧ θ(γ1) → θ(β) ∧ θ(δ). The unifier may
  // specialize the *universal* variables of the left premise — binding
  // them to constants or merging them — but never its existentials (a
  // labeled null is not equal to any constant or frontier term). Plain
  // homomorphisms γ2 → β are the special case where θ fixes every left
  // variable; the specializing unifiers matter for (partially) grounded
  // theories, whose Datalog rules carry constants that must bind β's
  // universal variables for the resolution chain to go through.
  // Premises are addressed by rule index so their cached derived data
  // (uvars/evars, the renamed-apart right premise and its positive
  // body) is reused across the quadratically many pairings.
  void Compose(size_t left_idx, size_t right_idx, Scratch* s,
               EmitBuffer* out) const {
    const std::vector<Atom>& gamma = gamma_[right_idx];
    if (gamma.empty()) return;  // Fact rules compose trivially.

    size_t subsets = size_t{1} << gamma.size();
    for (size_t mask = 1; mask < subsets && !out->overflow; ++mask) {
      s->gamma1.clear();
      s->gamma2.clear();
      for (size_t i = 0; i < gamma.size(); ++i) {
        ((mask >> i) & 1 ? s->gamma2 : s->gamma1).push_back(gamma[i]);
      }
      s->gamma1_vars.clear();
      for (const Atom& a : s->gamma1) {
        AppendDistinct(a.AllVars(), &s->gamma1_vars);
      }
      s->bindings.clear();
      s->trail.clear();
      MatchGamma2(0, left_idx, right_idx, s, out);
    }
  }

  // Follows binding chains to the representative term. Chains are
  // acyclic: a variable is only ever bound to the representative of a
  // term whose chain does not pass through it.
  static Term Resolve(const Scratch& s, Term t) {
    while (t.IsVariable()) {
      auto it = s.bindings.find(t);
      if (it == s.bindings.end()) break;
      t = it->second;
    }
    return t;
  }

  static void BindVar(Scratch* s, Term v, Term t) {
    s->bindings[v] = t;
    s->trail.push_back(v);
  }

  static void UndoTo(Scratch* s, size_t mark) {
    while (s->trail.size() > mark) {
      s->bindings.erase(s->trail.back());
      s->trail.pop_back();
    }
  }

  // Unifies a γ2 term with a β term under the composition orientation:
  // the right premise's renamed-apart variables bind to anything, the
  // left premise's universal variables bind to constants or to each
  // other, its existential variables are rigid.
  static bool Unify(Scratch* s, Term a, Term b,
                    const std::vector<Term>& alpha_vars,
                    const std::vector<Term>& evars) {
    a = Resolve(*s, a);
    b = Resolve(*s, b);
    if (a == b) return true;
    // Right-premise variables: not the left rule's, by rename-apart.
    if (a.IsVariable() && !Contains(alpha_vars, a) && !Contains(evars, a)) {
      BindVar(s, a, b);
      return true;
    }
    if (b.IsVariable() && !Contains(alpha_vars, b) && !Contains(evars, b)) {
      BindVar(s, b, a);
      return true;
    }
    if (Contains(evars, a) || Contains(evars, b)) return false;
    if (a.IsVariable()) {  // Universal of the left premise.
      BindVar(s, a, b);
      return true;
    }
    if (b.IsVariable()) {
      BindVar(s, b, a);
      return true;
    }
    return false;  // Distinct constants.
  }

  // Matches γ2[gi..] against head atoms of the left premise (several γ2
  // atoms may share a head atom), emitting a composition per complete
  // unifier.
  void MatchGamma2(size_t gi, size_t left_idx, size_t right_idx, Scratch* s,
                   EmitBuffer* out) const {
    if (out->overflow) return;
    if (gi == s->gamma2.size()) {
      EmitMatches(left_idx, right_idx, s, out);
      return;
    }
    const Atom& g = s->gamma2[gi];
    const Rule& left = rules_[left_idx];
    for (const Atom& h : left.head) {
      if (h.pred != g.pred || h.args.size() != g.args.size()) continue;
      size_t mark = s->trail.size();
      bool ok = true;
      for (size_t k = 0; k < g.args.size() && ok; ++k) {
        ok = Unify(s, g.args[k], h.args[k], uvars_[left_idx],
                   evars_[left_idx]);
      }
      if (ok) MatchGamma2(gi + 1, left_idx, right_idx, s, out);
      UndoTo(s, mark);
      if (out->overflow) return;
    }
  }

  // One full unifier of γ2 into β is on the binding map: check the
  // γ1-side conditions, enumerate still-free γ1 variables over the
  // specialized α domain, and emit the derived rules.
  void EmitMatches(size_t left_idx, size_t right_idx, Scratch* s,
                   EmitBuffer* out) const {
    const Rule& left = rules_[left_idx];
    const Rule& right = renamed_[right_idx];
    const std::vector<Term>& alpha_vars = uvars_[left_idx];
    const std::vector<Term>& evars = evars_[left_idx];
    // The specialized α domain: resolved images of vars(α).
    s->alpha_dom.clear();
    for (Term v : alpha_vars) {
      Term r = Resolve(*s, v);
      if (!Contains(s->alpha_dom, r)) s->alpha_dom.push_back(r);
    }
    // Bound γ1/δ variables must not resolve onto β's existential
    // variables; unresolved ones are enumerated into the α domain so
    // θ(γ1) stays guarded by θ(α).
    s->unbound.clear();
    for (Term v : s->gamma1_vars) {
      Term r = Resolve(*s, v);
      if (!r.IsVariable()) continue;
      if (Contains(evars, r)) return;  // Mapped onto an existential of β.
      if (!Contains(alpha_vars, r) && !Contains(s->unbound, r)) {
        s->unbound.push_back(r);
      }
    }
    if (!s->unbound.empty() && s->alpha_dom.empty()) return;
    std::vector<size_t> pick(s->unbound.size(), 0);
    while (true) {
      size_t mark = s->trail.size();
      for (size_t i = 0; i < s->unbound.size(); ++i) {
        BindVar(s, s->unbound[i], s->alpha_dom[pick[i]]);
      }
      Substitution sub;
      for (Term v : alpha_vars) {
        Term r = Resolve(*s, v);
        if (r != v) sub.Bind(v, r);
      }
      for (Term v : rvars_[right_idx]) {
        Term r = Resolve(*s, v);
        if (r != v) sub.Bind(v, r);
      }
      UndoTo(s, mark);
      EmitComposition(left, right, s->gamma1, sub, out);
      if (out->overflow) return;
      // Advance the mixed-radix counter.
      size_t i = 0;
      for (; i < pick.size(); ++i) {
        if (++pick[i] < s->alpha_dom.size()) break;
        pick[i] = 0;
      }
      if (i == pick.size()) break;
    }
  }

  void EmitComposition(const Rule& left, const Rule& right,
                       const std::vector<Atom>& gamma1,
                       const Substitution& h, EmitBuffer* out) const {
    Rule spec = h.Apply(left);  // θ may specialize the left premise.
    Rule derived;
    derived.body = std::move(spec.body);
    for (const Atom& a : gamma1) {
      derived.body.emplace_back(h.Apply(a), /*negated=*/false);
    }
    derived.head = std::move(spec.head);
    bool head_grew = false;
    for (const Atom& a : right.head) {
      Atom img = h.Apply(a);
      if (std::find(derived.head.begin(), derived.head.end(), img) ==
          derived.head.end()) {
        head_grew = true;
      }
      derived.head.push_back(std::move(img));
    }
    // Without a new head atom, the derived rule has the same head and a
    // superset body: subsumed by the left premise.
    if (!head_grew) return;
    derived = TidyRule(std::move(derived));
    if (derived.body.size() > options_.max_body_atoms ||
        derived.head.size() > options_.max_head_atoms) {
      out->overflow = true;
      return;
    }
    if (getenv("GEREL_SAT_DEBUG") != nullptr) {
      fprintf(stderr, "compose\n  left: %s\n  right: %s\n  => %s\n",
              ToString(left, *symbols_).c_str(),
              ToString(right, *symbols_).c_str(),
              ToString(derived, *symbols_).c_str());
    }
    Emit(std::move(derived), out);
  }

  Term CompositionVar(size_t i) {
    while (composition_vars_.size() <= i) {
      composition_vars_.push_back(symbols_->Variable(
          "Cmp#" + std::to_string(composition_vars_.size())));
    }
    return composition_vars_[i];
  }

  // Adds a (tidied) rule under its canonical key. Merge-phase only: the
  // per-rule caches and the symbol table (CompositionVar) are mutated
  // here, never by workers.
  void Add(const Rule& rule, const std::string& key) {
    if (rules_.size() >= options_.max_rules) {
      result_.complete = false;
      return;
    }
    if (!seen_.insert(key).second) return;
    rules_.push_back(rule);
    std::vector<Term> ev = rule.EVars();
    bool ex = !ev.empty();
    existential_.push_back(ex);
    uvars_.push_back(rule.UVars());
    evars_.push_back(std::move(ev));
    // Precompute the right-premise role: the rule renamed apart with the
    // reserved composition variables, and its positive body γ. Only
    // Datalog rules ever stand on the right of (composition).
    Rule renamed;
    std::vector<Term> rv;
    if (!ex) {
      Substitution apart;
      std::vector<Term> rvars = rule.Vars();
      for (size_t i = 0; i < rvars.size(); ++i) {
        apart.Bind(rvars[i], CompositionVar(i));
        rv.push_back(CompositionVar(i));
      }
      renamed = apart.Apply(rule);
    }
    gamma_.push_back(renamed.PositiveBody());
    renamed_.push_back(std::move(renamed));
    rvars_.push_back(std::move(rv));
  }

  SymbolTable* symbols_;
  SaturationOptions options_;
  // Deques: Derive holds references across the merge phase's Add()s.
  std::deque<Rule> rules_;
  // Per-rule data cached at Add time (EVars()/UVars() recomputation and
  // the per-pairing rename-apart dominated the composition loop in the
  // seed).
  std::vector<bool> existential_;
  std::deque<std::vector<Term>> uvars_;
  std::deque<std::vector<Term>> evars_;
  std::deque<Rule> renamed_;
  std::deque<std::vector<Atom>> gamma_;
  std::deque<std::vector<Term>> rvars_;
  std::unordered_set<std::string> seen_;
  std::vector<Term> composition_vars_;
  SaturationResult result_;
  std::unique_ptr<WorkerPool> pool_;  // Null when num_threads <= 1.
  std::vector<Scratch> scratch_;      // One per pool lane.
  std::vector<EmitBuffer> buffers_;   // One per frontier item, per round.
};

}  // namespace

Result<SaturationResult> Saturate(const Theory& guarded_theory,
                                  SymbolTable* symbols,
                                  const SaturationOptions& options) {
  if (guarded_theory.HasNegation()) {
    return Status::Error("saturation requires a negation-free theory");
  }
  if (!Classify(guarded_theory).guarded) {
    return Status::Error("saturation requires a guarded theory (Def 19)");
  }
  Saturator saturator(guarded_theory, symbols, options);
  return saturator.Run();
}

Result<DatalogTranslation> NearlyGuardedToDatalog(
    const Theory& nearly_guarded, SymbolTable* symbols,
    const SaturationOptions& options) {
  PositionSet affected = AffectedPositions(nearly_guarded);
  Theory guarded_part, datalog_part;
  for (const Rule& rule : nearly_guarded.rules()) {
    if (IsGuardedRule(rule)) {
      guarded_part.AddRule(rule);
    } else if (UnsafeVars(rule, affected).empty() && rule.EVars().empty()) {
      datalog_part.AddRule(rule);
    } else {
      return Status::Error("theory is not nearly guarded (Def 3 fails)");
    }
  }
  Result<SaturationResult> sat = Saturate(guarded_part, symbols, options);
  if (!sat.ok()) return sat.status();
  DatalogTranslation out;
  out.complete = sat.value().complete;
  out.degradation = sat.value().degradation;
  out.datalog = std::move(sat.value().datalog);
  for (const Rule& r : datalog_part.rules()) out.datalog.AddRule(r);
  return out;
}

}  // namespace gerel
