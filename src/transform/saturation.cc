#include "transform/saturation.h"

#include <algorithm>
#include <deque>
#include <string>
#include <unordered_set>

#include "core/check.h"
#include "core/classify.h"
#include "core/join_plan.h"
#include "core/substitution.h"
#include "core/printer.h"
#include "transform/canonical.h"
#include <cstdlib>
#include <cstdio>

namespace gerel {

namespace {

void AppendDistinct(const std::vector<Term>& in, std::vector<Term>* out) {
  for (Term t : in) {
    if (std::find(out->begin(), out->end(), t) == out->end())
      out->push_back(t);
  }
}

bool Contains(const std::vector<Term>& v, Term t) {
  return std::find(v.begin(), v.end(), t) != v.end();
}

// Sorts and deduplicates body literals and head atoms (conjunctions are
// sets; keeping them canonical keeps the closure small).
Rule TidyRule(Rule r) {
  std::sort(r.body.begin(), r.body.end(),
            [](const Literal& a, const Literal& b) {
              if (a.negated != b.negated) return a.negated < b.negated;
              return a.atom < b.atom;
            });
  r.body.erase(std::unique(r.body.begin(), r.body.end()), r.body.end());
  std::sort(r.head.begin(), r.head.end());
  r.head.erase(std::unique(r.head.begin(), r.head.end()), r.head.end());
  return r;
}

class Saturator {
 public:
  Saturator(const Theory& theory, SymbolTable* symbols,
            const SaturationOptions& options)
      : symbols_(symbols), options_(options) {
    for (const Rule& r : theory.rules()) Add(TidyRule(r));
  }

  SaturationResult Run() {
    while (!worklist_.empty() && result_.complete) {
      size_t i = worklist_.front();
      worklist_.pop_front();
      Process(i);
    }
    for (const Rule& r : rules_) {
      result_.closure.AddRule(r);
      if (r.EVars().empty()) result_.datalog.AddRule(r);
    }
    return std::move(result_);
  }

 private:
  void Process(size_t idx) {
    // rules_ is a deque: Add() never invalidates references to elements.
    const Rule& current = rules_[idx];
    if (options_.enable_projection) Project(current);
    if (options_.enable_renaming) Rename(current);
    if (!options_.enable_composition) return;
    // Compositions. Only *existential* left premises are composed: a
    // composition whose left premise is Datalog is an ordinary resolution
    // step that bottom-up evaluation of dat(Σ) performs anyway, whereas
    // inference through labeled nulls must be compiled into the
    // existential heads here (the paper's own σ6–σ12 derivation in
    // Example 7 uses exclusively existential left premises).
    size_t n = rules_.size();
    bool idx_existential = existential_[idx];
    for (size_t j = 0; j < n && result_.complete; ++j) {
      if (existential_[j] == idx_existential) continue;
      if (idx_existential) {
        Compose(idx, j);
      } else {
        Compose(j, idx);
      }
    }
  }

  // (projection): α → β ∧ A ⟹ α → A for universal A.
  void Project(const Rule& rule) {
    if (rule.head.size() <= 1) return;
    std::vector<Term> evars = rule.EVars();
    for (const Atom& a : rule.head) {
      bool universal = true;
      for (Term v : a.AllVars()) {
        if (Contains(evars, v)) {
          universal = false;
          break;
        }
      }
      if (universal) {
        ++result_.inferences;
        Add(TidyRule(Rule(rule.body, {a})));
      }
    }
  }

  // (renaming): g(α) → g(β) for total g : vars(α) → vars(α). Idempotent
  // merges (restricted-growth partitions) are enumerated; every other g
  // is a variable renaming of one of them, which canonical dedup absorbs.
  void Rename(const Rule& rule) {
    std::vector<Term> vars = rule.UVars();
    if (vars.size() <= 1) return;
    std::vector<int> rep(vars.size(), -1);
    std::function<void(size_t)> rec = [&](size_t i) {
      if (!result_.complete) return;
      if (i == vars.size()) {
        Substitution g;
        bool nontrivial = false;
        for (size_t j = 0; j < vars.size(); ++j) {
          if (rep[j] != static_cast<int>(j)) nontrivial = true;
          g.Bind(vars[j], vars[rep[j]]);
        }
        if (nontrivial) {
          ++result_.inferences;
          Add(TidyRule(g.Apply(rule)));
        }
        return;
      }
      for (size_t r = 0; r <= i; ++r) {
        if (r < i && rep[r] != static_cast<int>(r)) continue;  // Reps only.
        rep[i] = static_cast<int>(r == i ? i : r);
        rec(i + 1);
      }
    };
    rec(0);
  }

  // (composition): left = α → β, right = Datalog γ → δ. For every split
  // γ = γ1 ⊎ γ2 with γ2 ≠ ∅, every homomorphism h : γ2 → β whose
  // extension maps vars(γ1) into vars(α): derive α ∧ h(γ1) → β ∧ h(δ).
  // Premises are addressed by rule index so their cached derived data
  // (uvars, the renamed-apart right premise and its positive body) is
  // reused across the quadratically many pairings.
  void Compose(size_t left_idx, size_t right_idx) {
    const Rule& left = rules_[left_idx];
    const Rule& right = renamed_[right_idx];
    const std::vector<Atom>& gamma = gamma_[right_idx];
    if (gamma.empty()) return;  // Fact rules compose trivially.
    const std::vector<Term>& alpha_vars = uvars_[left_idx];

    size_t subsets = size_t{1} << gamma.size();
    for (size_t mask = 1; mask < subsets; ++mask) {
      gamma1_.clear();
      gamma2_.clear();
      for (size_t i = 0; i < gamma.size(); ++i) {
        ((mask >> i) & 1 ? gamma2_ : gamma1_).push_back(gamma[i]);
      }
      gamma1_vars_.clear();
      for (const Atom& a : gamma1_) {
        AppendDistinct(a.AllVars(), &gamma1_vars_);
      }
      // One plan/executor pair lives across all pairings: Recompile and
      // Reset reuse their buffers, so a subset split costs no allocation
      // in steady state.
      plan_.Recompile(gamma2_);
      exec_.Reset(plan_);
      exec_.ExecuteOnAtoms(plan_, left.head, [&](const JoinExecutor& e) {
        // Bound γ1/δ variables must not map onto β's existential
        // variables and must land in vars(α) when they occur in γ1.
        // γ2's variables are reserved Cmp# names that never occur in
        // left.head, so Value(v) == v exactly when v is unbound.
        unbound_.clear();
        for (Term v : gamma1_vars_) {
          Term img = e.Value(v);
          if (img == v) {
            unbound_.push_back(v);
          } else if (img.IsVariable() && !Contains(alpha_vars, img)) {
            return true;  // Mapped onto an existential of β.
          }
        }
        // Enumerate assignments of the unbound γ1 variables into
        // vars(α).
        if (!unbound_.empty() && alpha_vars.empty()) return true;
        Substitution h0;
        e.AppendBindings(&h0);
        std::vector<size_t> pick(unbound_.size(), 0);
        while (true) {
          Substitution h = h0;
          for (size_t i = 0; i < unbound_.size(); ++i) {
            h.Bind(unbound_[i], alpha_vars[pick[i]]);
          }
          EmitComposition(left, right, gamma1_, h);
          if (!result_.complete) return false;
          // Advance the mixed-radix counter.
          size_t i = 0;
          for (; i < pick.size(); ++i) {
            if (++pick[i] < alpha_vars.size()) break;
            pick[i] = 0;
          }
          if (i == pick.size()) break;
          if (pick.empty()) break;
        }
        return result_.complete;
      });
      if (!result_.complete) return;
    }
  }

  void EmitComposition(const Rule& left, const Rule& right,
                       const std::vector<Atom>& gamma1,
                       const Substitution& h) {
    Rule derived;
    derived.body = left.body;
    for (const Atom& a : gamma1) {
      derived.body.emplace_back(h.Apply(a), /*negated=*/false);
    }
    derived.head = left.head;
    bool head_grew = false;
    for (const Atom& a : right.head) {
      Atom img = h.Apply(a);
      if (std::find(derived.head.begin(), derived.head.end(), img) ==
          derived.head.end()) {
        head_grew = true;
      }
      derived.head.push_back(std::move(img));
    }
    // Without a new head atom, the derived rule has the same head and a
    // superset body: subsumed by the left premise.
    if (!head_grew) return;
    derived = TidyRule(std::move(derived));
    if (derived.body.size() > options_.max_body_atoms ||
        derived.head.size() > options_.max_head_atoms) {
      result_.complete = false;
      return;
    }
    if (getenv("GEREL_SAT_DEBUG") != nullptr) {
      fprintf(stderr, "compose\n  left: %s\n  right: %s\n  => %s\n",
              ToString(left, *symbols_).c_str(),
              ToString(right, *symbols_).c_str(),
              ToString(derived, *symbols_).c_str());
    }
    ++result_.inferences;
    Add(derived);
  }

  Term CompositionVar(size_t i) {
    while (composition_vars_.size() <= i) {
      composition_vars_.push_back(symbols_->Variable(
          "Cmp#" + std::to_string(composition_vars_.size())));
    }
    return composition_vars_[i];
  }

  void Add(const Rule& rule) {
    if (rules_.size() >= options_.max_rules) {
      result_.complete = false;
      return;
    }
    std::string key = CanonicalRuleString(rule, *symbols_);
    if (!seen_.insert(key).second) return;
    rules_.push_back(rule);
    bool ex = !rule.EVars().empty();
    existential_.push_back(ex);
    uvars_.push_back(rule.UVars());
    // Precompute the right-premise role: the rule renamed apart with the
    // reserved composition variables, and its positive body γ. Only
    // Datalog rules ever stand on the right of (composition).
    Rule renamed;
    if (!ex) {
      Substitution apart;
      std::vector<Term> rvars = rule.Vars();
      for (size_t i = 0; i < rvars.size(); ++i) {
        apart.Bind(rvars[i], CompositionVar(i));
      }
      renamed = apart.Apply(rule);
    }
    gamma_.push_back(renamed.PositiveBody());
    renamed_.push_back(std::move(renamed));
    worklist_.push_back(rules_.size() - 1);
  }

  SymbolTable* symbols_;
  SaturationOptions options_;
  // Deques: Process and Compose hold references across Add() calls.
  std::deque<Rule> rules_;
  // Per-rule data cached at Add time (EVars()/UVars() recomputation and
  // the per-pairing rename-apart dominated the composition loop in the
  // seed).
  std::vector<bool> existential_;
  std::deque<std::vector<Term>> uvars_;
  std::deque<Rule> renamed_;
  std::deque<std::vector<Atom>> gamma_;
  std::unordered_set<std::string> seen_;
  std::deque<size_t> worklist_;
  std::vector<Term> composition_vars_;
  SaturationResult result_;
  // Compose scratch, reused across pairings and subset splits.
  JoinPlan plan_;
  JoinExecutor exec_;
  std::vector<Atom> gamma1_, gamma2_;
  std::vector<Term> gamma1_vars_;
  std::vector<Term> unbound_;
};

}  // namespace

Result<SaturationResult> Saturate(const Theory& guarded_theory,
                                  SymbolTable* symbols,
                                  const SaturationOptions& options) {
  if (guarded_theory.HasNegation()) {
    return Status::Error("saturation requires a negation-free theory");
  }
  if (!Classify(guarded_theory).guarded) {
    return Status::Error("saturation requires a guarded theory (Def 19)");
  }
  Saturator saturator(guarded_theory, symbols, options);
  return saturator.Run();
}

Result<DatalogTranslation> NearlyGuardedToDatalog(
    const Theory& nearly_guarded, SymbolTable* symbols,
    const SaturationOptions& options) {
  PositionSet affected = AffectedPositions(nearly_guarded);
  Theory guarded_part, datalog_part;
  for (const Rule& rule : nearly_guarded.rules()) {
    if (IsGuardedRule(rule)) {
      guarded_part.AddRule(rule);
    } else if (UnsafeVars(rule, affected).empty() && rule.EVars().empty()) {
      datalog_part.AddRule(rule);
    } else {
      return Status::Error("theory is not nearly guarded (Def 3 fails)");
    }
  }
  Result<SaturationResult> sat = Saturate(guarded_part, symbols, options);
  if (!sat.ok()) return sat.status();
  DatalogTranslation out;
  out.complete = sat.value().complete;
  out.datalog = std::move(sat.value().datalog);
  for (const Rule& r : datalog_part.rules()) out.datalog.AddRule(r);
  return out;
}

}  // namespace gerel
