#include "transform/saturation.h"

#include <algorithm>
#include <deque>
#include <map>
#include <string>
#include <unordered_set>

#include "core/check.h"
#include "core/classify.h"
#include "core/substitution.h"
#include "core/printer.h"
#include "transform/canonical.h"
#include <cstdlib>
#include <cstdio>

namespace gerel {

namespace {

void AppendDistinct(const std::vector<Term>& in, std::vector<Term>* out) {
  for (Term t : in) {
    if (std::find(out->begin(), out->end(), t) == out->end())
      out->push_back(t);
  }
}

bool Contains(const std::vector<Term>& v, Term t) {
  return std::find(v.begin(), v.end(), t) != v.end();
}

// Sorts and deduplicates body literals and head atoms (conjunctions are
// sets; keeping them canonical keeps the closure small).
Rule TidyRule(Rule r) {
  std::sort(r.body.begin(), r.body.end(),
            [](const Literal& a, const Literal& b) {
              if (a.negated != b.negated) return a.negated < b.negated;
              return a.atom < b.atom;
            });
  r.body.erase(std::unique(r.body.begin(), r.body.end()), r.body.end());
  std::sort(r.head.begin(), r.head.end());
  r.head.erase(std::unique(r.head.begin(), r.head.end()), r.head.end());
  return r;
}

class Saturator {
 public:
  Saturator(const Theory& theory, SymbolTable* symbols,
            const SaturationOptions& options)
      : symbols_(symbols), options_(options) {
    for (const Rule& r : theory.rules()) Add(TidyRule(r));
  }

  SaturationResult Run() {
    while (!worklist_.empty() && result_.complete) {
      size_t i = worklist_.front();
      worklist_.pop_front();
      Process(i);
    }
    for (const Rule& r : rules_) {
      result_.closure.AddRule(r);
      if (r.EVars().empty()) result_.datalog.AddRule(r);
    }
    return std::move(result_);
  }

 private:
  void Process(size_t idx) {
    // rules_ is a deque: Add() never invalidates references to elements.
    const Rule& current = rules_[idx];
    if (options_.enable_projection) Project(current);
    if (options_.enable_renaming) Rename(current);
    if (!options_.enable_composition) return;
    // Compositions. Only *existential* left premises are composed: a
    // composition whose left premise is Datalog is an ordinary resolution
    // step that bottom-up evaluation of dat(Σ) performs anyway, whereas
    // inference through labeled nulls must be compiled into the
    // existential heads here (the paper's own σ6–σ12 derivation in
    // Example 7 uses exclusively existential left premises).
    size_t n = rules_.size();
    bool idx_existential = existential_[idx];
    for (size_t j = 0; j < n && result_.complete; ++j) {
      if (existential_[j] == idx_existential) continue;
      if (idx_existential) {
        Compose(idx, j);
      } else {
        Compose(j, idx);
      }
    }
  }

  // (projection): α → β ∧ A ⟹ α → A for universal A.
  void Project(const Rule& rule) {
    if (rule.head.size() <= 1) return;
    std::vector<Term> evars = rule.EVars();
    for (const Atom& a : rule.head) {
      bool universal = true;
      for (Term v : a.AllVars()) {
        if (Contains(evars, v)) {
          universal = false;
          break;
        }
      }
      if (universal) {
        ++result_.inferences;
        Add(TidyRule(Rule(rule.body, {a})));
      }
    }
  }

  // (renaming): g(α) → g(β) for total g : vars(α) → vars(α). Idempotent
  // merges (restricted-growth partitions) are enumerated; every other g
  // is a variable renaming of one of them, which canonical dedup absorbs.
  void Rename(const Rule& rule) {
    std::vector<Term> vars = rule.UVars();
    if (vars.size() <= 1) return;
    std::vector<int> rep(vars.size(), -1);
    std::function<void(size_t)> rec = [&](size_t i) {
      if (!result_.complete) return;
      if (i == vars.size()) {
        Substitution g;
        bool nontrivial = false;
        for (size_t j = 0; j < vars.size(); ++j) {
          if (rep[j] != static_cast<int>(j)) nontrivial = true;
          g.Bind(vars[j], vars[rep[j]]);
        }
        if (nontrivial) {
          ++result_.inferences;
          Add(TidyRule(g.Apply(rule)));
        }
        return;
      }
      for (size_t r = 0; r <= i; ++r) {
        if (r < i && rep[r] != static_cast<int>(r)) continue;  // Reps only.
        rep[i] = static_cast<int>(r == i ? i : r);
        rec(i + 1);
      }
    };
    rec(0);
  }

  // (composition): left = α → ∃ȳ.β, right = Datalog γ → δ. For every
  // split γ = γ1 ⊎ γ2 with γ2 ≠ ∅ and every unifier θ of γ2 with atoms
  // of β: derive θ(α) ∧ θ(γ1) → θ(β) ∧ θ(δ). The unifier may
  // specialize the *universal* variables of the left premise — binding
  // them to constants or merging them — but never its existentials (a
  // labeled null is not equal to any constant or frontier term). Plain
  // homomorphisms γ2 → β are the special case where θ fixes every left
  // variable; the specializing unifiers matter for (partially) grounded
  // theories, whose Datalog rules carry constants that must bind β's
  // universal variables for the resolution chain to go through.
  // Premises are addressed by rule index so their cached derived data
  // (uvars/evars, the renamed-apart right premise and its positive
  // body) is reused across the quadratically many pairings.
  void Compose(size_t left_idx, size_t right_idx) {
    const std::vector<Atom>& gamma = gamma_[right_idx];
    if (gamma.empty()) return;  // Fact rules compose trivially.

    size_t subsets = size_t{1} << gamma.size();
    for (size_t mask = 1; mask < subsets && result_.complete; ++mask) {
      gamma1_.clear();
      gamma2_.clear();
      for (size_t i = 0; i < gamma.size(); ++i) {
        ((mask >> i) & 1 ? gamma2_ : gamma1_).push_back(gamma[i]);
      }
      gamma1_vars_.clear();
      for (const Atom& a : gamma1_) {
        AppendDistinct(a.AllVars(), &gamma1_vars_);
      }
      bindings_.clear();
      trail_.clear();
      MatchGamma2(0, left_idx, right_idx);
    }
  }

  // Follows binding chains to the representative term. Chains are
  // acyclic: a variable is only ever bound to the representative of a
  // term whose chain does not pass through it.
  Term Resolve(Term t) const {
    while (t.IsVariable()) {
      auto it = bindings_.find(t);
      if (it == bindings_.end()) break;
      t = it->second;
    }
    return t;
  }

  void BindVar(Term v, Term t) {
    bindings_[v] = t;
    trail_.push_back(v);
  }

  void UndoTo(size_t mark) {
    while (trail_.size() > mark) {
      bindings_.erase(trail_.back());
      trail_.pop_back();
    }
  }

  // Unifies a γ2 term with a β term under the composition orientation:
  // the right premise's renamed-apart variables bind to anything, the
  // left premise's universal variables bind to constants or to each
  // other, its existential variables are rigid.
  bool Unify(Term a, Term b, const std::vector<Term>& alpha_vars,
             const std::vector<Term>& evars) {
    a = Resolve(a);
    b = Resolve(b);
    if (a == b) return true;
    // Right-premise variables: not the left rule's, by rename-apart.
    if (a.IsVariable() && !Contains(alpha_vars, a) && !Contains(evars, a)) {
      BindVar(a, b);
      return true;
    }
    if (b.IsVariable() && !Contains(alpha_vars, b) && !Contains(evars, b)) {
      BindVar(b, a);
      return true;
    }
    if (Contains(evars, a) || Contains(evars, b)) return false;
    if (a.IsVariable()) {  // Universal of the left premise.
      BindVar(a, b);
      return true;
    }
    if (b.IsVariable()) {
      BindVar(b, a);
      return true;
    }
    return false;  // Distinct constants.
  }

  // Matches γ2[gi..] against head atoms of the left premise (several γ2
  // atoms may share a head atom), emitting a composition per complete
  // unifier.
  void MatchGamma2(size_t gi, size_t left_idx, size_t right_idx) {
    if (!result_.complete) return;
    if (gi == gamma2_.size()) {
      EmitMatches(left_idx, right_idx);
      return;
    }
    const Atom& g = gamma2_[gi];
    const Rule& left = rules_[left_idx];
    for (const Atom& h : left.head) {
      if (h.pred != g.pred || h.args.size() != g.args.size()) continue;
      size_t mark = trail_.size();
      bool ok = true;
      for (size_t k = 0; k < g.args.size() && ok; ++k) {
        ok = Unify(g.args[k], h.args[k], uvars_[left_idx],
                   evars_[left_idx]);
      }
      if (ok) MatchGamma2(gi + 1, left_idx, right_idx);
      UndoTo(mark);
      if (!result_.complete) return;
    }
  }

  // One full unifier of γ2 into β is on `bindings_`: check the γ1-side
  // conditions, enumerate still-free γ1 variables over the specialized
  // α domain, and emit the derived rules.
  void EmitMatches(size_t left_idx, size_t right_idx) {
    const Rule& left = rules_[left_idx];
    const Rule& right = renamed_[right_idx];
    const std::vector<Term>& alpha_vars = uvars_[left_idx];
    const std::vector<Term>& evars = evars_[left_idx];
    // The specialized α domain: resolved images of vars(α).
    alpha_dom_.clear();
    for (Term v : alpha_vars) {
      Term r = Resolve(v);
      if (!Contains(alpha_dom_, r)) alpha_dom_.push_back(r);
    }
    // Bound γ1/δ variables must not resolve onto β's existential
    // variables; unresolved ones are enumerated into the α domain so
    // θ(γ1) stays guarded by θ(α).
    unbound_.clear();
    for (Term v : gamma1_vars_) {
      Term r = Resolve(v);
      if (!r.IsVariable()) continue;
      if (Contains(evars, r)) return;  // Mapped onto an existential of β.
      if (!Contains(alpha_vars, r) && !Contains(unbound_, r)) {
        unbound_.push_back(r);
      }
    }
    if (!unbound_.empty() && alpha_dom_.empty()) return;
    std::vector<size_t> pick(unbound_.size(), 0);
    while (true) {
      size_t mark = trail_.size();
      for (size_t i = 0; i < unbound_.size(); ++i) {
        BindVar(unbound_[i], alpha_dom_[pick[i]]);
      }
      Substitution s;
      for (Term v : alpha_vars) {
        Term r = Resolve(v);
        if (r != v) s.Bind(v, r);
      }
      for (Term v : rvars_[right_idx]) {
        Term r = Resolve(v);
        if (r != v) s.Bind(v, r);
      }
      UndoTo(mark);
      EmitComposition(left, right, gamma1_, s);
      if (!result_.complete) return;
      // Advance the mixed-radix counter.
      size_t i = 0;
      for (; i < pick.size(); ++i) {
        if (++pick[i] < alpha_dom_.size()) break;
        pick[i] = 0;
      }
      if (i == pick.size()) break;
    }
  }

  void EmitComposition(const Rule& left, const Rule& right,
                       const std::vector<Atom>& gamma1,
                       const Substitution& h) {
    Rule spec = h.Apply(left);  // θ may specialize the left premise.
    Rule derived;
    derived.body = std::move(spec.body);
    for (const Atom& a : gamma1) {
      derived.body.emplace_back(h.Apply(a), /*negated=*/false);
    }
    derived.head = std::move(spec.head);
    bool head_grew = false;
    for (const Atom& a : right.head) {
      Atom img = h.Apply(a);
      if (std::find(derived.head.begin(), derived.head.end(), img) ==
          derived.head.end()) {
        head_grew = true;
      }
      derived.head.push_back(std::move(img));
    }
    // Without a new head atom, the derived rule has the same head and a
    // superset body: subsumed by the left premise.
    if (!head_grew) return;
    derived = TidyRule(std::move(derived));
    if (derived.body.size() > options_.max_body_atoms ||
        derived.head.size() > options_.max_head_atoms) {
      result_.complete = false;
      return;
    }
    if (getenv("GEREL_SAT_DEBUG") != nullptr) {
      fprintf(stderr, "compose\n  left: %s\n  right: %s\n  => %s\n",
              ToString(left, *symbols_).c_str(),
              ToString(right, *symbols_).c_str(),
              ToString(derived, *symbols_).c_str());
    }
    ++result_.inferences;
    Add(derived);
  }

  Term CompositionVar(size_t i) {
    while (composition_vars_.size() <= i) {
      composition_vars_.push_back(symbols_->Variable(
          "Cmp#" + std::to_string(composition_vars_.size())));
    }
    return composition_vars_[i];
  }

  void Add(const Rule& rule) {
    if (rules_.size() >= options_.max_rules) {
      result_.complete = false;
      return;
    }
    std::string key = CanonicalRuleString(rule, *symbols_);
    if (!seen_.insert(key).second) return;
    rules_.push_back(rule);
    std::vector<Term> ev = rule.EVars();
    bool ex = !ev.empty();
    existential_.push_back(ex);
    uvars_.push_back(rule.UVars());
    evars_.push_back(std::move(ev));
    // Precompute the right-premise role: the rule renamed apart with the
    // reserved composition variables, and its positive body γ. Only
    // Datalog rules ever stand on the right of (composition).
    Rule renamed;
    std::vector<Term> rv;
    if (!ex) {
      Substitution apart;
      std::vector<Term> rvars = rule.Vars();
      for (size_t i = 0; i < rvars.size(); ++i) {
        apart.Bind(rvars[i], CompositionVar(i));
        rv.push_back(CompositionVar(i));
      }
      renamed = apart.Apply(rule);
    }
    gamma_.push_back(renamed.PositiveBody());
    renamed_.push_back(std::move(renamed));
    rvars_.push_back(std::move(rv));
    worklist_.push_back(rules_.size() - 1);
  }

  SymbolTable* symbols_;
  SaturationOptions options_;
  // Deques: Process and Compose hold references across Add() calls.
  std::deque<Rule> rules_;
  // Per-rule data cached at Add time (EVars()/UVars() recomputation and
  // the per-pairing rename-apart dominated the composition loop in the
  // seed).
  std::vector<bool> existential_;
  std::deque<std::vector<Term>> uvars_;
  std::deque<std::vector<Term>> evars_;
  std::deque<Rule> renamed_;
  std::deque<std::vector<Atom>> gamma_;
  std::deque<std::vector<Term>> rvars_;
  std::unordered_set<std::string> seen_;
  std::deque<size_t> worklist_;
  std::vector<Term> composition_vars_;
  SaturationResult result_;
  // Compose scratch, reused across pairings and subset splits.
  std::vector<Atom> gamma1_, gamma2_;
  std::vector<Term> gamma1_vars_;
  std::vector<Term> unbound_, alpha_dom_;
  std::map<Term, Term> bindings_;
  std::vector<Term> trail_;
};

}  // namespace

Result<SaturationResult> Saturate(const Theory& guarded_theory,
                                  SymbolTable* symbols,
                                  const SaturationOptions& options) {
  if (guarded_theory.HasNegation()) {
    return Status::Error("saturation requires a negation-free theory");
  }
  if (!Classify(guarded_theory).guarded) {
    return Status::Error("saturation requires a guarded theory (Def 19)");
  }
  Saturator saturator(guarded_theory, symbols, options);
  return saturator.Run();
}

Result<DatalogTranslation> NearlyGuardedToDatalog(
    const Theory& nearly_guarded, SymbolTable* symbols,
    const SaturationOptions& options) {
  PositionSet affected = AffectedPositions(nearly_guarded);
  Theory guarded_part, datalog_part;
  for (const Rule& rule : nearly_guarded.rules()) {
    if (IsGuardedRule(rule)) {
      guarded_part.AddRule(rule);
    } else if (UnsafeVars(rule, affected).empty() && rule.EVars().empty()) {
      datalog_part.AddRule(rule);
    } else {
      return Status::Error("theory is not nearly guarded (Def 3 fails)");
    }
  }
  Result<SaturationResult> sat = Saturate(guarded_part, symbols, options);
  if (!sat.ok()) return sat.status();
  DatalogTranslation out;
  out.complete = sat.value().complete;
  out.datalog = std::move(sat.value().datalog);
  for (const Rule& r : datalog_part.rules()) out.datalog.AddRule(r);
  return out;
}

}  // namespace gerel
