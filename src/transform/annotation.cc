#include "transform/annotation.h"

#include <unordered_map>

#include "core/check.h"
#include "core/normalize.h"

namespace gerel {

Result<Theory> AnnotateNonAffected(const Theory& proper_theory) {
  if (!IsProper(proper_theory)) {
    return Status::Error("annotation requires a proper theory (Def 16)");
  }
  PositionSet affected = AffectedPositions(proper_theory);
  // Affected prefix length per relation.
  std::unordered_map<RelationId, uint32_t> prefix;
  auto note = [&](const Atom& a) {
    GEREL_CHECK(a.annotation.empty());  // Annotate at most once.
    if (prefix.count(a.pred) > 0) return;
    uint32_t p = 0;
    while (p < a.args.size() && affected.Contains(a.pred, p)) ++p;
    prefix.emplace(a.pred, p);
  };
  for (const Rule& r : proper_theory.rules()) {
    for (const Literal& l : r.body) note(l.atom);
    for (const Atom& a : r.head) note(a);
  }
  auto annotate = [&prefix](const Atom& a) {
    uint32_t p = prefix.at(a.pred);
    Atom out;
    out.pred = a.pred;
    out.args.assign(a.args.begin(), a.args.begin() + p);
    out.annotation.assign(a.args.begin() + p, a.args.end());
    return out;
  };
  Theory out;
  for (const Rule& r : proper_theory.rules()) {
    Rule nr;
    for (const Literal& l : r.body) {
      nr.body.emplace_back(annotate(l.atom), l.negated);
    }
    for (const Atom& a : r.head) nr.head.push_back(annotate(a));
    out.AddRule(std::move(nr));
  }
  return out;
}

Theory Deannotate(const Theory& theory) {
  Theory out;
  auto merge = [](const Atom& a) {
    Atom m;
    m.pred = a.pred;
    m.args = a.args;
    m.args.insert(m.args.end(), a.annotation.begin(), a.annotation.end());
    return m;
  };
  for (const Rule& r : theory.rules()) {
    Rule nr;
    for (const Literal& l : r.body) {
      nr.body.emplace_back(merge(l.atom), l.negated);
    }
    for (const Atom& a : r.head) nr.head.push_back(merge(a));
    out.AddRule(std::move(nr));
  }
  return out;
}

Result<WfgRewriteResult> RewriteWfgToWeaklyGuarded(
    const Theory& theory, SymbolTable* symbols,
    const ExpansionOptions& options) {
  if (!IsNormal(theory)) {
    return Status::Error("rew requires a normal theory (Prop 1)");
  }
  if (!Classify(theory).weakly_frontier_guarded) {
    return Status::Error("theory is not weakly frontier-guarded");
  }
  WfgRewriteResult out;
  // Step 0: reorder positions so affected ones form a prefix (Def 16).
  out.reordering = MakeProper(theory);
  // Step (a): move non-affected terms into annotations (Def 17).
  Result<Theory> annotated = AnnotateNonAffected(out.reordering.theory);
  if (!annotated.ok()) return annotated.status();
  // a(Σ) is frontier-guarded but its existential rules need not be
  // guarded any more (their guards may have lost argument variables);
  // re-establish Def 4(ii).
  NormalizeOptions nopts;
  nopts.extract_constants = false;  // Already normal w.r.t. constants.
  nopts.split_heads = false;        // Heads are singletons already.
  Theory renormalized = Normalize(annotated.value(), symbols, nopts);
  // Step (b): the §5.1 rewriting on the annotated theory.
  Result<RewriteResult> rewritten =
      RewriteFgToNearlyGuarded(renormalized, symbols, options);
  if (!rewritten.ok()) return rewritten.status();
  out.complete = rewritten.value().complete;
  out.degradation = rewritten.value().degradation;
  out.expansion_stats = std::move(rewritten.value().expansion_stats);
  // Step (c): reconstruct original atoms from annotations (Def 18), then
  // fold the Def 16 reordering back so the result runs on the original
  // database layout.
  Theory merged = Deannotate(rewritten.value().theory);
  for (const Rule& r : merged.rules()) {
    Rule nr;
    for (const Literal& l : r.body) {
      nr.body.emplace_back(out.reordering.Invert(l.atom), l.negated);
    }
    for (const Atom& a : r.head) {
      nr.head.push_back(out.reordering.Invert(a));
    }
    out.theory.AddRule(std::move(nr));
  }
  return out;
}

}  // namespace gerel
