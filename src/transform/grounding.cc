#include "transform/grounding.h"

#include <algorithm>

#include "core/classify.h"
#include "core/substitution.h"

namespace gerel {

Result<GroundingResult> PartialGrounding(const Theory& theory,
                                         const Database& db,
                                         const GroundingOptions& options) {
  PositionSet affected = AffectedPositions(theory);
  // Ground terms available for instantiation: the database's terms plus
  // the theory constants (they join the chase root).
  std::vector<Term> domain = db.ActiveTerms();
  for (Term c : theory.Constants()) {
    if (std::find(domain.begin(), domain.end(), c) == domain.end()) {
      domain.push_back(c);
    }
  }
  GroundingResult out;
  uint64_t round = 0;
  for (const Rule& rule : theory.rules()) {
    // One "round" per input rule: a deterministic boundary for budget
    // and fault-plan checks.
    ++round;
    if (options.budget != nullptr &&
        !options.budget->CheckRound(GovernedStage::kGrounding, round,
                                    out.theory.size())) {
      out.complete = false;
      out.degradation = options.budget->reason();
      return out;
    }
    std::vector<Term> unsafe = UnsafeVars(rule, affected);
    std::vector<Term> safe;
    for (Term v : rule.UVars()) {
      if (std::find(unsafe.begin(), unsafe.end(), v) == unsafe.end()) {
        safe.push_back(v);
      }
    }
    if (domain.empty()) {
      // No ground terms exist at all: only variable-free rules can ever
      // contribute ground consequences.
      if (rule.Vars().empty()) out.theory.AddRule(rule);
      continue;
    }
    if (safe.empty()) {
      out.theory.AddRule(rule);
      continue;
    }
    // Mixed-radix enumeration of all assignments safe → domain.
    std::vector<size_t> pick(safe.size(), 0);
    while (true) {
      if (out.theory.size() >= options.max_rules) {
        out.complete = false;
        out.degradation.stage = GovernedStage::kGrounding;
        out.degradation.limit = BudgetLimit::kRules;
        return out;
      }
      if (options.budget != nullptr &&
          !options.budget->CheckPoint(GovernedStage::kGrounding)) {
        out.complete = false;
        out.degradation = options.budget->reason();
        return out;
      }
      Substitution s;
      for (size_t i = 0; i < safe.size(); ++i) s.Bind(safe[i], domain[pick[i]]);
      out.theory.AddRule(s.Apply(rule));
      size_t i = 0;
      for (; i < pick.size(); ++i) {
        if (++pick[i] < domain.size()) break;
        pick[i] = 0;
      }
      if (i == pick.size()) break;
    }
  }
  return out;
}

}  // namespace gerel
