#include "transform/fg_to_ng.h"

#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/check.h"
#include "core/classify.h"
#include "core/database.h"
#include "core/normalize.h"
#include "transform/canonical.h"
#include "transform/rewriting.h"

namespace gerel {

namespace {

// The paper's termination measure for the expansion: the number of
// variables that do not occur in a frontier guard (§5.1, remark after
// Def 12). Each rewriting strictly decreases it for the non-guarded rule
// it produces; the closure recurses only on rules whose measure strictly
// decreased, which is what bounds ex(Σ).
size_t UnguardedVarMeasure(const Rule& rule) {
  std::vector<Term> all_vars = rule.Vars();
  // Frontier variables relevant for guarding: head argument variables
  // occurring in the body.
  std::vector<Term> body_vars = rule.UVars();
  std::vector<Term> frontier;
  for (const Atom& a : rule.head) {
    for (Term v : a.ArgVars()) {
      if (std::find(body_vars.begin(), body_vars.end(), v) !=
              body_vars.end() &&
          std::find(frontier.begin(), frontier.end(), v) == frontier.end()) {
        frontier.push_back(v);
      }
    }
  }
  size_t best = all_vars.size();
  for (const Literal& l : rule.body) {
    if (l.negated) continue;
    std::vector<Term> avars = l.atom.ArgVars();
    bool covers = std::all_of(frontier.begin(), frontier.end(),
                              [&avars](Term v) {
                                return std::find(avars.begin(), avars.end(),
                                                 v) != avars.end();
                              });
    if (!covers) continue;
    std::vector<Term> full = l.atom.AllVars();
    size_t outside = 0;
    for (Term v : all_vars) {
      if (std::find(full.begin(), full.end(), v) == full.end()) ++outside;
    }
    best = std::min(best, outside);
  }
  return best;
}

// Closure engine for ex(Σ) (Def 12).
class Expander {
 public:
  Expander(const Theory& theory, const SignatureInfo& sig,
           SymbolTable* symbols, const ExpansionOptions& options)
      : sig_(sig), symbols_(symbols), options_(options) {
    // Placeholder relations (one per arity) used only to key rewritings
    // before the real fresh head exists.
    for (const Rule& r : theory.rules()) AddRule(r);
  }

  ExpansionResult Run() {
    uint64_t round = 0;
    ExecutionBudget* budget = options_.budget;
    while (!worklist_.empty() && result_.complete) {
      ++round;
      if (budget != nullptr &&
          !budget->CheckRound(GovernedStage::kRewrite, round,
                              rules_.size())) {
        result_.complete = false;
        break;
      }
      size_t idx = worklist_.front();
      worklist_.pop_front();
      ProcessRule(idx);
    }
    if (!result_.complete) {
      if (budget != nullptr && budget->exhausted()) {
        result_.degradation = budget->reason();
      } else {
        result_.degradation.stage = GovernedStage::kRewrite;
        result_.degradation.limit = BudgetLimit::kRules;
        result_.degradation.round = round;
      }
    }
    result_.theory = Theory(rules_);
    return std::move(result_);
  }

 private:
  void ProcessRule(size_t idx) {
    // Copy: rules_ may reallocate while we add new rules.
    const Rule rule = rules_[idx];
    current_budget_ = UnguardedVarMeasure(rule);
    bool complete = ForEachSelection(
        rule, sig_.max_arity, options_.idempotent_selections_only,
        options_.max_selections_per_rule, [&](const SelectionParts& sel) {
          ++result_.selections_tried;
          // Amortized deadline/cancel check inside the (worst-case
          // exponential) selection enumeration.
          if (options_.budget != nullptr &&
              !options_.budget->CheckPoint(GovernedStage::kRewrite)) {
            return false;
          }
          HandleSelection(rule, sel, /*rc=*/true);
          HandleSelection(rule, sel, /*rc=*/false);
          return result_.complete;
        });
    if (!complete) result_.complete = false;
  }

  void HandleSelection(const Rule& rule, const SelectionParts& sel, bool rc) {
    if (rc ? !RcApplicable(rule, sel) : !RncApplicable(rule, sel)) return;
    const std::vector<Term>& keep = rc ? sel.keep_rc : sel.keep_rnc;
    // Key the rewriting by its guard-independent skeleton so the fresh
    // head is shared across guard variants and reused on recurrence.
    Atom placeholder =
        MakeFreshHead(PlaceholderPred(keep, rule), keep, sel, rule);
    std::vector<Atom> body_atoms;
    for (const Literal& l : rule.body) body_atoms.push_back(l.atom);
    std::vector<Atom> cov, noncov;
    for (size_t i : sel.covered) cov.push_back(sel.mu.Apply(body_atoms[i]));
    for (size_t i : sel.non_covered)
      noncov.push_back(sel.mu.Apply(body_atoms[i]));
    Atom mapped_head = sel.mu.Apply(rule.head[0]);

    // Key H by its *defining* side only (the pulled-out atoms and the
    // exported keep/annotation tuple): H means "those atoms hold with
    // these exports", independent of which rule uses it, so identical
    // definitions share one relation across selections, rules, and modes.
    const std::vector<Atom>& defining = rc ? cov : noncov;
    RelationRenames renames;
    renames[placeholder.pred] = "?H";
    std::string key = CanonicalRulesString(
        {Rule::Positive(defining, {placeholder})}, *symbols_, &renames);
    auto [it, inserted] = head_cache_.emplace(key, 0);
    if (inserted) {
      it->second = symbols_->FreshRelation(
          "h", static_cast<int>(placeholder.arity()));
      ++result_.fresh_relations;
    }
    Atom fresh_head = placeholder;
    fresh_head.pred = it->second;
    RewriteSet set =
        rc ? RcRewritings(rule, sel, sig_, fresh_head, symbols_,
                          options_.exhaustive_guards)
           : RncRewritings(rule, sel, sig_, fresh_head, symbols_,
                           options_.exhaustive_guards);
    // Primes (the H-defining rules) are identical for every use of this
    // H; adding them is a no-op on cache hits thanks to canonical dedup.
    // The use-side rules are always added.
    for (const Rule& r : set.primes) AddRule(r);
    for (const Rule& r : set.seconds) AddRule(r);
    result_.rewritings_added += set.primes.size() + set.seconds.size();
  }

  RelationId PlaceholderPred(const std::vector<Term>& keep,
                             const Rule& rule) {
    size_t arity = keep.size() + rule.head[0].annotation.size();
    auto [it, inserted] = placeholders_.emplace(arity, 0);
    if (inserted) {
      it->second =
          symbols_->Relation("hkey#" + std::to_string(arity),
                             static_cast<int>(arity));
    }
    return it->second;
  }

  void AddRule(const Rule& rule) {
    if (rules_.size() >= options_.max_rules) {
      result_.complete = false;
      return;
    }
    std::string key = CanonicalRuleString(rule, *symbols_);
    if (!seen_.insert(key).second) return;
    rules_.push_back(rule);
    if (rule.EVars().empty() && !IsGuardedRule(rule) &&
        UnguardedVarMeasure(rule) < current_budget_) {
      worklist_.push_back(rules_.size() - 1);
    }
  }

  SignatureInfo sig_;
  SymbolTable* symbols_;
  ExpansionOptions options_;
  std::vector<Rule> rules_;
  std::unordered_set<std::string> seen_;
  std::unordered_map<std::string, RelationId> head_cache_;
  std::unordered_map<size_t, RelationId> placeholders_;
  std::deque<size_t> worklist_;
  ExpansionResult result_;
  // Measure of the rule currently being processed; newly generated
  // non-guarded rules recurse only when strictly below it. Input rules
  // are enqueued unconditionally (budget = SIZE_MAX during construction).
  size_t current_budget_ = static_cast<size_t>(-1);
};

}  // namespace

Result<ExpansionResult> Expand(const Theory& theory, SymbolTable* symbols,
                               const ExpansionOptions& options) {
  if (!IsNormal(theory)) {
    return Status::Error("expansion requires a normal theory (Def 12)");
  }
  if (!Classify(theory).frontier_guarded) {
    return Status::Error("expansion requires a frontier-guarded theory");
  }
  Expander expander(theory, SignatureInfo::FromTheory(theory), symbols,
                    options);
  return expander.Run();
}

Result<RewriteResult> RewriteFgToNearlyGuarded(
    const Theory& theory, SymbolTable* symbols,
    const ExpansionOptions& options) {
  Result<ExpansionResult> ex = Expand(theory, symbols, options);
  if (!ex.ok()) return ex.status();
  RewriteResult out;
  out.complete = ex.value().complete;
  out.degradation = ex.value().degradation;
  RelationId acdom = AcdomRelation(symbols);
  for (const Rule& rule : ex.value().theory.rules()) {
    if (IsGuardedRule(rule)) {
      out.theory.AddRule(rule);
      continue;
    }
    Rule guarded = rule;
    for (Term x : rule.UVars()) {
      guarded.body.emplace_back(Atom(acdom, {x}), /*negated=*/false);
    }
    out.theory.AddRule(std::move(guarded));
  }
  out.expansion_stats = std::move(ex).value();
  out.expansion_stats.theory = Theory();  // Avoid duplicating the rules.
  return out;
}

Result<RewriteResult> RewriteNfgToNearlyGuarded(
    const Theory& theory, SymbolTable* symbols,
    const ExpansionOptions& options) {
  PositionSet affected = AffectedPositions(theory);
  Theory fg_part, datalog_part;
  for (const Rule& rule : theory.rules()) {
    if (IsFrontierGuardedRule(rule)) {
      fg_part.AddRule(rule);
    } else if (UnsafeVars(rule, affected).empty() && rule.EVars().empty()) {
      datalog_part.AddRule(rule);
    } else {
      return Status::Error(
          "theory is not nearly frontier-guarded (Def 3 fails)");
    }
  }
  if (!IsNormal(fg_part)) {
    return Status::Error("rewriting requires a normal theory");
  }
  // Guard atoms for the expansion may use any relation of the full theory
  // (the chase of Σ stores atoms over all of them).
  Expander expander(fg_part, SignatureInfo::FromTheory(theory), symbols,
                    options);
  ExpansionResult ex = expander.Run();
  RewriteResult out;
  out.complete = ex.complete;
  out.degradation = ex.degradation;
  RelationId acdom = AcdomRelation(symbols);
  for (const Rule& rule : ex.theory.rules()) {
    if (IsGuardedRule(rule)) {
      out.theory.AddRule(rule);
      continue;
    }
    Rule guarded = rule;
    for (Term x : rule.UVars()) {
      guarded.body.emplace_back(Atom(acdom, {x}), /*negated=*/false);
    }
    out.theory.AddRule(std::move(guarded));
  }
  for (const Rule& rule : datalog_part.rules()) out.theory.AddRule(rule);
  out.expansion_stats = std::move(ex);
  out.expansion_stats.theory = Theory();
  return out;
}

}  // namespace gerel
