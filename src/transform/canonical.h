// Canonical forms of rules modulo variable renaming and body reordering.
//
// The expansion (Def 12) and the saturation calculus (Def 19) both
// generate rules up to variable renaming; deduplication keys rules by a
// deterministic canonical string. The canonicalizer is *sound* for
// deduplication: equal canonical strings imply isomorphic rules (the
// output is a consistent renaming plus a reordering of the body, which is
// a set). It is not guaranteed to identify every isomorphic pair (greedy
// tie-breaking), which only costs duplicate work, never correctness.
#ifndef GEREL_TRANSFORM_CANONICAL_H_
#define GEREL_TRANSFORM_CANONICAL_H_

#include <string>
#include <unordered_map>

#include "core/rule.h"
#include "core/symbol_table.h"

namespace gerel {

// Optional relation renames applied during canonicalization (used to key
// rewriting pairs with a placeholder for the fresh head relation).
using RelationRenames = std::unordered_map<RelationId, std::string>;

// Deterministic canonical string for a rule.
std::string CanonicalRuleString(const Rule& rule, const SymbolTable& symbols,
                                const RelationRenames* renames = nullptr);

// Canonical string for several rules sharing variables (e.g. a rewriting
// pair): variables are renamed consistently across all rules.
std::string CanonicalRulesString(const std::vector<Rule>& rules,
                                 const SymbolTable& symbols,
                                 const RelationRenames* renames = nullptr);

// Renames the variables of `rule` to canonical names V0, V1, ... in the
// canonical order, interned in `symbols`. Preserves rule semantics.
Rule CanonicalizeVariables(const Rule& rule, SymbolTable* symbols);

}  // namespace gerel

#endif  // GEREL_TRANSFORM_CANONICAL_H_
