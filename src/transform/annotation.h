// Annotation transforms and the weakly frontier-guarded → weakly guarded
// translation (paper §5.2, Defs 16–18, Thm 2).
//
// a(Σ) moves the terms at non-affected positions of each atom into the
// relation-name annotation, turning a proper weakly frontier-guarded
// theory into a frontier-guarded one; a⁻(Σ) moves annotations back into
// argument positions. rew(Σ) = a⁻(rew(a(Σ))) is weakly guarded and
// preserves answers.
#ifndef GEREL_TRANSFORM_ANNOTATION_H_
#define GEREL_TRANSFORM_ANNOTATION_H_

#include "core/classify.h"
#include "core/status.h"
#include "core/symbol_table.h"
#include "core/theory.h"
#include "transform/fg_to_ng.h"

namespace gerel {

// a(Σ) (Def 17): for each atom R(t1..tn) with last affected position i,
// produce R[t_{i+1}..t_n](t1..ti). Requires a proper theory (Def 16).
Result<Theory> AnnotateNonAffected(const Theory& proper_theory);

// a⁻(Σ) (Def 18): replace every annotated atom R[~v](~t) by R(~t, ~v).
// Applies to every atom, including fresh relations introduced by the
// expansion.
Theory Deannotate(const Theory& theory);

struct WfgRewriteResult {
  Theory theory;
  bool complete = true;
  DegradationReason degradation;
  // The reordering applied to make the input proper; apply it to the
  // database before querying and invert on answers (its permutation is
  // identity for relations whose affected positions already form a
  // prefix).
  ProperReordering reordering;
  ExpansionResult expansion_stats;
};

// rew(Σ) for a normal weakly frontier-guarded theory (Def 18, Thm 2):
// make proper → annotate → re-normalize the annotated theory (guard its
// existential rules) → expand/rewrite → deannotate. The result is weakly
// guarded and, over reordered databases, has the same answers as Σ.
Result<WfgRewriteResult> RewriteWfgToWeaklyGuarded(
    const Theory& theory, SymbolTable* symbols,
    const ExpansionOptions& options = ExpansionOptions());

}  // namespace gerel

#endif  // GEREL_TRANSFORM_ANNOTATION_H_
