#include "transform/pipeline.h"

#include "core/check.h"
#include "core/classify.h"
#include "core/normalize.h"
#include "datalog/evaluator.h"
#include "transform/annotation.h"

namespace gerel {

namespace {

std::set<std::vector<Term>> CollectAnswers(const Database& db,
                                           RelationId output) {
  std::set<std::vector<Term>> answers;
  for (uint32_t i : db.AtomsOf(output)) {
    const Atom& a = db.atom(i);
    if (a.IsGroundOverConstants()) answers.insert(a.args);
  }
  return answers;
}

}  // namespace

Rule GuardConjunctiveQuery(const Rule& cq, SymbolTable* symbols) {
  GEREL_CHECK(cq.head.size() == 1);
  // Head variables missing from the body are answer variables ranging
  // over the active domain: the acdom guards below bind them, so the
  // guarded rule has no existential variables.
  Rule out = cq;
  RelationId acdom = AcdomRelation(symbols);
  for (Term x : cq.head[0].ArgVars()) {
    out.body.emplace_back(Atom(acdom, {x}), /*negated=*/false);
  }
  return out;
}

Result<KbQueryResult> AnswerKbQuery(const Theory& theory, const Rule& cq,
                                    const Database& db, SymbolTable* symbols,
                                    const KbQueryOptions& options) {
  KbQueryResult result;
  RelationId output = cq.head[0].pred;
  Theory combined = theory;
  combined.AddRule(GuardConjunctiveQuery(cq, symbols));
  Theory normal = Normalize(combined, symbols);
  if (!Classify(normal).weakly_frontier_guarded) {
    return Status::Error("knowledge base is not weakly frontier-guarded");
  }
  // Step 1: rew(Σ) (Thm 2), unless the theory is already weakly guarded.
  Theory weakly_guarded;
  if (Classify(normal).weakly_guarded) {
    weakly_guarded = normal;
  } else {
    Result<WfgRewriteResult> rew =
        RewriteWfgToWeaklyGuarded(normal, symbols, options.expansion);
    if (!rew.ok()) return rew.status();
    result.complete = result.complete && rew.value().complete;
    weakly_guarded = std::move(rew.value().theory);
  }
  result.rewritten_rules = weakly_guarded.size();
  // Step 2: partial grounding; the result is guarded.
  Result<GroundingResult> grounded =
      PartialGrounding(weakly_guarded, db, options.grounding);
  if (!grounded.ok()) return grounded.status();
  result.complete = result.complete && grounded.value().complete;
  result.grounded_rules = grounded.value().theory.size();
  // Step 3: dat(Σ1) (Thm 3).
  Result<SaturationResult> sat =
      Saturate(grounded.value().theory, symbols, options.saturation);
  if (!sat.ok()) return sat.status();
  result.complete = result.complete && sat.value().complete;
  result.datalog_rules = sat.value().datalog.size();
  // Steps 4–5: bottom-up evaluation (implicit grounding).
  Result<DatalogResult> eval =
      EvaluateDatalog(sat.value().datalog, db, symbols);
  if (!eval.ok()) return eval.status();
  result.answers = CollectAnswers(eval.value().database, output);
  return result;
}

Result<KbQueryResult> AnswerKbQueryNearlyFrontierGuarded(
    const Theory& theory, const Rule& cq, const Database& db,
    SymbolTable* symbols, const KbQueryOptions& options) {
  KbQueryResult result;
  RelationId output = cq.head[0].pred;
  Theory combined = theory;
  combined.AddRule(GuardConjunctiveQuery(cq, symbols));
  Theory normal = Normalize(combined, symbols);
  if (!Classify(normal).nearly_frontier_guarded) {
    return Status::Error(
        "knowledge base (with query) is not nearly frontier-guarded; use "
        "AnswerKbQuery for the weakly frontier-guarded route");
  }
  Result<RewriteResult> rew =
      RewriteNfgToNearlyGuarded(normal, symbols, options.expansion);
  if (!rew.ok()) return rew.status();
  result.complete = result.complete && rew.value().complete;
  result.rewritten_rules = rew.value().theory.size();
  Result<DatalogTranslation> dat = NearlyGuardedToDatalog(
      rew.value().theory, symbols, options.saturation);
  if (!dat.ok()) return dat.status();
  result.complete = result.complete && dat.value().complete;
  result.datalog_rules = dat.value().datalog.size();
  Result<DatalogResult> eval =
      EvaluateDatalog(dat.value().datalog, db, symbols);
  if (!eval.ok()) return eval.status();
  result.answers = CollectAnswers(eval.value().database, output);
  return result;
}

}  // namespace gerel
