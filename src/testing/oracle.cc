#include "testing/oracle.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "core/check.h"
#include "core/printer.h"
#include "core/substitution.h"

namespace gerel::testing {

namespace {

// Collects the distinct ground terms of `atoms`, in sorted order (the
// enumeration below must be deterministic for replayable runs).
std::vector<Term> GroundTerms(const std::set<Atom>& atoms) {
  std::set<Term> seen;
  for (const Atom& a : atoms) {
    for (Term t : a.AllTerms()) {
      if (t.IsGround()) seen.insert(t);
    }
  }
  return std::vector<Term>(seen.begin(), seen.end());
}

// Enumerates all assignments of `vars` into `domain` (odometer order) and
// calls `visit` with each substitution. Returns false if the number of
// assignments would exceed `cap`.
bool ForEachAssignment(const std::vector<Term>& vars,
                       const std::vector<Term>& domain, size_t cap,
                       const std::function<void(const Substitution&)>& visit) {
  if (domain.empty() && !vars.empty()) return true;  // No assignments.
  size_t total = 1;
  for (size_t i = 0; i < vars.size(); ++i) {
    total *= domain.size();
    if (total > cap) return false;
  }
  std::vector<size_t> pick(vars.size(), 0);
  while (true) {
    Substitution s;
    for (size_t i = 0; i < vars.size(); ++i) s.Bind(vars[i], domain[pick[i]]);
    visit(s);
    size_t i = 0;
    for (; i < pick.size(); ++i) {
      if (++pick[i] < domain.size()) break;
      pick[i] = 0;
    }
    if (i == pick.size()) break;
  }
  return true;
}

// acdom is the active *constant* domain (core/database.h): nulls never
// enter it, matching PopulateAcdom and the chase.
void InsertAcdomFor(const Atom& atom, RelationId acdom,
                    std::set<Atom>* atoms) {
  if (atom.pred == acdom) return;
  for (Term t : atom.AllTerms()) {
    if (t.IsConstant()) atoms->insert(Atom(acdom, {t}));
  }
}

}  // namespace

OracleResult OracleChase(const Theory& theory, const Database& input,
                         SymbolTable* symbols, const OracleOptions& options) {
  for (const Rule& r : theory.rules()) {
    GEREL_CHECK(!r.HasNegation());  // The oracle chase is negation-free.
  }
  OracleResult result;
  for (const Atom& a : input.atoms()) result.atoms.insert(a);
  RelationId acdom = AcdomRelation(symbols);
  if (options.populate_acdom) {
    for (const Atom& a : input.atoms()) {
      InsertAcdomFor(a, acdom, &result.atoms);
    }
    for (Term c : theory.Constants()) {
      result.atoms.insert(Atom(acdom, {c}));
    }
  }
  // Fired triggers: (rule index, images of its universal variables). The
  // oblivious chase fires each exactly once.
  std::set<std::pair<size_t, std::vector<Term>>> fired;
  bool within_caps = true;
  bool changed = true;
  size_t budget = options.max_total_substitutions;
  while (changed && within_caps) {
    changed = false;
    std::vector<Term> domain = GroundTerms(result.atoms);
    for (Term c : theory.Constants()) {
      if (!std::binary_search(domain.begin(), domain.end(), c)) {
        domain.push_back(c);
        std::sort(domain.begin(), domain.end());
      }
    }
    for (size_t ri = 0; ri < theory.rules().size() && within_caps; ++ri) {
      const Rule& rule = theory.rules()[ri];
      std::vector<Term> uvars = rule.UVars();
      std::vector<Atom> body = rule.PositiveBody();
      // Charge the full odometer product against the run budget up
      // front; the enumeration never breaks early.
      size_t product = 1;
      bool affordable = true;
      for (size_t i = 0; i < uvars.size() && affordable; ++i) {
        product *= domain.size();
        if (product > budget) affordable = false;
      }
      if (!affordable) {
        within_caps = false;
        break;
      }
      budget -= product;
      bool enumerable = ForEachAssignment(
          uvars, domain, options.max_substitutions_per_rule,
          [&](const Substitution& h) {
            if (!within_caps) return;
            for (const Atom& b : body) {
              if (result.atoms.count(h.Apply(b)) == 0) return;
            }
            std::vector<Term> images;
            images.reserve(uvars.size());
            for (Term v : uvars) images.push_back(h.Apply(v));
            if (!fired.insert({ri, std::move(images)}).second) return;
            if (++result.steps > options.max_steps) {
              within_caps = false;
              return;
            }
            // Fire: fresh nulls for the existential variables.
            Substitution ext = h;
            for (Term e : rule.EVars()) ext.Bind(e, symbols->FreshNull());
            for (const Atom& ha : rule.head) {
              Atom derived = ext.Apply(ha);
              if (result.atoms.insert(derived).second) {
                changed = true;
                if (options.populate_acdom) {
                  InsertAcdomFor(derived, acdom, &result.atoms);
                }
                if (result.atoms.size() > options.max_atoms) {
                  within_caps = false;
                }
              }
            }
          });
      if (!enumerable) within_caps = false;
    }
  }
  result.saturated = within_caps;
  return result;
}

std::set<Atom> OracleGroundAtoms(const OracleResult& result,
                                 const Theory& theory) {
  std::set<RelationId> rels;
  for (RelationId r : theory.Relations()) rels.insert(r);
  std::set<Atom> out;
  for (const Atom& a : result.atoms) {
    if (rels.count(a.pred) > 0 && a.IsGroundOverConstants()) out.insert(a);
  }
  return out;
}

std::set<std::string> OracleGroundFacts(const OracleResult& result,
                                        const Theory& theory,
                                        const SymbolTable& symbols) {
  std::set<std::string> out;
  for (const Atom& a : OracleGroundAtoms(result, theory)) {
    out.insert(ToString(a, symbols));
  }
  return out;
}

std::set<std::vector<Term>> OracleCqAnswers(const OracleResult& result,
                                            const Rule& cq) {
  GEREL_CHECK(cq.head.size() == 1);
  std::vector<Atom> body = cq.PositiveBody();
  std::vector<Term> body_vars;
  for (const Atom& a : body) {
    for (Term v : a.AllVars()) {
      if (std::find(body_vars.begin(), body_vars.end(), v) ==
          body_vars.end()) {
        body_vars.push_back(v);
      }
    }
  }
  // Head-only variables range over the constants of the chase (the acdom
  // convention of the §7 pipeline).
  std::vector<Term> free_vars;
  for (Term v : cq.head[0].AllVars()) {
    if (std::find(body_vars.begin(), body_vars.end(), v) == body_vars.end() &&
        std::find(free_vars.begin(), free_vars.end(), v) == free_vars.end()) {
      free_vars.push_back(v);
    }
  }
  std::vector<Term> domain = GroundTerms(result.atoms);
  std::vector<Term> constants;
  for (Term t : domain) {
    if (t.IsConstant()) constants.push_back(t);
  }
  std::set<std::vector<Term>> answers;
  ForEachAssignment(
      body_vars, domain, static_cast<size_t>(-1),
      [&](const Substitution& h) {
        for (const Atom& b : body) {
          if (result.atoms.count(h.Apply(b)) == 0) return;
        }
        // Answer tuples must be constant-only (nulls are witnesses, not
        // answers).
        Atom head = h.Apply(cq.head[0]);
        bool null_answer = false;
        for (Term t : head.AllTerms()) {
          if (t.IsNull()) null_answer = true;
        }
        if (null_answer) return;
        ForEachAssignment(free_vars, constants, static_cast<size_t>(-1),
                          [&](const Substitution& f) {
                            Atom full = f.Apply(head);
                            if (full.IsGroundOverConstants()) {
                              answers.insert(full.args);
                            }
                          });
      });
  return answers;
}

}  // namespace gerel::testing
