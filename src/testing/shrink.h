// Greedy delta-debugging shrinker for failing (theory, database, query)
// triples (DESIGN.md §8).
//
// Given a case and a predicate "does this case still fail?", the
// shrinker repeatedly tries structure-removing edits — drop rules (in
// halving chunks, then singly), drop facts, drop query body atoms, drop
// individual rule body literals — and keeps any edit under which the
// predicate still holds, until a fixpoint. The predicate is expected to
// be robust: a candidate that breaks a precondition (class membership,
// query shape) should simply return false, and the edit is discarded.
//
// The shrinker is deterministic (no randomness) and bounded by
// `max_checks` predicate evaluations.
#ifndef GEREL_TESTING_SHRINK_H_
#define GEREL_TESTING_SHRINK_H_

#include <functional>

#include "testing/generator.h"

namespace gerel::testing {

// Returns true iff the candidate still exhibits the failure under
// investigation.
using FailurePredicate = std::function<bool(const GeneratedCase&)>;

struct ShrinkStats {
  size_t checks = 0;  // Predicate evaluations spent.
  size_t removed_rules = 0;
  size_t removed_facts = 0;
  size_t removed_atoms = 0;  // Query/rule body atoms removed.
};

// Minimizes `failing` under `still_fails` (which must hold for `failing`
// itself). Returns the smallest case found within `max_checks`.
GeneratedCase ShrinkCase(const GeneratedCase& failing,
                         const FailurePredicate& still_fails,
                         size_t max_checks = 400,
                         ShrinkStats* stats = nullptr);

}  // namespace gerel::testing

#endif  // GEREL_TESTING_SHRINK_H_
