// Metamorphic / differential conformance driver (DESIGN.md §8).
//
// For each seeded case the driver runs every applicable answering path
// and asserts agreement with the naive oracle and with each other:
//
//   lanes    oracle vs. production chase (ground facts and CQ answers),
//            the §7 pipeline (dat(pg(rew(Σ), D))), the nearly
//            frontier-guarded route (Prop 4 + Prop 6), PreparedKb
//            (fresh, incremental assert, answer cache, N threads), and
//            naive vs. semi-naive vs. parallel Datalog;
//   invariants
//            fact-order permutation, bijective constant renaming, rule
//            duplication, and assert-order independence.
//
// Sound-but-incomplete lanes (a cap was hit, `complete == false`) are
// checked for soundness only (answers ⊆ oracle answers); unsaturated
// oracle instances are skipped.
//
// Fault injection (--fault): deliberately misconfigured lanes that
// simulate seeded bugs; the mutation smoke suite proves each is caught
// within a bounded number of iterations.
#ifndef GEREL_TESTING_DIFFERENTIAL_H_
#define GEREL_TESTING_DIFFERENTIAL_H_

#include <string>
#include <string_view>
#include <vector>

#include "testing/generator.h"
#include "testing/oracle.h"

namespace gerel::testing {

// Seeded bugs for the mutation smoke suite. Each twists exactly one lane
// into a realistic wrong configuration; kNone is the production setup.
enum class Fault {
  kNone,
  // Materialize PreparedKb with populate_acdom off: every acdom guard
  // introduced by the §7 rewriting becomes unsatisfiable, silently
  // dropping derived facts (simulates "dropped an acdom guard").
  kDropAcdomGuard,
  // Saturate with the composition rule disabled but *trust* the result
  // as complete (simulates "skipped a saturation step" without the
  // honesty of the `complete` flag).
  kSkipSaturationStep,
  // Serve pre-assert answers after Assert (simulates a stale AnswerCache
  // that survived invalidation).
  kStaleAnswerCache,
};

const char* FaultTag(Fault fault);
bool ParseFault(std::string_view tag, Fault* out);

struct DiffOptions {
  GenOptions gen;
  OracleOptions oracle;
  // Thread count for the parallel lanes (PreparedKb materialization and
  // the parallel Datalog engine). Does not affect verdicts.
  int num_threads = 2;
  Fault fault = Fault::kNone;
  // Shrink failing cases before reporting.
  bool shrink = true;
  size_t shrink_max_checks = 400;
  // Stop the run at the first failure (the CLI default; the mutation
  // smoke tests only need one repro).
  bool stop_on_failure = true;
  // Embed every generated case (parser syntax) in the transcript, so a
  // transcript diff pins down generator nondeterminism, not just verdict
  // nondeterminism (the deterministic-replay test sets this).
  bool log_cases = false;
};

struct DiffFailure {
  GenClass cls = GenClass::kDatalog;
  unsigned case_seed = 0;
  size_t iteration = 0;
  std::string lane;    // Which comparison disagreed (e.g. "oracle-vs-chase").
  std::string detail;  // Human-readable expected/actual sketch.
  // The shrunk (or original, with shrinking off) failing triple, in
  // parser syntax.
  std::string repro;
  size_t repro_rules = 0;
};

struct DiffReport {
  size_t iterations = 0;  // Cases generated.
  size_t checked = 0;     // Cases with a saturated oracle (fully compared).
  size_t skipped = 0;     // Unsaturated / out-of-scope cases.
  std::vector<DiffFailure> failures;
  // One line per case: "<class> <iteration> seed=<s> <verdict>". Pure
  // function of (seed, iters, classes, gen options) — thread counts and
  // wall clock never appear, which the determinism test pins down.
  std::string transcript;
  bool ok() const { return failures.empty(); }
};

enum class CaseVerdict {
  kOk,    // Every applicable lane agreed.
  kSkip,  // Oracle did not saturate within its bounds; nothing compared.
  kFail,  // Some lane disagreed; *failure is filled in.
};

// Checks one case against every applicable lane. `symbols` must be the
// table the case was generated against (engines add fresh nulls to it).
// On kFail, `failure->lane`/`detail` are set; the repro fields are
// filled by the caller (after shrinking).
CaseVerdict CheckCase(const GeneratedCase& c, SymbolTable* symbols,
                      const DiffOptions& options, DiffFailure* failure);

// Runs `iters` iterations per class: generates a case (fresh symbol
// table, per-case seed derived from `seed`), checks it, and shrinks any
// failure. `classes` defaults to all seven when empty.
DiffReport RunDifferential(unsigned seed, size_t iters,
                           const std::vector<GenClass>& classes,
                           const DiffOptions& options = DiffOptions());

// Fault-recovery lane (`gerel fuzz --lane fault-recovery`). For each
// seeded case, asserts that resource-governed execution degrades
// cleanly instead of crashing, hanging, or lying:
//   - a chase forced to exhaust its budget (seeded FaultPlan) yields a
//     subset of the clean chase's facts, reports a populated
//     DegradationReason, and is byte-identical across 1/2/4 worker
//     lanes (budget trips happen at deterministic round boundaries);
//   - worker-delay injection never changes any result byte;
//   - a PreparedKb forced to exhaust during materialization serves
//     sound answers (⊆ clean) with complete=false across thread counts;
//   - a clean snapshot save/load round-trips to identical answers, and
//     seeded truncation/bit-flip corruption is always detected at load,
//     with recovery-by-re-Prepare matching the clean run.
DiffReport RunFaultRecovery(unsigned seed, size_t iters,
                            const std::vector<GenClass>& classes,
                            const DiffOptions& options = DiffOptions());

// CRUD lane (`gerel fuzz --lane crud`). For each seeded case, prepares
// a PreparedKb on a prefix of the generated database and then replays a
// deterministic random interleaving of assert / retract / query ops.
// After every mutation the live KB is compared against a *fresh*
// Prepare from the surviving EDB: certain ground facts must agree (the
// full model, for Datalog-class theories), query answers must agree
// when both sides are complete (live answers must stay sound against a
// complete fresh run otherwise), and retracting a fact that is not in
// the EDB must fail without touching the model. This exercises the
// DRed overdelete/rederive/prune path, the re-materialization
// fallbacks, and dependency-aware cache invalidation (a stale cached
// answer served after a covering write diverges from the fresh KB).
// The transcript is a pure function of (seed, iters, classes, gen
// options) — thread counts never affect it.
DiffReport RunCrud(unsigned seed, size_t iters,
                   const std::vector<GenClass>& classes,
                   const DiffOptions& options = DiffOptions());

// Termination lane (`gerel fuzz --lane termination`). For each seeded
// case, runs the acyclicity ladder (analyze/termination.h) and holds the
// certificate to account:
//   - recomputing the certificate yields byte-identical kind/order/cycle
//     (the determinism the `gerel check --json` goldens rely on);
//   - a *certified* theory's semi-oblivious chase must saturate over the
//     generated database within generous caps — a terminating
//     certificate that fails to terminate is a lane failure;
//   - for weakly frontier-guarded negation-free cases, a PreparedKb with
//     the certificate-driven planner enabled must agree with one with
//     the planner disabled: equal answers when both are complete, and
//     planner answers sound (⊆) otherwise.
// When `classes` is empty the lane defaults to the five extended
// classes plus wg/wfg (the planner-relevant boundary classes).
DiffReport RunTermination(unsigned seed, size_t iters,
                          const std::vector<GenClass>& classes,
                          const DiffOptions& options = DiffOptions());

}  // namespace gerel::testing

#endif  // GEREL_TESTING_DIFFERENTIAL_H_
