#include "testing/shrink.h"

#include <utility>
#include <vector>

namespace gerel::testing {

namespace {

// Rebuilds a case with a subset of rules / facts kept.
GeneratedCase WithRules(const GeneratedCase& base,
                        const std::vector<Rule>& rules) {
  GeneratedCase out = base;
  out.theory = Theory();
  for (const Rule& r : rules) out.theory.AddRule(r);
  return out;
}

GeneratedCase WithFacts(const GeneratedCase& base,
                        const std::vector<Atom>& facts) {
  GeneratedCase out = base;
  out.database = Database();
  for (const Atom& a : facts) out.database.Insert(a);
  return out;
}

}  // namespace

GeneratedCase ShrinkCase(const GeneratedCase& failing,
                         const FailurePredicate& still_fails,
                         size_t max_checks, ShrinkStats* stats) {
  GeneratedCase best = failing;
  ShrinkStats local;
  ShrinkStats* st = stats != nullptr ? stats : &local;
  auto check = [&](const GeneratedCase& candidate) {
    if (st->checks >= max_checks) return false;
    ++st->checks;
    return still_fails(candidate);
  };

  bool progress = true;
  while (progress && st->checks < max_checks) {
    progress = false;

    // 1. Drop rule chunks, halving ddmin-style: try removing the first
    //    half, the second half, then each single rule.
    std::vector<Rule> rules = best.theory.rules();
    for (size_t chunk = std::max<size_t>(rules.size() / 2, 1);
         chunk >= 1 && rules.size() > 0; chunk /= 2) {
      for (size_t start = 0; start < rules.size();) {
        size_t end = std::min(start + chunk, rules.size());
        std::vector<Rule> kept(rules.begin(), rules.begin() + start);
        kept.insert(kept.end(), rules.begin() + end, rules.end());
        GeneratedCase candidate = WithRules(best, kept);
        if (check(candidate)) {
          st->removed_rules += end - start;
          best = std::move(candidate);
          rules = std::move(kept);
          progress = true;
          // Same start index now addresses the next chunk.
        } else {
          start = end;
        }
      }
      if (chunk == 1) break;
    }

    // 2. Drop facts, one at a time (databases are small).
    std::vector<Atom> facts = best.database.AtomsVector();
    for (size_t i = 0; i < facts.size();) {
      std::vector<Atom> kept(facts.begin(), facts.begin() + i);
      kept.insert(kept.end(), facts.begin() + i + 1, facts.end());
      GeneratedCase candidate = WithFacts(best, kept);
      if (check(candidate)) {
        ++st->removed_facts;
        best = std::move(candidate);
        facts = std::move(kept);
      } else {
        ++i;
      }
    }

    // 3. Drop query body atoms (keep at least one).
    while (best.query.body.size() > 1) {
      bool removed = false;
      for (size_t i = 0; i < best.query.body.size(); ++i) {
        GeneratedCase candidate = best;
        candidate.query.body.erase(candidate.query.body.begin() + i);
        if (check(candidate)) {
          ++st->removed_atoms;
          best = std::move(candidate);
          removed = true;
          progress = true;
          break;
        }
      }
      if (!removed) break;
    }

    // 4. Drop individual rule body literals (keep at least one per rule;
    //    the predicate rejects edits that break class membership).
    for (size_t ri = 0; ri < best.theory.rules().size(); ++ri) {
      for (size_t bi = 0; bi < best.theory.rules()[ri].body.size() &&
                          best.theory.rules()[ri].body.size() > 1;
           ++bi) {
        GeneratedCase candidate = best;
        candidate.theory.mutable_rules()[ri].body.erase(
            candidate.theory.mutable_rules()[ri].body.begin() + bi);
        if (check(candidate)) {
          ++st->removed_atoms;
          best = std::move(candidate);
          progress = true;
          --bi;  // The next literal shifted into this slot.
        }
      }
    }
  }
  return best;
}

}  // namespace gerel::testing
