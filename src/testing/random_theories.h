// Random theory/database generators for the property-based tests (now part of gerel_testing; see generator.h for the class-targeted generator).
#ifndef GEREL_TESTING_RANDOM_THEORIES_H_
#define GEREL_TESTING_RANDOM_THEORIES_H_

#include <random>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/rule.h"
#include "core/symbol_table.h"
#include "core/theory.h"

namespace gerel::testing {

struct RandomParams {
  int num_relations = 4;
  int max_arity = 2;
  int num_rules = 4;
  int max_body_atoms = 3;
  int num_vars = 4;
  // Probability that a rule gets an existential head variable.
  double existential_prob = 0.3;
  // Force every rule to be guarded (adds a wide guard atom when needed).
  bool force_guarded = false;
  // Force every rule to be frontier-guarded (adds a frontier guard).
  bool force_frontier_guarded = false;
};

class RandomTheoryGen {
 public:
  RandomTheoryGen(unsigned seed, SymbolTable* symbols)
      : rng_(seed), symbols_(symbols) {}

  Theory Theory_(const RandomParams& p) {
    relations_.clear();
    for (int i = 0; i < p.num_relations; ++i) {
      int arity = 1 + static_cast<int>(rng_() % p.max_arity);
      relations_.push_back(
          {symbols_->Relation("p" + std::to_string(i), arity), arity});
    }
    // A wide relation able to guard any rule of this generator.
    wide_ = {symbols_->Relation("wide", p.num_vars), p.num_vars};
    vars_.clear();
    for (int i = 0; i < p.num_vars; ++i) {
      vars_.push_back(symbols_->Variable("R" + std::to_string(i)));
    }
    Theory out;
    for (int i = 0; i < p.num_rules; ++i) out.AddRule(Rule_(p));
    return out;
  }

  // A database over the generator's relations (including `wide`).
  Database Database_(int num_atoms, int num_constants) {
    std::vector<Term> constants;
    for (int i = 0; i < num_constants; ++i) {
      constants.push_back(symbols_->Constant("k" + std::to_string(i)));
    }
    Database db;
    for (int i = 0; i < num_atoms; ++i) {
      const RelInfo& rel = (rng_() % 4 == 0 && wide_.arity > 0)
                               ? wide_
                               : relations_[rng_() % relations_.size()];
      std::vector<Term> args;
      for (int j = 0; j < rel.arity; ++j) {
        args.push_back(constants[rng_() % constants.size()]);
      }
      db.Insert(Atom(rel.id, args));
    }
    return db;
  }

  std::mt19937& rng() { return rng_; }

 private:
  struct RelInfo {
    RelationId id = 0;
    int arity = 0;
  };

  Atom RandomAtom(const std::vector<Term>& pool) {
    const RelInfo& rel = relations_[rng_() % relations_.size()];
    std::vector<Term> args;
    for (int i = 0; i < rel.arity; ++i) {
      args.push_back(pool[rng_() % pool.size()]);
    }
    return Atom(rel.id, args);
  }

  Rule Rule_(const RandomParams& p) {
    int body_atoms = 1 + static_cast<int>(rng_() % p.max_body_atoms);
    std::vector<Atom> body;
    std::vector<Term> used;
    for (int i = 0; i < body_atoms; ++i) {
      Atom a = RandomAtom(vars_);
      for (Term v : a.AllVars()) {
        if (std::find(used.begin(), used.end(), v) == used.end()) {
          used.push_back(v);
        }
      }
      body.push_back(std::move(a));
    }
    // Head over body variables, possibly with one existential variable.
    const RelInfo& head_rel = relations_[rng_() % relations_.size()];
    bool existential =
        (rng_() % 1000) < static_cast<unsigned>(p.existential_prob * 1000);
    Term evar = symbols_->Variable("E0");
    std::vector<Term> head_args;
    for (int i = 0; i < head_rel.arity; ++i) {
      if (existential && i == 0) {
        head_args.push_back(evar);
      } else {
        head_args.push_back(used[rng_() % used.size()]);
      }
    }
    Rule rule = Rule::Positive(body, {Atom(head_rel.id, head_args)});
    if (p.force_guarded) {
      // Guard with the wide relation over all body variables.
      std::vector<Term> guard_args = used;
      while (static_cast<int>(guard_args.size()) < wide_.arity) {
        guard_args.push_back(used[rng_() % used.size()]);
      }
      guard_args.resize(wide_.arity);
      // If the rule has more distinct vars than wide's arity, drop the
      // extras by merging them into guard vars (regenerate the body over
      // the guard vars instead — simplest: restrict used set).
      rule.body.emplace_back(Atom(wide_.id, guard_args));
      // Re-check: if some variable is outside the guard, substitute it.
      // (Only possible when used.size() > wide arity, which the params
      // prevent: num_vars == wide arity.)
    } else if (p.force_frontier_guarded) {
      std::vector<Term> frontier;
      for (Term v : rule.head[0].AllVars()) {
        if (std::find(used.begin(), used.end(), v) != used.end()) {
          frontier.push_back(v);
        }
      }
      if (!frontier.empty()) {
        std::vector<Term> guard_args = frontier;
        while (static_cast<int>(guard_args.size()) < wide_.arity) {
          guard_args.push_back(frontier[rng_() % frontier.size()]);
        }
        guard_args.resize(wide_.arity);
        rule.body.emplace_back(Atom(wide_.id, guard_args));
      }
    }
    return rule;
  }

  std::mt19937 rng_;
  SymbolTable* symbols_;
  std::vector<RelInfo> relations_;
  RelInfo wide_;
  std::vector<Term> vars_;
};

}  // namespace gerel::testing

#endif  // GEREL_TESTING_RANDOM_THEORIES_H_
