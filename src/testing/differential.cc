#include "testing/differential.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

#include "analyze/analyze.h"
#include "analyze/render.h"
#include "analyze/termination.h"
#include "chase/chase.h"
#include "core/budget.h"
#include "core/classify.h"
#include "core/fault.h"
#include "core/printer.h"
#include "datalog/evaluator.h"
#include "service/prepared_kb.h"
#include "testing/shrink.h"
#include "transform/pipeline.h"

namespace gerel::testing {

namespace {

using AnswerSet = std::set<std::vector<Term>>;

// Deterministic per-case seed: splitmix64 over (base seed, class, iter).
unsigned CaseSeed(unsigned seed, unsigned cls, unsigned iter) {
  uint64_t z = static_cast<uint64_t>(seed) * 0x9E3779B97F4A7C15ull +
               static_cast<uint64_t>(cls) * 0xBF58476D1CE4E5B9ull +
               static_cast<uint64_t>(iter) * 0x94D049BB133111EBull;
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ull;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBull;
  z ^= z >> 31;
  return static_cast<unsigned>(z ^ (z >> 32));
}

std::set<std::string> GroundFactSet(const Database& db, const Theory& theory,
                                    const SymbolTable& symbols) {
  std::set<RelationId> rels;
  for (RelationId r : theory.Relations()) rels.insert(r);
  std::set<std::string> out;
  for (const Atom& a : db.atoms()) {
    if (rels.count(a.pred) > 0 && a.IsGroundOverConstants()) {
      out.insert(ToString(a, symbols));
    }
  }
  return out;
}

AnswerSet CollectAnswers(const Database& db, RelationId output) {
  AnswerSet out;
  for (uint32_t i : db.AtomsOf(output)) {
    const Atom& a = db.atom(i);
    if (a.IsGroundOverConstants()) out.insert(a.args);
  }
  return out;
}

bool IsSubset(const AnswerSet& small, const AnswerSet& big) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

std::string TupleString(const std::vector<Term>& tuple,
                        const SymbolTable& symbols) {
  std::string out = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ", ";
    out += ToString(tuple[i], symbols);
  }
  return out + ")";
}

std::string DescribeAnswerDiff(const AnswerSet& expect, const AnswerSet& got,
                               const SymbolTable& symbols) {
  std::string out = "expected " + std::to_string(expect.size()) +
                    " answers, got " + std::to_string(got.size());
  for (const auto& t : expect) {
    if (got.count(t) == 0) {
      out += "; missing " + TupleString(t, symbols);
      break;
    }
  }
  for (const auto& t : got) {
    if (expect.count(t) == 0) {
      out += "; extra " + TupleString(t, symbols);
      break;
    }
  }
  return out;
}

std::string DescribeFactDiff(const std::set<std::string>& expect,
                             const std::set<std::string>& got) {
  std::string out = "expected " + std::to_string(expect.size()) +
                    " facts, got " + std::to_string(got.size());
  for (const std::string& s : expect) {
    if (got.count(s) == 0) {
      out += "; missing " + s;
      break;
    }
  }
  for (const std::string& s : got) {
    if (expect.count(s) == 0) {
      out += "; extra " + s;
      break;
    }
  }
  return out;
}

// Applies a constant renaming (metamorphic lane M2).
Atom RenameAtom(const Atom& a, const std::map<Term, Term>& map) {
  Atom out = a;
  for (Term& t : out.args) {
    auto it = map.find(t);
    if (it != map.end()) t = it->second;
  }
  for (Term& t : out.annotation) {
    auto it = map.find(t);
    if (it != map.end()) t = it->second;
  }
  return out;
}

Rule RenameRule(const Rule& r, const std::map<Term, Term>& map) {
  Rule out = r;
  for (Literal& l : out.body) l.atom = RenameAtom(l.atom, map);
  for (Atom& h : out.head) h = RenameAtom(h, map);
  return out;
}

// Chase of (Σ ∪ {acdom-guarded cq}, D), collecting the query answers.
// Returns false (unsaturated) in *saturated if caps were hit.
AnswerSet ChaseCqAnswers(const Theory& theory, const Rule& cq,
                         const Database& db, SymbolTable* symbols,
                         const ChaseOptions& options, bool* saturated) {
  Theory with_q = theory;
  with_q.AddRule(GuardConjunctiveQuery(cq, symbols));
  ChaseResult r = Chase(with_q, db, symbols, options);
  *saturated = r.saturated;
  return CollectAnswers(r.database, cq.head[0].pred);
}

}  // namespace

const char* FaultTag(Fault fault) {
  switch (fault) {
    case Fault::kNone: return "none";
    case Fault::kDropAcdomGuard: return "drop-acdom-guard";
    case Fault::kSkipSaturationStep: return "skip-saturation-step";
    case Fault::kStaleAnswerCache: return "stale-answer-cache";
  }
  return "?";
}

bool ParseFault(std::string_view tag, Fault* out) {
  for (Fault f : {Fault::kNone, Fault::kDropAcdomGuard,
                  Fault::kSkipSaturationStep, Fault::kStaleAnswerCache}) {
    if (tag == FaultTag(f)) {
      *out = f;
      return true;
    }
  }
  return false;
}

CaseVerdict CheckCase(const GeneratedCase& c, SymbolTable* symbols,
                      const DiffOptions& options, DiffFailure* failure) {
  failure->cls = c.cls;
  failure->case_seed = c.seed;
  auto fail = [&](const char* lane, std::string detail) {
    failure->lane = lane;
    failure->detail = std::move(detail);
    return CaseVerdict::kFail;
  };

  // Lint lane: every generated theory must pass through the static
  // analyzer without crashing, and the rendered diagnostics must be
  // byte-identical across runs (Analyze is a pure function of the
  // case). Runs before the oracle so even skipped cases are linted.
  {
    AnalyzeOptions ao;
    ao.explain = true;
    RenderOptions ro;
    ro.file = "<fuzz>";
    AnalysisResult a1 = Analyze(c.theory, c.database, *symbols, ao);
    AnalysisResult a2 = Analyze(c.theory, c.database, *symbols, ao);
    std::string r1 = RenderText(a1, ro) + RenderJson(a1, ro);
    std::string r2 = RenderText(a2, ro) + RenderJson(a2, ro);
    if (r1 != r2) {
      return fail("lint-determinism",
                  "two Analyze runs rendered different diagnostics");
    }
  }

  // Ground truth: the naive oracle. Unsaturated instances are skipped
  // (certain-answer comparison needs a terminating chase).
  OracleResult oracle = OracleChase(c.theory, c.database, symbols,
                                    options.oracle);
  if (!oracle.saturated) return CaseVerdict::kSkip;
  std::set<std::string> facts_expect =
      OracleGroundFacts(oracle, c.theory, *symbols);
  AnswerSet expect = OracleCqAnswers(oracle, c.query);

  // The production chase gets generous caps: it fires the same oblivious
  // triggers as the oracle, so if the oracle saturated, it must too.
  ChaseOptions chase_opts;
  chase_opts.max_steps = options.oracle.max_steps * 20;
  chase_opts.max_atoms = options.oracle.max_atoms * 20;

  // Lane: oracle vs. production chase, ground facts.
  ChaseResult chase = Chase(c.theory, c.database, symbols, chase_opts);
  if (!chase.saturated) {
    return fail("chase-saturation",
                "oracle saturated but the production chase did not");
  }
  std::set<std::string> facts_chase =
      GroundFactSet(chase.database, c.theory, *symbols);
  if (facts_chase != facts_expect) {
    return fail("oracle-vs-chase-facts",
                DescribeFactDiff(facts_expect, facts_chase));
  }

  // Lane: piece-parallel chase determinism. The chase at 2 and 4 worker
  // lanes must be byte-identical to the sequential run — same atoms in
  // the same order, same labeled-null names, same step count. Each run
  // gets its own copy of the symbol table so fresh-null interning cannot
  // leak between runs and mask (or fake) a divergence.
  {
    SymbolTable seq_syms = *symbols;
    ChaseOptions seq_opts = chase_opts;
    seq_opts.num_threads = 1;
    ChaseResult seq = Chase(c.theory, c.database, &seq_syms, seq_opts);
    std::string seq_text = ToString(seq.database, seq_syms);
    for (size_t threads : {size_t{2}, size_t{4}}) {
      SymbolTable par_syms = *symbols;
      ChaseOptions par_opts = chase_opts;
      par_opts.num_threads = threads;
      ChaseResult par = Chase(c.theory, c.database, &par_syms, par_opts);
      if (par.saturated != seq.saturated || par.steps != seq.steps ||
          ToString(par.database, par_syms) != seq_text) {
        return fail("chase-parallel-determinism",
                    "chase with num_threads=" + std::to_string(threads) +
                        " diverged from the sequential run (" +
                        std::to_string(par.database.size()) + " vs " +
                        std::to_string(seq.database.size()) + " atoms, " +
                        std::to_string(par.steps) + " vs " +
                        std::to_string(seq.steps) + " steps)");
      }
    }
  }

  // Lane: oracle vs. chase CQ answers.
  bool sat = false;
  AnswerSet chase_ans =
      ChaseCqAnswers(c.theory, c.query, c.database, symbols, chase_opts, &sat);
  if (sat && chase_ans != expect) {
    return fail("oracle-vs-chase-answers",
                DescribeAnswerDiff(expect, chase_ans, *symbols));
  }

  // Metamorphic: fact-order permutation (reverse the database).
  if (sat) {
    Database reversed;
    std::vector<Atom> atoms = c.database.AtomsVector();
    for (auto it = atoms.rbegin(); it != atoms.rend(); ++it) {
      reversed.Insert(*it);
    }
    bool rsat = false;
    AnswerSet rans = ChaseCqAnswers(c.theory, c.query, reversed, symbols,
                                    chase_opts, &rsat);
    if (rsat && rans != expect) {
      return fail("metamorphic-fact-order",
                  DescribeAnswerDiff(expect, rans, *symbols));
    }

    // Metamorphic: bijective constant renaming. Answers must be the
    // renamed answers.
    std::map<Term, Term> ren;
    for (const Atom& a : c.database.atoms()) {
      for (Term t : a.AllTerms()) {
        if (t.IsConstant() && ren.count(t) == 0) {
          ren[t] = symbols->Constant("rn_" + symbols->TermName(t));
        }
      }
    }
    for (Term t : c.theory.Constants()) {
      if (ren.count(t) == 0) {
        ren[t] = symbols->Constant("rn_" + symbols->TermName(t));
      }
    }
    Theory rth;
    for (const Rule& r : c.theory.rules()) rth.AddRule(RenameRule(r, ren));
    Database rdb;
    for (const Atom& a : c.database.atoms()) rdb.Insert(RenameAtom(a, ren));
    Rule rq = RenameRule(c.query, ren);
    AnswerSet mapped;
    for (const std::vector<Term>& t : expect) {
      std::vector<Term> m = t;
      for (Term& x : m) {
        auto it = ren.find(x);
        if (it != ren.end()) x = it->second;
      }
      mapped.insert(std::move(m));
    }
    bool msat = false;
    AnswerSet mans = ChaseCqAnswers(rth, rq, rdb, symbols, chase_opts, &msat);
    if (msat && mans != mapped) {
      return fail("metamorphic-renaming",
                  DescribeAnswerDiff(mapped, mans, *symbols));
    }

    // Metamorphic: rule duplication never changes certain answers.
    if (c.theory.size() > 0) {
      Theory dup = c.theory;
      dup.AddRule(c.theory.rules()[0]);
      bool dsat = false;
      AnswerSet dans =
          ChaseCqAnswers(dup, c.query, c.database, symbols, chase_opts, &dsat);
      if (dsat && dans != expect) {
        return fail("metamorphic-rule-dup",
                    DescribeAnswerDiff(expect, dans, *symbols));
      }
    }
  }

  Classification cls = Classify(c.theory);

  // Shared pipeline caps: these theories are tiny, so a closure that
  // runs away is pathological — bound it hard and fall back to the
  // soundness check (complete=false) rather than burning time (an
  // uncapped fg saturation can take seconds per case).
  KbQueryOptions pipeline_opts;
  pipeline_opts.saturation.max_rules = 400;
  pipeline_opts.saturation.max_body_atoms = 6;
  pipeline_opts.expansion.max_rules = 2000;
  pipeline_opts.grounding.max_rules = 2000;
  if (options.fault == Fault::kSkipSaturationStep) {
    pipeline_opts.saturation.enable_composition = false;
  }
  // A missing saturation step marks the result incomplete; the seeded
  // bug simulates an engine that skips the step *silently*, so the
  // harness must trust such results as if complete.
  bool trust_incomplete = options.fault == Fault::kSkipSaturationStep;

  // Lane: the §7 pipeline (rew → pg → dat → evaluate).
  if (cls.weakly_frontier_guarded) {
    Result<KbQueryResult> r =
        AnswerKbQuery(c.theory, c.query, c.database, symbols, pipeline_opts);
    if (r.ok()) {
      bool complete = r.value().complete || trust_incomplete;
      if (complete && r.value().answers != expect) {
        return fail("oracle-vs-pipeline-wfg",
                    DescribeAnswerDiff(expect, r.value().answers, *symbols));
      }
      if (!IsSubset(r.value().answers, expect)) {
        return fail("pipeline-wfg-unsound",
                    DescribeAnswerDiff(expect, r.value().answers, *symbols));
      }
    }
  }

  // Lane: the nearly frontier-guarded PTime route (Prop 4 + Prop 6).
  // May reject the combined (Σ, cq) on shape; that is a precondition,
  // not a failure.
  if (cls.nearly_frontier_guarded) {
    Result<KbQueryResult> r = AnswerKbQueryNearlyFrontierGuarded(
        c.theory, c.query, c.database, symbols, pipeline_opts);
    if (r.ok()) {
      bool complete = r.value().complete || trust_incomplete;
      if (complete && r.value().answers != expect) {
        return fail("oracle-vs-pipeline-nfg",
                    DescribeAnswerDiff(expect, r.value().answers, *symbols));
      }
      if (!IsSubset(r.value().answers, expect)) {
        return fail("pipeline-nfg-unsound",
                    DescribeAnswerDiff(expect, r.value().answers, *symbols));
      }
    }
  }

  // Lanes: PreparedKb — fresh, cached, N threads, incremental assert.
  if (cls.weakly_frontier_guarded) {
    PreparedKbOptions po;
    po.pipeline = pipeline_opts;
    if (options.fault == Fault::kDropAcdomGuard) {
      po.datalog.populate_acdom = false;
    }
    Result<std::unique_ptr<PreparedKb>> kb =
        PreparedKb::Prepare(c.theory, c.database, symbols, po);
    AnswerSet fresh_answers;
    bool have_fresh = false;
    bool fresh_complete = false;
    if (kb.ok()) {
      Result<PreparedQueryResult> q1 = kb.value()->Query(c.query);
      if (q1.ok()) {
        have_fresh = true;
        fresh_answers = q1.value().answers;
        fresh_complete =
            q1.value().complete || options.fault != Fault::kNone;
        if (fresh_complete && fresh_answers != expect) {
          return fail("oracle-vs-prepared",
                      DescribeAnswerDiff(expect, fresh_answers, *symbols));
        }
        if (!IsSubset(fresh_answers, expect)) {
          return fail("prepared-unsound",
                      DescribeAnswerDiff(expect, fresh_answers, *symbols));
        }
        // Cache lane: the second query must serve identical answers.
        Result<PreparedQueryResult> q2 = kb.value()->Query(c.query);
        if (q2.ok() && q2.value().answers != fresh_answers) {
          return fail("prepared-cache",
                      DescribeAnswerDiff(fresh_answers, q2.value().answers,
                                         *symbols));
        }
      }
    }

    // Parallel lane: N-thread materialization answers the same.
    if (have_fresh && options.num_threads > 1) {
      PreparedKbOptions pn = po;
      pn.datalog.num_threads = options.num_threads;
      Result<std::unique_ptr<PreparedKb>> kbn =
          PreparedKb::Prepare(c.theory, c.database, symbols, pn);
      if (kbn.ok()) {
        Result<PreparedQueryResult> qn = kbn.value()->Query(c.query);
        if (qn.ok() && qn.value().answers != fresh_answers) {
          return fail("prepared-threads",
                      DescribeAnswerDiff(fresh_answers, qn.value().answers,
                                         *symbols));
        }
      }
    }

    // Incremental lane: prepare on the first half, assert the rest; the
    // final answers must match the fresh full prepare. Also checks
    // assert-order independence (reversed second half).
    if (have_fresh && c.database.size() >= 2) {
      std::vector<Atom> atoms = c.database.AtomsVector();
      size_t half = atoms.size() / 2;
      Database d1;
      for (size_t i = 0; i < half; ++i) d1.Insert(atoms[i]);
      std::vector<Atom> d2(atoms.begin() + half, atoms.end());
      Result<std::unique_ptr<PreparedKb>> kbi =
          PreparedKb::Prepare(c.theory, d1, symbols, po);
      if (kbi.ok()) {
        AnswerSet stale;
        if (options.fault == Fault::kStaleAnswerCache) {
          Result<PreparedQueryResult> qa = kbi.value()->Query(c.query);
          if (qa.ok()) stale = qa.value().answers;
        }
        Result<AssertResult> ar = kbi.value()->Assert(d2);
        if (ar.ok()) {
          Result<PreparedQueryResult> qi = kbi.value()->Query(c.query);
          if (qi.ok()) {
            // A stale cache serves the pre-assert answers.
            const AnswerSet& inc_answers =
                options.fault == Fault::kStaleAnswerCache
                    ? stale
                    : qi.value().answers;
            bool inc_complete = qi.value().complete ||
                                options.fault != Fault::kNone;
            if (fresh_complete && inc_complete &&
                inc_answers != fresh_answers) {
              return fail(options.fault == Fault::kStaleAnswerCache
                              ? "prepared-stale-cache"
                              : "prepared-incremental",
                          DescribeAnswerDiff(fresh_answers, inc_answers,
                                             *symbols));
            }
          }
        }
        // Assert-order independence: reversed second half.
        std::vector<Atom> d2r(d2.rbegin(), d2.rend());
        Result<std::unique_ptr<PreparedKb>> kbr =
            PreparedKb::Prepare(c.theory, d1, symbols, po);
        if (kbr.ok() && kbr.value()->Assert(d2r).ok()) {
          Result<PreparedQueryResult> qr = kbr.value()->Query(c.query);
          Result<PreparedQueryResult> qi2 = kbi.value()->Query(c.query);
          if (qr.ok() && qi2.ok() &&
              qr.value().answers != qi2.value().answers) {
            return fail("metamorphic-assert-order",
                        DescribeAnswerDiff(qi2.value().answers,
                                           qr.value().answers, *symbols));
          }
        }
      }
    }
  }

  // Lanes: naive vs. semi-naive vs. parallel Datalog (Datalog theories:
  // the least model is the chase, so the oracle facts are ground truth).
  bool is_datalog = true;
  for (const Rule& r : c.theory.rules()) {
    if (!r.IsDatalog()) is_datalog = false;
  }
  if (is_datalog) {
    struct EngineConfig {
      const char* lane;
      bool seminaive;
      int threads;
    };
    const EngineConfig configs[] = {
        {"datalog-naive", false, 1},
        {"datalog-seminaive", true, 1},
        {"datalog-parallel", true, options.num_threads},
    };
    for (const EngineConfig& cfg : configs) {
      DatalogOptions dopt;
      dopt.seminaive = cfg.seminaive;
      dopt.num_threads = cfg.threads;
      Result<DatalogResult> r =
          EvaluateDatalog(c.theory, c.database, symbols, dopt);
      if (!r.ok()) continue;
      std::set<std::string> facts =
          GroundFactSet(r.value().database, c.theory, *symbols);
      if (facts != facts_expect) {
        return fail(cfg.lane, DescribeFactDiff(facts_expect, facts));
      }
    }
  }

  return CaseVerdict::kOk;
}

namespace {

// One fault-recovery case: every faulted run must be byte-identical to
// the clean run or degrade cleanly (subset + populated reason). See the
// header comment on RunFaultRecovery for the lane list.
CaseVerdict CheckFaultRecoveryCase(const GeneratedCase& c,
                                   SymbolTable* symbols,
                                   const DiffOptions& options,
                                   DiffFailure* failure) {
  failure->cls = c.cls;
  failure->case_seed = c.seed;
  auto fail = [&](const char* lane, std::string detail) {
    failure->lane = lane;
    failure->detail = std::move(detail);
    return CaseVerdict::kFail;
  };

  ChaseOptions chase_opts;
  chase_opts.max_steps = options.oracle.max_steps * 20;
  chase_opts.max_atoms = options.oracle.max_atoms * 20;

  // Clean sequential chase: the reference for every faulted run.
  SymbolTable clean_syms = *symbols;
  ChaseResult clean = Chase(c.theory, c.database, &clean_syms, chase_opts);
  std::string clean_text = ToString(clean.database, clean_syms);
  std::set<std::string> clean_facts =
      GroundFactSet(clean.database, c.theory, clean_syms);

  // Lane: forced budget exhaustion at a seeded round. The trip happens
  // in CheckRound on the coordinating thread at a round boundary, so the
  // truncated chase must be byte-identical for any worker-lane count and
  // a prefix of the clean run (facts ⊆ clean facts).
  {
    FaultPlan plan;
    plan.exhaust_stage = GovernedStage::kChase;
    plan.exhaust_round = 1 + c.seed % 3;
    std::string first_text;
    size_t first_steps = 0;
    bool first_saturated = false;
    bool have_first = false;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      SymbolTable fsyms = *symbols;
      ExecutionBudget budget(BudgetLimits{}, &plan);
      ChaseOptions fopts = chase_opts;
      fopts.num_threads = threads;
      fopts.budget = &budget;
      ChaseResult faulted = Chase(c.theory, c.database, &fsyms, fopts);
      if (!faulted.saturated) {
        if (!faulted.degradation.degraded()) {
          return fail("fault-chase-reason",
                      "budget-exhausted chase reported no DegradationReason");
        }
        if (faulted.degradation.limit != BudgetLimit::kFault) {
          return fail("fault-chase-reason",
                      "expected a kFault degradation, got " +
                          faulted.degradation.ToString());
        }
      }
      std::set<std::string> faulted_facts =
          GroundFactSet(faulted.database, c.theory, fsyms);
      if (!std::includes(clean_facts.begin(), clean_facts.end(),
                         faulted_facts.begin(), faulted_facts.end())) {
        return fail("fault-chase-unsound",
                    "budget-exhausted chase derived facts outside the "
                    "clean chase");
      }
      std::string text = ToString(faulted.database, fsyms);
      if (!have_first) {
        have_first = true;
        first_text = text;
        first_steps = faulted.steps;
        first_saturated = faulted.saturated;
      } else if (text != first_text || faulted.steps != first_steps ||
                 faulted.saturated != first_saturated) {
        return fail("fault-chase-determinism",
                    "budget-exhausted chase diverged at num_threads=" +
                        std::to_string(threads));
      }
    }
  }

  // Lane: worker-delay injection must never change a single byte. The
  // delay is 0µs (= thread yield): timed sleeps cost ~1ms of timer
  // granularity per call on small hosts, while a yield perturbs lane
  // interleaving nearly for free.
  {
    FaultPlan plan;
    plan.worker_delay_us = 0;
    plan.worker_delay_every = 7;
    ExecutionBudget budget(BudgetLimits{}, &plan);
    SymbolTable dsyms = *symbols;
    ChaseOptions dopts = chase_opts;
    dopts.num_threads = 2;
    dopts.budget = &budget;
    ChaseResult delayed = Chase(c.theory, c.database, &dsyms, dopts);
    if (delayed.saturated != clean.saturated ||
        delayed.steps != clean.steps ||
        ToString(delayed.database, dsyms) != clean_text) {
      return fail("fault-worker-delay",
                  "worker-delay injection changed the chase result");
    }
  }

  // The service lanes need a weakly frontier-guarded theory.
  Classification cls = Classify(c.theory);
  if (!cls.weakly_frontier_guarded) return CaseVerdict::kOk;
  KbQueryOptions pipeline_opts;
  pipeline_opts.saturation.max_rules = 400;
  pipeline_opts.saturation.max_body_atoms = 6;
  pipeline_opts.expansion.max_rules = 2000;
  pipeline_opts.grounding.max_rules = 2000;
  PreparedKbOptions po;
  po.pipeline = pipeline_opts;

  Result<std::unique_ptr<PreparedKb>> kb =
      PreparedKb::Prepare(c.theory, c.database, symbols, po);
  if (!kb.ok()) return CaseVerdict::kSkip;
  Result<PreparedQueryResult> clean_q = kb.value()->Query(c.query);
  if (!clean_q.ok()) return CaseVerdict::kSkip;
  const AnswerSet& clean_ans = clean_q.value().answers;

  // Lane: forced exhaustion during materialization. Answers must stay
  // sound (⊆ clean), carry complete=false plus a populated reason, and
  // agree across thread counts (round-boundary trips are deterministic).
  {
    FaultPlan plan;
    plan.exhaust_stage = GovernedStage::kDatalog;
    plan.exhaust_round = 1;
    SetFaultPlanForTest(&plan);
    AnswerSet first_ans;
    bool have_first = false;
    for (int threads : {1, options.num_threads}) {
      PreparedKbOptions pf = po;
      pf.datalog.num_threads = threads;
      Result<std::unique_ptr<PreparedKb>> kbf =
          PreparedKb::Prepare(c.theory, c.database, symbols, pf);
      if (!kbf.ok()) {
        SetFaultPlanForTest(nullptr);
        return fail("fault-prepared-error",
                    "forced exhaustion failed the prepare instead of "
                    "degrading: " + std::string(kbf.status().message()));
      }
      Result<PreparedQueryResult> qf = kbf.value()->Query(c.query);
      if (!qf.ok()) {
        SetFaultPlanForTest(nullptr);
        return fail("fault-prepared-error",
                    "query on a degraded KB failed: " +
                        std::string(qf.status().message()));
      }
      if (!IsSubset(qf.value().answers, clean_ans)) {
        SetFaultPlanForTest(nullptr);
        return fail("fault-prepared-unsound",
                    DescribeAnswerDiff(clean_ans, qf.value().answers,
                                       *symbols));
      }
      if (!kbf.value()->prepare_complete() &&
          !kbf.value()->degradation().degraded()) {
        SetFaultPlanForTest(nullptr);
        return fail("fault-prepared-reason",
                    "degraded prepare reported no DegradationReason");
      }
      if (!have_first) {
        have_first = true;
        first_ans = qf.value().answers;
      } else if (qf.value().answers != first_ans) {
        SetFaultPlanForTest(nullptr);
        return fail("fault-prepared-determinism",
                    "degraded prepare diverged across thread counts");
      }
    }
    SetFaultPlanForTest(nullptr);
  }

  // Snapshot lanes need a writable scratch path.
  const char* tmpdir = std::getenv("TMPDIR");
  std::string path = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                     "/gerel-frec-" + std::to_string(c.seed) + ".snap";

  // Lane: clean snapshot round trip — identical answers and model size.
  {
    Status s = kb.value()->SaveSnapshot(path);
    if (!s.ok()) {
      return fail("fault-snapshot-save", std::string(s.message()));
    }
    SymbolTable load_syms;
    Result<std::unique_ptr<PreparedKb>> loaded =
        PreparedKb::LoadSnapshot(path, &load_syms, po);
    if (!loaded.ok()) {
      std::remove(path.c_str());
      return fail("fault-snapshot-load",
                  "clean snapshot failed to load: " +
                      std::string(loaded.status().message()));
    }
    if (loaded.value()->model_size() != kb.value()->model_size()) {
      std::remove(path.c_str());
      return fail("fault-snapshot-roundtrip", "model size changed");
    }
    Result<PreparedQueryResult> ql = loaded.value()->Query(c.query);
    if (!ql.ok() || ql.value().answers != clean_ans) {
      std::remove(path.c_str());
      return fail("fault-snapshot-roundtrip",
                  ql.ok() ? DescribeAnswerDiff(clean_ans,
                                               ql.value().answers, load_syms)
                          : std::string(ql.status().message()));
    }
  }

  // Lane: seeded truncation and bit-flips are always detected at load,
  // and a fresh Prepare (re-materialization) recovers the clean answers.
  {
    FaultPlan truncate;
    truncate.snapshot_truncate_at = 10 + static_cast<int64_t>(c.seed % 8);
    FaultPlan flip_header;
    flip_header.snapshot_flip_byte = 2;
    FaultPlan flip_payload;
    flip_payload.snapshot_flip_byte = 21 + static_cast<int64_t>(c.seed % 4);
    for (const FaultPlan* plan : {&truncate, &flip_header, &flip_payload}) {
      SetFaultPlanForTest(plan);
      Status s = kb.value()->SaveSnapshot(path);
      SetFaultPlanForTest(nullptr);
      if (!s.ok()) {
        std::remove(path.c_str());
        return fail("fault-snapshot-save", std::string(s.message()));
      }
      SymbolTable load_syms;
      Result<std::unique_ptr<PreparedKb>> loaded =
          PreparedKb::LoadSnapshot(path, &load_syms, po);
      if (loaded.ok()) {
        std::remove(path.c_str());
        return fail("fault-snapshot-corruption",
                    "corrupted snapshot loaded without an error");
      }
    }
    std::remove(path.c_str());
    SymbolTable rsyms = *symbols;
    Result<std::unique_ptr<PreparedKb>> rkb =
        PreparedKb::Prepare(c.theory, c.database, &rsyms, po);
    if (!rkb.ok()) {
      return fail("fault-snapshot-recovery",
                  std::string(rkb.status().message()));
    }
    Result<PreparedQueryResult> qr = rkb.value()->Query(c.query);
    if (!qr.ok() || qr.value().answers != clean_ans) {
      return fail("fault-snapshot-recovery",
                  "re-materialization after corruption diverged from the "
                  "clean run");
    }
  }

  return CaseVerdict::kOk;
}

// Certain ground facts of a materialized model (theory relations only;
// atoms mentioning labeled nulls are identity-sensitive and excluded).
std::set<std::string> GroundFactSetOf(const std::vector<Atom>& atoms,
                                      const Theory& theory,
                                      const SymbolTable& symbols) {
  std::set<RelationId> rels;
  for (RelationId r : theory.Relations()) rels.insert(r);
  std::set<std::string> out;
  for (const Atom& a : atoms) {
    if (rels.count(a.pred) > 0 && a.IsGroundOverConstants()) {
      out.insert(ToString(a, symbols));
    }
  }
  return out;
}

// One CRUD case: see the RunCrud header comment for the checked
// properties.
CaseVerdict CheckCrudCase(const GeneratedCase& c, SymbolTable* symbols,
                          const DiffOptions& options, DiffFailure* failure) {
  failure->cls = c.cls;
  failure->case_seed = c.seed;
  auto fail = [&](const char* lane, std::string detail) {
    failure->lane = lane;
    failure->detail = std::move(detail);
    return CaseVerdict::kFail;
  };

  Classification cls = Classify(c.theory);
  if (!cls.weakly_frontier_guarded) return CaseVerdict::kSkip;

  KbQueryOptions pipeline_opts;
  pipeline_opts.saturation.max_rules = 400;
  pipeline_opts.saturation.max_body_atoms = 6;
  pipeline_opts.expansion.max_rules = 2000;
  pipeline_opts.grounding.max_rules = 2000;
  PreparedKbOptions po;
  po.pipeline = pipeline_opts;
  po.datalog.num_threads = options.num_threads;

  bool is_datalog = true;
  for (const Rule& r : c.theory.rules()) {
    if (!r.IsDatalog()) is_datalog = false;
  }

  // Start the KB on a prefix of the generated database; the suffix is
  // the assert pool.
  std::vector<Atom> all = c.database.AtomsVector();
  size_t start_n = (all.size() * 2) / 3;
  if (start_n == 0 && !all.empty()) start_n = 1;
  std::vector<Atom> edb(all.begin(), all.begin() + start_n);
  std::vector<Atom> pool(all.begin() + start_n, all.end());
  Database d0;
  for (const Atom& a : edb) d0.Insert(a);
  Result<std::unique_ptr<PreparedKb>> prepared =
      PreparedKb::Prepare(c.theory, d0, symbols, po);
  if (!prepared.ok()) return CaseVerdict::kSkip;
  PreparedKb* kb = prepared.value().get();

  size_t compared = 0;
  bool checkpoint_failed = false;
  // Human-readable op trace, prefixed to failure details so a repro
  // names the exact interleaving.
  std::string ops_log;
  // Compares the live KB against a fresh Prepare from the surviving
  // EDB. Returns false with *failure set when a property is violated.
  auto checkpoint = [&](const char* when) -> bool {
    Database cur;
    for (const Atom& a : edb) cur.Insert(a);
    Result<std::unique_ptr<PreparedKb>> fresh =
        PreparedKb::Prepare(c.theory, cur, symbols, po);
    if (!fresh.ok()) return true;  // Nothing comparable.
    if (kb->prepare_complete() && fresh.value()->prepare_complete()) {
      std::set<std::string> live_facts;
      std::set<std::string> fresh_facts;
      if (is_datalog) {
        // Null-free models compare exactly.
        for (const Atom& a : kb->ModelAtoms()) {
          live_facts.insert(ToString(a, *symbols));
        }
        for (const Atom& a : fresh.value()->ModelAtoms()) {
          fresh_facts.insert(ToString(a, *symbols));
        }
      } else {
        live_facts = GroundFactSetOf(kb->ModelAtoms(), c.theory, *symbols);
        fresh_facts =
            GroundFactSetOf(fresh.value()->ModelAtoms(), c.theory, *symbols);
      }
      if (live_facts != fresh_facts) {
        fail("crud-model", "[" + ops_log + "] " + when + ": " +
                               DescribeFactDiff(fresh_facts, live_facts));
        return false;
      }
      ++compared;
    }
    Result<PreparedQueryResult> ql = kb->Query(c.query);
    Result<PreparedQueryResult> qf = fresh.value()->Query(c.query);
    if (ql.ok() && qf.ok() && qf.value().complete) {
      if (ql.value().complete) {
        if (ql.value().answers != qf.value().answers) {
          fail("crud-answers",
               "[" + ops_log + "] " + when + ": " +
                   DescribeAnswerDiff(qf.value().answers, ql.value().answers,
                                      *symbols));
          return false;
        }
      } else if (!IsSubset(ql.value().answers, qf.value().answers)) {
        fail("crud-unsound",
             "[" + ops_log + "] " + when + ": " +
                 DescribeAnswerDiff(qf.value().answers, ql.value().answers,
                                    *symbols));
        return false;
      }
      ++compared;
    }
    return true;
  };

  std::mt19937 rng(c.seed);
  const size_t kOps = 8;
  for (size_t op = 0; op < kOps && !checkpoint_failed; ++op) {
    switch (rng() % 3) {
      case 0: {  // Assert up to two pool atoms.
        if (pool.empty()) break;
        std::vector<Atom> batch;
        size_t take = 1 + rng() % 2;
        while (take-- > 0 && !pool.empty()) {
          batch.push_back(pool.back());
          pool.pop_back();
        }
        for (const Atom& a : batch) {
          ops_log += "assert " + ToString(a, *symbols) + "; ";
        }
        Result<AssertResult> ar = kb->Assert(batch);
        if (!ar.ok()) return fail("crud-assert", ar.status().message());
        edb.insert(edb.end(), batch.begin(), batch.end());
        if (!checkpoint("after assert")) checkpoint_failed = true;
        break;
      }
      case 1: {  // Retract one random surviving EDB fact.
        if (edb.empty()) break;
        size_t idx = rng() % edb.size();
        Atom victim = edb[idx];
        ops_log += "retract " + ToString(victim, *symbols) + "; ";
        Result<RetractResult> rr = kb->Retract({victim});
        if (!rr.ok()) return fail("crud-retract", rr.status().message());
        edb.erase(edb.begin() + idx);
        // Retracting it again must fail cleanly without mutating.
        size_t before = kb->model_size();
        Result<RetractResult> again = kb->Retract({victim});
        if (again.ok()) {
          return fail("crud-retract-missing-error",
                      "retract of a non-EDB fact succeeded");
        }
        if (kb->model_size() != before) {
          return fail("crud-retract-error-mutated",
                      "failed retract changed the model size");
        }
        if (!checkpoint("after retract")) checkpoint_failed = true;
        break;
      }
      case 2: {  // Query (populates the cache across mutations).
        ops_log += "query; ";
        (void)kb->Query(c.query);
        break;
      }
    }
  }
  if (checkpoint_failed) return CaseVerdict::kFail;
  return compared > 0 ? CaseVerdict::kOk : CaseVerdict::kSkip;
}

}  // namespace

DiffReport RunCrud(unsigned seed, size_t iters,
                   const std::vector<GenClass>& classes,
                   const DiffOptions& options) {
  const std::vector<GenClass>& run_classes =
      classes.empty() ? AllGenClasses() : classes;
  DiffReport report;
  for (GenClass cls : run_classes) {
    unsigned cls_index = static_cast<unsigned>(cls);
    for (size_t iter = 0; iter < iters; ++iter) {
      unsigned cseed = CaseSeed(seed, cls_index, static_cast<unsigned>(iter));
      SymbolTable symbols;
      CaseGenerator gen(cseed, &symbols, options.gen);
      GeneratedCase c = gen.Next(cls);
      ++report.iterations;
      if (options.log_cases) report.transcript += CaseToString(c, symbols);
      DiffFailure f;
      CaseVerdict verdict = CheckCrudCase(c, &symbols, options, &f);
      std::string line = std::string(GenClassTag(cls)) + " " +
                         std::to_string(iter) + " seed=" +
                         std::to_string(cseed);
      switch (verdict) {
        case CaseVerdict::kOk:
          ++report.checked;
          report.transcript += line + " ok\n";
          break;
        case CaseVerdict::kSkip:
          ++report.skipped;
          report.transcript += line + " skip\n";
          break;
        case CaseVerdict::kFail:
          ++report.checked;
          report.transcript += line + " FAIL(" + f.lane + ")\n";
          f.iteration = iter;
          f.repro = CaseToString(c, symbols);
          f.repro_rules = c.theory.size();
          report.failures.push_back(std::move(f));
          if (options.stop_on_failure) return report;
          break;
      }
    }
  }
  return report;
}

DiffReport RunFaultRecovery(unsigned seed, size_t iters,
                            const std::vector<GenClass>& classes,
                            const DiffOptions& options) {
  const std::vector<GenClass>& run_classes =
      classes.empty() ? AllGenClasses() : classes;
  DiffReport report;
  for (GenClass cls : run_classes) {
    unsigned cls_index = static_cast<unsigned>(cls);
    for (size_t iter = 0; iter < iters; ++iter) {
      unsigned cseed = CaseSeed(seed, cls_index, static_cast<unsigned>(iter));
      SymbolTable symbols;
      CaseGenerator gen(cseed, &symbols, options.gen);
      GeneratedCase c = gen.Next(cls);
      ++report.iterations;
      if (options.log_cases) report.transcript += CaseToString(c, symbols);
      DiffFailure f;
      CaseVerdict verdict = CheckFaultRecoveryCase(c, &symbols, options, &f);
      std::string line = std::string(GenClassTag(cls)) + " " +
                         std::to_string(iter) + " seed=" +
                         std::to_string(cseed);
      switch (verdict) {
        case CaseVerdict::kOk:
          ++report.checked;
          report.transcript += line + " ok\n";
          break;
        case CaseVerdict::kSkip:
          ++report.skipped;
          report.transcript += line + " skip\n";
          break;
        case CaseVerdict::kFail:
          ++report.checked;
          report.transcript += line + " FAIL(" + f.lane + ")\n";
          f.iteration = iter;
          f.repro = CaseToString(c, symbols);
          f.repro_rules = c.theory.size();
          report.failures.push_back(std::move(f));
          if (options.stop_on_failure) return report;
          break;
      }
    }
  }
  return report;
}

DiffReport RunDifferential(unsigned seed, size_t iters,
                           const std::vector<GenClass>& classes,
                           const DiffOptions& options) {
  const std::vector<GenClass>& run_classes =
      classes.empty() ? AllGenClasses() : classes;
  DiffReport report;
  for (GenClass cls : run_classes) {
    unsigned cls_index = static_cast<unsigned>(cls);
    for (size_t iter = 0; iter < iters; ++iter) {
      unsigned cseed = CaseSeed(seed, cls_index, static_cast<unsigned>(iter));
      SymbolTable symbols;
      CaseGenerator gen(cseed, &symbols, options.gen);
      GeneratedCase c = gen.Next(cls);
      ++report.iterations;
      if (options.log_cases) report.transcript += CaseToString(c, symbols);
      DiffFailure f;
      CaseVerdict verdict = CheckCase(c, &symbols, options, &f);
      std::string line = std::string(GenClassTag(cls)) + " " +
                         std::to_string(iter) + " seed=" +
                         std::to_string(cseed);
      switch (verdict) {
        case CaseVerdict::kOk:
          ++report.checked;
          report.transcript += line + " ok\n";
          break;
        case CaseVerdict::kSkip:
          ++report.skipped;
          report.transcript += line + " skip\n";
          break;
        case CaseVerdict::kFail: {
          ++report.checked;
          report.transcript += line + " FAIL(" + f.lane + ")\n";
          f.iteration = iter;
          GeneratedCase repro = c;
          if (options.shrink) {
            repro = ShrinkCase(
                c,
                [&](const GeneratedCase& cand) {
                  DiffFailure g;
                  return CheckCase(cand, &symbols, options, &g) ==
                         CaseVerdict::kFail;
                },
                options.shrink_max_checks);
            // Re-check the minimized case so lane/detail describe it.
            DiffFailure g;
            if (CheckCase(repro, &symbols, options, &g) ==
                CaseVerdict::kFail) {
              f.lane = g.lane;
              f.detail = g.detail;
            }
          }
          f.repro = CaseToString(repro, symbols);
          f.repro_rules = repro.theory.size();
          report.failures.push_back(std::move(f));
          if (options.stop_on_failure) return report;
          break;
        }
      }
    }
  }
  return report;
}

namespace {

// One termination-lane case: see the RunTermination header comment for
// the checked properties.
CaseVerdict CheckTerminationCase(const GeneratedCase& c,
                                 SymbolTable* symbols,
                                 const DiffOptions& options,
                                 DiffFailure* failure) {
  auto fail = [&](const std::string& lane,
                  const std::string& detail) {
    failure->cls = c.cls;
    failure->case_seed = c.seed;
    failure->lane = lane;
    failure->detail = detail;
    return CaseVerdict::kFail;
  };

  // Lane: certificate determinism. Two analyzer runs over the same
  // theory must produce the same kind, ordering witness, and cycle
  // witness — `gerel check --json` byte-determinism rests on this.
  TerminationCertificate cert1 = AnalyzeTermination(c.theory, *symbols);
  TerminationCertificate cert2 = AnalyzeTermination(c.theory, *symbols);
  if (cert1.kind != cert2.kind || cert1.order != cert2.order ||
      cert1.cycle != cert2.cycle) {
    return fail("certificate-determinism",
                std::string("two AnalyzeTermination runs disagree: ") +
                    CertificateKindName(cert1.kind) + " vs " +
                    CertificateKindName(cert2.kind));
  }

  // Lane: a terminating certificate must be *true*. The semi-oblivious
  // chase over the generated database gets caps far above anything the
  // generator emits; a certified theory that fails to saturate means
  // the ladder proved a false statement.
  if (cert1.terminating()) {
    ChaseOptions copts;
    copts.max_steps = 100000;
    copts.max_atoms = 200000;
    copts.semi_oblivious = true;
    SymbolTable chase_syms = *symbols;
    ChaseResult run = Chase(c.theory, c.database, &chase_syms, copts);
    if (!run.saturated) {
      return fail("certified-nontermination",
                  std::string("certificate ") +
                      CertificateKindName(cert1.kind) +
                      " but the semi-oblivious chase hit its caps (" +
                      std::to_string(run.database.size()) + " atoms, " +
                      std::to_string(run.steps) + " steps)");
    }
  }

  // Lane: planner agreement. For weakly frontier-guarded negation-free
  // theories both Prepare strategies are available; the certificate-
  // driven planner must answer exactly like the translation pipeline
  // when both are complete, and soundly (⊆) otherwise.
  Classification cls = Classify(c.theory);
  if (cls.weakly_frontier_guarded && !c.theory.HasNegation()) {
    // Same hard pipeline caps as CheckCase: generated theories are
    // tiny, so a translation closure that runs away is pathological —
    // cap it and let the failed Prepare skip the comparison instead of
    // grinding (an uncapped pg+dat saturation can hang for minutes).
    KbQueryOptions pipeline_opts;
    pipeline_opts.saturation.max_rules = 400;
    pipeline_opts.saturation.max_body_atoms = 6;
    pipeline_opts.expansion.max_rules = 2000;
    pipeline_opts.grounding.max_rules = 2000;
    PreparedKbOptions on;
    on.planner = true;
    on.pipeline = pipeline_opts;
    PreparedKbOptions off;
    off.planner = false;
    off.pipeline = pipeline_opts;
    SymbolTable on_syms = *symbols;
    SymbolTable off_syms = *symbols;
    Result<std::unique_ptr<PreparedKb>> kb_on =
        PreparedKb::Prepare(c.theory, c.database, &on_syms, on);
    Result<std::unique_ptr<PreparedKb>> kb_off =
        PreparedKb::Prepare(c.theory, c.database, &off_syms, off);
    // Either side may legitimately fail alone — the translation
    // pipeline can exhaust its caps on a theory the chase certifies,
    // and vice versa — so only agreement between two successful
    // prepares is checked.
    if (kb_on.ok() && kb_off.ok()) {
      Result<PreparedQueryResult> q_on = kb_on.value()->Query(c.query);
      Result<PreparedQueryResult> q_off = kb_off.value()->Query(c.query);
      if (q_on.ok() && q_off.ok()) {
        bool both_complete =
            q_on.value().complete && q_off.value().complete;
        if (both_complete &&
            q_on.value().answers != q_off.value().answers) {
          return fail("planner-vs-pipeline",
                      DescribeAnswerDiff(q_off.value().answers,
                                         q_on.value().answers, off_syms));
        }
        if (q_off.value().complete &&
            !IsSubset(q_on.value().answers, q_off.value().answers)) {
          return fail("planner-unsound",
                      DescribeAnswerDiff(q_off.value().answers,
                                         q_on.value().answers, off_syms));
        }
      }
    }
    (void)options;
  }

  // An inconclusive or refuted certificate with nothing else to check
  // still validated determinism, so it counts as checked, not skipped.
  return CaseVerdict::kOk;
}

}  // namespace

DiffReport RunTermination(unsigned seed, size_t iters,
                          const std::vector<GenClass>& classes,
                          const DiffOptions& options) {
  // Default to the planner-relevant classes: the five extended classes
  // plus the guarded boundary the translation pipeline accepts.
  std::vector<GenClass> defaults = ExtendedGenClasses();
  defaults.push_back(GenClass::kGuarded);
  defaults.push_back(GenClass::kWeaklyFrontierGuarded);
  const std::vector<GenClass>& run_classes =
      classes.empty() ? defaults : classes;
  DiffReport report;
  for (GenClass cls : run_classes) {
    unsigned cls_index = static_cast<unsigned>(cls);
    for (size_t iter = 0; iter < iters; ++iter) {
      unsigned cseed = CaseSeed(seed, cls_index, static_cast<unsigned>(iter));
      SymbolTable symbols;
      CaseGenerator gen(cseed, &symbols, options.gen);
      GeneratedCase c = gen.Next(cls);
      ++report.iterations;
      if (options.log_cases) report.transcript += CaseToString(c, symbols);
      DiffFailure f;
      CaseVerdict verdict = CheckTerminationCase(c, &symbols, options, &f);
      std::string line = std::string(GenClassTag(cls)) + " " +
                         std::to_string(iter) + " seed=" +
                         std::to_string(cseed);
      switch (verdict) {
        case CaseVerdict::kOk:
          ++report.checked;
          report.transcript += line + " ok\n";
          break;
        case CaseVerdict::kSkip:
          ++report.skipped;
          report.transcript += line + " skip\n";
          break;
        case CaseVerdict::kFail:
          ++report.checked;
          report.transcript += line + " FAIL(" + f.lane + ")\n";
          f.iteration = iter;
          f.repro = CaseToString(c, symbols);
          f.repro_rules = c.theory.size();
          report.failures.push_back(std::move(f));
          if (options.stop_on_failure) return report;
          break;
      }
    }
  }
  return report;
}

}  // namespace gerel::testing
