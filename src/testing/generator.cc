#include "testing/generator.h"

#include <algorithm>
#include <string>

#include "core/check.h"
#include "core/classify.h"
#include "core/printer.h"

namespace gerel::testing {

namespace {

bool IsExtendedGenClass(GenClass cls) {
  switch (cls) {
    case GenClass::kLinear:
    case GenClass::kFrontierOne:
    case GenClass::kJoinless:
    case GenClass::kDomainRestricted:
    case GenClass::kShy:
      return true;
    default:
      return false;
  }
}

bool InClass(const Classification& c, GenClass cls) {
  switch (cls) {
    case GenClass::kDatalog: return c.datalog;
    case GenClass::kGuarded: return c.guarded;
    case GenClass::kFrontierGuarded: return c.frontier_guarded;
    case GenClass::kWeaklyGuarded: return c.weakly_guarded;
    case GenClass::kWeaklyFrontierGuarded: return c.weakly_frontier_guarded;
    case GenClass::kNearlyGuarded: return c.nearly_guarded;
    case GenClass::kNearlyFrontierGuarded: return c.nearly_frontier_guarded;
    default: return false;
  }
}

bool InExtendedClass(const ExtendedClassification& c, GenClass cls) {
  switch (cls) {
    case GenClass::kLinear: return c.linear;
    case GenClass::kFrontierOne: return c.frontier_one;
    case GenClass::kJoinless: return c.joinless;
    case GenClass::kDomainRestricted: return c.domain_restricted;
    case GenClass::kShy: return c.shy;
    default: return false;
  }
}

}  // namespace

const char* GenClassTag(GenClass cls) {
  switch (cls) {
    case GenClass::kDatalog: return "dlg";
    case GenClass::kGuarded: return "g";
    case GenClass::kFrontierGuarded: return "fg";
    case GenClass::kWeaklyGuarded: return "wg";
    case GenClass::kWeaklyFrontierGuarded: return "wfg";
    case GenClass::kNearlyGuarded: return "ng";
    case GenClass::kNearlyFrontierGuarded: return "nfg";
    case GenClass::kLinear: return "lin";
    case GenClass::kFrontierOne: return "f1";
    case GenClass::kJoinless: return "jl";
    case GenClass::kDomainRestricted: return "dr";
    case GenClass::kShy: return "shy";
  }
  return "?";
}

bool ParseGenClass(std::string_view tag, GenClass* out) {
  for (GenClass cls : AllGenClasses()) {
    if (tag == GenClassTag(cls)) {
      *out = cls;
      return true;
    }
  }
  for (GenClass cls : ExtendedGenClasses()) {
    if (tag == GenClassTag(cls)) {
      *out = cls;
      return true;
    }
  }
  return false;
}

const std::vector<GenClass>& AllGenClasses() {
  static const std::vector<GenClass> kAll = {
      GenClass::kDatalog,
      GenClass::kGuarded,
      GenClass::kFrontierGuarded,
      GenClass::kWeaklyGuarded,
      GenClass::kWeaklyFrontierGuarded,
      GenClass::kNearlyGuarded,
      GenClass::kNearlyFrontierGuarded,
  };
  return kAll;
}

const std::vector<GenClass>& ExtendedGenClasses() {
  static const std::vector<GenClass> kExtended = {
      GenClass::kLinear,
      GenClass::kFrontierOne,
      GenClass::kJoinless,
      GenClass::kDomainRestricted,
      GenClass::kShy,
  };
  return kExtended;
}

CaseGenerator::CaseGenerator(unsigned seed, SymbolTable* symbols,
                             const GenOptions& options)
    : seed_(seed), rng_(seed), symbols_(symbols), options_(options) {}

Term CaseGenerator::RandomConstantTerm() {
  return constants_[rng_() % constants_.size()];
}

Atom CaseGenerator::RandomAtom(const RelInfo& rel,
                               const std::vector<Term>& pool) {
  std::vector<Term> args;
  for (int i = 0; i < rel.arity; ++i) {
    args.push_back(pool[rng_() % pool.size()]);
  }
  std::vector<Term> ann;
  for (int i = 0; i < rel.annotations; ++i) {
    // Annotation terms in rules stay constant: annotation variables never
    // interact with guardedness ("safely annotated"), and constants keep
    // every class decision about the argument structure alone.
    ann.push_back(RandomConstantTerm());
  }
  return Atom(rel.id, std::move(args), std::move(ann));
}

Rule CaseGenerator::GenerateRule(GenClass cls, int rule_index) {
  bool want_existential =
      cls != GenClass::kDatalog &&
      (rng_() % 1000) < static_cast<unsigned>(options_.existential_prob * 1000);
  // ng/nfg: a mix of (frontier-)guarded existential rules and plain
  // unguarded Datalog rules — that mix *is* the class boundary (Def 3).
  bool datalog_member = (cls == GenClass::kNearlyGuarded ||
                         cls == GenClass::kNearlyFrontierGuarded) &&
                        rng_() % 2 == 0;
  if (datalog_member) want_existential = false;
  bool theory_guard =
      (rng_() % 1000) < static_cast<unsigned>(options_.theory_guard_prob * 1000);

  // Variable pool for this rule. Theory-relation guards restrict the pool
  // to the guard atom's arity so one body atom can cover it.
  std::vector<Term> pool = vars_;
  std::vector<Atom> body;
  bool guard_all = cls == GenClass::kGuarded ||
                   (cls == GenClass::kNearlyGuarded && !datalog_member);
  bool guard_frontier = cls == GenClass::kFrontierGuarded ||
                        (cls == GenClass::kNearlyFrontierGuarded &&
                         !datalog_member);
  if (guard_all && theory_guard) {
    // The first body atom is the guard: its distinct variables are the
    // whole pool. Guard relations live in the theory, so they can receive
    // derived atoms (and nulls) — deeper chases than EDB-only guards.
    const RelInfo& rel = relations_[rng_() % relations_.size()];
    pool.resize(std::max(1, rel.arity));
    std::vector<Term> args;
    for (int i = 0; i < rel.arity; ++i) args.push_back(pool[i % pool.size()]);
    std::vector<Term> ann;
    for (int i = 0; i < rel.annotations; ++i) ann.push_back(RandomConstantTerm());
    body.push_back(Atom(rel.id, std::move(args), std::move(ann)));
  }
  int extra = 1 + static_cast<int>(rng_() % options_.max_body_atoms);
  for (int i = 0; i < extra && static_cast<int>(body.size()) <
                                   options_.max_body_atoms + 1;
       ++i) {
    body.push_back(RandomAtom(relations_[rng_() % relations_.size()], pool));
  }
  // Variables actually used in the body arguments.
  std::vector<Term> used;
  for (const Atom& a : body) {
    for (Term v : a.ArgVars()) {
      if (std::find(used.begin(), used.end(), v) == used.end()) used.push_back(v);
    }
  }
  if (used.empty()) {
    // All-constant body (possible when annotations swallowed the draw):
    // re-draw the first atom over the pool to get at least one variable.
    body[0] = RandomAtom(relations_[rng_() % relations_.size()], pool);
    used = body[0].ArgVars();
    if (used.empty()) {
      body[0].args[0] = pool[0];
      used.push_back(pool[0]);
    }
  }

  // Head relation, with a layered bias (head index >= max body index)
  // that keeps most predicate graphs acyclic and most chases finite.
  size_t max_body_index = 0;
  for (const Atom& a : body) {
    for (size_t j = 0; j < relations_.size(); ++j) {
      if (relations_[j].id == a.pred) max_body_index = std::max(max_body_index, j);
    }
  }
  const RelInfo* head_rel;
  if ((rng_() % 1000) < static_cast<unsigned>(options_.layered_prob * 1000) &&
      max_body_index + 1 < relations_.size()) {
    head_rel = &relations_[max_body_index +
                           rng_() % (relations_.size() - max_body_index)];
  } else {
    head_rel = &relations_[rng_() % relations_.size()];
  }

  // Frontier guards restrict head variables to one body atom's variables,
  // making that atom the frontier guard (boundary case: no extra guard
  // atom at all).
  std::vector<Term> head_pool = used;
  if (guard_frontier && theory_guard) {
    const Atom& fg = body[rng_() % body.size()];
    head_pool = fg.ArgVars();
    if (head_pool.empty()) head_pool = used;
  }
  Term evar = symbols_->Variable("E" + std::to_string(rule_index));
  std::vector<Term> head_args;
  size_t epos = rng_() % std::max(1, head_rel->arity);
  for (int i = 0; i < head_rel->arity; ++i) {
    if (want_existential && static_cast<size_t>(i) == epos) {
      head_args.push_back(evar);
    } else {
      head_args.push_back(head_pool[rng_() % head_pool.size()]);
    }
  }
  std::vector<Term> head_ann;
  for (int i = 0; i < head_rel->annotations; ++i) {
    head_ann.push_back(RandomConstantTerm());
  }
  Rule rule = Rule::Positive(
      body, {Atom(head_rel->id, std::move(head_args), std::move(head_ann))});

  // EDB-only wide guards for the classes that still need one.
  auto add_wide_guard = [&](const std::vector<Term>& targets) {
    std::vector<Term> guard_args = targets;
    if (guard_args.empty()) guard_args.push_back(used[0]);
    size_t n = guard_args.size();
    while (static_cast<int>(guard_args.size()) < wide_.arity) {
      guard_args.push_back(guard_args[guard_args.size() % n]);
    }
    guard_args.resize(wide_.arity);
    rule.body.emplace_back(Atom(wide_.id, guard_args));
  };
  if (guard_all && !theory_guard && !IsGuardedRule(rule)) {
    add_wide_guard(used);
  } else if (guard_frontier && !theory_guard && !IsFrontierGuardedRule(rule)) {
    add_wide_guard(rule.FVars());
  }
  // wg/wfg rules leave unsafe variables unguarded here on purpose; the
  // repair pass guards exactly the unsafe set (the class boundary).
  return rule;
}

Rule CaseGenerator::GenerateExtendedRule(GenClass cls, int rule_index) {
  bool want_existential =
      (rng_() % 1000) <
      static_cast<unsigned>(options_.existential_prob * 1000);

  std::vector<Atom> body;
  if (cls == GenClass::kLinear) {
    // Linear: exactly one positive body atom.
    body.push_back(RandomAtom(relations_[rng_() % relations_.size()], vars_));
  } else if (cls == GenClass::kJoinless || cls == GenClass::kShy) {
    // Disjoint per-atom variable pools: no variable spans two theory
    // atoms, so joinlessness holds by construction (and shy's "no
    // attacked variable is joined" is vacuous for theory-atom joins).
    int atoms = 1 + static_cast<int>(rng_() % options_.max_body_atoms);
    for (int i = 0; i < atoms; ++i) {
      std::vector<Term> pool;
      for (int j = 0; j < 2; ++j) {
        pool.push_back(symbols_->Variable(
            "X" + std::to_string(rule_index) + "_" + std::to_string(i) +
            "_" + std::to_string(j)));
      }
      body.push_back(RandomAtom(relations_[rng_() % relations_.size()], pool));
    }
  } else {
    int atoms = 1 + static_cast<int>(rng_() % options_.max_body_atoms);
    for (int i = 0; i < atoms; ++i) {
      body.push_back(RandomAtom(relations_[rng_() % relations_.size()], vars_));
    }
  }
  std::vector<Term> used;
  for (const Atom& a : body) {
    for (Term v : a.ArgVars()) {
      if (std::find(used.begin(), used.end(), v) == used.end()) {
        used.push_back(v);
      }
    }
  }
  if (used.empty()) {
    // All-constant body (annotation draws): force one variable.
    body[0].args[0] = vars_[0];
    used.push_back(vars_[0]);
  }

  std::vector<Term> head_pool = used;
  if (cls == GenClass::kFrontierOne) {
    // Frontier-one: at most one universal variable reaches the head.
    head_pool = {used[rng_() % used.size()]};
  } else if (cls == GenClass::kShy) {
    // Shy: draw the whole frontier from one theory atom, so any two
    // frontier variables share a body atom. Joins (sometimes added below
    // through the wide EDB relation) stay harmless: wide never occurs in
    // a head, so its positions are never affected and the joined
    // variables are never attacked.
    const Atom& fa = body[rng_() % body.size()];
    head_pool = fa.ArgVars();
    if (head_pool.empty()) head_pool = {used[0]};
    if (body.size() >= 2 && rng_() % 2 == 0) {
      std::vector<Term> wide_args;
      for (const Atom& a : body) {
        for (Term v : a.ArgVars()) wide_args.push_back(v);
      }
      if (!wide_args.empty()) {
        size_t n = wide_args.size();
        while (static_cast<int>(wide_args.size()) < wide_.arity) {
          wide_args.push_back(wide_args[wide_args.size() % n]);
        }
        wide_args.resize(wide_.arity);
        body.push_back(Atom(wide_.id, std::move(wide_args)));
      }
    }
  }

  // Head relation, layered like GenerateRule to keep most chases shallow.
  size_t max_body_index = 0;
  for (const Atom& a : body) {
    for (size_t j = 0; j < relations_.size(); ++j) {
      if (relations_[j].id == a.pred) {
        max_body_index = std::max(max_body_index, j);
      }
    }
  }
  const RelInfo* head_rel;
  if ((rng_() % 1000) < static_cast<unsigned>(options_.layered_prob * 1000) &&
      max_body_index + 1 < relations_.size()) {
    head_rel = &relations_[max_body_index +
                           rng_() % (relations_.size() - max_body_index)];
  } else {
    head_rel = &relations_[rng_() % relations_.size()];
  }

  Term evar = symbols_->Variable("E" + std::to_string(rule_index));
  std::vector<Term> head_args;
  if (cls == GenClass::kDomainRestricted) {
    // Each head atom uses all body variables or none of them. "All"
    // needs head arity >= |used|; otherwise (or on a coin flip) the head
    // is variable-free: existential and constant positions only.
    bool all = static_cast<size_t>(head_rel->arity) >= used.size() &&
               rng_() % 2 == 0;
    for (int i = 0; i < head_rel->arity; ++i) {
      if (all) {
        head_args.push_back(static_cast<size_t>(i) < used.size()
                                ? used[i]
                                : (want_existential ? evar
                                                    : used[i % used.size()]));
      } else {
        head_args.push_back(want_existential && i == 0 ? evar
                                                       : RandomConstantTerm());
      }
    }
  } else {
    size_t epos = rng_() % std::max(1, head_rel->arity);
    for (int i = 0; i < head_rel->arity; ++i) {
      if (want_existential && static_cast<size_t>(i) == epos) {
        head_args.push_back(evar);
      } else {
        head_args.push_back(head_pool[rng_() % head_pool.size()]);
      }
    }
  }
  std::vector<Term> head_ann;
  for (int i = 0; i < head_rel->annotations; ++i) {
    head_ann.push_back(RandomConstantTerm());
  }
  return Rule::Positive(
      body, {Atom(head_rel->id, std::move(head_args), std::move(head_ann))});
}

void CaseGenerator::RepairClass(GenClass cls, Theory* theory) {
  // Guarding with the wide relation only ever shrinks ap(Σ) (wide never
  // occurs in a head, so its positions are unaffected and every variable
  // it touches gains an unaffected occurrence); one or two passes settle.
  for (int pass = 0; pass < 3; ++pass) {
    if (InClass(Classify(*theory), cls)) return;
    PositionSet ap = AffectedPositions(*theory);
    for (Rule& rule : theory->mutable_rules()) {
      std::vector<Term> targets;
      bool ok = true;
      switch (cls) {
        case GenClass::kDatalog:
          ok = rule.IsDatalog();
          targets = rule.UVars();
          break;
        case GenClass::kGuarded:
          ok = IsGuardedRule(rule);
          targets = rule.UVars();
          break;
        case GenClass::kFrontierGuarded:
          ok = IsFrontierGuardedRule(rule);
          targets = rule.FVars();
          break;
        case GenClass::kWeaklyGuarded:
          ok = IsWeaklyGuardedRule(rule, ap);
          targets = UnsafeVars(rule, ap);
          break;
        case GenClass::kWeaklyFrontierGuarded: {
          ok = IsWeaklyFrontierGuardedRule(rule, ap);
          std::vector<Term> fvars = rule.FVars();
          for (Term v : UnsafeVars(rule, ap)) {
            if (std::find(fvars.begin(), fvars.end(), v) != fvars.end()) {
              targets.push_back(v);
            }
          }
          break;
        }
        case GenClass::kNearlyGuarded:
          ok = IsNearlyGuardedRule(rule, ap);
          targets = rule.UVars();
          break;
        case GenClass::kNearlyFrontierGuarded:
          ok = IsNearlyFrontierGuardedRule(rule, ap);
          targets = pass == 0 ? rule.FVars() : rule.UVars();
          break;
        default:  // Extended classes repair via RepairExtended.
          break;
      }
      if (ok) continue;
      GEREL_CHECK(cls != GenClass::kDatalog);  // dlg is correct by construction.
      std::vector<Term> guard_args = targets;
      if (guard_args.empty()) guard_args = rule.UVars();
      if (guard_args.empty()) continue;
      size_t n = guard_args.size();
      while (static_cast<int>(guard_args.size()) < wide_.arity) {
        guard_args.push_back(guard_args[guard_args.size() % n]);
      }
      guard_args.resize(wide_.arity);
      rule.body.emplace_back(Atom(wide_.id, guard_args));
    }
  }
  GEREL_CHECK(InClass(Classify(*theory), cls));
}

void CaseGenerator::RepairExtended(GenClass cls, Theory* theory) {
  // Extended membership is per-rule for linear/frontier-one/joinless/
  // domain-restricted but global for shy (it reads the Ω sets of the
  // whole theory), so off-class draws are *replaced* by an identity
  // projection rule — a member of every extended class — instead of
  // being guarded. Replacement only removes Skolem functions and Ω
  // entries, so rules already in class stay in class and one pass
  // settles (the second pass is a safety net).
  for (int pass = 0; pass < 2; ++pass) {
    if (InExtendedClass(ClassifyExtended(*theory), cls)) return;
    ExistentialDependencyGraph graph = BuildExistentialDependencyGraph(*theory);
    std::vector<Rule>& rules = theory->mutable_rules();
    for (size_t i = 0; i < rules.size(); ++i) {
      bool ok = true;
      switch (cls) {
        case GenClass::kLinear: ok = IsLinearRule(rules[i]); break;
        case GenClass::kFrontierOne: ok = IsFrontierOneRule(rules[i]); break;
        case GenClass::kJoinless: ok = IsJoinlessRule(rules[i]); break;
        case GenClass::kDomainRestricted:
          ok = IsDomainRestrictedRule(rules[i]);
          break;
        case GenClass::kShy: ok = IsShyRule(rules[i], graph); break;
        default: break;
      }
      if (ok) continue;
      const RelInfo& rel = relations_[i % relations_.size()];
      std::vector<Term> args(static_cast<size_t>(rel.arity), vars_[0]);
      std::vector<Term> ann;
      for (int j = 0; j < rel.annotations; ++j) ann.push_back(constants_[0]);
      Atom atom(rel.id, args, ann);
      rules[i] = Rule::Positive({atom}, {atom});
    }
  }
  GEREL_CHECK(InExtendedClass(ClassifyExtended(*theory), cls));
}

Rule CaseGenerator::GenerateQuery() {
  int atoms = 1 + static_cast<int>(rng_() % 2);
  std::vector<Term> qvars;
  for (int i = 0; i < 3; ++i) {
    qvars.push_back(symbols_->Variable("Q" + std::to_string(i)));
  }
  Rule cq;
  std::vector<Term> used;
  for (int i = 0; i < atoms; ++i) {
    const RelInfo& rel = relations_[rng_() % relations_.size()];
    std::vector<Term> args;
    for (int j = 0; j < rel.arity; ++j) {
      if ((rng_() % 1000) <
          static_cast<unsigned>(options_.query_constant_prob * 1000)) {
        args.push_back(RandomConstantTerm());
      } else {
        Term v = qvars[rng_() % qvars.size()];
        args.push_back(v);
        if (std::find(used.begin(), used.end(), v) == used.end()) {
          used.push_back(v);
        }
      }
    }
    std::vector<Term> ann;
    for (int j = 0; j < rel.annotations; ++j) ann.push_back(RandomConstantTerm());
    cq.body.emplace_back(Atom(rel.id, std::move(args), std::move(ann)));
  }
  if (used.empty()) {
    // Force at least one variable so the query has answer positions.
    cq.body[0].atom.args[0] = qvars[0];
    used.push_back(qvars[0]);
  }
  int head_arity = 1 + static_cast<int>(rng_() % 2);
  std::vector<Term> head_args;
  for (int i = 0; i < head_arity; ++i) {
    head_args.push_back(used[rng_() % used.size()]);
  }
  if ((rng_() % 1000) <
      static_cast<unsigned>(options_.free_head_var_prob * 1000)) {
    head_args[0] = symbols_->Variable("F0");
  }
  std::string prefix =
      case_index_ == 0 ? "" : "c" + std::to_string(case_index_) + "_";
  RelationId q = symbols_->Relation(prefix + "q", head_arity);
  cq.head.push_back(Atom(q, std::move(head_args)));
  return cq;
}

Database CaseGenerator::GenerateDatabase() {
  Database db;
  for (int i = 0; i < options_.num_facts; ++i) {
    const RelInfo& rel =
        rng_() % 3 == 0 ? wide_ : relations_[rng_() % relations_.size()];
    std::vector<Term> args;
    for (int j = 0; j < rel.arity; ++j) args.push_back(RandomConstantTerm());
    std::vector<Term> ann;
    for (int j = 0; j < rel.annotations; ++j) ann.push_back(RandomConstantTerm());
    db.Insert(Atom(rel.id, std::move(args), std::move(ann)));
  }
  return db;
}

GeneratedCase CaseGenerator::Next(GenClass cls) {
  std::string prefix =
      case_index_ == 0 ? "" : "c" + std::to_string(case_index_) + "_";
  relations_.clear();
  for (int i = 0; i < options_.num_relations; ++i) {
    RelInfo rel;
    rel.arity = 1 + static_cast<int>(rng_() % options_.max_arity);
    rel.annotations =
        (rng_() % 1000) <
                static_cast<unsigned>(options_.annotation_prob * 1000)
            ? 1
            : 0;
    rel.id = symbols_->Relation(prefix + "p" + std::to_string(i),
                                rel.arity + rel.annotations);
    relations_.push_back(rel);
  }
  wide_ = {symbols_->Relation(prefix + "w", options_.num_vars),
           options_.num_vars, 0};
  vars_.clear();
  for (int i = 0; i < options_.num_vars; ++i) {
    vars_.push_back(symbols_->Variable("X" + std::to_string(i)));
  }
  constants_.clear();
  for (int i = 0; i < options_.num_constants; ++i) {
    bool quoted = (rng_() % 1000) <
                  static_cast<unsigned>(options_.quoted_constant_prob * 1000);
    std::string name = quoted
                           ? "Quoted " + prefix + "k " + std::to_string(i)
                           : prefix + "k" + std::to_string(i);
    constants_.push_back(symbols_->Constant(name));
  }
  GeneratedCase out;
  out.seed = seed_;
  out.cls = cls;
  bool extended = IsExtendedGenClass(cls);
  for (int i = 0; i < options_.num_rules; ++i) {
    out.theory.AddRule(extended ? GenerateExtendedRule(cls, i)
                                : GenerateRule(cls, i));
  }
  if (extended) {
    RepairExtended(cls, &out.theory);
  } else {
    RepairClass(cls, &out.theory);
  }
  out.query = GenerateQuery();
  out.database = GenerateDatabase();
  ++case_index_;
  return out;
}

std::string CaseToString(const GeneratedCase& c, const SymbolTable& symbols) {
  std::string out = "% gerel fuzz repro: class=";
  out += GenClassTag(c.cls);
  out += " seed=" + std::to_string(c.seed) + "\n";
  out += ToString(c.theory, symbols);
  out += ToString(c.database, symbols);
  out += "% query: " + ToString(c.query, symbols) + "\n";
  return out;
}

}  // namespace gerel::testing
