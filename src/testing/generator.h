// Seeded random (theory, database, query) triples per guardedness class
// (DESIGN.md §8).
//
// The generator emits instances that are *certified* members of the
// requested Figure 1 class (membership is re-checked with the production
// classifier and repaired by adding guards when a random draw falls
// outside), and it is biased toward class boundaries: weakly guarded
// theories guard only their unsafe variables, nearly guarded theories
// mix guarded existential rules with unguarded Datalog rules, and guard
// atoms are drawn from theory relations (which can receive nulls) as
// well as from a dedicated wide relation (which cannot).
//
// Everything is a pure function of the seed: two generators with the
// same seed and options produce byte-identical printed triples, which
// the determinism replay test pins down.
#ifndef GEREL_TESTING_GENERATOR_H_
#define GEREL_TESTING_GENERATOR_H_

#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "core/database.h"
#include "core/rule.h"
#include "core/symbol_table.h"
#include "core/theory.h"

namespace gerel::testing {

// The seven language classes of Figure 1, smallest to largest, plus the
// extended lattice of core/classify.h (membership targets for the
// termination lane; the structural constraints are per-rule, so members
// are built by construction and double-checked with the classifier).
enum class GenClass {
  kDatalog,                 // dlg
  kGuarded,                 // g
  kFrontierGuarded,         // fg
  kWeaklyGuarded,           // wg
  kWeaklyFrontierGuarded,   // wfg
  kNearlyGuarded,           // ng
  kNearlyFrontierGuarded,   // nfg
  kLinear,                  // lin
  kFrontierOne,             // f1
  kJoinless,                // jl
  kDomainRestricted,        // dr
  kShy,                     // shy
};

// Short tag used by the CLI (--class=fg) and in transcripts.
const char* GenClassTag(GenClass cls);
// Parses a tag (Figure 1 or extended); returns false on unknown tags.
bool ParseGenClass(std::string_view tag, GenClass* out);
// The seven Figure 1 classes, in declaration order.
const std::vector<GenClass>& AllGenClasses();
// The five extended classes (linear .. shy), in declaration order.
const std::vector<GenClass>& ExtendedGenClasses();

struct GenOptions {
  int num_relations = 3;
  int max_arity = 2;
  int num_rules = 4;
  int max_body_atoms = 2;
  // Size of the per-theory variable pool (also the wide guard arity).
  int num_vars = 3;
  int num_facts = 7;
  int num_constants = 3;
  double existential_prob = 0.45;
  // Probability that a rule's guard is a theory relation (which may
  // receive derived atoms and nulls) rather than the EDB-only wide
  // relation; theory-relation guards produce deeper chases.
  double theory_guard_prob = 0.5;
  // Probability that a head relation is drawn "layered" (index at least
  // the maximal body relation index), which keeps most chases finite.
  double layered_prob = 0.7;
  // Probability that a generated constant name requires quoting
  // (exercises the quoted-constant round trip; 0 for differential runs).
  double quoted_constant_prob = 0.0;
  // Probability that a relation carries a 1-term annotation R[t](~v).
  double annotation_prob = 0.0;
  // Probability that the query head has a variable not in its body
  // (exercises the acdom guard of the §7 pipeline).
  double free_head_var_prob = 0.15;
  // Probability that a query body argument is a constant.
  double query_constant_prob = 0.2;
};

struct GeneratedCase {
  unsigned seed = 0;
  GenClass cls = GenClass::kDatalog;
  Theory theory;
  Database database;
  // A conjunctive query over the theory relations with head relation "q".
  Rule query;
};

class CaseGenerator {
 public:
  CaseGenerator(unsigned seed, SymbolTable* symbols,
                const GenOptions& options = GenOptions());

  // Generates the next case of the class. The result is guaranteed (by
  // construction plus classifier-checked repair) to lie in `cls`.
  GeneratedCase Next(GenClass cls);

  std::mt19937& rng() { return rng_; }

 private:
  struct RelInfo {
    RelationId id = 0;
    int arity = 0;       // Argument positions.
    int annotations = 0; // Annotation positions.
  };

  Atom RandomAtom(const RelInfo& rel, const std::vector<Term>& pool);
  Term RandomConstantTerm();
  Rule GenerateRule(GenClass cls, int rule_index);
  Rule GenerateExtendedRule(GenClass cls, int rule_index);
  void RepairClass(GenClass cls, Theory* theory);
  void RepairExtended(GenClass cls, Theory* theory);
  Rule GenerateQuery();
  Database GenerateDatabase();

  unsigned seed_;
  std::mt19937 rng_;
  SymbolTable* symbols_;
  GenOptions options_;
  std::vector<RelInfo> relations_;
  RelInfo wide_;
  std::vector<Term> vars_;
  std::vector<Term> constants_;
  int case_index_ = 0;
};

// Renders a case in parser syntax: theory rules and facts as statements,
// the class/seed header and the query as comments. The rules+facts part
// re-parses to the same theory and database.
std::string CaseToString(const GeneratedCase& c, const SymbolTable& symbols);

}  // namespace gerel::testing

#endif  // GEREL_TESTING_GENERATOR_H_
