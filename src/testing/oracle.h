// Reference oracle for differential testing (DESIGN.md §8).
//
// A deliberately naive, obviously-correct evaluator used as ground truth
// by the conformance harness: a depth/size-bounded oblivious chase and a
// naive Datalog fixpoint, both over a plain std::set<Atom> with
// brute-force substitution enumeration. No join plans, no semi-naive
// deltas, no interning tricks, no indexes — every optimization the
// production engines use is deliberately absent, so a disagreement
// between this oracle and any engine points at the engine (or at a
// genuine semantics bug in both, which the metamorphic checks then
// triangulate).
//
// The oracle only certifies instances whose chase terminates within its
// bounds (`saturated`); the differential driver skips unsaturated
// instances, exactly like the property tests do.
#ifndef GEREL_TESTING_ORACLE_H_
#define GEREL_TESTING_ORACLE_H_

#include <set>
#include <string>
#include <vector>

#include "core/atom.h"
#include "core/database.h"
#include "core/rule.h"
#include "core/symbol_table.h"
#include "core/theory.h"

namespace gerel::testing {

struct OracleOptions {
  // Trigger-firing cap; exceeding it clears `saturated`.
  size_t max_steps = 5000;
  // Atom-count cap; exceeding it clears `saturated`.
  size_t max_atoms = 5000;
  // Brute-force assignment cap per rule per round; exceeding it clears
  // `saturated` (the instance is too wide for the naive oracle).
  size_t max_substitutions_per_rule = 500000;
  // Total assignment budget for the whole run. Without it a
  // non-terminating instance burns the per-rule cap on every round until
  // max_atoms — minutes of brute force before giving up; with it the
  // oracle's worst case is a fixed, small amount of work.
  size_t max_total_substitutions = 1000000;
  // Insert acdom(t) for every active term before and during the run, so
  // rewritten theories with acdom guards evaluate correctly.
  bool populate_acdom = true;
};

struct OracleResult {
  std::set<Atom> atoms;
  bool saturated = false;
  size_t steps = 0;
};

// The naive oblivious chase: every (rule, body substitution) trigger
// fires exactly once, existential head variables become fresh labeled
// nulls. Substitutions are enumerated by brute force over the active
// terms. `theory` must be negation-free. Datalog theories get their
// least model (the chase of a Datalog theory is its least model).
OracleResult OracleChase(const Theory& theory, const Database& input,
                         SymbolTable* symbols,
                         const OracleOptions& options = OracleOptions());

// Ground constant-only atoms over the relations of `theory`, rendered in
// parser syntax (comparable across engines that agree on `symbols`).
std::set<std::string> OracleGroundFacts(const OracleResult& result,
                                        const Theory& theory,
                                        const SymbolTable& symbols);

// Same selection, but as atoms (for metamorphic renaming checks).
std::set<Atom> OracleGroundAtoms(const OracleResult& result,
                                 const Theory& theory);

// Certain answers of the conjunctive query `cq` (single positive-body
// rule) over a saturated oracle result: all constant head tuples whose
// body embeds into the chase (null witnesses allowed, null answers
// filtered — the standard certain-answer semantics on a terminating
// chase). Head variables missing from the body range over the constants
// of `result` (the acdom convention of the §7 pipeline).
std::set<std::vector<Term>> OracleCqAnswers(const OracleResult& result,
                                            const Rule& cq);

}  // namespace gerel::testing

#endif  // GEREL_TESTING_ORACLE_H_
