#include "chase/chase_tree.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/check.h"
#include "core/classify.h"
#include "core/normalize.h"
#include "core/printer.h"

namespace gerel {

namespace {

std::vector<Term> DistinctTerms(const std::vector<Term>& terms) {
  std::vector<Term> out;
  for (Term t : terms) {
    if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
  }
  return out;
}

// Incremental tree with per-node term sets and a term → nodes index.
class TreeBuilder {
 public:
  explicit TreeBuilder(std::vector<Atom> root_atoms) {
    ChaseTreeNode root;
    root.atoms = std::move(root_atoms);
    tree_.nodes.push_back(std::move(root));
    node_terms_.emplace_back();
    for (const Atom& a : tree_.nodes[0].atoms) IndexAtomTerms(0, a);
  }

  // All nodes d with C ⊆ terms(d) such that no parent of d contains C.
  std::vector<int> MinimalNodes(const std::vector<Term>& c) const {
    std::vector<int> candidates;
    if (c.empty()) {
      candidates.push_back(0);
      return candidates;
    }
    // Start from the postings of the first term, filter by the rest.
    auto it = term_to_nodes_.find(c[0].bits());
    if (it == term_to_nodes_.end()) return {};
    for (int node : it->second) {
      bool all = true;
      for (Term t : c) {
        if (node_terms_[node].count(t.bits()) == 0) {
          all = false;
          break;
        }
      }
      if (!all) continue;
      int parent = tree_.nodes[node].parent;
      bool parent_has_all = parent >= 0;
      if (parent >= 0) {
        for (Term t : c) {
          if (node_terms_[parent].count(t.bits()) == 0) {
            parent_has_all = false;
            break;
          }
        }
      }
      if (!parent_has_all) candidates.push_back(node);
    }
    return candidates;
  }

  void AddAtomToNode(int node, const Atom& atom) {
    tree_.nodes[node].atoms.push_back(atom);
    IndexAtomTerms(node, atom);
  }

  int AddChild(int parent, const Atom& atom) {
    int id = static_cast<int>(tree_.nodes.size());
    ChaseTreeNode node;
    node.parent = parent;
    node.atoms.push_back(atom);
    tree_.nodes.push_back(std::move(node));
    tree_.nodes[parent].children.push_back(id);
    node_terms_.emplace_back();
    IndexAtomTerms(id, atom);
    return id;
  }

  ChaseTree Take() { return std::move(tree_); }

 private:
  void IndexAtomTerms(int node, const Atom& atom) {
    for (Term t : atom.AllTerms()) {
      if (node_terms_[node].insert(t.bits()).second) {
        term_to_nodes_[t.bits()].push_back(node);
      }
    }
  }

  ChaseTree tree_;
  std::vector<std::unordered_set<uint32_t>> node_terms_;
  std::unordered_map<uint32_t, std::vector<int>> term_to_nodes_;
};

}  // namespace

std::vector<Term> ChaseTree::NodeTerms(size_t i) const {
  std::vector<Term> out;
  for (const Atom& a : nodes[i].atoms) {
    for (Term t : a.AllTerms()) {
      if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
    }
  }
  return out;
}

size_t ChaseTree::Depth(size_t i) const {
  size_t d = 0;
  int cur = static_cast<int>(i);
  while (nodes[cur].parent >= 0) {
    cur = nodes[cur].parent;
    ++d;
  }
  return d;
}

size_t ChaseTree::TotalAtoms() const {
  size_t n = 0;
  for (const ChaseTreeNode& node : nodes) n += node.atoms.size();
  return n;
}

Result<ChaseTree> BuildChaseTree(const Theory& theory, const Database& input,
                                 SymbolTable* symbols,
                                 const ChaseOptions& options) {
  if (!IsNormal(theory)) {
    return Status::Error("chase tree requires a normal theory (Def 6)");
  }
  if (!Classify(theory).frontier_guarded) {
    return Status::Error("chase tree requires a frontier-guarded theory");
  }
  ChaseResult chase = Chase(theory, input, symbols, options);
  if (!chase.saturated) {
    return Status::Error("chase did not saturate within the given limits");
  }
  // Root d0 = D (plus acdom facts) plus the fact-rule heads → R(c).
  std::vector<Atom> root_atoms;
  Database root_set;
  for (const Atom& a : input.atoms()) {
    if (root_set.Insert(a)) root_atoms.push_back(a);
  }
  for (uint32_t i = 0; i < chase.database.size(); ++i) {
    const Atom& a = chase.database.atom(i);
    if (a.pred == AcdomRelation(symbols) && root_set.Insert(a)) {
      root_atoms.push_back(a);
    }
  }
  for (const Rule& r : theory.rules()) {
    if (r.IsFact() && root_set.Insert(r.head[0])) {
      root_atoms.push_back(r.head[0]);
    }
  }
  TreeBuilder builder(std::move(root_atoms));
  for (const ChaseStep& step : chase.derivation) {
    if (root_set.Contains(step.atom)) continue;  // Fact-rule heads, acdom.
    std::vector<Term> c = DistinctTerms(step.atom.AllTerms());
    std::vector<int> minimal = builder.MinimalNodes(c);
    if (!minimal.empty()) {
      // (C1): some node contains all of ~t — add to the C-minimal node.
      builder.AddAtomToNode(minimal.front(), step.atom);
      continue;
    }
    // (C2): create a new child of the frontier-image-minimal node.
    std::vector<Term> frontier = DistinctTerms(step.frontier_image);
    std::vector<int> host = builder.MinimalNodes(frontier);
    if (host.empty()) {
      return Status::Error(
          "no node contains the frontier image of a derived atom; theory "
          "is not frontier-guarded as required");
    }
    builder.AddChild(host.front(), step.atom);
  }
  return builder.Take();
}

std::string ChaseTreeDot(const ChaseTree& tree, const SymbolTable& symbols) {
  std::string out = "digraph chasetree {\n  node [shape=box];\n";
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    std::string label;
    for (const Atom& a : tree.nodes[i].atoms) {
      label += ToString(a, symbols);
      label += "\\n";
    }
    out += "  n" + std::to_string(i) + " [label=\"" + label + "\"];\n";
    if (tree.nodes[i].parent >= 0) {
      out += "  n" + std::to_string(tree.nodes[i].parent) + " -> n" +
             std::to_string(i) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

Status CheckChaseTreeProperties(const ChaseTree& tree, const Theory& theory,
                                const Database& input) {
  size_t m = theory.MaxFullArity();
  size_t k = theory.Constants().size();
  // (P1): the root's terms are the input terms plus at most k constants.
  std::vector<Term> root_terms = tree.NodeTerms(0);
  size_t input_terms = input.ActiveTerms().size();
  if (root_terms.size() > input_terms + k) {
    return Status::Error("P1 violated: root has " +
                         std::to_string(root_terms.size()) + " terms > " +
                         std::to_string(input_terms + k));
  }
  // (P2): non-root nodes span at most m terms.
  for (size_t i = 1; i < tree.nodes.size(); ++i) {
    if (tree.NodeTerms(i).size() > m) {
      return Status::Error("P2 violated at node " + std::to_string(i));
    }
  }
  // (P3): for each node's term set, the C-minimal node is unique.
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    std::vector<Term> c = tree.NodeTerms(i);
    if (c.empty()) continue;
    size_t minimal_count = 0;
    for (size_t j = 0; j < tree.nodes.size(); ++j) {
      std::vector<Term> tj = tree.NodeTerms(j);
      auto contains_all = [](const std::vector<Term>& sup,
                             const std::vector<Term>& sub) {
        return std::all_of(sub.begin(), sub.end(), [&sup](Term t) {
          return std::find(sup.begin(), sup.end(), t) != sup.end();
        });
      };
      if (!contains_all(tj, c)) continue;
      int parent = tree.nodes[j].parent;
      if (parent >= 0 &&
          contains_all(tree.NodeTerms(parent), c)) {
        continue;
      }
      ++minimal_count;
    }
    if (minimal_count != 1) {
      return Status::Error("P3 violated for node " + std::to_string(i) +
                           ": " + std::to_string(minimal_count) +
                           " minimal nodes");
    }
  }
  return Status::Ok();
}

}  // namespace gerel
