#include "chase/chase.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/check.h"
#include "core/homomorphism.h"
#include "core/join_plan.h"
#include "core/parallel.h"
#include "core/substitution.h"

namespace gerel {

namespace {

// Delta atoms per enumeration unit. Fixed (not derived from the thread
// count) so unit boundaries — and therefore any per-unit truncation —
// are identical for every num_threads.
constexpr size_t kDeltaChunk = 1024;

// A fired-trigger key: rule index plus the key variables' images, packed.
struct TriggerKey {
  std::vector<uint32_t> data;
  friend bool operator==(const TriggerKey& a, const TriggerKey& b) {
    return a.data == b.data;
  }
};

struct TriggerKeyHash {
  size_t operator()(const TriggerKey& k) const {
    size_t h = 0xC0FFEE;
    for (uint32_t v : k.data) {
      h ^= static_cast<size_t>(v) + 0x9E3779B97F4A7C15ull + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

struct PreparedRule {
  std::vector<Atom> body;
  std::vector<Atom> head;
  std::vector<Term> uvars;
  std::vector<Term> evars;
  std::vector<Term> fvars;
  // fvars as indices into uvars (the frontier is a subset of the
  // universals), for semi-oblivious trigger keys over image records.
  std::vector<uint32_t> fvar_slots;
  // plans[j] compiles the whole body with atom j pinned as level 0, to
  // be matched only against a delta atom (ExecuteSeeded). Compiled once;
  // the per-round `rest` pattern construction of the interpreted matcher
  // is gone.
  std::vector<JoinPlan> plans;
};

// The piece-parallel chase engine. Each round is two phases:
//
//  1. Enumeration — the round's triggers are enumerated against the
//     *immutable* snapshot [0, delta_end) of the database. The work is
//     split into units (rule, pinned body position, delta chunk); units
//     run on the worker pool, each recording the universal-variable
//     images of its matches into a private buffer. Nothing is inserted
//     and no fresh nulls are minted, so workers share the database and
//     symbol table read-only.
//
//  2. Merge — single-threaded, in deterministic unit order (which is
//     independent of the thread count): dedup against the fired-trigger
//     set, the restricted/depth checks, fresh-null creation, and head
//     insertion. Postings for the round's new atoms are then built (in
//     parallel, shard-per-lane) before the next round reads them.
//
// Because the merge consumes an identical trigger stream for every
// num_threads, the result — atom order, null names, derivation, step
// count — is byte-identical to the sequential run.
class ChaseEngine {
 public:
  ChaseEngine(const Theory& theory, const Database& input,
              SymbolTable* symbols, const ChaseOptions& options)
      : symbols_(symbols), options_(options) {
    GEREL_CHECK(!theory.HasNegation());
    for (const Rule& r : theory.rules()) {
      PreparedRule p;
      p.body = r.PositiveBody();
      p.head = r.head;
      p.uvars = r.UVars();
      p.evars = r.EVars();
      p.fvars = r.FVars();
      for (Term f : p.fvars) {
        auto it = std::find(p.uvars.begin(), p.uvars.end(), f);
        GEREL_CHECK(it != p.uvars.end());
        p.fvar_slots.push_back(
            static_cast<uint32_t>(it - p.uvars.begin()));
      }
      p.plans.reserve(p.body.size());
      for (size_t j = 0; j < p.body.size(); ++j) {
        p.plans.emplace_back(p.body, std::vector<Term>(),
                             static_cast<int>(j));
      }
      rules_.push_back(std::move(p));
    }
    if (options_.num_threads > 1) {
      pool_ = std::make_unique<WorkerPool>(options_.num_threads);
    }
    lanes_.resize(pool_ ? pool_->num_threads() : 1);
    result_.database = input;
    if (options.populate_acdom) {
      PopulateAcdom(theory, symbols, &result_.database);
    }
  }

  ChaseResult Run() {
    size_t delta_begin = 0;
    bool first_round = true;
    uint64_t round = 0;
    while (true) {
      ++round;
      // Round-boundary budget check: deterministic for a given fault
      // plan / atom ceiling, so forced exhaustion truncates every
      // thread-count's run at the same round.
      if (options_.budget != nullptr &&
          !options_.budget->CheckRound(GovernedStage::kChase, round,
                                       result_.database.size())) {
        result_.saturated = false;
        break;
      }
      size_t delta_end = result_.database.size();
      BuildUnits(delta_begin, delta_end);
      Enumerate();
      bool limited = MergeRound(first_round);
      // Build postings for the atoms this round's merge appended; the
      // next round's enumeration (and any post-run AtomsOf) reads them.
      result_.database.IndexNewAtoms(pool_.get());
      first_round = false;
      if (limited) {
        result_.saturated = false;
        break;
      }
      if (result_.database.size() == delta_end) {
        // Nothing was added this round: every remaining trigger has
        // already fired, so this is a fixpoint (unless depth-limited
        // triggers were skipped, in which case the true chase continues).
        result_.saturated = !skipped_depth_limited_;
        break;
      }
      // The next round's delta is everything added this round.
      delta_begin = delta_end;
    }
    if (!result_.saturated) {
      if (options_.budget != nullptr && options_.budget->exhausted()) {
        result_.degradation = options_.budget->reason();
      } else {
        // Engine-local caps (max_steps/max_atoms/max_null_depth or a
        // truncated enumeration unit) stopped the run.
        result_.degradation.stage = GovernedStage::kChase;
        result_.degradation.limit = cap_limit_ != BudgetLimit::kNone
                                        ? cap_limit_
                                        : BudgetLimit::kSteps;
        result_.degradation.round = round;
      }
    }
    return std::move(result_);
  }

 private:
  // One enumeration unit: body atom `j` of rule `ri`, seeded from the
  // delta atoms [begin, end).
  struct Unit {
    uint32_t ri = 0;
    uint32_t j = 0;
    uint32_t begin = 0;
    uint32_t end = 0;
  };
  // One trigger record: the images of the rule's uvars, in uvar order.
  struct TriggerRec {
    std::vector<Term> images;
  };

  void BuildUnits(size_t delta_begin, size_t delta_end) {
    units_.clear();
    for (uint32_t ri = 0; ri < rules_.size(); ++ri) {
      const PreparedRule& rule = rules_[ri];
      for (uint32_t j = 0; j < rule.body.size(); ++j) {
        for (size_t b = delta_begin; b < delta_end; b += kDeltaChunk) {
          units_.push_back(Unit{ri, j, static_cast<uint32_t>(b),
                                static_cast<uint32_t>(
                                    std::min(b + kDeltaChunk, delta_end))});
        }
      }
    }
    unit_triggers_.clear();
    unit_triggers_.resize(units_.size());
  }

  void Enumerate() {
    // Per-unit emission cap: with a step bound, no unit can contribute
    // more firings than the bound allows, so runaway joins stop early.
    // The cap is per *unit* (whose boundaries are thread-count
    // independent), keeping truncation deterministic.
    size_t cap = options_.max_steps != 0
                     ? options_.max_steps + 1
                     : std::numeric_limits<size_t>::max();
    ExecutionBudget* budget = options_.budget;
    const FaultPlan* fault = budget != nullptr ? budget->fault_plan() : nullptr;
    auto run_unit = [&](size_t ui, size_t lane) {
      // Workers observe the shared cancel/exhaustion flag between units,
      // so a tripped budget stops all lanes promptly; the deterministic
      // merge then replays only what was recorded.
      if (budget != nullptr && budget->ExhaustedFast()) {
        truncated_units_.store(true, std::memory_order_relaxed);
        return;
      }
      MaybeInjectWorkerDelay(fault, ui);
      const Unit& u = units_[ui];
      const PreparedRule& rule = rules_[u.ri];
      const Database& db = result_.database;
      std::vector<TriggerRec>& out = unit_triggers_[ui];
      bool stopped = false;
      auto fire = [&](const JoinExecutor& e) {
        if (budget != nullptr &&
            !budget->CheckPoint(GovernedStage::kChase)) {
          stopped = true;
          return false;
        }
        TriggerRec rec;
        rec.images.reserve(rule.uvars.size());
        for (Term v : rule.uvars) rec.images.push_back(e.Value(v));
        out.push_back(std::move(rec));
        return out.size() < cap;
      };
      RelationId pred = rule.body[u.j].pred;
      for (size_t ai = u.begin; ai < u.end && out.size() < cap && !stopped;
           ++ai) {
        if (db.atom(ai).pred != pred) continue;
        lanes_[lane].ExecuteSeeded(rule.plans[u.j], db, db.atom(ai), fire,
                                   /*db_grows=*/false);
      }
      if (out.size() >= cap || stopped)
        truncated_units_.store(true, std::memory_order_relaxed);
    };
    if (pool_) {
      pool_->RunIndexed(units_.size(), run_unit);
    } else {
      for (size_t ui = 0; ui < units_.size(); ++ui) run_unit(ui, 0);
    }
  }

  // Replays the round's trigger stream in deterministic order. Returns
  // true iff a limit stopped the merge (or truncated enumeration made
  // the stream incomplete). Pending batched head atoms are always
  // flushed before returning, so callers observe the true database size.
  bool MergeRound(bool first_round) {
    bool limited = ReplayRound(first_round);
    FlushPending();
    return limited;
  }

  bool ReplayRound(bool first_round) {
    size_t ui = 0;
    for (uint32_t ri = 0; ri < rules_.size(); ++ri) {
      const PreparedRule& rule = rules_[ri];
      if (rule.body.empty()) {
        if (first_round) {
          if (LimitReached()) return true;
          Fire(ri, {});
        }
        continue;
      }
      for (; ui < units_.size() && units_[ui].ri == ri; ++ui) {
        for (const TriggerRec& rec : unit_triggers_[ui]) {
          if (LimitReached()) return true;
          Fire(ri, rec.images);
        }
      }
    }
    // A truncated unit means some of the round's triggers were never
    // recorded; the result is a bounded prefix, not a fixpoint.
    return LimitReached() || truncated_units_.load(std::memory_order_relaxed);
  }

  bool LimitReached() {
    if (options_.max_steps != 0 && result_.steps >= options_.max_steps) {
      cap_limit_ = BudgetLimit::kSteps;
      return true;
    }
    if (options_.max_atoms != 0 &&
        result_.database.size() + pending_atoms_.size() >=
            options_.max_atoms) {
      // The pending buffer over-approximates growth (it may hold
      // duplicates), so flush it and re-test against the exact size —
      // the stop decision ends up identical to per-trigger inserts.
      FlushPending();
      if (result_.database.size() >= options_.max_atoms) {
        cap_limit_ = BudgetLimit::kAtoms;
        return true;
      }
    }
    // Amortized deadline/cancel check while the single-threaded merge
    // replays a (possibly huge) trigger stream.
    if (options_.budget != nullptr &&
        !options_.budget->CheckPoint(GovernedStage::kChase))
      return true;
    return false;
  }

  uint32_t TermDepth(Term t) const {
    if (!t.IsNull()) return 0;
    auto it = null_depth_.find(t.id());
    return it == null_depth_.end() ? 0 : it->second;
  }

  // Fires the trigger (rule ri, uvars ↦ images) if it has not fired
  // before. Returns true iff it fired.
  bool Fire(uint32_t ri, const std::vector<Term>& images) {
    const PreparedRule& rule = rules_[ri];
    TriggerKey key;
    if (options_.semi_oblivious) {
      key.data.reserve(rule.fvar_slots.size() + 1);
      key.data.push_back(ri);
      for (uint32_t s : rule.fvar_slots) key.data.push_back(images[s].bits());
    } else {
      key.data.reserve(images.size() + 1);
      key.data.push_back(ri);
      for (Term t : images) key.data.push_back(t.bits());
    }
    if (!fired_.insert(key).second) return false;
    Substitution h;
    for (size_t i = 0; i < rule.uvars.size(); ++i) {
      h.Bind(rule.uvars[i], images[i]);
    }
    if (options_.restricted) {
      // Restricted chase: skip satisfied triggers. The trigger stays in
      // the fired set — if it is satisfied now, it stays satisfied (the
      // database only grows).
      if (HasHomomorphism(rule.head, result_.database, h)) return false;
    }
    // Null-depth bound: skip triggers that would create too-deep nulls.
    if (!rule.evars.empty() && options_.max_null_depth != 0) {
      uint32_t depth = 0;
      for (Term t : images) depth = std::max(depth, TermDepth(t));
      if (depth + 1 > options_.max_null_depth) {
        fired_.erase(key);  // The real chase still owes this trigger.
        skipped_depth_limited_ = true;
        return false;
      }
    }
    Substitution full = h;
    uint32_t new_depth = 1;
    for (Term t : images) {
      new_depth = std::max(new_depth, TermDepth(t) + 1);
    }
    for (Term e : rule.evars) {
      Term null = symbols_->FreshNull();
      null_depth_[null.id()] = new_depth;
      full.Bind(e, null);
    }
    ++result_.steps;
    std::vector<Term> frontier_image;
    frontier_image.reserve(rule.fvar_slots.size());
    for (uint32_t s : rule.fvar_slots) frontier_image.push_back(images[s]);
    for (const Atom& ha : rule.head) {
      Atom derived = full.Apply(ha);
      // The restricted chase reads the database (HasHomomorphism) while
      // merging, so its postings must stay current; the oblivious merge
      // defers them to the round boundary — and, with merge_batch_min
      // set, buffers the whole round's candidates so dedup and appends
      // can run as one (possibly parallel) batch at the flush.
      if (options_.restricted) {
        if (result_.database.Insert(derived)) {
          result_.derivation.push_back(
              ChaseStep{ri, std::move(derived), frontier_image});
        }
      } else if (options_.merge_batch_min != 0) {
        pending_atoms_.push_back(std::move(derived));
        pending_meta_.push_back(PendingMeta{ri, frontier_image});
      } else if (result_.database.InsertDeferIndex(derived)) {
        result_.derivation.push_back(
            ChaseStep{ri, std::move(derived), frontier_image});
      }
    }
    return true;
  }

  // Drains the buffered head-atom candidates through the batch insert
  // (parallel once the buffer reaches merge_batch_min) and appends the
  // derivation records of the atoms that were new, in candidate order —
  // exactly the records the per-trigger path would have produced.
  void FlushPending() {
    if (pending_atoms_.empty()) return;
    WorkerPool* pool =
        pending_atoms_.size() >= options_.merge_batch_min ? pool_.get()
                                                          : nullptr;
    result_.database.InsertBatchDeferIndex(pending_atoms_, pool,
                                           &pending_new_);
    for (size_t i = 0; i < pending_atoms_.size(); ++i) {
      if (pending_new_[i]) {
        result_.derivation.push_back(ChaseStep{pending_meta_[i].ri,
                                               std::move(pending_atoms_[i]),
                                               std::move(pending_meta_[i].frontier)});
      }
    }
    pending_atoms_.clear();
    pending_meta_.clear();
  }

  SymbolTable* symbols_;
  ChaseOptions options_;
  std::vector<PreparedRule> rules_;
  std::unique_ptr<WorkerPool> pool_;  // Null when num_threads <= 1.
  std::vector<JoinExecutor> lanes_;   // One executor per pool lane.
  std::vector<Unit> units_;
  std::vector<std::vector<TriggerRec>> unit_triggers_;
  ChaseResult result_;
  // Round-local head-atom candidates awaiting the batched flush
  // (oblivious merge with merge_batch_min != 0 only).
  struct PendingMeta {
    uint32_t ri = 0;
    std::vector<Term> frontier;
  };
  std::vector<Atom> pending_atoms_;
  std::vector<PendingMeta> pending_meta_;
  std::vector<uint8_t> pending_new_;
  std::unordered_set<TriggerKey, TriggerKeyHash> fired_;
  std::unordered_map<uint32_t, uint32_t> null_depth_;
  bool skipped_depth_limited_ = false;
  // Which engine-local cap (steps/atoms) tripped, for the degradation
  // record; kNone when only the budget or a truncated unit stopped us.
  BudgetLimit cap_limit_ = BudgetLimit::kNone;
  std::atomic<bool> truncated_units_{false};
};

}  // namespace

ChaseResult Chase(const Theory& theory, const Database& input,
                  SymbolTable* symbols, const ChaseOptions& options) {
  ChaseEngine engine(theory, input, symbols, options);
  return engine.Run();
}

bool ChaseEntails(const Theory& theory, const Database& input,
                  const Atom& ground_atom, SymbolTable* symbols,
                  const ChaseOptions& options, bool allow_unsaturated) {
  GEREL_CHECK(ground_atom.IsDatabaseAtom());
  ChaseResult r = Chase(theory, input, symbols, options);
  if (r.database.Contains(ground_atom)) return true;
  GEREL_CHECK(r.saturated || allow_unsaturated);
  return false;
}

std::set<std::vector<Term>> ChaseAnswers(const Theory& theory,
                                         const Database& input,
                                         RelationId output,
                                         SymbolTable* symbols,
                                         const ChaseOptions& options) {
  ChaseResult r = Chase(theory, input, symbols, options);
  std::set<std::vector<Term>> answers;
  for (uint32_t ai : r.database.AtomsOf(output)) {
    const Atom& a = r.database.atom(ai);
    if (a.IsGroundOverConstants()) answers.insert(a.args);
  }
  return answers;
}

}  // namespace gerel
