#include "chase/chase.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/check.h"
#include "core/homomorphism.h"
#include "core/join_plan.h"
#include "core/substitution.h"

namespace gerel {

namespace {

// A fired-trigger key: rule index plus the uvars' images, packed.
struct TriggerKey {
  std::vector<uint32_t> data;
  friend bool operator==(const TriggerKey& a, const TriggerKey& b) {
    return a.data == b.data;
  }
};

struct TriggerKeyHash {
  size_t operator()(const TriggerKey& k) const {
    size_t h = 0xC0FFEE;
    for (uint32_t v : k.data) {
      h ^= static_cast<size_t>(v) + 0x9E3779B97F4A7C15ull + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

struct PreparedRule {
  std::vector<Atom> body;
  std::vector<Atom> head;
  std::vector<Term> uvars;
  std::vector<Term> evars;
  std::vector<Term> fvars;
  // plans[j] compiles the whole body with atom j pinned as level 0, to
  // be matched only against a delta atom (ExecuteSeeded). Compiled once;
  // the per-round `rest` pattern construction of the interpreted matcher
  // is gone.
  std::vector<JoinPlan> plans;
};

class ChaseEngine {
 public:
  ChaseEngine(const Theory& theory, const Database& input,
              SymbolTable* symbols, const ChaseOptions& options)
      : symbols_(symbols), options_(options) {
    GEREL_CHECK(!theory.HasNegation());
    for (const Rule& r : theory.rules()) {
      PreparedRule p;
      p.body = r.PositiveBody();
      p.head = r.head;
      p.uvars = r.UVars();
      p.evars = r.EVars();
      p.fvars = r.FVars();
      p.plans.reserve(p.body.size());
      for (size_t j = 0; j < p.body.size(); ++j) {
        p.plans.emplace_back(p.body, std::vector<Term>(),
                             static_cast<int>(j));
      }
      rules_.push_back(std::move(p));
    }
    result_.database = input;
    if (options.populate_acdom) {
      PopulateAcdom(theory, symbols, &result_.database);
    }
  }

  ChaseResult Run() {
    size_t delta_begin = 0;
    bool first_round = true;
    while (true) {
      size_t delta_end = result_.database.size();
      for (uint32_t ri = 0; ri < rules_.size(); ++ri) {
        const PreparedRule& rule = rules_[ri];
        if (rule.body.empty()) {
          if (first_round) Fire(ri, Substitution());
          continue;
        }
        // Semi-naive enumeration: some body atom must match an atom of the
        // delta window [delta_begin, delta_end); in the first round the
        // delta is the whole input database. Plan level 0 is the pinned
        // body atom, matched only against the delta atom; Fire() inserts
        // mid-enumeration, so candidate postings are snapshotted
        // (db_grows) exactly like the interpreted matcher did.
        auto fire = [&](const JoinExecutor& e) {
          Substitution h;
          e.AppendBindings(&h);
          Fire(ri, h);
          return !LimitReached();
        };
        for (size_t j = 0; j < rule.body.size(); ++j) {
          RelationId pred = rule.body[j].pred;
          for (size_t ai = delta_begin; ai < delta_end; ++ai) {
            if (result_.database.atom(ai).pred != pred) continue;
            exec_.ExecuteSeeded(rule.plans[j], result_.database,
                                result_.database.atom(ai), fire,
                                /*db_grows=*/true);
            if (LimitReached()) break;
          }
          if (LimitReached()) break;
        }
        if (LimitReached()) break;
      }
      first_round = false;
      if (LimitReached()) {
        result_.saturated = false;
        break;
      }
      if (result_.database.size() == delta_end) {
        // Nothing was added this round: every remaining trigger has
        // already fired, so this is a fixpoint (unless depth-limited
        // triggers were skipped, in which case the true chase continues).
        result_.saturated = !skipped_depth_limited_;
        break;
      }
      // The next round's delta is everything added this round.
      delta_begin = delta_end;
    }
    return std::move(result_);
  }

 private:
  bool LimitReached() const {
    if (options_.max_steps != 0 && result_.steps >= options_.max_steps)
      return true;
    if (options_.max_atoms != 0 &&
        result_.database.size() >= options_.max_atoms)
      return true;
    return false;
  }

  uint32_t TermDepth(Term t) const {
    if (!t.IsNull()) return 0;
    auto it = null_depth_.find(t.id());
    return it == null_depth_.end() ? 0 : it->second;
  }

  // Fires the trigger (rule ri, h) if it has not fired before. Returns
  // true iff it fired.
  bool Fire(uint32_t ri, const Substitution& h) {
    const PreparedRule& rule = rules_[ri];
    TriggerKey key;
    const std::vector<Term>& key_vars =
        options_.semi_oblivious ? rule.fvars : rule.uvars;
    key.data.reserve(key_vars.size() + 1);
    key.data.push_back(ri);
    for (Term v : key_vars) key.data.push_back(h.Apply(v).bits());
    if (!fired_.insert(key).second) return false;
    if (options_.restricted) {
      // Restricted chase: skip satisfied triggers. The trigger stays in
      // the fired set — if it is satisfied now, it stays satisfied (the
      // database only grows).
      if (HasHomomorphism(rule.head, result_.database, h)) return false;
    }
    // Null-depth bound: skip triggers that would create too-deep nulls.
    if (!rule.evars.empty() && options_.max_null_depth != 0) {
      uint32_t depth = 0;
      for (Term v : rule.uvars) depth = std::max(depth, TermDepth(h.Apply(v)));
      if (depth + 1 > options_.max_null_depth) {
        fired_.erase(key);  // The real chase still owes this trigger.
        skipped_depth_limited_ = true;
        return false;
      }
    }
    Substitution full = h;
    uint32_t new_depth = 1;
    for (Term v : rule.uvars) {
      new_depth = std::max(new_depth, TermDepth(h.Apply(v)) + 1);
    }
    for (Term e : rule.evars) {
      Term null = symbols_->FreshNull();
      null_depth_[null.id()] = new_depth;
      full.Bind(e, null);
    }
    ++result_.steps;
    std::vector<Term> frontier_image;
    frontier_image.reserve(rule.fvars.size());
    for (Term v : rule.fvars) frontier_image.push_back(h.Apply(v));
    for (const Atom& ha : rule.head) {
      Atom derived = full.Apply(ha);
      if (result_.database.Insert(derived)) {
        result_.derivation.push_back(
            ChaseStep{ri, std::move(derived), frontier_image});
      }
    }
    return true;
  }

  SymbolTable* symbols_;
  ChaseOptions options_;
  std::vector<PreparedRule> rules_;
  JoinExecutor exec_;  // Reused across triggers; state reset per seed.
  ChaseResult result_;
  std::unordered_set<TriggerKey, TriggerKeyHash> fired_;
  std::unordered_map<uint32_t, uint32_t> null_depth_;
  bool skipped_depth_limited_ = false;
};

}  // namespace

ChaseResult Chase(const Theory& theory, const Database& input,
                  SymbolTable* symbols, const ChaseOptions& options) {
  ChaseEngine engine(theory, input, symbols, options);
  return engine.Run();
}

bool ChaseEntails(const Theory& theory, const Database& input,
                  const Atom& ground_atom, SymbolTable* symbols,
                  const ChaseOptions& options, bool allow_unsaturated) {
  GEREL_CHECK(ground_atom.IsDatabaseAtom());
  ChaseResult r = Chase(theory, input, symbols, options);
  if (r.database.Contains(ground_atom)) return true;
  GEREL_CHECK(r.saturated || allow_unsaturated);
  return false;
}

std::set<std::vector<Term>> ChaseAnswers(const Theory& theory,
                                         const Database& input,
                                         RelationId output,
                                         SymbolTable* symbols,
                                         const ChaseOptions& options) {
  ChaseResult r = Chase(theory, input, symbols, options);
  std::set<std::vector<Term>> answers;
  for (uint32_t ai : r.database.AtomsOf(output)) {
    const Atom& a = r.database.atom(ai);
    if (a.IsGroundOverConstants()) answers.insert(a.args);
  }
  return answers;
}

}  // namespace gerel
