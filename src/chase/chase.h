// The (oblivious) chase (paper §2).
//
// A trigger is a pair (σ, h) of a rule and a homomorphism from body(σ)
// into the current database. The oblivious chase fires every trigger
// exactly once, in fair (round-based, semi-naive) order, replacing
// existential variables by fresh labeled nulls.
//
// The chase of an existential-rule theory may be infinite; ChaseOptions
// bounds the run and ChaseResult::saturated reports whether a fixpoint was
// actually reached. The decision procedures of the library are the
// paper's translations into Datalog (§5–§7), which terminate by
// construction; the bounded chase serves as the reference oracle for
// ground-truth testing and for intrinsically finite chases.
#ifndef GEREL_CHASE_CHASE_H_
#define GEREL_CHASE_CHASE_H_

#include <cstdint>
#include <set>
#include <vector>

#include "core/budget.h"
#include "core/database.h"
#include "core/symbol_table.h"
#include "core/theory.h"

namespace gerel {

struct ChaseOptions {
  // Maximum number of trigger firings; 0 disables the bound.
  size_t max_steps = 1000000;
  // Stop once the database holds this many atoms; 0 disables the bound.
  size_t max_atoms = 1000000;
  // Maximum null nesting depth: a null created by a trigger whose image
  // contains nulls of depth d gets depth d + 1; constants have depth 0.
  // Triggers that would create nulls deeper than this are skipped.
  // 0 disables the bound.
  uint32_t max_null_depth = 0;
  // Populate the acdom built-in from the input database and theory
  // constants before chasing (paper §2, "Further Notions").
  bool populate_acdom = true;
  // Restricted (a.k.a. standard) chase: a trigger fires only when no
  // extension of its homomorphism already satisfies the head in the
  // current database. The paper uses the oblivious chase (the default
  // here); the restricted variant produces a homomorphically equivalent,
  // usually smaller result with the same ground consequences, and is
  // offered for comparison and as a cheaper oracle.
  bool restricted = false;
  // Semi-oblivious (a.k.a. Skolem) chase: triggers are identified by the
  // rule and the *frontier* bindings only — two homomorphisms that agree
  // on the frontier fire once, mirroring skolemization. Termination
  // guarantee: jointly acyclic theories (core/acyclicity.h) have
  // terminating semi-oblivious chases, while only weakly acyclic ones
  // are guaranteed for the fully oblivious chase.
  bool semi_oblivious = false;
  // Lanes for the piece-parallel trigger enumeration (including the
  // calling thread); 1 is fully sequential. Any value produces
  // byte-identical results — trigger batches are enumerated against the
  // immutable round snapshot and merged in a deterministic order, so
  // labeled-null naming and the derivation never depend on thread count.
  size_t num_threads = 1;
  // Optional execution budget (wall-clock deadline, atom ceiling,
  // cooperative cancellation, fault injection). Checked at round
  // boundaries and, amortized, inside trigger enumeration; not owned.
  // Exhaustion stops the run cleanly with ChaseResult::degradation set.
  ExecutionBudget* budget = nullptr;
  // Oblivious merge phase only: head atoms are buffered and inserted
  // through Database::InsertBatchDeferIndex at the round boundary; once
  // a round's buffer holds at least this many candidates the dedup and
  // segment appends run on the worker pool. The threshold depends only
  // on the candidate count (never the thread count) and the batch insert
  // is order-deterministic, so results stay byte-identical for any
  // num_threads. 0 reverts to per-trigger inserts; the restricted chase
  // always inserts per trigger (its satisfaction check reads the
  // database mid-merge).
  size_t merge_batch_min = 2048;
};

// Provenance of one derived atom: which rule fired and the image of its
// frontier variables under the trigger homomorphism (used by the chase
// tree, Def 6).
struct ChaseStep {
  uint32_t rule_index = 0;
  Atom atom;
  std::vector<Term> frontier_image;
};

struct ChaseResult {
  Database database;
  // True iff no applicable trigger remains (the chase reached a fixpoint
  // within the configured limits).
  bool saturated = false;
  // Number of triggers fired.
  size_t steps = 0;
  // Newly derived atoms in derivation order (input atoms excluded).
  std::vector<ChaseStep> derivation;
  // Why the run stopped short of a fixpoint (limit kNone when
  // saturated). The bounded database is still sound: every atom in it is
  // a certain consequence of the input.
  DegradationReason degradation;
};

// Runs the oblivious chase of `input` w.r.t. `theory` (which must be
// negation-free). `symbols` supplies fresh nulls.
ChaseResult Chase(const Theory& theory, const Database& input,
                  SymbolTable* symbols,
                  const ChaseOptions& options = ChaseOptions());

// Convenience: Σ, D ⊨ α via the chase (α must be a ground atom). Only
// meaningful when the chase saturates within the limits; CHECK-fails
// otherwise unless `allow_unsaturated` is set (in which case a positive
// answer is still sound, a negative one is not).
bool ChaseEntails(const Theory& theory, const Database& input,
                  const Atom& ground_atom, SymbolTable* symbols,
                  const ChaseOptions& options = ChaseOptions(),
                  bool allow_unsaturated = false);

// ans((Σ, Q), D): the set of constant tuples ~c with Q(~c) in the chase.
std::set<std::vector<Term>> ChaseAnswers(const Theory& theory,
                                         const Database& input,
                                         RelationId output,
                                         SymbolTable* symbols,
                                         const ChaseOptions& options =
                                             ChaseOptions());

}  // namespace gerel

#endif  // GEREL_CHASE_CHASE_H_
