// Chase trees (paper §4, Defs 5–6) and the Prop 2 property checks.
//
// For a normal frontier-guarded theory Σ, the chase of a database D can be
// arranged as a tree whose root stores the atoms over the input constants
// and whose non-root nodes store atoms over at most m terms, where m is
// the maximal relation arity of Σ. This structure drives the translation
// of §5.
#ifndef GEREL_CHASE_CHASE_TREE_H_
#define GEREL_CHASE_CHASE_TREE_H_

#include <string>
#include <vector>

#include "chase/chase.h"
#include "core/database.h"
#include "core/status.h"
#include "core/symbol_table.h"
#include "core/theory.h"

namespace gerel {

struct ChaseTreeNode {
  std::vector<Atom> atoms;
  int parent = -1;  // -1 for the root.
  std::vector<int> children;
};

struct ChaseTree {
  // nodes[0] is the root d0 = D ∪ {R(c) | → R(c) ∈ Σ}.
  std::vector<ChaseTreeNode> nodes;

  // Distinct terms of node i (terms(d) in the paper).
  std::vector<Term> NodeTerms(size_t i) const;
  // Depth of node i (root = 0).
  size_t Depth(size_t i) const;
  // Total number of atoms across nodes.
  size_t TotalAtoms() const;
};

// Builds a chase tree of `input` w.r.t. the normal frontier-guarded theory
// `theory`, following the chase derivation order (Def 6 rules C1/C2).
// Fails if the theory is not normal frontier-guarded or if the bounded
// chase did not saturate.
Result<ChaseTree> BuildChaseTree(const Theory& theory, const Database& input,
                                 SymbolTable* symbols,
                                 const ChaseOptions& options = ChaseOptions());

// Renders the tree as Graphviz DOT (nodes list their atoms).
std::string ChaseTreeDot(const ChaseTree& tree, const SymbolTable& symbols);

// Verifies Prop 2 on a built tree:
//   (P1) |terms(d0)| ≤ |terms(D)| + k   (k = constants in Σ),
//   (P2) |terms(d)| ≤ m for non-root d  (m = max relation arity in Σ),
//   (P3) C-minimal nodes are unique for every C = terms of a node.
Status CheckChaseTreeProperties(const ChaseTree& tree, const Theory& theory,
                                const Database& input);

}  // namespace gerel

#endif  // GEREL_CHASE_CHASE_TREE_H_
