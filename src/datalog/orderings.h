// Ordered databases and lexicographic tuple orders (paper §8).
//
// Theorem 4 assumes string databases of degree k equipped with Firstk,
// Next2k, Lastk over k-tuples; Σcode builds these from a linear order
// (Succ/Min/Max) on the constants via plain Datalog [16]. This module
// provides both the direct builders (to construct ordered test databases)
// and the Datalog program emitter (the paper's construction).
#ifndef GEREL_DATALOG_ORDERINGS_H_
#define GEREL_DATALOG_ORDERINGS_H_

#include <string>
#include <vector>

#include "core/database.h"
#include "core/symbol_table.h"
#include "core/theory.h"

namespace gerel {

// Relation names used by the order programs.
struct OrderNames {
  std::string succ = "succ";  // binary successor on constants
  std::string min = "min";    // unary minimum
  std::string max = "max";    // unary maximum
  // k-tuple order relations; the degree is appended, e.g. "first2".
  std::string first = "first";
  std::string next = "next";
  std::string last = "last";
};

// Inserts succ/min/max facts for `domain` in the given order.
void AppendLinearOrderFacts(const std::vector<Term>& domain,
                            SymbolTable* symbols, Database* db,
                            const OrderNames& names = OrderNames());

// Emits the plain-Datalog program defining first<k> (k-ary), next<k>
// (2k-ary), and last<k> (k-ary) as the lexicographic order on k-tuples of
// constants, from succ/min/max. Intermediate degrees 1..k-1 are defined
// too (they are part of the recursion).
Theory LexTupleOrderProgram(int k, SymbolTable* symbols,
                            const OrderNames& names = OrderNames());

// Direct (non-Datalog) construction of the same relations, used as the
// test oracle and to build ordered string databases quickly.
void AppendLexTupleOrderFacts(const std::vector<Term>& domain, int k,
                              SymbolTable* symbols, Database* db,
                              const OrderNames& names = OrderNames());

}  // namespace gerel

#endif  // GEREL_DATALOG_ORDERINGS_H_
