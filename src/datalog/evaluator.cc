#include "datalog/evaluator.h"

#include "datalog/program.h"

namespace gerel {

// One-shot evaluation: compile a DatalogProgram (datalog/program.h) and
// materialize a single fixpoint. Callers that evaluate the same program
// repeatedly (the serving layer) keep the compiled program instead.
Result<DatalogResult> EvaluateDatalog(const Theory& theory,
                                      const Database& input,
                                      SymbolTable* symbols,
                                      const DatalogOptions& options) {
  Result<DatalogProgram> program =
      DatalogProgram::Compile(theory, symbols, options);
  if (!program.ok()) return program.status();
  DatalogResult result;
  result.database = input;
  Result<EvalPassStats> pass = program.value().Materialize(&result.database);
  if (!pass.ok()) return pass.status();
  result.rounds = pass.value().rounds;
  result.derived_atoms = pass.value().derived_atoms;
  result.complete = pass.value().complete;
  result.degradation = pass.value().degradation;
  result.rule_stats = program.value().rule_stats();
  return result;
}

Result<std::set<std::vector<Term>>> DatalogAnswers(
    const Theory& theory, const Database& input, RelationId output,
    SymbolTable* symbols, const DatalogOptions& options) {
  Result<DatalogResult> r = EvaluateDatalog(theory, input, symbols, options);
  if (!r.ok()) return r.status();
  std::set<std::vector<Term>> answers;
  for (uint32_t ai : r.value().database.AtomsOf(output)) {
    const Atom& a = r.value().database.atom(ai);
    if (a.IsGroundOverConstants()) answers.insert(a.args);
  }
  return answers;
}

}  // namespace gerel
