#include "datalog/evaluator.h"

#include <algorithm>

#include "core/check.h"
#include "core/homomorphism.h"
#include "core/substitution.h"
#include "datalog/stratifier.h"

namespace gerel {

namespace {

// Evaluation of one rule given a delta window [delta_begin, delta_end) of
// the database; negative literals are checked against the full database
// (sound because their relations are fully computed in lower strata).
class RuleEvaluator {
 public:
  explicit RuleEvaluator(const Rule& rule) : rule_(rule) {
    for (const Literal& l : rule.body) {
      if (l.negated) {
        negatives_.push_back(l.atom);
      } else {
        positives_.push_back(l.atom);
      }
    }
  }

  // Fires the rule for every homomorphism with at least one positive atom
  // in the delta window; inserts heads into *db. Returns number of new
  // atoms.
  size_t Evaluate(Database* db, size_t delta_begin, size_t delta_end,
                  bool restrict_to_delta) {
    size_t added = 0;
    auto fire = [&](const Substitution& h) {
      for (const Atom& neg : negatives_) {
        Atom ground = h.Apply(neg);
        GEREL_CHECK(ground.IsDatabaseAtom());  // Safety guarantees this.
        if (db->Contains(ground)) return true;  // Blocked; keep enumerating.
      }
      for (const Atom& head : rule_.head) {
        Atom derived = h.Apply(head);
        GEREL_CHECK(derived.IsDatabaseAtom());
        if (db->Insert(derived)) ++added;
      }
      return true;
    };
    if (positives_.empty()) {
      fire(Substitution());
      return added;
    }
    if (!restrict_to_delta) {
      ForEachHomomorphism(positives_, *db, Substitution(), fire);
      return added;
    }
    for (size_t j = 0; j < positives_.size(); ++j) {
      std::vector<Atom> rest;
      for (size_t i = 0; i < positives_.size(); ++i) {
        if (i != j) rest.push_back(positives_[i]);
      }
      for (size_t ai = delta_begin; ai < delta_end; ++ai) {
        const Atom& delta_atom = db->atom(ai);
        if (delta_atom.pred != positives_[j].pred) continue;
        Substitution seed;
        if (!Unify(positives_[j], delta_atom, &seed)) continue;
        ForEachHomomorphism(rest, *db, seed, fire);
      }
    }
    return added;
  }

 private:
  static bool Unify(const Atom& pattern, const Atom& target,
                    Substitution* seed) {
    if (pattern.args.size() != target.args.size() ||
        pattern.annotation.size() != target.annotation.size()) {
      return false;
    }
    auto unify = [&](const std::vector<Term>& ps,
                     const std::vector<Term>& ts) {
      for (size_t i = 0; i < ps.size(); ++i) {
        Term p = seed->Apply(ps[i]);
        if (p.IsVariable()) {
          seed->Bind(p, ts[i]);
        } else if (p != ts[i]) {
          return false;
        }
      }
      return true;
    };
    return unify(pattern.args, target.args) &&
           unify(pattern.annotation, target.annotation);
  }

  const Rule& rule_;
  std::vector<Atom> positives_;
  std::vector<Atom> negatives_;
};

}  // namespace

Result<DatalogResult> EvaluateDatalog(const Theory& theory,
                                      const Database& input,
                                      SymbolTable* symbols,
                                      const DatalogOptions& options) {
  for (const Rule& rule : theory.rules()) {
    if (!rule.EVars().empty()) {
      return Status::Error("EvaluateDatalog requires Datalog rules "
                           "(no existential variables)");
    }
    Status s = rule.Validate(*symbols);
    if (!s.ok()) return s;
  }
  Result<Stratification> strat = Stratify(theory);
  if (!strat.ok()) return strat.status();

  DatalogResult result;
  result.database = input;
  if (options.populate_acdom) {
    PopulateAcdom(theory, symbols, &result.database);
  }
  size_t initial = result.database.size();

  for (const std::vector<uint32_t>& stratum : strat.value().strata) {
    std::vector<RuleEvaluator> evaluators;
    evaluators.reserve(stratum.size());
    for (uint32_t ri : stratum) {
      evaluators.emplace_back(theory.rules()[ri]);
    }
    size_t delta_begin = 0;
    bool first_round = true;
    while (true) {
      size_t delta_end = result.database.size();
      size_t added = 0;
      for (RuleEvaluator& ev : evaluators) {
        bool restrict = options.seminaive && !first_round;
        // In the first round of a stratum the whole database is "new"
        // from this stratum's perspective.
        added += ev.Evaluate(&result.database,
                             restrict ? delta_begin : 0,
                             delta_end, restrict);
      }
      ++result.rounds;
      first_round = false;
      if (added == 0) break;
      delta_begin = delta_end;
      if (options.max_rounds != 0 && result.rounds >= options.max_rounds) {
        return Status::Error("max_rounds exceeded");
      }
    }
  }
  result.derived_atoms = result.database.size() - initial;
  return result;
}

Result<std::set<std::vector<Term>>> DatalogAnswers(
    const Theory& theory, const Database& input, RelationId output,
    SymbolTable* symbols, const DatalogOptions& options) {
  Result<DatalogResult> r = EvaluateDatalog(theory, input, symbols, options);
  if (!r.ok()) return r.status();
  std::set<std::vector<Term>> answers;
  for (uint32_t ai : r.value().database.AtomsOf(output)) {
    const Atom& a = r.value().database.atom(ai);
    if (a.IsGroundOverConstants()) answers.insert(a.args);
  }
  return answers;
}

}  // namespace gerel
