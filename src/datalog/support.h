// Per-atom derivation supports for incremental retraction (DRed).
//
// While a DatalogProgram materializes or extends a fixpoint it can
// record, for every atom it inserts, one witnessing derivation: the rule
// that fired and the database indices of the matched positive body
// atoms. Atoms inserted by the caller (EDB facts, acdom population,
// assert deltas) keep the default no-rule entry and count as base facts.
// Because the fact store is append-only, every recorded body index is
// strictly smaller than the derived atom's own index, so a single
// forward pass in index order settles overdeletion (PreparedKb::Retract).
//
// One support per atom is enough for soundness: overdeletion with a
// single witness may delete more than a multi-support variant would,
// but the rederivation phase restores exactly the surviving least-model
// atoms, so the final model is independent of which witness was kept.
#ifndef GEREL_DATALOG_SUPPORT_H_
#define GEREL_DATALOG_SUPPORT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gerel {

struct SupportLog {
  static constexpr uint32_t kNoRule = 0xffffffffu;

  struct Entry {
    uint32_t rule = kNoRule;  // Theory rule index, kNoRule for base facts.
    uint32_t begin = 0;       // [begin, end) into pool: body atom indices.
    uint32_t end = 0;
  };

  // entries[i] supports database atom i; indices past the recorded range
  // are base facts. pool holds the flattened body index groups.
  std::vector<Entry> entries;
  std::vector<uint32_t> pool;

  void Clear() {
    entries.clear();
    pool.clear();
  }

  // Records a witness for the atom at `atom_index`. The first recorded
  // derivation wins; an entry left at kNoRule (caller-inserted atom)
  // stays a base fact and is never overdeleted by support propagation.
  void Record(size_t atom_index, uint32_t rule, const uint32_t* body,
              size_t body_len) {
    if (entries.size() <= atom_index) entries.resize(atom_index + 1);
    Entry& e = entries[atom_index];
    if (e.rule != kNoRule) return;
    e.rule = rule;
    e.begin = static_cast<uint32_t>(pool.size());
    pool.insert(pool.end(), body, body + body_len);
    e.end = static_cast<uint32_t>(pool.size());
  }

  Entry Of(size_t atom_index) const {
    return atom_index < entries.size() ? entries[atom_index] : Entry();
  }
};

}  // namespace gerel

#endif  // GEREL_DATALOG_SUPPORT_H_
