// Magic-sets transformation for positive Datalog programs.
//
// The paper's translations compile guarded existential rules into (large)
// Datalog programs whose bottom-up evaluation derives everything; the
// paper stresses that its translations are "goal-directed" compared to
// prior work. Magic sets is the standard companion optimization on the
// Datalog side: given a query atom with some bound arguments, the
// transformed program restricts bottom-up evaluation to facts relevant
// to those bindings.
//
// Implementation: classic adornment with a left-to-right sideways
// information passing strategy. IDB predicates are those occurring in
// rule heads; adorned relations are named "p#bf...", magic relations
// "magic#p#bf...".
#ifndef GEREL_DATALOG_MAGIC_H_
#define GEREL_DATALOG_MAGIC_H_

#include <set>
#include <vector>

#include "core/atom.h"
#include "core/database.h"
#include "core/status.h"
#include "core/symbol_table.h"
#include "core/theory.h"

namespace gerel {

struct MagicResult {
  // The rewritten program: adorned rules, magic rules, and the magic
  // seed fact for the query bindings.
  Theory program;
  // The adorned relation holding the query's answers.
  RelationId query_relation = 0;
  size_t adorned_predicates = 0;
};

// Rewrites the positive Datalog `program` for the given query atom
// (constants are bound, variables free). Fails on negation, existential
// variables, or multi-atom heads (normalize first).
Result<MagicResult> MagicSets(const Theory& program, const Atom& query,
                              SymbolTable* symbols);

// Convenience: rewrite, evaluate, and return the query-atom matches
// (full argument tuples over constants).
Result<std::set<std::vector<Term>>> MagicAnswers(const Theory& program,
                                                 const Database& db,
                                                 const Atom& query,
                                                 SymbolTable* symbols);

}  // namespace gerel

#endif  // GEREL_DATALOG_MAGIC_H_
