#include "datalog/program.h"

#include <algorithm>

#include "core/check.h"
#include "core/join_plan.h"
#include "core/parallel.h"

namespace gerel {

namespace {

// Evaluation of one rule given a delta window [delta_begin, delta_end) of
// the database; negative literals are checked against the full database
// (sound because their relations are fully computed in lower strata).
//
// All join plans are compiled once at construction: one plan over the
// whole positive body for naive/first rounds, and one per body-atom
// position j for semi-naive rounds, with atom j pinned as level 0 and
// matched only against delta atoms. Heads and negated atoms are compiled
// against each plan's slots, so firing a match is a slot lookup per term
// rather than a hash-map substitution.
class RuleEvaluator {
 public:
  // `rule_id` is the rule's index in the backing theory, recorded into
  // the optional SupportLog so retraction can rerun the rule later.
  RuleEvaluator(const Rule& rule, uint32_t rule_id)
      : rule_(&rule), rule_id_(rule_id) {
    for (const Literal& l : rule.body) {
      (l.negated ? negatives_ : positives_).push_back(l.atom);
    }
    // All plans compile on first use: translated programs carry hundreds
    // of rules whose body relations stay empty, and those never need one.
    seeded_.resize(positives_.size());
  }

  size_t num_positives() const { return positives_.size(); }

  // Fires the rule for every homomorphism with at least one positive atom
  // in the delta window. With a null `buffer`, heads are inserted into
  // *db as they are derived (and become visible to the enumeration, the
  // sequential reference semantics); with a buffer, *db is read-only and
  // heads are emitted for the caller to merge at the round barrier.
  // Returns the number of new atoms inserted (0 in buffered mode).
  //
  // With `slog` set in direct-insert mode, every inserted atom records a
  // derivation support (matched positive body atom indices). In buffered
  // mode `support_out` receives one group of num_positives() indices per
  // buffered atom, for the caller to record at merge time.
  size_t Evaluate(Database* db, size_t delta_begin, size_t delta_end,
                  bool restrict_to_delta, std::vector<Atom>* buffer,
                  ExecutionBudget* budget = nullptr,
                  SupportLog* slog = nullptr,
                  std::vector<uint32_t>* support_out = nullptr) {
    size_t added = 0;
    const bool db_grows = buffer == nullptr;
    const CompiledRule* firing = nullptr;
    auto fire = [&](const JoinExecutor& e) {
      // Amortized deadline/cancel check inside (possibly huge) joins.
      // Stopping mid-rule is sound: everything inserted so far is a
      // certain consequence.
      if (budget != nullptr &&
          !budget->CheckPoint(GovernedStage::kDatalog)) {
        return false;
      }
      ++stats_.matches;
      for (const CompiledAtom& neg : firing->negatives) {
        Atom ground = e.Apply(neg);
        GEREL_CHECK(ground.IsDatabaseAtom());  // Safety guarantees this.
        if (db->Contains(ground)) return true;  // Blocked; keep enumerating.
      }
      for (const CompiledAtom& head : firing->heads) {
        Atom derived = e.Apply(head);
        GEREL_CHECK(derived.IsDatabaseAtom());
        if (buffer != nullptr) {
          if (!db->Contains(derived)) {
            buffer->push_back(std::move(derived));
            if (support_out != nullptr) {
              const std::vector<uint32_t>& body = e.MatchedAtomIndices();
              support_out->insert(support_out->end(), body.begin(),
                                  body.end());
            }
          }
        } else if (db->Insert(derived)) {
          ++added;
          ++stats_.derived;
          if (slog != nullptr) {
            const std::vector<uint32_t>& body = e.MatchedAtomIndices();
            slog->Record(db->size() - 1, rule_id_, body.data(), body.size());
          }
        }
      }
      return true;
    };
    if (!restrict_to_delta || positives_.empty()) {
      // A positive conjunctive body cannot match if any body relation has
      // no atoms at all; skip before paying for plan compilation.
      for (const Atom& a : positives_) {
        if (db->AtomsOf(a.pred).empty()) return 0;
      }
      if (!full_.ready) Compile(*rule_, &full_, /*pinned_first=*/-1);
      // An empty positive body compiles to a zero-level plan, which
      // visits exactly one (empty) match — the fact-rule case.
      firing = &full_;
      exec_.Reset(full_.plan);
      exec_.Execute(full_.plan, *db, fire, db_grows);
      return added;
    }
    for (size_t j = 0; j < positives_.size(); ++j) {
      RelationId pred = positives_[j].pred;
      for (size_t ai = delta_begin; ai < delta_end; ++ai) {
        if (db->atom(ai).pred != pred) continue;
        if (!seeded_[j].ready) {
          Compile(*rule_, &seeded_[j], static_cast<int>(j));
        }
        firing = &seeded_[j];
        // ExecuteSeeded matches plan level 0 (body atom j) against the
        // delta atom only; repeated-variable mismatches visit nothing.
        exec_.ExecuteSeeded(seeded_[j].plan, *db, db->atom(ai), fire,
                            db_grows, static_cast<uint32_t>(ai));
      }
    }
    return added;
  }

  // Returns the counters accumulated since the last call and resets them
  // (the program keeps evaluators alive across passes and maintains its
  // own cumulative totals).
  RuleStats TakeStats() {
    RuleStats out = stats_;
    stats_ = RuleStats();
    return out;
  }

 private:
  struct CompiledRule {
    JoinPlan plan;
    std::vector<CompiledAtom> heads;
    std::vector<CompiledAtom> negatives;
    bool ready = false;
  };

  void Compile(const Rule& rule, CompiledRule* out, int pinned_first) {
    out->ready = true;
    out->plan.Recompile(positives_, {}, pinned_first);
    out->heads.reserve(rule.head.size());
    for (const Atom& a : rule.head) out->heads.push_back(out->plan.Compile(a));
    out->negatives.reserve(negatives_.size());
    for (const Atom& a : negatives_) {
      out->negatives.push_back(out->plan.Compile(a));
    }
  }

  const Rule* rule_;  // Backing theory rule; outlives the evaluator.
  uint32_t rule_id_ = 0;
  std::vector<Atom> positives_;
  std::vector<Atom> negatives_;
  CompiledRule full_;
  std::vector<CompiledRule> seeded_;  // One per pinned body-atom position.
  JoinExecutor exec_;
  RuleStats stats_;
};

}  // namespace

struct DatalogProgram::Rep {
  Theory theory;
  SymbolTable* symbols = nullptr;
  DatalogOptions options;
  Stratification strat;
  bool has_negation = false;
  std::vector<RuleStats> rule_stats;               // Cumulative.
  std::vector<std::vector<RuleEvaluator>> strata;  // Evaluators per stratum.
  std::unique_ptr<WorkerPool> pool;
  std::vector<std::vector<Atom>> buffers;  // Parallel-round scratch.
  // Parallel-round support scratch: one index group per buffered atom.
  std::vector<std::vector<uint32_t>> support_buffers;

  // Runs all strata over *db. For a full pass the first round of each
  // stratum scans the whole database; for an incremental pass every
  // stratum starts semi-naive from [delta_begin, db->size()).
  Result<EvalPassStats> RunPass(Database* db, bool incremental,
                                size_t delta_begin);
};

Result<EvalPassStats> DatalogProgram::Rep::RunPass(Database* db,
                                                   bool incremental,
                                                   size_t delta_begin) {
  EvalPassStats pass;
  size_t initial = db->size();
  size_t num_threads = std::max<size_t>(1, options.num_threads);
  ExecutionBudget* budget = options.budget;
  SupportLog* slog = options.support_log;
  const FaultPlan* fault = budget != nullptr ? budget->fault_plan() : nullptr;
  for (size_t si = 0; si < strat.strata.size() && pass.complete; ++si) {
    const std::vector<uint32_t>& stratum = strat.strata[si];
    std::vector<RuleEvaluator>& evaluators = strata[si];
    size_t win_begin = incremental ? delta_begin : 0;
    bool first_round = true;
    while (true) {
      // Round-boundary budget check (pass-global round index, so a
      // fault plan's "exhaust at round r" is stratum-independent).
      if (budget != nullptr &&
          !budget->CheckRound(GovernedStage::kDatalog, pass.rounds + 1,
                              db->size())) {
        pass.complete = false;
        break;
      }
      size_t delta_end = db->size();
      size_t added = 0;
      bool restrict =
          incremental || (options.seminaive && !first_round);
      // In the first round of a full pass the whole database is "new"
      // from this stratum's perspective; in an incremental pass only the
      // delta window is.
      size_t begin = restrict ? win_begin : 0;
      if (num_threads == 1) {
        for (RuleEvaluator& ev : evaluators) {
          added += ev.Evaluate(db, begin, delta_end, restrict,
                               /*buffer=*/nullptr, budget, slog);
        }
      } else {
        // Parallel round: the database is immutable while the rules
        // match (per-rule buffers, no snapshot copies needed), then the
        // buffers merge in rule order — a deterministic sequence of
        // Insert calls, so the resulting database is independent of
        // thread scheduling.
        buffers.resize(evaluators.size());
        if (slog != nullptr) support_buffers.resize(evaluators.size());
        std::vector<char> unit_done(evaluators.size(), 0);
        pool->Run(evaluators.size(), [&](size_t k) {
          buffers[k].clear();
          if (slog != nullptr) support_buffers[k].clear();
          // Workers observe the shared exhaustion flag between units;
          // a skipped unit leaves unit_done unset so the merge applies
          // only completed units.
          if (budget != nullptr && budget->ExhaustedFast()) return;
          MaybeInjectWorkerDelay(fault, k);
          evaluators[k].Evaluate(db, begin, delta_end, restrict,
                                 &buffers[k], budget, /*slog=*/nullptr,
                                 slog != nullptr ? &support_buffers[k]
                                                 : nullptr);
          unit_done[k] = 1;
        });
        for (size_t k = 0; k < evaluators.size(); ++k) {
          if (!unit_done[k]) {
            pass.complete = false;
            continue;
          }
          const size_t stride = evaluators[k].num_positives();
          size_t bi = 0;
          for (Atom& atom : buffers[k]) {
            if (db->Insert(std::move(atom))) {
              ++added;
              ++rule_stats[stratum[k]].derived;
              if (slog != nullptr) {
                slog->Record(db->size() - 1, stratum[k],
                             support_buffers[k].data() + bi * stride, stride);
              }
            }
            ++bi;
          }
        }
      }
      ++pass.rounds;
      first_round = false;
      if (budget != nullptr && budget->exhausted()) pass.complete = false;
      if (!pass.complete || added == 0) break;
      win_begin = delta_end;
      if (options.max_rounds != 0 && pass.rounds >= options.max_rounds) {
        return Status::Error("max_rounds exceeded");
      }
    }
    for (size_t k = 0; k < evaluators.size(); ++k) {
      RuleStats taken = evaluators[k].TakeStats();
      RuleStats& out = rule_stats[stratum[k]];
      out.matches += taken.matches;
      if (num_threads == 1) out.derived += taken.derived;
    }
  }
  if (!pass.complete && budget != nullptr) {
    pass.degradation = budget->reason();
  }
  pass.derived_atoms = db->size() - initial;
  return pass;
}

Result<DatalogProgram> DatalogProgram::Compile(Theory theory,
                                               SymbolTable* symbols,
                                               const DatalogOptions& options) {
  for (const Rule& rule : theory.rules()) {
    if (!rule.EVars().empty()) {
      return Status::Error("EvaluateDatalog requires Datalog rules "
                           "(no existential variables)");
    }
    Status s = rule.Validate(*symbols);
    if (!s.ok()) return s;
  }
  Result<Stratification> strat = Stratify(theory);
  if (!strat.ok()) return strat.status();

  auto rep = std::make_unique<Rep>();
  rep->theory = std::move(theory);
  rep->symbols = symbols;
  rep->options = options;
  rep->strat = std::move(strat).value();
  rep->has_negation = rep->theory.HasNegation();
  rep->rule_stats.resize(rep->theory.rules().size());
  rep->strata.reserve(rep->strat.strata.size());
  for (const std::vector<uint32_t>& stratum : rep->strat.strata) {
    std::vector<RuleEvaluator> evaluators;
    evaluators.reserve(stratum.size());
    for (uint32_t ri : stratum) {
      evaluators.emplace_back(rep->theory.rules()[ri], ri);
    }
    rep->strata.push_back(std::move(evaluators));
  }
  rep->pool = std::make_unique<WorkerPool>(
      std::max<size_t>(1, options.num_threads));
  return DatalogProgram(std::move(rep));
}

DatalogProgram::DatalogProgram(std::unique_ptr<Rep> rep)
    : rep_(std::move(rep)) {}
DatalogProgram::DatalogProgram(DatalogProgram&&) noexcept = default;
DatalogProgram& DatalogProgram::operator=(DatalogProgram&&) noexcept = default;
DatalogProgram::~DatalogProgram() = default;

Result<EvalPassStats> DatalogProgram::Materialize(Database* db) {
  // A full pass recomputes the fixpoint from the caller's base atoms;
  // any supports from a previous life of the database are stale.
  if (rep_->options.support_log != nullptr) rep_->options.support_log->Clear();
  if (rep_->options.populate_acdom) {
    PopulateAcdom(rep_->theory, rep_->symbols, db);
  }
  return rep_->RunPass(db, /*incremental=*/false, /*delta_begin=*/0);
}

Result<EvalPassStats> DatalogProgram::ExtendWithDelta(Database* db,
                                                      size_t delta_begin) {
  if (rep_->has_negation) {
    return Status::Error(
        "ExtendWithDelta requires a negation-free program (new facts can "
        "invalidate derivations made through negation; re-Materialize)");
  }
  GEREL_CHECK(delta_begin <= db->size());
  return rep_->RunPass(db, /*incremental=*/true, delta_begin);
}

const Theory& DatalogProgram::theory() const { return rep_->theory; }
const Stratification& DatalogProgram::stratification() const {
  return rep_->strat;
}
const DatalogOptions& DatalogProgram::options() const { return rep_->options; }
bool DatalogProgram::has_negation() const { return rep_->has_negation; }
const std::vector<RuleStats>& DatalogProgram::rule_stats() const {
  return rep_->rule_stats;
}

}  // namespace gerel
