#include "datalog/stratifier.h"

#include <algorithm>

namespace gerel {

Result<Stratification> Stratify(const Theory& theory) {
  // Fixpoint over relation stratum numbers. Relations never in a head are
  // EDB and stay at stratum 0.
  std::unordered_map<RelationId, uint32_t> stratum;
  std::vector<RelationId> relations = theory.Relations();
  for (RelationId r : relations) stratum[r] = 0;
  size_t max_stratum = relations.size() + 1;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : theory.rules()) {
      for (const Atom& head : rule.head) {
        uint32_t need = 0;
        for (const Literal& l : rule.body) {
          uint32_t b = stratum[l.atom.pred] + (l.negated ? 1 : 0);
          need = std::max(need, b);
        }
        if (stratum[head.pred] < need) {
          stratum[head.pred] = need;
          if (stratum[head.pred] > max_stratum) {
            return Status::Error(
                "program is not stratifiable: negative cycle through " +
                std::to_string(head.pred));
          }
          changed = true;
        }
      }
    }
  }
  uint32_t num_strata = 0;
  for (const auto& [r, s] : stratum) num_strata = std::max(num_strata, s + 1);
  Stratification out;
  out.relation_stratum = stratum;
  out.strata.resize(num_strata);
  for (uint32_t i = 0; i < theory.rules().size(); ++i) {
    // A rule goes into the stratum of its (unique-per-Prop-1, but we
    // support multi-atom heads too) highest head relation.
    uint32_t s = 0;
    for (const Atom& h : theory.rules()[i].head) {
      s = std::max(s, stratum[h.pred]);
    }
    out.strata[s].push_back(i);
  }
  // Drop empty trailing strata (possible when EDB-only relations inflate
  // the count).
  while (!out.strata.empty() && out.strata.back().empty()) {
    out.strata.pop_back();
  }
  return out;
}

}  // namespace gerel
