#include "datalog/orderings.h"

#include <string>

#include "core/check.h"

namespace gerel {

void AppendLinearOrderFacts(const std::vector<Term>& domain,
                            SymbolTable* symbols, Database* db,
                            const OrderNames& names) {
  GEREL_CHECK(!domain.empty());
  RelationId succ = symbols->Relation(names.succ, 2);
  RelationId min = symbols->Relation(names.min, 1);
  RelationId max = symbols->Relation(names.max, 1);
  db->Insert(Atom(min, {domain.front()}));
  db->Insert(Atom(max, {domain.back()}));
  for (size_t i = 0; i + 1 < domain.size(); ++i) {
    db->Insert(Atom(succ, {domain[i], domain[i + 1]}));
  }
}

Theory LexTupleOrderProgram(int k, SymbolTable* symbols,
                            const OrderNames& names) {
  GEREL_CHECK(k >= 1);
  Theory out;
  RelationId succ = symbols->Relation(names.succ, 2);
  RelationId min = symbols->Relation(names.min, 1);
  RelationId max = symbols->Relation(names.max, 1);
  RelationId acdom = AcdomRelation(symbols);

  auto degree_rel = [&](const std::string& base, int degree, int arity) {
    return symbols->Relation(base + std::to_string(degree), arity);
  };
  auto var = [&](const std::string& base, int i) {
    return symbols->Variable(base + std::to_string(i));
  };

  // Degree 1: the input order itself.
  {
    RelationId first1 = degree_rel(names.first, 1, 1);
    RelationId next1 = degree_rel(names.next, 1, 2);
    RelationId last1 = degree_rel(names.last, 1, 1);
    Term x = var("Xo", 0);
    Term y = var("Yo", 0);
    out.AddRule(Rule::Positive({Atom(min, {x})}, {Atom(first1, {x})}));
    out.AddRule(
        Rule::Positive({Atom(succ, {x, y})}, {Atom(next1, {x, y})}));
    out.AddRule(Rule::Positive({Atom(max, {x})}, {Atom(last1, {x})}));
  }

  for (int j = 2; j <= k; ++j) {
    RelationId firstj = degree_rel(names.first, j, j);
    RelationId nextj = degree_rel(names.next, j, 2 * j);
    RelationId lastj = degree_rel(names.last, j, j);
    RelationId firstp = degree_rel(names.first, j - 1, j - 1);
    RelationId nextp = degree_rel(names.next, j - 1, 2 * (j - 1));
    RelationId lastp = degree_rel(names.last, j - 1, j - 1);

    std::vector<Term> xs, ys;
    for (int i = 0; i < j; ++i) {
      xs.push_back(var("Xo", i));
      ys.push_back(var("Yo", i));
    }
    std::vector<Term> x_prefix(xs.begin(), xs.end() - 1);
    std::vector<Term> y_prefix(ys.begin(), ys.end() - 1);

    // first_j(~x, m) ← first_{j-1}(~x), min(m).
    {
      std::vector<Term> head = x_prefix;
      head.push_back(xs.back());
      out.AddRule(Rule::Positive(
          {Atom(firstp, x_prefix), Atom(min, {xs.back()})},
          {Atom(firstj, head)}));
    }
    // last_j(~x, m) ← last_{j-1}(~x), max(m).
    {
      std::vector<Term> head = x_prefix;
      head.push_back(xs.back());
      out.AddRule(Rule::Positive(
          {Atom(lastp, x_prefix), Atom(max, {xs.back()})},
          {Atom(lastj, head)}));
    }
    // Same prefix, successor in the last coordinate:
    // next_j(~x, a, ~x, b) ← succ(a, b), acdom(x1), ..., acdom(x_{j-1}).
    {
      std::vector<Term> head = x_prefix;
      head.push_back(xs.back());
      head.insert(head.end(), x_prefix.begin(), x_prefix.end());
      head.push_back(ys.back());
      std::vector<Atom> body = {Atom(succ, {xs.back(), ys.back()})};
      for (Term t : x_prefix) body.push_back(Atom(acdom, {t}));
      out.AddRule(Rule::Positive(body, {Atom(nextj, head)}));
    }
    // Carry: next_j(~x, max, ~y, min) ← next_{j-1}(~x, ~y), max(M), min(N).
    {
      Term m = var("Mo", j);
      Term n = var("No", j);
      std::vector<Term> head = x_prefix;
      head.push_back(m);
      head.insert(head.end(), y_prefix.begin(), y_prefix.end());
      head.push_back(n);
      std::vector<Term> nextp_args = x_prefix;
      nextp_args.insert(nextp_args.end(), y_prefix.begin(), y_prefix.end());
      out.AddRule(Rule::Positive(
          {Atom(nextp, nextp_args), Atom(max, {m}), Atom(min, {n})},
          {Atom(nextj, head)}));
    }
  }
  return out;
}

void AppendLexTupleOrderFacts(const std::vector<Term>& domain, int k,
                              SymbolTable* symbols, Database* db,
                              const OrderNames& names) {
  GEREL_CHECK(k >= 1 && !domain.empty());
  RelationId firstk =
      symbols->Relation(names.first + std::to_string(k), k);
  RelationId nextk =
      symbols->Relation(names.next + std::to_string(k), 2 * k);
  RelationId lastk = symbols->Relation(names.last + std::to_string(k), k);

  size_t n = domain.size();
  size_t total = 1;
  for (int i = 0; i < k; ++i) total *= n;
  auto tuple_at = [&](size_t index) {
    std::vector<Term> t(k);
    for (int i = k - 1; i >= 0; --i) {
      t[i] = domain[index % n];
      index /= n;
    }
    return t;
  };
  db->Insert(Atom(firstk, tuple_at(0)));
  db->Insert(Atom(lastk, tuple_at(total - 1)));
  for (size_t i = 0; i + 1 < total; ++i) {
    std::vector<Term> pair = tuple_at(i);
    std::vector<Term> next = tuple_at(i + 1);
    pair.insert(pair.end(), next.begin(), next.end());
    db->Insert(Atom(nextk, pair));
  }
}

}  // namespace gerel
