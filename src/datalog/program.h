// Compiled Datalog programs: validate, stratify, and join-plan compile a
// program once, then evaluate it many times.
//
// EvaluateDatalog (evaluator.h) is a thin wrapper that compiles a program
// and materializes a single fixpoint. Long-lived callers — the serving
// layer's PreparedKb in particular — keep the DatalogProgram alive and
// reuse its compiled join plans and worker pool across many passes: full
// materializations and, for negation-free programs, incremental
// extensions that re-derive only the consequences of newly inserted
// atoms (semi-naive evaluation seeded with the delta).
#ifndef GEREL_DATALOG_PROGRAM_H_
#define GEREL_DATALOG_PROGRAM_H_

#include <memory>
#include <vector>

#include "core/database.h"
#include "core/status.h"
#include "core/symbol_table.h"
#include "core/theory.h"
#include "datalog/evaluator.h"
#include "datalog/stratifier.h"

namespace gerel {

// Counters for one evaluation pass (Materialize or ExtendWithDelta).
struct EvalPassStats {
  size_t rounds = 0;
  // Atoms appended to the database by this pass (beyond any atoms the
  // caller inserted before invoking it).
  size_t derived_atoms = 0;
  // False when the pass stopped short of the fixpoint because the
  // options' budget was exhausted. The partial database is sound.
  bool complete = true;
  DegradationReason degradation;
};

class DatalogProgram {
 public:
  // Validates and compiles `theory`: all rules must be Datalog (no
  // existential variables) and the program stratifiable. `symbols` must
  // outlive the program. Join plans compile lazily on first use, exactly
  // as in the one-shot evaluator.
  static Result<DatalogProgram> Compile(Theory theory, SymbolTable* symbols,
                                        const DatalogOptions& options =
                                            DatalogOptions());

  DatalogProgram(DatalogProgram&&) noexcept;
  DatalogProgram& operator=(DatalogProgram&&) noexcept;
  DatalogProgram(const DatalogProgram&) = delete;
  DatalogProgram& operator=(const DatalogProgram&) = delete;
  ~DatalogProgram();

  // Evaluates the program over *db in place to its least/perfect model;
  // derived atoms are appended. Populates acdom first when
  // options.populate_acdom. Not thread-safe (the worker pool is internal
  // to a pass).
  Result<EvalPassStats> Materialize(Database* db);

  // Incrementally extends a fixpoint: *db must be a database previously
  // brought to a fixpoint by this program, with new atoms appended at
  // [delta_begin, db->size()). Only derivations reachable from the delta
  // are recomputed (always semi-naive, whatever options.seminaive says).
  // Requires a negation-free program: under stratified negation new
  // facts can invalidate earlier derivations, which an append-only
  // database cannot express — callers must re-Materialize instead.
  // Does NOT populate acdom; callers insert acdom atoms for new terms as
  // part of the delta if they rely on the built-in.
  Result<EvalPassStats> ExtendWithDelta(Database* db, size_t delta_begin);

  const Theory& theory() const;
  const Stratification& stratification() const;
  const DatalogOptions& options() const;
  bool has_negation() const;
  // Cumulative per-rule counters across every pass, indexed like
  // theory().rules().
  const std::vector<RuleStats>& rule_stats() const;

 private:
  struct Rep;
  explicit DatalogProgram(std::unique_ptr<Rep> rep);

  std::unique_ptr<Rep> rep_;
};

}  // namespace gerel

#endif  // GEREL_DATALOG_PROGRAM_H_
