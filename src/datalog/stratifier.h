// Stratification of Datalog programs with negation (paper §8, Def 22).
//
// Computes the canonical stratification by relation: stratum(H) ≥
// stratum(B) for positive body atoms and stratum(H) > stratum(B) for
// negated ones. A program is stratifiable iff no cycle goes through a
// negative edge.
#ifndef GEREL_DATALOG_STRATIFIER_H_
#define GEREL_DATALOG_STRATIFIER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/status.h"
#include "core/theory.h"

namespace gerel {

struct Stratification {
  // strata[i] holds the indices of the rules evaluated in stratum i.
  std::vector<std::vector<uint32_t>> strata;
  // Stratum of each head relation (EDB-only relations are stratum 0).
  std::unordered_map<RelationId, uint32_t> relation_stratum;

  size_t NumStrata() const { return strata.size(); }
  bool IsSemipositive() const { return strata.size() <= 1; }
};

// Stratifies `theory` (existential rules allowed; only negation matters).
// Fails if the program is not stratifiable.
Result<Stratification> Stratify(const Theory& theory);

}  // namespace gerel

#endif  // GEREL_DATALOG_STRATIFIER_H_
