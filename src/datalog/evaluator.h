// Bottom-up evaluation of Datalog programs with stratified negation.
//
// This is the substrate the paper's translations target (§6): after
// rewriting a guarded/nearly guarded theory into Datalog, query answering
// reduces to one fixpoint computation here. Supports semi-naive (default)
// and naive evaluation (ablation E12).
#ifndef GEREL_DATALOG_EVALUATOR_H_
#define GEREL_DATALOG_EVALUATOR_H_

#include <set>
#include <vector>

#include "core/budget.h"
#include "core/database.h"
#include "core/status.h"
#include "core/symbol_table.h"
#include "core/theory.h"
#include "datalog/support.h"

namespace gerel {

struct DatalogOptions {
  // Semi-naive evaluation restricts each round to triggers touching the
  // previous round's delta; naive evaluation re-derives everything.
  bool seminaive = true;
  // Populate the acdom built-in before evaluation.
  bool populate_acdom = true;
  // Safety valve on fixpoint rounds per stratum; 0 = unlimited.
  size_t max_rounds = 0;
  // Worker lanes per semi-naive round (1 = fully sequential, the
  // reference behavior). With more lanes the rules of a stratum match
  // concurrently against the round's immutable snapshot and emit into
  // per-rule buffers that are merged in rule order at the barrier, so
  // the final database (as a set) and all answers are independent of the
  // lane count; the round count may differ from the sequential engine's,
  // because buffered derivations only become visible next round.
  size_t num_threads = 1;
  // Optional execution budget; checked at round boundaries and,
  // amortized, inside rule evaluation. Not owned. Exhaustion stops the
  // pass cleanly with complete = false: the partial fixpoint is sound
  // (every derived atom is a consequence; negated literals read only
  // fully-computed lower strata).
  ExecutionBudget* budget = nullptr;
  // Optional derivation-support recording for incremental retraction
  // (DRed, see datalog/support.h). Not owned; must outlive the program.
  // Materialize clears and repopulates the log; ExtendWithDelta appends.
  SupportLog* support_log = nullptr;
};

// Per-rule evaluation counters, indexed like Theory::rules().
struct RuleStats {
  size_t matches = 0;  // Homomorphisms enumerated (pre-negation-check).
  size_t derived = 0;  // New atoms this rule inserted first.
};

struct DatalogResult {
  Database database;
  size_t rounds = 0;
  size_t derived_atoms = 0;
  std::vector<RuleStats> rule_stats;
  // False when a budget stopped evaluation before the fixpoint.
  bool complete = true;
  DegradationReason degradation;
};

// Evaluates `theory` (all rules Datalog, i.e. no existential variables;
// stratified negation allowed) over `input` to its least / perfect model.
Result<DatalogResult> EvaluateDatalog(const Theory& theory,
                                      const Database& input,
                                      SymbolTable* symbols,
                                      const DatalogOptions& options =
                                          DatalogOptions());

// ans((Σ, Q), D) for a Datalog query.
Result<std::set<std::vector<Term>>> DatalogAnswers(
    const Theory& theory, const Database& input, RelationId output,
    SymbolTable* symbols, const DatalogOptions& options = DatalogOptions());

}  // namespace gerel

#endif  // GEREL_DATALOG_EVALUATOR_H_
