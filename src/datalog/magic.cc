#include "datalog/magic.h"

#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/check.h"
#include "datalog/evaluator.h"

namespace gerel {

namespace {

// An adornment: one char per argument position, 'b' (bound) or 'f'.
using Adornment = std::string;

struct AdornedPred {
  RelationId pred;
  Adornment adornment;
  friend bool operator==(const AdornedPred& a, const AdornedPred& b) {
    return a.pred == b.pred && a.adornment == b.adornment;
  }
};

struct AdornedPredHash {
  size_t operator()(const AdornedPred& p) const {
    return std::hash<std::string>()(p.adornment) ^
           (static_cast<size_t>(p.pred) * 0x9E3779B9);
  }
};

class MagicRewriter {
 public:
  MagicRewriter(const Theory& program, SymbolTable* symbols)
      : program_(program), symbols_(symbols) {
    for (const Rule& r : program.rules()) {
      GEREL_CHECK(r.head.size() == 1);
      idb_.insert(r.head[0].pred);
      rules_by_head_[r.head[0].pred].push_back(&r);
    }
  }

  Result<MagicResult> Run(const Atom& query) {
    // Adornment of the query: constants bound, variables free.
    Adornment qa;
    for (Term t : query.args) qa += t.IsVariable() ? 'f' : 'b';
    if (idb_.count(query.pred) == 0) {
      return Status::Error("query relation has no rules (EDB query needs "
                           "no magic rewriting)");
    }
    AdornedPred root{query.pred, qa};
    Enqueue(root);
    while (!worklist_.empty()) {
      AdornedPred p = worklist_.front();
      worklist_.pop_front();
      ProcessAdornedPred(p);
    }
    // Seed: magic fact for the query's bound arguments.
    std::vector<Term> seed_args;
    for (size_t i = 0; i < query.args.size(); ++i) {
      if (qa[i] == 'b') seed_args.push_back(query.args[i]);
    }
    result_.program.AddRule(Rule({}, {Atom(MagicPred(root), seed_args)}));
    result_.query_relation = AdornedRelation(root);
    result_.adorned_predicates = seen_.size();
    return std::move(result_);
  }

 private:
  void Enqueue(const AdornedPred& p) {
    if (seen_.insert(p).second) worklist_.push_back(p);
  }

  RelationId AdornedRelation(const AdornedPred& p) {
    std::string name =
        symbols_->RelationName(p.pred) + "#" + p.adornment;
    return symbols_->Relation(name, static_cast<int>(p.adornment.size()));
  }

  RelationId MagicPred(const AdornedPred& p) {
    int bound = 0;
    for (char c : p.adornment) bound += c == 'b';
    std::string name =
        "magic#" + symbols_->RelationName(p.pred) + "#" + p.adornment;
    return symbols_->Relation(name, bound);
  }

  // Bound-argument projection of an atom under an adornment.
  static std::vector<Term> BoundArgs(const Atom& atom,
                                     const Adornment& adornment) {
    std::vector<Term> out;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (adornment[i] == 'b') out.push_back(atom.args[i]);
    }
    return out;
  }

  void ProcessAdornedPred(const AdornedPred& p) {
    // Copy rule: base facts of p (predicates can be EDB and IDB at once)
    // flow into the adorned relation under the magic guard:
    //   p#a(~x) ← magic#p#a(bound ~x) ∧ p(~x).
    {
      Atom original;
      original.pred = p.pred;
      for (size_t i = 0; i < p.adornment.size(); ++i) {
        original.args.push_back(
            symbols_->Variable("Mg" + std::to_string(i)));
      }
      Atom adorned = original;
      adorned.pred = AdornedRelation(p);
      result_.program.AddRule(Rule::Positive(
          {Atom(MagicPred(p), BoundArgs(original, p.adornment)), original},
          {adorned}));
    }
    auto it = rules_by_head_.find(p.pred);
    if (it == rules_by_head_.end()) return;
    for (const Rule* rule : it->second) {
      RewriteRule(*rule, p);
    }
  }

  void RewriteRule(const Rule& rule, const AdornedPred& p) {
    const Atom& head = rule.head[0];
    // Variables bound by the head adornment.
    std::unordered_set<uint32_t> bound;
    for (size_t i = 0; i < head.args.size(); ++i) {
      if (p.adornment[i] == 'b' && head.args[i].IsVariable()) {
        bound.insert(head.args[i].bits());
      }
    }
    // The adorned rule body: magic guard, then the body atoms in order
    // (left-to-right SIPS); IDB atoms become adorned and spawn magic
    // rules.
    std::vector<Atom> magic_guard = {
        Atom(MagicPred(p), BoundArgs(head, p.adornment))};
    std::vector<Atom> new_body = magic_guard;
    std::vector<Atom> prefix = magic_guard;  // For magic-rule bodies.
    for (const Literal& lit : rule.body) {
      const Atom& b = lit.atom;
      if (idb_.count(b.pred) > 0) {
        Adornment ba;
        for (Term t : b.args) {
          bool is_bound = !t.IsVariable() || bound.count(t.bits()) > 0;
          ba += is_bound ? 'b' : 'f';
        }
        AdornedPred bp{b.pred, ba};
        Enqueue(bp);
        // Magic rule: magic#b^ba(bound args) ← prefix.
        result_.program.AddRule(
            Rule::Positive(prefix, {Atom(MagicPred(bp), BoundArgs(b, ba))}));
        Atom adorned = b;
        adorned.pred = AdornedRelation(bp);
        new_body.push_back(adorned);
        prefix.push_back(adorned);
      } else {
        new_body.push_back(b);
        prefix.push_back(b);
      }
      // Every variable of the processed atom is now bound.
      for (Term t : b.AllVars()) bound.insert(t.bits());
    }
    Atom new_head = head;
    new_head.pred = AdornedRelation(p);
    result_.program.AddRule(Rule::Positive(new_body, {new_head}));
  }

  const Theory& program_;
  SymbolTable* symbols_;
  std::unordered_set<RelationId> idb_;
  std::unordered_map<RelationId, std::vector<const Rule*>> rules_by_head_;
  std::unordered_set<AdornedPred, AdornedPredHash> seen_;
  std::deque<AdornedPred> worklist_;
  MagicResult result_;
};

}  // namespace

Result<MagicResult> MagicSets(const Theory& program, const Atom& query,
                              SymbolTable* symbols) {
  for (const Rule& r : program.rules()) {
    if (!r.EVars().empty()) {
      return Status::Error("magic sets requires Datalog rules");
    }
    if (r.HasNegation()) {
      return Status::Error("magic sets here supports positive programs");
    }
    if (r.head.size() != 1) {
      return Status::Error("magic sets requires singleton heads");
    }
    if (!r.head[0].annotation.empty()) {
      return Status::Error("magic sets does not support annotated atoms");
    }
  }
  MagicRewriter rewriter(program, symbols);
  return rewriter.Run(query);
}

Result<std::set<std::vector<Term>>> MagicAnswers(const Theory& program,
                                                 const Database& db,
                                                 const Atom& query,
                                                 SymbolTable* symbols) {
  Result<MagicResult> magic = MagicSets(program, query, symbols);
  if (!magic.ok()) return magic.status();
  Result<DatalogResult> eval =
      EvaluateDatalog(magic.value().program, db, symbols);
  if (!eval.ok()) return eval.status();
  std::set<std::vector<Term>> answers;
  for (uint32_t i : eval.value().database.AtomsOf(
           magic.value().query_relation)) {
    const Atom& a = eval.value().database.atom(i);
    // Keep only matches consistent with the query's constants.
    bool consistent = true;
    for (size_t j = 0; j < query.args.size(); ++j) {
      if (!query.args[j].IsVariable() && query.args[j] != a.args[j]) {
        consistent = false;
        break;
      }
    }
    // Repeated query variables must match equal values.
    for (size_t j = 0; consistent && j < query.args.size(); ++j) {
      for (size_t k = j + 1; k < query.args.size(); ++k) {
        if (query.args[j] == query.args[k] && a.args[j] != a.args[k]) {
          consistent = false;
          break;
        }
      }
    }
    if (consistent && a.IsGroundOverConstants()) answers.insert(a.args);
  }
  return answers;
}

}  // namespace gerel
