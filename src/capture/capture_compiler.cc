#include "capture/capture_compiler.h"

#include <string>
#include <vector>

#include "core/check.h"

namespace gerel {

namespace {

// Builds the k-variable tuples ~v used in cell/head atoms.
std::vector<Term> TupleVars(const std::string& base, int k,
                            SymbolTable* symbols) {
  std::vector<Term> out;
  for (int i = 0; i < k; ++i) {
    out.push_back(symbols->Variable(base + std::to_string(i)));
  }
  return out;
}

std::vector<Term> Concat(std::vector<Term> a, const std::vector<Term>& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

}  // namespace

Result<CaptureCompilation> CompileAtmToWeaklyGuarded(
    const Atm& machine, const StringSignature& signature,
    SymbolTable* symbols) {
  Status valid = machine.Validate();
  if (!valid.ok()) return valid;
  if (static_cast<int>(signature.alphabet.size()) != machine.alphabet_size) {
    return Status::Error("signature alphabet does not match the machine");
  }
  int k = signature.degree;
  CaptureCompilation out;
  Theory& sigma = out.theory;

  // --- Relations ---------------------------------------------------------
  std::vector<RelationId> sym(machine.alphabet_size);
  for (int a = 0; a < machine.alphabet_size; ++a) {
    sym[a] = symbols->Relation(signature.alphabet[a], k);
  }
  RelationId firstk =
      symbols->Relation(signature.order.first + std::to_string(k), k);
  RelationId nextk =
      symbols->Relation(signature.order.next + std::to_string(k), 2 * k);
  RelationId lastk =
      symbols->Relation(signature.order.last + std::to_string(k), k);
  RelationId conf0 = symbols->Relation("tm#conf0", 1);
  std::vector<RelationId> st(machine.num_states);
  for (int q = 0; q < machine.num_states; ++q) {
    st[q] = symbols->Relation("tm#st" + std::to_string(q), 1);
  }
  std::vector<RelationId> cell(machine.alphabet_size);
  for (int a = 0; a < machine.alphabet_size; ++a) {
    cell[a] = symbols->Relation("tm#cell" + std::to_string(a), k + 1);
  }
  RelationId head = symbols->Relation("tm#head", k + 1);
  RelationId ltk = symbols->Relation("tm#lt", 2 * k);
  RelationId neqk = symbols->Relation("tm#neq", 2 * k);
  RelationId accepting = symbols->Relation("tm#accepting", 1);
  out.accept_relation = symbols->Relation("tm#accept", 0);

  Term u = symbols->Variable("Uc");
  Term v1 = symbols->Variable("Vc1");
  Term v2 = symbols->Variable("Vc2");
  std::vector<Term> pos = TupleVars("Pc", k, symbols);
  std::vector<Term> pos2 = TupleVars("Qc", k, symbols);
  std::vector<Term> pos3 = TupleVars("Rc", k, symbols);

  // --- Initial configuration ---------------------------------------------
  // → ∃U conf0(U);  conf0(U) → st<q0>(U);
  // first<k>(~v) ∧ conf0(U) → head(~v, U);
  // sym<a>(~v) ∧ conf0(U) → cell<a>(~v, U).
  sigma.AddRule(Rule({}, {Atom(conf0, {u})}));
  sigma.AddRule(Rule::Positive({Atom(conf0, {u})},
                               {Atom(st[machine.start_state], {u})}));
  sigma.AddRule(Rule::Positive({Atom(firstk, pos), Atom(conf0, {u})},
                               {Atom(head, Concat(pos, {u}))}));
  for (int a = 0; a < machine.alphabet_size; ++a) {
    sigma.AddRule(Rule::Positive({Atom(sym[a], pos), Atom(conf0, {u})},
                                 {Atom(cell[a], Concat(pos, {u}))}));
  }

  // --- Tuple order helpers -----------------------------------------------
  // lt is the transitive closure of next<k>; neq is its symmetrization.
  sigma.AddRule(Rule::Positive({Atom(nextk, Concat(pos, pos2))},
                               {Atom(ltk, Concat(pos, pos2))}));
  sigma.AddRule(Rule::Positive(
      {Atom(ltk, Concat(pos, pos2)), Atom(nextk, Concat(pos2, pos3))},
      {Atom(ltk, Concat(pos, pos3))}));
  sigma.AddRule(Rule::Positive({Atom(ltk, Concat(pos, pos2))},
                               {Atom(neqk, Concat(pos, pos2))}));
  sigma.AddRule(Rule::Positive({Atom(ltk, Concat(pos, pos2))},
                               {Atom(neqk, Concat(pos2, pos))}));

  // --- Transitions ---------------------------------------------------------
  for (size_t ti = 0; ti < machine.transitions.size(); ++ti) {
    const AtmTransition& t = machine.transitions[ti];
    bool binary = t.moves.size() == 2;
    RelationId stp = symbols->Relation(
        "tm#stp" + std::to_string(ti), binary ? 3 : 2);
    std::vector<Term> stp_args =
        binary ? std::vector<Term>{u, v1, v2} : std::vector<Term>{u, v1};
    Atom stp_atom(stp, stp_args);

    // Spawn rule: st<q>(U) ∧ head(~v, U) ∧ cell<a>(~v, U) [∧ end-guard]
    //             → ∃V1[,V2] stp<t>(U, V1[, V2]).
    std::vector<Atom> body = {Atom(st[t.state], {u}),
                              Atom(head, Concat(pos, {u})),
                              Atom(cell[t.symbol], Concat(pos, {u}))};
    if (t.at_end == AtEnd::kOnlyAtEnd) {
      body.push_back(Atom(lastk, pos));
    } else if (t.at_end == AtEnd::kOnlyBeforeEnd) {
      body.push_back(Atom(nextk, Concat(pos, pos2)));
    }
    sigma.AddRule(Rule::Positive(body, {stp_atom}));

    // Per-move successor description.
    for (size_t mi = 0; mi < t.moves.size(); ++mi) {
      const AtmMove& m = t.moves[mi];
      Term v = mi == 0 ? v1 : v2;
      // New state.
      sigma.AddRule(Rule::Positive({stp_atom},
                                   {Atom(st[m.next_state], {v})}));
      // Head movement.
      switch (m.dir) {
        case Dir::kStay:
          sigma.AddRule(Rule::Positive(
              {Atom(head, Concat(pos, {u})), stp_atom},
              {Atom(head, Concat(pos, {v}))}));
          break;
        case Dir::kRight:
          sigma.AddRule(Rule::Positive(
              {Atom(head, Concat(pos, {u})), stp_atom,
               Atom(nextk, Concat(pos, pos2))},
              {Atom(head, Concat(pos2, {v}))}));
          break;
        case Dir::kLeft:
          sigma.AddRule(Rule::Positive(
              {Atom(head, Concat(pos, {u})), stp_atom,
               Atom(nextk, Concat(pos2, pos))},
              {Atom(head, Concat(pos2, {v}))}));
          break;
      }
      // The written symbol at the old head position.
      sigma.AddRule(Rule::Positive(
          {Atom(head, Concat(pos, {u})), stp_atom},
          {Atom(cell[m.write], Concat(pos, {v}))}));
      // Copy every other cell.
      for (int b = 0; b < machine.alphabet_size; ++b) {
        sigma.AddRule(Rule::Positive(
            {Atom(cell[b], Concat(pos2, {u})), Atom(head, Concat(pos, {u})),
             Atom(neqk, Concat(pos2, pos)), stp_atom},
            {Atom(cell[b], Concat(pos2, {v}))}));
      }
    }

    // Acceptance propagation through this step.
    StateMode mode = machine.modes[t.state];
    if (mode == StateMode::kOr) {
      for (size_t mi = 0; mi < t.moves.size(); ++mi) {
        Term v = mi == 0 ? v1 : v2;
        sigma.AddRule(Rule::Positive({stp_atom, Atom(accepting, {v})},
                                     {Atom(accepting, {u})}));
      }
    } else if (mode == StateMode::kAnd) {
      std::vector<Atom> acc_body = {stp_atom};
      for (size_t mi = 0; mi < t.moves.size(); ++mi) {
        acc_body.push_back(Atom(accepting, {mi == 0 ? v1 : v2}));
      }
      sigma.AddRule(Rule::Positive(acc_body, {Atom(accepting, {u})}));
    }
  }

  // Accept-state configurations accept; the initial one decides.
  for (int q = 0; q < machine.num_states; ++q) {
    if (machine.modes[q] == StateMode::kAccept) {
      sigma.AddRule(Rule::Positive({Atom(st[q], {u})},
                                   {Atom(accepting, {u})}));
    }
  }
  sigma.AddRule(Rule::Positive({Atom(conf0, {u}), Atom(accepting, {u})},
                               {Atom(out.accept_relation, {})}));
  return out;
}

Result<bool> DecideAcceptanceViaChase(const CaptureCompilation& compiled,
                                      const Database& string_db,
                                      SymbolTable* symbols,
                                      uint32_t max_steps_hint,
                                      size_t max_atoms) {
  ChaseOptions opts;
  // Configuration nulls live at depth 1 (conf0) plus one per machine
  // step; +2 covers the step nulls themselves.
  opts.max_null_depth = max_steps_hint + 2;
  opts.max_atoms = max_atoms;
  opts.max_steps = 0;
  ChaseResult r = Chase(compiled.theory, string_db, symbols, opts);
  if (r.database.Contains(Atom(compiled.accept_relation, {}))) return true;
  if (!r.saturated && r.database.size() >= max_atoms) {
    return Status::Error("chase hit the atom budget before deciding");
  }
  return false;
}

}  // namespace gerel
