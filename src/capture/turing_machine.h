// Alternating Turing machines with binary branching and bounded tape
// (paper §8, Thm 4 substrate).
//
// The paper's capturing proof compiles an exponential-time Turing machine
// into weakly guarded rules by "implementing an alternating polynomial
// space algorithm" (APSPACE = EXPTIME). We model that route directly:
// machines are alternating, binary-branching, and run on a fixed tape of
// n^k cells (the k-tuples of the string database). Transitions may be
// predicated on whether the head sits on the last cell (`at_end`), which
// compiles to a last<k>/next<k> body atom.
//
// Acceptance is the least fixpoint over the configuration graph: an
// accept-state configuration accepts; an OR configuration accepts iff
// some successor does; an AND configuration iff all of its successors do.
// Moving off the tape yields a stuck (non-accepting) successor.
#ifndef GEREL_CAPTURE_TURING_MACHINE_H_
#define GEREL_CAPTURE_TURING_MACHINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace gerel {

enum class StateMode { kAccept, kReject, kOr, kAnd };

// Head movement.
enum class Dir { kLeft = -1, kStay = 0, kRight = 1 };

// Whether a transition applies anywhere, only at the last cell, or only
// strictly before it.
enum class AtEnd { kAny, kOnlyAtEnd, kOnlyBeforeEnd };

struct AtmMove {
  int write = 0;       // Symbol written.
  Dir dir = Dir::kStay;
  int next_state = 0;
};

struct AtmTransition {
  int state = 0;
  int symbol = 0;
  AtEnd at_end = AtEnd::kAny;
  // One move = deterministic step; two moves = branch per the state mode.
  std::vector<AtmMove> moves;
};

struct Atm {
  std::string name;
  int num_states = 0;
  int start_state = 0;
  int alphabet_size = 0;  // Symbols 0..alphabet_size-1.
  std::vector<StateMode> modes;  // Indexed by state.
  std::vector<AtmTransition> transitions;

  Status Validate() const;
};

struct AtmSimOptions {
  // Cap on distinct configurations explored.
  size_t max_configurations = 1000000;
};

struct AtmSimResult {
  bool accepted = false;
  size_t configurations = 0;
  bool complete = true;  // False if the cap was hit.
};

// Simulates the ATM on `input` written on a tape of exactly |input| cells
// (the string-database convention: no blanks beyond the word).
Result<AtmSimResult> SimulateAtm(const Atm& machine,
                                 const std::vector<int>& input,
                                 const AtmSimOptions& options =
                                     AtmSimOptions());

// --- Canned machines used by tests, examples, and benches --------------

// Accepts iff the first symbol of the word is 1 (alphabet {0, 1}).
Atm FirstSymbolIsOneMachine();
// Accepts iff the word contains an even number of 1s.
Atm EvenParityMachine();
// Accepts iff every symbol is 1; exercises AND branching.
Atm AllOnesUniversalMachine();
// Accepts iff some symbol is 1; exercises OR branching.
Atm SomeOneExistentialMachine();
// Accepts iff the first symbol equals the last; exercises left moves
// (walks to the end remembering the first symbol, then compares).
Atm FirstEqualsLastMachine();
// Accepts iff the number of 1s is divisible by three (three-state
// counter).
Atm OnesDivisibleByThreeMachine();
// The EXPTIME demonstrator: interprets the tape as a binary counter
// (least-significant bit first; the first cell uses marked symbols so the
// machine can find the left end) and increments it until overflow —
// 2^n · Θ(n) steps on an n-cell tape. Accepts iff the input is a marked
// all-zero counter (alphabet: 0 = '0', 1 = '1', 2 = marked '0',
// 3 = marked '1').
Atm BinaryCounterMachine();

}  // namespace gerel

#endif  // GEREL_CAPTURE_TURING_MACHINE_H_
