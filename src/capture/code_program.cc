#include "capture/code_program.h"

#include "core/database.h"

namespace gerel {

CodeProgram BuildCodeProgram(const std::string& relation, int degree,
                             SymbolTable* symbols, const OrderNames& order) {
  CodeProgram out;
  out.signature.degree = degree;
  out.signature.order = order;
  out.signature.alphabet = {"zero#" + relation, "one#" + relation};

  out.theory = LexTupleOrderProgram(degree, symbols, order);
  RelationId r = symbols->Relation(relation, degree);
  RelationId zero = symbols->Relation(out.signature.alphabet[0], degree);
  RelationId one = symbols->Relation(out.signature.alphabet[1], degree);
  RelationId acdom = AcdomRelation(symbols);

  std::vector<Term> xs;
  for (int i = 0; i < degree; ++i) {
    xs.push_back(symbols->Variable("Xe" + std::to_string(i)));
  }
  out.theory.AddRule(Rule::Positive({Atom(r, xs)}, {Atom(one, xs)}));
  Rule zero_rule;
  for (Term x : xs) zero_rule.body.emplace_back(Atom(acdom, {x}), false);
  zero_rule.body.emplace_back(Atom(r, xs), /*negated=*/true);
  zero_rule.head.push_back(Atom(zero, xs));
  out.theory.AddRule(std::move(zero_rule));
  return out;
}

}  // namespace gerel
