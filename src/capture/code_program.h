// Σcode: encoding an ordered database as a string database (paper §8,
// discussion after Def 21).
//
// Given a linear order succ/min/max on the constants, plain Datalog
// defines the lexicographic order on k-tuples (orderings.h) and
// semipositive rules write the characteristic function of each relation:
//   R(~x) → one_R(~x),
//   acdom(x1) ∧ ... ∧ acdom(xk) ∧ ¬R(~x) → zero_R(~x).
// The resulting facts, together with first<k>/next<k>/last<k>, form a
// string database over the alphabet {zero_R, one_R} whose word is C(D).
#ifndef GEREL_CAPTURE_CODE_PROGRAM_H_
#define GEREL_CAPTURE_CODE_PROGRAM_H_

#include <string>
#include <vector>

#include "capture/string_database.h"
#include "core/status.h"
#include "core/symbol_table.h"
#include "core/theory.h"

namespace gerel {

struct CodeProgram {
  // The lex-order program plus the characteristic rules (semipositive).
  Theory theory;
  // String-database signature of the encoding: alphabet {zero_R, one_R}.
  StringSignature signature;
};

// Builds Σcode for a single k-ary relation named `relation`. The input
// database must provide succ/min/max on its constants (see
// AppendLinearOrderFacts); the output relations are "zero#<relation>" and
// "one#<relation>".
CodeProgram BuildCodeProgram(const std::string& relation, int degree,
                             SymbolTable* symbols,
                             const OrderNames& order = OrderNames());

}  // namespace gerel

#endif  // GEREL_CAPTURE_CODE_PROGRAM_H_
