// Σsucc: the stratified weakly guarded order-generation program of the
// Theorem 5 proof (paper §8, rules (1)–(12)).
//
// The program creates, for every candidate sequence of database
// constants, a labeled null u; Good(u) holds exactly for the nulls whose
// sequence is a repetition-free enumeration of the whole active domain,
// and Min(·, u), Max(·, u), Succ(·, ·, u) then describe that linear
// order. Rule (2) of the paper writes Succ(x, y, u, v) with four
// arguments although Succ is ternary; we realize it with the extension
// relation ext(x, y, u, v) ("ordering v extends u by y after x") and the
// projection ext(x, y, u, v) → succ(x, y, v).
//
// The stratification is: {(1)–(9)} ≺ {(10)} ≺ {(11)} ≺ {(12)}.
#ifndef GEREL_CAPTURE_ORDER_PROGRAM_H_
#define GEREL_CAPTURE_ORDER_PROGRAM_H_

#include "chase/chase.h"
#include "core/status.h"
#include "core/symbol_table.h"
#include "core/theory.h"
#include "stratified/stratified_chase.h"

namespace gerel {

struct OrderProgram {
  Theory theory;
  RelationId min = 0;   // min(a, u)
  RelationId max = 0;   // max(a, u)
  RelationId succ = 0;  // succ(a, b, u)
  RelationId lt = 0;    // lt(a, b, u)
  RelationId good = 0;  // good(u)
};

// Builds Σsucc. Relation names are prefixed "ord#".
OrderProgram BuildOrderProgram(SymbolTable* symbols);

// Convenience: runs the stratified chase of Σsucc (optionally extended by
// `extra` rules layered on top) over `input` with the sound null-depth
// bound |active domain| + 1 (orderings longer than the domain necessarily
// repeat and are never Good).
Result<StratifiedChaseResult> RunOrderProgram(const OrderProgram& program,
                                              const Theory& extra,
                                              const Database& input,
                                              SymbolTable* symbols,
                                              size_t max_atoms = 5000000);

}  // namespace gerel

#endif  // GEREL_CAPTURE_ORDER_PROGRAM_H_
