// String databases of degree k (paper §8, Def 20).
//
// A string database over a signature Ω of k-ary symbol relations encodes
// the word w(D): the i-th symbol is the relation holding the i-th
// k-tuple of constants in the lexicographic order given by first<k>,
// next<k>, last<k>. Every k-tuple carries exactly one symbol.
#ifndef GEREL_CAPTURE_STRING_DATABASE_H_
#define GEREL_CAPTURE_STRING_DATABASE_H_

#include <string>
#include <vector>

#include "core/database.h"
#include "core/status.h"
#include "core/symbol_table.h"
#include "datalog/orderings.h"

namespace gerel {

struct StringSignature {
  int degree = 1;                      // k
  std::vector<std::string> alphabet;   // Ω relation names, each k-ary.
  OrderNames order;                    // first<k>/next<k>/last<k> names.
};

struct StringDatabase {
  Database db;
  std::vector<Term> domain;  // Dom in its underlying order.
  StringSignature signature;
};

// Builds a string database whose word is `word` (indices into the
// alphabet). Requires |word| = n^k for some n ≥ 2; the domain constants
// are named d0, d1, .... Includes the order relations of the signature.
Result<StringDatabase> MakeStringDatabase(const std::vector<int>& word,
                                          const StringSignature& signature,
                                          SymbolTable* symbols);

// Extracts w(D) by walking the next<k> chain from first<k>; verifies the
// Def 20 invariants (exactly one symbol per tuple, total chain).
Result<std::vector<int>> ExtractWord(const Database& db,
                                     const StringSignature& signature,
                                     SymbolTable* symbols);

}  // namespace gerel

#endif  // GEREL_CAPTURE_STRING_DATABASE_H_
